/// Replicated database maintenance — the application that opens the paper:
/// "updates made at some of the nodes need to be propagated to all the
/// nodes in the network". Each write gossips on Algorithm 1's schedule;
/// concurrent updates are combined into single channel messages.
///
/// Build & run:  ./build/examples/replicated_database

#include <cstdio>
#include <string>

#include "rrb/graph/generators.hpp"
#include "rrb/p2p/replicated_db.hpp"

int main() {
  using namespace rrb;

  Rng rng(/*seed=*/31337);
  const NodeId replicas = 4096;
  const Graph overlay = random_regular_simple(replicas, 8, rng);

  ReplicatedDbConfig config;
  ReplicatedDb db(overlay, config);
  std::printf("replicated database over %u replicas (8-regular overlay)\n\n",
              replicas);

  // A burst of configuration writes from different replicas, plus a
  // conflicting write to the same key a few rounds later (last writer
  // wins).
  db.put(17, "max_connections", "100");
  db.put(950, "timeout_ms", "250");
  db.put(2048, "feature.fast_path", "on");
  for (int i = 0; i < 5; ++i) db.step();
  db.put(3333, "max_connections", "250");  // supersedes the first write

  const bool converged = db.run_to_convergence(/*max_rounds=*/400);
  std::printf("converged: %s after %d rounds\n",
              converged ? "yes" : "NO", db.round());

  // Every replica must agree on the final state.
  const char* keys[] = {"max_connections", "timeout_ms",
                        "feature.fast_path"};
  for (const char* key : keys) {
    const std::string* v0 = db.get(0, key);
    bool agree = v0 != nullptr;
    for (NodeId v = 1; agree && v < replicas; ++v) {
      const std::string* val = db.get(v, key);
      agree = val != nullptr && *val == *v0;
    }
    std::printf("  %-18s = %-4s on all replicas: %s\n", key,
                v0 ? v0->c_str() : "???", agree ? "yes" : "NO");
  }

  std::printf("\ncost accounting (%zu updates):\n", db.num_updates());
  std::printf("  entry transmissions: %llu (%.2f per update per replica)\n",
              static_cast<unsigned long long>(db.entry_transmissions()),
              static_cast<double>(db.entry_transmissions()) /
                  static_cast<double>(db.num_updates()) /
                  static_cast<double>(replicas));
  std::printf("  channel messages:    %llu (%.2f entries per message — "
              "combining)\n",
              static_cast<unsigned long long>(db.channel_messages()),
              static_cast<double>(db.entry_transmissions()) /
                  static_cast<double>(db.channel_messages()));
  return converged ? 0 : 1;
}
