/// Quickstart: broadcast one message over a random 8-regular network of
/// 10,000 peers with the paper's four-choice algorithm, and print what it
/// cost. This is the smallest end-to-end use of the library's public API:
///
///   1. generate a topology           (rrb/graph)
///   2. pick a protocol               (rrb/protocols)
///   3. run the phone call engine     (rrb/phonecall)
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/four_choice.hpp"

int main() {
  using namespace rrb;

  // 1. A random 8-regular overlay on 10,000 nodes (simple graph sampler).
  Rng rng(/*seed=*/2024);
  const NodeId n = 10000;
  const Graph overlay = random_regular_simple(n, /*d=*/8, rng);
  std::printf("overlay: %u nodes, %llu edges, regular degree %u\n",
              overlay.num_nodes(),
              static_cast<unsigned long long>(overlay.num_edges()),
              *overlay.regular_degree());

  // 2. Algorithm 1 (the paper's contribution). It needs an estimate of n
  //    (a constant-factor estimate suffices — see bench E12).
  FourChoiceConfig config;
  config.n_estimate = n;
  FourChoiceBroadcast protocol(config);
  std::printf("schedule: phase1 <= %d, phase2 <= %d, pull @ %d, ends %d\n",
              protocol.schedule().phase1_end, protocol.schedule().phase2_end,
              protocol.schedule().phase3_end, protocol.schedule().phase4_end);

  // 3. The phone call engine with four distinct choices per round.
  ChannelConfig channels;
  channels.num_choices = 4;
  GraphTopology topology(overlay);
  PhoneCallEngine<GraphTopology> engine(topology, channels, rng);

  const RunResult result = engine.run(protocol, /*source=*/NodeId{0},
                                      RunLimits{});

  std::printf("\nbroadcast %s\n",
              result.all_informed ? "reached every node" : "INCOMPLETE");
  std::printf("  everyone informed after round %d (protocol ran %d)\n",
              result.completion_round, result.rounds);
  std::printf("  transmissions: %llu push + %llu pull = %.2f per node\n",
              static_cast<unsigned long long>(result.push_tx),
              static_cast<unsigned long long>(result.pull_tx),
              result.tx_per_node());
  std::printf("  channels opened: %llu (free in the phone call model)\n",
              static_cast<unsigned long long>(result.channels_opened));
  return result.all_informed ? 0 : 1;
}
