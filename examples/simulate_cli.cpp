/// Command-line simulator: run any broadcast scheme on any topology —
/// either a generated one or an edge list loaded from a file (see
/// rrb/graph/io.hpp) — and print the outcome. Demonstrates composing the
/// whole public API from flags, the way a downstream experimenter would.
///
/// Usage:
///   simulate_cli [--protocol SCHEME] [--list-schemes]
///                [--graph regular|gnp|hypercube|pa|chunked|chunked-out|
///                 FILE.edges]
///                [--n 16384] [--d 8] [--chunks C] [--choices K]
///                [--memory M] [--quasirandom] [--failure P] [--alpha A]
///                [--seed S] [--trials T] [--threads W] [--chunk C]
///                [--json PATH] [--trace PATH] [--metrics LIST]
///
/// SCHEME is any canonical scheme name (`--list-schemes` prints all of
/// them, straight from the library's scheme table) or one of the short
/// aliases push-pull/median/seq. With no arguments it runs the four-choice
/// algorithm on G(2^14, 8). Trials run on the deterministic parallel
/// runner: --threads only changes wall-clock time, never the printed
/// numbers. --json additionally writes the summaries as a machine-readable
/// report through the shared artifact writer. --metrics attaches the
/// observer pipeline's registry metrics (rrb/metrics/registry.hpp) — the
/// same names the campaign spec's `metrics =` line accepts — and prints
/// their per-node distribution digests; observers are read-only, so every
/// other printed number is unchanged.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "rrb/bigtopo/bigtopo.hpp"
#include "rrb/common/table.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/exp/artifact.hpp"
#include "rrb/graph/algorithms.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/graph/io.hpp"
#include "rrb/metrics/registry.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trial.hpp"
#include "rrb/telemetry/telemetry.hpp"

namespace {

struct Options {
  std::string protocol = "four-choice";
  std::string graph = "regular";
  rrb::NodeId n = 1 << 14;
  rrb::NodeId d = 8;
  int chunks = 0;     // execution batches for the chunked generators
  int choices = -1;   // -1 = scheme default
  int memory = -1;    // -1 = scheme default
  bool quasirandom = false;
  double failure = 0.0;
  double alpha = 1.5;
  std::uint64_t seed = 1;
  int trials = 3;
  rrb::RunnerConfig runner;
  std::string json_path;   // empty = no JSON report
  std::string trace_path;  // empty = no Chrome trace (telemetry stays off)
  std::string metrics;     // comma list of registry metrics, or "all"
  bool list_schemes = false;
};

void usage() {
  std::cout <<
      "usage: simulate_cli [--protocol SCHEME] [--list-schemes]\n"
      "                    [--graph regular|gnp|hypercube|pa|chunked|"
      "chunked-out|FILE.edges]\n"
      "                    [--n N] [--d D] [--chunks C] [--choices K] "
      "[--memory M]\n"
      "                    [--quasirandom] [--failure P] [--alpha A] "
      "[--seed S] [--trials T]\n"
      "                    [--threads W] [--chunk C] [--json PATH]\n"
      "                    [--trace PATH]\n"
      "\n"
      "  --graph chunked      rrb::bigtopo chunked configuration model "
      "(compact CSR\n"
      "               build; reaches n in the millions). chunked-out is "
      "the d-out\n"
      "               overlay variant (degree d + in-degree).\n"
      "  --chunks C   execution batches for the chunked generators "
      "(default 0 =\n"
      "               one per canonical chunk). Scheduling only: the "
      "graph bytes\n"
      "               are identical for every C.\n"
      "  --protocol SCHEME  a canonical scheme name (see --list-schemes) "
      "or one of\n"
      "               the aliases push-pull, median, seq\n"
      "  --list-schemes  print every scheme the library implements and "
      "exit\n"
      "  --quasirandom  quasirandom channel selection "
      "(Doerr-Friedrich-Sauerwald):\n"
      "               each node walks its neighbour list cyclically from a "
      "random start\n"
      "               instead of sampling. Mutually exclusive with a "
      "positive --memory.\n"
      "  --threads W  worker threads for the trial runner (default 0 = "
      "auto:\n"
      "               $RRB_THREADS if set, else one per hardware core; 1 = "
      "sequential).\n"
      "               Results are identical for every W — only wall-clock "
      "time changes.\n"
      "  --chunk C    consecutive trials per scheduling task (default 0 = "
      "auto)\n"
      "  --json PATH  also write the summaries as a JSON report (shared "
      "artifact\n"
      "               writer, same layout as the BENCH_*.json files)\n"
      "  --trace PATH record a Chrome trace-event JSON of the run (engine\n"
      "               and runner spans; open in Perfetto or\n"
      "               chrome://tracing). Side channel only: the printed\n"
      "               numbers and --json report are unchanged.\n"
      "  --metrics LIST  comma-separated registry metrics to collect via "
      "the\n"
      "               observer pipeline (tx-histogram, latency), or 'all'.\n"
      "               Read-only: the other printed numbers do not change.\n";
}

/// Resolve --metrics into registry kinds ("all" = the whole registry).
std::vector<rrb::MetricKind> parse_metric_list(const std::string& list) {
  std::vector<rrb::MetricKind> selected;
  if (list.empty()) return selected;
  if (list == "all") {
    selected.assign(rrb::kAllMetrics.begin(), rrb::kAllMetrics.end());
    return selected;
  }
  std::string_view rest = list;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    const auto kind = rrb::parse_metric(item);
    if (!kind)
      throw std::runtime_error("unknown metric '" + std::string(item) +
                               "' (known: " + rrb::known_metric_names() +
                               ", all)");
    // Same rule as the campaign spec parser: duplicates would print (and
    // report) the same digest twice.
    for (const rrb::MetricKind existing : selected)
      if (existing == *kind)
        throw std::runtime_error("duplicate metric '" + std::string(item) +
                                 "'");
    selected.push_back(*kind);
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return selected;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--protocol") opt.protocol = next();
    else if (flag == "--list-schemes") opt.list_schemes = true;
    else if (flag == "--graph") opt.graph = next();
    else if (flag == "--n") opt.n = static_cast<rrb::NodeId>(std::stoul(next()));
    else if (flag == "--d") opt.d = static_cast<rrb::NodeId>(std::stoul(next()));
    else if (flag == "--chunks") opt.chunks = std::stoi(next());
    else if (flag == "--choices") opt.choices = std::stoi(next());
    else if (flag == "--memory") opt.memory = std::stoi(next());
    else if (flag == "--quasirandom") opt.quasirandom = true;
    else if (flag == "--failure") opt.failure = std::stod(next());
    else if (flag == "--alpha") opt.alpha = std::stod(next());
    else if (flag == "--seed") opt.seed = std::stoull(next());
    else if (flag == "--trials") opt.trials = std::stoi(next());
    else if (flag == "--threads") opt.runner.threads = std::stoi(next());
    else if (flag == "--chunk") opt.runner.chunk = std::stoi(next());
    else if (flag == "--json") opt.json_path = next();
    else if (flag == "--trace") opt.trace_path = next();
    else if (flag == "--metrics") opt.metrics = next();
    else throw std::runtime_error("unknown flag: " + flag);
  }
  if (opt.runner.threads < 0) throw std::runtime_error("--threads must be >= 0");
  if (opt.runner.chunk < 0) throw std::runtime_error("--chunk must be >= 0");
  if (opt.chunks < 0) throw std::runtime_error("--chunks must be >= 0");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrb;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 2;
  }

  if (opt.list_schemes) {
    // One source of truth: the library's scheme table.
    for (const BroadcastScheme scheme : kAllSchemes)
      std::cout << scheme_name(scheme) << "\n";
    return 0;
  }

  if (!opt.trace_path.empty()) {
    telemetry::enable();
    telemetry::set_process_id(1);
    telemetry::set_process_label("simulate_cli");
  }

  const auto scheme = parse_scheme(opt.protocol);
  if (!scheme) {
    std::cerr << "error: unknown protocol " << opt.protocol
              << " (try --list-schemes)\n";
    usage();
    return 2;
  }

  // Topology factory.
  GraphFactory graph_factory;
  if (opt.graph == "regular") {
    graph_factory = [&](Rng& rng) {
      return random_regular_simple(opt.n, opt.d, rng);
    };
  } else if (opt.graph == "gnp") {
    graph_factory = [&](Rng& rng) {
      return gnp(opt.n, static_cast<double>(opt.d) / (opt.n - 1), rng);
    };
  } else if (opt.graph == "hypercube") {
    graph_factory = [&](Rng&) {
      int dim = 0;
      while ((1U << dim) < opt.n) ++dim;
      return hypercube(dim);
    };
  } else if (opt.graph == "pa") {
    graph_factory = [&](Rng& rng) {
      return preferential_attachment(opt.n, std::max<NodeId>(2, opt.d / 2),
                                     rng);
    };
  } else if (opt.graph == "chunked" || opt.graph == "chunked-out") {
    // rrb::bigtopo compact-CSR path, seeded from the trial stream like the
    // campaign runner's chunked family. --chunks batches execution only.
    const bool out_links = opt.graph == "chunked-out";
    graph_factory = [&, out_links](Rng& rng) {
      bigtopo::ChunkedParams params;
      params.n = opt.n;
      params.d = opt.d;
      params.seed = rng.next_u64();
      params.chunks = opt.chunks;
      return out_links ? bigtopo::chunked_random_out(params)
                       : bigtopo::chunked_configuration_model(params);
    };
  } else {
    // Treat as a file path.
    std::ifstream file(opt.graph);
    if (!file) {
      std::cerr << "error: cannot open graph file " << opt.graph << "\n";
      return 2;
    }
    const Graph loaded = read_edge_list(file);
    graph_factory = [loaded](Rng&) { return loaded; };
    opt.n = loaded.num_nodes();
  }

  // The scheme's canonical protocol/channel pairing, via the same dispatch
  // the broadcast() facade uses; CLI channel overrides go on top.
  BroadcastOptions scheme_options;
  scheme_options.scheme = *scheme;
  scheme_options.n_estimate = opt.n;
  scheme_options.alpha = opt.alpha;
  scheme_options.failure_prob = opt.failure;
  scheme_options.memory = opt.memory;
  scheme_options.quasirandom = opt.quasirandom;

  SchemeShape shape;
  shape.n = opt.n;
  shape.degree = opt.d;
  shape.mean_degree = static_cast<double>(opt.d);
  ChannelConfig channel;
  try {
    channel = with_scheme(
        shape, scheme_options,
        [](auto, const ChannelConfig& paired) { return paired; });
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (opt.choices > 0) channel.num_choices = opt.choices;
  if (channel.quasirandom && channel.memory > 0) {
    std::cerr << "error: --quasirandom cannot be combined with a positive "
                 "memory window (use --memory 0 with seq)\n";
    return 2;
  }

  std::vector<MetricKind> selected_metrics;
  try {
    selected_metrics = parse_metric_list(opt.metrics);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  TrialConfig config;
  config.trials = opt.trials;
  config.seed = opt.seed;
  config.channel = channel;
  config.runner = opt.runner;

  const ProtocolFactory protocol_factory =
      [&scheme_options](const Graph& graph) {
        return make_scheme(graph, scheme_options).protocol;
      };

  // The observed overload returns a byte-identical TrialOutcome (observers
  // are read-only), so both branches print the very same summary table.
  TrialOutcome out;
  std::vector<MetricStack> stacks;
  if (selected_metrics.empty()) {
    out = run_trials(graph_factory, protocol_factory, config);
  } else {
    ObservedOutcome<MetricStack> observed = run_trials(
        graph_factory, protocol_factory, config,
        [](const Graph&) { return MetricStack{}; });
    out = std::move(observed.outcome);
    stacks = std::move(observed.observers);
  }

  Table table({"metric", "mean", "min", "max"});
  table.set_title(opt.protocol + " on " + opt.graph + " (n=" +
                  std::to_string(opt.n) + ", trials=" +
                  std::to_string(opt.trials) + ")");
  auto row = [&table](const std::string& name, const Summary& s,
                      int precision) {
    table.begin_row();
    table.add(name);
    table.add(s.mean, precision);
    table.add(s.min, precision);
    table.add(s.max, precision);
  };
  row("rounds (protocol stop)", out.rounds, 1);
  row("rounds to all informed", out.completion_round, 1);
  row("transmissions/node", out.tx_per_node, 2);
  row("push transmissions", out.push_tx, 0);
  row("pull transmissions", out.pull_tx, 0);
  std::cout << table;
  std::cout << "completion rate: " << out.completion_rate << "\n";

  // Mean-over-trials digest per selected metric, reduced in trial order
  // (the same discipline every deterministic reduction in the repo uses).
  std::vector<rrb::exp::JsonObject> metric_rows;
  if (!selected_metrics.empty()) {
    Table mtable({"metric", "p50", "p90", "p99", "max"});
    mtable.set_title("per-node distributions (means over " +
                     std::to_string(opt.trials) + " trials)");
    for (const MetricKind kind : selected_metrics) {
      const QuantileSummary mean = metric_summary_mean(stacks, kind);
      mtable.begin_row();
      mtable.add(metric_name(kind));
      mtable.add(mean.p50, 2);
      mtable.add(mean.p90, 2);
      mtable.add(mean.p99, 2);
      mtable.add(mean.max, 2);
      metric_rows.emplace_back();
      metric_rows.back()
          .set("metric", metric_name(kind))
          .set("p50_mean", mean.p50)
          .set("p90_mean", mean.p90)
          .set("p99_mean", mean.p99)
          .set("max_mean", mean.max);
    }
    std::cout << mtable;
  }

  if (!opt.json_path.empty()) {
    exp::BenchReport report("simulate_cli", "n/a",
                            ParallelRunner::resolve_threads(opt.runner));
    report.set("scheme", scheme_name(*scheme))
        .set("graph", opt.graph)
        .set("n", static_cast<std::uint64_t>(opt.n))
        .set("d", static_cast<std::uint64_t>(opt.d))
        .set("trials", opt.trials)
        .set("seed", static_cast<std::uint64_t>(opt.seed))
        .set("completion_rate", out.completion_rate);
    auto summary_row = [&report](const char* metric, const Summary& s) {
      report.row()
          .set("metric", metric)
          .set("mean", s.mean)
          .set("stddev", s.stddev)
          .set("min", s.min)
          .set("max", s.max)
          .set("median", s.median);
    };
    summary_row("rounds", out.rounds);
    summary_row("completion_round", out.completion_round);
    summary_row("tx_per_node", out.tx_per_node);
    summary_row("push_tx", out.push_tx);
    summary_row("pull_tx", out.pull_tx);
    for (const exp::JsonObject& metric_row : metric_rows) {
      exp::JsonObject& json_row = report.row();
      for (const exp::JsonObject::Field& field : metric_row.fields())
        json_row.set_raw(field);
    }
    report.write_to(opt.json_path);
  }

  if (!opt.trace_path.empty()) {
    const std::int64_t events = telemetry::write_chrome_trace_file(
        opt.trace_path);
    if (events < 0)
      std::cerr << "warning: cannot write trace " << opt.trace_path << "\n";
    else
      std::cout << "trace: " << opt.trace_path << " (" << events
                << " events; open in Perfetto or chrome://tracing)\n";
  }
  return out.completion_rate == 1.0 ? 0 : 1;
}
