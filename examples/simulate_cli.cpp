/// Command-line simulator: run any broadcast scheme on any topology —
/// either a generated one or an edge list loaded from a file (see
/// rrb/graph/io.hpp) — and print the outcome. Demonstrates composing the
/// whole public API from flags, the way a downstream experimenter would.
///
/// Usage:
///   simulate_cli [--protocol SCHEME] [--list-schemes]
///                [--graph regular|gnp|hypercube|pa|FILE.edges]
///                [--n 16384] [--d 8] [--choices K] [--memory M]
///                [--quasirandom] [--failure P] [--alpha A] [--seed S]
///                [--trials T] [--threads W] [--chunk C] [--json PATH]
///
/// SCHEME is any canonical scheme name (`--list-schemes` prints all of
/// them, straight from the library's scheme table) or one of the short
/// aliases push-pull/median/seq. With no arguments it runs the four-choice
/// algorithm on G(2^14, 8). Trials run on the deterministic parallel
/// runner: --threads only changes wall-clock time, never the printed
/// numbers. --json additionally writes the summaries as a machine-readable
/// report through the shared artifact writer.

#include <fstream>
#include <iostream>
#include <string>

#include "rrb/common/table.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/exp/artifact.hpp"
#include "rrb/graph/algorithms.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/graph/io.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trial.hpp"

namespace {

struct Options {
  std::string protocol = "four-choice";
  std::string graph = "regular";
  rrb::NodeId n = 1 << 14;
  rrb::NodeId d = 8;
  int choices = -1;   // -1 = scheme default
  int memory = -1;    // -1 = scheme default
  bool quasirandom = false;
  double failure = 0.0;
  double alpha = 1.5;
  std::uint64_t seed = 1;
  int trials = 3;
  rrb::RunnerConfig runner;
  std::string json_path;  // empty = no JSON report
  bool list_schemes = false;
};

void usage() {
  std::cout <<
      "usage: simulate_cli [--protocol SCHEME] [--list-schemes]\n"
      "                    [--graph regular|gnp|hypercube|pa|FILE.edges]\n"
      "                    [--n N] [--d D] [--choices K] [--memory M]\n"
      "                    [--quasirandom] [--failure P] [--alpha A] "
      "[--seed S] [--trials T]\n"
      "                    [--threads W] [--chunk C] [--json PATH]\n"
      "\n"
      "  --protocol SCHEME  a canonical scheme name (see --list-schemes) "
      "or one of\n"
      "               the aliases push-pull, median, seq\n"
      "  --list-schemes  print every scheme the library implements and "
      "exit\n"
      "  --quasirandom  quasirandom channel selection "
      "(Doerr-Friedrich-Sauerwald):\n"
      "               each node walks its neighbour list cyclically from a "
      "random start\n"
      "               instead of sampling. Mutually exclusive with a "
      "positive --memory.\n"
      "  --threads W  worker threads for the trial runner (default 0 = "
      "auto:\n"
      "               $RRB_THREADS if set, else one per hardware core; 1 = "
      "sequential).\n"
      "               Results are identical for every W — only wall-clock "
      "time changes.\n"
      "  --chunk C    consecutive trials per scheduling task (default 0 = "
      "auto)\n"
      "  --json PATH  also write the summaries as a JSON report (shared "
      "artifact\n"
      "               writer, same layout as the BENCH_*.json files)\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--protocol") opt.protocol = next();
    else if (flag == "--list-schemes") opt.list_schemes = true;
    else if (flag == "--graph") opt.graph = next();
    else if (flag == "--n") opt.n = static_cast<rrb::NodeId>(std::stoul(next()));
    else if (flag == "--d") opt.d = static_cast<rrb::NodeId>(std::stoul(next()));
    else if (flag == "--choices") opt.choices = std::stoi(next());
    else if (flag == "--memory") opt.memory = std::stoi(next());
    else if (flag == "--quasirandom") opt.quasirandom = true;
    else if (flag == "--failure") opt.failure = std::stod(next());
    else if (flag == "--alpha") opt.alpha = std::stod(next());
    else if (flag == "--seed") opt.seed = std::stoull(next());
    else if (flag == "--trials") opt.trials = std::stoi(next());
    else if (flag == "--threads") opt.runner.threads = std::stoi(next());
    else if (flag == "--chunk") opt.runner.chunk = std::stoi(next());
    else if (flag == "--json") opt.json_path = next();
    else throw std::runtime_error("unknown flag: " + flag);
  }
  if (opt.runner.threads < 0) throw std::runtime_error("--threads must be >= 0");
  if (opt.runner.chunk < 0) throw std::runtime_error("--chunk must be >= 0");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrb;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage();
    return 2;
  }

  if (opt.list_schemes) {
    // One source of truth: the library's scheme table.
    for (const BroadcastScheme scheme : kAllSchemes)
      std::cout << scheme_name(scheme) << "\n";
    return 0;
  }

  const auto scheme = parse_scheme(opt.protocol);
  if (!scheme) {
    std::cerr << "error: unknown protocol " << opt.protocol
              << " (try --list-schemes)\n";
    usage();
    return 2;
  }

  // Topology factory.
  GraphFactory graph_factory;
  if (opt.graph == "regular") {
    graph_factory = [&](Rng& rng) {
      return random_regular_simple(opt.n, opt.d, rng);
    };
  } else if (opt.graph == "gnp") {
    graph_factory = [&](Rng& rng) {
      return gnp(opt.n, static_cast<double>(opt.d) / (opt.n - 1), rng);
    };
  } else if (opt.graph == "hypercube") {
    graph_factory = [&](Rng&) {
      int dim = 0;
      while ((1U << dim) < opt.n) ++dim;
      return hypercube(dim);
    };
  } else if (opt.graph == "pa") {
    graph_factory = [&](Rng& rng) {
      return preferential_attachment(opt.n, std::max<NodeId>(2, opt.d / 2),
                                     rng);
    };
  } else {
    // Treat as a file path.
    std::ifstream file(opt.graph);
    if (!file) {
      std::cerr << "error: cannot open graph file " << opt.graph << "\n";
      return 2;
    }
    const Graph loaded = read_edge_list(file);
    graph_factory = [loaded](Rng&) { return loaded; };
    opt.n = loaded.num_nodes();
  }

  // The scheme's canonical protocol/channel pairing, via the same dispatch
  // the broadcast() facade uses; CLI channel overrides go on top.
  BroadcastOptions scheme_options;
  scheme_options.scheme = *scheme;
  scheme_options.n_estimate = opt.n;
  scheme_options.alpha = opt.alpha;
  scheme_options.failure_prob = opt.failure;
  scheme_options.memory = opt.memory;
  scheme_options.quasirandom = opt.quasirandom;

  SchemeShape shape;
  shape.n = opt.n;
  shape.degree = opt.d;
  shape.mean_degree = static_cast<double>(opt.d);
  ChannelConfig channel;
  try {
    channel = with_scheme(
        shape, scheme_options,
        [](auto, const ChannelConfig& paired) { return paired; });
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (opt.choices > 0) channel.num_choices = opt.choices;
  if (channel.quasirandom && channel.memory > 0) {
    std::cerr << "error: --quasirandom cannot be combined with a positive "
                 "memory window (use --memory 0 with seq)\n";
    return 2;
  }

  TrialConfig config;
  config.trials = opt.trials;
  config.seed = opt.seed;
  config.channel = channel;
  config.runner = opt.runner;

  const TrialOutcome out = run_trials(
      graph_factory,
      [&scheme_options](const Graph& graph) {
        return make_scheme(graph, scheme_options).protocol;
      },
      config);

  Table table({"metric", "mean", "min", "max"});
  table.set_title(opt.protocol + " on " + opt.graph + " (n=" +
                  std::to_string(opt.n) + ", trials=" +
                  std::to_string(opt.trials) + ")");
  auto row = [&table](const std::string& name, const Summary& s,
                      int precision) {
    table.begin_row();
    table.add(name);
    table.add(s.mean, precision);
    table.add(s.min, precision);
    table.add(s.max, precision);
  };
  row("rounds (protocol stop)", out.rounds, 1);
  row("rounds to all informed", out.completion_round, 1);
  row("transmissions/node", out.tx_per_node, 2);
  row("push transmissions", out.push_tx, 0);
  row("pull transmissions", out.pull_tx, 0);
  std::cout << table;
  std::cout << "completion rate: " << out.completion_rate << "\n";

  if (!opt.json_path.empty()) {
    exp::BenchReport report("simulate_cli", "n/a",
                            ParallelRunner::resolve_threads(opt.runner));
    report.set("scheme", scheme_name(*scheme))
        .set("graph", opt.graph)
        .set("n", static_cast<std::uint64_t>(opt.n))
        .set("d", static_cast<std::uint64_t>(opt.d))
        .set("trials", opt.trials)
        .set("seed", static_cast<std::uint64_t>(opt.seed))
        .set("completion_rate", out.completion_rate);
    auto summary_row = [&report](const char* metric, const Summary& s) {
      report.row()
          .set("metric", metric)
          .set("mean", s.mean)
          .set("stddev", s.stddev)
          .set("min", s.min)
          .set("max", s.max)
          .set("median", s.median);
    };
    summary_row("rounds", out.rounds);
    summary_row("completion_round", out.completion_round);
    summary_row("tx_per_node", out.tx_per_node);
    summary_row("push_tx", out.push_tx);
    summary_row("pull_tx", out.pull_tx);
    report.write_to(opt.json_path);
  }
  return out.completion_rate == 1.0 ? 0 : 1;
}
