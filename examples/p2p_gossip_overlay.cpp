/// P2P gossip under churn: maintain a random-regular-ish overlay while
/// peers join and leave, and broadcast a file announcement through it —
/// the Gnutella-style scenario from the paper's introduction. Demonstrates
/// DynamicOverlay, ChurnDriver, the engine's round hook, and the
/// slot-reuse reset.
///
/// Build & run:  ./build/examples/p2p_gossip_overlay

#include <cstdio>

#include "rrb/graph/algorithms.hpp"
#include "rrb/p2p/churn.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/four_choice.hpp"

int main() {
  using namespace rrb;

  Rng rng(/*seed=*/99);
  const NodeId initial_peers = 5000;
  const NodeId degree = 8;
  DynamicOverlay overlay(/*capacity=*/8000, initial_peers, degree, rng);
  std::printf("overlay bootstrapped: %llu peers, %llu links\n",
              static_cast<unsigned long long>(overlay.num_alive()),
              static_cast<unsigned long long>(overlay.num_edges()));

  // Churn: ~20 membership events per round plus maintenance switches.
  ChurnConfig churn;
  churn.joins_per_round = 10.0;
  churn.leaves_per_round = 10.0;
  churn.switches_per_round = 8;
  ChurnDriver driver(overlay, churn, rng);

  // The announcement gossips with Algorithm 1 (alpha = 2 for headroom
  // against the churn).
  FourChoiceConfig config;
  config.n_estimate = initial_peers;
  config.alpha = 2.0;
  FourChoiceBroadcast protocol(config);

  ChannelConfig channels;
  channels.num_choices = 4;
  PhoneCallEngine<DynamicOverlay> engine(overlay, channels, rng);
  // Newcomers reusing a departed peer's slot must start uninformed, and
  // departures feed the engine's incremental informed-alive bookkeeping.
  attach_churn(engine, driver);

  const NodeId announcer = overlay.random_alive(rng);
  std::printf("peer %u announces a new file...\n\n", announcer);
  const RunResult result = engine.run(protocol, announcer, RunLimits{});

  const double coverage = static_cast<double>(result.final_informed) /
                          static_cast<double>(result.alive_at_end);
  std::printf("after %d rounds of gossip under churn:\n", result.rounds);
  std::printf("  membership events: %llu joins, %llu leaves\n",
              static_cast<unsigned long long>(driver.total_joins()),
              static_cast<unsigned long long>(driver.total_leaves()));
  std::printf("  alive peers at the end: %llu\n",
              static_cast<unsigned long long>(result.alive_at_end));
  std::printf("  peers holding the announcement: %llu (%.2f%%)\n",
              static_cast<unsigned long long>(result.final_informed),
              100.0 * coverage);
  std::printf("  transmissions per alive peer: %.2f\n",
              static_cast<double>(result.total_tx()) /
                  static_cast<double>(result.alive_at_end));

  // Health check of the overlay after all that churn.
  overlay.check_invariants();
  const Graph snapshot = overlay.snapshot();
  const auto comps = connected_components(snapshot);
  NodeId alive_comp = kNoNode;
  bool connected = true;
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    if (!overlay.is_alive(v)) continue;
    if (alive_comp == kNoNode) alive_comp = comps.label[v];
    connected = connected && comps.label[v] == alive_comp;
  }
  std::printf("  overlay still connected: %s\n", connected ? "yes" : "NO");
  return coverage > 0.95 && connected ? 0 : 1;
}
