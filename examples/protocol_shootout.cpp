/// Protocol shootout: run every broadcast protocol in the library on the
/// same random regular network and print a comparison table — a compact
/// tour of the protocols/ and sim/ APIs (trial runner, summaries, tables).
///
/// Build & run:  ./build/examples/protocol_shootout

#include <iostream>

#include "rrb/common/table.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trial.hpp"

int main() {
  using namespace rrb;

  const NodeId n = 1 << 13;
  const NodeId d = 10;
  std::cout << "protocol shootout on G(n = " << n << ", d = " << d
            << "), 5 trials per protocol ("
            << ParallelRunner::resolve_threads(RunnerConfig{})
            << " worker threads; results are thread-count independent)\n\n";

  const GraphFactory graph = [=](Rng& rng) {
    return random_regular_simple(n, d, rng);
  };

  struct Contender {
    std::string name;
    ChannelConfig channel;
    ProtocolFactory factory;
  };

  ChannelConfig one_choice;
  ChannelConfig four_choices;
  four_choices.num_choices = 4;
  ChannelConfig memory3;
  memory3.num_choices = 1;
  memory3.memory = 3;

  std::vector<Contender> contenders;
  contenders.push_back({"push", one_choice, [](const Graph&) {
                          return make_protocol<PushProtocol>();
                        }});
  contenders.push_back({"pull", one_choice, [](const Graph&) {
                          return make_protocol<PullProtocol>();
                        }});
  contenders.push_back({"push&pull", one_choice, [](const Graph&) {
                          return make_protocol<PushPullProtocol>();
                        }});
  contenders.push_back({"median-counter", one_choice, [n](const Graph&) {
                          MedianCounterConfig cfg;
                          cfg.n_estimate = n;
                          return make_protocol<MedianCounterProtocol>(cfg);
                        }});
  contenders.push_back({"four-choice (Alg 1)", four_choices,
                        [n](const Graph&) {
                          FourChoiceConfig cfg;
                          cfg.n_estimate = n;
                          return make_protocol<FourChoiceBroadcast>(cfg);
                        }});
  contenders.push_back({"sequentialised (fn.2)", memory3, [n](const Graph&) {
                          FourChoiceConfig cfg;
                          cfg.n_estimate = n;
                          return make_protocol<SequentialisedFourChoice>(
                              cfg);
                        }});

  Table table({"protocol", "completed", "rounds to done", "tx per node",
               "channels/node/round"});
  for (const Contender& c : contenders) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 7;
    cfg.channel = c.channel;
    const TrialOutcome out = run_trials(graph, c.factory, cfg);
    double channels_per = 0.0;
    for (const RunResult& r : out.runs)
      channels_per += static_cast<double>(r.channels_opened) /
                      static_cast<double>(r.n) /
                      static_cast<double>(r.rounds);
    channels_per /= static_cast<double>(out.runs.size());
    table.begin_row();
    table.add(c.name);
    table.add(out.completion_rate, 2);
    table.add(out.completion_round.mean, 1);
    table.add(out.tx_per_node.mean, 2);
    table.add(channels_per, 2);
  }
  std::cout << table
            << "\nReading guide: the four-choice algorithm trades a "
               "logarithmic round count\nfor doubly-logarithmic per-node "
               "message cost; the sequentialised variant\nmatches it using "
               "one channel per step with 3 steps of memory.\n";
  return 0;
}
