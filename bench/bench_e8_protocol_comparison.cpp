/// E8 — Protocol comparison table: all the broadcast schemes discussed in
/// §1 side by side on the same random regular graph: classical push, pull,
/// push&pull, Karp et al.'s median-counter termination, the quasirandom
/// list model, the sequentialised memory variant, and the paper's
/// four-choice Algorithm 1.
///
/// Thin driver over the campaign subsystem: the scheme axis lives in
/// bench/campaigns/e8_protocol_comparison.campaign (plus the quasirandom
/// push companion spec); this binary only renders the paper table in the
/// introduction's ranking order.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

const exp::JsonObject& record_for(const std::vector<exp::CellResult>& cells,
                                  BroadcastScheme scheme) {
  return find_record(cells, [scheme](const exp::CampaignCell& cell) {
    return cell.scheme == scheme;
  });
}

}  // namespace

int main() {
  banner("E8: protocol comparison on G(n, d), n = 2^15, d = 10",
         "rows the paper's introduction ranks: push Θ(n log n) tx; "
         "push&pull/median-counter better; four-choice O(n log log n)");

  const exp::CampaignSpec spec =
      exp::load_spec(campaign_path("e8_protocol_comparison"));
  const exp::CampaignOutcome main_out =
      exp::CampaignRunner(spec, {}).run();
  const exp::CampaignOutcome quasi_out =
      exp::CampaignRunner(exp::load_spec(campaign_path("e8_quasirandom")), {})
          .run();

  // The introduction's ranking order, with the quasirandom push row from
  // the companion spec spliced in where the old hand-written table had it.
  const std::vector<std::pair<const char*, const exp::JsonObject*>> rows = {
      {"push (1 choice)",
       &record_for(main_out.cells, BroadcastScheme::kPush)},
      {"push, fixed horizon",
       &record_for(main_out.cells, BroadcastScheme::kFixedHorizonPush)},
      {"throttled push&pull [11]",
       &record_for(main_out.cells, BroadcastScheme::kThrottledPushPull)},
      {"pull (1 choice)",
       &record_for(main_out.cells, BroadcastScheme::kPull)},
      {"push&pull (1 choice)",
       &record_for(main_out.cells, BroadcastScheme::kPushPull)},
      {"median-counter (Karp)",
       &record_for(main_out.cells, BroadcastScheme::kMedianCounter)},
      {"quasirandom push",
       &record_for(quasi_out.cells, BroadcastScheme::kPush)},
      {"4-choice Alg 1",
       &record_for(main_out.cells, BroadcastScheme::kFourChoice)},
      {"seq. memory-3 (footnote 2)",
       &record_for(main_out.cells, BroadcastScheme::kSequentialised)},
  };

  Table table({"protocol", "rounds", "done@", "ok", "tx/node", "push tx",
               "pull tx"});
  table.set_title(std::to_string(spec.trials) +
                  " trials each; oracle termination for the baselines, "
                  "self-termination otherwise");
  BenchReport json("e8_protocol_comparison");
  json.set("n", static_cast<std::uint64_t>(spec.n_values.front()))
      .set("d", static_cast<std::uint64_t>(spec.d_values.front()));
  for (const auto& [name, record] : rows) {
    table.begin_row();
    table.add(std::string(name));
    table.add(record_number(*record, "rounds_mean"), 1);
    table.add(record_number(*record, "completion_mean"), 1);
    table.add(record_number(*record, "completion_rate"), 2);
    table.add(record_number(*record, "tx_per_node_mean"), 2);
    table.add(record_number(*record, "push_tx_mean"), 0);
    table.add(record_number(*record, "pull_tx_mean"), 0);
    json.row()
        .set("protocol", name)
        .set("rounds_mean", record_number(*record, "rounds_mean"))
        .set("completion_mean", record_number(*record, "completion_mean"))
        .set("completion_rate", record_number(*record, "completion_rate"))
        .set("tx_per_node", record_number(*record, "tx_per_node_mean"))
        .set("push_tx_mean", record_number(*record, "push_tx_mean"))
        .set("pull_tx_mean", record_number(*record, "pull_tx_mean"));
  }
  std::cout << table << "\n";
  json.write();
  std::cout
      << "how to read this: 'done@' is when everyone is informed; 'rounds' "
         "is when the\nprotocol itself stops (baselines use oracle stop, so "
         "the two coincide). The\nbaselines' tx/node grows with log n "
         "(compare E1's sweep); the four-choice\nrows pay a constant that "
         "scales only with log log n. The median-counter's\nlong tail is "
         "its Monte-Carlo deadline, not message cost. The sequentialised\n"
         "variant trades 4x the rounds for one channel per round, landing "
         "near the\nfour-choice transmission scale, as §1.2 footnote 2 "
         "predicts.\n";
  return 0;
}
