/// E8 — Protocol comparison table: all the broadcast schemes discussed in
/// §1 side by side on the same random regular graph: classical push, pull,
/// push&pull, Karp et al.'s median-counter termination, the quasirandom
/// list model, the sequentialised memory variant, and the paper's
/// four-choice Algorithm 1.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

struct Row {
  const char* name;
  ChannelConfig channel;
  ProtocolFactory factory;
};

}  // namespace

int main() {
  banner("E8: protocol comparison on G(n, d), n = 2^15, d = 10",
         "rows the paper's introduction ranks: push Θ(n log n) tx; "
         "push&pull/median-counter better; four-choice O(n log log n)");

  const NodeId n = 1 << 15;
  const NodeId d = 10;

  ChannelConfig one;
  ChannelConfig four;
  four.num_choices = 4;
  ChannelConfig seq;
  seq.num_choices = 1;
  seq.memory = 3;
  ChannelConfig quasi;
  quasi.num_choices = 1;
  quasi.quasirandom = true;

  std::vector<Row> rows;
  rows.push_back({"push (1 choice)", one, push_protocol()});
  rows.push_back({"push, fixed horizon", one, [n](const Graph& g) {
                    const auto deg = static_cast<int>(*g.regular_degree());
                    return make_protocol<FixedHorizonPush>(
                        make_push_horizon(n, deg));
                  }});
  rows.push_back({"throttled push&pull [11]", one, [n, d](const Graph&) {
                    ThrottledConfig tc;
                    tc.n_estimate = n;
                    tc.degree = d;
                    return make_protocol<ThrottledPushPull>(tc);
                  }});
  rows.push_back({"pull (1 choice)", one, pull_protocol()});
  rows.push_back({"push&pull (1 choice)", one, push_pull_protocol()});
  rows.push_back({"median-counter (Karp)", one, median_counter_protocol(n)});
  rows.push_back({"quasirandom push", quasi, push_protocol()});
  rows.push_back({"4-choice Alg 1", four, four_choice_protocol(n)});
  rows.push_back({"seq. memory-3 (footnote 2)", seq,
                  sequentialised_protocol(n)});

  Table table({"protocol", "rounds", "done@", "ok", "tx/node", "push tx",
               "pull tx"});
  table.set_title("5 trials each; oracle termination for the baselines, "
                  "self-termination otherwise");
  BenchReport json("e8_protocol_comparison");
  json.set("n", static_cast<std::uint64_t>(n))
      .set("d", static_cast<std::uint64_t>(d));
  for (const Row& row : rows) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xe8;
    cfg.channel = row.channel;
    const TrialOutcome out =
        run_trials(regular_graph(n, d), row.factory, cfg);
    table.begin_row();
    table.add(std::string(row.name));
    table.add(out.rounds.mean, 1);
    table.add(out.completion_round.mean, 1);
    table.add(out.completion_rate, 2);
    table.add(out.tx_per_node.mean, 2);
    table.add(out.push_tx.mean, 0);
    table.add(out.pull_tx.mean, 0);
    json.row()
        .set("protocol", row.name)
        .set("rounds_mean", out.rounds.mean)
        .set("completion_mean", out.completion_round.mean)
        .set("completion_rate", out.completion_rate)
        .set("tx_per_node", out.tx_per_node.mean)
        .set("push_tx_mean", out.push_tx.mean)
        .set("pull_tx_mean", out.pull_tx.mean);
  }
  std::cout << table << "\n";
  json.write();
  std::cout
      << "how to read this: 'done@' is when everyone is informed; 'rounds' "
         "is when the\nprotocol itself stops (baselines use oracle stop, so "
         "the two coincide). The\nbaselines' tx/node grows with log n "
         "(compare E1's sweep); the four-choice\nrows pay a constant that "
         "scales only with log log n. The median-counter's\nlong tail is "
         "its Monte-Carlo deadline, not message cost. The sequentialised\n"
         "variant trades 4x the rounds for one channel per round, landing "
         "near the\nfour-choice transmission scale, as §1.2 footnote 2 "
         "predicts.\n";
  return 0;
}
