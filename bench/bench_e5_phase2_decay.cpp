/// E5 — Phase 2 dynamics (Lemma 3, Corollary 2): while
/// 7n/8 >= h(t) >= n/polylog(n), one round of phase-2 behaviour (every
/// informed node pushes over its four channels) shrinks h by a constant
/// factor c > 1. Lemma 3's statement is about exactly this dynamic, so we
/// measure it across the whole h range by running the phase-2 rule from a
/// single source (PushProtocol with 4 choices *is* the phase-2 rule), then
/// show the Algorithm 1 trace for context.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

void decay_for_degree(NodeId n, NodeId d) {
  TraceConfig cfg;
  cfg.trials = 5;
  cfg.seed = 0xe5 + d;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  cfg.limits.stop_when_all_informed = true;
  const auto trace = trace_set_sizes(
      regular_graph(n, d),
      [](const Graph&) { return make_protocol<PushProtocol>(); }, cfg);

  Table table({"t", "h(t)", "h(t)/h(t-1)", "in-regime"});
  table.set_title("phase-2 dynamics (all informed push x4), n = " +
                  std::to_string(n) + ", d = " + std::to_string(d));
  std::vector<double> regime_h;
  double prev = static_cast<double>(n - 1);
  for (const SetTracePoint& p : trace) {
    const bool in_regime = p.uninformed <= 7.0 * n / 8.0 &&
                           p.uninformed >= 8.0;
    table.begin_row();
    table.add(static_cast<std::int64_t>(p.t));
    table.add(p.uninformed, 1);
    table.add(prev > 0 ? p.uninformed / prev : 0.0, 4);
    table.add(std::string(in_regime ? "*" : ""));
    if (in_regime) regime_h.push_back(p.uninformed);
    prev = p.uninformed;
    if (p.uninformed <= 0.0) break;
  }
  std::cout << table;
  const double decay = mean_consecutive_ratio(regime_h);
  std::cout << "mean per-round decay factor in the Lemma 3 regime: " << decay
            << "  => c = " << (decay > 0 ? 1.0 / decay : 0.0)
            << " (Lemma 3 wants any constant c > 1)\n\n";
}

}  // namespace

int main() {
  banner("E5: Phase 2 decay — Lemma 3, Corollary 2",
         "claim: h(t+1) <= h(t)/c during phase-2 dynamics, c > 1 constant");
  decay_for_degree(1 << 16, 8);
  decay_for_degree(1 << 16, 32);

  // Context: the actual Algorithm 1 run. At alpha = 1.5 phase 1 already
  // leaves only a polylog-sized H, so phase 2 wipes it out in 1-2 rounds —
  // Corollary 2's h <= n/log^5 n is reached immediately.
  const NodeId n = 1 << 16;
  FourChoiceConfig fc;
  fc.n_estimate = n;
  const PhaseSchedule sched = make_schedule_small_d(fc);
  TraceConfig cfg;
  cfg.trials = 5;
  cfg.seed = 0xe5;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  const auto trace = trace_set_sizes(
      regular_graph(n, 8),
      [n](const Graph&) {
        FourChoiceConfig c;
        c.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(c);
      },
      cfg);
  Table table({"t", "phase", "h(t)"});
  table.set_title("Algorithm 1 trace around the phase 1/2 boundary, "
                  "n = 2^16, d = 8");
  for (Round t = sched.phase1_end - 2; t <= sched.phase2_end; ++t) {
    if (t < 1 || t > static_cast<Round>(trace.size())) continue;
    const SetTracePoint& p = trace[static_cast<std::size_t>(t - 1)];
    table.begin_row();
    table.add(static_cast<std::int64_t>(t));
    table.add(t <= sched.phase1_end ? 1 : 2);
    table.add(p.uninformed, 1);
  }
  std::cout << table << "\n";
  const double lg = std::log2(static_cast<double>(n));
  std::cout << "Corollary 2 target n/log^5 n = "
            << static_cast<double>(n) / std::pow(lg, 5)
            << "; the trace reaches 0 well before phase 2 ends.\n";
  return 0;
}
