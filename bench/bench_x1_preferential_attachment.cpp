/// X1 (extension) — related work [8] (Doerr, Fouz, Friedrich, STOC'11):
/// on preferential-attachment graphs, push&pull that avoids the partner
/// contacted in the previous round ("memory 1") spreads rumours in
/// Θ(log n / log log n) time, while memoryless push&pull needs Θ(log n).
/// We sweep n on BA graphs and compare plain push&pull, memory-1
/// push&pull, and the four-choice channel layer.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("X1: preferential attachment — the power of avoiding the last "
         "partner",
         "related work [8]: memory-1 push&pull beats memoryless push&pull "
         "on PA graphs (Theta(log n/loglog n) vs Theta(log n))");

  Table table({"n", "pp done@ (med)", "mem-1 done@ (med)",
               "4-choice done@", "pp tx/node", "mem-1 tx/node"});
  table.set_title("Barabási–Albert graphs, m = 4, push&pull (15 trials, "
                  "medians)");

  std::vector<double> lgs, plain_rounds, mem_rounds;
  for (const NodeId n : {1U << 11, 1U << 13, 1U << 15, 1U << 17}) {
    const GraphFactory graph = [n](Rng& rng) {
      return preferential_attachment(n, 4, rng);
    };

    TrialConfig plain_cfg;
    plain_cfg.trials = 15;
    plain_cfg.seed = 0xa1 + n;
    const TrialOutcome plain =
        run_trials(graph, push_pull_protocol(), plain_cfg);

    TrialConfig mem_cfg = plain_cfg;
    mem_cfg.seed = 0xa2 + n;
    mem_cfg.channel.memory = 1;
    const TrialOutcome mem =
        run_trials(graph, push_pull_protocol(), mem_cfg);

    TrialConfig four_cfg = plain_cfg;
    four_cfg.seed = 0xa3 + n;
    four_cfg.channel.num_choices = 4;
    const TrialOutcome four =
        run_trials(graph, push_pull_protocol(), four_cfg);

    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(plain.completion_round.median, 1);
    table.add(mem.completion_round.median, 1);
    table.add(four.completion_round.median, 1);
    table.add(plain.tx_per_node.mean, 2);
    table.add(mem.tx_per_node.mean, 2);

    lgs.push_back(std::log2(static_cast<double>(n)));
    plain_rounds.push_back(plain.completion_round.median);
    mem_rounds.push_back(mem.completion_round.median);
  }
  std::cout << table << "\n";
  const AffineFit plain_fit = fit_affine(lgs, plain_rounds);
  const AffineFit mem_fit = fit_affine(lgs, mem_rounds);
  std::cout << "push&pull rounds growth: " << plain_fit.slope
            << " rounds per log2-unit\n"
            << "mem-1     rounds growth: " << mem_fit.slope
            << " rounds per log2-unit (flatter => the [8] speed-up)\n";
  std::cout << "\nexpected shape: memory-1 completes in fewer rounds with a "
               "flatter growth in\nlog n than memoryless push&pull; the "
               "four-choice channel layer gets the same\neffect without "
               "any memory, which is the reproduced paper's angle.\n";
  return 0;
}
