/// X2 (extension) — related work [11]/[13] context: the four-choice
/// modification was first analysed on G(n,p) (Elsässer–Sauerwald,
/// SODA'08); the reproduced paper extends it to sparse random *regular*
/// graphs. We run Algorithm 1 on G(n,p) at several average degrees and on
/// G(n,d), confirming the behaviour transfers across the two models.

#include "bench_util.hpp"

#include <stdexcept>

#include "rrb/graph/algorithms.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("X2: G(n,p) vs G(n,d) — the four-choice algorithm across random "
         "graph models",
         "claim (§1.1/[13]): O(n log log n) transmissions first shown for "
         "Gnp; the paper extends it to sparse regular graphs");

  const NodeId n = 1 << 14;

  Table table({"model", "avg degree", "ok", "done@", "tx/node"});
  table.set_title("Algorithm 1, n = 2^14 (5 trials)");

  // Average degrees at or above the G(n,p) connectivity threshold
  // (log n ≈ 10 at n = 2^14); below it isolated vertices appear w.h.p.
  for (const double avg_d : {12.0, 16.0, 32.0}) {
    const double p = avg_d / static_cast<double>(n - 1);
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xb2 + static_cast<std::uint64_t>(avg_d);
    cfg.channel.num_choices = 4;
    const TrialOutcome gnp_out = run_trials(
        [n, p](Rng& rng) {
          // Reject the (vanishingly rare at these degrees) disconnected
          // draws so completion reflects the broadcast, not isolated nodes.
          for (int attempt = 0; attempt < 32; ++attempt) {
            Graph g = gnp(n, p, rng);
            if (is_connected(g)) return g;
          }
          throw std::runtime_error("gnp stayed disconnected");
        },
        four_choice_protocol(n), cfg);
    table.begin_row();
    table.add(std::string("G(n,p)"));
    table.add(avg_d, 0);
    table.add(gnp_out.completion_rate, 2);
    table.add(gnp_out.completion_round.mean, 1);
    table.add(gnp_out.tx_per_node.mean, 2);

    TrialConfig reg_cfg = cfg;
    reg_cfg.seed = 0xb3 + static_cast<std::uint64_t>(avg_d);
    const TrialOutcome reg_out =
        run_trials(regular_graph(n, static_cast<NodeId>(avg_d)),
                   four_choice_protocol(n), reg_cfg);
    table.begin_row();
    table.add(std::string("G(n,d)"));
    table.add(avg_d, 0);
    table.add(reg_out.completion_rate, 2);
    table.add(reg_out.completion_round.mean, 1);
    table.add(reg_out.tx_per_node.mean, 2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: matching completion and transmission "
               "profiles across the two\nmodels at equal average degree — "
               "the paper's extension of [13] beyond the\nlog-degree "
               "barrier behaves the same way the Gnp original does.\n";
  return 0;
}
