/// E12 — Robustness to the size estimate (§1: the algorithm "only requires
/// rough estimates of the number of nodes"): run Algorithm 1 with n̂
/// off by factors 1/4 .. 4 and measure completion and cost.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E12: accuracy of the size estimate n̂",
         "claim: any n̂ within a constant factor of n preserves "
         "correctness; cost scales with log n̂");

  const NodeId n = 1 << 14;
  const NodeId d = 8;

  Table table({"n̂/n", "n̂", "ok", "coverage", "done@", "horizon",
               "tx/node"});
  table.set_title("Algorithm 1 with misestimated n̂, true n = 2^14, d = 8 "
                  "(10 trials)");
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto n_est = static_cast<std::uint64_t>(
        std::max(2.0, static_cast<double>(n) * factor));
    TrialConfig cfg;
    cfg.trials = 10;
    cfg.seed = 0xec + static_cast<std::uint64_t>(factor * 100);
    cfg.channel.num_choices = 4;
    const TrialOutcome out =
        run_trials(regular_graph(n, d), four_choice_protocol(n_est), cfg);
    double coverage = 0.0;
    for (const RunResult& r : out.runs)
      coverage += static_cast<double>(r.final_informed) /
                  static_cast<double>(r.n);
    coverage /= static_cast<double>(out.runs.size());

    FourChoiceConfig fc;
    fc.n_estimate = n_est;
    table.begin_row();
    table.add(factor, 2);
    table.add(n_est);
    table.add(out.completion_rate, 2);
    table.add(coverage, 6);
    table.add(out.completion_round.mean, 1);
    table.add(static_cast<std::int64_t>(
        make_schedule_small_d(fc).total_rounds()));
    table.add(out.tx_per_node.mean, 2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: all rows complete (constant-factor slack in "
               "n̂ only shifts\nphase boundaries by O(alpha) rounds); "
               "underestimates shave transmissions,\noverestimates pad "
               "them — both stay on the O(n log log n) scale.\n";
  return 0;
}
