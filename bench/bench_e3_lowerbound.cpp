/// E3 — Theorem 1 (lower bound shape): any strictly-oblivious one-choice
/// algorithm finishing in O(log n) rounds needs Ω(n log n / log d)
/// transmissions. We measure the classical push&pull (the best
/// single-choice contender) run to completion: its total transmissions
/// should scale like n log n / log d — i.e. the normalised constant
/// tx · log d / (n log n) stays roughly flat across d — and stay far above
/// the four-choice algorithm's O(n log log n).

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E3: Theorem 1 — one-choice transmission lower bound shape",
         "claim: single-choice push&pull needs ~ n·log n / log d "
         "transmissions; normalised constant flat in d");

  const NodeId n = 1 << 14;
  const double lg_n = std::log2(static_cast<double>(n));

  Table table({"d", "rounds", "tx/node", "bound logn/logd", "tx/bound",
               "ok"});
  table.set_title("push&pull, 1 choice, run to completion (n = 2^14, "
                  "5 trials)");

  for (const NodeId d : {4U, 8U, 16U, 32U, 64U, 128U}) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xe3 + d;
    const TrialOutcome out =
        run_trials(regular_graph(n, d), push_pull_protocol(), cfg);
    const double bound = lg_n / std::log2(static_cast<double>(d));
    table.begin_row();
    table.add(static_cast<std::uint64_t>(d));
    table.add(out.rounds.mean, 1);
    table.add(out.tx_per_node.mean, 2);
    table.add(bound, 2);
    table.add(out.tx_per_node.mean / bound, 2);
    table.add(out.completion_rate, 2);
  }
  std::cout << table << "\n";

  // The self-terminating (oracle-free) Monte Carlo push pays its full
  // horizon: the Θ(n log n) row the lower bound says you cannot beat by a
  // large margin in the one-choice model at O(log n) time.
  Table mc({"d", "horizon", "tx/node", "ok"});
  mc.set_title("fixed-horizon push (2·C_d·ln n rounds, self-terminating)");
  for (const NodeId d : {4U, 16U, 64U}) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0x9e3 + d;
    const Round horizon = make_push_horizon(n, static_cast<int>(d));
    const TrialOutcome out = run_trials(
        regular_graph(n, d),
        [horizon](const Graph&) {
          return make_protocol<FixedHorizonPush>(horizon);
        },
        cfg);
    mc.begin_row();
    mc.add(static_cast<std::uint64_t>(d));
    mc.add(static_cast<std::int64_t>(horizon));
    mc.add(out.tx_per_node.mean, 2);
    mc.add(out.completion_rate, 2);
  }
  std::cout << mc << "\n";

  // Upper-bound contender: age-throttled push&pull (Elsässer-style, the
  // paper's reference [11]) actually *achieves* the n log n / log d shape.
  Table upper({"d", "tau", "rounds", "tx/node", "tx/bound", "ok"});
  upper.set_title("throttled push&pull (transmit only while age <= tau)");
  for (const NodeId d : {4U, 8U, 16U, 32U, 64U, 128U}) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0x7e3 + d;
    const TrialOutcome out = run_trials(
        regular_graph(n, d),
        [n, d](const Graph&) {
          ThrottledConfig tc;
          tc.n_estimate = n;
          tc.degree = d;
          return make_protocol<ThrottledPushPull>(tc);
        },
        cfg);
    ThrottledConfig tc;
    tc.n_estimate = n;
    tc.degree = d;
    const ThrottledPushPull probe(tc);
    const double bound = lg_n / std::log2(static_cast<double>(d));
    upper.begin_row();
    upper.add(static_cast<std::uint64_t>(d));
    upper.add(static_cast<std::int64_t>(probe.tau()));
    upper.add(out.rounds.mean, 1);
    upper.add(out.tx_per_node.mean, 2);
    upper.add(out.tx_per_node.mean / bound, 2);
    upper.add(out.completion_rate, 2);
  }
  std::cout << upper << "\n";

  // Contrast: the modified model (4 distinct choices) at d = 8.
  TrialConfig fc_cfg;
  fc_cfg.trials = 5;
  fc_cfg.seed = 0x4e3;
  fc_cfg.channel.num_choices = 4;
  const TrialOutcome fc =
      run_trials(regular_graph(n, 8), four_choice_protocol(n), fc_cfg);
  std::cout << "four-choice (Algorithm 1, d = 8): tx/node = "
            << fc.tx_per_node.mean << ", completion rate = "
            << fc.completion_rate << "\n";
  std::cout << "\nexpected shape: every single-choice row pays at least the "
               "Theorem 1 bound\n(tx/bound >= 1 throughout), and the "
               "measured cost falls with d roughly as the\nbound predicts "
               "until the completion-tail floor (~log3 n rounds of active\n"
               "senders) takes over at large d. The four-choice row escapes "
               "the n-dependent\nbound entirely: its cost is flat in n (see "
               "E1), which no single-choice\nstrictly-oblivious algorithm "
               "can achieve.\n";
  return 0;
}
