/// E16 — Karp et al. baseline on complete graphs: the median-counter
/// push&pull terminates itself after log3 n + O(log log n) rounds with
/// O(n log log n) transmissions (the result the paper's abstract contrasts
/// against, and the source of its termination machinery).

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E16: Karp/Schindelhauer/Shenker/Vöcking on K_n",
         "claim: rounds = log3 n + O(log log n); transmissions = "
         "O(n log log n)");

  Table table({"n", "log3(n)", "done@", "rounds", "tx/node",
               "tx/(n lglg n)", "ok"});
  table.set_title("median-counter push&pull on the complete graph "
                  "(5 trials)");

  std::vector<double> lgs, done;
  for (const NodeId n : {1U << 8, 1U << 9, 1U << 10, 1U << 11, 1U << 12,
                         1U << 13}) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xf16 + n;
    const TrialOutcome out = run_trials(
        [n](Rng&) { return complete(n); }, median_counter_protocol(n), cfg);
    const double log3 = std::log(static_cast<double>(n)) / std::log(3.0);
    const double lglg = std::log2(std::log2(static_cast<double>(n)));
    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(log3, 2);
    table.add(out.completion_round.mean, 1);
    table.add(out.rounds.mean, 1);
    table.add(out.tx_per_node.mean, 2);
    table.add(out.tx_per_node.mean / lglg, 2);
    table.add(out.completion_rate, 2);
    lgs.push_back(std::log2(static_cast<double>(n)));
    done.push_back(out.completion_round.mean);
  }
  std::cout << table << "\n";
  print_fit("completion rounds vs log2 n", lgs, done);
  std::cout << "expected shape: done@ tracks log3 n plus a slowly growing "
               "term; tx/(n lglg n)\nstays roughly constant — the "
               "O(n log log n) of Karp et al.\n";
  return 0;
}
