/// E16 — Karp et al. baseline on complete graphs: the median-counter
/// push&pull terminates itself after log3 n + O(log log n) rounds with
/// O(n log log n) transmissions (the result the paper's abstract contrasts
/// against, and the source of its termination machinery).
///
/// Thin driver over the campaign subsystem: the n sweep lives in
/// bench/campaigns/e16_complete_graph.campaign and runs through rrb::exp
/// (cell seeds derive from (campaign_seed, cell_key) — the campaign
/// seeding contract); this binary only renders the paper table and fit.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E16: Karp/Schindelhauer/Shenker/Vöcking on K_n",
         "claim: rounds = log3 n + O(log log n); transmissions = "
         "O(n log log n)");

  const exp::CampaignSpec spec =
      exp::load_spec(campaign_path("e16_complete_graph"));
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  Table table({"n", "log3(n)", "done@", "rounds", "tx/node",
               "tx/(n lglg n)", "ok"});
  table.set_title("median-counter push&pull on the complete graph (" +
                  std::to_string(spec.trials) + " trials)");

  std::vector<double> lgs, done;
  for (const NodeId n : spec.n_values) {
    const exp::JsonObject& record = find_record(
        out.cells, [n](const exp::CampaignCell& c) { return c.n == n; });
    const double log3 = std::log(static_cast<double>(n)) / std::log(3.0);
    const double lglg = std::log2(std::log2(static_cast<double>(n)));
    const double done_at = record_number(record, "completion_mean");
    const double tx_node = record_number(record, "tx_per_node_mean");
    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(log3, 2);
    table.add(done_at, 1);
    table.add(record_number(record, "rounds_mean"), 1);
    table.add(tx_node, 2);
    table.add(tx_node / lglg, 2);
    table.add(record_number(record, "completion_rate"), 2);
    lgs.push_back(std::log2(static_cast<double>(n)));
    done.push_back(done_at);
  }
  std::cout << table << "\n";
  print_fit("completion rounds vs log2 n", lgs, done);
  std::cout << "expected shape: done@ tracks log3 n plus a slowly growing "
               "term; tx/(n lglg n)\nstays roughly constant — the "
               "O(n log log n) of Karp et al.\n";
  return 0;
}
