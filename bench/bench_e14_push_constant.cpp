/// E14 — The Fountoulakis–Panagiotou constant (§1.1): the push protocol on
/// a random d-regular graph completes in (1+o(1))·C_d·ln n rounds with
/// C_d = 1/ln(2(1-1/d)) - 1/(d·ln(1-1/d)). We measure rounds/ln n across d
/// and compare with C_d.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E14: push run-time constant C_d (Fountoulakis–Panagiotou)",
         "claim: push rounds / ln n -> C_d as n grows");

  const NodeId n = 1 << 15;
  const double ln_n = std::log(static_cast<double>(n));

  Table table({"d", "C_d", "measured rounds", "rounds/ln n", "ratio to C_d"});
  table.set_title("push on G(n,d), n = 2^15 (5 trials)");
  for (const NodeId d : {3U, 4U, 5U, 6U, 8U, 12U, 16U, 32U}) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xee + d;
    const TrialOutcome out =
        run_trials(regular_graph(n, d), push_protocol(), cfg);
    const double cd = push_constant_cd(static_cast<int>(d));
    const double per_ln = out.completion_round.mean / ln_n;
    table.begin_row();
    table.add(static_cast<std::uint64_t>(d));
    table.add(cd, 3);
    table.add(out.completion_round.mean, 1);
    table.add(per_ln, 3);
    table.add(per_ln / cd, 3);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: ratio-to-C_d close to 1 and drifting "
               "upward only at tiny d\n(finite-size o(1) terms); C_d "
               "decreases towards 1/ln2 + 1 ≈ 2.44 as d grows.\n";
  return 0;
}
