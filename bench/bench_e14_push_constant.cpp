/// E14 — The Fountoulakis–Panagiotou constant (§1.1): the push protocol on
/// a random d-regular graph completes in (1+o(1))·C_d·ln n rounds with
/// C_d = 1/ln(2(1-1/d)) - 1/(d·ln(1-1/d)). We measure rounds/ln n across d
/// and compare with C_d.
///
/// Thin driver over the campaign subsystem: the d sweep lives in
/// bench/campaigns/e14_push_constant.campaign and runs through rrb::exp
/// (cell seeds derive from (campaign_seed, cell_key) — the campaign
/// seeding contract); this binary only renders the paper table and the
/// trajectory report.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E14: push run-time constant C_d (Fountoulakis–Panagiotou)",
         "claim: push rounds / ln n -> C_d as n grows");

  const exp::CampaignSpec spec =
      exp::load_spec(campaign_path("e14_push_constant"));
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  const NodeId n = spec.n_values.front();
  const double ln_n = std::log(static_cast<double>(n));

  Table table({"d", "C_d", "measured rounds", "rounds/ln n", "ratio to C_d"});
  table.set_title("push on G(n,d), n = " + std::to_string(n) + " (" +
                  std::to_string(spec.trials) + " trials)");
  BenchReport json("e14_push_constant");

  for (const NodeId d : spec.d_values) {
    const exp::JsonObject& record =
        find_record(out.cells, [d](const exp::CampaignCell& cell) {
          return cell.d == d;
        });
    const double done = record_number(record, "completion_mean");
    const double cd = push_constant_cd(static_cast<int>(d));
    const double per_ln = done / ln_n;
    table.begin_row();
    table.add(static_cast<std::uint64_t>(d));
    table.add(cd, 3);
    table.add(done, 1);
    table.add(per_ln, 3);
    table.add(per_ln / cd, 3);

    json.row()
        .set("d", static_cast<std::uint64_t>(d))
        .set("cd", cd)
        .set("completion_mean", done)
        .set("rounds_per_ln_n", per_ln);
  }
  std::cout << table << "\n";
  json.write();
  std::cout << "expected shape: ratio-to-C_d close to 1 and drifting "
               "upward only at tiny d\n(finite-size o(1) terms); C_d "
               "decreases towards 1/ln2 + 1 ≈ 2.44 as d grows.\n";
  return 0;
}
