/// E18 — Engine micro-benchmarks (google-benchmark): generator and round
/// loop throughput, the costs a downstream user of the library pays.

#include <benchmark/benchmark.h>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"

namespace rrb {
namespace {

void BM_ConfigurationModel(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    Graph g = configuration_model(n, 8, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConfigurationModel)->Arg(1 << 12)->Arg(1 << 16);

void BM_RandomRegularSimple(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    Graph g = random_regular_simple(n, 8, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomRegularSimple)->Arg(1 << 12)->Arg(1 << 16);

void BM_EdgeIdMap(benchmark::State& state) {
  Rng rng(3);
  const Graph g = configuration_model(static_cast<NodeId>(state.range(0)),
                                      8, rng);
  for (auto _ : state) {
    EdgeIdMap map = build_edge_id_map(g);
    benchmark::DoNotOptimize(map.num_edges);
  }
}
BENCHMARK(BM_EdgeIdMap)->Arg(1 << 14);

void BM_PushBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng grng(4);
  const Graph g = random_regular_simple(n, 8, grng);
  Rng rng(5);
  for (auto _ : state) {
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
    PushProtocol push;
    const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
    benchmark::DoNotOptimize(r.push_tx);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushBroadcast)->Arg(1 << 12)->Arg(1 << 16);

void BM_FourChoiceBroadcast(benchmark::State& state) {
  const auto n = static_cast<NodeId>(state.range(0));
  Rng grng(6);
  const Graph g = random_regular_simple(n, 8, grng);
  Rng rng(7);
  ChannelConfig chan;
  chan.num_choices = 4;
  for (auto _ : state) {
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
    FourChoiceConfig fc;
    fc.n_estimate = n;
    FourChoiceBroadcast alg(fc);
    const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
    benchmark::DoNotOptimize(r.push_tx);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FourChoiceBroadcast)->Arg(1 << 12)->Arg(1 << 16);

void BM_SampleDistinctSmall(benchmark::State& state) {
  Rng rng(8);
  std::array<std::uint32_t, 8> buf{};
  for (auto _ : state) {
    rng.sample_distinct_small(32, 4, std::span<std::uint32_t>(buf));
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampleDistinctSmall);

}  // namespace
}  // namespace rrb
