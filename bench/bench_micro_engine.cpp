/// E18 — Engine micro-benchmarks: round-loop and generator throughput, the
/// costs a downstream user of the library pays. Self-contained timing
/// harness (no external benchmark dependency) so it runs everywhere the
/// library builds; emits BENCH_micro_engine.json so the repo's bench
/// trajectory accumulates a rounds/sec figure per PR.
///
/// Scenarios are chosen to isolate the engine's dispatch layers:
///  - push/four-choice/median-counter broadcasts on G(n, 8): the
///    statically-dispatched round loop (median-counter additionally
///    exercises the stamp/on_receive message path);
///  - the same push broadcast through the virtual ProtocolAdapter: the
///    type-erased path, for measuring the devirtualisation gap;
///  - four-choice under churn on the dynamic overlay: round hook plus the
///    incremental informed-alive bookkeeping;
///  - configuration-model generation and the sampler primitive.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/p2p/churn.hpp"

namespace rrb {
namespace {

using Clock = std::chrono::steady_clock;

struct Timing {
  int iters = 0;
  double wall_ms = 0.0;       ///< total timed wall time
  double rounds = 0.0;        ///< engine rounds summed over iterations
  double node_rounds = 0.0;   ///< sum of n * rounds (per-node work units)
  double tx = 0.0;            ///< transmissions summed over iterations
};

/// Run `body` (returning a RunResult) until ~min_ms of wall time or
/// max_iters, whichever first; one warmup iteration is discarded.
template <typename Body>
Timing time_runs(Body&& body, double min_ms = 300.0, int max_iters = 64) {
  (void)body();  // warmup
  Timing timing;
  const auto start = Clock::now();
  while (timing.iters < max_iters) {
    const RunResult r = body();
    ++timing.iters;
    timing.rounds += static_cast<double>(r.rounds);
    timing.node_rounds +=
        static_cast<double>(r.rounds) * static_cast<double>(r.n);
    timing.tx += static_cast<double>(r.total_tx());
    timing.wall_ms = std::chrono::duration<double, std::milli>(
                         Clock::now() - start)
                         .count();
    if (timing.wall_ms >= min_ms) break;
  }
  return timing;
}

void report(bench::BenchReport& json, const std::string& name,
            const Timing& t) {
  const double secs = t.wall_ms / 1000.0;
  const double rounds_per_sec = secs > 0.0 ? t.rounds / secs : 0.0;
  const double node_rounds_per_sec =
      secs > 0.0 ? t.node_rounds / secs : 0.0;
  std::printf("%-28s %5d iters  %9.2f ms  %12.0f rounds/s  %14.3e "
              "node-rounds/s\n",
              name.c_str(), t.iters, t.wall_ms, rounds_per_sec,
              node_rounds_per_sec);
  json.row()
      .set("name", name)
      .set("iters", t.iters)
      .set("wall_ms", t.wall_ms)
      .set("rounds", t.rounds)
      .set("rounds_per_sec", rounds_per_sec)
      .set("node_rounds_per_sec", node_rounds_per_sec)
      .set("tx", t.tx);
}

void run_all() {
  const NodeId n = 1 << 14;
  bench::BenchReport json("micro_engine");
  json.set("n", static_cast<std::uint64_t>(n)).set("d", 8);

  const Graph g = [&json, n] {
    const bench::Phase phase(json, "graph_setup");
    Rng grng(4);
    return random_regular_simple(n, 8, grng);
  }();

  std::printf("%-28s %11s  %12s  %15s  %18s\n", "scenario", "iters",
              "wall", "rounds/s", "node-rounds/s");

  // Topology, engine and protocol are constructed once per scenario and
  // reused across iterations: run() re-initialises all per-run state, and
  // reusing the engine exercises the flat-buffer reuse the round loop is
  // built around (it also keeps the allocator out of the measurement).
  {
    Rng rng(5);
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
    PushProtocol push;
    const Timing t = time_runs(
        [&] { return engine.run(push, NodeId{0}, RunLimits{}); });
    report(json, "push/static", t);
  }

  {
    // Identical workload through the virtual adapter: the devirtualisation
    // gap is this row versus push/static.
    Rng rng(5);
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
    ProtocolAdapter<PushProtocol> push;
    BroadcastProtocol& erased = push;
    const Timing t = time_runs(
        [&] { return engine.run(erased, NodeId{0}, RunLimits{}); });
    report(json, "push/virtual-adapter", t);
  }

  {
    Rng rng(7);
    ChannelConfig chan;
    chan.num_choices = 4;
    FourChoiceConfig fc;
    fc.n_estimate = n;
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
    FourChoiceBroadcast alg(fc);
    const Timing t = time_runs(
        [&] { return engine.run(alg, NodeId{0}, RunLimits{}); });
    report(json, "four-choice/static", t);
  }

  {
    Rng rng(9);
    MedianCounterConfig mc;
    mc.n_estimate = n;
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
    MedianCounterProtocol alg(mc);
    const Timing t = time_runs(
        [&] { return engine.run(alg, NodeId{0}, RunLimits{}); });
    report(json, "median-counter/static", t);
  }

  {
    // Churn: the round hook mutates the overlay while the engine keeps its
    // informed-alive count incrementally (no O(n) rescan per round).
    Rng rng(11);
    ChannelConfig chan;
    chan.num_choices = 4;
    FourChoiceConfig fc;
    fc.n_estimate = n;
    fc.alpha = 2.0;
    const Timing t = time_runs(
        [&] {
          DynamicOverlay overlay(n + n / 8, n, 8, rng);
          ChurnConfig ccfg;
          ccfg.joins_per_round = 4.0;
          ccfg.leaves_per_round = 4.0;
          ccfg.switches_per_round = 2;
          ChurnDriver driver(overlay, ccfg, rng);
          PhoneCallEngine<DynamicOverlay> engine(overlay, chan, rng);
          attach_churn(engine, driver);
          FourChoiceBroadcast alg(fc);
          return engine.run(alg, overlay.random_alive(rng), RunLimits{});
        },
        300.0, 16);
    report(json, "four-choice/churn", t);
  }

  {
    // Trial-batched engine: trials/sec through the broadcast_trials facade,
    // the sequential driver versus B lockstep lanes over the shared
    // topology (outputs are bit-identical — see test_batched_engine.cpp —
    // so the rows measure pure scheduling). Each rep times one whole
    // 64-trial sweep; the best rep is reported, which guards the
    // trajectory against scheduler noise on shared machines.
    constexpr int kTrials = 64;
    for (const BroadcastScheme scheme :
         {BroadcastScheme::kPush, BroadcastScheme::kPushPull}) {
      for (const int batch : {0, 32, 64}) {
        BroadcastOptions opt;
        opt.scheme = scheme;
        opt.seed = 0xbea7;
        opt.trials = kTrials;
        opt.runner.threads = 1;
        opt.runner.batch = batch;
        (void)broadcast_trials(g, opt);  // warmup
        int reps = 0;
        double total_ms = 0.0;
        double best_trials_per_sec = 0.0;
        while (reps < 8 && (reps < 3 || total_ms < 900.0)) {
          const auto start = Clock::now();
          (void)broadcast_trials(g, opt);
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count();
          total_ms += ms;
          ++reps;
          if (ms > 0.0)
            best_trials_per_sec = std::max(best_trials_per_sec,
                                           kTrials / (ms / 1000.0));
        }
        const std::string name =
            std::string("trials/") + scheme_name(scheme) +
            (batch == 0 ? "/seq" : "/B" + std::to_string(batch));
        std::printf("%-28s %5d reps   %9.2f ms  %12.1f trials/s\n",
                    name.c_str(), reps, total_ms, best_trials_per_sec);
        json.row()
            .set("name", name)
            .set("batch", batch)
            .set("trials", kTrials)
            .set("reps", reps)
            .set("wall_ms", total_ms)
            .set("trials_per_sec", best_trials_per_sec);
      }
    }
  }

  {
    const bench::Phase phase(json, "generators");
    Rng rng(13);
    const auto start = Clock::now();
    int iters = 0;
    Count edges = 0;
    while (iters < 64) {
      const Graph cm = configuration_model(n, 8, rng);
      edges += cm.num_edges();
      ++iters;
      if (std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count() >= 300.0)
        break;
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    const double nodes_per_sec =
        static_cast<double>(iters) * static_cast<double>(n) /
        (wall_ms / 1000.0);
    std::printf("%-28s %5d iters  %9.2f ms  %12.0f nodes/s\n",
                "configuration-model", iters, wall_ms, nodes_per_sec);
    json.row()
        .set("name", "configuration-model")
        .set("iters", iters)
        .set("wall_ms", wall_ms)
        .set("nodes_per_sec", nodes_per_sec)
        .set("edges", static_cast<std::uint64_t>(edges));
  }

  json.write();
}

}  // namespace
}  // namespace rrb

int main() {
  rrb::bench::banner("E18 micro-engine",
                     "Round-loop and generator throughput; the "
                     "static-vs-virtual dispatch gap.");
  rrb::run_all();
  return 0;
}
