/// E10 — §5 counterexample: on the Cartesian product G(n,d) □ K5 — a graph
/// with expansion and degree similar to a random regular graph — the
/// multi-choice model "may not lead to any notable improvement". We compare
/// the four-choice algorithm and push on the product vs a plain random
/// regular graph of identical size and degree.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E10: Cartesian product with K5 — where multi-choice stops helping",
         "claim (§5): on G(n,d) x K5 the four-choice model loses its "
         "advantage despite random-regular-like expansion");

  const NodeId base_n = 1 << 13;
  const NodeId base_d = 6;
  const NodeId prod_n = base_n * 5;
  const NodeId prod_d = base_d + 4;

  const GraphFactory product_factory = [base_n, base_d](Rng& rng) {
    const Graph g = random_regular_simple(base_n, base_d, rng);
    return cartesian_product(g, complete(5));
  };
  const GraphFactory plain_factory = regular_graph(prod_n, prod_d);

  Table table({"graph", "protocol", "ok", "done@", "tx/node"});
  table.set_title("n = 40960, degree 10 on both sides (5 trials)");

  auto add_row = [&table](const std::string& graph_name,
                          const std::string& proto_name,
                          const GraphFactory& gf, const ProtocolFactory& pf,
                          int choices, std::uint64_t seed) {
    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = seed;
    cfg.channel.num_choices = choices;
    const TrialOutcome out = run_trials(gf, pf, cfg);
    table.begin_row();
    table.add(graph_name);
    table.add(proto_name);
    table.add(out.completion_rate, 2);
    table.add(out.completion_round.mean, 1);
    table.add(out.tx_per_node.mean, 2);
  };

  add_row("G(n,10)", "4-choice Alg1", plain_factory,
          four_choice_protocol(prod_n), 4, 0xea1);
  add_row("G(n,6) x K5", "4-choice Alg1", product_factory,
          four_choice_protocol(prod_n), 4, 0xea2);
  add_row("G(n,10)", "push", plain_factory, push_protocol(), 1, 0xea3);
  add_row("G(n,6) x K5", "push", product_factory, push_protocol(), 1, 0xea4);
  add_row("G(n,10)", "push&pull", plain_factory, push_pull_protocol(), 1,
          0xea5);
  add_row("G(n,6) x K5", "push&pull", product_factory, push_pull_protocol(),
          1, 0xea6);
  std::cout << table << "\n";
  std::cout << "expected shape: every protocol is slower/costlier on the "
               "product — the K5\nfibres waste channel choices on clique "
               "neighbours that get informed together\n(push&pull tx rises "
               "~25-30%, push and the four-choice algorithm finish "
               "later).\nThe four-choice rows show identical tx by "
               "construction (fixed horizon), so the\ndegradation appears "
               "in 'done@'; §5's point is that the *optimality* argument\n"
               "needs graph randomness, not merely expansion — the product "
               "only has the latter.\n";
  return 0;
}
