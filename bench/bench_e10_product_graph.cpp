/// E10 — §5 counterexample: on the Cartesian product G(n,d) □ K5 — a graph
/// with expansion and degree similar to a random regular graph — the
/// multi-choice model "may not lead to any notable improvement". We compare
/// the four-choice algorithm and push on the product vs a plain random
/// regular graph of identical size and degree.
///
/// Thin driver over the campaign subsystem: the grids live in
/// bench/campaigns/e10_product_graph.campaign and e10_plain_regular.campaign
/// and run through rrb::exp (cell seeds derive from (campaign_seed,
/// cell_key) — the campaign seeding contract); this binary only renders the
/// side-by-side table.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E10: Cartesian product with K5 — where multi-choice stops helping",
         "claim (§5): on G(n,d) x K5 the four-choice model loses its "
         "advantage despite random-regular-like expansion");

  const exp::CampaignSpec plain_spec =
      exp::load_spec(campaign_path("e10_plain_regular"));
  const exp::CampaignSpec product_spec =
      exp::load_spec(campaign_path("e10_product_graph"));
  const exp::CampaignOutcome plain =
      exp::CampaignRunner(plain_spec, {}).run();
  const exp::CampaignOutcome product =
      exp::CampaignRunner(product_spec, {}).run();

  Table table({"graph", "protocol", "ok", "done@", "tx/node"});
  table.set_title("n = 40960, degree 10 on both sides (" +
                  std::to_string(plain_spec.trials) + " trials)");

  struct Row {
    const char* graph_name;
    const char* proto_name;
    const exp::CampaignOutcome* outcome;
    BroadcastScheme scheme;
  };
  const Row rows[] = {
      {"G(n,10)", "4-choice Alg1", &plain, BroadcastScheme::kFourChoice},
      {"G(n,6) x K5", "4-choice Alg1", &product,
       BroadcastScheme::kFourChoice},
      {"G(n,10)", "push", &plain, BroadcastScheme::kPush},
      {"G(n,6) x K5", "push", &product, BroadcastScheme::kPush},
      {"G(n,10)", "push&pull", &plain, BroadcastScheme::kPushPull},
      {"G(n,6) x K5", "push&pull", &product, BroadcastScheme::kPushPull},
  };
  for (const Row& row : rows) {
    const exp::JsonObject& record =
        find_record(row.outcome->cells, [&row](const exp::CampaignCell& c) {
          return c.scheme == row.scheme;
        });
    table.begin_row();
    table.add(std::string(row.graph_name));
    table.add(std::string(row.proto_name));
    table.add(record_number(record, "completion_rate"), 2);
    table.add(record_number(record, "completion_mean"), 1);
    table.add(record_number(record, "tx_per_node_mean"), 2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: every protocol is slower/costlier on the "
               "product — the K5\nfibres waste channel choices on clique "
               "neighbours that get informed together\n(push&pull tx rises "
               "~25-30%, push and the four-choice algorithm finish "
               "later).\nThe four-choice rows show identical tx by "
               "construction (fixed horizon), so the\ndegradation appears "
               "in 'done@'; §5's point is that the *optimality* argument\n"
               "needs graph randomness, not merely expansion — the product "
               "only has the latter.\n";
  return 0;
}
