/// E11 — Robustness to communication failures (§1: "efficiently handles
/// limited communication failures"): channels fail independently with
/// probability f at establishment. The fixed-horizon algorithm tolerates
/// moderate f; a larger alpha buys back reliability.
///
/// The i.i.d. failure grid is a thin driver over the campaign subsystem
/// (bench/campaigns/e11_failures.campaign; the coverage column comes from
/// the records' coverage_mean). The structured failure models below are
/// not a campaign axis and stay composed directly against the engine.

#include "bench_util.hpp"

#include "rrb/phonecall/failure_models.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E11: channel failures — robustness of the four-choice algorithm",
         "claim: limited failures cost coverage only marginally; "
         "alpha scales the safety margin");

  const exp::CampaignSpec spec = exp::load_spec(campaign_path("e11_failures"));
  const NodeId n = spec.n_values.front();
  const NodeId d = spec.d_values.front();
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  Table table({"fail prob", "alpha", "ok", "coverage", "done@", "tx/node"});
  table.set_title("Algorithm 1 under channel failures, n = " +
                  std::to_string(n) + ", d = " + std::to_string(d) + " (" +
                  std::to_string(spec.trials) + " trials)");
  BenchReport json("e11_failures");
  for (const double alpha : spec.alphas) {
    for (const double f : spec.failures) {
      const exp::JsonObject& record =
          find_record(out.cells, [alpha, f](const exp::CampaignCell& cell) {
            return cell.alpha == alpha && cell.failure == f;
          });
      table.begin_row();
      table.add(f, 2);
      table.add(alpha, 1);
      table.add(record_number(record, "completion_rate"), 2);
      table.add(record_number(record, "coverage_mean"), 6);
      table.add(record_number(record, "completion_mean"), 1);
      table.add(record_number(record, "tx_per_node_mean"), 2);
      json.row()
          .set("failure", f)
          .set("alpha", alpha)
          .set("completion_rate", record_number(record, "completion_rate"))
          .set("coverage_mean", record_number(record, "coverage_mean"))
          .set("tx_per_node_mean",
               record_number(record, "tx_per_node_mean"));
    }
  }
  std::cout << table << "\n";
  json.write();

  // Structured failures: fail-stop nodes and periodic outages (see
  // failure_models.hpp). Coverage is reported over *healthy* nodes for the
  // faulty-node rows (fail-stop peers can never receive anything).
  Table structured({"model", "alpha", "healthy coverage", "done@"});
  structured.set_title("structured failure models, n = " + std::to_string(n) +
                       ", d = " + std::to_string(d) +
                       " (5 trials, alpha = 2)");
  struct ModelRow {
    std::string name;
    double faulty_fraction;  // > 0 -> faulty-node model
    Round period, burst;     // period > 0 -> bursty model
  };
  const ModelRow model_rows[] = {
      {"5% fail-stop nodes", 0.05, 0, 0},
      {"15% fail-stop nodes", 0.15, 0, 0},
      {"outage 1 of every 4 rounds", 0.0, 4, 1},
      {"outage 2 of every 5 rounds", 0.0, 5, 2},
      {"outage 1/4 + sequentialised", 0.0, -4, 1},  // negative = seq variant
  };
  for (const ModelRow& row : model_rows) {
    double coverage = 0.0;
    double done = 0.0;
    constexpr int kTrials = 5;
    const bool sequentialised = row.period < 0;
    const Round period = sequentialised ? -row.period : row.period;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(derive_seed(0xeb5, static_cast<std::uint64_t>(trial) * 131 +
                                     static_cast<std::uint64_t>(
                                         row.faulty_fraction * 100) +
                                     static_cast<std::uint64_t>(row.period)));
      const Graph g = random_regular_simple(n, d, rng);
      std::vector<NodeId> faulty;
      if (row.faulty_fraction > 0.0) {
        const auto stride =
            static_cast<NodeId>(1.0 / row.faulty_fraction);
        for (NodeId v = 1; v < n; v += stride) faulty.push_back(v);
      }
      GraphTopology topo(g);
      ChannelConfig chan;
      if (sequentialised) {
        chan.num_choices = 1;
        chan.memory = 3;
      } else {
        chan.num_choices = 4;
      }
      PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
      if (!faulty.empty())
        engine.set_failure_model(faulty_nodes(faulty));
      else
        engine.set_failure_model(bursty_outage(period, row.burst));
      FourChoiceConfig fc;
      fc.n_estimate = n;
      fc.alpha = 2.0;
      RunResult r;
      if (sequentialised) {
        SequentialisedFourChoice seq_alg(fc);
        r = engine.run(seq_alg, NodeId{0}, RunLimits{});
      } else {
        FourChoiceBroadcast four_alg(fc);
        r = engine.run(four_alg, NodeId{0}, RunLimits{});
      }
      const Count healthy = n - faulty.size();
      Count healthy_informed = 0;
      std::unordered_set<NodeId> faulty_set(faulty.begin(), faulty.end());
      const auto informed = engine.informed_at();
      for (NodeId v = 0; v < n; ++v)
        if (faulty_set.count(v) == 0 && informed[v] != kNever)
          ++healthy_informed;
      coverage += static_cast<double>(healthy_informed) /
                  static_cast<double>(healthy);
      done += static_cast<double>(
          r.completion_round == kNever ? r.rounds : r.completion_round);
    }
    structured.begin_row();
    structured.add(row.name);
    structured.add(2.0, 1);
    structured.add(coverage / kTrials, 6);
    structured.add(done / kTrials, 1);
  }
  std::cout << structured << "\n";
  std::cout
      << "expected shape: i.i.d. channel failures (top table) cost nothing "
         "but delay —\nthe paper's 'limited communication failures' regime. "
         "Structured faults expose\nthe model's boundaries honestly: "
         "healthy nodes route around fail-stop\nminorities perfectly, but "
         "*synchronised* periodic outages break Algorithm 1's\npush-once "
         "phase and its single pull round (coverage collapses) — these are\n"
         "correlated failures outside the theorem's independence "
         "assumptions. The\nsequentialised variant smears each logical "
         "round over four steps, so the\nsame 1-in-4 outage pattern only "
         "costs it one sub-step per round and coverage\nrecovers.\n";
  return 0;
}
