/// E1 — Theorem 2 (small degrees): Algorithm 1 broadcasts on G(n,d),
/// d = 8, within O(log n) rounds using O(n log log n) transmissions.
/// Sweep n; compare per-node transmissions against the push baseline,
/// whose cost is Θ(log n) per node.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E1: Theorem 2 — four-choice broadcast, small degree (d = 8)",
         "claim: rounds = O(log n); transmissions/node = O(log log n), "
         "vs push's Theta(log n)");

  Table table({"n", "log2(n)", "lglg(n)", "4c rounds", "4c done@", "4c ok",
               "4c tx/node", "push tx/node", "push/4c"});
  table.set_title("Algorithm 1 vs push baseline (5 trials each)");
  BenchReport json("e1_theorem2_smalld");

  std::vector<double> lgs, lglgs, rounds, fc_tx, push_tx;
  for (const NodeId n : {1U << 10, 1U << 11, 1U << 12, 1U << 13, 1U << 14,
                         1U << 15, 1U << 16, 1U << 17}) {
    const double lg = std::log2(static_cast<double>(n));
    const double lglg = std::log2(lg);

    TrialConfig fc_cfg;
    fc_cfg.trials = 5;
    fc_cfg.seed = 0xe1 + n;
    fc_cfg.channel.num_choices = 4;
    const TrialOutcome fc = run_trials(regular_graph(n, 8),
                                       four_choice_protocol(n), fc_cfg);

    TrialConfig push_cfg;
    push_cfg.trials = 5;
    push_cfg.seed = 0x91e1 + n;
    const TrialOutcome push =
        run_trials(regular_graph(n, 8), push_protocol(), push_cfg);

    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(lg, 1);
    table.add(lglg, 2);
    table.add(fc.rounds.mean, 1);
    table.add(fc.completion_round.mean, 1);
    table.add(fc.completion_rate, 2);
    table.add(fc.tx_per_node.mean, 2);
    table.add(push.tx_per_node.mean, 2);
    table.add(push.tx_per_node.mean / fc.tx_per_node.mean, 2);

    json.row()
        .set("n", static_cast<std::uint64_t>(n))
        .set("fc_rounds_mean", fc.rounds.mean)
        .set("fc_completion_mean", fc.completion_round.mean)
        .set("fc_completion_rate", fc.completion_rate)
        .set("fc_tx_per_node", fc.tx_per_node.mean)
        .set("push_tx_per_node", push.tx_per_node.mean);

    lgs.push_back(lg);
    lglgs.push_back(lglg);
    rounds.push_back(fc.completion_round.mean);
    fc_tx.push_back(fc.tx_per_node.mean);
    push_tx.push_back(push.tx_per_node.mean);
  }
  std::cout << table << "\n";

  print_fit("4-choice completion rounds vs log2 n", lgs, rounds);
  const AffineFit fc_fit = fit_affine(lgs, fc_tx);
  const AffineFit push_fit = fit_affine(lgs, push_tx);
  std::cout << "4-choice tx/node vs log2 n: slope " << fc_fit.slope
            << "/log-unit (flat; the log log n term)\n"
            << "push     tx/node vs log2 n: slope " << push_fit.slope
            << "/log-unit (the Theta(log n) cost)\n";
  if (push_fit.slope > fc_fit.slope) {
    const double cross =
        (fc_fit.intercept - push_fit.intercept) /
        (push_fit.slope - fc_fit.slope);
    std::cout << "extrapolated crossover (4-choice cheaper in absolute "
                 "terms): n ~ 2^" << cross << "\n";
  }
  json.write();
  std::cout << "\nexpected shape: 4-choice tx/node is essentially flat in n "
               "(its growth is the\nlog log n term), while push tx/node "
               "climbs with log n — the separation the\npaper proves. At "
               "laptop n the four-choice constant (4 channels x alpha "
               "rounds)\nstill dominates; the slopes, not the absolute "
               "values, are the reproduced claim.\n";
  return 0;
}
