/// E1 — Theorem 2 (small degrees): Algorithm 1 broadcasts on G(n,d),
/// d = 8, within O(log n) rounds using O(n log log n) transmissions.
/// Sweep n; compare per-node transmissions against the push baseline,
/// whose cost is Θ(log n) per node.
///
/// Thin driver over the campaign subsystem: the grid lives in
/// bench/campaigns/e1_smalld.campaign and runs through rrb::exp (cell
/// seeds derive from (campaign_seed, cell_key) — the campaign seeding
/// contract); this binary only renders the paper table and the fits.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

const exp::JsonObject& record_for(const std::vector<exp::CellResult>& cells,
                                  BroadcastScheme scheme, NodeId n) {
  return find_record(cells, [scheme, n](const exp::CampaignCell& cell) {
    return cell.scheme == scheme && cell.n == n;
  });
}

}  // namespace

int main() {
  banner("E1: Theorem 2 — four-choice broadcast, small degree (d = 8)",
         "claim: rounds = O(log n); transmissions/node = O(log log n), "
         "vs push's Theta(log n)");

  const exp::CampaignSpec spec = exp::load_spec(campaign_path("e1_smalld"));
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  Table table({"n", "log2(n)", "lglg(n)", "4c rounds", "4c done@", "4c ok",
               "4c tx/node", "push tx/node", "push/4c"});
  table.set_title("Algorithm 1 vs push baseline (" +
                  std::to_string(spec.trials) + " trials each)");
  BenchReport json("e1_theorem2_smalld");

  std::vector<double> lgs, lglgs, rounds, fc_tx, push_tx;
  for (const NodeId n : spec.n_values) {
    const double lg = std::log2(static_cast<double>(n));
    const double lglg = std::log2(lg);

    const exp::JsonObject& fc =
        record_for(out.cells, BroadcastScheme::kFourChoice, n);
    const exp::JsonObject& push =
        record_for(out.cells, BroadcastScheme::kPush, n);

    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(lg, 1);
    table.add(lglg, 2);
    table.add(record_number(fc, "rounds_mean"), 1);
    table.add(record_number(fc, "completion_mean"), 1);
    table.add(record_number(fc, "completion_rate"), 2);
    table.add(record_number(fc, "tx_per_node_mean"), 2);
    table.add(record_number(push, "tx_per_node_mean"), 2);
    table.add(record_number(push, "tx_per_node_mean") /
                  record_number(fc, "tx_per_node_mean"),
              2);

    json.row()
        .set("n", static_cast<std::uint64_t>(n))
        .set("fc_rounds_mean", record_number(fc, "rounds_mean"))
        .set("fc_completion_mean", record_number(fc, "completion_mean"))
        .set("fc_completion_rate", record_number(fc, "completion_rate"))
        .set("fc_tx_per_node", record_number(fc, "tx_per_node_mean"))
        .set("push_tx_per_node", record_number(push, "tx_per_node_mean"));

    lgs.push_back(lg);
    lglgs.push_back(lglg);
    rounds.push_back(record_number(fc, "completion_mean"));
    fc_tx.push_back(record_number(fc, "tx_per_node_mean"));
    push_tx.push_back(record_number(push, "tx_per_node_mean"));
  }
  std::cout << table << "\n";

  print_fit("4-choice completion rounds vs log2 n", lgs, rounds);
  const AffineFit fc_fit = fit_affine(lgs, fc_tx);
  const AffineFit push_fit = fit_affine(lgs, push_tx);
  std::cout << "4-choice tx/node vs log2 n: slope " << fc_fit.slope
            << "/log-unit (flat; the log log n term)\n"
            << "push     tx/node vs log2 n: slope " << push_fit.slope
            << "/log-unit (the Theta(log n) cost)\n";
  if (push_fit.slope > fc_fit.slope) {
    const double cross =
        (fc_fit.intercept - push_fit.intercept) /
        (push_fit.slope - fc_fit.slope);
    std::cout << "extrapolated crossover (4-choice cheaper in absolute "
                 "terms): n ~ 2^" << cross << "\n";
  }
  json.write();
  std::cout << "\nexpected shape: 4-choice tx/node is essentially flat in n "
               "(its growth is the\nlog log n term), while push tx/node "
               "climbs with log n — the separation the\npaper proves. At "
               "laptop n the four-choice constant (4 channels x alpha "
               "rounds)\nstill dominates; the slopes, not the absolute "
               "values, are the reproduced claim.\n";
  return 0;
}
