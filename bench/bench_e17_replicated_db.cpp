/// E17 — Replicated-database application (§1): many updates gossip
/// concurrently, each on Algorithm 1's schedule, with per-channel combining
/// ("the node combines to a single message all messages which should be
/// transmitted via push"). We sweep the batch size and report per-update
/// cost and the combining gain.

#include "bench_util.hpp"

#include "rrb/p2p/replicated_db.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E17: replicated database maintenance over the overlay",
         "claim: per-update cost stays O(n log log n); combining packs "
         "many updates into each channel message");

  const NodeId n = 2048;
  const NodeId d = 8;

  Table table({"updates", "converged", "rounds", "entry-tx/upd/node",
               "channel msgs", "entries/msg"});
  table.set_title("Algorithm-1 gossip per update, n = 2048, d = 8");
  for (const int batch : {1, 4, 16, 64}) {
    Rng grng(derive_seed(0xf17, static_cast<std::uint64_t>(batch)));
    const Graph g = random_regular_simple(n, d, grng);
    ReplicatedDbConfig cfg;
    cfg.seed = derive_seed(0xf18, static_cast<std::uint64_t>(batch));
    ReplicatedDb db(g, cfg);
    for (int i = 0; i < batch; ++i)
      db.put(static_cast<NodeId>((i * 37) % n), "key" + std::to_string(i),
             "value" + std::to_string(i));
    const bool ok = db.run_to_convergence(600);
    table.begin_row();
    table.add(batch);
    table.add(std::string(ok ? "yes" : "NO"));
    table.add(static_cast<std::int64_t>(db.round()));
    table.add(static_cast<double>(db.entry_transmissions()) / batch /
                  static_cast<double>(n),
              2);
    table.add(db.channel_messages());
    table.add(static_cast<double>(db.entry_transmissions()) /
                  static_cast<double>(db.channel_messages()),
              2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: entry-tx per update per node constant in "
               "the batch size\n(~O(log log n) scale), while entries/msg "
               "grows with the batch — combining\namortises channel cost "
               "across concurrent updates, the paper's replicated-DB\n"
               "motivation.\n";
  return 0;
}
