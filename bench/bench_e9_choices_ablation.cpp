/// E9 — Number-of-choices ablation (§5): the paper proves the result for
/// four distinct choices, conjectures three suffice, and leaves two open.
/// We run the same phase schedule with k = 1..6 channel choices and report
/// completion rate, coverage and transmissions.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E9: choices ablation — is 4 necessary? (§5 open questions)",
         "claim: k = 4 completes with O(n log log n) tx; paper conjectures "
         "k = 3 suffices; k <= 2 open");

  const NodeId n = 1 << 14;
  const NodeId d = 8;

  Table table({"choices k", "ok", "coverage", "done@", "tx/node",
               "uninformed left"});
  table.set_title("Algorithm 1 schedule with k channel choices, n = 2^14, "
                  "d = 8 (10 trials)");
  for (const int k : {1, 2, 3, 4, 5, 6}) {
    TrialConfig cfg;
    cfg.trials = 10;
    cfg.seed = 0xe9 + static_cast<std::uint64_t>(k);
    cfg.channel.num_choices = k;
    const TrialOutcome out =
        run_trials(regular_graph(n, d), four_choice_protocol(n), cfg);
    double coverage = 0.0;
    double left = 0.0;
    for (const RunResult& r : out.runs) {
      coverage += static_cast<double>(r.final_informed) /
                  static_cast<double>(r.n);
      left += static_cast<double>(r.n - r.final_informed);
    }
    coverage /= static_cast<double>(out.runs.size());
    left /= static_cast<double>(out.runs.size());
    table.begin_row();
    table.add(k);
    table.add(out.completion_rate, 2);
    table.add(coverage, 6);
    table.add(out.completion_round.mean, 1);
    table.add(out.tx_per_node.mean, 2);
    table.add(left, 1);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: k >= 3 completes reliably (supporting the "
               "paper's conjecture);\nk = 4 is the proven regime; tx/node "
               "grows ~linearly in k, so 3 would save 25%.\n";
  return 0;
}
