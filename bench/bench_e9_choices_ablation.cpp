/// E9 — Number-of-choices ablation (§5): the paper proves the result for
/// four distinct choices, conjectures three suffice, and leaves two open.
/// We run the same phase schedule with k = 1..6 channel choices and report
/// completion rate, coverage and transmissions.
///
/// Thin driver over the campaign subsystem: the k sweep lives in
/// bench/campaigns/e9_choices_ablation.campaign as a `choices` axis
/// (overriding ChannelConfig::num_choices per cell) and runs through
/// rrb::exp (cell seeds derive from (campaign_seed, cell_key) — the
/// campaign seeding contract); this binary only renders the paper table.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E9: choices ablation — is 4 necessary? (§5 open questions)",
         "claim: k = 4 completes with O(n log log n) tx; paper conjectures "
         "k = 3 suffices; k <= 2 open");

  const exp::CampaignSpec spec =
      exp::load_spec(campaign_path("e9_choices_ablation"));
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  const NodeId n = spec.n_values.front();

  Table table({"choices k", "ok", "coverage", "done@", "tx/node",
               "uninformed left"});
  table.set_title("Algorithm 1 schedule with k channel choices, n = 2^14, "
                  "d = " + std::to_string(spec.d_values.front()) + " (" +
                  std::to_string(spec.trials) + " trials)");
  for (const int k : spec.choices) {
    const exp::JsonObject& record = find_record(
        out.cells, [k](const exp::CampaignCell& c) { return c.choices == k; });
    const double coverage = record_number(record, "coverage_mean");
    table.begin_row();
    table.add(k);
    table.add(record_number(record, "completion_rate"), 2);
    table.add(coverage, 6);
    table.add(record_number(record, "completion_mean"), 1);
    table.add(record_number(record, "tx_per_node_mean"), 2);
    table.add((1.0 - coverage) * static_cast<double>(n), 1);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: k >= 3 completes reliably (supporting the "
               "paper's conjecture);\nk = 4 is the proven regime; tx/node "
               "grows ~linearly in k, so 3 would save 25%.\n";
  return 0;
}
