/// E2 — Theorem 3 (large degrees): Algorithm 2 broadcasts on G(n,d) with
/// d = Theta(log n), within O(log n) rounds and O(n log log n)
/// transmissions, using the α·log log n pull tail instead of phase 4.
///
/// Thin driver over the campaign subsystem: the n sweep (with the derived
/// d = 2log2n degree rule) lives in
/// bench/campaigns/e2_theorem3_larged.campaign and runs through rrb::exp
/// (cell seeds derive from (campaign_seed, cell_key) — the campaign
/// seeding contract); this binary only renders the paper table and fits.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E2: Theorem 3 — four-choice broadcast, large degree "
         "(d = 2·ceil(log2 n))",
         "claim: rounds = O(log n); transmissions/node = O(log log n) via "
         "pull tail (Algorithm 2)");

  const exp::CampaignSpec spec =
      exp::load_spec(campaign_path("e2_theorem3_larged"));
  exp::CampaignRunner runner(spec, {});
  const exp::CampaignOutcome out = runner.run();

  Table table({"n", "d", "rounds", "done@", "ok", "tx/node", "pull share"});
  table.set_title("Algorithm 2 on G(n, 2 log n) (" +
                  std::to_string(spec.trials) + " trials)");

  std::vector<double> lgs, rounds, tx;
  for (const NodeId n : spec.n_values) {
    const exp::JsonObject& record = find_record(
        out.cells, [n](const exp::CampaignCell& c) { return c.n == n; });
    const double lg = std::log2(static_cast<double>(n));
    const double done = record_number(record, "completion_mean");
    const double tx_node = record_number(record, "tx_per_node_mean");
    const double push = record_number(record, "push_tx_mean");
    const double pull = record_number(record, "pull_tx_mean");

    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(static_cast<std::uint64_t>(record_number(record, "d")));
    table.add(record_number(record, "rounds_mean"), 1);
    table.add(done, 1);
    table.add(record_number(record, "completion_rate"), 2);
    table.add(tx_node, 2);
    table.add(pull / (push + pull), 2);

    lgs.push_back(lg);
    rounds.push_back(done);
    tx.push_back(tx_node);
  }
  std::cout << table << "\n";
  print_fit("completion rounds vs log2 n", lgs, rounds);
  std::vector<double> lglgs;
  for (const double lg : lgs) lglgs.push_back(std::log2(lg));
  print_fit("tx/node vs loglog n", lglgs, tx);
  return 0;
}
