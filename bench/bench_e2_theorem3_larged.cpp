/// E2 — Theorem 3 (large degrees): Algorithm 2 broadcasts on G(n,d) with
/// d = Theta(log n), within O(log n) rounds and O(n log log n)
/// transmissions, using the α·log log n pull tail instead of phase 4.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E2: Theorem 3 — four-choice broadcast, large degree "
         "(d = 2·ceil(log2 n))",
         "claim: rounds = O(log n); transmissions/node = O(log log n) via "
         "pull tail (Algorithm 2)");

  Table table({"n", "d", "rounds", "done@", "ok", "tx/node", "pull share"});
  table.set_title("Algorithm 2 on G(n, 2 log n) (5 trials)");

  std::vector<double> lgs, rounds, tx;
  for (const NodeId n :
       {1U << 10, 1U << 12, 1U << 14, 1U << 16, 1U << 17}) {
    const double lg = std::log2(static_cast<double>(n));
    const NodeId d = 2 * static_cast<NodeId>(std::ceil(lg));

    TrialConfig cfg;
    cfg.trials = 5;
    cfg.seed = 0xe2 + n;
    cfg.channel.num_choices = 4;
    const TrialOutcome out = run_trials(
        regular_graph(n, d), four_choice_large_d_protocol(n), cfg);

    table.begin_row();
    table.add(static_cast<std::uint64_t>(n));
    table.add(static_cast<std::uint64_t>(d));
    table.add(out.rounds.mean, 1);
    table.add(out.completion_round.mean, 1);
    table.add(out.completion_rate, 2);
    table.add(out.tx_per_node.mean, 2);
    table.add(out.pull_tx.mean / (out.push_tx.mean + out.pull_tx.mean), 2);

    lgs.push_back(lg);
    rounds.push_back(out.completion_round.mean);
    tx.push_back(out.tx_per_node.mean);
  }
  std::cout << table << "\n";
  print_fit("completion rounds vs log2 n", lgs, rounds);
  std::vector<double> lglgs;
  for (const double lg : lgs) lglgs.push_back(std::log2(lg));
  print_fit("tx/node vs loglog n", lglgs, tx);
  return 0;
}
