/// E13 — Robustness to membership churn (§1: "robust against limited
/// changes in the size of the network"): nodes join and leave the overlay
/// between broadcast rounds while Algorithm 1 runs.
///
/// Thin driver over the campaign subsystem: the churn axis lives in
/// bench/campaigns/e13_churn.campaign (`overlay = true`, so the churn-0
/// baseline row is measured on the same dynamic overlay); this binary only
/// renders the paper table.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E13: membership churn during the broadcast",
         "claim: the broadcast reaches (almost) all alive nodes despite "
         "joins/leaves between rounds");

  const exp::CampaignSpec spec = exp::load_spec(campaign_path("e13_churn"));
  const exp::CampaignOutcome out = exp::CampaignRunner(spec, {}).run();

  Table table({"events/round", "coverage", "joins", "leaves", "alive@end",
               "tx/node"});
  table.set_title("Algorithm 1 (alpha = 2) under churn, n0 = 2^13, d = 8 (" +
                  std::to_string(spec.trials) + " trials)");
  BenchReport json("e13_churn");
  json.set("n0", static_cast<std::uint64_t>(spec.n_values.front()))
      .set("d", static_cast<std::uint64_t>(spec.d_values.front()))
      .set("trials", spec.trials);
  for (const exp::CellResult& cell : out.cells) {
    table.begin_row();
    table.add(cell.cell.churn, 1);
    table.add(record_number(cell.record, "coverage_mean"), 6);
    table.add(record_number(cell.record, "joins_mean"), 0);
    table.add(record_number(cell.record, "leaves_mean"), 0);
    table.add(record_number(cell.record, "alive_mean"), 0);
    table.add(record_number(cell.record, "tx_per_alive_mean"), 2);
    json.row()
        .set("events_per_round", cell.cell.churn)
        .set("coverage", record_number(cell.record, "coverage_mean"))
        .set("joins", record_number(cell.record, "joins_mean"))
        .set("leaves", record_number(cell.record, "leaves_mean"))
        .set("alive_at_end", record_number(cell.record, "alive_mean"))
        .set("tx_per_node", record_number(cell.record, "tx_per_alive_mean"));
  }
  std::cout << table << "\n";
  json.write();
  std::cout << "expected shape: coverage ~1.0 at low churn and degrades "
               "gracefully; the\nshortfall is dominated by nodes that "
               "joined in the final rounds (no time\nleft to hear the "
               "message) — exactly the paper's 'limited changes' caveat.\n";
  return 0;
}
