/// E13 — Robustness to membership churn (§1: "robust against limited
/// changes in the size of the network"): nodes join and leave the overlay
/// between broadcast rounds while Algorithm 1 runs.

#include "bench_util.hpp"

#include "rrb/p2p/churn.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E13: membership churn during the broadcast",
         "claim: the broadcast reaches (almost) all alive nodes despite "
         "joins/leaves between rounds");

  const NodeId n0 = 1 << 13;
  const NodeId d = 8;
  constexpr int kTrials = 5;

  Table table({"events/round", "coverage", "joins", "leaves", "alive@end",
               "tx/node"});
  table.set_title("Algorithm 1 (alpha = 2) under churn, n0 = 2^13, d = 8 "
                  "(5 trials)");
  BenchReport json("e13_churn");
  json.set("n0", static_cast<std::uint64_t>(n0))
      .set("d", static_cast<std::uint64_t>(d))
      .set("trials", kTrials);
  for (const double rate : {0.0, 1.0, 4.0, 16.0, 64.0, 128.0}) {
    double coverage = 0.0;
    double joins = 0.0;
    double leaves = 0.0;
    double alive = 0.0;
    double tx = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(derive_seed(0xed, static_cast<std::uint64_t>(
                                    trial * 100 + rate * 10)));
      DynamicOverlay overlay(n0 + n0 / 2, n0, d, rng);
      ChurnConfig ccfg;
      ccfg.joins_per_round = rate;
      ccfg.leaves_per_round = rate;
      ccfg.switches_per_round = 2;
      ChurnDriver driver(overlay, ccfg, rng);

      FourChoiceConfig fc;
      fc.n_estimate = n0;
      fc.alpha = 2.0;
      FourChoiceBroadcast alg(fc);
      ChannelConfig chan;
      chan.num_choices = 4;
      PhoneCallEngine<DynamicOverlay> engine(overlay, chan, rng);
      attach_churn(engine, driver);
      const RunResult r = engine.run(alg, overlay.random_alive(rng),
                                     RunLimits{});
      coverage += static_cast<double>(r.final_informed) /
                  static_cast<double>(r.alive_at_end);
      joins += static_cast<double>(driver.total_joins());
      leaves += static_cast<double>(driver.total_leaves());
      alive += static_cast<double>(r.alive_at_end);
      tx += static_cast<double>(r.total_tx()) /
            static_cast<double>(r.alive_at_end);
    }
    table.begin_row();
    table.add(rate, 1);
    table.add(coverage / kTrials, 6);
    table.add(joins / kTrials, 0);
    table.add(leaves / kTrials, 0);
    table.add(alive / kTrials, 0);
    table.add(tx / kTrials, 2);
    json.row()
        .set("events_per_round", rate)
        .set("coverage", coverage / kTrials)
        .set("joins", joins / kTrials)
        .set("leaves", leaves / kTrials)
        .set("alive_at_end", alive / kTrials)
        .set("tx_per_node", tx / kTrials);
  }
  std::cout << table << "\n";
  json.write();
  std::cout << "expected shape: coverage ~1.0 at low churn and degrades "
               "gracefully; the\nshortfall is dominated by nodes that "
               "joined in the final rounds (no time\nleft to hear the "
               "message) — exactly the paper's 'limited changes' caveat.\n";
  return 0;
}
