/// Campaign distribute micro-benchmark: wall-clock cells/sec for one
/// moderate grid executed three ways — in-process `CampaignRunner`
/// (the pre-`--distribute` baseline), and the process-level executor at
/// K = 1 and K = hardware cores. The artifacts are byte-identical across
/// all modes by construction (tests/test_distribute.cpp and the
/// smoke.rrb_campaign.dist_* fixtures pin that; this harness re-checks
/// results.jsonl as a sanity gate), so the numbers measure pure
/// scheduling: claim-file overhead, fork/exec cost, journal merge, and —
/// on machines with more than one core — process-level scaling.
/// Feeds bench/results/BENCH_campaign_distribute_{before,after}.json.
///
/// The worker binary is rrb_campaign itself (workers re-exec it in the
/// hidden --worker mode); its path is baked in at configure time.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "rrb/exp/campaign.hpp"
#include "rrb/exp/distribute.hpp"

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;
using namespace rrb;
using namespace rrb::bench;

namespace {

/// 2 schemes x 5 n = 10 cells, heavy enough that a cell costs whole
/// milliseconds (so claim/fork overhead is measured against real work,
/// not against an empty grid).
exp::CampaignSpec bench_spec() {
  exp::CampaignSpec spec;
  spec.name = "bench_distribute";
  spec.seed = 0xbd157;
  spec.trials = 16;
  spec.schemes = {BroadcastScheme::kPush, BroadcastScheme::kFourChoice};
  spec.n_values = {256, 512, 1024, 2048, 4096};
  spec.d_values = {8};
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw std::runtime_error("cannot read " + path);
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("rrb_bench_distribute_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

struct ModeTiming {
  double wall_ms = 0.0;
  std::size_t cells = 0;
};

ModeTiming time_single(const exp::CampaignSpec& spec, const std::string& dir) {
  exp::CampaignConfig config;
  config.out_dir = dir;
  const auto start = Clock::now();
  exp::CampaignRunner runner(spec, config);
  const exp::CampaignOutcome out = runner.run();
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return {ms, out.cells.size()};
}

ModeTiming time_distribute(const exp::CampaignSpec& spec,
                           const std::string& dir, int workers) {
  exp::DistributeConfig config;
  config.workers = workers;
  config.out_dir = dir;
  config.quiet = true;
  const auto start = Clock::now();
  const exp::DistributeReport report =
      exp::distribute_campaign(spec, config, RRB_CAMPAIGN_EXE);
  // The driver leaves artifact emission to the ordinary runner (the
  // rrb_campaign CLI falls through to it); include it in the timed
  // region so all modes pay for the same artifact set.
  exp::CampaignConfig finish;
  finish.out_dir = dir;
  exp::CampaignRunner runner(spec, finish);
  runner.run();
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return {ms, report.cells};
}

void add_row(BenchReport& report, const std::string& name, const ModeTiming& t,
             int workers) {
  const double cells_per_sec =
      static_cast<double>(t.cells) / (t.wall_ms / 1000.0);
  std::printf("  %-18s %2d worker(s)  %4zu cells  %8.1f ms  %7.1f cells/s\n",
              name.c_str(), workers, t.cells, t.wall_ms, cells_per_sec);
  report.row()
      .set("name", name)
      .set("workers", workers)
      .set("cells", t.cells)
      .set("wall_ms", t.wall_ms)
      .set("cells_per_sec", cells_per_sec);
}

}  // namespace

int main() {
  const exp::CampaignSpec spec = bench_spec();
  const int cores = static_cast<int>(std::thread::hardware_concurrency());
  const int k_wide = cores > 0 ? cores : 1;

  std::printf("campaign distribute bench: %zu-cell grid, %d trials/cell, "
              "%d hardware core(s)\n",
              exp::expand_cells(spec).size(), spec.trials, k_wide);

  BenchReport report("campaign_distribute");
  report.set("trials_per_cell", spec.trials).set("hw_cores", k_wide);

  const std::string single_dir = fresh_dir("single");
  const std::string k1_dir = fresh_dir("k1");
  const std::string kw_dir = fresh_dir("kwide");

  add_row(report, "single-process", time_single(spec, single_dir), 1);
  add_row(report, "distribute", time_distribute(spec, k1_dir, 1), 1);
  add_row(report, "distribute", time_distribute(spec, kw_dir, k_wide), k_wide);

  // Sanity: distribution never changes the recorded numbers.
  const std::string reference = read_file(single_dir + "/results.jsonl");
  for (const std::string& dir : {k1_dir, kw_dir}) {
    if (read_file(dir + "/results.jsonl") != reference)
      throw std::runtime_error(dir + ": results differ from single-process");
  }
  std::printf("  results.jsonl byte-identical across all modes\n");

  report.write();
  return 0;
}
