/// E18 — density does not matter (Fountoulakis–Huber–Panagiotou,
/// arXiv:0904.4851): push on random regular graphs takes the same ~log n
/// rounds at d = 3, log n, 2 log n (and √n in the companion spec). The
/// chunked configuration model (rrb::bigtopo) emits its CSR directly, so
/// the sweep reaches n = 10^7 on one box; peak RSS is sampled via
/// rrb::telemetry and lands in the BENCH_e18_density.json trajectory.
///
/// Thin driver over the campaign subsystem: the grids live in
/// bench/campaigns/e18_density.campaign and e18_density_sqrt.campaign and
/// run through rrb::exp (cell seeds derive from (campaign_seed, cell_key)
/// — the campaign seeding contract); this binary renders the table and
/// the capture. RRB_E18_MAX_N caps the n axis (CI runs the 10^6-scale
/// cells only); the cells that do run keep their exact keys and seeds.

#include <cstdlib>

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

/// Drop n-axis values above the RRB_E18_MAX_N cap (0 = uncapped). Cell
/// identity is per-cell, so a capped run produces the same records for the
/// cells it keeps.
void apply_n_cap(exp::CampaignSpec& spec, std::uint64_t cap) {
  if (cap == 0) return;
  std::vector<NodeId> kept;
  for (const NodeId n : spec.n_values)
    if (n <= cap) kept.push_back(n);
  if (kept.empty()) kept.push_back(spec.n_values.front());
  spec.n_values = std::move(kept);
}

void render(const exp::CampaignSpec& spec, const exp::CampaignOutcome& out,
            Table& table, BenchReport& json) {
  for (const exp::CellResult& cell : out.cells) {
    const exp::JsonObject& record = cell.record;
    const double lg = std::log2(static_cast<double>(cell.cell.n));
    table.begin_row();
    table.add(static_cast<std::uint64_t>(cell.cell.n));
    table.add(static_cast<std::uint64_t>(cell.cell.d));
    table.add(record_number(record, "rounds_mean"), 1);
    table.add(record_number(record, "rounds_mean") / lg, 2);
    table.add(record_number(record, "tx_per_node_mean"), 2);
    table.add(record_number(record, "completion_rate"), 2);

    JsonObject& row = json.row();
    row.set("name", spec.name + "/" + cell.cell.key)
        .set("n", static_cast<std::uint64_t>(cell.cell.n))
        .set("d", static_cast<std::uint64_t>(cell.cell.d))
        .set("rounds_mean", record_number(record, "rounds_mean"))
        .set("rounds_per_log2n", record_number(record, "rounds_mean") / lg)
        .set("tx_per_node_mean", record_number(record, "tx_per_node_mean"))
        .set("completion_rate", record_number(record, "completion_rate"));
  }
}

}  // namespace

int main() {
  banner("E18: density does not matter — push at n up to 10^7 (chunked CSR)",
         "claim (FHP, arXiv:0904.4851): push completes in ~log n rounds "
         "independent of d in {3, log n, 2log n, sqrt n}");

  std::uint64_t cap = 0;
  if (const char* env = std::getenv("RRB_E18_MAX_N");
      env != nullptr && *env != '\0')
    cap = std::strtoull(env, nullptr, 10);

  BenchReport json("e18_density");
  exp::CampaignSpec spec = exp::load_spec(campaign_path("e18_density"));
  exp::CampaignSpec sqrt_spec =
      exp::load_spec(campaign_path("e18_density_sqrt"));
  apply_n_cap(spec, cap);
  apply_n_cap(sqrt_spec, cap);

  Table table({"n", "d", "rounds", "rounds/lg n", "tx/node", "ok"});
  table.set_title("push on chunked configuration-model graphs (" +
                  std::to_string(spec.trials) + " trial(s) at the top n)");

  {
    Phase phase(json, "density_main");
    const exp::CampaignOutcome out = exp::CampaignRunner(spec, {}).run();
    render(spec, out, table, json);
  }
  {
    Phase phase(json, "density_sqrt");
    const exp::CampaignOutcome out = exp::CampaignRunner(sqrt_spec, {}).run();
    render(sqrt_spec, out, table, json);
  }

  std::cout << table << "\n";
  std::cout << "expected shape: rounds/lg n sits near a constant for every "
               "d — density does\nnot matter for push on random regular "
               "graphs; tx/node tracks rounds (push\ntransmits once per "
               "informed node per round). Peak RSS lands in the JSON "
               "capture.\n";
  json.set("n_cap", cap);
  json.write();
  return 0;
}
