/// E4 — Phase 1 dynamics (Lemmas 1–2, Corollary 1): during phase 1 the
/// newly-informed set I+(t) grows geometrically (factor ~2–4 per round),
/// and at least n/8 nodes are informed by the end of the phase.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

void run_for_degree(NodeId n, NodeId d) {
  FourChoiceConfig fc;
  fc.n_estimate = n;
  const PhaseSchedule sched = make_schedule_small_d(fc);

  TraceConfig cfg;
  cfg.trials = 5;
  cfg.seed = 0xe4 + d;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  const auto trace = trace_set_sizes(
      regular_graph(n, d),
      [n](const Graph&) {
        FourChoiceConfig c;
        c.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(c);
      },
      cfg);

  Table table({"t", "|I(t)|", "|I+(t)|", "growth", "frac informed"});
  table.set_title("Phase 1 growth, n = " + std::to_string(n) +
                  ", d = " + std::to_string(d) + " (5-trial mean)");
  Round reached_eighth = -1;
  for (Round t = 1; t <= sched.phase1_end &&
                    t <= static_cast<Round>(trace.size());
       ++t) {
    const SetTracePoint& p = trace[static_cast<std::size_t>(t - 1)];
    const SetTracePoint* prev =
        t >= 2 ? &trace[static_cast<std::size_t>(t - 2)] : nullptr;
    const double growth =
        prev != nullptr && prev->newly_informed > 0
            ? p.newly_informed / prev->newly_informed
            : 0.0;
    table.begin_row();
    table.add(static_cast<std::int64_t>(t));
    table.add(p.informed, 1);
    table.add(p.newly_informed, 1);
    table.add(growth, 2);
    table.add(p.informed / static_cast<double>(n), 4);
    if (reached_eighth < 0 && p.informed >= static_cast<double>(n) / 8.0)
      reached_eighth = t;
  }
  std::cout << table;
  std::cout << "n/8 reached at round " << reached_eighth << " (phase 1 ends "
            << sched.phase1_end << ") -> Corollary 1 "
            << (reached_eighth > 0 && reached_eighth <= sched.phase1_end
                    ? "HOLDS"
                    : "VIOLATED")
            << "\n\n";
}

}  // namespace

int main() {
  banner("E4: Phase 1 growth — Lemmas 1/2, Corollary 1",
         "claim: |I+(t+1)| >= c·|I+(t)| early (c ~ 2-4); >= n/8 informed by "
         "end of phase 1");
  run_for_degree(1 << 16, 8);
  run_for_degree(1 << 16, 16);
  return 0;
}
