#pragma once

/// Shared helpers for the experiment harness binaries (bench_e1 .. e17).
/// Every binary runs argument-free with laptop-scale defaults and prints
/// paper-style tables; EXPERIMENTS.md records the claim each one checks.
///
/// Besides the tables, every bench can emit a machine-readable
/// BENCH_<name>.json (see BenchReport below) so the repo accumulates a
/// bench trajectory across PRs: wall time, thread count, git revision and
/// whatever per-case metrics the bench adds.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "rrb/analysis/fit.hpp"
#include "rrb/common/math.hpp"
#include "rrb/common/table.hpp"
#include "rrb/exp/artifact.hpp"
#include "rrb/exp/campaign.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/protocols/throttled.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"
#include "rrb/telemetry/telemetry.hpp"

// Git revision baked in by bench/CMakeLists.txt (git describe --always).
#ifndef RRB_GIT_DESCRIBE
#define RRB_GIT_DESCRIBE "unknown"
#endif

// Absolute path of bench/campaigns/, baked in so the migrated experiment
// binaries find their declarative specs whatever the working directory is.
#ifndef RRB_CAMPAIGN_DIR
#define RRB_CAMPAIGN_DIR "bench/campaigns"
#endif

namespace rrb::bench {

/// Path of a committed campaign spec, e.g. campaign_path("e1_smalld").
inline std::string campaign_path(const std::string& stem) {
  return std::string(RRB_CAMPAIGN_DIR) + "/" + stem + ".campaign";
}

/// Numeric field of a campaign cell record; throws naming the key when the
/// record lacks it (a migrated bench asking for a metric its spec's
/// execution path does not produce is a harness bug, not data).
inline double record_number(const rrb::exp::JsonObject& record,
                            const char* key) {
  const auto value = record.find_number(key);
  if (!value)
    throw std::logic_error(std::string("campaign record lacks ") + key);
  return *value;
}

/// First record in `cells` matching `pred(cell)`; throws if absent. The
/// migrated bench drivers use this to look cells up by axis values.
template <typename Predicate>
const rrb::exp::JsonObject& find_record(
    const std::vector<rrb::exp::CellResult>& cells, Predicate&& pred) {
  for (const rrb::exp::CellResult& cell : cells)
    if (pred(cell.cell)) return cell.record;
  throw std::logic_error("campaign is missing an expected cell");
}

/// Worker threads the default RunnerConfig resolves to — what every
/// run_trials/trace_set_sizes call in the benches will use unless a bench
/// overrides TrialConfig::runner. RRB_THREADS=1 gives the sequential
/// baseline for speedup comparisons; outputs are identical either way.
inline int report_threads() {
  return ParallelRunner::resolve_threads(RunnerConfig{});
}

/// Header printed by every experiment binary.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=====================================================\n"
            << id << "\n"
            << claim << "\n"
            << "threads: " << report_threads()
            << " (override with RRB_THREADS; results are thread-count"
               " independent)\n"
            << "=====================================================\n";
}

// ---- Machine-readable bench trajectory ------------------------------------

/// Flat JSON record — the shared serialisation type from the campaign
/// subsystem's artifact layer (rrb/exp/artifact.hpp), so benches and
/// campaigns escape and format through one code path.
using JsonObject = rrb::exp::JsonObject;

/// Accumulates a bench's machine-readable results and writes
/// `BENCH_<name>.json` (into $RRB_BENCH_JSON_DIR, default the working
/// directory) when write() is called — alongside, never instead of, the
/// human-readable tables. A thin wrapper over rrb::exp::BenchReport that
/// bakes in the git revision and the resolved thread count, so trajectory
/// files from different PRs are comparable.
class BenchReport : public rrb::exp::BenchReport {
 public:
  explicit BenchReport(std::string name)
      : rrb::exp::BenchReport(std::move(name), RRB_GIT_DESCRIBE,
                              report_threads()) {}

  /// Add a top-level scalar (e.g. a fitted slope). Re-declared so the
  /// builder keeps returning the bench-side type.
  template <typename T>
  BenchReport& set(const std::string& key, T value) {
    rrb::exp::BenchReport::set(key, value);
    return *this;
  }

  /// Write BENCH_<name>.json, stamping the process peak RSS first so every
  /// trajectory file carries a memory data point next to its wall time
  /// (tools/bench-diff compares both).
  std::string write() {
    set("peak_rss_bytes",
        static_cast<std::uint64_t>(telemetry::peak_rss_bytes()));
    return rrb::exp::BenchReport::write();
  }
};

/// Scoped bench phase: records `phase_<name>_ms` on the report at scope
/// exit, and emits a telemetry span (category "bench") when tracing is
/// enabled — so the coarse phase structure lands in the BENCH_*.json
/// trajectory always, and in the Chrome trace when one is taken.
class Phase {
 public:
  Phase(BenchReport& report, std::string name)
      : report_(report),
        name_(std::move(name)),
        span_("bench", name_),
        begin_us_(telemetry::now_us()) {}
  ~Phase() {
    report_.set(
        "phase_" + name_ + "_ms",
        static_cast<double>(telemetry::now_us() - begin_us_) / 1000.0);
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  BenchReport& report_;
  std::string name_;
  telemetry::Span span_;
  std::int64_t begin_us_;
};

// ---- Factories -------------------------------------------------------------

inline GraphFactory regular_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
}

inline GraphFactory config_model_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return configuration_model(n, d, rng); };
}

inline ProtocolFactory four_choice_protocol(std::uint64_t n_estimate,
                                            double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<FourChoiceBroadcast>(cfg);
  };
}

inline ProtocolFactory four_choice_large_d_protocol(std::uint64_t n_estimate,
                                                    double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<FourChoiceLargeDegree>(cfg);
  };
}

inline ProtocolFactory push_protocol() {
  return [](const Graph&) { return make_protocol<PushProtocol>(); };
}

inline ProtocolFactory pull_protocol() {
  return [](const Graph&) { return make_protocol<PullProtocol>(); };
}

inline ProtocolFactory push_pull_protocol() {
  return [](const Graph&) { return make_protocol<PushPullProtocol>(); };
}

inline ProtocolFactory sequentialised_protocol(std::uint64_t n_estimate,
                                               double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<SequentialisedFourChoice>(cfg);
  };
}

inline ProtocolFactory median_counter_protocol(std::uint64_t n_estimate) {
  return [n_estimate](const Graph&) {
    MedianCounterConfig cfg;
    cfg.n_estimate = n_estimate;
    return make_protocol<MedianCounterProtocol>(cfg);
  };
}

/// Print a proportional-fit line "<label>: y ≈ a*x, R² = r".
inline void print_fit(const std::string& label,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  const ProportionalFit fit = fit_proportional(xs, ys);
  std::cout << label << ": slope " << fit.slope << ", R^2 " << fit.r2
            << "\n";
}

}  // namespace rrb::bench
