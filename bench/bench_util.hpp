#pragma once

/// Shared helpers for the experiment harness binaries (bench_e1 .. e17).
/// Every binary runs argument-free with laptop-scale defaults and prints
/// paper-style tables; EXPERIMENTS.md records the claim each one checks.
///
/// Besides the tables, every bench can emit a machine-readable
/// BENCH_<name>.json (see BenchReport below) so the repo accumulates a
/// bench trajectory across PRs: wall time, thread count, git revision and
/// whatever per-case metrics the bench adds.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rrb/analysis/fit.hpp"
#include "rrb/common/math.hpp"
#include "rrb/common/table.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/protocols/throttled.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"

// Git revision baked in by bench/CMakeLists.txt (git describe --always).
#ifndef RRB_GIT_DESCRIBE
#define RRB_GIT_DESCRIBE "unknown"
#endif

namespace rrb::bench {

/// Worker threads the default RunnerConfig resolves to — what every
/// run_trials/trace_set_sizes call in the benches will use unless a bench
/// overrides TrialConfig::runner. RRB_THREADS=1 gives the sequential
/// baseline for speedup comparisons; outputs are identical either way.
inline int report_threads() {
  return ParallelRunner::resolve_threads(RunnerConfig{});
}

/// Header printed by every experiment binary.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=====================================================\n"
            << id << "\n"
            << claim << "\n"
            << "threads: " << report_threads()
            << " (override with RRB_THREADS; results are thread-count"
               " independent)\n"
            << "=====================================================\n";
}

// ---- Machine-readable bench trajectory ------------------------------------

/// One flat JSON object: ordered string/number/bool fields.
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, quote(value));
    return *this;
  }
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonObject& set(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(17);
    os << value;
    fields_.emplace_back(key, os.str());
    return *this;
  }
  JsonObject& set(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& set(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  void write(std::ostream& os, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    os << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) os << ",";
      os << "\n" << pad << "  \"" << fields_[i].first
         << "\": " << fields_[i].second;
    }
    os << "\n" << pad << "}";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Accumulates a bench's machine-readable results and writes
/// `BENCH_<name>.json` (into $RRB_BENCH_JSON_DIR, default the working
/// directory) when write() is called — alongside, never instead of, the
/// human-readable tables. Standard fields (bench name, git revision,
/// thread count, wall time) are filled automatically so trajectory files
/// from different PRs are comparable.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// Add a top-level scalar (e.g. a fitted slope).
  template <typename T>
  BenchReport& set(const std::string& key, T value) {
    top_.set(key, value);
    return *this;
  }

  /// Append a per-case row; fill in the returned object.
  JsonObject& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Write BENCH_<name>.json and report the path on stdout. Returns the
  /// path written.
  std::string write() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();

    std::string dir = ".";
    if (const char* env = std::getenv("RRB_BENCH_JSON_DIR");
        env != nullptr && *env != '\0')
      dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";

    JsonObject header;
    header.set("bench", name_)
        .set("git", RRB_GIT_DESCRIBE)
        .set("threads", report_threads())
        .set("wall_ms", wall_ms);

    std::ofstream os(path);
    if (!os) {
      std::cerr << "warning: cannot write " << path << "\n";
      return path;
    }
    os << "{\n  \"meta\": ";
    header.write(os, 2);
    os << ",\n  \"top\": ";
    top_.write(os, 2);
    os << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i != 0) os << ",";
      os << "\n    ";
      rows_[i].write(os, 4);
    }
    os << (rows_.empty() ? "]" : "\n  ]") << "\n}\n";
    std::cout << "bench json: " << path << "\n";
    return path;
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  JsonObject top_;
  std::vector<JsonObject> rows_;
};

// ---- Factories -------------------------------------------------------------

inline GraphFactory regular_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
}

inline GraphFactory config_model_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return configuration_model(n, d, rng); };
}

inline ProtocolFactory four_choice_protocol(std::uint64_t n_estimate,
                                            double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<FourChoiceBroadcast>(cfg);
  };
}

inline ProtocolFactory four_choice_large_d_protocol(std::uint64_t n_estimate,
                                                    double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<FourChoiceLargeDegree>(cfg);
  };
}

inline ProtocolFactory push_protocol() {
  return [](const Graph&) { return make_protocol<PushProtocol>(); };
}

inline ProtocolFactory pull_protocol() {
  return [](const Graph&) { return make_protocol<PullProtocol>(); };
}

inline ProtocolFactory push_pull_protocol() {
  return [](const Graph&) { return make_protocol<PushPullProtocol>(); };
}

inline ProtocolFactory sequentialised_protocol(std::uint64_t n_estimate,
                                               double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return make_protocol<SequentialisedFourChoice>(cfg);
  };
}

inline ProtocolFactory median_counter_protocol(std::uint64_t n_estimate) {
  return [n_estimate](const Graph&) {
    MedianCounterConfig cfg;
    cfg.n_estimate = n_estimate;
    return make_protocol<MedianCounterProtocol>(cfg);
  };
}

/// Print a proportional-fit line "<label>: y ≈ a*x, R² = r".
inline void print_fit(const std::string& label,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  const ProportionalFit fit = fit_proportional(xs, ys);
  std::cout << label << ": slope " << fit.slope << ", R^2 " << fit.r2
            << "\n";
}

}  // namespace rrb::bench
