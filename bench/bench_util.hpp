#pragma once

/// Shared helpers for the experiment harness binaries (bench_e1 .. e17).
/// Every binary runs argument-free with laptop-scale defaults and prints
/// paper-style tables; EXPERIMENTS.md records the claim each one checks.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "rrb/analysis/fit.hpp"
#include "rrb/common/math.hpp"
#include "rrb/common/table.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/protocols/throttled.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"

namespace rrb::bench {

/// Worker threads the default RunnerConfig resolves to — what every
/// run_trials/trace_set_sizes call in the benches will use unless a bench
/// overrides TrialConfig::runner. RRB_THREADS=1 gives the sequential
/// baseline for speedup comparisons; outputs are identical either way.
inline int report_threads() {
  return ParallelRunner::resolve_threads(RunnerConfig{});
}

/// Header printed by every experiment binary.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=====================================================\n"
            << id << "\n"
            << claim << "\n"
            << "threads: " << report_threads()
            << " (override with RRB_THREADS; results are thread-count"
               " independent)\n"
            << "=====================================================\n";
}

inline GraphFactory regular_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
}

inline GraphFactory config_model_graph(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return configuration_model(n, d, rng); };
}

inline ProtocolFactory four_choice_protocol(std::uint64_t n_estimate,
                                            double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return std::make_unique<FourChoiceBroadcast>(cfg);
  };
}

inline ProtocolFactory four_choice_large_d_protocol(std::uint64_t n_estimate,
                                                    double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return std::make_unique<FourChoiceLargeDegree>(cfg);
  };
}

inline ProtocolFactory push_protocol() {
  return [](const Graph&) { return std::make_unique<PushProtocol>(); };
}

inline ProtocolFactory pull_protocol() {
  return [](const Graph&) { return std::make_unique<PullProtocol>(); };
}

inline ProtocolFactory push_pull_protocol() {
  return [](const Graph&) { return std::make_unique<PushPullProtocol>(); };
}

inline ProtocolFactory sequentialised_protocol(std::uint64_t n_estimate,
                                               double alpha = 1.5) {
  return [n_estimate, alpha](const Graph&) {
    FourChoiceConfig cfg;
    cfg.n_estimate = n_estimate;
    cfg.alpha = alpha;
    return std::make_unique<SequentialisedFourChoice>(cfg);
  };
}

inline ProtocolFactory median_counter_protocol(std::uint64_t n_estimate) {
  return [n_estimate](const Graph&) {
    MedianCounterConfig cfg;
    cfg.n_estimate = n_estimate;
    return std::make_unique<MedianCounterProtocol>(cfg);
  };
}

/// Print a proportional-fit line "<label>: y ≈ a*x, R² = r".
inline void print_fit(const std::string& label,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  const ProportionalFit fit = fit_proportional(xs, ys);
  std::cout << label << ": slope " << fit.slope << ", R^2 " << fit.r2
            << "\n";
}

}  // namespace rrb::bench
