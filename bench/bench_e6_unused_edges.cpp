/// E6 — Lemma 4: through phase 2, the number |U(t)| of nodes still incident
/// to at least one edge never used for a transmission stays
/// Ω(n·(1-1/d)^{10(t - α log n + 1)}). We track U(t) exactly via the
/// engine's edge-usage tracker and print it against the bound.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E6: Lemma 4 — nodes with unused edges through phase 2",
         "claim: |U(t)| = Omega(n (1-1/d)^{10(t-alpha log n+1)}) during "
         "phase 2");

  const NodeId n = 1 << 15;
  const NodeId d = 8;
  FourChoiceConfig fc;
  fc.n_estimate = n;
  const PhaseSchedule sched = make_schedule_small_d(fc);

  TraceConfig cfg;
  cfg.trials = 3;
  cfg.seed = 0xe6;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  cfg.track_edge_usage = true;
  const auto trace = trace_set_sizes(
      regular_graph(n, d),
      [n](const Graph&) {
        FourChoiceConfig c;
        c.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(c);
      },
      cfg);

  Table table({"t", "|U(t)|", "lemma4 bound", "|U|/bound", "h(t)"});
  table.set_title("Unused-edge nodes vs Lemma 4 bound, n = 2^15, d = 8");
  for (Round t = sched.phase1_end; t <= sched.phase2_end; ++t) {
    if (t < 1 || t > static_cast<Round>(trace.size())) continue;
    const SetTracePoint& p = trace[static_cast<std::size_t>(t - 1)];
    const double exponent = 10.0 * (static_cast<double>(t) -
                                    static_cast<double>(sched.phase1_end) +
                                    1.0);
    const double bound =
        static_cast<double>(n) *
        std::pow(1.0 - 1.0 / static_cast<double>(d), exponent);
    table.begin_row();
    table.add(static_cast<std::int64_t>(t));
    table.add(p.unused_edge_nodes, 1);
    table.add(bound, 1);
    table.add(bound > 0 ? p.unused_edge_nodes / bound : 0.0, 2);
    table.add(p.uninformed, 1);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: |U(t)| stays at or above the bound "
               "(ratio >= 1), and far\nabove h(t) — the slack Lemma 4 "
               "feeds into the phase 3/4 analysis.\n";
  return 0;
}
