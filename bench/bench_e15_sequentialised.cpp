/// E15 — The sequentialised model (§1.2, footnote 2): one choice per step
/// avoiding the partners of the last 3 steps, with the phase schedule
/// stretched 4x, is equivalent to the four-choice model (four sequential
/// steps = one parallel step). We also run memoryless 1-choice on the same
/// stretched schedule to show that the memory is what does the work.
///
/// Thin driver over the campaign subsystem: the memory ablation lives in
/// bench/campaigns/e15_sequentialised.campaign (memory axis 3, 0) with the
/// four-choice row in e15_fourchoice_reference.campaign, both running
/// through rrb::exp (cell seeds derive from (campaign_seed, cell_key) —
/// the campaign seeding contract); this binary only renders the table.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E15: sequentialised memory-3 variant vs four parallel choices",
         "claim: 1 choice/step + memory 3 + 4x schedule ≈ 4 distinct "
         "choices/step");

  const exp::CampaignSpec four_spec =
      exp::load_spec(campaign_path("e15_fourchoice_reference"));
  const exp::CampaignSpec seq_spec =
      exp::load_spec(campaign_path("e15_sequentialised"));
  const exp::CampaignOutcome four = exp::CampaignRunner(four_spec, {}).run();
  const exp::CampaignOutcome seq = exp::CampaignRunner(seq_spec, {}).run();

  Table table({"variant", "ok", "coverage", "rounds", "done@", "tx/node"});
  table.set_title("Algorithm 1 variants, n = 2^14, d = 8 (" +
                  std::to_string(seq_spec.trials) + " trials)");

  struct Row {
    const char* name;
    const exp::CampaignOutcome* outcome;
    int memory;
  };
  const Row rows[] = {
      {"4 choices/round (Algorithm 1)", &four, -1},
      {"1 choice/step + memory 3 (footnote 2)", &seq, 3},
      {"1 choice/step, no memory (ablation)", &seq, 0},
  };
  for (const Row& row : rows) {
    const exp::JsonObject& record =
        find_record(row.outcome->cells, [&row](const exp::CampaignCell& c) {
          return c.memory == row.memory;
        });
    table.begin_row();
    table.add(std::string(row.name));
    table.add(record_number(record, "completion_rate"), 2);
    table.add(record_number(record, "coverage_mean"), 6);
    table.add(record_number(record, "rounds_mean"), 1);
    table.add(record_number(record, "completion_mean"), 1);
    table.add(record_number(record, "tx_per_node_mean"), 2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: rows 1 and 2 match in coverage and tx/node "
               "— four sequential\nsteps with memory 3 emulate one parallel "
               "four-choice round exactly (footnote 2),\nat 4x the engine "
               "steps. Row 3 drops the memory: its four consecutive calls\n"
               "can repeat partners, so phase-1 pushes and the pull window "
               "lose distinctness\nand coverage/cost drift from the "
               "four-choice profile.\n";
  return 0;
}
