/// E15 — The sequentialised model (§1.2, footnote 2): one choice per step
/// avoiding the partners of the last 3 steps, with the phase schedule
/// stretched 4x, is equivalent to the four-choice model (four sequential
/// steps = one parallel step). We also run memoryless 1-choice on the same
/// stretched schedule to show that the memory is what does the work.

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

int main() {
  banner("E15: sequentialised memory-3 variant vs four parallel choices",
         "claim: 1 choice/step + memory 3 + 4x schedule ≈ 4 distinct "
         "choices/step");

  const NodeId n = 1 << 14;
  const NodeId d = 8;

  struct Variant {
    const char* name;
    ChannelConfig channel;
    ProtocolFactory factory;
  };
  ChannelConfig four;
  four.num_choices = 4;
  ChannelConfig seq;
  seq.num_choices = 1;
  seq.memory = 3;
  ChannelConfig plain;
  plain.num_choices = 1;

  const Variant variants[] = {
      {"4 choices/round (Algorithm 1)", four, four_choice_protocol(n)},
      {"1 choice/step + memory 3 (footnote 2)", seq,
       sequentialised_protocol(n)},
      {"1 choice/step, no memory (ablation)", plain,
       sequentialised_protocol(n)},
  };

  Table table({"variant", "ok", "coverage", "rounds", "done@", "tx/node"});
  table.set_title("Algorithm 1 variants, n = 2^14, d = 8 (10 trials)");
  for (const Variant& v : variants) {
    TrialConfig cfg;
    cfg.trials = 10;
    cfg.seed = 0xef;
    cfg.channel = v.channel;
    const TrialOutcome out = run_trials(regular_graph(n, d), v.factory, cfg);
    double coverage = 0.0;
    for (const RunResult& r : out.runs)
      coverage += static_cast<double>(r.final_informed) /
                  static_cast<double>(r.n);
    coverage /= static_cast<double>(out.runs.size());
    table.begin_row();
    table.add(std::string(v.name));
    table.add(out.completion_rate, 2);
    table.add(coverage, 6);
    table.add(out.rounds.mean, 1);
    table.add(out.completion_round.mean, 1);
    table.add(out.tx_per_node.mean, 2);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: rows 1 and 2 match in coverage and tx/node "
               "— four sequential\nsteps with memory 3 emulate one parallel "
               "four-choice round exactly (footnote 2),\nat 4x the engine "
               "steps. Row 3 drops the memory: its four consecutive calls\n"
               "can repeat partners, so phase-1 pushes and the pull window "
               "lose distinctness\nand coverage/cost drift from the "
               "four-choice profile.\n";
  return 0;
}
