/// X3 (extension) — receipt-latency distribution: *when* do individual
/// nodes receive the message under each protocol? The paper's phase
/// analysis predicts distinctive shapes: push's informed times concentrate
/// in the doubling phase with an exponential tail; the four-choice
/// algorithm front-loads phase 1 and sweeps the stragglers in one pull
/// round (a spike at the phase 3 boundary).

#include "bench_util.hpp"

#include "rrb/analysis/histogram.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

template <ProtocolImpl ProtocolT>
void latency_histogram(const std::string& name, ProtocolT& proto,
                       const Graph& g, const ChannelConfig& chan,
                       std::uint64_t seed) {
  GraphTopology topo(g);
  Rng rng(seed);
  PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
  const RunResult r = engine.run(proto, NodeId{0}, RunLimits{});

  std::vector<double> receipt_rounds;
  Round max_round = 1;
  for (const Round at : engine.informed_at())
    if (at != kNever) {
      receipt_rounds.push_back(static_cast<double>(at));
      max_round = std::max(max_round, at);
    }
  Histogram hist(0.0, static_cast<double>(max_round + 1),
                 static_cast<std::size_t>(max_round + 1));
  hist.add_all(receipt_rounds);

  std::cout << "--- " << name << " (informed " << receipt_rounds.size()
            << "/" << g.num_nodes() << ", done@" << r.completion_round
            << ") ---\n";
  std::cout << "p50 receipt round: "
            << quantile(receipt_rounds, 0.5) << ", p99: "
            << quantile(receipt_rounds, 0.99) << ", p100: "
            << quantile(receipt_rounds, 1.0) << "\n";
  std::cout << hist.to_string(48) << "\n";
}

}  // namespace

int main() {
  banner("X3: receipt-latency distributions — the phases made visible",
         "push: doubling then exponential tail; four-choice: phase-1 bulk "
         "+ pull-round spike");

  const NodeId n = 1 << 14;
  Rng grng(0xc3);
  const Graph g = random_regular_simple(n, 8, grng);

  PushProtocol push;
  latency_histogram("push (1 choice)", push, g, ChannelConfig{}, 0xc31);

  FourChoiceConfig fc;
  fc.n_estimate = n;
  FourChoiceBroadcast alg(fc);
  ChannelConfig four;
  four.num_choices = 4;
  latency_histogram("four-choice Algorithm 1", alg, g, four, 0xc32);

  MedianCounterConfig mc;
  mc.n_estimate = n;
  MedianCounterProtocol karp(mc);
  latency_histogram("median-counter push&pull", karp, g, ChannelConfig{},
                    0xc33);

  std::cout << "expected shape: push's histogram is a smooth bell with an "
               "exponential right\ntail; the four-choice histogram is "
               "front-loaded (phase-1 doubling saturates\nearly) and then "
               "nearly empty until the phase-3 pull round catches the\n"
               "handful of stragglers at once.\n";
  return 0;
}
