/// E7 — Lemma 8 / Observation 1: with s(t) = Θ(nd) stubs, the uninformed
/// subgraph's structure obeys h1 = Θ(h²d/n), h4 = Θ(h(hd/n)^4),
/// h5 = Θ(h(hd/n)^5). We compare the measured h_i(t) during phase 2
/// against the exact binomial heuristic h·P(Bin(d, h/n) >= i) whose Θ-shape
/// matches the lemma (the lemma's constants absorb the binomial
/// coefficients).

#include "bench_util.hpp"

using namespace rrb;
using namespace rrb::bench;

namespace {

double binom_tail(int d, double p, int i) {
  // P(Bin(d, p) >= i) computed directly (d is small).
  double prob = 0.0;
  double log_p = std::log(p);
  double log_q = std::log1p(-p);
  for (int k = i; k <= d; ++k) {
    double log_c = std::lgamma(d + 1) - std::lgamma(k + 1) -
                   std::lgamma(d - k + 1);
    prob += std::exp(log_c + k * log_p + (d - k) * log_q);
  }
  return prob;
}

}  // namespace

int main() {
  banner("E7: Lemma 8 — structure of the uninformed subgraph",
         "claim: h_i(t) = Theta(h·(h d/n)^i) for i = 1, 4, 5 while h is "
         "polynomially large");

  const NodeId n = 1 << 16;
  const int d = 8;
  FourChoiceConfig fc;
  fc.n_estimate = n;
  const PhaseSchedule sched = make_schedule_small_d(fc);

  TraceConfig cfg;
  cfg.trials = 5;
  cfg.seed = 0xe7;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = true;
  const auto trace = trace_set_sizes(
      regular_graph(n, static_cast<NodeId>(d)),
      [n](const Graph&) {
        FourChoiceConfig c;
        c.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(c);
      },
      cfg);

  Table table({"t", "h", "h1", "h1 pred", "h1 ratio", "h4", "h4 pred",
               "h4 ratio", "h5"});
  table.set_title("Measured vs binomial-heuristic h_i, n = 2^16, d = 8");
  // Start where H is still a large set (mid phase 1) — Lemma 8's regime is
  // "h polynomially large"; the frozen residual core at the end of phase 1
  // is shown last for contrast.
  for (Round t = 6; t <= sched.phase2_end; ++t) {
    if (t < 1 || t > static_cast<Round>(trace.size())) continue;
    const SetTracePoint& p = trace[static_cast<std::size_t>(t - 1)];
    if (p.uninformed < 24.0) break;  // too small for ratios to mean much
    const double frac = p.uninformed / static_cast<double>(n);
    const double h1_pred = p.uninformed * binom_tail(d, frac, 1);
    const double h4_pred = p.uninformed * binom_tail(d, frac, 4);
    table.begin_row();
    table.add(static_cast<std::int64_t>(t));
    table.add(p.uninformed, 0);
    table.add(p.h1, 0);
    table.add(h1_pred, 0);
    table.add(h1_pred > 0 ? p.h1 / h1_pred : 0.0, 2);
    table.add(p.h4, 1);
    table.add(h4_pred, 1);
    table.add(h4_pred > 0.5 ? p.h4 / h4_pred : 0.0, 2);
    table.add(p.h5, 1);
  }
  std::cout << table << "\n";
  std::cout << "expected shape: the h1 and h4 ratios hover around a "
               "constant (Lemma 8's Θ),\nwith h5 << h4 << h1 throughout "
               "(the h4 nodes are what the single pull round\ncannot reach; "
               "phase 4 exists for exactly those).\n";
  return 0;
}
