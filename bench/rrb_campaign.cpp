/// rrb_campaign — run a declarative experiment campaign.
///
/// A campaign spec (see bench/campaigns/*.campaign) names the axes of an
/// experiment grid; this tool expands it into cells, executes them through
/// the deterministic trial runner, and streams artifacts:
///
///   <out>/manifest.jsonl   append-only journal, one line per finished cell
///   <out>/results.jsonl    all cell records, in cell order
///   <out>/results.csv      the same records as CSV
///   <out>/campaign.json    spec echo + fingerprint
///   <out>/timing.jsonl     wall-time side channel (never deterministic,
///                          never merged or diffed)
///
/// Results are byte-identical for every --threads value, and an
/// interrupted run resumes from the manifest, recomputing only missing
/// cells. Shards (--shard I/K) write disjoint cell subsets; concatenating
/// shard manifests into one directory and re-running unsharded merges them
/// without recomputation.
///
/// Usage:
///   rrb_campaign [--spec FILE] [--set key=value ...] [--out DIR|none]
///                [--threads W] [--chunk C] [--parallel-cells]
///                [--shard I/K] [--merge DIR-OR-GLOB ...] [--list] [--quiet]
///
/// Without --spec, settings start from the built-in defaults; --set
/// overrides apply on top of the spec in the order given, e.g.
///   rrb_campaign --spec bench/campaigns/e1_smalld.campaign
///                --set "n = 2^10, 2^12" --set trials=3
///
/// --merge globs shard artifact directories, validates their manifests
/// against this spec's fingerprint, concatenates their journal lines into
/// --out, and then runs normally — the run reuses every merged cell and
/// emits the full artifacts without recomputing anything:
///   rrb_campaign --spec S --shard 0/2 --out shards/s0
///   rrb_campaign --spec S --shard 1/2 --out shards/s1
///   rrb_campaign --spec S --merge 'shards/s*' --out merged
///
/// --distribute K forks K worker processes over one artifact directory.
/// Workers claim cells dynamically (one O_CREAT|O_EXCL claim file per
/// cell — work stealing, not a static split), journal completed cells like
/// shards do, and are supervised: a crashed worker's claims are released
/// and it is respawned up to a retry budget, resuming from its journal.
/// The artifacts are byte-identical to a single-process run for any K and
/// any crash history — distribution is scheduling, never semantics:
///   rrb_campaign --spec S --distribute 4 --threads 1 --out swept

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rrb/common/table.hpp"
#include "rrb/exp/campaign.hpp"
#include "rrb/exp/distribute.hpp"
#include "rrb/telemetry/telemetry.hpp"

namespace {

struct Options {
  std::string spec_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::string out_dir;  // empty = derive from campaign name; "none" = memory
  std::vector<std::string> merge_sources;  // dirs or globs of shard outputs
  rrb::exp::CampaignConfig config;
  int distribute = 0;        // worker processes; 0 = run in this process
  int respawn_budget = -1;   // -1 = distribute_campaign default
  int worker_id = -1;        // >= 0: hidden worker mode (spawned by driver)
  int worker_crash_after = -1;  // test hook, forwarded to worker 0
  bool worker_events = false;   // hidden: flush telemetry per cell (--trace)
  std::string trace_path;       // Chrome trace JSON out; "" = no telemetry
  bool list = false;
  bool quiet = false;
};

void usage() {
  std::cout <<
      "usage: rrb_campaign [--spec FILE] [--set key=value ...] [--out DIR]\n"
      "                    [--threads W] [--chunk C] [--batch B]\n"
      "                    [--parallel-cells] [--shard I/K]\n"
      "                    [--merge DIR-OR-GLOB ...] [--distribute K]\n"
      "                    [--respawn-budget N] [--list] [--quiet]\n"
      "\n"
      "  --spec FILE      campaign spec file (key = value lines; see\n"
      "                   bench/campaigns/*.campaign)\n"
      "  --set key=value  override a spec setting (repeatable, applied in\n"
      "                   order after the spec file)\n"
      "  --out DIR        artifact directory (default campaign_<name>;\n"
      "                   'none' runs in memory without artifacts)\n"
      "  --threads W      worker threads (default 0 = auto: $RRB_THREADS,\n"
      "                   else hardware cores); never changes the results\n"
      "  --chunk C        trials per scheduling task (default 0 = auto)\n"
      "  --batch B        trials per lockstep engine step on fixed-topology\n"
      "                   paths (default 0 = sequential); same output\n"
      "  --parallel-cells fan cells (not trials) across the pool — faster\n"
      "                   for grids of many small cells, same output\n"
      "  --shard I/K      run only cells with index %% K == I\n"
      "  --merge PAT      merge shard manifests into --out before running\n"
      "                   (repeatable; PAT is a directory or a glob whose\n"
      "                   last component may contain '*'). Manifests must\n"
      "                   carry this spec's fingerprint; merged cells are\n"
      "                   reused, not recomputed\n"
      "  --distribute K   fork K supervised worker processes that claim\n"
      "                   cells dynamically over --out (crash recovery via\n"
      "                   journals; artifacts byte-identical to K=1)\n"
      "  --respawn-budget N\n"
      "                   total crashed-worker respawns before giving up\n"
      "                   (default 2*K); leftover cells run in-process\n"
      "  --trace FILE     record a Chrome trace-event JSON (open in Perfetto\n"
      "                   or chrome://tracing) covering the driver, any\n"
      "                   distributed workers, cells, engine kernels and\n"
      "                   runner chunks. Pure side channel: artifacts stay\n"
      "                   byte-identical with tracing on\n"
      "  --list           print the expanded cells and exit\n"
      "  --quiet          suppress per-cell progress lines\n";
}

namespace fs = std::filesystem;

/// '*'-only wildcard match (no '?', no character classes — shard directory
/// names do not need more).
bool glob_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return text.empty();
  if (pattern.front() == '*') {
    for (std::size_t i = 0; i <= text.size(); ++i)
      if (glob_match(pattern.substr(1), text.substr(i))) return true;
    return false;
  }
  return !text.empty() && pattern.front() == text.front() &&
         glob_match(pattern.substr(1), text.substr(1));
}

/// Expand one --merge argument into shard directories. Only the last path
/// component may be a glob; a plain directory expands to itself.
std::vector<fs::path> expand_merge_pattern(const std::string& pattern) {
  const fs::path as_path(pattern);
  const std::string leaf = as_path.filename().string();
  if (leaf.find('*') == std::string::npos) {
    if (!fs::is_directory(as_path))
      throw std::runtime_error("--merge: " + pattern + " is not a directory");
    return {as_path};
  }
  const fs::path parent =
      as_path.has_parent_path() ? as_path.parent_path() : fs::path(".");
  if (!fs::is_directory(parent))
    throw std::runtime_error("--merge: " + parent.string() +
                             " is not a directory");
  std::vector<fs::path> matches;
  for (const fs::directory_entry& entry : fs::directory_iterator(parent))
    if (entry.is_directory() &&
        glob_match(leaf, entry.path().filename().string()))
      matches.push_back(entry.path());
  std::sort(matches.begin(), matches.end());
  if (matches.empty())
    throw std::runtime_error("--merge: " + pattern +
                             " matched no directories");
  return matches;
}

/// Concatenate shard manifests into <out>/manifest.jsonl via the campaign
/// subsystem's own resume path: every source line whose header fingerprint
/// matches `fingerprint` is appended verbatim (byte-preserving, so the
/// subsequent run reuses the cells), other specs' manifests are refused.
///
/// Two-phase: every source (and the target, if it already has content) is
/// validated fully in memory before a single byte is written, so a refused
/// merge leaves the target directory exactly as it was — no empty or
/// headerless manifest for a retry to trip over.
std::size_t merge_manifests(const std::vector<std::string>& patterns,
                            const std::string& out_dir,
                            const std::string& fingerprint) {
  std::vector<fs::path> sources;
  for (const std::string& pattern : patterns)
    for (fs::path& dir : expand_merge_pattern(pattern))
      sources.push_back(std::move(dir));

  // Phase 1a: read and validate the sources.
  std::string header_line;
  std::vector<std::string> record_lines;
  for (const fs::path& dir : sources) {
    const fs::path manifest = dir / "manifest.jsonl";
    std::ifstream in(manifest);
    if (!in)
      throw std::runtime_error("--merge: " + dir.string() +
                               " has no manifest.jsonl");
    std::string line;
    bool source_verified = false;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto parsed = rrb::exp::parse_flat_json(line);
      if (parsed) {
        if (const auto fp = parsed->find_plain("fingerprint")) {
          if (*fp != fingerprint)
            throw std::runtime_error(
                "--merge: " + manifest.string() +
                " was written by a different campaign spec (fingerprint " +
                std::string(*fp) + ", this spec is " + fingerprint + ")");
          source_verified = true;
          if (header_line.empty()) header_line = line;
          continue;
        }
      }
      // A damaged line — unparseable (e.g. the truncated tail a killed
      // shard left) or parseable but keyless — must not spread into the
      // merged manifest; the loader there would only skip it again.
      if (!parsed || !parsed->find_plain("key")) continue;
      if (!source_verified)
        throw std::runtime_error(
            "--merge: " + manifest.string() +
            " has cell records before any fingerprint header — cannot "
            "verify they belong to this spec");
      record_lines.push_back(line);
    }
  }
  if (header_line.empty())
    throw std::runtime_error(
        "--merge: no source manifest carried a campaign header");

  // Phase 1b: if the target manifest already has content, it must carry a
  // matching header of its own (an interrupted run of this spec is fine;
  // anything else would poison the merge).
  const fs::path out_manifest = fs::path(out_dir) / "manifest.jsonl";
  bool target_has_header = false;
  {
    std::ifstream existing(out_manifest);
    std::string line;
    bool has_content = false;
    while (existing && std::getline(existing, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      has_content = true;
      const auto parsed = rrb::exp::parse_flat_json(line);
      if (!parsed) continue;
      if (const auto fp = parsed->find_plain("fingerprint")) {
        if (*fp != fingerprint)
          throw std::runtime_error(
              "--merge: " + out_manifest.string() +
              " already belongs to a different campaign spec (fingerprint " +
              std::string(*fp) + ", this spec is " + fingerprint + ")");
        target_has_header = true;
        break;
      }
    }
    if (has_content && !target_has_header)
      throw std::runtime_error(
          "--merge: " + out_manifest.string() +
          " holds records but no campaign header — delete it (or restore "
          "the header) before merging into this directory");
  }

  // Phase 2: append, writing exactly one header line overall.
  fs::create_directories(out_dir);
  std::ofstream out(out_manifest, std::ios::app);
  if (!out)
    throw std::runtime_error("--merge: cannot write " +
                             out_manifest.string());
  if (!target_has_header) out << header_line << "\n";
  for (const std::string& line : record_lines) out << line << "\n";
  return record_lines.size();
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--spec") opt.spec_path = next();
    else if (flag == "--set") {
      const std::string setting = next();
      const std::size_t eq = setting.find('=');
      if (eq == std::string::npos)
        throw std::runtime_error("--set expects key=value, got: " + setting);
      opt.overrides.emplace_back(setting.substr(0, eq), setting.substr(eq + 1));
    }
    else if (flag == "--out") opt.out_dir = next();
    else if (flag == "--threads") opt.config.runner.threads = std::stoi(next());
    else if (flag == "--chunk") opt.config.runner.chunk = std::stoi(next());
    else if (flag == "--batch") opt.config.runner.batch = std::stoi(next());
    else if (flag == "--parallel-cells") opt.config.parallel_cells = true;
    else if (flag == "--distribute") opt.distribute = std::stoi(next());
    else if (flag == "--respawn-budget") opt.respawn_budget = std::stoi(next());
    // Hidden: how the driver runs this binary as a claim-loop worker, and
    // the crash-recovery fixtures' one-shot SIGKILL hook (a flag, not an
    // environment variable, so the worker environment stays inert).
    else if (flag == "--worker") opt.worker_id = std::stoi(next());
    else if (flag == "--worker-crash-after")
      opt.worker_crash_after = std::stoi(next());
    else if (flag == "--worker-events") opt.worker_events = true;
    else if (flag == "--trace") opt.trace_path = next();
    else if (flag == "--shard") {
      const std::string shard = next();
      const std::size_t slash = shard.find('/');
      if (slash == std::string::npos)
        throw std::runtime_error("--shard expects I/K, got: " + shard);
      opt.config.shard_index = std::stoi(shard.substr(0, slash));
      opt.config.shard_count = std::stoi(shard.substr(slash + 1));
    }
    else if (flag == "--merge") opt.merge_sources.emplace_back(next());
    else if (flag == "--list") opt.list = true;
    else if (flag == "--quiet") opt.quiet = true;
    else throw std::runtime_error("unknown flag: " + flag);
  }
  if (opt.config.runner.threads < 0)
    throw std::runtime_error("--threads must be >= 0");
  if (opt.config.runner.chunk < 0)
    throw std::runtime_error("--chunk must be >= 0");
  if (opt.config.runner.batch < 0)
    throw std::runtime_error("--batch must be >= 0");
  if (opt.distribute < 0)
    throw std::runtime_error("--distribute must be >= 1");
  if (opt.distribute > 0 && opt.config.shard_count > 1)
    throw std::runtime_error(
        "--distribute and --shard do not compose: workers already split the "
        "grid dynamically (use --shard alone for a static split)");
  return true;
}

/// This binary's own path, for the driver to re-exec as workers.
std::string self_exe_path(const char* argv0) {
  std::error_code ec;
  const fs::path exe = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
  return argv0;  // non-Linux fallback; fine as long as argv[0] is runnable
}

/// A record field for the summary table, or "-" when the cell's execution
/// path does not produce it (e.g. coverage only exists for churn cells).
std::string field_or_dash(const rrb::exp::JsonObject& record,
                          std::string_view key) {
  if (const auto plain = record.find_plain(key)) return std::string(*plain);
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrb;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      usage();
      return 0;
    }

    // Hidden worker mode: claim and compute cells over the driver's
    // campaign directory, then exit. The spec comes from the resolved-spec
    // file the driver wrote — never from this process's own flags — so a
    // worker cannot drift from the campaign it serves.
    if (opt.worker_id >= 0) {
      if (opt.out_dir.empty() || opt.out_dir == "none")
        throw std::runtime_error("--worker needs the driver's --out DIR");
      if (opt.worker_events) {
        // Trace identity: driver is pid 1, worker i is pid 2 + i. Events
        // are flushed per cell by run_worker and merged by the driver.
        telemetry::enable();
        telemetry::set_process_id(2 + opt.worker_id);
        telemetry::set_process_label("rrb_campaign worker w" +
                                     std::to_string(opt.worker_id));
      }
      exp::WorkerConfig worker;
      worker.worker_id = opt.worker_id;
      worker.out_dir = opt.out_dir;
      worker.runner = opt.config.runner;
      worker.quiet = opt.quiet;
      worker.crash_after = opt.worker_crash_after;
      worker.record_events = opt.worker_events;
      const exp::CampaignSpec spec =
          exp::load_spec(exp::resolved_spec_path(opt.out_dir));
      const std::size_t computed = exp::run_worker(spec, worker);
      if (!opt.quiet)
        std::cout << "[w" << opt.worker_id << "] done, " << computed
                  << " cells computed\n";
      return 0;
    }

    if (!opt.trace_path.empty()) {
      telemetry::enable();
      telemetry::set_process_id(1);
      telemetry::set_process_label("rrb_campaign driver");
    }

    exp::CampaignSpec spec;
    if (!opt.spec_path.empty()) spec = exp::load_spec(opt.spec_path);
    for (const auto& [key, value] : opt.overrides)
      exp::apply_setting(spec, key, value);

    if (opt.out_dir == "none")
      opt.config.out_dir.clear();
    else if (!opt.out_dir.empty())
      opt.config.out_dir = opt.out_dir;
    else
      opt.config.out_dir = "campaign_" + spec.name;

    if (!opt.merge_sources.empty() && !opt.list) {
      if (opt.config.out_dir.empty())
        throw std::runtime_error("--merge needs a persistent --out directory");
      std::ostringstream fingerprint;
      fingerprint << "0x" << std::hex << exp::spec_fingerprint(spec);
      const std::size_t merged = merge_manifests(
          opt.merge_sources, opt.config.out_dir, fingerprint.str());
      std::cout << "merged " << merged << " cell records into "
                << opt.config.out_dir << "/manifest.jsonl\n";
    }

    // Distribute phase: fork the worker fleet and supervise it until the
    // grid is claimed and journaled, then fall through to the ordinary
    // in-process run — it reuses every merged cell, computes any cells a
    // permanently-failed worker abandoned, and writes the final artifacts,
    // byte-identical to a single-process run.
    if (opt.distribute > 0 && !opt.list) {
      if (opt.config.out_dir.empty())
        throw std::runtime_error(
            "--distribute needs a persistent --out directory");
      exp::DistributeConfig dist;
      dist.workers = opt.distribute;
      dist.respawn_budget = opt.respawn_budget;
      dist.runner = opt.config.runner;
      dist.out_dir = opt.config.out_dir;
      dist.quiet = opt.quiet;
      dist.trace = !opt.trace_path.empty();
      dist.crash_worker0_after = opt.worker_crash_after;
      const exp::DistributeReport report =
          exp::distribute_campaign(spec, dist, self_exe_path(argv[0]));
      std::cout << "[distribute] " << opt.distribute << " workers over "
                << report.cells << " cells: " << report.merged_after
                << " computed, " << report.merged_before
                << " reused from worker journals, " << report.respawns
                << " respawns, " << report.failed_workers
                << " workers abandoned\n";
    }

    exp::CampaignRunner runner(std::move(spec), opt.config);

    if (opt.list) {
      std::cout << "campaign " << runner.spec().name << ": "
                << runner.cells().size() << " cells\n";
      for (const exp::CampaignCell& cell : runner.cells())
        std::cout << "  [" << cell.index << "] " << cell.key << "  seed 0x"
                  << std::hex << cell.seed << std::dec << "\n";
      return 0;
    }

    std::cout << "campaign " << runner.spec().name << ": "
              << runner.cells().size() << " cells, " << runner.spec().trials
              << " trials each";
    if (opt.config.shard_count > 1)
      std::cout << " (shard " << opt.config.shard_index << "/"
                << opt.config.shard_count << ")";
    std::cout << "\n";

    const std::size_t total = runner.cells().size();
    const exp::CampaignOutcome outcome =
        runner.run([&](const exp::CellResult& done) {
          if (opt.quiet) return;
          std::cout << "  [" << done.cell.index + 1 << "/" << total << "] "
                    << done.cell.key
                    << (done.reused ? "  (reused)" : "  (computed)") << "\n";
        });

    Table table({"cell", "rounds", "ok", "tx/node", "coverage"});
    table.set_title("campaign " + runner.spec().name);
    for (const exp::CellResult& cell : outcome.cells) {
      table.begin_row();
      table.add(cell.cell.key);
      table.add(field_or_dash(cell.record, "rounds_mean"));
      table.add(field_or_dash(cell.record, "completion_rate"));
      table.add(field_or_dash(cell.record, "tx_per_node_mean"));
      table.add(field_or_dash(cell.record, "coverage_mean"));
    }
    std::cout << table;
    std::cout << outcome.computed << " cells computed, " << outcome.reused
              << " reused from the manifest\n";
    if (!outcome.manifest_path.empty())
      std::cout << "artifacts:\n  " << outcome.manifest_path << "\n  "
                << outcome.results_json_path << "\n  "
                << outcome.results_csv_path << "\n  " << outcome.meta_path
                << "\n  " << outcome.timing_path
                << "  (side channel, not deterministic)\n";

    // Assemble the trace last: the driver's own spans plus, under
    // --distribute, the per-worker event files — one flamegraph covering
    // the whole campaign.
    if (!opt.trace_path.empty()) {
      std::vector<telemetry::Event> events = telemetry::drain();
      if (opt.distribute > 0 && !opt.config.out_dir.empty())
        for (int id = 0; id < opt.distribute; ++id) {
          const std::vector<telemetry::Event> worker_events =
              telemetry::load_events_jsonl(
                  exp::worker_events_path(opt.config.out_dir, id));
          events.insert(events.end(), worker_events.begin(),
                        worker_events.end());
        }
      std::ofstream trace_out(opt.trace_path);
      if (!trace_out)
        throw std::runtime_error("cannot write " + opt.trace_path);
      telemetry::write_chrome_trace(trace_out, events);
      std::cout << "trace: " << opt.trace_path << " (" << events.size()
                << " events; open in Perfetto or chrome://tracing)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
