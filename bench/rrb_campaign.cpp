/// rrb_campaign — run a declarative experiment campaign.
///
/// A campaign spec (see bench/campaigns/*.campaign) names the axes of an
/// experiment grid; this tool expands it into cells, executes them through
/// the deterministic trial runner, and streams artifacts:
///
///   <out>/manifest.jsonl   append-only journal, one line per finished cell
///   <out>/results.jsonl    all cell records, in cell order
///   <out>/results.csv      the same records as CSV
///   <out>/campaign.json    spec echo + fingerprint
///
/// Results are byte-identical for every --threads value, and an
/// interrupted run resumes from the manifest, recomputing only missing
/// cells. Shards (--shard I/K) write disjoint cell subsets; concatenating
/// shard manifests into one directory and re-running unsharded merges them
/// without recomputation.
///
/// Usage:
///   rrb_campaign [--spec FILE] [--set key=value ...] [--out DIR|none]
///                [--threads W] [--chunk C] [--parallel-cells]
///                [--shard I/K] [--list] [--quiet]
///
/// Without --spec, settings start from the built-in defaults; --set
/// overrides apply on top of the spec in the order given, e.g.
///   rrb_campaign --spec bench/campaigns/e1_smalld.campaign
///                --set "n = 2^10, 2^12" --set trials=3

#include <exception>
#include <iostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rrb/common/table.hpp"
#include "rrb/exp/campaign.hpp"

namespace {

struct Options {
  std::string spec_path;
  std::vector<std::pair<std::string, std::string>> overrides;
  std::string out_dir;  // empty = derive from campaign name; "none" = memory
  rrb::exp::CampaignConfig config;
  bool list = false;
  bool quiet = false;
};

void usage() {
  std::cout <<
      "usage: rrb_campaign [--spec FILE] [--set key=value ...] [--out DIR]\n"
      "                    [--threads W] [--chunk C] [--parallel-cells]\n"
      "                    [--shard I/K] [--list] [--quiet]\n"
      "\n"
      "  --spec FILE      campaign spec file (key = value lines; see\n"
      "                   bench/campaigns/*.campaign)\n"
      "  --set key=value  override a spec setting (repeatable, applied in\n"
      "                   order after the spec file)\n"
      "  --out DIR        artifact directory (default campaign_<name>;\n"
      "                   'none' runs in memory without artifacts)\n"
      "  --threads W      worker threads (default 0 = auto: $RRB_THREADS,\n"
      "                   else hardware cores); never changes the results\n"
      "  --chunk C        trials per scheduling task (default 0 = auto)\n"
      "  --parallel-cells fan cells (not trials) across the pool — faster\n"
      "                   for grids of many small cells, same output\n"
      "  --shard I/K      run only cells with index %% K == I\n"
      "  --list           print the expanded cells and exit\n"
      "  --quiet          suppress per-cell progress lines\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--spec") opt.spec_path = next();
    else if (flag == "--set") {
      const std::string setting = next();
      const std::size_t eq = setting.find('=');
      if (eq == std::string::npos)
        throw std::runtime_error("--set expects key=value, got: " + setting);
      opt.overrides.emplace_back(setting.substr(0, eq), setting.substr(eq + 1));
    }
    else if (flag == "--out") opt.out_dir = next();
    else if (flag == "--threads") opt.config.runner.threads = std::stoi(next());
    else if (flag == "--chunk") opt.config.runner.chunk = std::stoi(next());
    else if (flag == "--parallel-cells") opt.config.parallel_cells = true;
    else if (flag == "--shard") {
      const std::string shard = next();
      const std::size_t slash = shard.find('/');
      if (slash == std::string::npos)
        throw std::runtime_error("--shard expects I/K, got: " + shard);
      opt.config.shard_index = std::stoi(shard.substr(0, slash));
      opt.config.shard_count = std::stoi(shard.substr(slash + 1));
    }
    else if (flag == "--list") opt.list = true;
    else if (flag == "--quiet") opt.quiet = true;
    else throw std::runtime_error("unknown flag: " + flag);
  }
  if (opt.config.runner.threads < 0)
    throw std::runtime_error("--threads must be >= 0");
  if (opt.config.runner.chunk < 0)
    throw std::runtime_error("--chunk must be >= 0");
  return true;
}

/// A record field for the summary table, or "-" when the cell's execution
/// path does not produce it (e.g. coverage only exists for churn cells).
std::string field_or_dash(const rrb::exp::JsonObject& record,
                          std::string_view key) {
  if (const auto plain = record.find_plain(key)) return std::string(*plain);
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrb;
  Options opt;
  try {
    if (!parse(argc, argv, opt)) {
      usage();
      return 0;
    }

    exp::CampaignSpec spec;
    if (!opt.spec_path.empty()) spec = exp::load_spec(opt.spec_path);
    for (const auto& [key, value] : opt.overrides)
      exp::apply_setting(spec, key, value);

    if (opt.out_dir == "none")
      opt.config.out_dir.clear();
    else if (!opt.out_dir.empty())
      opt.config.out_dir = opt.out_dir;
    else
      opt.config.out_dir = "campaign_" + spec.name;

    exp::CampaignRunner runner(std::move(spec), opt.config);

    if (opt.list) {
      std::cout << "campaign " << runner.spec().name << ": "
                << runner.cells().size() << " cells\n";
      for (const exp::CampaignCell& cell : runner.cells())
        std::cout << "  [" << cell.index << "] " << cell.key << "  seed 0x"
                  << std::hex << cell.seed << std::dec << "\n";
      return 0;
    }

    std::cout << "campaign " << runner.spec().name << ": "
              << runner.cells().size() << " cells, " << runner.spec().trials
              << " trials each";
    if (opt.config.shard_count > 1)
      std::cout << " (shard " << opt.config.shard_index << "/"
                << opt.config.shard_count << ")";
    std::cout << "\n";

    const std::size_t total = runner.cells().size();
    const exp::CampaignOutcome outcome =
        runner.run([&](const exp::CellResult& done) {
          if (opt.quiet) return;
          std::cout << "  [" << done.cell.index + 1 << "/" << total << "] "
                    << done.cell.key
                    << (done.reused ? "  (reused)" : "  (computed)") << "\n";
        });

    Table table({"cell", "rounds", "ok", "tx/node", "coverage"});
    table.set_title("campaign " + runner.spec().name);
    for (const exp::CellResult& cell : outcome.cells) {
      table.begin_row();
      table.add(cell.cell.key);
      table.add(field_or_dash(cell.record, "rounds_mean"));
      table.add(field_or_dash(cell.record, "completion_rate"));
      table.add(field_or_dash(cell.record, "tx_per_node_mean"));
      table.add(field_or_dash(cell.record, "coverage_mean"));
    }
    std::cout << table;
    std::cout << outcome.computed << " cells computed, " << outcome.reused
              << " reused from the manifest\n";
    if (!outcome.manifest_path.empty())
      std::cout << "artifacts:\n  " << outcome.manifest_path << "\n  "
                << outcome.results_json_path << "\n  "
                << outcome.results_csv_path << "\n  " << outcome.meta_path
                << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
