#include "rrb/protocols/sequentialised.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"

namespace rrb {
namespace {

FourChoiceConfig config_for(std::uint64_t n) {
  FourChoiceConfig cfg;
  cfg.n_estimate = n;
  return cfg;
}

TEST(Sequentialised, ParallelRoundMapping) {
  EXPECT_EQ(SequentialisedFourChoice::parallel_round(1), 1);
  EXPECT_EQ(SequentialisedFourChoice::parallel_round(4), 1);
  EXPECT_EQ(SequentialisedFourChoice::parallel_round(5), 2);
  EXPECT_EQ(SequentialisedFourChoice::parallel_round(8), 2);
  EXPECT_EQ(SequentialisedFourChoice::parallel_round(9), 3);
}

TEST(Sequentialised, HorizonIsFourTimesParallelSchedule) {
  SequentialisedFourChoice alg(config_for(1 << 16));
  const Round horizon = 4 * alg.parallel_schedule().phase4_end;
  EXPECT_FALSE(alg.finished(horizon - 1, 0, 0));
  EXPECT_TRUE(alg.finished(horizon, 0, 0));
}

TEST(Sequentialised, SourcePushesThroughFirstParallelRound) {
  SequentialisedFourChoice alg(config_for(1 << 16));
  NodeLocalState src;
  src.informed_at = 0;
  src.is_source = true;
  // Parallel round 1 = steps 1..4: the source (q = 0) pushes in all four.
  for (Round t = 1; t <= 4; ++t)
    EXPECT_EQ(alg.action(0, src, t), Action::kPush) << t;
  // Parallel round 2: the source is stale (q = 0 != p - 1 = 1).
  EXPECT_EQ(alg.action(0, src, 5), Action::kNone);
}

TEST(Sequentialised, FreshNodePushesExactlyFourSubSteps) {
  SequentialisedFourChoice alg(config_for(1 << 16));
  NodeLocalState fresh;
  fresh.informed_at = 2;  // informed in parallel round 1
  // It pushes during parallel round 2 = steps 5..8 only.
  EXPECT_EQ(alg.action(0, fresh, 3), Action::kNone);  // same parallel round
  EXPECT_EQ(alg.action(0, fresh, 4), Action::kNone);
  for (Round t = 5; t <= 8; ++t)
    EXPECT_EQ(alg.action(0, fresh, t), Action::kPush) << t;
  EXPECT_EQ(alg.action(0, fresh, 9), Action::kNone);
}

TEST(Sequentialised, PullWindowSpansFourSteps) {
  SequentialisedFourChoice alg(config_for(1 << 16));
  const PhaseSchedule& s = alg.parallel_schedule();
  NodeLocalState old;
  old.informed_at = 1;
  const Round pull_first = 4 * s.phase2_end + 1;
  for (Round t = pull_first; t < pull_first + 4; ++t)
    EXPECT_EQ(alg.action(0, old, t), Action::kPull) << t;
  // Phase 4 starts right after: early-informed nodes go silent there (only
  // nodes informed during phases 3/4 become active).
  EXPECT_EQ(alg.action(0, old, pull_first + 4), Action::kNone);
}

TEST(Sequentialised, Phase4ActivatesOnlyLateInformedNodes) {
  SequentialisedFourChoice alg(config_for(1 << 16));
  const PhaseSchedule& s = alg.parallel_schedule();
  const Round phase4_step = 4 * (s.phase3_end + 1);
  NodeLocalState early;
  early.informed_at = 2;
  NodeLocalState late;
  late.informed_at = 4 * s.phase2_end + 2;  // informed in the pull window
  EXPECT_EQ(alg.action(0, early, phase4_step), Action::kNone);
  EXPECT_EQ(alg.action(0, late, phase4_step), Action::kPush);
}

TEST(Sequentialised, CompletesOnRandomRegular) {
  Rng grng(1);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SequentialisedFourChoice alg(config_for(n));
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig chan;
    chan.num_choices = 1;
    chan.memory = 3;
    PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
    const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
    EXPECT_TRUE(r.all_informed) << seed;
    EXPECT_EQ(r.rounds, 4 * alg.parallel_schedule().phase4_end);
  }
}

TEST(Sequentialised, TransmissionsMatchFourChoiceWithinTolerance) {
  // Footnote 2's equivalence: the sequential emulation should land within
  // a few percent of the parallel four-choice transmission count.
  Rng grng(2);
  const NodeId n = 1 << 13;
  const Graph g = random_regular_simple(n, 8, grng);

  FourChoiceBroadcast parallel(config_for(n));
  GraphTopology topo_a(g);
  Rng rng_a(3);
  ChannelConfig four;
  four.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine_a(topo_a, four, rng_a);
  const RunResult pr = engine_a.run(parallel, NodeId{0}, RunLimits{});
  ASSERT_TRUE(pr.all_informed);

  SequentialisedFourChoice sequential(config_for(n));
  GraphTopology topo_b(g);
  Rng rng_b(4);
  ChannelConfig seq;
  seq.num_choices = 1;
  seq.memory = 3;
  PhoneCallEngine<GraphTopology> engine_b(topo_b, seq, rng_b);
  const RunResult sr = engine_b.run(sequential, NodeId{0}, RunLimits{});
  ASSERT_TRUE(sr.all_informed);

  const double ratio = static_cast<double>(sr.total_tx()) /
                       static_cast<double>(pr.total_tx());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
  // And four sequential steps per parallel round.
  EXPECT_EQ(sr.rounds, 4 * pr.rounds);
}

TEST(Sequentialised, NameIsStable) {
  SequentialisedFourChoice alg(config_for(256));
  EXPECT_STREQ(alg.name(), "four-choice/sequentialised");
}

}  // namespace
}  // namespace rrb
