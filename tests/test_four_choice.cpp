#include "rrb/protocols/four_choice.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"

namespace rrb {
namespace {

FourChoiceConfig config_for(std::uint64_t n, double alpha = 1.5) {
  FourChoiceConfig cfg;
  cfg.alpha = alpha;
  cfg.n_estimate = n;
  return cfg;
}

template <ProtocolImpl ProtocolT>
RunResult run_alg(ProtocolT& proto, const Graph& g,
                  std::uint64_t seed, int choices = 4) {
  GraphTopology topo(g);
  Rng rng(seed);
  ChannelConfig cfg;
  cfg.num_choices = choices;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  return engine.run(proto, NodeId{0}, RunLimits{});
}

TEST(Schedule, SmallDegreeBoundariesAreOrdered) {
  const PhaseSchedule s = make_schedule_small_d(config_for(1 << 16));
  EXPECT_GT(s.phase1_end, 0);
  EXPECT_GT(s.phase2_end, s.phase1_end);
  EXPECT_EQ(s.phase3_end, s.phase2_end + 1);
  EXPECT_GT(s.phase4_end, s.phase3_end);
}

TEST(Schedule, MatchesPaperFormulas) {
  // n̂ = 2^16, alpha = 1.5 (base-2 logs): phase1 = ⌈1.5*16⌉ = 24,
  // phase2 = ⌈1.5*(16+4)⌉ = 30, phase4 = 2*24 + ⌈1.5*4⌉ = 54.
  const PhaseSchedule s = make_schedule_small_d(config_for(1 << 16));
  EXPECT_EQ(s.phase1_end, 24);
  EXPECT_EQ(s.phase2_end, 30);
  EXPECT_EQ(s.phase3_end, 31);
  EXPECT_EQ(s.phase4_end, 54);
}

TEST(Schedule, LargeDegreeUsesPullTail) {
  const PhaseSchedule s = make_schedule_large_d(config_for(1 << 16));
  EXPECT_EQ(s.phase1_end, 24);
  EXPECT_EQ(s.phase2_end, 30);
  // phase3 = ⌈1.5*16 + 2*1.5*4⌉ = 36; no phase 4.
  EXPECT_EQ(s.phase3_end, 36);
  EXPECT_EQ(s.phase4_end, s.phase3_end);
}

TEST(Schedule, TotalRoundsIsLogarithmic) {
  // O(log n): doubling n adds a constant number of rounds.
  const Round r16 = make_schedule_small_d(config_for(1 << 16)).total_rounds();
  const Round r20 = make_schedule_small_d(config_for(1 << 20)).total_rounds();
  EXPECT_GT(r20, r16);
  EXPECT_LE(r20 - r16, 16);
}

TEST(Schedule, DegenerateSizesStayMonotone) {
  for (std::uint64_t n : {2ULL, 3ULL, 4ULL, 8ULL, 16ULL}) {
    const PhaseSchedule s = make_schedule_small_d(config_for(n));
    EXPECT_LT(s.phase1_end, s.phase2_end);
    EXPECT_LT(s.phase2_end, s.phase3_end);
    EXPECT_LT(s.phase3_end, s.phase4_end);
  }
}

TEST(Schedule, RejectsBadParameters) {
  FourChoiceConfig cfg;
  cfg.n_estimate = 1;
  EXPECT_THROW((void)make_schedule_small_d(cfg), std::logic_error);
  cfg.n_estimate = 100;
  cfg.alpha = 0.0;
  EXPECT_THROW((void)make_schedule_small_d(cfg), std::logic_error);
}

TEST(Alg1Actions, Phase1PushesOnlyFreshNodes) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  NodeLocalState fresh;
  fresh.informed_at = 4;
  NodeLocalState stale;
  stale.informed_at = 2;
  EXPECT_EQ(alg.action(0, fresh, 5), Action::kPush);
  EXPECT_EQ(alg.action(0, stale, 5), Action::kNone);
}

TEST(Alg1Actions, SourcePushesInRoundOne) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  NodeLocalState src;
  src.informed_at = 0;
  src.is_source = true;
  EXPECT_EQ(alg.action(0, src, 1), Action::kPush);
  EXPECT_EQ(alg.action(0, src, 2), Action::kNone);
}

TEST(Alg1Actions, Phase2AllInformedPush) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  const Round t = alg.schedule().phase1_end + 1;
  NodeLocalState old;
  old.informed_at = 0;
  EXPECT_EQ(alg.action(0, old, t), Action::kPush);
}

TEST(Alg1Actions, Phase3IsSinglePullRound) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  const Round t = alg.schedule().phase2_end + 1;
  NodeLocalState old;
  old.informed_at = 0;
  EXPECT_EQ(alg.action(0, old, t), Action::kPull);
  EXPECT_EQ(alg.phase_of(t), 3);
}

TEST(Alg1Actions, Phase4OnlyActiveNodesPush) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  const PhaseSchedule& s = alg.schedule();
  const Round t = s.phase3_end + 2;
  NodeLocalState informed_early;
  informed_early.informed_at = 3;  // informed in phase 1 -> not active
  NodeLocalState informed_phase3;
  informed_phase3.informed_at = s.phase3_end;  // informed by the pull
  NodeLocalState informed_phase4;
  informed_phase4.informed_at = s.phase3_end + 1;
  EXPECT_EQ(alg.action(0, informed_early, t), Action::kNone);
  EXPECT_EQ(alg.action(0, informed_phase3, t), Action::kPush);
  EXPECT_EQ(alg.action(0, informed_phase4, t), Action::kPush);
}

TEST(Alg1Actions, SilentAfterHorizon) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  NodeLocalState any;
  any.informed_at = 1;
  EXPECT_EQ(alg.action(0, any, alg.schedule().phase4_end + 1), Action::kNone);
  EXPECT_EQ(alg.phase_of(alg.schedule().phase4_end + 1), 0);
}

TEST(Alg1Actions, FinishedExactlyAtHorizon) {
  FourChoiceBroadcast alg(config_for(1 << 16));
  EXPECT_FALSE(alg.finished(alg.schedule().phase4_end - 1, 0, 0));
  EXPECT_TRUE(alg.finished(alg.schedule().phase4_end, 0, 0));
}

TEST(Alg2Actions, PullThroughoutPhase3) {
  FourChoiceLargeDegree alg(config_for(1 << 16));
  const PhaseSchedule& s = alg.schedule();
  NodeLocalState old;
  old.informed_at = 0;
  for (Round t = s.phase2_end + 1; t <= s.phase3_end; ++t)
    EXPECT_EQ(alg.action(0, old, t), Action::kPull);
  EXPECT_EQ(alg.action(0, old, s.phase3_end + 1), Action::kNone);
  EXPECT_TRUE(alg.finished(s.phase3_end, 0, 0));
}

TEST(Alg1, InformsEveryoneOnSmallDegreeRandomRegular) {
  Rng grng(1);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    FourChoiceBroadcast alg(config_for(n));
    const RunResult r = run_alg(alg, g, seed);
    EXPECT_TRUE(r.all_informed) << "seed " << seed;
    EXPECT_EQ(r.rounds, alg.schedule().phase4_end);
  }
}

TEST(Alg2, InformsEveryoneOnLargeDegreeRandomRegular) {
  Rng grng(2);
  const NodeId n = 4096;
  const NodeId d = 24;  // ~ 2 log n: Algorithm 2 territory
  const Graph g = random_regular_simple(n, d, grng);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    FourChoiceLargeDegree alg(config_for(n));
    const RunResult r = run_alg(alg, g, seed);
    EXPECT_TRUE(r.all_informed) << "seed " << seed;
  }
}

TEST(Alg1, WorksOnConfigurationModelMultigraph) {
  // The paper analyses the algorithm directly on the pairing-model output,
  // loops and parallel edges included.
  Rng grng(3);
  const NodeId n = 4096;
  const Graph g = configuration_model(n, 8, grng);
  FourChoiceBroadcast alg(config_for(n));
  const RunResult r = run_alg(alg, g, 4);
  EXPECT_TRUE(r.all_informed);
}

TEST(Alg1, TransmissionsPerNodeGrowDoublyLogarithmically) {
  // Theorem 2's headline: O(n log log n) transmissions. The honest
  // laptop-scale check is the *growth rate*: going from n = 2^10 to
  // n = 2^16 multiplies log n by 1.6 but log log n only by ~1.2, so the
  // four-choice per-node transmission count must grow by well under the
  // log n factor (a push-style Θ(log n) cost would not).
  auto per_node_at = [](NodeId n, std::uint64_t seed) {
    Rng grng(seed);
    const Graph g = random_regular_simple(n, 8, grng);
    FourChoiceBroadcast alg(config_for(n));
    const RunResult r = run_alg(alg, g, seed + 1);
    EXPECT_TRUE(r.all_informed);
    return r.tx_per_node();
  };
  const double small = per_node_at(1 << 10, 5);
  const double large = per_node_at(1 << 16, 6);
  EXPECT_GT(small, 1.0);
  EXPECT_LT(large / small, 1.45);  // log n ratio would be 1.6
}

TEST(Alg1, RobustToUnderestimateOfN) {
  // "only requires rough estimates of the number of nodes": n̂ = n/2.
  Rng grng(7);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceBroadcast alg(config_for(n / 2));
  const RunResult r = run_alg(alg, g, 8);
  EXPECT_TRUE(r.all_informed);
}

TEST(Alg1, RobustToOverestimateOfN) {
  Rng grng(9);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceBroadcast alg(config_for(static_cast<std::uint64_t>(n) * 4));
  const RunResult r = run_alg(alg, g, 10);
  EXPECT_TRUE(r.all_informed);
}

TEST(Alg1, SurvivesModerateChannelFailures) {
  Rng grng(11);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceBroadcast alg(config_for(n, /*alpha=*/2.0));
  GraphTopology topo(g);
  Rng rng(12);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  cfg.failure_prob = 0.1;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
}

TEST(Alg1, SequentialisedMemoryVariantAlsoCompletes) {
  // §1.2 footnote 2: one choice per step avoiding the last 3 partners,
  // with the schedule stretched 4x, matches the four-choice behaviour.
  Rng grng(13);
  const NodeId n = 2048;
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceConfig fc = config_for(n, /*alpha=*/1.5 * 4);
  FourChoiceBroadcast alg(fc);
  GraphTopology topo(g);
  Rng rng(14);
  ChannelConfig cfg;
  cfg.num_choices = 1;
  cfg.memory = 3;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
}

TEST(Factory, SelectsAlgorithmByDegree) {
  const FourChoiceConfig cfg = config_for(1 << 16);
  // log log n = 4; delta = 3 -> threshold 12.
  const auto alg_small = make_four_choice_protocol(cfg, 8);
  const auto alg_large = make_four_choice_protocol(cfg, 16);
  EXPECT_STREQ(alg_small->name(), "four-choice/alg1");
  EXPECT_STREQ(alg_large->name(), "four-choice/alg2");
}

TEST(Alg1, FixedHorizonIgnoresOracle) {
  // Even when everyone is informed early, the protocol runs its schedule to
  // the end (no oracle termination) — transmissions are charged exactly as
  // the paper's fixed-length algorithm does.
  const Graph g = complete(16);
  FourChoiceBroadcast alg(config_for(16));
  const RunResult r = run_alg(alg, g, 15);
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.rounds, alg.schedule().phase4_end);
  EXPECT_GT(r.rounds, r.completion_round);
}

/// Property sweep over (n, d, choices): the four-choice algorithm (and its
/// k-choice generalisations, k >= 3) completes on random regular graphs.
class FourChoiceParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FourChoiceParam, BroadcastCompletes) {
  const auto [n, d, k] = GetParam();
  Rng grng(static_cast<std::uint64_t>(n * 131 + d * 17 + k));
  const Graph g = random_regular_simple(static_cast<NodeId>(n),
                                        static_cast<NodeId>(d), grng);
  FourChoiceBroadcast alg(config_for(static_cast<std::uint64_t>(n)));
  const RunResult r =
      run_alg(alg, g, static_cast<std::uint64_t>(n + d + k), k);
  EXPECT_TRUE(r.all_informed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FourChoiceParam,
    ::testing::Combine(::testing::Values(512, 2048),
                       ::testing::Values(6, 10, 16),
                       ::testing::Values(3, 4, 6)));

}  // namespace
}  // namespace rrb
