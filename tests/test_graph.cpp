#include "rrb/graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace rrb {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5U);
  EXPECT_EQ(g.num_edges(), 0U);
  EXPECT_EQ(g.degree(3), 0U);
  EXPECT_TRUE(g.is_simple());
}

TEST(Graph, SingleEdgeAppearsInBothAdjacencies) {
  const std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(1), 1U);
  EXPECT_EQ(g.neighbor(0, 0), 1U);
  EXPECT_EQ(g.neighbor(1, 0), 0U);
}

TEST(Graph, TriangleStructure) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3U);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{2});
}

TEST(Graph, SelfLoopCountsTwiceInDegree) {
  const std::vector<Edge> edges{{0, 0}};
  const Graph g = Graph::from_edges(1, edges);
  EXPECT_EQ(g.degree(0), 2U);         // a loop consumes two stubs
  EXPECT_EQ(g.num_edges(), 1U);
  EXPECT_EQ(g.num_self_loops(), 1U);
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.edge_multiplicity(0, 0), 1U);
}

TEST(Graph, ParallelEdgesKeptWithMultiplicity) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {1, 0}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.num_edges(), 3U);
  EXPECT_EQ(g.degree(0), 3U);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 3U);
  EXPECT_EQ(g.num_parallel_extra(), 2U);
  EXPECT_FALSE(g.is_simple());
}

TEST(Graph, MixedLoopsAndParallel) {
  const std::vector<Edge> edges{{0, 0}, {0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  EXPECT_EQ(g.degree(0), 5U);  // 2+2 loop stubs + 1
  EXPECT_EQ(g.num_self_loops(), 2U);
  EXPECT_EQ(g.edge_multiplicity(0, 0), 2U);
  EXPECT_EQ(g.num_parallel_extra(), 1U);  // the second loop is "parallel"
}

TEST(Graph, HasEdgeNegative) {
  const std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_EQ(g.edge_multiplicity(0, 2), 0U);
}

TEST(Graph, AdjacencyIsSorted) {
  const std::vector<Edge> edges{{0, 3}, {0, 1}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  const auto adj = g.neighbors(0);
  ASSERT_EQ(adj.size(), 3U);
  EXPECT_TRUE(adj[0] <= adj[1] && adj[1] <= adj[2]);
}

TEST(Graph, OutOfRangeAccessThrows) {
  Graph g(2);
  EXPECT_THROW((void)g.degree(2), std::logic_error);
  EXPECT_THROW((void)g.neighbors(5), std::logic_error);
  EXPECT_THROW((void)g.neighbor(0, 0), std::logic_error);
}

TEST(Graph, FromEdgesRejectsBadEndpoints) {
  const std::vector<Edge> edges{{0, 7}};
  EXPECT_THROW((void)Graph::from_edges(3, edges), std::logic_error);
}

TEST(Graph, RegularDegreeDetectsIrregular) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  EXPECT_FALSE(g.regular_degree().has_value());
}

TEST(Graph, MinMaxDegree) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {1, 3}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.min_degree(), 1U);
  EXPECT_EQ(g.max_degree(), 3U);
}

TEST(Graph, EdgeListRoundTripsSimpleGraph) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  const Graph g = Graph::from_edges(4, edges);
  const auto list = g.edge_list();
  ASSERT_EQ(list.size(), 4U);
  const Graph g2 = Graph::from_edges(4, list);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(g2.degree(v), g.degree(v));
}

TEST(Graph, EdgeListPreservesMultiplicityAndLoops) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {2, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const auto list = g.edge_list();
  ASSERT_EQ(list.size(), 3U);
  const Graph g2 = Graph::from_edges(3, list);
  EXPECT_EQ(g2.edge_multiplicity(0, 1), 2U);
  EXPECT_EQ(g2.edge_multiplicity(2, 2), 1U);
}

TEST(Graph, EdgeListCanonicalOrientation) {
  const std::vector<Edge> edges{{3, 1}, {2, 0}};
  const Graph g = Graph::from_edges(4, edges);
  for (const Edge& e : g.edge_list()) EXPECT_LE(e.u, e.v);
}

TEST(GraphBuilder, BuildMatchesFromEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  EXPECT_EQ(b.num_edges(), 2U);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::logic_error);
}

TEST(Graph, HandshakeLemmaHolds) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  Count degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

// ---------------------------------------------------------------------------
// from_csr: adopting a prebuilt CSR (the rrb::bigtopo handoff path)
// ---------------------------------------------------------------------------

TEST(GraphFromCsr, ValidCsrMatchesFromEdges) {
  // Triangle, handed over as offsets + sorted adjacency.
  const Graph csr = Graph::from_csr({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph ref = Graph::from_edges(3, edges);
  ASSERT_EQ(csr.num_nodes(), ref.num_nodes());
  EXPECT_EQ(csr.num_edges(), ref.num_edges());
  for (NodeId v = 0; v < 3; ++v) {
    ASSERT_EQ(csr.degree(v), ref.degree(v));
    for (NodeId i = 0; i < csr.degree(v); ++i)
      EXPECT_EQ(csr.neighbors(v)[i], ref.neighbors(v)[i]);
  }
  EXPECT_TRUE(csr.is_simple());
}

TEST(GraphFromCsr, CountsLoopsAndParallelEdges) {
  // Node 0: loop (two entries) + double edge to 1. Node 1: double edge back.
  const Graph g = Graph::from_csr({0, 4, 6}, {0, 0, 1, 1, 0, 0});
  EXPECT_EQ(g.num_edges(), 3U);
  EXPECT_EQ(g.num_self_loops(), 1U);
  EXPECT_EQ(g.num_parallel_extra(), 1U);
  EXPECT_EQ(g.degree(0), 4U);
  EXPECT_EQ(g.edge_multiplicity(0, 1), 2U);
}

TEST(GraphFromCsr, RejectsMalformedOffsets) {
  // Empty offsets (no n+1 anchor row).
  EXPECT_THROW((void)Graph::from_csr({}, {}), std::logic_error);
  // offsets[0] != 0.
  EXPECT_THROW((void)Graph::from_csr({1, 2}, {0}), std::logic_error);
  // Non-monotone offsets.
  EXPECT_THROW((void)Graph::from_csr({0, 4, 2, 6}, {1, 2, 0, 2, 0, 1}),
               std::logic_error);
  // offsets back row disagrees with adjacency size.
  EXPECT_THROW((void)Graph::from_csr({0, 2, 5}, {1, 1, 0, 0}),
               std::logic_error);
  // Odd total stub count (violates the handshake lemma).
  EXPECT_THROW((void)Graph::from_csr({0, 1, 2, 3}, {1, 0, 0}),
               std::logic_error);
}

TEST(GraphFromCsr, RejectsBadAdjacency) {
  // Entry out of node range.
  EXPECT_THROW((void)Graph::from_csr({0, 1, 2}, {1, 2}), std::logic_error);
  // Per-node list not sorted.
  EXPECT_THROW((void)Graph::from_csr({0, 2, 3, 4}, {2, 1, 0, 0}),
               std::logic_error);
}

TEST(GraphFromCsr, FullValidationCatchesAsymmetry) {
  // 0 lists 1 twice, 1 lists 0 once (and 2 pads the total even): a CSR no
  // edge multiset can produce. kBasic trusts the producer; kFull scans.
  const std::vector<Count> offsets{0, 2, 3, 4};
  const std::vector<NodeId> adjacency{1, 1, 0, 0};
  EXPECT_NO_THROW((void)Graph::from_csr(offsets, adjacency));
  EXPECT_THROW((void)Graph::from_csr(offsets, adjacency,
                                     CsrValidation::kFull),
               std::logic_error);

  // A consistent multigraph passes kFull: loop at 0 plus double edge 0-1.
  EXPECT_NO_THROW((void)Graph::from_csr({0, 4, 6}, {0, 0, 1, 1, 0, 0},
                                        CsrValidation::kFull));
}

TEST(Graph, HandshakeLemmaWithLoopsAndParallels) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}, {0, 1}, {1, 1}};
  const Graph g = Graph::from_edges(2, edges);
  Count degree_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

}  // namespace
}  // namespace rrb
