/// The deterministic parallel runner: scheduling unit tests, plus the
/// determinism regression suite pinning the seeding contract — the same
/// (seed, trials) produces byte-identical results for every thread count
/// and for chunked vs. unchunked scheduling, across the paper's schemes.

#include "rrb/sim/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "rrb/core/broadcast.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/sequentialised.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"

namespace rrb {
namespace {

// ---------------------------------------------------------------------------
// ParallelRunner scheduling unit tests.

TEST(Runner, ChunkBoundsPartitionTrials) {
  RunnerConfig cfg;
  cfg.chunk = 4;
  ParallelRunner runner(cfg);
  EXPECT_EQ(runner.num_chunks(9), 3);
  EXPECT_EQ(runner.chunk_bounds(0, 9), (std::pair<int, int>{0, 4}));
  EXPECT_EQ(runner.chunk_bounds(1, 9), (std::pair<int, int>{4, 8}));
  EXPECT_EQ(runner.chunk_bounds(2, 9), (std::pair<int, int>{8, 9}));
  EXPECT_THROW((void)runner.chunk_bounds(3, 9), std::logic_error);
}

TEST(Runner, DefaultChunkIsBoundedByWorkerCount) {
  // Regression: the default chunk was once 1 trial per task, so callers
  // allocating one partial-reduction slot per chunk (reduce_trials) built
  // a million slots for a million-trial sweep. The default now targets
  // ~4 chunks per worker, independent of the trial count.
  RunnerConfig cfg;
  cfg.threads = 4;
  ParallelRunner runner(cfg);
  EXPECT_EQ(runner.resolved_chunk(1'000'000), 62'500);
  EXPECT_EQ(runner.num_chunks(1'000'000), 16);
  EXPECT_LE(runner.num_chunks(1'000'000), 4 * cfg.threads);
  // Tiny sweeps still get per-trial chunks (full dynamic balancing).
  EXPECT_EQ(runner.resolved_chunk(7), 1);
  EXPECT_EQ(runner.num_chunks(7), 7);
  // An explicit chunk is honoured verbatim, whatever the trial count.
  cfg.chunk = 5;
  ParallelRunner explicit_chunk(cfg);
  EXPECT_EQ(explicit_chunk.resolved_chunk(1'000'000), 5);
  EXPECT_EQ(explicit_chunk.num_chunks(10), 2);
}

TEST(Runner, ExplicitThreadsResolveVerbatim) {
  RunnerConfig cfg;
  cfg.threads = 3;
  EXPECT_EQ(ParallelRunner::resolve_threads(cfg), 3);
  cfg.threads = 0;
  EXPECT_GE(ParallelRunner::resolve_threads(cfg), 1);
}

TEST(Runner, RejectsNegativeConfig) {
  RunnerConfig bad;
  bad.threads = -1;
  EXPECT_THROW(ParallelRunner{bad}, std::logic_error);
  bad.threads = 0;
  bad.chunk = -2;
  EXPECT_THROW(ParallelRunner{bad}, std::logic_error);
}

class RunnerThreadGrid : public ::testing::TestWithParam<int> {};

TEST_P(RunnerThreadGrid, EveryTrialRunsExactlyOnce) {
  RunnerConfig cfg;
  cfg.threads = GetParam();
  cfg.chunk = 3;
  constexpr int kTrials = 50;
  std::vector<std::atomic<int>> hits(kTrials);
  ParallelRunner runner(cfg);
  runner.for_each_trial(kTrials, [&](int trial) {
    ASSERT_GE(trial, 0);
    ASSERT_LT(trial, kTrials);
    ++hits[static_cast<std::size_t>(trial)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(RunnerThreadGrid, ChunksSeeTheirOwnIndexAndBounds) {
  RunnerConfig cfg;
  cfg.threads = GetParam();
  cfg.chunk = 4;
  ParallelRunner runner(cfg);
  std::mutex mu;
  std::set<int> seen;
  runner.for_each_chunk(10, [&](int index, int begin, int end) {
    EXPECT_EQ(begin, index * 4);
    EXPECT_EQ(end, std::min(10, begin + 4));
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(index).second);
  });
  EXPECT_EQ(seen.size(), 3U);
}

TEST_P(RunnerThreadGrid, LowestFailingChunkExceptionWins) {
  RunnerConfig cfg;
  cfg.threads = GetParam();
  ParallelRunner runner(cfg);
  try {
    runner.for_each_trial(16, [](int trial) {
      if (trial >= 4) throw std::runtime_error("trial " +
                                               std::to_string(trial));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Trials 4..15 may all throw concurrently; the runner rethrows the
    // lowest-indexed chunk that ran and threw. With threads=1 the pool
    // runs in order and aborts at the first failure, so the winner is
    // exactly trial 4; in parallel, later chunks may have started before
    // the abort flag was observed, but trials 0..3 never throw, so the
    // reported index must still be >= 4.
    const std::string what = e.what();
    ASSERT_EQ(what.rfind("trial ", 0), 0U) << what;
    const int failed = std::stoi(what.substr(6));
    EXPECT_GE(failed, 4);
    EXPECT_LT(failed, 16);
    if (GetParam() == 1) {
      EXPECT_EQ(failed, 4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RunnerThreadGrid, ::testing::Values(1, 2, 8));

TEST(Runner, SequentialExceptionIsTheFirstTrial) {
  RunnerConfig cfg;
  cfg.threads = 1;
  ParallelRunner runner(cfg);
  EXPECT_THROW(runner.for_each_trial(8,
                                     [](int trial) {
                                       if (trial == 3)
                                         throw std::logic_error("boom");
                                     }),
               std::logic_error);
}

TEST(Runner, ZeroTrialsIsANoop) {
  ParallelRunner runner{RunnerConfig{}};
  int calls = 0;
  runner.for_each_trial(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

// ---------------------------------------------------------------------------
// Determinism regression suite: the tentpole acceptance criterion.

[[nodiscard]] std::uint64_t bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

void expect_identical(const Summary& a, const Summary& b) {
  EXPECT_EQ(bits(a.mean), bits(b.mean));
  EXPECT_EQ(bits(a.stddev), bits(b.stddev));
  EXPECT_EQ(bits(a.min), bits(b.min));
  EXPECT_EQ(bits(a.max), bits(b.max));
  EXPECT_EQ(bits(a.median), bits(b.median));
  EXPECT_EQ(a.count, b.count);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.alive_at_end, b.alive_at_end);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.all_informed, b.all_informed);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.pull_tx, b.pull_tx);
  EXPECT_EQ(a.channels_opened, b.channels_opened);
  EXPECT_EQ(a.channels_failed, b.channels_failed);
  EXPECT_EQ(a.final_informed, b.final_informed);
  EXPECT_EQ(a.per_round.size(), b.per_round.size());
}

void expect_identical(const TrialOutcome& a, const TrialOutcome& b) {
  expect_identical(a.rounds, b.rounds);
  expect_identical(a.completion_round, b.completion_round);
  expect_identical(a.total_tx, b.total_tx);
  expect_identical(a.tx_per_node, b.tx_per_node);
  expect_identical(a.push_tx, b.push_tx);
  expect_identical(a.pull_tx, b.pull_tx);
  EXPECT_EQ(bits(a.completion_rate), bits(b.completion_rate));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i)
    expect_identical(a.runs[i], b.runs[i]);
}

void expect_identical(const std::vector<SetTracePoint>& a,
                      const std::vector<SetTracePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t);
    EXPECT_EQ(bits(a[i].informed), bits(b[i].informed));
    EXPECT_EQ(bits(a[i].newly_informed), bits(b[i].newly_informed));
    EXPECT_EQ(bits(a[i].uninformed), bits(b[i].uninformed));
    EXPECT_EQ(bits(a[i].h1), bits(b[i].h1));
    EXPECT_EQ(bits(a[i].h4), bits(b[i].h4));
    EXPECT_EQ(bits(a[i].h5), bits(b[i].h5));
    EXPECT_EQ(bits(a[i].unused_edge_nodes), bits(b[i].unused_edge_nodes));
  }
}

/// The three schemes the suite exercises, as (channel, protocol factory)
/// pairs matching make_scheme's canonical pairings.
struct SchemeCase {
  const char* name;
  ChannelConfig channel;
  ProtocolFactory factory;
};

std::vector<SchemeCase> scheme_cases() {
  std::vector<SchemeCase> cases;
  {
    SchemeCase push;
    push.name = "push";
    push.factory = [](const Graph&) { return make_protocol<PushProtocol>(); };
    cases.push_back(std::move(push));
  }
  {
    SchemeCase four;
    four.name = "four-choice";
    four.channel.num_choices = 4;
    four.factory = [](const Graph& g) {
      FourChoiceConfig cfg;
      cfg.n_estimate = g.num_nodes();
      return make_protocol<FourChoiceBroadcast>(cfg);
    };
    cases.push_back(std::move(four));
  }
  {
    SchemeCase seq;
    seq.name = "sequentialised";
    seq.channel.num_choices = 1;
    seq.channel.memory = 3;
    seq.factory = [](const Graph& g) {
      FourChoiceConfig cfg;
      cfg.n_estimate = g.num_nodes();
      return make_protocol<SequentialisedFourChoice>(cfg);
    };
    cases.push_back(std::move(seq));
  }
  return cases;
}

GraphFactory regular_factory(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
}

TrialOutcome run_scheme(const SchemeCase& scheme, RunnerConfig runner) {
  TrialConfig cfg;
  cfg.trials = 9;  // not a multiple of any tested chunk/thread count
  cfg.seed = 0xd373c7;
  cfg.channel = scheme.channel;
  cfg.runner = runner;
  return run_trials(regular_factory(192, 6), scheme.factory, cfg);
}

TEST(RunnerDeterminism, RunTrialsIdenticalForThreadCounts) {
  for (const SchemeCase& scheme : scheme_cases()) {
    SCOPED_TRACE(scheme.name);
    RunnerConfig sequential;
    sequential.threads = 1;
    const TrialOutcome baseline = run_scheme(scheme, sequential);
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      RunnerConfig parallel;
      parallel.threads = threads;
      expect_identical(baseline, run_scheme(scheme, parallel));
    }
  }
}

TEST(RunnerDeterminism, RunTrialsIdenticalForChunkedScheduling) {
  for (const SchemeCase& scheme : scheme_cases()) {
    SCOPED_TRACE(scheme.name);
    RunnerConfig unchunked;
    unchunked.threads = 4;
    unchunked.chunk = 1;
    const TrialOutcome baseline = run_scheme(scheme, unchunked);
    for (const int chunk : {2, 4, 100}) {
      SCOPED_TRACE(chunk);
      RunnerConfig chunked;
      chunked.threads = 4;
      chunked.chunk = chunk;
      expect_identical(baseline, run_scheme(scheme, chunked));
    }
  }
}

TEST(RunnerDeterminism, DefaultChunkMatchesChunkOne) {
  // The bounded default chunk (satellite of the batched-engine PR) must
  // not change any output: chunks are contiguous ascending trial ranges
  // reduced in chunk order, so per-trial samples enter the Summaries in
  // trial order for every chunking. threads = 2 over 9 trials defaults to
  // chunk = 2 — a genuine multi-trial chunk, unlike the old default of 1.
  for (const SchemeCase& scheme : scheme_cases()) {
    SCOPED_TRACE(scheme.name);
    RunnerConfig one;
    one.threads = 2;
    one.chunk = 1;
    const TrialOutcome baseline = run_scheme(scheme, one);
    RunnerConfig defaulted;
    defaulted.threads = 2;
    expect_identical(baseline, run_scheme(scheme, defaulted));
  }
}

std::vector<SetTracePoint> trace_scheme(const SchemeCase& scheme,
                                        RunnerConfig runner) {
  TraceConfig cfg;
  cfg.trials = 5;
  cfg.seed = 0x7ace;
  cfg.channel = scheme.channel;
  cfg.runner = runner;
  cfg.track_edge_usage = true;
  return trace_set_sizes(
      [](Rng& rng) { return random_regular_simple(160, 6, rng); },
      scheme.factory, cfg);
}

TEST(RunnerDeterminism, TraceSetSizesIdenticalForThreadCountsAndChunks) {
  for (const SchemeCase& scheme : scheme_cases()) {
    SCOPED_TRACE(scheme.name);
    RunnerConfig sequential;
    sequential.threads = 1;
    const std::vector<SetTracePoint> baseline =
        trace_scheme(scheme, sequential);
    ASSERT_FALSE(baseline.empty());
    for (const int threads : {2, 8}) {
      SCOPED_TRACE(threads);
      RunnerConfig parallel;
      parallel.threads = threads;
      parallel.chunk = threads == 8 ? 2 : 0;  // also cross chunking in
      expect_identical(baseline, trace_scheme(scheme, parallel));
    }
  }
}

TEST(RunnerDeterminism, RunnerConfigDoesNotLeakIntoSeeding) {
  // A parallel outcome must equal the pre-runner sequential semantics:
  // trial i seeded from (seed, i). Reconstruct trial 3 by hand and compare
  // against the pooled run's slot 3.
  const SchemeCase scheme = scheme_cases()[1];  // four-choice
  RunnerConfig parallel;
  parallel.threads = 8;
  const TrialOutcome pooled = run_scheme(scheme, parallel);

  Rng rng = Rng(0xd373c7).fork(3);
  const Graph graph = random_regular_simple(192, 6, rng);
  auto protocol = scheme.factory(graph);
  GraphTopology topo(graph);
  PhoneCallEngine<GraphTopology> engine(topo, scheme.channel, rng);
  const NodeId source =
      static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
  const RunResult by_hand = engine.run(*protocol, source, RunLimits{});
  expect_identical(pooled.runs[3], by_hand);
}

// ---------------------------------------------------------------------------
// broadcast_trials: the façade-level entry point to the runner.

TEST(BroadcastTrials, RunsTrialsAndCompletes) {
  Rng grng(41);
  const Graph g = random_regular_simple(256, 8, grng);
  BroadcastOptions options;
  options.scheme = BroadcastScheme::kPushPull;
  options.trials = 6;
  const TrialOutcome out = broadcast_trials(g, options);
  EXPECT_EQ(out.runs.size(), 6U);
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
}

TEST(BroadcastTrials, IdenticalAcrossThreadCounts) {
  Rng grng(43);
  const Graph g = random_regular_simple(256, 8, grng);
  BroadcastOptions options;
  options.scheme = BroadcastScheme::kFourChoice;
  options.trials = 7;
  options.runner.threads = 1;
  const TrialOutcome sequential = broadcast_trials(g, options);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(threads);
    options.runner.threads = threads;
    expect_identical(sequential, broadcast_trials(g, options));
  }
}

TEST(BroadcastTrials, FixedSourceIsHonoured) {
  Rng grng(47);
  const Graph g = random_regular_simple(128, 6, grng);
  BroadcastOptions options;
  options.scheme = BroadcastScheme::kPush;
  options.trials = 3;
  const TrialOutcome out = broadcast_trials(g, options, NodeId{5});
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
  EXPECT_THROW((void)broadcast_trials(g, options, NodeId{128}),
               std::logic_error);
}

TEST(BroadcastTrials, RejectsZeroTrials) {
  Rng grng(53);
  const Graph g = random_regular_simple(64, 4, grng);
  BroadcastOptions options;
  options.trials = 0;
  EXPECT_THROW((void)broadcast_trials(g, options), std::logic_error);
}

}  // namespace
}  // namespace rrb
