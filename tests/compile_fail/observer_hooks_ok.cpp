// Positive control for the compile-fail harness: a hook-complete observer
// with the documented read-only signatures. If this file ever fails to
// compile, the observer_mutable_hook_fail "failure" is meaningless (the
// harness would be broken, e.g. missing include paths), so the two tests
// are registered as a pair in tests/CMakeLists.txt.
#include <span>

#include "rrb/metrics/observer.hpp"

namespace {

struct EveryHookObserver {
  [[nodiscard]] const char* name() const { return "every-hook"; }

  void on_run_begin(rrb::NodeId n, std::span<const rrb::NodeId> sources) {
    nodes_ = n;
    sources_seen_ = sources.size();
  }
  void on_round_begin(rrb::Round t) { round_ = t; }
  void on_transmission(const rrb::TransmissionEvent& event) {
    last_round_ = event.t;
  }
  void on_node_informed(rrb::NodeId v, rrb::Round t) {
    last_informed_ = v;
    round_ = t;
  }
  void on_round_end(const rrb::RoundStats& stats,
                    std::span<const rrb::Round> informed_at) {
    informed_ = stats.informed;
    slots_ = informed_at.size();
  }
  void on_run_end(const rrb::RunResult& result,
                  std::span<const rrb::Round> informed_at) {
    rounds_ = result.rounds;
    slots_ = informed_at.size();
  }

  rrb::NodeId nodes_ = 0;
  std::size_t sources_seen_ = 0;
  rrb::Round round_ = 0;
  rrb::Round last_round_ = 0;
  rrb::NodeId last_informed_ = 0;
  rrb::Count informed_ = 0;
  std::size_t slots_ = 0;
  rrb::Round rounds_ = 0;
};

}  // namespace

static_assert(rrb::ObserverHooksReadOnly<EveryHookObserver>);
rrb::ObserverSet<EveryHookObserver> set{EveryHookObserver{}};
