// MUST NOT COMPILE — negative fixture for the observer read-only contract.
//
// The hook below demands mutable access (`RoundStats&` / `std::span<Round>`
// instead of the documented `const RoundStats&` / `std::span<const Round>`).
// Without the ObserverHooksReadOnly static_assert in ObserverSet, the engine
// would simply never detect the hook and skip it silently; with it, this
// translation unit is a hard error. tests/CMakeLists.txt compiles this file
// expecting failure (WILL_FAIL) alongside the positive control
// observer_hooks_ok.cpp, which proves the harness itself compiles.
#include <span>

#include "rrb/metrics/observer.hpp"

namespace {

struct MutableHookObserver {
  [[nodiscard]] const char* name() const { return "mutable-hook"; }

  // Wrong: wants to mutate the round stats and the informed_at table.
  void on_round_end(rrb::RoundStats& stats, std::span<rrb::Round> informed_at) {
    stats.informed = 0;
    informed_at[0] = 0;
  }
};

}  // namespace

// Instantiating ObserverSet fires the read-only static_assert.
rrb::ObserverSet<MutableHookObserver> set{MutableHookObserver{}};
