#include "rrb/sim/trial.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"

namespace rrb {
namespace {

TrialConfig quick_config(int trials = 4) {
  TrialConfig cfg;
  cfg.trials = trials;
  cfg.seed = 99;
  return cfg;
}

GraphFactory regular_factory(NodeId n, NodeId d) {
  return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
}

ProtocolFactory push_factory() {
  return [](const Graph&) { return make_protocol<PushProtocol>(); };
}

TEST(Trials, RunsRequestedNumberOfTrials) {
  const TrialOutcome out =
      run_trials(regular_factory(256, 6), push_factory(), quick_config(5));
  EXPECT_EQ(out.runs.size(), 5U);
  EXPECT_EQ(out.rounds.count, 5U);
}

TEST(Trials, PushAlwaysCompletesSoRateIsOne) {
  const TrialOutcome out =
      run_trials(regular_factory(256, 6), push_factory(), quick_config());
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
  EXPECT_EQ(out.completion_round.count, out.runs.size());
}

TEST(Trials, SummariesAreInternallyConsistent) {
  const TrialOutcome out =
      run_trials(regular_factory(512, 8), push_factory(), quick_config());
  EXPECT_LE(out.rounds.min, out.rounds.mean);
  EXPECT_LE(out.rounds.mean, out.rounds.max);
  EXPECT_GT(out.total_tx.mean, 0.0);
  EXPECT_NEAR(out.tx_per_node.mean, out.total_tx.mean / 512.0, 1e-9);
  EXPECT_NEAR(out.push_tx.mean + out.pull_tx.mean, out.total_tx.mean, 1e-9);
}

TEST(Trials, DeterministicAcrossInvocations) {
  const TrialOutcome a =
      run_trials(regular_factory(128, 4), push_factory(), quick_config());
  const TrialOutcome b =
      run_trials(regular_factory(128, 4), push_factory(), quick_config());
  EXPECT_DOUBLE_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_DOUBLE_EQ(a.total_tx.mean, b.total_tx.mean);
}

TEST(Trials, SeedChangesOutcome) {
  TrialConfig c1 = quick_config();
  TrialConfig c2 = quick_config();
  c2.seed = 12345;
  const TrialOutcome a =
      run_trials(regular_factory(128, 4), push_factory(), c1);
  const TrialOutcome b =
      run_trials(regular_factory(128, 4), push_factory(), c2);
  EXPECT_NE(a.total_tx.mean, b.total_tx.mean);
}

TEST(Trials, ChannelConfigIsForwarded) {
  TrialConfig cfg = quick_config();
  cfg.channel.num_choices = 4;
  cfg.limits.max_rounds = 3;  // too few rounds to finish
  const TrialOutcome out =
      run_trials(regular_factory(512, 8), push_factory(), cfg);
  EXPECT_LT(out.completion_rate, 1.0);
  // 4 choices * 512 nodes * 3 rounds of channels.
  for (const RunResult& r : out.runs)
    EXPECT_EQ(r.channels_opened, 4U * 512U * 3U);
}

TEST(Trials, FourChoiceProtocolFactoryWorks) {
  TrialConfig cfg = quick_config(3);
  cfg.channel.num_choices = 4;
  const TrialOutcome out = run_trials(
      regular_factory(1024, 8),
      [](const Graph& g) {
        FourChoiceConfig fc;
        fc.n_estimate = g.num_nodes();
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
}

TEST(Trials, FixedSourceOptionUsesNodeZero) {
  TrialConfig cfg = quick_config(2);
  cfg.random_source = false;
  const TrialOutcome out =
      run_trials(regular_factory(128, 4), push_factory(), cfg);
  EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
}

TEST(Trials, RejectsZeroTrials) {
  TrialConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(
      (void)run_trials(regular_factory(64, 4), push_factory(), cfg),
      std::logic_error);
}

TEST(Summaries, SummarizeBasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
  EXPECT_EQ(s.count, 4U);
}

TEST(Summaries, OddMedianAndSingleton) {
  EXPECT_DOUBLE_EQ(summarize({3.0, 1.0, 2.0}).median, 2.0);
  const Summary one = summarize({7.0});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
}

TEST(Summaries, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0U);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summaries, AccumulatorMergeIsAssociative) {
  // merge() is how per-worker accumulators combine; associativity (plus
  // merging in chunk order) is what makes the parallel reduction
  // deterministic. Values chosen so any reordering or double-count would
  // change the sequence.
  SummaryAccumulator a;
  a.add(1.0);
  a.add(2.0);
  SummaryAccumulator b;
  b.add(3.0);
  SummaryAccumulator c;
  c.add(4.0);
  c.add(5.0);

  SummaryAccumulator left_first = a;   // (a ⊕ b) ⊕ c
  left_first.merge(b);
  left_first.merge(c);

  SummaryAccumulator right_first = a;  // a ⊕ (b ⊕ c)
  SummaryAccumulator bc = b;
  bc.merge(c);
  right_first.merge(bc);

  const std::vector<double> expected{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(left_first.values(), expected);
  EXPECT_EQ(right_first.values(), expected);
  EXPECT_DOUBLE_EQ(left_first.finish().mean, right_first.finish().mean);
  EXPECT_DOUBLE_EQ(left_first.finish().median, 3.0);
}

TEST(Summaries, AccumulatorMergeWithEmptySides) {
  SummaryAccumulator empty;
  SummaryAccumulator filled;
  filled.add(7.0);
  SummaryAccumulator left = empty;
  left.merge(filled);
  EXPECT_EQ(left.values(), std::vector<double>{7.0});
  SummaryAccumulator right = filled;
  right.merge(empty);
  EXPECT_EQ(right.values(), std::vector<double>{7.0});
}

TEST(Trials, RunnerConfigPropagatesWithoutChangingResults) {
  TrialConfig sequential = quick_config(6);
  sequential.runner.threads = 1;
  TrialConfig pooled = quick_config(6);
  pooled.runner.threads = 4;
  pooled.runner.chunk = 2;
  const TrialOutcome a =
      run_trials(regular_factory(128, 4), push_factory(), sequential);
  const TrialOutcome b =
      run_trials(regular_factory(128, 4), push_factory(), pooled);
  EXPECT_DOUBLE_EQ(a.rounds.mean, b.rounds.mean);
  EXPECT_DOUBLE_EQ(a.total_tx.mean, b.total_tx.mean);
  EXPECT_DOUBLE_EQ(a.tx_per_node.stddev, b.tx_per_node.stddev);
}

}  // namespace
}  // namespace rrb
