/// Parameterised property suite for the replicated database: convergence,
/// agreement, and cost invariants across an (n, d, batch) grid.

#include <gtest/gtest.h>

#include <string>

#include "rrb/graph/generators.hpp"
#include "rrb/p2p/replicated_db.hpp"

namespace rrb {
namespace {

struct DbGridParam {
  int n;
  int d;
  int batch;
};

class DbGrid : public ::testing::TestWithParam<DbGridParam> {};

TEST_P(DbGrid, AllUpdatesConvergeAndAgree) {
  const auto param = GetParam();
  Rng grng(static_cast<std::uint64_t>(param.n * 31 + param.d * 7 +
                                      param.batch));
  const Graph g = random_regular_simple(static_cast<NodeId>(param.n),
                                        static_cast<NodeId>(param.d), grng);
  ReplicatedDbConfig cfg;
  cfg.seed = derive_seed(0xdb, static_cast<std::uint64_t>(param.batch));
  ReplicatedDb db(g, cfg);

  for (int i = 0; i < param.batch; ++i)
    db.put(static_cast<NodeId>((i * 131) % param.n),
           "key" + std::to_string(i), "value" + std::to_string(i));

  ASSERT_TRUE(db.run_to_convergence(800));

  // Agreement: every replica returns the same value for every key.
  for (int i = 0; i < param.batch; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::string* expected = db.get(0, key);
    ASSERT_NE(expected, nullptr);
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      const std::string* got = db.get(v, key);
      ASSERT_NE(got, nullptr) << key << " missing at " << v;
      EXPECT_EQ(*got, *expected);
    }
  }
}

TEST_P(DbGrid, CostInvariants) {
  const auto param = GetParam();
  Rng grng(static_cast<std::uint64_t>(param.n * 17 + param.d + param.batch));
  const Graph g = random_regular_simple(static_cast<NodeId>(param.n),
                                        static_cast<NodeId>(param.d), grng);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  for (int i = 0; i < param.batch; ++i)
    db.put(static_cast<NodeId>((i * 37) % param.n),
           "k" + std::to_string(i), "v");
  ASSERT_TRUE(db.run_to_convergence(800));

  // Each update reaches n replicas, so entry transmissions are at least
  // batch * (n - 1) (every non-origin replica received >= 1 copy), and
  // channel messages never exceed entry transmissions.
  const auto n = static_cast<Count>(param.n);
  EXPECT_GE(db.entry_transmissions(),
            static_cast<Count>(param.batch) * (n - 1));
  EXPECT_LE(db.channel_messages(), db.entry_transmissions());
  // Combining: with more than one update in flight, strictly fewer channel
  // messages than entries.
  if (param.batch > 1) {
    EXPECT_LT(db.channel_messages(), db.entry_transmissions());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DbGrid,
    ::testing::Values(DbGridParam{128, 6, 1}, DbGridParam{128, 6, 8},
                      DbGridParam{256, 8, 4}, DbGridParam{256, 8, 32},
                      DbGridParam{512, 10, 16}, DbGridParam{1024, 8, 2}));

/// Interleaved write/step schedules keep last-writer-wins deterministic.
class DbInterleavingGrid : public ::testing::TestWithParam<int> {};

TEST_P(DbInterleavingGrid, RepeatedOverwritesEndAtLastValue) {
  const int rewrites = GetParam();
  Rng grng(0x1db);
  const Graph g = random_regular_simple(256, 8, grng);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  for (int i = 0; i < rewrites; ++i) {
    db.put(static_cast<NodeId>((i * 97) % 256), "hot",
           "v" + std::to_string(i));
    db.step();
    db.step();
    db.step();
  }
  ASSERT_TRUE(db.run_to_convergence(800));
  const std::string expected = "v" + std::to_string(rewrites - 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::string* got = db.get(v, "hot");
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, expected) << "replica " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DbInterleavingGrid,
                         ::testing::Values(2, 5, 9));

}  // namespace
}  // namespace rrb
