/// Telemetry suite: the API half (spans, counters, RSS, the jsonl shuttle
/// format and the Chrome trace exporter) and the contract half — telemetry
/// is a side channel, so enabling it must leave every deterministic output
/// bit-identical: cell records across all eight schemes x threads {1,4} x
/// batch {1,32}, observer streams, and campaign artifact bytes. Together
/// with the telemetry-side-channel lint rule this pins the ROADMAP
/// telemetry invariant from both directions (can't perturb, can't leak).

#include "rrb/telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/exp/artifact.hpp"
#include "rrb/exp/campaign.hpp"
#include "rrb/exp/spec.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/metrics/observers.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/trial.hpp"

namespace rrb {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process-wide switch off and the buffers empty, so
/// suites sharing this binary never see each other's events.
struct TelemetryGuard {
  TelemetryGuard() { telemetry::drain(); }
  ~TelemetryGuard() {
    telemetry::enable(false);
    telemetry::drain();
    telemetry::set_process_id(0);
  }
};

std::string temp_path(const std::string& tag) {
  const std::string path = testing::TempDir() + "rrb_telemetry_" + tag;
  fs::remove_all(path);
  return path;
}

const telemetry::Event* find_event(const std::vector<telemetry::Event>& events,
                                   char phase, std::string_view name) {
  for (const telemetry::Event& event : events)
    if (event.phase == phase && event.name == name) return &event;
  return nullptr;
}

// ---- API -------------------------------------------------------------------

TEST(TelemetryApi, DisabledByDefaultRecordsNothing) {
  TelemetryGuard guard;
  ASSERT_TRUE(telemetry::kCompiledIn);
  EXPECT_FALSE(telemetry::enabled());
  {
    telemetry::Span span("test", "ignored");
    EXPECT_FALSE(span.active());
  }
  telemetry::instant("test", "ignored");
  telemetry::count("ignored", 7);
  EXPECT_TRUE(telemetry::drain().empty());
}

TEST(TelemetryApi, SpanInstantCounterDrain) {
  TelemetryGuard guard;
  telemetry::enable();
  {
    telemetry::Span span("cat", "work", "{\"k\":1}");
    EXPECT_TRUE(span.active());
  }
  telemetry::instant("cat", "tick", "{\"w\":3}");
  telemetry::count("widgets", 3);
  telemetry::count("widgets", 2);
  telemetry::enable(false);
  const std::vector<telemetry::Event> events = telemetry::drain();

  const telemetry::Event* span = find_event(events, 'X', "work");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->category, "cat");
  EXPECT_GE(span->dur_us, 0);
  EXPECT_EQ(span->args_json, "{\"k\":1}");

  const telemetry::Event* tick = find_event(events, 'i', "tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->args_json, "{\"w\":3}");
  EXPECT_GE(tick->ts_us, span->ts_us);

  const telemetry::Event* counter = find_event(events, 'C', "widgets");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->args_json, "{\"value\":5}");

  // drain() moved everything out; a second drain is empty.
  EXPECT_TRUE(telemetry::drain().empty());
}

TEST(TelemetryApi, MonotonicClockAndRss) {
  const std::int64_t a = telemetry::now_us();
  const std::int64_t b = telemetry::now_us();
  EXPECT_LE(a, b);
  // Linux (/proc/self/status) is the only supported platform in CI; both
  // fields are present there and a running process has nonzero RSS.
  EXPECT_GT(telemetry::peak_rss_bytes(), 0U);
  EXPECT_GT(telemetry::current_rss_bytes(), 0U);
  EXPECT_GE(telemetry::peak_rss_bytes(), telemetry::current_rss_bytes());
}

TEST(TelemetryApi, EventsJsonlRoundTrip) {
  TelemetryGuard guard;
  const std::string path = temp_path("roundtrip.jsonl");
  telemetry::enable();
  telemetry::set_process_id(7);
  telemetry::set_process_label("worker w7");
  {
    telemetry::Span span("engine", "run \"quoted\"\n", "{\"n\":256}");
  }
  telemetry::count("cells", 2);
  telemetry::enable(false);
  ASSERT_GT(telemetry::append_events_jsonl(path), 0);

  const std::vector<telemetry::Event> loaded =
      telemetry::load_events_jsonl(path);
  const telemetry::Event* span = find_event(loaded, 'X', "run \"quoted\"\n");
  ASSERT_NE(span, nullptr);  // escapes survived the round trip
  EXPECT_EQ(span->category, "engine");
  EXPECT_EQ(span->pid, 7);
  EXPECT_EQ(span->args_json, "{\"n\":256}");
  const telemetry::Event* meta = find_event(loaded, 'M', "process_name");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->args_json, "{\"name\":\"worker w7\"}");
  const telemetry::Event* counter = find_event(loaded, 'C', "cells");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->args_json, "{\"value\":2}");

  // A truncated tail (SIGKILLed worker mid-write) is skipped, not fatal.
  const std::size_t before = loaded.size();
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"ph\":\"X\",\"cat\":\"engine\",\"na";
  }
  EXPECT_EQ(telemetry::load_events_jsonl(path).size(), before);
}

TEST(TelemetryApi, ChromeTraceShape) {
  std::vector<telemetry::Event> events;
  telemetry::Event meta;
  meta.phase = 'M';
  meta.name = "process_name";
  meta.category = "__metadata";
  meta.ts_us = 9999;  // metadata never participates in rebasing
  meta.args_json = "{\"name\":\"driver\"}";
  telemetry::Event late;
  late.name = "late";
  late.ts_us = 1500;
  late.dur_us = 10;
  telemetry::Event early;
  early.name = "early";
  early.ts_us = 1000;
  early.dur_us = 20;
  events = {late, meta, early};  // deliberately unsorted

  std::ostringstream out;
  telemetry::write_chrome_trace(out, events);
  const std::string trace = out.str();

  EXPECT_TRUE(trace.starts_with("{\"traceEvents\":["));
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata sorts first, then timestamp order.
  const std::size_t meta_at = trace.find("process_name");
  const std::size_t early_at = trace.find("\"early\"");
  const std::size_t late_at = trace.find("\"late\"");
  ASSERT_NE(meta_at, std::string::npos);
  ASSERT_NE(early_at, std::string::npos);
  ASSERT_NE(late_at, std::string::npos);
  EXPECT_LT(meta_at, early_at);
  EXPECT_LT(early_at, late_at);
  // Rebased to the earliest non-metadata event: early at ts 0, late at 500.
  EXPECT_NE(trace.find("\"name\":\"early\",\"ts\":0,"), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"late\",\"ts\":500,"), std::string::npos);
}

// ---- Bit-identity: telemetry never perturbs deterministic outputs ----------

/// All eight schemes over one small regular graph; cell records digest the
/// whole run (rounds, tx, coverage, observer-derived fields), so one string
/// compare per cell pins the full output surface.
exp::CampaignSpec all_schemes_spec() {
  exp::CampaignSpec spec;
  spec.name = "telemetry-identity";
  spec.seed = 0x7e1e;
  spec.trials = 5;
  spec.schemes = {kAllSchemes.begin(), kAllSchemes.end()};
  spec.n_values = {64};
  spec.d_values = {6};
  return spec;
}

TEST(TelemetryBitIdentity, CellRecordsUnchangedForAllSchemesThreadsBatches) {
  TelemetryGuard guard;
  const exp::CampaignSpec spec = all_schemes_spec();
  const auto cells = exp::expand_cells(spec);
  ASSERT_EQ(cells.size(), kAllSchemes.size());

  std::vector<std::string> baseline;
  for (const exp::CampaignCell& cell : cells) {
    RunnerConfig sequential;
    sequential.threads = 1;
    sequential.batch = 0;
    baseline.push_back(
        exp::CampaignRunner::run_cell(spec, cell, sequential).to_line());
  }

  telemetry::enable();
  for (const int threads : {1, 4}) {
    for (const int batch : {1, 32}) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(cells[i].key + " threads=" + std::to_string(threads) +
                     " batch=" + std::to_string(batch));
        RunnerConfig runner;
        runner.threads = threads;
        runner.batch = batch;
        EXPECT_EQ(exp::CampaignRunner::run_cell(spec, cells[i], runner)
                      .to_line(),
                  baseline[i]);
      }
    }
  }
  // The runs really were instrumented — spans from the engine, the batched
  // kernels and the campaign cells all landed in the buffers.
  const std::vector<telemetry::Event> events = telemetry::drain();
  EXPECT_NE(find_event(events, 'X', "run"), nullptr);
  EXPECT_NE(find_event(events, 'X', cells[0].key), nullptr);
}

using FreeStack = ObserverSet<RunSummaryObserver, SetSizeObserver,
                              TxHistogramObserver, InformedLatencyObserver>;

TEST(TelemetryBitIdentity, ObserverStreamsUnchanged) {
  TelemetryGuard guard;
  Rng grng(0x7e1e02);
  const Graph g = random_regular_simple(128, 6, grng);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  opt.seed = 0x7e1e03;
  opt.trials = 9;
  const ObservedOutcome<FreeStack> plain =
      broadcast_trials(g, opt, [](const Graph&) { return FreeStack{}; });

  telemetry::enable();
  BroadcastOptions instrumented = opt;
  instrumented.runner.threads = 4;
  instrumented.runner.batch = 4;
  const ObservedOutcome<FreeStack> traced = broadcast_trials(
      g, instrumented, [](const Graph&) { return FreeStack{}; });
  telemetry::enable(false);

  ASSERT_EQ(traced.observers.size(), plain.observers.size());
  for (std::size_t i = 0; i < traced.observers.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    const FreeStack& got = traced.observers[i];
    const FreeStack& want = plain.observers[i];
    const RunResult& a = got.get<RunSummaryObserver>().result();
    const RunResult& b = want.get<RunSummaryObserver>().result();
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.push_tx, b.push_tx);
    EXPECT_EQ(a.pull_tx, b.pull_tx);
    EXPECT_EQ(a.final_informed, b.final_informed);
    const auto& got_points = got.get<SetSizeObserver>().points();
    const auto& want_points = want.get<SetSizeObserver>().points();
    ASSERT_EQ(got_points.size(), want_points.size());
    for (std::size_t p = 0; p < got_points.size(); ++p) {
      EXPECT_EQ(got_points[p].t, want_points[p].t);
      EXPECT_EQ(got_points[p].informed, want_points[p].informed);
    }
    EXPECT_EQ(got.get<TxHistogramObserver>().sends(),
              want.get<TxHistogramObserver>().sends());
    EXPECT_EQ(got.get<InformedLatencyObserver>().latencies(),
              want.get<InformedLatencyObserver>().latencies());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(TelemetryBitIdentity, CampaignArtifactsByteIdenticalAndTimingExcluded) {
  TelemetryGuard guard;
  exp::CampaignSpec spec = all_schemes_spec();
  spec.schemes = {BroadcastScheme::kPush, BroadcastScheme::kMedianCounter};

  const auto run_campaign = [&spec](const std::string& dir) {
    exp::CampaignConfig config;
    config.runner.threads = 2;
    config.out_dir = dir;
    return exp::CampaignRunner(spec, config).run();
  };
  const exp::CampaignOutcome plain = run_campaign(temp_path("plain"));
  telemetry::enable();
  const exp::CampaignOutcome traced = run_campaign(temp_path("traced"));
  telemetry::enable(false);
  telemetry::drain();

  // Every deterministic artifact is byte-identical with telemetry on.
  EXPECT_EQ(read_file(traced.results_json_path),
            read_file(plain.results_json_path));
  EXPECT_EQ(read_file(traced.results_csv_path),
            read_file(plain.results_csv_path));
  EXPECT_EQ(read_file(traced.meta_path), read_file(plain.meta_path));
  EXPECT_EQ(read_file(traced.manifest_path), read_file(plain.manifest_path));

  // timing.jsonl is the sanctioned sink: per-cell schema with the wall time
  // and RSS — and none of its keys appear in the deterministic records.
  std::istringstream timing(read_file(traced.timing_path));
  std::string line;
  std::size_t timing_lines = 0;
  while (std::getline(timing, line)) {
    ++timing_lines;
    const auto parsed = exp::parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE(parsed->find_plain("key").has_value());
    EXPECT_TRUE(parsed->find_number("wall_ms").has_value());
    EXPECT_TRUE(parsed->find_number("trials").has_value());
    EXPECT_TRUE(parsed->find_number("trials_per_s").has_value());
    const auto rss = parsed->find_number("peak_rss_bytes");
    ASSERT_TRUE(rss.has_value());
    EXPECT_GT(*rss, 0.0);
  }
  EXPECT_EQ(timing_lines, exp::expand_cells(spec).size());
  for (const std::string_view key :
       {"wall_ms", "trials_per_s", "peak_rss_bytes"}) {
    EXPECT_EQ(read_file(traced.results_json_path).find(key),
              std::string::npos)
        << key << " leaked into a deterministic artifact";
  }
}

}  // namespace
}  // namespace rrb
