#include "rrb/exp/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "rrb/exp/spec.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/trial.hpp"

/// Campaign subsystem tests: spec parsing/expansion, the cell-key/seed
/// contract (golden-pinned like tests/test_rng.cpp), and the artifact
/// determinism guarantees — byte-identical files for every thread count,
/// across interrupt-and-resume, and across shard splits.

namespace rrb::exp {
namespace {

namespace fs = std::filesystem;

/// The tiny grid most tests run: 2 schemes x 1 n x 1 d x 2 churn = 4 cells
/// (two static, two on the churn overlay), 3 trials each.
CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.seed = 0x7e57;
  spec.trials = 3;
  spec.schemes = {BroadcastScheme::kPush, BroadcastScheme::kFourChoice};
  spec.n_values = {64};
  spec.d_values = {6};
  spec.churn_rates = {0.0, 2.0};
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

std::vector<std::string> sorted_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// Fresh artifact directory under the gtest temp root.
std::string temp_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "rrb_campaign_" + tag;
  fs::remove_all(dir);
  return dir;
}

// ---- Spec parsing ----------------------------------------------------------

TEST(CampaignSpecParse, ParsesKeysListsCommentsAndShorthands) {
  std::istringstream in(
      "# a comment\n"
      "name = demo   # trailing comment\n"
      "seed = 0xbeef\n"
      "trials = 7\n"
      "source = fixed\n"
      "graph = gnp\n"
      "scheme = push, median, four-choice/sequentialised\n"
      "n = 2^10, 2048\n"
      "d = 8\n"
      "\n"
      "alpha = 1.5, 2\n"
      "failure = 0.0, 0.1\n"
      "churn = 0\n");
  const CampaignSpec spec = parse_spec(in);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.seed, 0xbeefU);
  EXPECT_EQ(spec.trials, 7);
  EXPECT_FALSE(spec.random_source);
  EXPECT_EQ(spec.graph, GraphFamily::kGnp);
  ASSERT_EQ(spec.schemes.size(), 3U);
  EXPECT_EQ(spec.schemes[0], BroadcastScheme::kPush);
  EXPECT_EQ(spec.schemes[1], BroadcastScheme::kMedianCounter);  // alias
  EXPECT_EQ(spec.schemes[2], BroadcastScheme::kSequentialised);
  EXPECT_EQ(spec.n_values, (std::vector<NodeId>{1024, 2048}));
  EXPECT_EQ(spec.alphas, (std::vector<double>{1.5, 2.0}));
  EXPECT_EQ(spec.failures, (std::vector<double>{0.0, 0.1}));
}

TEST(CampaignSpecParse, RejectsBadInputWithLineNumbers) {
  auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_spec(in);
  };
  EXPECT_THROW((void)parse("bogus_key = 1\n"), std::runtime_error);
  EXPECT_THROW((void)parse("scheme = warp-speed\n"), std::runtime_error);
  EXPECT_THROW((void)parse("n = 1\n"), std::runtime_error);   // n >= 2
  EXPECT_THROW((void)parse("trials = 0\n"), std::runtime_error);
  EXPECT_THROW((void)parse("no equals sign\n"), std::runtime_error);
  EXPECT_THROW((void)parse("n = 2^70\n"), std::runtime_error);
  try {
    (void)parse("trials = 3\nbad = 1\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignSpecParse, ParseSchemeCoversTheWholeTable) {
  for (const BroadcastScheme scheme : kAllSchemes)
    EXPECT_EQ(parse_scheme(scheme_name(scheme)), scheme);
  EXPECT_FALSE(parse_scheme("warp-speed").has_value());
}

// ---- Expansion, keys, seeds ------------------------------------------------

TEST(CampaignExpand, OrderIsSchemeMajorThenAxes) {
  const CampaignSpec spec = tiny_spec();
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 4U);
  EXPECT_EQ(cells[0].scheme, BroadcastScheme::kPush);
  EXPECT_EQ(cells[0].churn, 0.0);
  EXPECT_EQ(cells[1].scheme, BroadcastScheme::kPush);
  EXPECT_EQ(cells[1].churn, 2.0);
  EXPECT_EQ(cells[2].scheme, BroadcastScheme::kFourChoice);
  EXPECT_EQ(cells[3].scheme, BroadcastScheme::kFourChoice);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].overlay, cells[i].churn > 0.0);
  }
}

TEST(CampaignExpand, CellKeysAreCanonicalGoldenStrings) {
  CampaignSpec spec;
  spec.seed = 0x5110ce;
  spec.schemes = {BroadcastScheme::kPush};
  spec.n_values = {256};
  spec.d_values = {8};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 1U);
  EXPECT_EQ(cells[0].key,
            "scheme=push;qr=0;graph=regular;n=256;d=8;alpha=1.5;"
            "failure=0;churn=0");

  CampaignSpec overlay_spec;
  overlay_spec.seed = 0xed;
  overlay_spec.overlay = true;
  overlay_spec.churn_rates = {0.0, 4.0};
  const auto overlay_cells = expand_cells(overlay_spec);
  ASSERT_EQ(overlay_cells.size(), 2U);
  EXPECT_EQ(overlay_cells[0].key,
            "scheme=four-choice;qr=0;graph=regular;n=1024;d=8;alpha=1.5;"
            "failure=0;churn=0;overlay=1;switches=2;headroom=0.5");
  EXPECT_EQ(overlay_cells[1].key,
            "scheme=four-choice;qr=0;graph=regular;n=1024;d=8;alpha=1.5;"
            "failure=0;churn=4;overlay=1;switches=2;headroom=0.5");
}

// Golden cell seeds, pinned the way tests/test_rng.cpp pins derive_seed:
// recorded campaigns depend on these values never changing.
TEST(CampaignExpand, CellSeedsAreGoldenPinned) {
  EXPECT_EQ(cell_seed(0x5110ce,
                      "scheme=push;qr=0;graph=regular;n=256;d=8;alpha=1.5;"
                      "failure=0;churn=0"),
            0xfd5e63c200d95515ULL);
  EXPECT_EQ(cell_seed(1, "a"), 0x9d8ad65aa99afc63ULL);

  CampaignSpec overlay_spec;
  overlay_spec.seed = 0xed;
  overlay_spec.overlay = true;
  overlay_spec.churn_rates = {0.0, 4.0};
  const auto cells = expand_cells(overlay_spec);
  ASSERT_EQ(cells.size(), 2U);
  EXPECT_EQ(cells[0].seed, 0x9af00df3521e90f1ULL);
  EXPECT_EQ(cells[1].seed, 0xd4b6e5d6737db493ULL);
}

TEST(CampaignExpand, SeedDependsOnlyOnCampaignSeedAndKey) {
  // Growing the grid around a cell must not move its seed.
  CampaignSpec small = tiny_spec();
  CampaignSpec big = tiny_spec();
  big.n_values = {64, 128};
  big.schemes.push_back(BroadcastScheme::kPull);
  const auto small_cells = expand_cells(small);
  const auto big_cells = expand_cells(big);
  for (const CampaignCell& cell : small_cells) {
    bool found = false;
    for (const CampaignCell& other : big_cells)
      if (other.key == cell.key) {
        EXPECT_EQ(other.seed, cell.seed);
        found = true;
      }
    EXPECT_TRUE(found) << cell.key;
  }
}

TEST(CampaignExpand, RejectsInvalidCombinations) {
  CampaignSpec churn_on_gnp = tiny_spec();
  churn_on_gnp.graph = GraphFamily::kGnp;
  EXPECT_THROW((void)expand_cells(churn_on_gnp), std::runtime_error);

  CampaignSpec odd_hypercube;
  odd_hypercube.graph = GraphFamily::kHypercube;
  odd_hypercube.n_values = {24};
  EXPECT_THROW((void)expand_cells(odd_hypercube), std::runtime_error);

  CampaignSpec no_axis = tiny_spec();
  no_axis.schemes.clear();
  EXPECT_THROW((void)expand_cells(no_axis), std::runtime_error);

  // NaN axis values must fail validation, not run as a bogus grid point.
  CampaignSpec nan_failure = tiny_spec();
  nan_failure.failures = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)expand_cells(nan_failure), std::runtime_error);
  CampaignSpec nan_churn = tiny_spec();
  nan_churn.churn_rates = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW((void)expand_cells(nan_churn), std::runtime_error);

  // Quasirandom crossed with the sequentialised scheme's memory window is
  // rejected at expansion, not mid-campaign at engine construction.
  CampaignSpec qr_seq = tiny_spec();
  qr_seq.schemes = {BroadcastScheme::kSequentialised};
  qr_seq.quasirandom = {false, true};
  EXPECT_THROW((void)expand_cells(qr_seq), std::runtime_error);
}

TEST(CampaignExpand, FamiliesThatDeriveDegreeNormaliseTheDAxis) {
  // hypercube/complete ignore d: a multi-valued d axis would duplicate
  // identical experiments under different seeds, so it is rejected, and
  // the single allowed value is normalised to the derived degree so cell
  // keys are honest about the topology.
  CampaignSpec spec;
  spec.graph = GraphFamily::kHypercube;
  spec.n_values = {256};
  spec.d_values = {8, 12};
  EXPECT_THROW((void)expand_cells(spec), std::runtime_error);

  spec.d_values = {3};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 1U);
  EXPECT_EQ(cells[0].d, 8U);  // dim of the 256-node hypercube

  CampaignSpec complete_spec;
  complete_spec.graph = GraphFamily::kComplete;
  complete_spec.n_values = {32};
  const auto complete_cells = expand_cells(complete_spec);
  ASSERT_EQ(complete_cells.size(), 1U);
  EXPECT_EQ(complete_cells[0].d, 31U);
}

// ---- bigtopo-era axes: chunked family, degree rules, memory axis -----------

TEST(CampaignExpand, ChunkedAndProductFamiliesRoundTrip) {
  EXPECT_EQ(parse_graph_family("chunked"), GraphFamily::kChunked);
  EXPECT_EQ(parse_graph_family("regular-x-k5"), GraphFamily::kProductK5);
  EXPECT_STREQ(graph_family_name(GraphFamily::kChunked), "chunked");
  EXPECT_STREQ(graph_family_name(GraphFamily::kProductK5), "regular-x-k5");

  std::istringstream in(
      "name = big\n"
      "graph = chunked\n"
      "scheme = push\n"
      "n = 2^20\n"
      "d = 3, log2n, sqrtn\n"
      "chunks = 7\n");
  const CampaignSpec spec = parse_spec(in);
  EXPECT_EQ(spec.graph, GraphFamily::kChunked);
  EXPECT_EQ(spec.chunks, 7);
  ASSERT_EQ(spec.d_rules.size(), 3U);
  EXPECT_EQ(spec.d_rules[0], (DegreeSpec{DegreeRule::kLiteral, 3}));
  EXPECT_EQ(spec.d_rules[1], (DegreeSpec{DegreeRule::kLog2N, 0}));
  EXPECT_EQ(spec.d_rules[2], (DegreeSpec{DegreeRule::kSqrtN, 0}));

  // describe() spells the rules back, so the round-trip is byte-stable —
  // but deliberately omits `chunks` (scheduling, never semantics).
  const std::string described = describe(spec);
  EXPECT_NE(described.find("d = 3, log2n, sqrtn"), std::string::npos);
  EXPECT_EQ(described.find("chunks"), std::string::npos);
  std::istringstream again(described);
  EXPECT_EQ(spec_fingerprint(parse_spec(again)), spec_fingerprint(spec));
}

TEST(CampaignExpand, ChunksNeverMoveTheFingerprintOrKeys) {
  CampaignSpec a = tiny_spec();
  CampaignSpec b = tiny_spec();
  b.chunks = 64;
  EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(b));
  const auto cells_a = expand_cells(a);
  const auto cells_b = expand_cells(b);
  ASSERT_EQ(cells_a.size(), cells_b.size());
  for (std::size_t i = 0; i < cells_a.size(); ++i) {
    EXPECT_EQ(cells_a[i].key, cells_b[i].key);
    EXPECT_EQ(cells_a[i].seed, cells_b[i].seed);
  }
}

TEST(CampaignExpand, DegreeRulesResolvePerN) {
  CampaignSpec spec;
  spec.graph = GraphFamily::kChunked;
  spec.schemes = {BroadcastScheme::kPush};
  spec.n_values = {1 << 16};
  spec.d_rules = {{DegreeRule::kLiteral, 3},
                  {DegreeRule::kLog2N, 0},
                  {DegreeRule::kTwoLog2N, 0},
                  {DegreeRule::kSqrtN, 0}};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 4U);
  EXPECT_EQ(cells[0].d, 3U);
  EXPECT_EQ(cells[1].d, 16U);   // ceil(log2 2^16)
  EXPECT_EQ(cells[2].d, 32U);
  EXPECT_EQ(cells[3].d, 256U);  // floor(sqrt 2^16)
  // The key carries the resolved degree, not the rule spelling.
  EXPECT_NE(cells[3].key.find(";n=65536;d=256;"), std::string::npos)
      << cells[3].key;

  // Two rules colliding at some n would put two cells under one key.
  CampaignSpec dup = spec;
  dup.n_values = {16};  // log2n and sqrtn both resolve to 4
  dup.d_rules = {{DegreeRule::kLog2N, 0}, {DegreeRule::kSqrtN, 0}};
  EXPECT_THROW((void)expand_cells(dup), std::runtime_error);
}

TEST(CampaignExpand, MemoryAxisExtendsKeysOnlyWhenPresent) {
  CampaignSpec spec = tiny_spec();
  spec.churn_rates = {0.0};
  spec.schemes = {BroadcastScheme::kSequentialised};
  spec.memory_values = {3, 0};
  const auto cells = expand_cells(spec);
  ASSERT_EQ(cells.size(), 2U);
  EXPECT_NE(cells[0].key.find(";memory=3"), std::string::npos)
      << cells[0].key;
  EXPECT_NE(cells[1].key.find(";memory=0"), std::string::npos)
      << cells[1].key;
  EXPECT_EQ(cells[0].memory, 3);
  EXPECT_EQ(cells[1].memory, 0);

  // The default axis {-1} keeps pre-memory-axis keys and describe() bytes,
  // so recorded campaigns keep their fingerprints.
  const auto plain = expand_cells(tiny_spec());
  for (const CampaignCell& cell : plain)
    EXPECT_EQ(cell.key.find("memory"), std::string::npos) << cell.key;
  EXPECT_EQ(describe(tiny_spec()).find("memory"), std::string::npos);

  // A non-default axis describes as spelled tokens and parses back.
  CampaignSpec mixed = tiny_spec();
  mixed.memory_values = {-1, 3};
  const std::string described = describe(mixed);
  EXPECT_NE(described.find("memory = default, 3"), std::string::npos)
      << described;
  std::istringstream in(described);
  EXPECT_EQ(parse_spec(in).memory_values, (std::vector<int>{-1, 3}));
}

TEST(CampaignExpand, NewFamiliesValidateTheirConstraints) {
  CampaignSpec odd_chunked;
  odd_chunked.graph = GraphFamily::kChunked;
  odd_chunked.n_values = {15};
  odd_chunked.d_values = {3};  // n*d odd: no stub pairing exists
  EXPECT_THROW((void)expand_cells(odd_chunked), std::runtime_error);

  CampaignSpec not_div5;
  not_div5.graph = GraphFamily::kProductK5;
  not_div5.n_values = {64};
  not_div5.d_values = {10};
  EXPECT_THROW((void)expand_cells(not_div5), std::runtime_error);

  CampaignSpec small_d;
  small_d.graph = GraphFamily::kProductK5;
  small_d.n_values = {40};
  small_d.d_values = {4};  // K_5 fibre alone contributes degree 4
  EXPECT_THROW((void)expand_cells(small_d), std::runtime_error);

  CampaignSpec ok;
  ok.graph = GraphFamily::kProductK5;
  ok.n_values = {40960};
  ok.d_values = {10};
  EXPECT_EQ(expand_cells(ok).size(), 1U);
}

// ---- run_cell: the execution paths are the library's own -------------------

TEST(CampaignRunCell, StaticCellMatchesDirectRunTrials) {
  const CampaignSpec spec = tiny_spec();
  const auto cells = expand_cells(spec);
  const CampaignCell& cell = cells[0];  // push, churn 0
  const JsonObject record = CampaignRunner::run_cell(spec, cell, {});

  BroadcastOptions options;
  options.scheme = BroadcastScheme::kPush;
  options.n_estimate = cell.n;
  TrialConfig config;
  config.trials = spec.trials;
  config.seed = cell.seed;
  const TrialOutcome direct = run_trials(
      [&cell](Rng& rng) {
        return random_regular_simple(cell.n, cell.d, rng);
      },
      [&options](const Graph& graph) {
        return make_scheme(graph, options).protocol;
      },
      config);

  EXPECT_EQ(record.find_number("rounds_mean"), direct.rounds.mean);
  EXPECT_EQ(record.find_number("completion_mean"),
            direct.completion_round.mean);
  EXPECT_EQ(record.find_number("completion_rate"), direct.completion_rate);
  EXPECT_EQ(record.find_number("tx_per_node_mean"), direct.tx_per_node.mean);
  EXPECT_EQ(record.find_number("push_tx_mean"), direct.push_tx.mean);
}

TEST(CampaignRunCell, RecordIsIdenticalForAnyTrialRunnerConfig) {
  const CampaignSpec spec = tiny_spec();
  const auto cells = expand_cells(spec);
  for (const CampaignCell& cell : cells) {  // covers static + churn paths
    RunnerConfig one;
    one.threads = 1;
    RunnerConfig eight;
    eight.threads = 8;
    RunnerConfig chunked;
    chunked.threads = 2;
    chunked.chunk = 2;
    const std::string baseline =
        CampaignRunner::run_cell(spec, cell, one).to_line();
    EXPECT_EQ(CampaignRunner::run_cell(spec, cell, eight).to_line(), baseline)
        << cell.key;
    EXPECT_EQ(CampaignRunner::run_cell(spec, cell, chunked).to_line(),
              baseline)
        << cell.key;
  }
}

// ---- Artifact determinism --------------------------------------------------

struct ArtifactBytes {
  std::string results_json;
  std::string results_csv;
  std::string meta;
  std::string manifest;
};

ArtifactBytes run_to_dir(const CampaignSpec& spec, const std::string& dir,
                         int threads, bool parallel_cells = false,
                         const CellProgress& progress = {}) {
  CampaignConfig config;
  config.runner.threads = threads;
  config.parallel_cells = parallel_cells;
  config.out_dir = dir;
  CampaignRunner runner(spec, config);
  const CampaignOutcome outcome = runner.run(progress);
  ArtifactBytes bytes;
  bytes.results_json = read_file(outcome.results_json_path);
  bytes.results_csv = read_file(outcome.results_csv_path);
  bytes.meta = read_file(outcome.meta_path);
  bytes.manifest = read_file(outcome.manifest_path);
  return bytes;
}

TEST(CampaignDeterminism, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = tiny_spec();
  const ArtifactBytes t1 = run_to_dir(spec, temp_dir("t1"), 1);
  const ArtifactBytes t2 = run_to_dir(spec, temp_dir("t2"), 2);
  const ArtifactBytes t8 = run_to_dir(spec, temp_dir("t8"), 8);
  const ArtifactBytes cells =
      run_to_dir(spec, temp_dir("cells"), 4, /*parallel_cells=*/true);

  EXPECT_EQ(t1.results_json, t2.results_json);
  EXPECT_EQ(t1.results_json, t8.results_json);
  EXPECT_EQ(t1.results_json, cells.results_json);
  EXPECT_EQ(t1.results_csv, t2.results_csv);
  EXPECT_EQ(t1.results_csv, cells.results_csv);
  EXPECT_EQ(t1.meta, t2.meta);
  EXPECT_EQ(t1.meta, cells.meta);
  // The manifest's line *order* is completion order (scheduling-dependent
  // under parallel_cells); its content is not.
  EXPECT_EQ(t1.manifest, t2.manifest);
  EXPECT_EQ(sorted_lines(t1.manifest), sorted_lines(cells.manifest));
}

TEST(CampaignDeterminism, InterruptedRunResumesBitIdentically) {
  const CampaignSpec spec = tiny_spec();
  const ArtifactBytes full = run_to_dir(spec, temp_dir("full"), 2);

  // Simulate an interrupt: abort from the progress callback after two
  // freshly computed cells (their journal lines are already flushed).
  const std::string dir = temp_dir("interrupted");
  int computed = 0;
  EXPECT_THROW(
      (void)run_to_dir(spec, dir, 2, false,
                       [&computed](const CellResult& cell) {
                         if (!cell.reused && ++computed == 2)
                           throw std::runtime_error("simulated interrupt");
                       }),
      std::runtime_error);
  ASSERT_TRUE(fs::exists(dir + "/manifest.jsonl"));
  EXPECT_FALSE(fs::exists(dir + "/results.jsonl"));

  // Resume: the two journaled cells are reused, the rest recomputed.
  CampaignConfig config;
  config.runner.threads = 2;
  config.out_dir = dir;
  CampaignRunner runner(spec, config);
  const CampaignOutcome outcome = runner.run();
  EXPECT_EQ(outcome.reused, 2U);
  EXPECT_EQ(outcome.computed, 2U);
  EXPECT_EQ(read_file(outcome.results_json_path), full.results_json);
  EXPECT_EQ(read_file(outcome.results_csv_path), full.results_csv);
  EXPECT_EQ(read_file(outcome.meta_path), full.meta);
  EXPECT_EQ(read_file(outcome.manifest_path), full.manifest);
}

TEST(CampaignDeterminism, DeletingManifestLinesReproducesTheExactFiles) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("halved");
  const ArtifactBytes full = run_to_dir(spec, dir, 2);

  // Delete every other record line from the manifest (keep the header).
  std::istringstream manifest(full.manifest);
  std::ofstream rewrite(dir + "/manifest.jsonl", std::ios::trunc);
  std::string line;
  int record_index = 0;
  while (std::getline(manifest, line)) {
    const bool header = line.find("\"fingerprint\"") != std::string::npos;
    if (header || record_index++ % 2 == 0) rewrite << line << "\n";
  }
  rewrite.close();

  CampaignConfig config;
  config.runner.threads = 2;
  config.out_dir = dir;
  const CampaignOutcome outcome = CampaignRunner(spec, config).run();
  EXPECT_EQ(outcome.reused, 2U);
  EXPECT_EQ(outcome.computed, 2U);
  EXPECT_EQ(read_file(outcome.results_json_path), full.results_json);
  EXPECT_EQ(read_file(outcome.results_csv_path), full.results_csv);
  EXPECT_EQ(sorted_lines(read_file(outcome.manifest_path)),
            sorted_lines(full.manifest));
}

TEST(CampaignDeterminism, ShardManifestsMergeWithoutRecomputation) {
  const CampaignSpec spec = tiny_spec();
  const ArtifactBytes full = run_to_dir(spec, temp_dir("unsharded"), 2);

  std::string merged_manifest;
  for (int shard = 0; shard < 2; ++shard) {
    const std::string dir = temp_dir("shard" + std::to_string(shard));
    CampaignConfig config;
    config.runner.threads = 2;
    config.shard_index = shard;
    config.shard_count = 2;
    config.out_dir = dir;
    const CampaignOutcome outcome = CampaignRunner(spec, config).run();
    EXPECT_EQ(outcome.cells.size(), 2U);
    merged_manifest += read_file(outcome.manifest_path);
  }

  const std::string merged_dir = temp_dir("merged");
  fs::create_directories(merged_dir);
  std::ofstream(merged_dir + "/manifest.jsonl") << merged_manifest;
  CampaignConfig config;
  config.out_dir = merged_dir;
  const CampaignOutcome outcome = CampaignRunner(spec, config).run();
  EXPECT_EQ(outcome.computed, 0U);
  EXPECT_EQ(outcome.reused, 4U);
  EXPECT_EQ(read_file(outcome.results_json_path), full.results_json);
  EXPECT_EQ(read_file(outcome.results_csv_path), full.results_csv);
}

TEST(CampaignDeterminism, ShardRunOverFullDirectoryKeepsAllResults) {
  // Re-running a single shard in a directory that already holds the whole
  // campaign must not truncate the final artifacts to the shard subset:
  // the rewrite covers every cell with a journal record available.
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("shard_over_full");
  const ArtifactBytes full = run_to_dir(spec, dir, 2);

  CampaignConfig config;
  config.shard_index = 0;
  config.shard_count = 2;
  config.out_dir = dir;
  const CampaignOutcome outcome = CampaignRunner(spec, config).run();
  EXPECT_EQ(outcome.cells.size(), 2U);
  EXPECT_EQ(outcome.computed, 0U);
  EXPECT_EQ(read_file(outcome.results_json_path), full.results_json);
  EXPECT_EQ(read_file(outcome.results_csv_path), full.results_csv);
  EXPECT_EQ(read_file(outcome.meta_path), full.meta);
}

TEST(CampaignDeterminism, RefusesToResumeAcrossSpecChanges) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("fingerprint");
  (void)run_to_dir(spec, dir, 1);

  CampaignSpec changed = spec;
  changed.trials = 4;  // trials change the records, so resume must refuse
  CampaignConfig config;
  config.out_dir = dir;
  EXPECT_THROW((void)CampaignRunner(changed, config).run(),
               std::runtime_error);
}

TEST(CampaignDeterminism, RefusesHeaderlessManifestWithRecords) {
  // Records that cannot be attributed to a spec (no fingerprint header)
  // must not be reused — a header-stripped manifest could belong to a
  // spec whose differences (e.g. trials) the cell key does not encode.
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("headerless");
  const ArtifactBytes full = run_to_dir(spec, dir, 1);

  std::istringstream manifest(full.manifest);
  std::ofstream rewrite(dir + "/manifest.jsonl", std::ios::trunc);
  std::string line;
  while (std::getline(manifest, line))
    if (line.find("\"fingerprint\"") == std::string::npos)
      rewrite << line << "\n";
  rewrite.close();

  CampaignConfig config;
  config.out_dir = dir;
  EXPECT_THROW((void)CampaignRunner(spec, config).run(),
               std::runtime_error);
}

// ---- Metrics axis ----------------------------------------------------------

TEST(CampaignMetrics, SpecParsesValidatesAndFingerprints) {
  CampaignSpec spec = tiny_spec();
  EXPECT_TRUE(spec.metrics.empty());
  const std::uint64_t plain_fingerprint = spec_fingerprint(spec);
  // No metrics line when empty: pre-metrics campaign fingerprints survive.
  EXPECT_EQ(describe(spec).find("metrics"), std::string::npos);

  apply_setting(spec, "metrics", "tx-histogram, latency");
  ASSERT_EQ(spec.metrics.size(), 2U);
  EXPECT_EQ(spec.metrics[0], MetricKind::kTxHistogram);
  EXPECT_EQ(spec.metrics[1], MetricKind::kInformedLatency);
  EXPECT_NE(describe(spec).find("metrics = tx-histogram, latency"),
            std::string::npos);
  // Metric selection changes the record schema, so it must change the
  // fingerprint (resuming a metric-less manifest would emit mixed rows).
  EXPECT_NE(spec_fingerprint(spec), plain_fingerprint);

  apply_setting(spec, "metrics", "none");
  EXPECT_TRUE(spec.metrics.empty());
  EXPECT_EQ(spec_fingerprint(spec), plain_fingerprint);

  EXPECT_THROW(apply_setting(spec, "metrics", "warp-speed"),
               std::runtime_error);
  EXPECT_THROW(apply_setting(spec, "metrics", "latency, latency"),
               std::runtime_error);
}

TEST(CampaignMetrics, ColumnsAppendWithoutChangingBaseValuesOrKeys) {
  // Observers are read-only: switching metrics on must keep every base
  // column byte-identical and only append digest columns — on the static
  // run_trials path and the churn overlay path alike.
  const CampaignSpec plain = tiny_spec();
  CampaignSpec with_metrics = tiny_spec();
  with_metrics.metrics = {MetricKind::kTxHistogram,
                          MetricKind::kInformedLatency};

  const auto plain_cells = expand_cells(plain);
  const auto metric_cells = expand_cells(with_metrics);
  ASSERT_EQ(plain_cells.size(), metric_cells.size());
  for (std::size_t i = 0; i < plain_cells.size(); ++i) {
    EXPECT_EQ(metric_cells[i].key, plain_cells[i].key);
    EXPECT_EQ(metric_cells[i].seed, plain_cells[i].seed);

    const JsonObject base =
        CampaignRunner::run_cell(plain, plain_cells[i], {});
    const JsonObject extended =
        CampaignRunner::run_cell(with_metrics, metric_cells[i], {});
    SCOPED_TRACE(plain_cells[i].key);
    // Every base field survives, in order, with identical rendered bytes.
    ASSERT_GE(extended.fields().size(), base.fields().size());
    for (std::size_t f = 0; f < base.fields().size(); ++f) {
      EXPECT_EQ(extended.fields()[f].key, base.fields()[f].key);
      EXPECT_EQ(extended.fields()[f].json, base.fields()[f].json);
    }
    // And the digest columns arrive for both metrics.
    EXPECT_TRUE(extended.find_number("tx_node_p90_mean").has_value());
    EXPECT_TRUE(extended.find_number("latency_p90_mean").has_value());
    EXPECT_FALSE(base.find_number("tx_node_p90_mean").has_value());
  }
}

TEST(CampaignMetrics, MetricColumnsAreDeterministicAcrossRunnerConfigs) {
  CampaignSpec spec = tiny_spec();
  spec.metrics = {MetricKind::kTxHistogram, MetricKind::kInformedLatency};
  const auto cells = expand_cells(spec);
  for (const CampaignCell& cell : cells) {  // covers static + churn paths
    RunnerConfig one;
    one.threads = 1;
    RunnerConfig eight;
    eight.threads = 8;
    RunnerConfig chunked;
    chunked.threads = 2;
    chunked.chunk = 2;
    const std::string baseline =
        CampaignRunner::run_cell(spec, cell, one).to_line();
    EXPECT_EQ(CampaignRunner::run_cell(spec, cell, eight).to_line(), baseline)
        << cell.key;
    EXPECT_EQ(CampaignRunner::run_cell(spec, cell, chunked).to_line(),
              baseline)
        << cell.key;
  }
}

// ---- Timing side channel ---------------------------------------------------

TEST(CampaignTiming, SideChannelRecordsComputedCellsOnly) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("timing");
  CampaignConfig config;
  config.runner.threads = 2;
  config.out_dir = dir;
  const CampaignOutcome first = CampaignRunner(spec, config).run();
  ASSERT_FALSE(first.timing_path.empty());

  const auto count_lines = [](const std::string& text) {
    std::size_t lines = 0;
    for (const char c : text)
      if (c == '\n') ++lines;
    return lines;
  };
  const std::string after_first = read_file(first.timing_path);
  EXPECT_EQ(count_lines(after_first), 4U);  // one per computed cell
  // Each line parses and names a cell of this campaign, with a wall time.
  std::istringstream lines(after_first);
  std::string line;
  while (std::getline(lines, line)) {
    const auto parsed = parse_flat_json(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_TRUE(parsed->find_plain("key").has_value());
    EXPECT_TRUE(parsed->find_number("wall_ms").has_value());
    EXPECT_TRUE(parsed->find_number("trials_per_s").has_value());
  }

  // A resume computes nothing, so the side channel grows by nothing — and
  // the deterministic artifacts ignore it entirely.
  const CampaignOutcome resumed = CampaignRunner(spec, config).run();
  EXPECT_EQ(resumed.computed, 0U);
  EXPECT_EQ(count_lines(read_file(resumed.timing_path)), 4U);
}

TEST(CampaignDeterminism, InMemoryRunMatchesPersistedRecords) {
  const CampaignSpec spec = tiny_spec();
  const ArtifactBytes persisted = run_to_dir(spec, temp_dir("disk"), 2);

  CampaignRunner runner(spec, {});  // out_dir empty: no files touched
  const CampaignOutcome outcome = runner.run();
  EXPECT_TRUE(outcome.manifest_path.empty());
  std::string lines;
  for (const CellResult& cell : outcome.cells)
    lines += cell.record.to_line() + "\n";
  EXPECT_EQ(lines, persisted.results_json);
}

}  // namespace
}  // namespace rrb::exp
