/// Parameterised property suite for the phone call engine: invariants that
/// must hold across the whole (choices, memory, failure) configuration
/// space, on top of the targeted unit tests in test_engine.cpp.

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"

namespace rrb {
namespace {

struct EngineGridParam {
  int choices;
  int memory;
  double failure;
};

class EngineGrid : public ::testing::TestWithParam<EngineGridParam> {};

TEST_P(EngineGrid, ChannelAccountingInvariant) {
  // channels_opened == alive * min(choices, d) * rounds, always — failures
  // count as opened, silent protocols still open.
  const auto param = GetParam();
  Rng grng(11);
  const NodeId n = 256;
  const NodeId d = 8;
  const Graph g = random_regular_simple(n, d, grng);
  GraphTopology topo(g);
  Rng rng(42);
  ChannelConfig cfg;
  cfg.num_choices = param.choices;
  cfg.memory = param.memory;
  cfg.failure_prob = param.failure;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 200;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  const auto per_round = static_cast<Count>(n) *
                         std::min<Count>(param.choices, d);
  EXPECT_EQ(r.channels_opened,
            per_round * static_cast<Count>(r.rounds));
  EXPECT_LE(r.channels_failed, r.channels_opened);
}

TEST_P(EngineGrid, PushPullCompletesUnlessFullyBlocked) {
  const auto param = GetParam();
  if (param.failure >= 1.0) return;  // covered by targeted unit test
  Rng grng(13);
  const NodeId n = 512;
  const Graph g = random_regular_simple(n, 8, grng);
  GraphTopology topo(g);
  Rng rng(7);
  ChannelConfig cfg;
  cfg.num_choices = param.choices;
  cfg.memory = param.memory;
  cfg.failure_prob = param.failure;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 2000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed);
  // More choices / fewer failures never hurt: sanity ceiling on rounds.
  EXPECT_LT(r.completion_round, 500);
}

TEST_P(EngineGrid, TransmissionsOnlyFromInformedNodes) {
  // With a silent protocol nothing is ever transmitted, whatever the
  // channel configuration — transmissions require an informed sender.
  class Silent final : public BroadcastProtocol {
   public:
    Action action(NodeId, const NodeLocalState&, Round) override {
      return Action::kNone;
    }
    bool finished(Round, Count, Count) const override { return false; }
    const char* name() const override { return "silent"; }
  };
  const auto param = GetParam();
  Rng grng(17);
  const Graph g = random_regular_simple(128, 8, grng);
  GraphTopology topo(g);
  Rng rng(3);
  ChannelConfig cfg;
  cfg.num_choices = param.choices;
  cfg.memory = param.memory;
  cfg.failure_prob = param.failure;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  Silent silent;
  RunLimits limits;
  limits.max_rounds = 50;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  EXPECT_EQ(r.total_tx(), 0U);
  EXPECT_EQ(r.final_informed, 1U);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineGrid,
    ::testing::Values(EngineGridParam{1, 0, 0.0},
                      EngineGridParam{1, 3, 0.0},
                      EngineGridParam{2, 0, 0.1},
                      EngineGridParam{4, 0, 0.0},
                      EngineGridParam{4, 0, 0.25},
                      EngineGridParam{4, 2, 0.1},
                      EngineGridParam{6, 0, 0.0},
                      EngineGridParam{8, 0, 0.5}));

/// Determinism across the grid: identical seeds yield identical runs.
class EngineDeterminismGrid
    : public ::testing::TestWithParam<EngineGridParam> {};

TEST_P(EngineDeterminismGrid, IdenticalSeedsIdenticalRuns) {
  const auto param = GetParam();
  Rng grng(23);
  const Graph g = random_regular_simple(128, 6, grng);
  auto once = [&](std::uint64_t seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig cfg;
    cfg.num_choices = param.choices;
    cfg.memory = param.memory;
    cfg.failure_prob = param.failure;
    PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
    PushPullProtocol proto;
    RunLimits limits;
    limits.max_rounds = 300;
    return engine.run(proto, NodeId{0}, limits);
  };
  const RunResult a = once(5);
  const RunResult b = once(5);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.pull_tx, b.pull_tx);
  EXPECT_EQ(a.channels_failed, b.channels_failed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineDeterminismGrid,
    ::testing::Values(EngineGridParam{1, 0, 0.0},
                      EngineGridParam{4, 0, 0.2},
                      EngineGridParam{1, 3, 0.0},
                      EngineGridParam{4, 2, 0.3}));

/// Failure-rate concentration across probabilities.
class FailureRateGrid : public ::testing::TestWithParam<double> {};

TEST_P(FailureRateGrid, MeasuredRateMatchesConfigured) {
  const double f = GetParam();
  Rng grng(29);
  const Graph g = random_regular_simple(256, 8, grng);
  GraphTopology topo(g);
  Rng rng(31);
  ChannelConfig cfg;
  cfg.num_choices = 2;
  cfg.failure_prob = f;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 100;
  limits.stop_when_all_informed = false;
  // Keep running after completion to gather many channel samples: use a
  // protocol that never finishes by swapping finished() via the cap.
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  const double measured = static_cast<double>(r.channels_failed) /
                          static_cast<double>(r.channels_opened);
  EXPECT_NEAR(measured, f, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Grid, FailureRateGrid,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4, 0.6, 0.9));

/// Randomised invariant checks on configuration-model *multigraphs* (the
/// paper's G(n, d) probability space, self-loops and parallel edges
/// included): each case derives (n, d, seed) pseudo-randomly from its
/// index, so the suite explores fresh instances while staying fully
/// reproducible. Designed to run under the asan preset, where the observer
/// walks catch any engine memory misuse.
class ConfigModelInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ConfigModelInvariants, InformedSetMonotoneAndConsistent) {
  Rng meta(0xc0f1 + static_cast<std::uint64_t>(GetParam()) * 7919);
  // Even n keeps n*d even, which the configuration model's stub pairing
  // requires for every d.
  const NodeId n = static_cast<NodeId>(32 + 2 * meta.uniform_u64(240));
  const NodeId d = static_cast<NodeId>(3 + meta.uniform_u64(10));
  const std::uint64_t seed = meta.next_u64();

  Rng rng = Rng(seed).fork(0);
  const Graph g = configuration_model(n, d, rng);
  GraphTopology topo(g);
  ChannelConfig cfg;
  cfg.num_choices = static_cast<int>(1 + meta.uniform_u64(4));
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);

  RunLimits limits;
  limits.max_rounds = static_cast<Round>(20 + meta.uniform_u64(200));

  // Monotonicity: informed nodes stay informed with an unchanged stamp,
  // new stamps always equal the current round, |I(t)| never shrinks.
  // Checked from a hand-written metric observer — the hook stream is the
  // supported way to watch engine state evolve round by round.
  struct MonotonicityChecker {
    NodeId n;
    std::vector<Round> previous;
    Count previous_count = 1;
    Round last_round = 0;
    [[nodiscard]] const char* name() const { return "monotonicity"; }
    void on_round_end(const RoundStats& stats,
                      std::span<const Round> informed) {
      EXPECT_EQ(stats.t, last_round + 1);
      last_round = stats.t;
      Count count = 0;
      for (NodeId v = 0; v < n; ++v) {
        if (previous[v] != kNever) {
          EXPECT_EQ(informed[v], previous[v]);
        } else if (informed[v] != kNever) {
          EXPECT_EQ(informed[v], stats.t);
        }
        if (informed[v] != kNever) ++count;
        previous[v] = informed[v];
      }
      EXPECT_GE(count, previous_count);
      previous_count = count;
    }
  };
  MonotonicityChecker checker{n, std::vector<Round>(n, kNever)};
  checker.previous[0] = 0;  // the source below

  PushPullProtocol proto;
  const RunResult r = engine.run(proto, NodeId{0}, limits, checker);

  // Round accounting respects RunLimits.
  EXPECT_GE(r.rounds, 1);
  EXPECT_LE(r.rounds, limits.max_rounds);
  EXPECT_EQ(r.rounds, checker.last_round);
  if (r.completion_round != kNever) {
    EXPECT_LE(r.completion_round, r.rounds);
  }

  // informed_at is kNever exactly off the informed set, and informed
  // stamps are genuine round numbers.
  Count informed_count = 0;
  for (const Round at : engine.informed_at()) {
    if (at == kNever) continue;
    ++informed_count;
    EXPECT_GE(at, 0);
    EXPECT_LE(at, r.rounds);
  }
  EXPECT_EQ(informed_count, r.final_informed);
  EXPECT_EQ(informed_count, checker.previous_count);
  EXPECT_EQ(r.all_informed, informed_count >= r.alive_at_end);
}

INSTANTIATE_TEST_SUITE_P(Random, ConfigModelInvariants,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace rrb
