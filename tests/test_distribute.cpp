#include "rrb/exp/distribute.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "rrb/exp/campaign.hpp"
#include "rrb/exp/journal.hpp"
#include "rrb/exp/spec.hpp"

/// Distributed-executor tests: the atomic cell-claim protocol, the
/// crash-tolerant journal loader/writer (truncated-tail repair), and the
/// worker claim loop — everything of `rrb_campaign --distribute K` that
/// does not require fork/exec of the real binary. The process-level
/// driver (spawn, supervise, respawn, merge) is exercised end-to-end by
/// the CTest fixtures in bench/CMakeLists.txt.

namespace rrb::exp {
namespace {

namespace fs = std::filesystem;

/// Tiny static grid: 2 schemes x 2 n = 4 cells, 2 trials each — small
/// enough that truncation sweeps over the whole manifest stay cheap.
CampaignSpec tiny_spec() {
  CampaignSpec spec;
  spec.name = "dtiny";
  spec.seed = 0xd157;
  spec.trials = 2;
  spec.schemes = {BroadcastScheme::kPush, BroadcastScheme::kFourChoice};
  spec.n_values = {32, 64};
  spec.d_values = {6};
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream content;
  content << in.rdbuf();
  return content.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

std::string temp_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "rrb_distribute_" + tag;
  fs::remove_all(dir);
  return dir;
}

std::string fingerprint_of(const CampaignSpec& spec) {
  std::ostringstream os;
  os << "0x" << std::hex << spec_fingerprint(spec);
  return os.str();
}

/// The three deterministic artifacts (results + meta; the manifest is
/// order-dependent and timing.jsonl is a side channel).
struct ArtifactBytes {
  std::string results_json;
  std::string results_csv;
  std::string meta;
};

ArtifactBytes artifacts_of(const std::string& dir) {
  return {read_file(dir + "/results.jsonl"), read_file(dir + "/results.csv"),
          read_file(dir + "/campaign.json")};
}

ArtifactBytes run_to_dir(const CampaignSpec& spec, const std::string& dir) {
  CampaignConfig config;
  config.out_dir = dir;
  CampaignRunner runner(spec, config);
  (void)runner.run();
  return artifacts_of(dir);
}

// ---- Claim protocol --------------------------------------------------------

TEST(CellClaims, FirstClaimWinsSecondLoses) {
  const std::string dir = temp_dir("claims_basic");
  const CellClaims claims(dir);
  EXPECT_EQ(claims.owner_of(3), "");
  EXPECT_TRUE(claims.try_claim(3, "w0"));
  EXPECT_FALSE(claims.try_claim(3, "w1"));  // already taken
  EXPECT_FALSE(claims.try_claim(3, "w0"));  // not even by its own owner
  EXPECT_EQ(claims.owner_of(3), "w0");
  claims.release(3);
  EXPECT_EQ(claims.owner_of(3), "");
  EXPECT_TRUE(claims.try_claim(3, "w1"));
  EXPECT_EQ(claims.owner_of(3), "w1");
  claims.clear();
  EXPECT_EQ(claims.owner_of(3), "");
}

TEST(CellClaims, TwoRacersPerCellExactlyOneWins) {
  const std::string dir = temp_dir("claims_race");
  const CellClaims claims(dir);
  constexpr std::size_t kCells = 200;

  std::vector<std::size_t> wins_a, wins_b;
  std::thread racer_a([&] {
    for (std::size_t i = 0; i < kCells; ++i)
      if (claims.try_claim(i, "a")) wins_a.push_back(i);
  });
  std::thread racer_b([&] {
    for (std::size_t i = 0; i < kCells; ++i)
      if (claims.try_claim(i, "b")) wins_b.push_back(i);
  });
  racer_a.join();
  racer_b.join();

  // Every cell claimed exactly once: the two win sets partition the range.
  EXPECT_EQ(wins_a.size() + wins_b.size(), kCells);
  std::set<std::size_t> all(wins_a.begin(), wins_a.end());
  all.insert(wins_b.begin(), wins_b.end());
  EXPECT_EQ(all.size(), kCells);
  for (std::size_t i = 0; i < kCells; ++i) {
    const std::string owner = claims.owner_of(i);
    EXPECT_TRUE(owner == "a" || owner == "b") << "cell " << i;
  }
}

// ---- Journal loading and tail repair ---------------------------------------

TEST(Journal, LoadsRecordsSkipsDamageAndTracksCleanSize) {
  const std::string dir = temp_dir("journal_load");
  fs::create_directories(dir);
  const std::string path = dir + "/j.jsonl";
  const std::string good =
      "{\"campaign\": \"x\", \"fingerprint\": \"0xf\", \"cells\": 2}\n"
      "{\"key\": \"a\", \"v\": 1}\n"
      "{\"key\": \"b\", \"v\": 2}\n";
  write_file(path, good + "{\"key\": \"c\", \"v\"");  // truncated tail

  const Journal journal = load_journal(path, "0xf");
  EXPECT_TRUE(journal.saw_header);
  EXPECT_EQ(journal.records.size(), 2U);
  EXPECT_EQ(journal.skipped, 1U);
  EXPECT_EQ(journal.clean_size, good.size());

  // The writer cuts the partial tail, so appending starts on a fresh line.
  {
    JournalWriter writer(path, journal, "x", "0xf", 2);
    JsonObject record;
    record.set("key", "c").set("v", std::uint64_t{3});
    writer.append(record);
  }
  const Journal repaired = load_journal(path, "0xf");
  EXPECT_EQ(repaired.records.size(), 3U);
  EXPECT_EQ(repaired.skipped, 0U);
  EXPECT_EQ(read_file(path), good + "{\"key\": \"c\", \"v\": 3}\n");
}

TEST(Journal, KeepsCompleteFinalLineWithoutNewline) {
  const std::string dir = temp_dir("journal_nonl");
  fs::create_directories(dir);
  const std::string path = dir + "/j.jsonl";
  write_file(path,
             "{\"campaign\": \"x\", \"fingerprint\": \"0xf\", \"cells\": 1}\n"
             "{\"key\": \"a\", \"v\": 1}");  // complete record, no newline

  const Journal journal = load_journal(path, "0xf");
  EXPECT_EQ(journal.records.size(), 1U);
  EXPECT_EQ(journal.skipped, 0U);

  JournalWriter writer(path, journal, "x", "0xf", 1);
  JsonObject record;
  record.set("key", "b").set("v", std::uint64_t{2});
  writer.append(record);
  writer.close();
  const Journal reread = load_journal(path, "0xf");
  EXPECT_EQ(reread.records.size(), 2U);  // "a" kept, "b" on its own line
  EXPECT_EQ(reread.skipped, 0U);
}

TEST(Journal, RefusesForeignFingerprintAndHeaderlessRecords) {
  const std::string dir = temp_dir("journal_refuse");
  fs::create_directories(dir);
  const std::string foreign = dir + "/foreign.jsonl";
  write_file(foreign,
             "{\"campaign\": \"x\", \"fingerprint\": \"0xbad\"}\n");
  EXPECT_THROW((void)load_journal(foreign, "0xf"), std::runtime_error);

  const std::string headerless = dir + "/headerless.jsonl";
  write_file(headerless, "{\"key\": \"a\", \"v\": 1}\n");
  EXPECT_THROW((void)load_journal(headerless, "0xf"), std::runtime_error);

  EXPECT_FALSE(load_journal(dir + "/missing.jsonl", "0xf").has_content);
}

/// The satellite hardening test: truncate the campaign manifest at every
/// byte boundary and resume. Whatever prefix survives a mid-write kill,
/// the resumed artifacts must be byte-identical to the uninterrupted run
/// — partial lines are skipped and their cells recomputed.
TEST(Journal, ResumeFromEveryTruncationIsByteIdentical) {
  const CampaignSpec spec = tiny_spec();
  const std::string ref_dir = temp_dir("trunc_ref");
  const ArtifactBytes reference = run_to_dir(spec, ref_dir);
  const std::string manifest = read_file(ref_dir + "/manifest.jsonl");
  ASSERT_GT(manifest.size(), 0U);

  const std::string dir = temp_dir("trunc_resume");
  for (std::size_t cut = 0; cut < manifest.size(); ++cut) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    write_file(dir + "/manifest.jsonl", manifest.substr(0, cut));
    const ArtifactBytes resumed = run_to_dir(spec, dir);
    ASSERT_EQ(resumed.results_json, reference.results_json) << "cut " << cut;
    ASSERT_EQ(resumed.results_csv, reference.results_csv) << "cut " << cut;
    ASSERT_EQ(resumed.meta, reference.meta) << "cut " << cut;
  }
}

// ---- Worker claim loop -----------------------------------------------------

TEST(RunWorker, ComputesTheWholeGridAloneAndResumesToNothing) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("worker_solo");
  WorkerConfig config;
  config.worker_id = 0;
  config.out_dir = dir;
  config.quiet = true;
  EXPECT_EQ(run_worker(spec, config), 4U);
  EXPECT_EQ(run_worker(spec, config), 0U);  // own journal already has all

  const Journal journal =
      load_journal(worker_journal_path(dir, 0), fingerprint_of(spec));
  EXPECT_EQ(journal.records.size(), 4U);

  // The worker's records are exactly what the runner computes — merged
  // into the campaign directory they reproduce the single-process bytes.
  for (const CampaignCell& cell : expand_cells(spec))
    EXPECT_EQ(journal.records.at(cell.key).to_line(),
              CampaignRunner::run_cell(spec, cell, config.runner).to_line());
}

TEST(RunWorker, SkipsCellsClaimedByOthersAndCellsAlreadyInManifest) {
  const CampaignSpec spec = tiny_spec();
  const std::vector<CampaignCell> cells = expand_cells(spec);
  const std::string dir = temp_dir("worker_skip");

  // A full single-process run first: its manifest marks everything done.
  (void)run_to_dir(spec, dir);
  WorkerConfig config;
  config.worker_id = 0;
  config.out_dir = dir;
  config.quiet = true;
  EXPECT_EQ(run_worker(spec, config), 0U);

  // Fresh directory, two cells pre-claimed by a (virtual) other worker:
  // the worker computes exactly the complement.
  const std::string dir2 = temp_dir("worker_skip2");
  fs::create_directories(dir2);
  const CellClaims claims(claims_dir(dir2));
  ASSERT_TRUE(claims.try_claim(cells[0].index, "w9"));
  ASSERT_TRUE(claims.try_claim(cells[2].index, "w9"));
  config.out_dir = dir2;
  EXPECT_EQ(run_worker(spec, config), 2U);
  const Journal journal =
      load_journal(worker_journal_path(dir2, 0), fingerprint_of(spec));
  EXPECT_EQ(journal.records.count(cells[0].key), 0U);
  EXPECT_EQ(journal.records.count(cells[1].key), 1U);
  EXPECT_EQ(journal.records.count(cells[2].key), 0U);
  EXPECT_EQ(journal.records.count(cells[3].key), 1U);
}

TEST(RunWorker, TwoConcurrentWorkersPartitionTheGrid) {
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("worker_race");

  auto body = [&](int id) {
    WorkerConfig config;
    config.worker_id = id;
    config.out_dir = dir;
    config.quiet = true;
    config.runner.threads = 1;
    (void)run_worker(spec, config);
  };
  std::thread worker_a([&] { body(0); });
  std::thread worker_b([&] { body(1); });
  worker_a.join();
  worker_b.join();

  // Exactly one of the two journals holds each cell.
  const std::string fingerprint = fingerprint_of(spec);
  const Journal journal_a =
      load_journal(worker_journal_path(dir, 0), fingerprint);
  const Journal journal_b =
      load_journal(worker_journal_path(dir, 1), fingerprint);
  EXPECT_EQ(journal_a.records.size() + journal_b.records.size(), 4U);
  for (const auto& [key, record] : journal_a.records)
    EXPECT_EQ(journal_b.records.count(key), 0U) << key;
}

#ifndef _WIN32
using RunWorkerDeathTest = ::testing::Test;

TEST(RunWorkerDeathTest, CrashHookKillsOnceThenResumeCompletes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const CampaignSpec spec = tiny_spec();
  const std::string dir = temp_dir("worker_crash");
  WorkerConfig config;
  config.worker_id = 0;
  config.out_dir = dir;
  config.quiet = true;
  config.crash_after = 2;

  // First life: journals exactly two cells, then dies by SIGKILL. The
  // death-test child shares the temp dir, so its journal survives here.
  EXPECT_EXIT((void)run_worker(spec, config),
              ::testing::KilledBySignal(SIGKILL), "");
  const std::string fingerprint = fingerprint_of(spec);
  EXPECT_EQ(load_journal(worker_journal_path(dir, 0), fingerprint)
                .records.size(),
            2U);

  // Second life: the marker disarms the hook, the claims its first life
  // left behind are stale — release them as the driver would — and the
  // worker finishes the grid.
  const CellClaims claims(claims_dir(dir));
  claims.clear();
  EXPECT_EQ(run_worker(spec, config), 2U);
  EXPECT_EQ(load_journal(worker_journal_path(dir, 0), fingerprint)
                .records.size(),
            4U);
}
#endif

// ---- Spec axes feeding the migrated benches --------------------------------

TEST(ChoicesAxis, DefaultAddsNoKeyPartAndOverrideAppendsOne) {
  CampaignSpec spec = tiny_spec();
  const std::vector<CampaignCell> plain = expand_cells(spec);
  for (const CampaignCell& cell : plain)
    EXPECT_EQ(cell.key.find("choices"), std::string::npos);

  spec.choices = {0, 3};
  const std::vector<CampaignCell> swept = expand_cells(spec);
  ASSERT_EQ(swept.size(), 2 * plain.size());
  // The k = 0 cells are byte-for-byte the plain cells (same key, same
  // seed): adding the axis moved nothing.
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(swept[2 * i].key, plain[i].key);
    EXPECT_EQ(swept[2 * i].seed, plain[i].seed);
    EXPECT_EQ(swept[2 * i + 1].key, plain[i].key + ";choices=3");
  }
}

TEST(ChoicesAxis, RoundTripsThroughDescribeAndChangesFingerprint) {
  CampaignSpec spec = tiny_spec();
  const std::uint64_t plain_fingerprint = spec_fingerprint(spec);
  EXPECT_EQ(describe(spec).find("choices"), std::string::npos);

  spec.choices = {1, 2, 3};
  EXPECT_NE(spec_fingerprint(spec), plain_fingerprint);
  std::istringstream in(describe(spec));
  const CampaignSpec reparsed = parse_spec(in);
  EXPECT_EQ(reparsed.choices, spec.choices);
  EXPECT_EQ(describe(reparsed), describe(spec));

  EXPECT_THROW((void)apply_setting(spec, "choices", "9999"),
               std::runtime_error);
}

TEST(DerivedDegree, TwoLogTwoNDerivesPerCellAndRoundTrips) {
  CampaignSpec spec = tiny_spec();
  apply_setting(spec, "d", "2log2n");
  EXPECT_TRUE(spec.derived_d);
  const std::vector<CampaignCell> cells = expand_cells(spec);
  for (const CampaignCell& cell : cells)
    EXPECT_EQ(cell.d, cell.n == 32 ? 10U : 12U) << cell.key;

  EXPECT_NE(describe(spec).find("d = 2log2n"), std::string::npos);
  std::istringstream in(describe(spec));
  const CampaignSpec reparsed = parse_spec(in);
  EXPECT_TRUE(reparsed.derived_d);
  EXPECT_EQ(describe(reparsed), describe(spec));

  // Numeric d switches the mode back off.
  apply_setting(spec, "d", "6");
  EXPECT_FALSE(spec.derived_d);
  EXPECT_EQ(spec.d_values, (std::vector<NodeId>{6}));

  // Families that already derive d reject the rule; so does a multi-value
  // d axis left over in the spec.
  CampaignSpec hyper = tiny_spec();
  hyper.schemes = {BroadcastScheme::kPush};
  hyper.graph = GraphFamily::kHypercube;
  hyper.derived_d = true;
  EXPECT_THROW((void)expand_cells(hyper), std::runtime_error);
}

}  // namespace
}  // namespace rrb::exp
