#include "rrb/graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/algorithms.hpp"

namespace rrb {
namespace {

TEST(ConfigurationModel, ProducesRegularMultigraph) {
  Rng rng(1);
  const Graph g = configuration_model(100, 6, rng);
  EXPECT_EQ(g.num_nodes(), 100U);
  EXPECT_EQ(g.num_edges(), 300U);
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{6});
}

TEST(ConfigurationModel, OddStubCountRejected) {
  Rng rng(2);
  EXPECT_THROW((void)configuration_model(3, 3, rng), std::logic_error);
}

TEST(ConfigurationModel, HandshakeAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Graph g = configuration_model(64, 4, rng);
    Count degree_sum = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
    EXPECT_EQ(degree_sum, 2 * g.num_edges());
  }
}

TEST(ConfigurationModel, TypicallyConnectedForDegreeAtLeastThree) {
  // Random d-regular graphs with d >= 3 are connected w.h.p. (Bollobás);
  // at n = 200, 20/20 seeds should produce connected multigraphs.
  int connected = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Graph g = configuration_model(200, 4, rng);
    if (is_connected(g)) ++connected;
  }
  EXPECT_GE(connected, 19);
}

TEST(ConfigurationModel, LoopAndParallelRatesAreSmall) {
  // Expected self-loops ~ (d-1)/2, parallel pairs ~ (d^2-1)/4, both O(1).
  Rng rng(7);
  Count loops = 0;
  Count parallel = 0;
  constexpr int kReps = 50;
  for (int i = 0; i < kReps; ++i) {
    const Graph g = configuration_model(500, 4, rng);
    loops += g.num_self_loops();
    parallel += g.num_parallel_extra();
  }
  EXPECT_LT(static_cast<double>(loops) / kReps, 8.0);
  EXPECT_LT(static_cast<double>(parallel) / kReps, 12.0);
  EXPECT_GT(loops + parallel, 0U);  // the model does produce defects
}

TEST(RandomRegularSimple, IsSimpleAndRegular) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Graph g = random_regular_simple(128, 5, rng);
    EXPECT_TRUE(g.is_simple());
    EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{5});
  }
}

TEST(RandomRegularSimple, WorksAtTightParameters) {
  Rng rng(3);
  const Graph g = random_regular_simple(8, 7, rng);  // K8 is forced
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{7});
  EXPECT_EQ(g.num_edges(), 28U);
}

TEST(RandomRegularSimple, DistinctSeedsGiveDistinctGraphs) {
  Rng r1(10);
  Rng r2(11);
  const Graph a = random_regular_simple(64, 4, r1);
  const Graph b = random_regular_simple(64, 4, r2);
  EXPECT_NE(a.edge_list(), b.edge_list());
}

TEST(Gnp, EdgeCountConcentratesAroundMean) {
  Rng rng(4);
  const NodeId n = 300;
  const double p = 0.05;
  const double expected = p * n * (n - 1) / 2.0;
  double total = 0.0;
  constexpr int kReps = 20;
  for (int i = 0; i < kReps; ++i)
    total += static_cast<double>(gnp(n, p, rng).num_edges());
  const double mean = total / kReps;
  EXPECT_NEAR(mean, expected, 0.1 * expected);
}

TEST(Gnp, ExtremeProbabilities) {
  Rng rng(5);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0U);
  const Graph full = gnp(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45U);
  EXPECT_TRUE(full.is_simple());
}

TEST(Gnp, ProducesSimpleGraphs) {
  Rng rng(6);
  const Graph g = gnp(200, 0.1, rng);
  EXPECT_TRUE(g.is_simple());
}

TEST(Complete, StructureIsExact) {
  const Graph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15U);
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{5});
  EXPECT_TRUE(g.is_simple());
  for (NodeId u = 0; u < 6; ++u)
    for (NodeId v = u + 1; v < 6; ++v) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(CompleteBipartite, DegreesAndEdgeCount) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7U);
  EXPECT_EQ(g.num_edges(), 12U);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(g.degree(u), 4U);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3U);
  EXPECT_FALSE(g.has_edge(0, 1));  // no intra-side edges
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(Cycle, TwoRegularAndConnected) {
  const Graph g = cycle(9);
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{2});
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.num_edges(), 9U);
  EXPECT_THROW((void)cycle(2), std::logic_error);
}

TEST(Path, EndpointsHaveDegreeOne) {
  const Graph g = path(5);
  EXPECT_EQ(g.degree(0), 1U);
  EXPECT_EQ(g.degree(4), 1U);
  EXPECT_EQ(g.degree(2), 2U);
  EXPECT_EQ(g.num_edges(), 4U);
}

TEST(Star, HubAndLeaves) {
  const Graph g = star(7);
  EXPECT_EQ(g.degree(0), 6U);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1U);
}

TEST(Hypercube, RegularityAndSize) {
  const Graph g = hypercube(5);
  EXPECT_EQ(g.num_nodes(), 32U);
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{5});
  EXPECT_TRUE(is_connected(g));
  // Neighbours differ in exactly one bit.
  for (NodeId v = 0; v < 32; ++v)
    for (const NodeId w : g.neighbors(v)) {
      const NodeId x = v ^ w;
      EXPECT_EQ(x & (x - 1), 0U);
      EXPECT_NE(x, 0U);
    }
}

TEST(Hypercube, DimensionZeroIsSingleNode) {
  const Graph g = hypercube(0);
  EXPECT_EQ(g.num_nodes(), 1U);
  EXPECT_EQ(g.num_edges(), 0U);
}

TEST(Torus, FourRegular) {
  const Graph g = torus(4, 5);
  EXPECT_EQ(g.num_nodes(), 20U);
  EXPECT_EQ(g.regular_degree(), std::optional<NodeId>{4});
  EXPECT_TRUE(is_connected(g));
}

TEST(CartesianProduct, DegreeIsSumOfFactorDegrees) {
  Rng rng(8);
  const Graph g = random_regular_simple(20, 4, rng);
  const Graph k5 = complete(5);
  const Graph prod = cartesian_product(g, k5);
  EXPECT_EQ(prod.num_nodes(), 100U);
  EXPECT_EQ(prod.regular_degree(), std::optional<NodeId>{8});  // 4 + 4
  EXPECT_TRUE(is_connected(prod));
}

TEST(CartesianProduct, EdgeCountMatchesFormula) {
  const Graph c4 = cycle(4);
  const Graph p3 = path(3);
  const Graph prod = cartesian_product(c4, p3);
  // |E| = |E_G|*|V_H| + |E_H|*|V_G| = 4*3 + 2*4 = 20.
  EXPECT_EQ(prod.num_edges(), 20U);
  EXPECT_EQ(prod.num_nodes(), 12U);
}

TEST(CartesianProduct, K5FibresAreCliques) {
  Rng rng(9);
  const Graph g = random_regular_simple(10, 3, rng);
  const Graph prod = cartesian_product(g, complete(5));
  // Within fibre u: nodes u*5..u*5+4 pairwise adjacent.
  for (NodeId u = 0; u < 10; ++u)
    for (NodeId i = 0; i < 5; ++i)
      for (NodeId j = i + 1; j < 5; ++j)
        EXPECT_TRUE(prod.has_edge(u * 5 + i, u * 5 + j));
}

TEST(PreferentialAttachment, EdgeCountMatchesFormula) {
  Rng rng(20);
  const Graph g = preferential_attachment(200, 3, rng);
  EXPECT_EQ(g.num_nodes(), 200U);
  // Seed clique C(4,2) = 6 edges + 196 nodes * 3 edges.
  EXPECT_EQ(g.num_edges(), 6U + 196U * 3U);
}

TEST(PreferentialAttachment, IsConnected) {
  Rng rng(21);
  const Graph g = preferential_attachment(500, 2, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(PreferentialAttachment, MinDegreeIsM) {
  Rng rng(22);
  const NodeId m = 3;
  const Graph g = preferential_attachment(300, m, rng);
  EXPECT_GE(g.min_degree(), m);
}

TEST(PreferentialAttachment, ProducesHeavyTailedHubs) {
  // The degree distribution is a power law: the maximum degree should far
  // exceed the mean (unlike a random regular graph).
  Rng rng(23);
  const Graph g = preferential_attachment(2000, 2, rng);
  const DegreeStats stats = degree_stats(g);
  EXPECT_GT(static_cast<double>(stats.max), 6.0 * stats.mean);
}

TEST(PreferentialAttachment, EarlyNodesAreRicher) {
  // Cumulative advantage: the average degree of the first 10% of nodes
  // exceeds that of the last 10%.
  Rng rng(24);
  const NodeId n = 2000;
  const Graph g = preferential_attachment(n, 2, rng);
  double early = 0.0;
  double late = 0.0;
  for (NodeId v = 0; v < n / 10; ++v) early += g.degree(v);
  for (NodeId v = n - n / 10; v < n; ++v) late += g.degree(v);
  EXPECT_GT(early, 1.5 * late);
}

TEST(PreferentialAttachment, Validation) {
  Rng rng(25);
  EXPECT_THROW((void)preferential_attachment(3, 3, rng), std::logic_error);
  EXPECT_THROW((void)preferential_attachment(10, 0, rng), std::logic_error);
}

TEST(DisjointUnion, ComponentsAreSeparate) {
  const Graph a = cycle(3);
  const Graph b = cycle(4);
  const Graph u = disjoint_union(a, b);
  EXPECT_EQ(u.num_nodes(), 7U);
  EXPECT_EQ(u.num_edges(), 7U);
  EXPECT_FALSE(is_connected(u));
  const auto comps = connected_components(u);
  EXPECT_EQ(comps.count, 2U);
}

// Composite generators whose node count is a product or sum of inputs must
// refuse anything past the NodeId ceiling (2^31) instead of wrapping the
// 32-bit arithmetic into a silently-wrong small graph. The factors here are
// cheap (empty or tiny graphs); the guard fires before any edge is built.
TEST(GeneratorOverflow, ProductAndSumNodeCountsAreGuarded) {
  const Graph big = Graph::from_edges(NodeId{1} << 16, {});
  EXPECT_THROW((void)cartesian_product(big, big), std::logic_error);
  EXPECT_THROW((void)torus(NodeId{1} << 16, NodeId{1} << 16),
               std::logic_error);
  const auto half = static_cast<NodeId>((std::uint64_t{1} << 30) + 1);
  EXPECT_THROW((void)complete_bipartite(half, half), std::logic_error);
}

/// Property sweep: configuration model regularity over an (n, d) grid.
class ConfigModelParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConfigModelParam, RegularWithExactEdgeCount) {
  const auto [n, d] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + d));
  const Graph g = configuration_model(static_cast<NodeId>(n),
                                      static_cast<NodeId>(d), rng);
  EXPECT_EQ(g.regular_degree(),
            std::optional<NodeId>{static_cast<NodeId>(d)});
  EXPECT_EQ(g.num_edges(), static_cast<Count>(n) * d / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigModelParam,
    ::testing::Values(std::tuple{4, 2}, std::tuple{10, 3}, std::tuple{16, 4},
                      std::tuple{64, 6}, std::tuple{128, 8},
                      std::tuple{256, 16}, std::tuple{512, 3},
                      std::tuple{1024, 12}));

/// Property sweep: simple sampler produces simple regular connected graphs.
class SimpleRegularParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SimpleRegularParam, SimpleRegularConnected) {
  const auto [n, d] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 7919 + d));
  const Graph g = random_regular_simple(static_cast<NodeId>(n),
                                        static_cast<NodeId>(d), rng);
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(g.regular_degree(),
            std::optional<NodeId>{static_cast<NodeId>(d)});
  if (d >= 3) {
    EXPECT_TRUE(is_connected(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimpleRegularParam,
    ::testing::Values(std::tuple{16, 3}, std::tuple{50, 4}, std::tuple{64, 8},
                      std::tuple{200, 5}, std::tuple{256, 10},
                      std::tuple{500, 6}, std::tuple{1024, 16}));

}  // namespace
}  // namespace rrb
