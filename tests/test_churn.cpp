#include "rrb/p2p/churn.hpp"

#include <gtest/gtest.h>

#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"

namespace rrb {
namespace {

TEST(Churn, JoinRateIsHonouredInExpectation) {
  Rng rng(1);
  DynamicOverlay overlay(4096, 256, 6, rng);
  ChurnConfig cfg;
  cfg.joins_per_round = 2.5;
  ChurnDriver driver(overlay, cfg, rng);
  for (Round t = 1; t <= 400; ++t) driver.apply(t);
  // 400 rounds * 2.5 expected = 1000; binomial noise is ~ sqrt(1000).
  EXPECT_NEAR(static_cast<double>(driver.total_joins()), 1000.0, 120.0);
  EXPECT_EQ(driver.total_leaves(), 0U);
}

TEST(Churn, LeaveRateIsHonouredInExpectation) {
  Rng rng(2);
  DynamicOverlay overlay(4096, 2048, 6, rng);
  ChurnConfig cfg;
  cfg.leaves_per_round = 1.5;
  ChurnDriver driver(overlay, cfg, rng);
  for (Round t = 1; t <= 400; ++t) driver.apply(t);
  EXPECT_NEAR(static_cast<double>(driver.total_leaves()), 600.0, 100.0);
}

TEST(Churn, MinAliveFloorsDepartures) {
  Rng rng(3);
  DynamicOverlay overlay(64, 32, 4, rng);
  ChurnConfig cfg;
  cfg.leaves_per_round = 10.0;
  cfg.min_alive = 16;
  ChurnDriver driver(overlay, cfg, rng);
  for (Round t = 1; t <= 50; ++t) driver.apply(t);
  EXPECT_GE(overlay.num_alive(), 16U);
}

TEST(Churn, BalancedChurnKeepsSizeStable) {
  Rng rng(4);
  DynamicOverlay overlay(1024, 512, 6, rng);
  ChurnConfig cfg;
  cfg.joins_per_round = 2.0;
  cfg.leaves_per_round = 2.0;
  cfg.switches_per_round = 4;
  ChurnDriver driver(overlay, cfg, rng);
  for (Round t = 1; t <= 300; ++t) driver.apply(t);
  overlay.check_invariants();
  EXPECT_NEAR(static_cast<double>(overlay.num_alive()), 512.0, 150.0);
}

TEST(Churn, BroadcastSurvivesChurnAsEngineHook) {
  // The headline robustness scenario: the four-choice broadcast keeps its
  // guarantees while nodes join and leave between rounds.
  Rng rng(5);
  DynamicOverlay overlay(3000, 2048, 8, rng);
  ChurnConfig ccfg;
  ccfg.joins_per_round = 1.0;
  ccfg.leaves_per_round = 1.0;
  ccfg.switches_per_round = 2;
  ChurnDriver driver(overlay, ccfg, rng);

  FourChoiceConfig fc;
  fc.n_estimate = 2048;
  fc.alpha = 2.0;
  FourChoiceBroadcast alg(fc);

  ChannelConfig chan;
  chan.num_choices = 4;
  PhoneCallEngine<DynamicOverlay> engine(overlay, chan, rng);
  attach_churn(engine, driver);
  const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
  EXPECT_GT(driver.total_joins(), 0U);
  EXPECT_GT(driver.total_leaves(), 0U);
  // The only nodes allowed to miss the message are joiners that arrived too
  // late in the schedule to be reached (after the pull round).
  const double coverage = static_cast<double>(r.final_informed) /
                          static_cast<double>(r.alive_at_end);
  EXPECT_GT(coverage, 0.97);
  const Count uninformed = r.alive_at_end - r.final_informed;
  EXPECT_LE(uninformed, driver.total_joins());
}

TEST(Churn, ReusedSlotsDoNotInheritInformedStatus) {
  // Regression: a joiner reusing a departed peer's slot must start
  // uninformed. We churn hard at zero capacity headroom (every join reuses
  // a freed slot) during a silent protocol — nobody can learn anything, so
  // final_informed must remain exactly 1 (the source) or 0 if the source
  // itself departed.
  class Silent final : public BroadcastProtocol {
   public:
    Action action(NodeId, const NodeLocalState&, Round) override {
      return Action::kNone;
    }
    bool finished(Round, Count, Count) const override { return false; }
    const char* name() const override { return "silent"; }
  };

  Rng rng(7);
  DynamicOverlay overlay(64, 64, 4, rng);  // zero headroom: joins reuse slots
  ChurnConfig cfg;
  cfg.joins_per_round = 4.0;
  cfg.leaves_per_round = 4.0;
  cfg.min_alive = 16;
  ChurnDriver driver(overlay, cfg, rng);

  Silent silent;
  PhoneCallEngine<DynamicOverlay> engine(overlay, ChannelConfig{}, rng);
  attach_churn(engine, driver);
  RunLimits limits;
  limits.max_rounds = 60;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  EXPECT_GT(driver.total_joins(), 40U);  // plenty of slot reuse happened
  EXPECT_LE(r.final_informed, 1U);
}

TEST(Churn, TotalDeathIsNotCompletion) {
  // Regression: all_informed was `final_informed >= alive_at_end`, so a
  // churn burst that killed every node (alive_at_end == 0) reported a
  // vacuously "complete" broadcast with zero informed nodes, polluting
  // completion_rate/completion_round statistics downstream. A wiped-out
  // run must report failure.
  Rng rng(11);
  DynamicOverlay overlay(32, 16, 4, rng);
  PushProtocol push;
  PhoneCallEngine<DynamicOverlay> engine(overlay, ChannelConfig{}, rng);
  engine.set_round_hook([&](Round) {
    while (overlay.num_alive() > 0) {
      const NodeId v = overlay.random_alive(rng);
      if (overlay.leave(v, rng)) engine.notify_node_died(v);
    }
  });
  RunLimits limits;
  limits.max_rounds = 10;
  const RunResult r = engine.run(push, NodeId{0}, limits);
  EXPECT_EQ(r.alive_at_end, 0U);
  EXPECT_EQ(r.final_informed, 0U);
  EXPECT_FALSE(r.all_informed);
  EXPECT_EQ(r.completion_round, kNever);
}

TEST(Churn, ZeroRatesDoNothing) {
  Rng rng(6);
  DynamicOverlay overlay(64, 32, 4, rng);
  ChurnDriver driver(overlay, ChurnConfig{}, rng);
  for (Round t = 1; t <= 100; ++t) driver.apply(t);
  EXPECT_EQ(driver.total_joins(), 0U);
  EXPECT_EQ(driver.total_leaves(), 0U);
  EXPECT_EQ(overlay.num_alive(), 32U);
}

}  // namespace
}  // namespace rrb
