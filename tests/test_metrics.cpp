#include "rrb/metrics/observers.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/metrics/registry.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"

/// The metric-observer suite: per-observer units, ObserverSet composition
/// laws, and — the load-bearing part — the read-only guarantee: attaching
/// the full observer stack leaves every scheme's draws and RunResult
/// bit-identical to a bare run, at worker threads 1 and 4. The bare runs
/// themselves are frozen by tests/test_golden_results.cpp, so equality
/// here chains the instrumented paths to the recorded goldens.

namespace rrb {
namespace {

Graph golden_graph() {
  Rng grng(0xfeed);
  return random_regular_simple(512, 8, grng);
}

void expect_run_eq(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.pull_tx, b.pull_tx);
  EXPECT_EQ(a.channels_opened, b.channels_opened);
  EXPECT_EQ(a.channels_failed, b.channels_failed);
  EXPECT_EQ(a.final_informed, b.final_informed);
  EXPECT_EQ(a.alive_at_end, b.alive_at_end);
  EXPECT_EQ(a.all_informed, b.all_informed);
}

void expect_summary_eq(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.count, b.count);
}

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    expect_run_eq(a.runs[i], b.runs[i]);
  }
  expect_summary_eq(a.rounds, b.rounds);
  expect_summary_eq(a.completion_round, b.completion_round);
  expect_summary_eq(a.total_tx, b.total_tx);
  expect_summary_eq(a.tx_per_node, b.tx_per_node);
  expect_summary_eq(a.push_tx, b.push_tx);
  expect_summary_eq(a.pull_tx, b.pull_tx);
  expect_summary_eq(a.coverage, b.coverage);
  EXPECT_EQ(a.completion_rate, b.completion_rate);
}

/// Every observer that needs no external topology state, composed.
using FreeStack =
    ObserverSet<RunSummaryObserver, RoundStatsObserver, SetSizeObserver,
                TxHistogramObserver, InformedLatencyObserver>;

// ---- The read-only guarantee (golden bit-identity) -------------------------

TEST(MetricsGolden, FullStackLeavesBroadcastBitIdenticalForAllSchemes) {
  const Graph g = golden_graph();
  const EdgeIdMap map = build_edge_id_map(g);
  for (const BroadcastScheme scheme : kAllSchemes) {
    for (const double failure : {0.0, 0.1}) {
      BroadcastOptions opt;
      opt.scheme = scheme;
      opt.seed = 0x5eed01;
      opt.failure_prob = failure;
      const RunResult bare = broadcast(g, 7, opt);

      ObserverSet stack(RunSummaryObserver{}, RoundStatsObserver{},
                        SetSizeObserver{}, HSetObserver(&g),
                        EdgeUsageObserver(&g, &map), TxHistogramObserver{},
                        InformedLatencyObserver{});
      const RunResult observed = broadcast(g, 7, opt, stack);
      SCOPED_TRACE(std::string(scheme_name(scheme)) + " fp=" +
                   std::to_string(failure));
      expect_run_eq(observed, bare);
    }
  }
}

TEST(MetricsGolden, FullStackLeavesBroadcastTrialsBitIdenticalThreads1And4) {
  const Graph g = golden_graph();
  for (const BroadcastScheme scheme : kAllSchemes) {
    BroadcastOptions opt;
    opt.scheme = scheme;
    opt.seed = 0x5eed02;
    opt.trials = 4;
    opt.runner.threads = 1;
    const TrialOutcome bare = broadcast_trials(g, opt);
    for (const int threads : {1, 4}) {
      BroadcastOptions observed_opt = opt;
      observed_opt.runner.threads = threads;
      const ObservedOutcome<FreeStack> observed = broadcast_trials(
          g, observed_opt, [](const Graph&) { return FreeStack{}; });
      SCOPED_TRACE(std::string(scheme_name(scheme)) + " threads=" +
                   std::to_string(threads));
      expect_outcome_eq(observed.outcome, bare);
      ASSERT_EQ(observed.observers.size(), 4U);
      // The per-trial observers agree with their trial's RunResult — and
      // arrive in trial order whatever the schedule was.
      for (std::size_t trial = 0; trial < observed.observers.size(); ++trial) {
        const FreeStack& stack = observed.observers[trial];
        expect_run_eq(stack.get<RunSummaryObserver>().result(),
                      bare.runs[trial]);
      }
    }
  }
}

TEST(MetricsGolden, ObservedRunTrialsMatchesBareThreads1And4) {
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kFourChoice;
  opt.n_estimate = 256;
  TrialConfig config;
  config.trials = 3;
  config.seed = 0x5eed03;
  {
    Rng probe(1);
    const Graph g0 = random_regular_simple(256, 8, probe);
    config.channel = make_scheme(g0, opt).channel;
  }
  const GraphFactory gf = [](Rng& rng) {
    return random_regular_simple(256, 8, rng);
  };
  const ProtocolFactory pf = [opt](const Graph& g) {
    return make_scheme(g, opt).protocol;
  };
  config.runner.threads = 1;
  const TrialOutcome bare = run_trials(gf, pf, config);
  for (const int threads : {1, 4}) {
    TrialConfig observed_config = config;
    observed_config.runner.threads = threads;
    const ObservedOutcome<FreeStack> observed = run_trials(
        gf, pf, observed_config, [](const Graph&) { return FreeStack{}; });
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_outcome_eq(observed.outcome, bare);
    ASSERT_EQ(observed.observers.size(), 3U);
    for (std::size_t trial = 0; trial < 3; ++trial)
      expect_run_eq(observed.observers[trial].get<RunSummaryObserver>().result(),
                    bare.runs[trial]);
  }
}

// ---- trace_set_sizes parity with the pre-observer engine path --------------

/// Values captured from the pre-redesign build (engine-side
/// set_round_observer + enable_edge_usage_tracking) for this exact
/// configuration. The observer-based trace must reproduce them to the bit:
/// the redesign moved the measurement, not the numbers.
TEST(MetricsGolden, TraceSetSizesMatchesPreObserverValues) {
  TraceConfig cfg;
  cfg.trials = 3;
  cfg.seed = 0x77ace;
  cfg.track_h_sets = true;
  cfg.track_edge_usage = true;
  cfg.channel.num_choices = 4;
  const NodeId n = 512;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
      [n](const Graph&) {
        FourChoiceConfig fc;
        fc.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  ASSERT_EQ(trace.size(), 33U);

  struct Golden {
    std::size_t index;
    Round t;
    double informed, newly, uninformed, h1, h4, h5, unused;
  };
  const Golden goldens[] = {
      {0, 1, 5, 4, 507, 507, 507, 507, 512},
      {2, 3, 65.333333333333329, 46.666666666666664, 446.66666666666663,
       446.66666666666663, 446.66666666666663, 445.33333333333331, 512},
      {5, 6, 499.66666666666663, 104.33333333333333, 12.333333333333332,
       2.333333333333333, 0, 0, 501},
      {32, 33, 512, 0, 0, 0, 0, 0, 1.3333333333333333},
  };
  for (const Golden& golden : goldens) {
    SCOPED_TRACE("round index " + std::to_string(golden.index));
    const SetTracePoint& p = trace[golden.index];
    EXPECT_EQ(p.t, golden.t);
    EXPECT_EQ(p.informed, golden.informed);
    EXPECT_EQ(p.newly_informed, golden.newly);
    EXPECT_EQ(p.uninformed, golden.uninformed);
    EXPECT_EQ(p.h1, golden.h1);
    EXPECT_EQ(p.h4, golden.h4);
    EXPECT_EQ(p.h5, golden.h5);
    EXPECT_EQ(p.unused_edge_nodes, golden.unused);
  }
}

// ---- Per-observer units ----------------------------------------------------

TEST(RunSummary, ReproducesEngineRunResultForEveryScheme) {
  const Graph g = golden_graph();
  for (const BroadcastScheme scheme : kAllSchemes) {
    BroadcastOptions opt;
    opt.scheme = scheme;
    opt.seed = 0xab5e;
    RunSummaryObserver summary;
    const RunResult r = broadcast(g, 3, opt, summary);
    SCOPED_TRACE(scheme_name(scheme));
    // The observer re-derives the run from the hook stream alone
    // (on_run_end's result parameter is deliberately ignored).
    expect_run_eq(summary.result(), r);
  }
}

TEST(RoundStatsObs, MatchesRecordRoundsExactly) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  opt.seed = 0xab5e;
  opt.record_rounds = true;
  RoundStatsObserver per_round;
  const RunResult r = broadcast(g, 3, opt, per_round);
  ASSERT_EQ(per_round.rounds().size(), r.per_round.size());
  for (std::size_t i = 0; i < r.per_round.size(); ++i) {
    const RoundStats& a = per_round.rounds()[i];
    const RoundStats& b = r.per_round[i];
    EXPECT_EQ(a.t, b.t);
    EXPECT_EQ(a.informed, b.informed);
    EXPECT_EQ(a.newly_informed, b.newly_informed);
    EXPECT_EQ(a.push_tx, b.push_tx);
    EXPECT_EQ(a.pull_tx, b.pull_tx);
    EXPECT_EQ(a.channels_opened, b.channels_opened);
    EXPECT_EQ(a.channels_failed, b.channels_failed);
    EXPECT_EQ(a.transmitting_nodes, b.transmitting_nodes);
  }
}

TEST(SetSizes, PartitionsNAndSumsNewlyInformed) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPush;
  opt.seed = 0xab5e;
  SetSizeObserver sizes;
  const RunResult r = broadcast(g, 3, opt, sizes);
  ASSERT_EQ(sizes.points().size(), static_cast<std::size_t>(r.rounds));
  Count last = 1;
  Count newly_sum = 0;
  for (const SetSizeObserver::Point& p : sizes.points()) {
    EXPECT_EQ(p.informed + p.uninformed, 512U);
    EXPECT_GE(p.informed, last);
    EXPECT_EQ(p.newly_informed, p.informed - last);
    newly_sum += p.newly_informed;
    last = p.informed;
  }
  EXPECT_EQ(newly_sum + 1, r.final_informed);  // +1: the source
}

TEST(HSets, CountsUninformedNeighbourhoodsOnAKnownGraph) {
  // Silent protocol: nobody transmits, so H(t) stays {1..5} on cycle(6)
  // with source 0 — every uninformed node has >= 1 uninformed neighbour,
  // none has >= 4 (cycle degree is 2).
  struct Silent {
    [[nodiscard]] Action action(NodeId, const NodeLocalState&, Round) {
      return Action::kNone;
    }
    [[nodiscard]] bool finished(Round, Count, Count) const { return false; }
    [[nodiscard]] const char* name() const { return "silent"; }
  };
  const Graph g = cycle(6);
  GraphTopology topo(g);
  Rng rng(5);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  HSetObserver hsets(&g);
  Silent silent;
  RunLimits limits;
  limits.max_rounds = 3;
  (void)engine.run(silent, NodeId{0}, limits, hsets);
  ASSERT_EQ(hsets.points().size(), 3U);
  for (const HSetObserver::Point& p : hsets.points()) {
    EXPECT_EQ(p.h1, 5U);
    EXPECT_EQ(p.h4, 0U);
    EXPECT_EQ(p.h5, 0U);
  }
}

TEST(HSets, DisabledObserverRecordsNothing) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.seed = 0xab5e;
  HSetObserver disabled(nullptr);
  (void)broadcast(g, 3, opt, disabled);
  EXPECT_FALSE(disabled.enabled());
  EXPECT_TRUE(disabled.points().empty());
}

TEST(EdgeUsage, BitmapAndPerRoundUnusedCounts) {
  const Graph g = golden_graph();
  const EdgeIdMap map = build_edge_id_map(g);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  opt.seed = 0xab5e;
  EdgeUsageObserver usage(&g, &map, /*record_per_round=*/true);
  const RunResult r = broadcast(g, 3, opt, usage);
  ASSERT_EQ(usage.used().size(), map.num_edges);
  ASSERT_EQ(usage.unused_edge_nodes_per_round().size(),
            static_cast<std::size_t>(r.rounds));
  // |U(t)| only shrinks, and some edge carried the message.
  Count last = 512;
  Count used_edges = 0;
  for (const Count u : usage.unused_edge_nodes_per_round()) {
    EXPECT_LE(u, last);
    last = u;
  }
  for (const std::uint8_t used : usage.used()) used_edges += used;
  EXPECT_GT(used_edges, 0U);
  EXPECT_LE(used_edges, map.num_edges);
}

TEST(TxHistogram, SendCountsSumToTotalTransmissions) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  opt.seed = 0xab5e;
  TxHistogramObserver hist;
  const RunResult r = broadcast(g, 3, opt, hist);
  Count sum = 0;
  for (const Count c : hist.sends()) sum += c;
  EXPECT_EQ(sum, r.total_tx());
  const QuantileSummary digest = hist.summarise();
  EXPECT_EQ(digest.count, 512U);
  EXPECT_LE(digest.p50, digest.p90);
  EXPECT_LE(digest.p90, digest.p99);
  EXPECT_LE(digest.p99, digest.max);
  EXPECT_EQ(digest.mean * 512.0, static_cast<double>(sum));
}

TEST(InformedLatency, MatchesInformedAtDistribution) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPush;
  opt.seed = 0xab5e;
  InformedLatencyObserver latency;
  const RunResult r = broadcast(g, 3, opt, latency);
  EXPECT_EQ(latency.latencies().size(),
            static_cast<std::size_t>(r.final_informed));
  EXPECT_EQ(latency.informed_fraction(),
            static_cast<double>(r.final_informed) / 512.0);
  // Sorted, starts at the source's 0, ends within the executed rounds.
  ASSERT_FALSE(latency.latencies().empty());
  EXPECT_EQ(latency.latencies().front(), 0.0);
  EXPECT_LE(latency.latencies().back(), static_cast<double>(r.rounds));
  const QuantileSummary digest = latency.summarise();
  EXPECT_EQ(digest.max, latency.latencies().back());
}

TEST(Quantiles, SummariseValuesIsDeterministicAndOrderFree) {
  std::vector<double> a = {3, 1, 2, 5, 4};
  std::vector<double> b = {5, 4, 3, 2, 1};
  const QuantileSummary da = summarise_values(std::move(a));
  const QuantileSummary db = summarise_values(std::move(b));
  EXPECT_EQ(da.mean, db.mean);
  EXPECT_EQ(da.p50, db.p50);
  EXPECT_EQ(da.max, 5.0);
  EXPECT_EQ(da.p50, 3.0);
  const QuantileSummary empty = summarise_values({});
  EXPECT_EQ(empty.count, 0U);
  EXPECT_EQ(empty.max, 0.0);
}

// ---- ObserverSet composition laws ------------------------------------------

TEST(ObserverSetLaws, CompositionOrderDoesNotChangeAnyObserver) {
  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kFourChoice;
  opt.seed = 0xab5e;

  ObserverSet ab(SetSizeObserver{}, TxHistogramObserver{});
  ObserverSet ba(TxHistogramObserver{}, SetSizeObserver{});
  const RunResult ra = broadcast(g, 3, opt, ab);
  const RunResult rb = broadcast(g, 3, opt, ba);
  expect_run_eq(ra, rb);

  const auto& sizes_ab = ab.get<SetSizeObserver>().points();
  const auto& sizes_ba = ba.get<SetSizeObserver>().points();
  ASSERT_EQ(sizes_ab.size(), sizes_ba.size());
  for (std::size_t i = 0; i < sizes_ab.size(); ++i) {
    EXPECT_EQ(sizes_ab[i].informed, sizes_ba[i].informed);
    EXPECT_EQ(sizes_ab[i].newly_informed, sizes_ba[i].newly_informed);
  }
  EXPECT_EQ(ab.get<TxHistogramObserver>().sends(),
            ba.get<TxHistogramObserver>().sends());
}

TEST(ObserverSetLaws, SetExposesExactlyTheUnionOfMemberHooks) {
  // A set of transmission-only observers must not declare round hooks —
  // composition never widens the instrumented surface.
  using TxOnly = ObserverSet<TxHistogramObserver>;
  static_assert(detail::HasOnTransmission<TxOnly>);
  static_assert(detail::HasOnRunBegin<TxOnly>);
  static_assert(!detail::HasOnRoundEnd<TxOnly>);
  static_assert(!detail::HasOnRoundBegin<TxOnly>);
  static_assert(!detail::HasOnNodeInformed<TxOnly>);

  using LatencyOnly = ObserverSet<InformedLatencyObserver>;
  static_assert(detail::HasOnRunEnd<LatencyOnly>);
  static_assert(!detail::HasOnTransmission<LatencyOnly>);
  static_assert(!detail::HasOnRunBegin<LatencyOnly>);

  // The empty set has no hooks at all: attaching it is the bare engine.
  using Empty = ObserverSet<>;
  static_assert(!detail::HasOnRunBegin<Empty>);
  static_assert(!detail::HasOnTransmission<Empty>);
  static_assert(!detail::HasOnRoundEnd<Empty>);
  static_assert(!detail::HasOnRunEnd<Empty>);

  static_assert(MetricObserver<FreeStack>);
  static_assert(MetricObserver<MetricStack>);
  SUCCEED();
}

// ---- Registry --------------------------------------------------------------

TEST(Registry, NamesRoundTripAndSummariseTheStack) {
  for (const MetricKind kind : kAllMetrics)
    EXPECT_EQ(parse_metric(metric_name(kind)), kind);
  EXPECT_FALSE(parse_metric("warp-speed").has_value());

  const Graph g = golden_graph();
  BroadcastOptions opt;
  opt.seed = 0xab5e;
  MetricStack stack;
  const RunResult r = broadcast(g, 3, opt, stack);
  const QuantileSummary tx = metric_summary(stack, MetricKind::kTxHistogram);
  const QuantileSummary latency =
      metric_summary(stack, MetricKind::kInformedLatency);
  EXPECT_EQ(tx.count, 512U);
  EXPECT_EQ(latency.count, static_cast<std::size_t>(r.final_informed));
  EXPECT_EQ(std::string(metric_column_prefix(MetricKind::kTxHistogram)),
            "tx_node");
  EXPECT_EQ(std::string(metric_column_prefix(MetricKind::kInformedLatency)),
            "latency");
}

}  // namespace
}  // namespace rrb
