#include "rrb/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rrb {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table(std::vector<std::string>{}), std::logic_error);
}

TEST(Table, RendersHeadersAndRows) {
  Table t({"n", "rounds"});
  t.begin_row();
  t.add(std::uint64_t{1024});
  t.add(17.5, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("rounds"), std::string::npos);
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("17.5"), std::string::npos);
}

TEST(Table, AddWithoutRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  t.begin_row();
  t.add("x");
  EXPECT_THROW(t.add("y"), std::logic_error);
}

TEST(Table, TitleAppearsInOutput) {
  Table t({"a"});
  t.set_title("My Experiment");
  EXPECT_NE(t.to_string().find("My Experiment"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"x", "y"});
  t.begin_row();
  t.add(1);
  t.add(2);
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"v"});
  t.begin_row();
  t.add(std::string("a,b\"c"));
  EXPECT_EQ(t.to_csv(), "v\n\"a,b\"\"c\"\n");
}

TEST(Table, NumRowsCountsRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0U);
  t.begin_row();
  t.add("1");
  t.begin_row();
  t.add("2");
  EXPECT_EQ(t.num_rows(), 2U);
}

TEST(Table, StreamOperatorMatchesToString) {
  Table t({"a"});
  t.begin_row();
  t.add("z");
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Table, DoublePrecisionIsHonoured) {
  Table t({"v"});
  t.begin_row();
  t.add(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, ShortRowsRenderWithoutCrashing) {
  Table t({"a", "b", "c"});
  t.begin_row();
  t.add("only-one");
  EXPECT_NO_THROW((void)t.to_string());
  EXPECT_NO_THROW((void)t.to_csv());
}

}  // namespace
}  // namespace rrb
