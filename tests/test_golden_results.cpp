#include <gtest/gtest.h>

#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/sim/trial.hpp"

/// Golden-results determinism suite. Every value below was captured from
/// the engine BEFORE the devirtualisation refactor (PR 3) and must stay
/// byte-identical forever: downstream experiments cite these numbers, and
/// the seeding contract in ROADMAP.md promises that (seed, parameters)
/// pins an exact output. A mismatch means an engine change reordered RNG
/// draws or altered the round loop's arithmetic — fix the change, never
/// the goldens (recapture only for a deliberate, documented break).
///
/// Coverage: broadcast() for all eight BroadcastSchemes with and without
/// channel failures, broadcast_trials() and run_trials() for all eight
/// schemes with worker threads 1 and 4 (the parallel runner must be
/// schedule-invariant), and static-vs-adapter dispatch equivalence.

namespace rrb {
namespace {

Graph golden_graph() {
  Rng grng(0xfeed);
  return random_regular_simple(512, 8, grng);
}

struct SingleGolden {
  BroadcastScheme scheme;
  double failure_prob;
  Round rounds;
  Round completion_round;
  Count push_tx;
  Count pull_tx;
  Count channels_opened;
  Count channels_failed;
  Count final_informed;
};

constexpr SingleGolden kSingles[] = {
    {BroadcastScheme::kPush, 0.0, 18, 18, 3569ULL, 0ULL, 9216ULL, 0ULL, 512ULL},
    {BroadcastScheme::kPush, 0.1, 20, 20, 3989ULL, 0ULL, 10240ULL, 987ULL, 512ULL},
    {BroadcastScheme::kPull, 0.0, 14, 14, 0ULL, 2303ULL, 7168ULL, 0ULL, 512ULL},
    {BroadcastScheme::kPull, 0.1, 16, 16, 0ULL, 2346ULL, 8192ULL, 796ULL, 512ULL},
    {BroadcastScheme::kPushPull, 0.0, 9, 9, 1354ULL, 1355ULL, 4608ULL, 0ULL, 512ULL},
    {BroadcastScheme::kPushPull, 0.1, 11, 11, 1852ULL, 1883ULL, 5632ULL, 566ULL, 512ULL},
    {BroadcastScheme::kFixedHorizonPush, 0.0, 34, 18, 11761ULL, 0ULL, 17408ULL, 0ULL, 512ULL},
    {BroadcastScheme::kFixedHorizonPush, 0.1, 34, 20, 10476ULL, 0ULL, 17408ULL, 1668ULL, 512ULL},
    {BroadcastScheme::kMedianCounter, 0.0, 55, 9, 5720ULL, 5700ULL, 28160ULL, 0ULL, 512ULL},
    {BroadcastScheme::kMedianCounter, 0.1, 55, 11, 5379ULL, 5418ULL, 28160ULL, 2696ULL, 512ULL},
    {BroadcastScheme::kThrottledPushPull, 0.0, 23, 9, 6656ULL, 6641ULL, 11776ULL, 0ULL, 512ULL},
    {BroadcastScheme::kThrottledPushPull, 0.1, 25, 11, 6034ULL, 6072ULL, 12800ULL, 1217ULL, 512ULL},
    {BroadcastScheme::kFourChoice, 0.0, 33, 15, 12264ULL, 2048ULL, 67584ULL, 0ULL, 512ULL},
    {BroadcastScheme::kFourChoice, 0.1, 33, 15, 10979ULL, 1828ULL, 67584ULL, 6789ULL, 512ULL},
    {BroadcastScheme::kSequentialised, 0.0, 132, 57, 12283ULL, 2048ULL, 67584ULL, 0ULL, 512ULL},
    {BroadcastScheme::kSequentialised, 0.1, 132, 59, 10968ULL, 1855ULL, 67584ULL, 6771ULL, 512ULL},
};

TEST(GoldenResults, BroadcastSinglesAreBitIdentical) {
  const Graph g = golden_graph();
  for (const SingleGolden& golden : kSingles) {
    BroadcastOptions opt;
    opt.scheme = golden.scheme;
    opt.seed = 0x5eed01;
    opt.failure_prob = golden.failure_prob;
    const RunResult r = broadcast(g, 7, opt);
    SCOPED_TRACE(std::string(scheme_name(golden.scheme)) + " fp=" +
                 std::to_string(golden.failure_prob));
    EXPECT_EQ(r.rounds, golden.rounds);
    EXPECT_EQ(r.completion_round, golden.completion_round);
    EXPECT_EQ(r.push_tx, golden.push_tx);
    EXPECT_EQ(r.pull_tx, golden.pull_tx);
    EXPECT_EQ(r.channels_opened, golden.channels_opened);
    EXPECT_EQ(r.channels_failed, golden.channels_failed);
    EXPECT_EQ(r.final_informed, golden.final_informed);
  }
}

struct TrialsGolden {
  BroadcastScheme scheme;
  double rounds_mean;
  double total_tx_mean;
  double tx_per_node_mean;
  double completion_rate;
  Count run0_push;
  Count run3_pull;
};

constexpr TrialsGolden kBroadcastTrials[] = {
    {BroadcastScheme::kPush, 18.5, 4133.5, 8.0732421875, 1, 4503ULL, 0ULL},
    {BroadcastScheme::kPull, 14.25, 2432.75, 4.75146484375, 1, 0ULL, 2606ULL},
    {BroadcastScheme::kPushPull, 9.25, 3070.25, 5.99658203125, 1, 1486ULL, 1698ULL},
    {BroadcastScheme::kFixedHorizonPush, 34, 12069.5, 23.5732421875, 1, 12183ULL, 0ULL},
    {BroadcastScheme::kMedianCounter, 55, 11500.75, 22.46240234375, 1, 5723ULL, 5718ULL},
    {BroadcastScheme::kThrottledPushPull, 23.25, 13334.5, 26.0439453125, 1, 6656ULL, 6688ULL},
    {BroadcastScheme::kFourChoice, 33, 14318, 27.96484375, 1, 12272ULL, 2048ULL},
    {BroadcastScheme::kSequentialised, 132, 14324, 27.9765625, 1, 12270ULL, 2048ULL},
};

TEST(GoldenResults, BroadcastTrialsAreBitIdenticalForThreads1And4) {
  const Graph g = golden_graph();
  for (const TrialsGolden& golden : kBroadcastTrials) {
    for (const int threads : {1, 4}) {
      BroadcastOptions opt;
      opt.scheme = golden.scheme;
      opt.seed = 0x5eed02;
      opt.trials = 4;
      opt.runner.threads = threads;
      const TrialOutcome out = broadcast_trials(g, opt);
      SCOPED_TRACE(std::string(scheme_name(golden.scheme)) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(out.rounds.mean, golden.rounds_mean);
      EXPECT_EQ(out.total_tx.mean, golden.total_tx_mean);
      EXPECT_EQ(out.tx_per_node.mean, golden.tx_per_node_mean);
      EXPECT_EQ(out.completion_rate, golden.completion_rate);
      ASSERT_EQ(out.runs.size(), 4U);
      EXPECT_EQ(out.runs[0].push_tx, golden.run0_push);
      EXPECT_EQ(out.runs[3].pull_tx, golden.run3_pull);
    }
  }
}

struct RunTrialsGolden {
  BroadcastScheme scheme;
  double rounds_mean;
  double total_tx_mean;
  double completion_rate;
  Round run2_rounds;
};

constexpr RunTrialsGolden kRunTrials[] = {
    {BroadcastScheme::kPush, 15.333333333333334, 1641.3333333333333, 1, 15},
    {BroadcastScheme::kPull, 13, 898, 1, 13},
    {BroadcastScheme::kPushPull, 8.6666666666666661, 1473, 1, 9},
    {BroadcastScheme::kFixedHorizonPush, 31, 5652, 1, 31},
    {BroadcastScheme::kMedianCounter, 49, 4648.666666666667, 1, 49},
    {BroadcastScheme::kThrottledPushPull, 21.666666666666668, 6136, 1, 22},
    {BroadcastScheme::kFourChoice, 29, 7154.666666666667, 1, 29},
    {BroadcastScheme::kSequentialised, 116, 7159.333333333333, 1, 116},
};

TEST(GoldenResults, RunTrialsViaSchemeFactoriesAreBitIdentical) {
  // run_trials() is the type-erased path (ProtocolFactory hands the engine
  // a BroadcastProtocol&): its goldens prove the virtual adapter produces
  // the very same draws as the statically-dispatched facade paths.
  for (const RunTrialsGolden& golden : kRunTrials) {
    BroadcastOptions opt;
    opt.scheme = golden.scheme;
    opt.n_estimate = 256;
    for (const int threads : {1, 4}) {
      TrialConfig config;
      config.trials = 3;
      config.seed = 0x5eed03;
      config.runner.threads = threads;
      {
        Rng probe(1);
        const Graph g0 = random_regular_simple(256, 8, probe);
        config.channel = make_scheme(g0, opt).channel;
      }
      const GraphFactory gf = [](Rng& rng) {
        return random_regular_simple(256, 8, rng);
      };
      const ProtocolFactory pf = [opt](const Graph& g) {
        return make_scheme(g, opt).protocol;
      };
      const TrialOutcome out = run_trials(gf, pf, config);
      SCOPED_TRACE(std::string(scheme_name(golden.scheme)) + " threads=" +
                   std::to_string(threads));
      EXPECT_EQ(out.rounds.mean, golden.rounds_mean);
      EXPECT_EQ(out.total_tx.mean, golden.total_tx_mean);
      EXPECT_EQ(out.completion_rate, golden.completion_rate);
      ASSERT_EQ(out.runs.size(), 3U);
      EXPECT_EQ(out.runs[2].rounds, golden.run2_rounds);
    }
  }
}

TEST(GoldenResults, StaticAndAdapterDispatchAreInterchangeable) {
  // Composing the engine by hand with make_scheme's virtual adapter must
  // reproduce broadcast()'s statically-dispatched result exactly — the
  // devirtualisation is a pure dispatch change, not a behavioural one.
  const Graph g = golden_graph();
  for (const SingleGolden& golden : kSingles) {
    BroadcastOptions opt;
    opt.scheme = golden.scheme;
    opt.seed = 0x5eed01;
    opt.failure_prob = golden.failure_prob;

    SchemeParts parts = make_scheme(g, opt);
    Rng rng(opt.seed);
    GraphTopology topo(g);
    PhoneCallEngine<GraphTopology> engine(topo, parts.channel, rng);
    RunLimits limits;
    limits.max_rounds = opt.max_rounds;
    const RunResult r = engine.run(*parts.protocol, NodeId{7}, limits);

    SCOPED_TRACE(scheme_name(golden.scheme));
    EXPECT_EQ(r.rounds, golden.rounds);
    EXPECT_EQ(r.push_tx, golden.push_tx);
    EXPECT_EQ(r.pull_tx, golden.pull_tx);
    EXPECT_EQ(r.channels_failed, golden.channels_failed);
  }
}

TEST(GoldenResults, QuasirandomAndMemoryReachTheFacade) {
  // The Doerr–Friedrich–Sauerwald variant is reachable without composing
  // the engine by hand, and the memory override follows the same path.
  const Graph g = golden_graph();

  BroadcastOptions quasi;
  quasi.scheme = BroadcastScheme::kPush;
  quasi.seed = 0x5eed01;
  quasi.quasirandom = true;
  const RunResult r = broadcast(g, 7, quasi);
  EXPECT_EQ(r.final_informed, 512U);
  // Same seed, different channel rule: the draw sequence must diverge from
  // the sampled-channel golden.
  EXPECT_NE(r.push_tx, kSingles[0].push_tx);

  BroadcastOptions remember;
  remember.scheme = BroadcastScheme::kPush;
  remember.seed = 0x5eed01;
  remember.memory = 2;
  EXPECT_EQ(broadcast(g, 7, remember).final_informed, 512U);

  // Sequentialised keeps its canonical memory = 3 unless overridden, and
  // the engine rejects quasirandom combined with a memory window.
  BroadcastOptions conflicting;
  conflicting.scheme = BroadcastScheme::kSequentialised;
  conflicting.quasirandom = true;
  EXPECT_THROW((void)broadcast(g, 7, conflicting), std::logic_error);
  conflicting.memory = 0;  // explicit override lifts the conflict
  EXPECT_EQ(broadcast(g, 7, conflicting).final_informed, 512U);
}

}  // namespace
}  // namespace rrb
