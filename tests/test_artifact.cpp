#include "rrb/exp/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace rrb::exp {
namespace {

// ---- JSON escaping ---------------------------------------------------------

TEST(Artifact, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
  EXPECT_EQ(json_escape("UTF-8 § passthrough"), "UTF-8 § passthrough");
}

TEST(Artifact, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("a\bb\fc"), "a\\bb\\fc");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(Artifact, FormatDoubleIsRoundTripExactAndCompact) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-2.0), "-2");
  // 17 significant digits round-trip any double exactly.
  const double value = 0.1;
  EXPECT_EQ(std::strtod(format_double(value).c_str(), nullptr), value);
  // Non-finite values have no JSON literal.
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
}

// ---- JsonObject ------------------------------------------------------------

TEST(Artifact, JsonObjectWriteLineIsCanonical) {
  JsonObject object;
  object.set("name", "a\"b")
      .set("count", std::uint64_t{7})
      .set("ratio", 1.5)
      .set("ok", true);
  EXPECT_EQ(object.to_line(),
            "{\"name\": \"a\\\"b\", \"count\": 7, \"ratio\": 1.5, "
            "\"ok\": true}");
}

TEST(Artifact, JsonObjectPrettyWriteMatchesBenchLayout) {
  JsonObject object;
  object.set("a", 1).set("b", "x");
  std::ostringstream os;
  object.write(os, 2);
  EXPECT_EQ(os.str(), "{\n    \"a\": 1,\n    \"b\": \"x\"\n  }");
}

TEST(Artifact, JsonObjectLookups) {
  JsonObject object;
  object.set("name", "push").set("rounds", 12.5);
  EXPECT_EQ(object.find_plain("name"), "push");
  EXPECT_EQ(object.find_number("rounds"), 12.5);
  EXPECT_FALSE(object.find_plain("missing").has_value());
  EXPECT_FALSE(object.find_number("name").has_value());
}

// ---- Flat JSON parsing (campaign resume) -----------------------------------

TEST(Artifact, ParseFlatJsonRoundTripsByteIdentically) {
  JsonObject object;
  object.set("key", "scheme=push;n=256")
      .set("alpha", 1.5)
      .set("weird", "a\"b\\c\nd")
      .set("count", std::uint64_t{42})
      .set("ok", false);
  const std::string line = object.to_line();
  const auto parsed = parse_flat_json(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_line(), line);
  EXPECT_EQ(parsed->find_plain("key"), "scheme=push;n=256");
  EXPECT_EQ(parsed->find_plain("weird"), "a\"b\\c\nd");
  EXPECT_EQ(parsed->find_number("alpha"), 1.5);
}

TEST(Artifact, ParseFlatJsonPreservesNumberTokensVerbatim) {
  const auto parsed =
      parse_flat_json("{\"x\": 39.969999999999999, \"y\": 1e-3}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->to_line(), "{\"x\": 39.969999999999999, \"y\": 1e-3}");
}

TEST(Artifact, ParseFlatJsonRejectsMalformedInput) {
  EXPECT_FALSE(parse_flat_json("").has_value());
  EXPECT_FALSE(parse_flat_json("{").has_value());
  EXPECT_FALSE(parse_flat_json("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse_flat_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_flat_json("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(parse_flat_json("{\"a\": bogus}").has_value());
  // Nested containers are not flat.
  EXPECT_FALSE(parse_flat_json("{\"a\": {\"b\": 1}}").has_value());
  EXPECT_FALSE(parse_flat_json("{\"a\": [1, 2]}").has_value());
}

TEST(Artifact, ParseFlatJsonAcceptsEmptyObject) {
  const auto parsed = parse_flat_json("{}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

// ---- CSV -------------------------------------------------------------------

TEST(Artifact, CsvEscapeQuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(Artifact, CsvWriterEmitsHeaderAndAlignedRows) {
  CsvWriter csv({"key", "rounds", "coverage"});
  JsonObject static_cell;
  static_cell.set("key", "a,b").set("rounds", 12.5);
  JsonObject churn_cell;
  churn_cell.set("key", "c").set("coverage", 0.5).set("extra", 1);

  std::ostringstream os;
  csv.write_header(os);
  csv.write_row(os, static_cell);
  csv.write_row(os, churn_cell);
  EXPECT_EQ(os.str(),
            "key,rounds,coverage\n"
            "\"a,b\",12.5,\n"
            "c,,0.5\n");
}

// ---- Reports ---------------------------------------------------------------

TEST(Artifact, WriteReportLayout) {
  JsonObject meta;
  meta.set("bench", "t");
  JsonObject top;
  top.set("slope", 2.0);
  std::vector<JsonObject> rows(1);
  rows[0].set("n", 4);

  std::ostringstream os;
  write_report(os, meta, top, rows);
  EXPECT_EQ(os.str(),
            "{\n  \"meta\": {\n    \"bench\": \"t\"\n  },"
            "\n  \"top\": {\n    \"slope\": 2\n  },"
            "\n  \"rows\": [\n    {\n      \"n\": 4\n    }\n  ]\n}\n");
}

TEST(Artifact, BenchReportWritesToExplicitPath) {
  const std::string path = testing::TempDir() + "artifact_report.json";
  BenchReport report("unit", "rev123", 3);
  report.set("top_level", 1);
  report.row().set("case", "x");
  EXPECT_EQ(report.write_to(path), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(content.str().find("\"git\": \"rev123\""), std::string::npos);
  EXPECT_NE(content.str().find("\"threads\": 3"), std::string::npos);
  EXPECT_NE(content.str().find("\"case\": \"x\""), std::string::npos);
}

}  // namespace
}  // namespace rrb::exp
