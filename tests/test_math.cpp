#include "rrb/common/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rrb {
namespace {

TEST(LogN, MatchesStdLogForLargeN) {
  EXPECT_DOUBLE_EQ(log_n(1000), std::log(1000.0));
  EXPECT_DOUBLE_EQ(log_n(1 << 20), std::log(static_cast<double>(1 << 20)));
}

TEST(LogN, ClampedAtSmallN) {
  EXPECT_GT(log_n(1), 0.0);
  EXPECT_DOUBLE_EQ(log_n(1), std::log(2.0));
}

TEST(LogN, RejectsZero) { EXPECT_THROW((void)log_n(0), std::logic_error); }

TEST(LogLogN, PositiveEverywhere) {
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 4ULL, 16ULL, 1ULL << 30})
    EXPECT_GT(log_log_n(n), 0.0) << n;
}

TEST(LogLogN, MatchesCompositionForLargeN) {
  EXPECT_DOUBLE_EQ(log_log_n(1 << 20), std::log(std::log(1048576.0)));
}

TEST(CeilLog2, ExactOnPowersOfTwo) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(1024), 10);
}

TEST(CeilLog2, RoundsUpOffPowers) {
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(FloorLog2, ExactAndRoundsDown) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(floor_log2(2047), 10);
}

TEST(PowersOfTwo, Detection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1ULL << 40));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(6));
}

TEST(CeilDiv, BasicCases) {
  EXPECT_EQ(ceil_div(10, 5), 2U);
  EXPECT_EQ(ceil_div(11, 5), 3U);
  EXPECT_EQ(ceil_div(0, 5), 0U);
  EXPECT_THROW((void)ceil_div(1, 0), std::logic_error);
}

TEST(PushConstant, MatchesPaperFormula) {
  // C_d = 1/ln(2(1-1/d)) - 1/(d ln(1-1/d)); spot check d = 8.
  const double expected =
      1.0 / std::log(2.0 * (1.0 - 1.0 / 8.0)) -
      1.0 / (8.0 * std::log(1.0 - 1.0 / 8.0));
  EXPECT_DOUBLE_EQ(push_constant_cd(8), expected);
}

TEST(PushConstant, DecreasesTowardsCompleteGraphLimit) {
  // As d grows, C_d approaches 1/ln 2 + 1 ≈ 2.443 (complete-graph push).
  const double limit = 1.0 / std::log(2.0) + 1.0;
  EXPECT_GT(push_constant_cd(3), push_constant_cd(100));
  EXPECT_NEAR(push_constant_cd(100000), limit, 1e-3);
}

TEST(PushConstant, RejectsTinyDegrees) {
  EXPECT_THROW((void)push_constant_cd(2), std::logic_error);
}

}  // namespace
}  // namespace rrb
