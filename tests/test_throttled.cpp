#include "rrb/protocols/throttled.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"

namespace rrb {
namespace {

ThrottledConfig config_for(std::uint64_t n, std::uint32_t d) {
  ThrottledConfig cfg;
  cfg.n_estimate = n;
  cfg.degree = d;
  return cfg;
}

RunResult run_throttled(const Graph& g, std::uint64_t seed,
                        const ThrottledConfig& cfg) {
  ThrottledPushPull proto(cfg);
  GraphTopology topo(g);
  Rng rng(seed);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  return engine.run(proto, NodeId{0}, RunLimits{});
}

TEST(Throttled, TauShrinksWithDegree) {
  ThrottledPushPull sparse(config_for(1 << 16, 4));
  ThrottledPushPull dense(config_for(1 << 16, 64));
  EXPECT_GT(sparse.tau(), dense.tau());
}

TEST(Throttled, TauGrowsWithN) {
  ThrottledPushPull small(config_for(1 << 10, 8));
  ThrottledPushPull large(config_for(1 << 20, 8));
  EXPECT_GT(large.tau(), small.tau());
}

TEST(Throttled, TauMatchesFormula) {
  // n = 2^16, d = 16: ceil(2*16/4) + ceil(2*log2(16)) = 8 + 8 = 16.
  ThrottledPushPull proto(config_for(1 << 16, 16));
  EXPECT_EQ(proto.tau(), 16);
}

TEST(Throttled, RejectsBadConfig) {
  EXPECT_THROW(ThrottledPushPull(config_for(1, 8)), std::logic_error);
  EXPECT_THROW(ThrottledPushPull(config_for(100, 1)), std::logic_error);
  ThrottledConfig cfg = config_for(100, 8);
  cfg.c1 = 0.0;
  EXPECT_THROW(ThrottledPushPull{cfg}, std::logic_error);
}

TEST(Throttled, NodesGoQuietAfterTau) {
  ThrottledPushPull proto(config_for(1 << 16, 8));
  NodeLocalState state;
  state.informed_at = 5;
  EXPECT_EQ(proto.action(0, state, 5 + proto.tau()), Action::kPushPull);
  EXPECT_EQ(proto.action(0, state, 5 + proto.tau() + 1), Action::kNone);
}

TEST(Throttled, CompletesOnRandomRegular) {
  for (const NodeId d : {8U, 16U, 32U}) {
    Rng grng(d);
    const NodeId n = 4096;
    const Graph g = random_regular_simple(n, d, grng);
    const RunResult r = run_throttled(g, 7 + d, config_for(n, d));
    EXPECT_TRUE(r.all_informed) << "d = " << d;
  }
}

TEST(Throttled, SelfTerminatesByQuiescence) {
  Rng grng(1);
  const NodeId n = 2048;
  const Graph g = random_regular_simple(n, 16, grng);
  ThrottledPushPull proto(config_for(n, 16));
  GraphTopology topo(g);
  Rng rng(2);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.max_rounds = 100000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed);
  // Stops within tau rounds of the last activation, not at the cap.
  EXPECT_LT(r.rounds, r.completion_round + proto.tau() + 2);
}

TEST(Throttled, TransmissionsBoundedByTwoTauPerNode) {
  // Each node transmits at most 2 copies per active round (one push, one
  // pull answer per channel — with one channel out and expected one in).
  // The hard bound per node is (out + in) * tau; check the measured mean is
  // below 2.5 * tau (in-degree fluctuations included).
  Rng grng(3);
  const NodeId n = 4096;
  const NodeId d = 32;
  const Graph g = random_regular_simple(n, d, grng);
  ThrottledPushPull proto(config_for(n, d));
  GraphTopology topo(g);
  Rng rng(4);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  const RunResult r = engine.run(proto, NodeId{0}, RunLimits{});
  ASSERT_TRUE(r.all_informed);
  EXPECT_LT(r.tx_per_node(), 2.5 * static_cast<double>(proto.tau()));
}

TEST(Throttled, CheaperThanFixedHorizonPushAtHighDegree) {
  // The fair comparison is against the *implementable* (oracle-free)
  // Monte Carlo push, which pays for its full Θ(log n) horizon. At d = 64
  // the throttle window ~ log n / log d + log log n is much shorter.
  Rng grng(5);
  const NodeId n = 1 << 13;
  const NodeId d = 64;
  const Graph g = random_regular_simple(n, d, grng);

  const RunResult throttled = run_throttled(g, 6, config_for(n, d));
  ASSERT_TRUE(throttled.all_informed);

  FixedHorizonPush push(make_push_horizon(n, static_cast<int>(d)));
  GraphTopology topo(g);
  Rng rng(7);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  const RunResult pushed = engine.run(push, NodeId{0}, RunLimits{});
  ASSERT_TRUE(pushed.all_informed);

  EXPECT_LT(throttled.tx_per_node(), pushed.tx_per_node());
}

TEST(FixedHorizonPush, CompletesAndStopsAtHorizon) {
  Rng grng(8);
  const NodeId n = 2048;
  const Graph g = random_regular_simple(n, 8, grng);
  FixedHorizonPush push(make_push_horizon(n, 8));
  GraphTopology topo(g);
  Rng rng(9);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.rounds, push.horizon());
  EXPECT_GT(r.rounds, r.completion_round);  // pays past completion
}

TEST(FixedHorizonPush, HorizonFormulaAndValidation) {
  // 2 * C_8 * ln(2^13): C_8 ≈ 2.723, ln(8192) ≈ 9.01 -> ceil(49.07) = 50.
  EXPECT_EQ(make_push_horizon(1 << 13, 8), 50);
  EXPECT_THROW((void)make_push_horizon(1, 8), std::logic_error);
  EXPECT_THROW((void)make_push_horizon(100, 8, 0.0), std::logic_error);
  EXPECT_THROW(FixedHorizonPush(0), std::logic_error);
}

TEST(Throttled, StrictlyObliviousActionIgnoresNodeId) {
  ThrottledPushPull proto(config_for(1 << 12, 8));
  NodeLocalState state;
  state.informed_at = 3;
  const Action a = proto.action(0, state, 5);
  const Action b = proto.action(15, state, 5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rrb
