#include "rrb/graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/generators.hpp"

namespace rrb {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v)
    EXPECT_EQ(d[v], static_cast<std::int32_t>(v));
}

TEST(Bfs, UnreachableNodesFlagged) {
  const Graph g = disjoint_union(path(2), path(2));
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, HandlesCycleSymmetrically) {
  const Graph g = cycle(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[7], 1);
}

TEST(Connectivity, ConnectedAndDisconnected) {
  EXPECT_TRUE(is_connected(cycle(5)));
  EXPECT_TRUE(is_connected(complete(4)));
  EXPECT_FALSE(is_connected(disjoint_union(cycle(3), cycle(3))));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Components, LabelsAndCounts) {
  const Graph g = disjoint_union(cycle(3), path(4));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2U);
  EXPECT_EQ(comps.label[0], comps.label[1]);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_EQ(comps.label[3], comps.label[6]);
  EXPECT_NE(comps.label[0], comps.label[3]);
}

TEST(Components, IsolatedNodesAreOwnComponents) {
  const auto comps = connected_components(Graph(4));
  EXPECT_EQ(comps.count, 4U);
}

TEST(Eccentricity, CenterVsLeafOfPath) {
  const Graph g = path(5);
  EXPECT_EQ(eccentricity(g, 0), 4);
  EXPECT_EQ(eccentricity(g, 2), 2);
}

TEST(Eccentricity, ThrowsOnDisconnected) {
  const Graph g = disjoint_union(path(2), path(2));
  EXPECT_THROW((void)eccentricity(g, 0), std::runtime_error);
}

TEST(Diameter, ExactOnKnownGraphs) {
  EXPECT_EQ(diameter_exact(cycle(10)), 5);
  EXPECT_EQ(diameter_exact(complete(7)), 1);
  EXPECT_EQ(diameter_exact(path(6)), 5);
  EXPECT_EQ(diameter_exact(hypercube(4)), 4);
}

TEST(Diameter, DoubleSweepBoundsExact) {
  Rng rng(1);
  const Graph g = random_regular_simple(200, 4, rng);
  const int exact = diameter_exact(g);
  const int estimate = diameter_double_sweep(g, rng);
  EXPECT_LE(estimate, exact);
  EXPECT_GE(estimate, exact - 2);  // double sweep is near-tight here
}

TEST(Diameter, RandomRegularIsLogarithmic) {
  // Diameter of G(n,d) is Theta(log n / log(d-1)); at n=1000, d=6 it is
  // around 5; assert a generous bracket.
  Rng rng(2);
  const Graph g = random_regular_simple(1000, 6, rng);
  const int diam = diameter_double_sweep(g, rng);
  EXPECT_GE(diam, 3);
  EXPECT_LE(diam, 10);
}

TEST(SecondEigenvalue, CompleteGraphIsOne) {
  // Adjacency spectrum of K_n: {n-1, -1, ..., -1}; |lambda_2| = 1.
  Rng rng(3);
  const double l2 = second_eigenvalue_regular(complete(30), 200, rng);
  EXPECT_NEAR(l2, 1.0, 0.05);
}

TEST(SecondEigenvalue, EvenCycleIsBipartiteWithLambdaTwo) {
  // C_n for even n is bipartite: the adjacency spectrum contains -2, so the
  // largest non-principal |eigenvalue| is exactly 2.
  Rng rng(4);
  const double l2 = second_eigenvalue_regular(cycle(40), 3000, rng);
  EXPECT_NEAR(l2, 2.0, 0.02);
}

TEST(SecondEigenvalue, OddCycleMatchesCosineFormula) {
  // C_n for odd n: eigenvalues 2cos(2·pi·k/n); the largest non-principal
  // absolute value is |2cos(pi(n-1)/n)| = 2cos(pi/n).
  Rng rng(4);
  const NodeId n = 41;
  const double expected = 2.0 * std::cos(M_PI / n);
  const double l2 = second_eigenvalue_regular(cycle(n), 4000, rng);
  EXPECT_NEAR(l2, expected, 0.02);
}

TEST(SecondEigenvalue, RandomRegularIsNearRamanujan) {
  // Friedman: |lambda_2| <= 2 sqrt(d-1) (1+o(1)) w.h.p. — the bound
  // Theorem 1 uses. Allow 20% headroom at this modest size.
  Rng rng(5);
  const Graph g = random_regular_simple(600, 6, rng);
  const double l2 = second_eigenvalue_regular(g, 300, rng);
  EXPECT_LT(l2, 1.2 * 2.0 * std::sqrt(5.0));
  EXPECT_GT(l2, 1.0);
}

TEST(SecondEigenvalue, RequiresRegularGraph) {
  Rng rng(6);
  EXPECT_THROW((void)second_eigenvalue_regular(path(5), 10, rng),
               std::logic_error);
}

TEST(EdgeBoundary, ExactOnCompleteBipartition) {
  const Graph g = complete(6);
  std::vector<std::uint8_t> set(6, 0);
  set[0] = set[1] = set[2] = 1;
  EXPECT_EQ(edge_boundary(g, set), 9U);  // 3 * 3
  EXPECT_EQ(internal_edges(g, set), 3U);
}

TEST(EdgeBoundary, EmptyAndFullSets) {
  const Graph g = cycle(5);
  std::vector<std::uint8_t> empty(5, 0);
  std::vector<std::uint8_t> full(5, 1);
  EXPECT_EQ(edge_boundary(g, empty), 0U);
  EXPECT_EQ(edge_boundary(g, full), 0U);
  EXPECT_EQ(internal_edges(g, full), 5U);
}

TEST(EdgeBoundary, CountsParallelEdgesWithMultiplicity) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  std::vector<std::uint8_t> set{1, 0};
  EXPECT_EQ(edge_boundary(g, set), 2U);
}

TEST(ExpanderMixing, HoldsOnRandomRegular) {
  // |e(S,S̄) - d|S||S̄|/n| <= lambda sqrt(|S||S̄|) for all tested S; use the
  // measured lambda_2.
  Rng rng(7);
  const Graph g = random_regular_simple(400, 8, rng);
  const double lambda =
      1.1 * second_eigenvalue_regular(g, 200, rng);  // small safety margin
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<std::uint8_t> set(g.num_nodes(), 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) set[v] = rng.bernoulli(0.3);
    const MixingCheck check = expander_mixing_check(g, set, lambda);
    EXPECT_LE(check.deviation, check.bound);
  }
}

TEST(Matching, PerfectOnEvenCycle) {
  const auto m = greedy_matching(cycle(8));
  EXPECT_EQ(m.size(), 4U);
}

TEST(Matching, NodesMatchedAtMostOnce) {
  Rng rng(8);
  const Graph g = random_regular_simple(100, 5, rng);
  const auto m = greedy_matching(g);
  std::vector<int> used(100, 0);
  for (const auto& [a, b] : m) {
    ++used[a];
    ++used[b];
  }
  for (const int u : used) EXPECT_LE(u, 1);
  // Greedy maximal matching covers at least half the max matching; on a
  // 5-regular graph expect a large matching.
  EXPECT_GE(m.size(), 35U);
}

TEST(Matching, RestrictedToSetIgnoresOutsiders) {
  const Graph g = complete(6);
  std::vector<std::uint8_t> set(6, 0);
  set[0] = set[1] = 1;
  const auto m = greedy_matching_in_set(g, set);
  ASSERT_EQ(m.size(), 1U);
  EXPECT_EQ(std::min(m[0].first, m[0].second), 0U);
  EXPECT_EQ(std::max(m[0].first, m[0].second), 1U);
}

TEST(Matching, EmptySetYieldsEmptyMatching) {
  const Graph g = complete(4);
  std::vector<std::uint8_t> set(4, 0);
  EXPECT_TRUE(greedy_matching_in_set(g, set).empty());
}

TEST(DegreeStats, MixedDegrees) {
  const Graph g = star(5);
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1U);
  EXPECT_EQ(stats.max, 4U);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
}

TEST(Clustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(complete(5)), 1.0);
}

TEST(Clustering, TreeIsZero) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(star(6)), 0.0);
}

TEST(Clustering, RandomRegularIsNearZero) {
  Rng rng(9);
  const Graph g = random_regular_simple(300, 6, rng);
  EXPECT_LT(global_clustering_coefficient(g), 0.05);
}

TEST(Clustering, ProductWithK5IsClustered) {
  // The §5 counterexample: G(n,d) x K5 has constant clustering inside the
  // K5 fibres — structurally unlike a random regular graph of the same
  // degree, despite similar expansion.
  Rng rng(10);
  const Graph g = random_regular_simple(100, 4, rng);
  const Graph prod = cartesian_product(g, complete(5));
  EXPECT_GT(global_clustering_coefficient(prod), 0.1);
}

}  // namespace
}  // namespace rrb
