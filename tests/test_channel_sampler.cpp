#include "rrb/phonecall/channel_sampler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"

/// Direct unit tests for the channel selection rules — the quasirandom
/// cursor walk and the memory ring — previously only exercised indirectly
/// through whole-run engine tests.

namespace rrb {
namespace {

ChannelConfig config_of(int choices, int memory, bool quasirandom = false) {
  ChannelConfig cfg;
  cfg.num_choices = choices;
  cfg.memory = memory;
  cfg.quasirandom = quasirandom;
  return cfg;
}

// ---- Quasirandom cursor walking -------------------------------------------

TEST(QuasirandomSampler, FirstChooseDrawsCursorThenWalksList) {
  const Graph g = complete(7);  // degree 6 everywhere
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 0, /*quasirandom=*/true), g.num_nodes());

  Rng rng(11);
  Rng probe(11);  // parallel stream to predict the cursor draw
  const NodeId expected_start = static_cast<NodeId>(probe.uniform_u64(6));

  std::array<NodeId, 2> out{};
  ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 2U);
  EXPECT_EQ(out[0], expected_start % 6);
  EXPECT_EQ(out[1], (expected_start + 1) % 6);
  EXPECT_EQ(sampler.cursor(0), (expected_start + 2) % 6);
}

TEST(QuasirandomSampler, SubsequentRoundsContinueWithoutRandomness) {
  const Graph g = complete(7);
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 0, true), g.num_nodes());

  Rng rng(12);
  std::array<NodeId, 2> out{};
  (void)sampler.choose(topo, rng, 3, std::span<NodeId>(out));
  const NodeId cursor_after_first = sampler.cursor(3);

  // A second choose must walk on from the cursor and consume no RNG draws.
  Rng snapshot = rng;  // value copy: same future stream
  (void)sampler.choose(topo, rng, 3, std::span<NodeId>(out));
  EXPECT_EQ(out[0], cursor_after_first % 6);
  EXPECT_EQ(out[1], (cursor_after_first + 1) % 6);
  EXPECT_EQ(rng.next_u64(), snapshot.next_u64());
}

TEST(QuasirandomSampler, WalkWrapsAroundTheNeighbourList) {
  const Graph g = complete(4);  // degree 3
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 0, true), g.num_nodes());

  Rng rng(13);
  std::array<NodeId, 2> out{};
  std::set<NodeId> seen;
  // 3 rounds * 2 choices over a 3-entry list: every edge index appears
  // exactly twice, the signature property of the quasirandom model.
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(sampler.choose(topo, rng, 1, std::span<NodeId>(out)), 2U);
    for (const NodeId idx : out) {
      EXPECT_LT(idx, 3U);
      seen.insert(idx);
    }
  }
  EXPECT_EQ(seen.size(), 3U);
}

TEST(QuasirandomSampler, DegreeSmallerThanChoicesTakesWholeList) {
  // A path end node has degree 1; num_choices = 4 must clamp to one call
  // per round, walking the single entry repeatedly.
  const Graph g = path(3);
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(4, 0, true), g.num_nodes());

  Rng rng(14);
  std::array<NodeId, 4> out{};
  ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 1U);
  EXPECT_EQ(out[0], 0U);
  ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 1U);
  EXPECT_EQ(out[0], 0U);
}

TEST(Sampler, IsolatedNodeChoosesNothing) {
  Graph g(3);  // no edges at all
  GraphTopology topo(g);
  for (const bool quasirandom : {false, true}) {
    ChannelSampler sampler;
    sampler.prepare(config_of(4, 0, quasirandom), g.num_nodes());
    Rng rng(15);
    Rng snapshot = rng;
    std::array<NodeId, 4> out{};
    EXPECT_EQ(sampler.choose(topo, rng, 1, std::span<NodeId>(out)), 0U);
    EXPECT_EQ(rng.next_u64(), snapshot.next_u64());  // no draws consumed
  }
}

// ---- Memory ring -----------------------------------------------------------

TEST(MemoryRing, StartsEmptyAndRecordsPartners) {
  ChannelSampler sampler;
  sampler.prepare(config_of(1, 3), 4);
  EXPECT_FALSE(sampler.recently_called(0, 1));
  for (const NodeId slot : sampler.memory_ring(0)) EXPECT_EQ(slot, kNoNode);

  const std::array<NodeId, 1> partners{1};
  sampler.remember_partners(0, std::span<const NodeId>(partners));
  EXPECT_TRUE(sampler.recently_called(0, 1));
  EXPECT_FALSE(sampler.recently_called(0, 2));
  // Other nodes' rings are untouched.
  EXPECT_FALSE(sampler.recently_called(1, 1));
}

TEST(MemoryRing, ShiftEvictsOldestAfterMemoryRounds) {
  ChannelSampler sampler;
  sampler.prepare(config_of(1, 3), 2);
  for (NodeId partner = 1; partner <= 4; ++partner) {
    const std::array<NodeId, 1> partners{partner};
    sampler.remember_partners(0, std::span<const NodeId>(partners));
  }
  // Ring holds the last 3 partners: 4, 3, 2; partner 1 has been evicted.
  EXPECT_FALSE(sampler.recently_called(0, 1));
  EXPECT_TRUE(sampler.recently_called(0, 2));
  EXPECT_TRUE(sampler.recently_called(0, 3));
  EXPECT_TRUE(sampler.recently_called(0, 4));
  const auto ring = sampler.memory_ring(0);
  EXPECT_EQ(ring[0], 4U);
  EXPECT_EQ(ring[1], 3U);
  EXPECT_EQ(ring[2], 2U);
}

TEST(MemoryRing, PartialPartnerSetsShiftByTheirSize) {
  // Two partners per round with memory 3: the ring keeps the 2 newest plus
  // the single oldest survivor, shifted by the partner-set size.
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 3), 2);
  const std::array<NodeId, 2> first{1, 2};
  sampler.remember_partners(0, std::span<const NodeId>(first));
  const std::array<NodeId, 2> second{3, 4};
  sampler.remember_partners(0, std::span<const NodeId>(second));

  const auto ring = sampler.memory_ring(0);
  EXPECT_EQ(ring[0], 3U);
  EXPECT_EQ(ring[1], 4U);
  EXPECT_EQ(ring[2], 1U);  // 2 fell off the end
  EXPECT_TRUE(sampler.recently_called(0, 1));
  EXPECT_FALSE(sampler.recently_called(0, 2));
}

TEST(MemoryRing, PartnerSetLargerThanMemoryKeepsPrefix) {
  ChannelSampler sampler;
  sampler.prepare(config_of(4, 3), 2);
  const std::array<NodeId, 4> partners{5, 6, 7, 8};
  sampler.remember_partners(0, std::span<const NodeId>(partners));
  const auto ring = sampler.memory_ring(0);
  EXPECT_EQ(ring[0], 5U);
  EXPECT_EQ(ring[1], 6U);
  EXPECT_EQ(ring[2], 7U);
  EXPECT_FALSE(sampler.recently_called(0, 8));
}

TEST(MemoryRing, ZeroMemoryIsInert) {
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 0), 2);
  const std::array<NodeId, 2> partners{1, 0};
  sampler.remember_partners(0, std::span<const NodeId>(partners));
  EXPECT_FALSE(sampler.recently_called(0, 1));
}

// ---- Memory-constrained choosing ------------------------------------------

TEST(MemorySampler, AvoidsRecentPartnersWhenDegreeAllows) {
  // Node 0 of K5 has neighbours 1..4. Remember 3 of them; the only
  // admissible edge index must be chosen every time.
  const Graph g = complete(5);
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(1, 3), g.num_nodes());

  const NodeId allowed = g.neighbor(0, 2);
  std::array<NodeId, 3> remembered{};
  std::size_t filled = 0;
  for (NodeId i = 0; i < 4; ++i)
    if (i != 2) remembered[filled++] = g.neighbor(0, i);
  sampler.remember_partners(0, std::span<const NodeId>(remembered));

  Rng rng(16);
  std::array<NodeId, 1> out{};
  for (int round = 0; round < 8; ++round) {
    ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 1U);
    EXPECT_EQ(g.neighbor(0, out[0]), allowed);
  }
}

TEST(MemorySampler, RelaxesWhenDegreeLeavesNoAdmissiblePartner) {
  // d <= num_choices: the memory constraint is waived outright (the node
  // must call every neighbour anyway), so choosing still succeeds with all
  // partners remembered.
  const Graph g = complete(3);  // degree 2
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 3), g.num_nodes());
  const std::array<NodeId, 2> all{g.neighbor(0, 0), g.neighbor(0, 1)};
  sampler.remember_partners(0, std::span<const NodeId>(all));

  Rng rng(17);
  std::array<NodeId, 2> out{};
  ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 2U);
  std::set<NodeId> indices(out.begin(), out.end());
  EXPECT_EQ(indices.size(), 2U);  // distinct edge indices 0 and 1
}

TEST(MemorySampler, FallsBackAfterRejectionBudgetWhenAllRemembered) {
  // Degree 4 > num_choices, every neighbour remembered (memory = 4): the
  // rejection loop exhausts its budget, then the relaxed loop must still
  // produce a distinct admissible-free choice instead of spinning forever.
  const Graph g = complete(5);
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(1, 4), g.num_nodes());
  std::array<NodeId, 4> all{};
  for (NodeId i = 0; i < 4; ++i) all[i] = g.neighbor(0, i);
  sampler.remember_partners(0, std::span<const NodeId>(all));

  Rng rng(18);
  std::array<NodeId, 1> out{};
  ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 1U);
  EXPECT_LT(out[0], 4U);
}

TEST(MemorySampler, UnboundedFallbackTerminatesAndStaysUniform) {
  // The second rejection loop in ChannelSampler::choose has no try budget:
  // it only rejects duplicates, and terminates because d > take guarantees
  // a fresh index always exists. Pin the degenerate case the budgeted loop
  // can never satisfy — d = take + 1 with EVERY neighbour recently called —
  // for termination and for uniformity of what comes out: the fallback
  // draws uniform indices and rejects only duplicates, so the distinct
  // pair it returns is uniform over all pairs. choose() itself never
  // touches the ring (remembering partners is the engine's job), so the
  // fully-blocked state persists across calls and every iteration below
  // exercises the fallback loop.
  const Graph g = complete(4);  // node 0: neighbours 1, 2, 3 (d = 3)
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(2, 3), g.num_nodes());  // take = 2 = d - 1
  std::array<NodeId, 3> all{};
  for (NodeId i = 0; i < 3; ++i) all[i] = g.neighbor(0, i);
  sampler.remember_partners(0, std::span<const NodeId>(all));
  for (NodeId i = 0; i < 3; ++i)
    ASSERT_TRUE(sampler.recently_called(0, all[i]));

  Rng rng(19);
  std::array<int, 3> hits{};
  constexpr int kIterations = 3000;
  for (int it = 0; it < kIterations; ++it) {
    std::array<NodeId, 2> out{};
    ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 2U);
    ASSERT_NE(out[0], out[1]);
    ASSERT_LT(out[0], 3U);
    ASSERT_LT(out[1], 3U);
    ++hits[out[0]];
    ++hits[out[1]];
  }
  // Each edge index lands in 2 of the 3 equally-likely pairs: expect
  // kIterations * 2/3 appearances (binomial sd ~ 26; tolerance is 6 sd).
  for (const int h : hits) EXPECT_NEAR(h, 2000, 150);
}

TEST(MemorySampler, DistinctIndicesWithinOneRound) {
  const Graph g = complete(9);  // degree 8
  GraphTopology topo(g);
  ChannelSampler sampler;
  sampler.prepare(config_of(4, 3), g.num_nodes());

  Rng rng(19);
  std::array<NodeId, 4> out{};
  for (int round = 0; round < 32; ++round) {
    ASSERT_EQ(sampler.choose(topo, rng, 0, std::span<NodeId>(out)), 4U);
    std::set<NodeId> indices(out.begin(), out.end());
    EXPECT_EQ(indices.size(), 4U);
    std::array<NodeId, 4> partners{};
    for (std::size_t i = 0; i < 4; ++i) partners[i] = g.neighbor(0, out[i]);
    sampler.remember_partners(0, std::span<const NodeId>(partners));
  }
}

}  // namespace
}  // namespace rrb
