#include "rrb/phonecall/failure_models.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/metrics/observers.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/sequentialised.hpp"

namespace rrb {
namespace {

TEST(FaultyNodes, ChannelsTouchingFaultyNodesFail) {
  const FailurePredicate model = faulty_nodes({2, 5});
  EXPECT_TRUE(model(1, 2, 0));
  EXPECT_TRUE(model(1, 0, 2));
  EXPECT_TRUE(model(9, 5, 2));
  EXPECT_FALSE(model(1, 0, 1));
  EXPECT_FALSE(model(1, 3, 4));
}

TEST(FaultyNodes, IsolateTheOnlyBridge) {
  // Path 0-1-2 with node 1 faulty: the message can never cross.
  const Graph g = path(3);
  GraphTopology topo(g);
  Rng rng(1);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  engine.set_failure_model(faulty_nodes({1}));
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 200;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_FALSE(r.all_informed);
  EXPECT_EQ(r.final_informed, 1U);
}

TEST(FaultyNodes, BroadcastRoutesAroundFaultyMinority) {
  // 5% fail-stop nodes on a well-connected graph: all healthy nodes still
  // get the message; the faulty ones cannot.
  Rng grng(2);
  const NodeId n = 2048;
  const Graph g = random_regular_simple(n, 8, grng);
  std::vector<NodeId> faulty;
  for (NodeId v = 1; v < n; v += 20) faulty.push_back(v);  // ~5%, not source

  GraphTopology topo(g);
  Rng rng(3);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  engine.set_failure_model(faulty_nodes(faulty));
  FourChoiceConfig fc;
  fc.n_estimate = n;
  fc.alpha = 2.0;
  FourChoiceBroadcast proto(fc);
  const RunResult r = engine.run(proto, NodeId{0}, RunLimits{});

  const auto informed = engine.informed_at();
  std::unordered_set<NodeId> faulty_set(faulty.begin(), faulty.end());
  Count healthy_missed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (faulty_set.count(v) != 0) {
      EXPECT_EQ(informed[v], kNever) << "faulty node informed: " << v;
    } else if (informed[v] == kNever) {
      ++healthy_missed;
    }
  }
  EXPECT_EQ(healthy_missed, 0U);
  EXPECT_FALSE(r.all_informed);  // the faulty nodes themselves are missing
}

TEST(BurstyOutage, PatternIsPeriodic) {
  const FailurePredicate model = bursty_outage(/*period=*/5, /*burst=*/2);
  // Rounds 1,2 fail; 3,4,5 work; 6,7 fail; ...
  EXPECT_TRUE(model(1, 0, 1));
  EXPECT_TRUE(model(2, 0, 1));
  EXPECT_FALSE(model(3, 0, 1));
  EXPECT_FALSE(model(5, 0, 1));
  EXPECT_TRUE(model(6, 0, 1));
  EXPECT_TRUE(model(7, 0, 1));
  EXPECT_FALSE(model(8, 0, 1));
}

TEST(BurstyOutage, Validation) {
  EXPECT_THROW((void)bursty_outage(0, 0), std::logic_error);
  EXPECT_THROW((void)bursty_outage(3, 4), std::logic_error);
  EXPECT_NO_THROW((void)bursty_outage(3, 0));
}

TEST(BurstyOutage, BroadcastStillCompletesBetweenBursts) {
  Rng grng(4);
  const NodeId n = 1024;
  const Graph g = random_regular_simple(n, 8, grng);
  GraphTopology topo(g);
  Rng rng(5);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  engine.set_failure_model(bursty_outage(4, 1));  // 25% of rounds dark
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 2000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed);
}

TEST(BurstyOutage, FullOutageBlocksEverything) {
  Rng grng(6);
  const Graph g = random_regular_simple(128, 6, grng);
  GraphTopology topo(g);
  Rng rng(7);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  engine.set_failure_model(bursty_outage(1, 1));  // every round dark
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 100;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_EQ(r.final_informed, 1U);
  EXPECT_EQ(r.channels_failed, r.channels_opened);
}

TEST(BlockedPairs, SymmetricAndSelective) {
  const FailurePredicate model = blocked_pairs({{1, 2}, {3, 4}});
  EXPECT_TRUE(model(1, 1, 2));
  EXPECT_TRUE(model(1, 2, 1));
  EXPECT_TRUE(model(1, 4, 3));
  EXPECT_FALSE(model(1, 1, 3));
  EXPECT_FALSE(model(1, 0, 2));
}

TEST(BlockedPairs, CutEdgesNeverCarryTheMessage) {
  // Block a random set of pairs and verify, via the edge usage tracker,
  // that none of those edges is ever used.
  Rng grng(8);
  const Graph g = random_regular_simple(256, 6, grng);
  std::vector<std::pair<NodeId, NodeId>> cut;
  for (const Edge& e : g.edge_list())
    if ((e.u + e.v) % 7 == 0) cut.emplace_back(e.u, e.v);
  ASSERT_FALSE(cut.empty());

  const EdgeIdMap map = build_edge_id_map(g);
  GraphTopology topo(g);
  Rng rng(9);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  EdgeUsageObserver usage(&g, &map);
  engine.set_failure_model(blocked_pairs(cut));
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 2000;
  const RunResult r = engine.run(proto, NodeId{0}, limits, usage);
  EXPECT_TRUE(r.all_informed);  // plenty of redundancy remains

  // Locate each cut pair's edge ids and assert unused.
  for (const auto& [u, v] : cut) {
    for (NodeId i = 0; i < g.degree(u); ++i) {
      if (g.neighbor(u, i) == v) {
        EXPECT_EQ(usage.used()[map.edge_of(u, i)], 0)
            << u << "-" << v;
      }
    }
  }
}

TEST(RandomFailures, MatchesProbability) {
  Rng frng(10);
  const FailurePredicate model = random_failures(0.25, frng);
  int failures = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i)
    if (model(1, 0, 1)) ++failures;
  EXPECT_NEAR(static_cast<double>(failures) / kDraws, 0.25, 0.02);
  EXPECT_THROW((void)random_failures(1.5, frng), std::logic_error);
}

TEST(AnyOf, ComposesModels) {
  Rng frng(11);
  const FailurePredicate combo = any_of(
      {faulty_nodes({7}), bursty_outage(10, 1)});
  EXPECT_TRUE(combo(5, 7, 0));   // faulty node
  EXPECT_TRUE(combo(1, 0, 1));   // burst round
  EXPECT_FALSE(combo(5, 0, 1));  // healthy node, quiet round
}

TEST(AnyOf, EmptyNeverFails) {
  const FailurePredicate combo = any_of({});
  EXPECT_FALSE(combo(1, 0, 1));
}

TEST(BurstyOutage, SequentialisedVariantSurvivesWhereParallelCollapses) {
  // Finding from bench E11: synchronised 1-in-4-round outages break the
  // parallel Algorithm 1 (its push-once chain and single pull round can
  // land wholly inside an outage) but barely dent the sequentialised
  // variant, which spreads every logical round over four steps.
  Rng grng(20);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceConfig fc;
  fc.n_estimate = n;
  fc.alpha = 2.0;

  auto coverage_of = [&](bool sequentialised, std::uint64_t seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig chan;
    if (sequentialised) {
      chan.num_choices = 1;
      chan.memory = 3;
    } else {
      chan.num_choices = 4;
    }
    PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
    engine.set_failure_model(bursty_outage(4, 1));
    RunResult r;
    if (sequentialised) {
      SequentialisedFourChoice sequential(fc);
      r = engine.run(sequential, NodeId{0}, RunLimits{});
    } else {
      FourChoiceBroadcast parallel(fc);
      r = engine.run(parallel, NodeId{0}, RunLimits{});
    }
    return static_cast<double>(r.final_informed) / static_cast<double>(n);
  };

  const double parallel_cov = coverage_of(false, 21);
  const double sequential_cov = coverage_of(true, 22);
  EXPECT_LT(parallel_cov, 0.9);
  EXPECT_GT(sequential_cov, 0.99);
}

TEST(FailureModels, ComposeWithBuiltInProbability) {
  // Both mechanisms active: measured failure rate ≈ 1-(1-p)(1-q) for
  // independent models (p built-in, q predicate).
  Rng grng(12);
  const Graph g = complete(64);
  GraphTopology topo(g);
  Rng rng(13);
  ChannelConfig cfg;
  cfg.failure_prob = 0.2;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  Rng frng(14);
  engine.set_failure_model(random_failures(0.25, frng));
  PushPullProtocol proto;
  RunLimits limits;
  limits.max_rounds = 300;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  const double rate = static_cast<double>(r.channels_failed) /
                      static_cast<double>(r.channels_opened);
  EXPECT_NEAR(rate, 1.0 - 0.8 * 0.75, 0.05);
}

}  // namespace
}  // namespace rrb
