#include "rrb/p2p/overlay.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/algorithms.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"

namespace rrb {
namespace {

TEST(Overlay, InitialStateIsRegularish) {
  Rng rng(1);
  DynamicOverlay overlay(200, 100, 6, rng);
  overlay.check_invariants();
  EXPECT_EQ(overlay.num_slots(), 200U);
  EXPECT_EQ(overlay.num_alive(), 100U);
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_TRUE(overlay.is_alive(v));
    // Configuration model minus loops: degree within [d-2, d].
    EXPECT_GE(overlay.degree(v), 4U);
    EXPECT_LE(overlay.degree(v), 6U);
  }
  for (NodeId v = 100; v < 200; ++v) EXPECT_FALSE(overlay.is_alive(v));
}

TEST(Overlay, ConstructionValidation) {
  Rng rng(2);
  EXPECT_THROW(DynamicOverlay(10, 20, 4, rng), std::logic_error);
  EXPECT_THROW(DynamicOverlay(10, 4, 4, rng), std::logic_error);
  EXPECT_THROW(DynamicOverlay(10, 8, 1, rng), std::logic_error);
}

TEST(Overlay, JoinAddsConnectedNode) {
  Rng rng(3);
  DynamicOverlay overlay(64, 32, 4, rng);
  const auto id = overlay.join(rng);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(overlay.is_alive(*id));
  EXPECT_EQ(overlay.num_alive(), 33U);
  EXPECT_EQ(overlay.degree(*id), 4U);
  overlay.check_invariants();
}

TEST(Overlay, JoinFailsAtCapacity) {
  Rng rng(4);
  DynamicOverlay overlay(16, 16, 4, rng);
  EXPECT_FALSE(overlay.join(rng).has_value());
}

TEST(Overlay, LeaveDetachesAndRepairs) {
  Rng rng(5);
  DynamicOverlay overlay(64, 32, 4, rng);
  const Count edges_before = overlay.num_edges();
  EXPECT_TRUE(overlay.leave(7, rng));
  EXPECT_FALSE(overlay.is_alive(7));
  EXPECT_EQ(overlay.degree(7), 0U);
  EXPECT_EQ(overlay.num_alive(), 31U);
  overlay.check_invariants();
  // Stub re-pairing keeps roughly half the leaving node's edges.
  EXPECT_GE(overlay.num_edges() + 4, edges_before - 4);
}

TEST(Overlay, LeaveOnDeadNodeIsNoop) {
  Rng rng(6);
  DynamicOverlay overlay(64, 32, 4, rng);
  ASSERT_TRUE(overlay.leave(3, rng));
  EXPECT_FALSE(overlay.leave(3, rng));
}

TEST(Overlay, SlotReuseAfterLeaveAndJoin) {
  Rng rng(7);
  DynamicOverlay overlay(33, 32, 4, rng);
  ASSERT_TRUE(overlay.leave(10, rng));
  // Two free slots now: 32 (never used) and 10.
  const auto a = overlay.join(rng);
  const auto b = overlay.join(rng);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE((*a == 10U) || (*b == 10U));
  EXPECT_FALSE(overlay.join(rng).has_value());
  overlay.check_invariants();
}

TEST(Overlay, SwitchStepPreservesDegrees) {
  Rng rng(8);
  DynamicOverlay overlay(64, 48, 6, rng);
  std::vector<NodeId> degrees(48);
  for (NodeId v = 0; v < 48; ++v) degrees[v] = overlay.degree(v);
  for (int i = 0; i < 500; ++i) overlay.switch_step(rng);
  overlay.check_invariants();
  for (NodeId v = 0; v < 48; ++v) EXPECT_EQ(overlay.degree(v), degrees[v]);
}

TEST(Overlay, SwitchStepChangesWiring) {
  Rng rng(9);
  DynamicOverlay overlay(64, 48, 6, rng);
  const Graph before = overlay.snapshot();
  for (int i = 0; i < 300; ++i) overlay.switch_step(rng);
  const Graph after = overlay.snapshot();
  EXPECT_NE(before.edge_list(), after.edge_list());
}

TEST(Overlay, StaysConnectedUnderModerateChurn) {
  Rng rng(10);
  DynamicOverlay overlay(256, 128, 6, rng);
  for (int step = 0; step < 200; ++step) {
    if (rng.bernoulli(0.5)) (void)overlay.join(rng);
    if (rng.bernoulli(0.5) && overlay.num_alive() > 16)
      (void)overlay.leave(overlay.random_alive(rng), rng);
    overlay.switch_step(rng);
  }
  overlay.check_invariants();
  // Connectivity of the alive induced subgraph.
  const Graph snap = overlay.snapshot();
  const auto comps = connected_components(snap);
  // Dead slots are isolated; all alive nodes must share one component.
  NodeId alive_component = kNoNode;
  bool connected = true;
  for (NodeId v = 0; v < snap.num_nodes(); ++v) {
    if (!overlay.is_alive(v)) continue;
    if (alive_component == kNoNode) alive_component = comps.label[v];
    connected = connected && comps.label[v] == alive_component;
  }
  EXPECT_TRUE(connected);
}

TEST(Overlay, DegreesStayWithinConstantFactorUnderChurn) {
  // The paper's generalised setting: degrees within [d, c*d]. Our repair
  // keeps them in a constant-factor band around d.
  Rng rng(11);
  DynamicOverlay overlay(512, 256, 8, rng);
  for (int step = 0; step < 300; ++step) {
    (void)overlay.join(rng);
    if (overlay.num_alive() > 32)
      (void)overlay.leave(overlay.random_alive(rng), rng);
    for (int s = 0; s < 4; ++s) overlay.switch_step(rng);
  }
  Count total = 0;
  NodeId max_d = 0;
  Count alive = 0;
  for (NodeId v = 0; v < overlay.num_slots(); ++v) {
    if (!overlay.is_alive(v)) continue;
    ++alive;
    total += overlay.degree(v);
    max_d = std::max(max_d, overlay.degree(v));
  }
  const double mean = static_cast<double>(total) / static_cast<double>(alive);
  EXPECT_GT(mean, 4.0);   // d/2
  EXPECT_LT(mean, 16.0);  // 2d
  EXPECT_LT(max_d, 32U);  // 4d hard band
}

TEST(Overlay, RandomAliveReturnsOnlyAliveNodes) {
  Rng rng(12);
  DynamicOverlay overlay(64, 32, 4, rng);
  (void)overlay.leave(0, rng);
  (void)overlay.leave(1, rng);
  for (int i = 0; i < 200; ++i)
    EXPECT_TRUE(overlay.is_alive(overlay.random_alive(rng)));
}

TEST(Overlay, BroadcastRunsOverOverlayTopology) {
  Rng rng(13);
  DynamicOverlay overlay(128, 128, 6, rng);
  PushProtocol push;
  PhoneCallEngine<DynamicOverlay> engine(overlay, ChannelConfig{}, rng);
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
}

TEST(Overlay, SnapshotMatchesLiveDegrees) {
  Rng rng(14);
  DynamicOverlay overlay(64, 48, 6, rng);
  (void)overlay.leave(5, rng);
  const Graph snap = overlay.snapshot();
  EXPECT_EQ(snap.num_nodes(), overlay.num_slots());
  for (NodeId v = 0; v < overlay.num_slots(); ++v)
    EXPECT_EQ(snap.degree(v), overlay.degree(v));
}

}  // namespace
}  // namespace rrb
