#include "rrb/core/broadcast.hpp"

#include <gtest/gtest.h>

#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/protocols/baselines.hpp"

namespace rrb {
namespace {

Graph regular_graph_for(NodeId n, NodeId d, std::uint64_t seed) {
  Rng rng(seed);
  return random_regular_simple(n, d, rng);
}

TEST(CoreBroadcast, DefaultOptionsRunFourChoiceToCompletion) {
  const Graph g = regular_graph_for(2048, 8, 2);
  const RunResult r = broadcast(g, 0);
  EXPECT_TRUE(r.all_informed);
  EXPECT_GT(r.pull_tx, 0U);  // Algorithm 1's pull round happened
}

TEST(CoreBroadcast, EverySchemeCompletesOnRandomRegular) {
  const Graph g = regular_graph_for(1024, 8, 3);
  for (const BroadcastScheme scheme :
       {BroadcastScheme::kPush, BroadcastScheme::kPull,
        BroadcastScheme::kPushPull, BroadcastScheme::kFixedHorizonPush,
        BroadcastScheme::kMedianCounter,
        BroadcastScheme::kThrottledPushPull, BroadcastScheme::kFourChoice,
        BroadcastScheme::kSequentialised}) {
    BroadcastOptions opt;
    opt.scheme = scheme;
    opt.seed = 4;
    const RunResult r = broadcast(g, 5, opt);
    EXPECT_TRUE(r.all_informed) << scheme_name(scheme);
  }
}

TEST(CoreBroadcast, FourChoicePicksAlgorithm2ForLargeDegree) {
  // d = 24 >= delta * loglog n: the factory must select Algorithm 2, whose
  // runs contain pull rounds late (phase 3 tail) but no phase 4.
  const Graph g = regular_graph_for(1024, 24, 5);
  const SchemeParts parts = make_scheme(g, BroadcastOptions{});
  EXPECT_STREQ(parts.protocol->name(), "four-choice/alg2");
  EXPECT_EQ(parts.channel.num_choices, 4);
}

TEST(CoreBroadcast, FourChoicePicksAlgorithm1ForSmallDegree) {
  const Graph g = regular_graph_for(1024, 6, 6);
  const SchemeParts parts = make_scheme(g, BroadcastOptions{});
  EXPECT_STREQ(parts.protocol->name(), "four-choice/alg1");
}

TEST(CoreBroadcast, SequentialisedSchemeGetsMemoryChannel) {
  const Graph g = regular_graph_for(512, 8, 7);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kSequentialised;
  const SchemeParts parts = make_scheme(g, opt);
  EXPECT_EQ(parts.channel.num_choices, 1);
  EXPECT_EQ(parts.channel.memory, 3);
}

TEST(CoreBroadcast, BaselinesGetOneChoiceChannel) {
  const Graph g = regular_graph_for(512, 8, 8);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  const SchemeParts parts = make_scheme(g, opt);
  EXPECT_EQ(parts.channel.num_choices, 1);
  EXPECT_EQ(parts.channel.memory, 0);
}

TEST(CoreBroadcast, DeterministicGivenSeed) {
  const Graph g = regular_graph_for(1024, 8, 9);
  BroadcastOptions opt;
  opt.seed = 1234;
  const RunResult a = broadcast(g, 0, opt);
  const RunResult b = broadcast(g, 0, opt);
  EXPECT_EQ(a.total_tx(), b.total_tx());
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(CoreBroadcast, FailureProbIsForwarded) {
  const Graph g = regular_graph_for(1024, 8, 10);
  BroadcastOptions opt;
  opt.failure_prob = 0.2;
  opt.record_rounds = true;
  const RunResult r = broadcast(g, 0, opt);
  EXPECT_GT(r.channels_failed, 0U);
  EXPECT_FALSE(r.per_round.empty());
}

TEST(CoreBroadcast, EstimateOverrideChangesHorizon) {
  const Graph g = regular_graph_for(1024, 8, 11);
  BroadcastOptions small;
  small.n_estimate = 256;
  BroadcastOptions large;
  large.n_estimate = 1 << 16;
  const RunResult rs = broadcast(g, 0, small);
  const RunResult rl = broadcast(g, 0, large);
  EXPECT_LT(rs.rounds, rl.rounds);
  EXPECT_TRUE(rs.all_informed);
  EXPECT_TRUE(rl.all_informed);
}

TEST(CoreBroadcast, Validation) {
  const Graph g = regular_graph_for(64, 4, 12);
  EXPECT_THROW((void)broadcast(g, 64), std::logic_error);
  EXPECT_THROW((void)broadcast(Graph(1), 0), std::logic_error);
}

TEST(CoreBroadcast, SchemeNamesAreStable) {
  EXPECT_STREQ(scheme_name(BroadcastScheme::kPush), "push");
  EXPECT_STREQ(scheme_name(BroadcastScheme::kFourChoice), "four-choice");
  EXPECT_STREQ(scheme_name(BroadcastScheme::kMedianCounter),
               "median-counter");
}

TEST(CoreBroadcast, ParseSchemeRoundTripsEveryCanonicalName) {
  // kAllSchemes is the single source of truth for "all schemes": it must
  // cover the enum and round-trip through scheme_name/parse_scheme.
  EXPECT_EQ(kAllSchemes.size(), 8U);
  for (const BroadcastScheme scheme : kAllSchemes)
    EXPECT_EQ(parse_scheme(scheme_name(scheme)), scheme);
}

TEST(CoreBroadcast, ParseSchemeAcceptsAliasesAndRejectsUnknown) {
  EXPECT_EQ(parse_scheme("median"), BroadcastScheme::kMedianCounter);
  EXPECT_EQ(parse_scheme("seq"), BroadcastScheme::kSequentialised);
  EXPECT_EQ(parse_scheme("fixed-horizon"),
            BroadcastScheme::kFixedHorizonPush);
  EXPECT_EQ(parse_scheme("throttled"), BroadcastScheme::kThrottledPushPull);
  EXPECT_FALSE(parse_scheme("warp-speed").has_value());
  EXPECT_FALSE(parse_scheme("").has_value());
}

TEST(CoreBroadcast, SchemeShapeDispatchMatchesGraphDispatch) {
  // The SchemeShape overload of with_scheme must pair the same channel the
  // Graph overload derives (harnesses without a Graph — the churn overlay,
  // simulate_cli's flag path — rely on it).
  const Graph g = regular_graph_for(64, 6, 21);
  SchemeShape shape;
  shape.n = g.num_nodes();
  shape.degree = 6;
  shape.mean_degree = 6.0;
  for (const BroadcastScheme scheme : kAllSchemes) {
    BroadcastOptions options;
    options.scheme = scheme;
    options.failure_prob = 0.125;
    const ChannelConfig from_graph = make_scheme(g, options).channel;
    const ChannelConfig from_shape = with_scheme(
        shape, options,
        [](auto, const ChannelConfig& channel) { return channel; });
    EXPECT_EQ(from_shape.num_choices, from_graph.num_choices)
        << scheme_name(scheme);
    EXPECT_EQ(from_shape.memory, from_graph.memory) << scheme_name(scheme);
    EXPECT_EQ(from_shape.quasirandom, from_graph.quasirandom)
        << scheme_name(scheme);
    EXPECT_EQ(from_shape.failure_prob, from_graph.failure_prob)
        << scheme_name(scheme);
  }
}

TEST(CoreBroadcast, SchemeNameRejectsUnknownEnum) {
  // Regression: the fallback used to return "?" silently.
  EXPECT_THROW((void)scheme_name(static_cast<BroadcastScheme>(255)),
               std::logic_error);
}

TEST(CoreBroadcast, MakeSchemeRejectsUnknownEnum) {
  const Graph g = regular_graph_for(64, 4, 13);
  BroadcastOptions opt;
  opt.scheme = static_cast<BroadcastScheme>(255);
  EXPECT_THROW((void)make_scheme(g, opt), std::logic_error);
}

TEST(CoreBroadcast, FixedHorizonRejectsEmptyAdjacency) {
  // Regression: mean degree over an edgeless graph used to produce a
  // bogus d = 3 horizon instead of failing loudly.
  const std::vector<Edge> no_edges;
  const Graph g = Graph::from_edges(4, no_edges);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kFixedHorizonPush;
  EXPECT_THROW((void)make_scheme(g, opt), std::logic_error);
}

TEST(CoreBroadcast, FixedHorizonMeanDegreeRounds) {
  // Regression: integer division truncated the mean degree. An 8-node ring
  // with 7 chords has mean degree 2·15/8 = 3.75: truncation derived d = 3,
  // rounding must derive d = 4 — observable through the protocol's horizon
  // because C_3 != C_4 in make_push_horizon.
  std::vector<Edge> edges;
  for (NodeId v = 0; v < 8; ++v) edges.push_back({v, (v + 1) % 8});
  for (NodeId v = 0; v < 7; ++v) edges.push_back({v, (v + 2) % 8});
  const Graph g = Graph::from_edges(8, edges);
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kFixedHorizonPush;
  opt.n_estimate = 1 << 10;  // pin n̂ so the horizon depends only on d
  const SchemeParts parts = make_scheme(g, opt);
  // make_scheme type-erases through the thin adapter; unwrap it to reach
  // the concrete protocol.
  const auto* push = dynamic_cast<const ProtocolAdapter<FixedHorizonPush>*>(
      parts.protocol.get());
  ASSERT_NE(push, nullptr);
  EXPECT_EQ(push->inner().horizon(), make_push_horizon(1 << 10, 4));
  EXPECT_NE(push->inner().horizon(), make_push_horizon(1 << 10, 3));
}

TEST(CoreBroadcast, FixedHorizonAcceptsNearEdgelessGraph) {
  // Mean degree below 3 (a star: 2·63/64 ≈ 1.97) clamps to the d = 3
  // floor and still yields a usable protocol rather than throwing.
  const SchemeParts parts = [] {
    BroadcastOptions opt;
    opt.scheme = BroadcastScheme::kFixedHorizonPush;
    return make_scheme(star(64), opt);
  }();
  ASSERT_NE(parts.protocol, nullptr);
  EXPECT_STREQ(parts.protocol->name(), "push/fixed-horizon");
}

}  // namespace
}  // namespace rrb
