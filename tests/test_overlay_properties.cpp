/// Parameterised stress suite for the dynamic overlay: invariants under
/// sustained churn across (size, degree, churn-intensity) combinations.

#include <gtest/gtest.h>

#include "rrb/graph/algorithms.hpp"
#include "rrb/p2p/churn.hpp"
#include "rrb/p2p/overlay.hpp"

namespace rrb {
namespace {

struct OverlayGridParam {
  int initial;
  int degree;
  double rate;  // joins & leaves per "round"
  int steps;
};

class OverlayGrid : public ::testing::TestWithParam<OverlayGridParam> {};

TEST_P(OverlayGrid, InvariantsHoldUnderSustainedChurn) {
  const auto param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.initial * 13 + param.degree));
  DynamicOverlay overlay(static_cast<NodeId>(param.initial * 2),
                         static_cast<NodeId>(param.initial),
                         static_cast<NodeId>(param.degree), rng);
  ChurnConfig cfg;
  cfg.joins_per_round = param.rate;
  cfg.leaves_per_round = param.rate;
  cfg.switches_per_round = 2;
  cfg.min_alive = static_cast<Count>(param.degree + 2);
  ChurnDriver driver(overlay, cfg, rng);

  for (int step = 1; step <= param.steps; ++step) {
    driver.apply(step);
    if (step % 50 == 0) overlay.check_invariants();
  }
  overlay.check_invariants();

  // Dead slots carry no edges; alive degrees stay in a sane band.
  for (NodeId v = 0; v < overlay.num_slots(); ++v) {
    if (!overlay.is_alive(v)) {
      EXPECT_EQ(overlay.degree(v), 0U);
      continue;
    }
    EXPECT_LE(overlay.degree(v), 6U * static_cast<NodeId>(param.degree));
  }
}

TEST_P(OverlayGrid, AliveCoreStaysLargelyConnected) {
  const auto param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.initial * 29 + param.degree));
  DynamicOverlay overlay(static_cast<NodeId>(param.initial * 2),
                         static_cast<NodeId>(param.initial),
                         static_cast<NodeId>(param.degree), rng);
  ChurnConfig cfg;
  cfg.joins_per_round = param.rate;
  cfg.leaves_per_round = param.rate;
  cfg.switches_per_round = 4;
  ChurnDriver driver(overlay, cfg, rng);
  for (int step = 1; step <= param.steps; ++step) driver.apply(step);

  // The giant component of the alive subgraph must cover (nearly) all
  // alive nodes — the random re-pairing in leave() plus maintenance
  // switches preserve expansion.
  const Graph snap = overlay.snapshot();
  const auto comps = connected_components(snap);
  std::vector<Count> sizes(comps.count, 0);
  Count alive = 0;
  for (NodeId v = 0; v < snap.num_nodes(); ++v) {
    if (!overlay.is_alive(v)) continue;
    ++alive;
    ++sizes[comps.label[v]];
  }
  Count giant = 0;
  for (const Count s : sizes) giant = std::max(giant, s);
  EXPECT_GE(static_cast<double>(giant),
            0.99 * static_cast<double>(alive));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverlayGrid,
    ::testing::Values(OverlayGridParam{64, 4, 1.0, 200},
                      OverlayGridParam{128, 6, 2.0, 300},
                      OverlayGridParam{256, 8, 4.0, 300},
                      OverlayGridParam{256, 6, 8.0, 200},
                      OverlayGridParam{512, 8, 16.0, 150}));

/// Join/leave round-trips conserve slot bookkeeping exactly.
class OverlaySlotGrid : public ::testing::TestWithParam<int> {};

TEST_P(OverlaySlotGrid, RepeatedJoinLeaveCyclesConserveSlots) {
  const int cycles = GetParam();
  Rng rng(0x5107);
  DynamicOverlay overlay(96, 64, 6, rng);
  const Count initial_alive = overlay.num_alive();
  for (int c = 0; c < cycles; ++c) {
    const auto joined = overlay.join(rng);
    ASSERT_TRUE(joined.has_value());
    ASSERT_TRUE(overlay.leave(*joined, rng));
  }
  overlay.check_invariants();
  EXPECT_EQ(overlay.num_alive(), initial_alive);
}

INSTANTIATE_TEST_SUITE_P(Grid, OverlaySlotGrid,
                         ::testing::Values(1, 10, 100, 500));

}  // namespace
}  // namespace rrb
