/// Batched-vs-sequential bit-identity suite: the acceptance criterion of
/// the trial-batched engine. RunnerConfig::batch is pure scheduling —
/// every lane keeps its own Rng(seed).fork(i) stream and the lockstep loop
/// replays the sequential engine's per-lane draw order exactly — so for
/// all eight schemes, B in {1, 4, 32} and worker threads 1/4, the batched
/// drivers must reproduce the sequential outputs (and observer streams) to
/// the bit. The sequential outputs themselves are frozen by
/// tests/test_golden_results.cpp, so equality here chains the batched path
/// to the recorded goldens.

#include "rrb/phonecall/batched_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/metrics/observers.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/sim/trial.hpp"

namespace rrb {
namespace {

void expect_round_eq(const RoundStats& a, const RoundStats& b) {
  EXPECT_EQ(a.t, b.t);
  EXPECT_EQ(a.transmitting_nodes, b.transmitting_nodes);
  EXPECT_EQ(a.channels_opened, b.channels_opened);
  EXPECT_EQ(a.channels_failed, b.channels_failed);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.pull_tx, b.pull_tx);
  EXPECT_EQ(a.newly_informed, b.newly_informed);
  EXPECT_EQ(a.informed, b.informed);
}

void expect_run_eq(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.pull_tx, b.pull_tx);
  EXPECT_EQ(a.channels_opened, b.channels_opened);
  EXPECT_EQ(a.channels_failed, b.channels_failed);
  EXPECT_EQ(a.final_informed, b.final_informed);
  EXPECT_EQ(a.alive_at_end, b.alive_at_end);
  EXPECT_EQ(a.all_informed, b.all_informed);
  ASSERT_EQ(a.per_round.size(), b.per_round.size());
  for (std::size_t i = 0; i < a.per_round.size(); ++i)
    expect_round_eq(a.per_round[i], b.per_round[i]);
}

void expect_summary_eq(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.count, b.count);
}

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    SCOPED_TRACE("trial " + std::to_string(i));
    expect_run_eq(a.runs[i], b.runs[i]);
  }
  expect_summary_eq(a.rounds, b.rounds);
  expect_summary_eq(a.completion_round, b.completion_round);
  expect_summary_eq(a.total_tx, b.total_tx);
  expect_summary_eq(a.tx_per_node, b.tx_per_node);
  expect_summary_eq(a.push_tx, b.push_tx);
  expect_summary_eq(a.pull_tx, b.pull_tx);
  expect_summary_eq(a.coverage, b.coverage);
  EXPECT_EQ(a.completion_rate, b.completion_rate);
}

Graph test_graph() {
  Rng grng(0xba7c4);
  return random_regular_simple(256, 8, grng);
}

// ---- All schemes x B in {1, 4, 32} x threads {1, 4} ------------------------

TEST(BatchedBitIdentity, AllSchemesAllBatchesAllThreads) {
  const Graph g = test_graph();
  for (const BroadcastScheme scheme : kAllSchemes) {
    BroadcastOptions opt;
    opt.scheme = scheme;
    opt.seed = 0xba7c401;
    opt.trials = 37;  // not a multiple of 4 or 32: exercises partial groups
    opt.runner.threads = 1;
    opt.runner.batch = 0;
    const TrialOutcome sequential = broadcast_trials(g, opt);
    for (const int batch : {1, 4, 32}) {
      for (const int threads : {1, 4}) {
        SCOPED_TRACE(std::string(scheme_name(scheme)) + " B=" +
                     std::to_string(batch) + " threads=" +
                     std::to_string(threads));
        BroadcastOptions batched = opt;
        batched.runner.batch = batch;
        batched.runner.threads = threads;
        expect_outcome_eq(broadcast_trials(g, batched), sequential);
      }
    }
  }
}

TEST(BatchedBitIdentity, GoldenFacadeConfigUnchanged) {
  // The exact broadcast_trials configuration of the golden suite
  // (tests/test_golden_results.cpp): batching it must land on the same
  // recorded numbers.
  Rng grng(0xfeed);
  const Graph g = random_regular_simple(512, 8, grng);
  for (const BroadcastScheme scheme : kAllSchemes) {
    SCOPED_TRACE(scheme_name(scheme));
    BroadcastOptions opt;
    opt.scheme = scheme;
    opt.seed = 0x5eed02;
    opt.trials = 4;
    const TrialOutcome sequential = broadcast_trials(g, opt);
    opt.runner.batch = 32;  // one group larger than the trial count
    expect_outcome_eq(broadcast_trials(g, opt), sequential);
  }
}

// ---- Channel-model variants the scheme sweep does not cover ----------------

TEST(BatchedBitIdentity, FailureQuasirandomAndMemoryVariants) {
  const Graph g = test_graph();
  struct Variant {
    const char* name;
    BroadcastScheme scheme;
    double failure_prob;
    bool quasirandom;
  };
  const Variant variants[] = {
      // Per-channel failure bernoullis interleave with the partner draws.
      {"pushpull+failures", BroadcastScheme::kPushPull, 0.15, false},
      // Quasirandom cursors draw exactly once, on first use per node.
      {"push+quasirandom", BroadcastScheme::kPush, 0.0, true},
      // Memory rings feed the rejection-sampling loop; failed channels
      // still enter the ring (see engine.hpp), so failures cross-couple
      // with the memory draws.
      {"sequentialised+failures", BroadcastScheme::kSequentialised, 0.1,
       false},
  };
  for (const Variant& variant : variants) {
    SCOPED_TRACE(variant.name);
    BroadcastOptions opt;
    opt.scheme = variant.scheme;
    opt.seed = 0xba7c402;
    opt.trials = 11;
    opt.failure_prob = variant.failure_prob;
    opt.quasirandom = variant.quasirandom;
    const TrialOutcome sequential = broadcast_trials(g, opt);
    for (const int batch : {4, 32}) {
      SCOPED_TRACE(batch);
      BroadcastOptions batched = opt;
      batched.runner.batch = batch;
      batched.runner.threads = 4;
      expect_outcome_eq(broadcast_trials(g, batched), sequential);
    }
  }
}

TEST(BatchedBitIdentity, FixedSourceRecordRoundsAndTruncation) {
  const Graph g = test_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kFourChoice;
  opt.seed = 0xba7c403;
  opt.trials = 9;
  opt.record_rounds = true;  // per-round stats compared bit-for-bit
  opt.max_rounds = 3;        // every lane truncates at the horizon
  const TrialOutcome sequential = broadcast_trials(g, opt, NodeId{5});
  for (const RunResult& run : sequential.runs) {
    EXPECT_EQ(run.rounds, 3);
    EXPECT_FALSE(run.all_informed);
  }
  BroadcastOptions batched = opt;
  batched.runner.batch = 4;
  expect_outcome_eq(broadcast_trials(g, batched, NodeId{5}), sequential);
}

// ---- Observer streams ------------------------------------------------------

using FreeStack =
    ObserverSet<RunSummaryObserver, SetSizeObserver, TxHistogramObserver,
                InformedLatencyObserver>;

TEST(BatchedObservers, ObserverStreamsMatchSequential) {
  const Graph g = test_graph();
  BroadcastOptions opt;
  opt.scheme = BroadcastScheme::kPushPull;
  opt.seed = 0xba7c404;
  opt.trials = 13;
  opt.runner.threads = 1;
  const ObservedOutcome<FreeStack> sequential =
      broadcast_trials(g, opt, [](const Graph&) { return FreeStack{}; });
  for (const int batch : {1, 5}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("B=" + std::to_string(batch) + " threads=" +
                   std::to_string(threads));
      BroadcastOptions batched = opt;
      batched.runner.batch = batch;
      batched.runner.threads = threads;
      const ObservedOutcome<FreeStack> observed = broadcast_trials(
          g, batched, [](const Graph&) { return FreeStack{}; });
      expect_outcome_eq(observed.outcome, sequential.outcome);
      ASSERT_EQ(observed.observers.size(), sequential.observers.size());
      for (std::size_t i = 0; i < observed.observers.size(); ++i) {
        SCOPED_TRACE("trial " + std::to_string(i));
        const FreeStack& got = observed.observers[i];
        const FreeStack& want = sequential.observers[i];
        // Hook-derived whole-run summary (on_run_begin/round_end/run_end).
        expect_run_eq(got.get<RunSummaryObserver>().result(),
                      want.get<RunSummaryObserver>().result());
        // Per-round informed_at scans (exercises the lane gather path).
        const auto& got_points = got.get<SetSizeObserver>().points();
        const auto& want_points = want.get<SetSizeObserver>().points();
        ASSERT_EQ(got_points.size(), want_points.size());
        for (std::size_t p = 0; p < got_points.size(); ++p) {
          EXPECT_EQ(got_points[p].t, want_points[p].t);
          EXPECT_EQ(got_points[p].informed, want_points[p].informed);
          EXPECT_EQ(got_points[p].newly_informed,
                    want_points[p].newly_informed);
          EXPECT_EQ(got_points[p].uninformed, want_points[p].uninformed);
        }
        // Per-transmission stream (on_transmission, per-node counters).
        EXPECT_EQ(got.get<TxHistogramObserver>().sends(),
                  want.get<TxHistogramObserver>().sends());
        // on_run_end latency digest.
        EXPECT_EQ(got.get<InformedLatencyObserver>().latencies(),
                  want.get<InformedLatencyObserver>().latencies());
      }
    }
  }
}

// ---- The fixed-graph run_trials overload -----------------------------------

TEST(BatchedRunTrials, FixedGraphOverloadMatchesSequential) {
  const Graph g = test_graph();
  const ProtocolFactory pf = [](const Graph& graph) {
    FourChoiceConfig cfg;
    cfg.n_estimate = graph.num_nodes();
    return make_protocol<FourChoiceBroadcast>(cfg);
  };
  for (const bool random_source : {true, false}) {
    SCOPED_TRACE(random_source ? "random-source" : "source-0");
    TrialConfig cfg;
    cfg.trials = 37;
    cfg.seed = 0xba7c405;
    cfg.channel.num_choices = 4;
    cfg.random_source = random_source;
    cfg.runner.threads = 1;
    const TrialOutcome sequential = run_trials(g, pf, cfg);
    for (const int batch : {1, 4, 32}) {
      for (const int threads : {1, 4}) {
        SCOPED_TRACE("B=" + std::to_string(batch) + " threads=" +
                     std::to_string(threads));
        TrialConfig batched = cfg;
        batched.runner.batch = batch;
        batched.runner.threads = threads;
        expect_outcome_eq(run_trials(g, pf, batched), sequential);
      }
    }
  }
}

TEST(BatchedRunTrials, TrialStreamsStayKeyedOnSeedAndIndex) {
  // Reconstruct trial 3 by hand from the seeding contract — fork(3), source
  // draw, then the engine — and compare against slot 3 of a batched sweep.
  // Batching (and its group scheduling) must be invisible to the stream.
  const Graph g = test_graph();
  const ProtocolFactory pf = [](const Graph&) {
    return make_protocol<PushProtocol>();
  };
  TrialConfig cfg;
  cfg.trials = 10;
  cfg.seed = 0xba7c406;
  cfg.runner.batch = 4;  // trial 3 is the last lane of group 0
  cfg.runner.threads = 4;
  const TrialOutcome batched = run_trials(g, pf, cfg);

  Rng rng = Rng(cfg.seed).fork(3);
  auto protocol = pf(g);
  GraphTopology topo(g);
  PhoneCallEngine<GraphTopology> engine(topo, cfg.channel, rng);
  const NodeId source = static_cast<NodeId>(rng.uniform_u64(g.num_nodes()));
  const RunResult by_hand = engine.run(*protocol, source, RunLimits{});
  expect_run_eq(batched.runs[3], by_hand);
}

// ---- Driving the engine directly -------------------------------------------

TEST(BatchedEngine, SingleLaneMatchesSequentialEngine) {
  const Graph g = test_graph();
  const ChannelConfig channel;
  RunLimits limits;
  limits.record_rounds = true;

  Rng seq_rng = Rng(0xba7c407).fork(0);
  PushProtocol seq_proto;
  GraphTopology topo(g);
  PhoneCallEngine<GraphTopology> engine(topo, channel, seq_rng);
  const RunResult sequential = engine.run(seq_proto, NodeId{7}, limits);

  std::vector<Rng> rngs{Rng(0xba7c407).fork(0)};
  PushProtocol lane_proto;
  PushProtocol* protos[] = {&lane_proto};
  const NodeId sources[] = {NodeId{7}};
  BatchedPhoneCallEngine<GraphTopology> batched(topo, channel);
  const std::vector<RunResult> results =
      batched.run(std::span<PushProtocol* const>(protos),
                  std::span<const NodeId>(sources), std::span<Rng>(rngs),
                  limits);
  ASSERT_EQ(results.size(), 1U);
  expect_run_eq(results[0], sequential);
}

TEST(BatchedEngine, StateDependentHookFreeProtocolMatchesSequential) {
  // A hook-free protocol whose action reads the node's local state. It must
  // NOT declare kActionIgnoresState, so the kernel has to route it through
  // the generic per-(node, lane) action scan rather than the classical
  // broadcast-one-action path — this pins that branch now that all four
  // baselines take the classical one.
  struct TiredPush {
    Action action(NodeId /*v*/, const NodeLocalState& state, Round t) {
      // Push for the three rounds after becoming informed, then go quiet.
      return t - state.informed_at <= 3 ? Action::kPush : Action::kNone;
    }
    bool finished(Round /*t*/, Count informed, Count alive) const {
      return informed >= alive;
    }
    const char* name() const { return "tired-push"; }
  };

  const Graph g = test_graph();
  const ChannelConfig channel;
  GraphTopology topo(g);
  RunLimits limits;
  limits.max_rounds = 64;  // the protocol can stall short of completion
  limits.record_rounds = true;

  constexpr std::size_t kLanes = 5;
  std::vector<TiredPush> lane_protos(kLanes);
  std::vector<TiredPush*> protos;
  std::vector<NodeId> sources;
  std::vector<Rng> rngs;
  for (std::size_t i = 0; i < kLanes; ++i) {
    protos.push_back(&lane_protos[i]);
    sources.push_back(static_cast<NodeId>(3 * i));
    rngs.push_back(Rng(0xba7c409).fork(i));
  }
  BatchedPhoneCallEngine<GraphTopology> batched(topo, channel);
  const std::vector<RunResult> results =
      batched.run(std::span<TiredPush* const>(protos),
                  std::span<const NodeId>(sources), std::span<Rng>(rngs),
                  limits);

  ASSERT_EQ(results.size(), kLanes);
  for (std::size_t i = 0; i < kLanes; ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    Rng rng = Rng(0xba7c409).fork(i);
    TiredPush proto;
    PhoneCallEngine<GraphTopology> engine(topo, channel, rng);
    expect_run_eq(results[i],
                  engine.run(proto, static_cast<NodeId>(3 * i), limits));
  }
}

TEST(BatchedEngine, RejectsMismatchedLaneSpans) {
  const Graph g = test_graph();
  GraphTopology topo(g);
  BatchedPhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{});
  PushProtocol p0;
  PushProtocol p1;
  PushProtocol* protos[] = {&p0, &p1};
  const NodeId one_source[] = {NodeId{0}};
  std::vector<Rng> rngs{Rng(1).fork(0), Rng(1).fork(1)};
  EXPECT_THROW(
      (void)engine.run(std::span<PushProtocol* const>(protos),
                       std::span<const NodeId>(one_source),
                       std::span<Rng>(rngs), RunLimits{}),
      std::logic_error);
}

TEST(BatchedEngine, RejectsNegativeBatchConfig) {
  RunnerConfig bad;
  bad.batch = -1;
  EXPECT_THROW(ParallelRunner{bad}, std::logic_error);
}

}  // namespace
}  // namespace rrb
