#include "rrb/rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <iterator>
#include <map>
#include <numeric>
#include <set>
#include <vector>

namespace rrb {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256StarStar a(123);
  Xoshiro256StarStar b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ZeroSeedIsNotDegenerate) {
  Xoshiro256StarStar g(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 60U);  // essentially all distinct
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64BoundOneAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_u64(1), 0U);
}

TEST(Rng, UniformU64ZeroBoundThrows) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform_u64(0), std::logic_error);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(4);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_u64(kBuckets))];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(9);
  constexpr int kDraws = 50000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(10);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::logic_error);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::logic_error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(12);
  std::vector<int> v(64);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  int fixed = 0;
  for (int i = 0; i < 64; ++i)
    if (v[static_cast<size_t>(i)] == i) ++fixed;
  EXPECT_LT(fixed, 10);  // expected ~1 fixed point
}

TEST(Rng, ShuffleUniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should appear with frequency ~1/6.
  Rng rng(13);
  std::map<std::vector<int>, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.shuffle(std::span<int>(v));
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6U);
  for (const auto& [perm, c] : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 6.0, 0.01);
}

TEST(Rng, SampleDistinctProducesDistinctValuesInRange) {
  Rng rng(14);
  std::vector<std::uint64_t> out;
  for (int rep = 0; rep < 100; ++rep) {
    rng.sample_distinct(50, 10, out);
    ASSERT_EQ(out.size(), 10U);
    std::set<std::uint64_t> set(out.begin(), out.end());
    EXPECT_EQ(set.size(), 10U);
    for (const auto v : out) EXPECT_LT(v, 50U);
  }
}

TEST(Rng, SampleDistinctFullRangeIsPermutationOfSet) {
  Rng rng(15);
  std::vector<std::uint64_t> out;
  rng.sample_distinct(8, 8, out);
  std::set<std::uint64_t> set(out.begin(), out.end());
  EXPECT_EQ(set.size(), 8U);
}

TEST(Rng, SampleDistinctMarginalsAreUniform) {
  // Each element of [0,10) should be included in a 3-subset w.p. 3/10.
  Rng rng(16);
  std::vector<int> counts(10, 0);
  std::vector<std::uint64_t> out;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    rng.sample_distinct(10, 3, out);
    for (const auto v : out) ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.3, 0.015);
}

TEST(Rng, SampleDistinctSmallDistinctAndInRange) {
  Rng rng(17);
  std::array<std::uint32_t, 8> buf{};
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t got =
        rng.sample_distinct_small(12, 4, std::span<std::uint32_t>(buf));
    ASSERT_EQ(got, 4U);
    std::set<std::uint32_t> set(buf.begin(), buf.begin() + 4);
    EXPECT_EQ(set.size(), 4U);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(buf[i], 12U);
  }
}

TEST(Rng, SampleDistinctSmallKEqualsN) {
  Rng rng(18);
  std::array<std::uint32_t, 8> buf{};
  const std::size_t got =
      rng.sample_distinct_small(4, 4, std::span<std::uint32_t>(buf));
  ASSERT_EQ(got, 4U);
  std::set<std::uint32_t> set(buf.begin(), buf.begin() + 4);
  EXPECT_EQ(set, (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Rng, SampleDistinctSmallMarginalsAreUniform) {
  Rng rng(19);
  std::array<std::uint32_t, 8> buf{};
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    rng.sample_distinct_small(8, 4, std::span<std::uint32_t>(buf));
    for (std::size_t j = 0; j < 4; ++j) ++counts[buf[j]];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.5, 0.02);
}

TEST(RngFork, KeyedOnSeedAndStreamOnly) {
  // fork(i) is a pure function of (construction seed, i): draws and other
  // forks made beforehand must not change it.
  Rng pristine(77);
  Rng exercised(77);
  for (int i = 0; i < 1000; ++i) (void)exercised.next_u64();
  (void)exercised.fork(3);
  (void)exercised.split();
  Rng a = pristine.fork(5);
  Rng b = exercised.fork(5);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngFork, IndependentOfForkOrder) {
  Rng parent(0xabcd);
  Rng f2_first = parent.fork(2);
  Rng f0 = parent.fork(0);
  Rng f2_again = parent.fork(2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(f2_first.next_u64(), f2_again.next_u64());
  EXPECT_NE(f0.next_u64(), parent.fork(2).next_u64());
}

TEST(RngFork, SeedAccessorReportsConstructionSeed) {
  EXPECT_EQ(Rng(123).seed(), 123U);
  EXPECT_EQ(Rng(123).fork(4).seed(), derive_seed(123, 4));
}

TEST(RngFork, GoldenValuesAreStableAcrossPlatforms) {
  // Pinned outputs of the (seed, stream) derivation and the first draws of
  // forked streams. These must never change: they define the persistent
  // seeding contract "trial i's stream depends only on (seed, i)", and a
  // silent change would reshuffle every recorded experiment.
  EXPECT_EQ(derive_seed(0, 0), 0x68bcc37221b020bbULL);
  EXPECT_EQ(derive_seed(0, 1), 0xf0e177d57a54eb9bULL);
  EXPECT_EQ(derive_seed(0, 2), 0x10ed4bcd2220f2b1ULL);
  EXPECT_EQ(derive_seed(0, ~0ULL), 0x91951c17b1cf73aaULL);
  EXPECT_EQ(derive_seed(0x5eed, 0), 0xbfd2167601e91816ULL);
  EXPECT_EQ(derive_seed(0x5eed, 1), 0x61e8b5651d7d8438ULL);
  EXPECT_EQ(derive_seed(0x5eed, 2), 0x634daa10c43a7c34ULL);
  EXPECT_EQ(derive_seed(0x5eed, ~0ULL), 0xc40d03ed4ac06394ULL);

  Rng base(0x5eed);
  Rng f0 = base.fork(0);
  EXPECT_EQ(f0.next_u64(), 0x14608cbeac71a062ULL);
  EXPECT_EQ(f0.next_u64(), 0xce9b38b0c6d879b7ULL);
  EXPECT_EQ(f0.next_u64(), 0x9b8d1680baf44a68ULL);
  Rng f1 = base.fork(1);
  EXPECT_EQ(f1.next_u64(), 0x17a68aa5d6bd38efULL);
  EXPECT_EQ(f1.next_u64(), 0xcbaddcf546fa56cbULL);
  Rng f7 = base.fork(7);
  EXPECT_EQ(f7.next_u64(), 0x16ec90289247b717ULL);
  EXPECT_EQ(f7.next_u64(), 0xcd5ff77b0e235647ULL);
}

TEST(RngFork, HashStringGoldenValuesAreStableAcrossPlatforms) {
  // Pinned outputs of the string hash behind named sub-streams: the
  // campaign subsystem keys every cell's randomness on
  // derive_seed(campaign_seed, hash_string(cell_key)), so these values are
  // part of the seeding contract — a silent change would re-seed every
  // recorded campaign (cell seeds themselves are pinned in
  // tests/test_campaign.cpp).
  EXPECT_EQ(hash_string(""), 0x100cdaacc0bc9316ULL);
  EXPECT_EQ(hash_string("rrb"), 0x26feeb5d965b9927ULL);
  EXPECT_EQ(hash_string("cell"), 0x78a140d461eceb33ULL);
  EXPECT_EQ(hash_string("scheme=push;qr=0;graph=regular;n=256;d=8;"
                        "alpha=1.5;failure=0;churn=0"),
            0xcbb35f52f5b19a4bULL);
}

TEST(RngFork, HashStringSeparatesSimilarStrings) {
  const std::vector<std::string> keys = {
      "", "a", "b", "ab", "ba", "aa", "a a", "a  a",
      "scheme=push;n=256", "scheme=push;n=257", "scheme=pull;n=256"};
  std::set<std::uint64_t> seen;
  for (const std::string& key : keys) seen.insert(hash_string(key));
  EXPECT_EQ(seen.size(), keys.size());
}

TEST(RngFork, StreamsArePairwiseNonOverlappingOnAMillionDraws) {
  // Forked streams must behave as independent: any value colliding across
  // two streams' first 1e6 draws would signal overlapping state
  // trajectories. (For honest 64-bit random streams the collision
  // probability over this window is ~2^-22 per pair — treat a hit as a
  // derivation bug, not bad luck.)
  constexpr std::size_t kWindow = 1'000'000;
  Rng base(0xfeedface);
  const std::array<std::uint64_t, 3> streams = {0, 1, 1ULL << 63};
  std::vector<std::vector<std::uint64_t>> draws;
  for (const std::uint64_t id : streams) {
    Rng fork = base.fork(id);
    std::vector<std::uint64_t> window(kWindow);
    for (auto& v : window) v = fork.next_u64();
    std::sort(window.begin(), window.end());
    draws.push_back(std::move(window));
  }
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      std::vector<std::uint64_t> common;
      std::set_intersection(draws[i].begin(), draws[i].end(),
                            draws[j].begin(), draws[j].end(),
                            std::back_inserter(common));
      EXPECT_TRUE(common.empty())
          << common.size() << " collisions between streams " << streams[i]
          << " and " << streams[j];
    }
  }
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(20);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, DeriveSeedIsDeterministicAndSpread) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(42, s));
  EXPECT_EQ(seeds.size(), 100U);
}

/// Property sweep: sample_distinct respects (n, k) contracts across a grid.
class SampleDistinctParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SampleDistinctParam, DistinctInRangeAndFullSize) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + k));
  std::vector<std::uint64_t> out;
  rng.sample_distinct(static_cast<std::uint64_t>(n),
                      static_cast<std::size_t>(k), out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(k));
  std::set<std::uint64_t> set(out.begin(), out.end());
  EXPECT_EQ(set.size(), static_cast<std::size_t>(k));
  for (const auto v : out) EXPECT_LT(v, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampleDistinctParam,
    ::testing::Values(std::tuple{1, 1}, std::tuple{4, 1}, std::tuple{4, 4},
                      std::tuple{10, 3}, std::tuple{100, 7},
                      std::tuple{100, 100}, std::tuple{1000, 64}));

}  // namespace
}  // namespace rrb
