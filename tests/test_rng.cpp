#include "rrb/rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <vector>

namespace rrb {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  EXPECT_NE(splitmix64_next(a), splitmix64_next(b));
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256StarStar a(123);
  Xoshiro256StarStar b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ZeroSeedIsNotDegenerate) {
  Xoshiro256StarStar g(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(g());
  EXPECT_GT(seen.size(), 60U);  // essentially all distinct
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Rng, UniformU64BoundOneAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_u64(1), 0U);
}

TEST(Rng, UniformU64ZeroBoundThrows) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform_u64(0), std::logic_error);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(4);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_u64(kBuckets))];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c), expected, 5.0 * std::sqrt(expected));
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(9);
  constexpr int kDraws = 50000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsOutOfRange) {
  Rng rng(10);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::logic_error);
  EXPECT_THROW((void)rng.bernoulli(1.1), std::logic_error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(12);
  std::vector<int> v(64);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  int fixed = 0;
  for (int i = 0; i < 64; ++i)
    if (v[static_cast<size_t>(i)] == i) ++fixed;
  EXPECT_LT(fixed, 10);  // expected ~1 fixed point
}

TEST(Rng, ShuffleUniformOverSmallPermutations) {
  // All 6 permutations of 3 elements should appear with frequency ~1/6.
  Rng rng(13);
  std::map<std::vector<int>, int> counts;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    std::vector<int> v{0, 1, 2};
    rng.shuffle(std::span<int>(v));
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6U);
  for (const auto& [perm, c] : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 1.0 / 6.0, 0.01);
}

TEST(Rng, SampleDistinctProducesDistinctValuesInRange) {
  Rng rng(14);
  std::vector<std::uint64_t> out;
  for (int rep = 0; rep < 100; ++rep) {
    rng.sample_distinct(50, 10, out);
    ASSERT_EQ(out.size(), 10U);
    std::set<std::uint64_t> set(out.begin(), out.end());
    EXPECT_EQ(set.size(), 10U);
    for (const auto v : out) EXPECT_LT(v, 50U);
  }
}

TEST(Rng, SampleDistinctFullRangeIsPermutationOfSet) {
  Rng rng(15);
  std::vector<std::uint64_t> out;
  rng.sample_distinct(8, 8, out);
  std::set<std::uint64_t> set(out.begin(), out.end());
  EXPECT_EQ(set.size(), 8U);
}

TEST(Rng, SampleDistinctMarginalsAreUniform) {
  // Each element of [0,10) should be included in a 3-subset w.p. 3/10.
  Rng rng(16);
  std::vector<int> counts(10, 0);
  std::vector<std::uint64_t> out;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    rng.sample_distinct(10, 3, out);
    for (const auto v : out) ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.3, 0.015);
}

TEST(Rng, SampleDistinctSmallDistinctAndInRange) {
  Rng rng(17);
  std::array<std::uint32_t, 8> buf{};
  for (int rep = 0; rep < 200; ++rep) {
    const std::size_t got =
        rng.sample_distinct_small(12, 4, std::span<std::uint32_t>(buf));
    ASSERT_EQ(got, 4U);
    std::set<std::uint32_t> set(buf.begin(), buf.begin() + 4);
    EXPECT_EQ(set.size(), 4U);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(buf[i], 12U);
  }
}

TEST(Rng, SampleDistinctSmallKEqualsN) {
  Rng rng(18);
  std::array<std::uint32_t, 8> buf{};
  const std::size_t got =
      rng.sample_distinct_small(4, 4, std::span<std::uint32_t>(buf));
  ASSERT_EQ(got, 4U);
  std::set<std::uint32_t> set(buf.begin(), buf.begin() + 4);
  EXPECT_EQ(set, (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Rng, SampleDistinctSmallMarginalsAreUniform) {
  Rng rng(19);
  std::array<std::uint32_t, 8> buf{};
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    rng.sample_distinct_small(8, 4, std::span<std::uint32_t>(buf));
    for (std::size_t j = 0; j < 4; ++j) ++counts[buf[j]];
  }
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(20);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, DeriveSeedIsDeterministicAndSpread) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) seeds.insert(derive_seed(42, s));
  EXPECT_EQ(seeds.size(), 100U);
}

/// Property sweep: sample_distinct respects (n, k) contracts across a grid.
class SampleDistinctParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SampleDistinctParam, DistinctInRangeAndFullSize) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + k));
  std::vector<std::uint64_t> out;
  rng.sample_distinct(static_cast<std::uint64_t>(n),
                      static_cast<std::size_t>(k), out);
  ASSERT_EQ(out.size(), static_cast<std::size_t>(k));
  std::set<std::uint64_t> set(out.begin(), out.end());
  EXPECT_EQ(set.size(), static_cast<std::size_t>(k));
  for (const auto v : out) EXPECT_LT(v, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampleDistinctParam,
    ::testing::Values(std::tuple{1, 1}, std::tuple{4, 1}, std::tuple{4, 4},
                      std::tuple{10, 3}, std::tuple{100, 7},
                      std::tuple{100, 100}, std::tuple{1000, 64}));

}  // namespace
}  // namespace rrb
