#include "rrb/analysis/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rrb {
namespace {

TEST(Proportional, ExactLineThroughOrigin) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  const ProportionalFit fit = fit_proportional(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Proportional, NoisyDataStillRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const ProportionalFit fit = fit_proportional(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Proportional, SizeMismatchThrows) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1};
  EXPECT_THROW((void)fit_proportional(xs, ys), std::logic_error);
}

TEST(Proportional, AllZeroXThrows) {
  const std::vector<double> xs{0, 0};
  const std::vector<double> ys{1, 2};
  EXPECT_THROW((void)fit_proportional(xs, ys), std::logic_error);
}

TEST(Affine, ExactLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{5, 7, 9, 11};
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Affine, ConstantDataHasZeroSlope) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{4, 4, 4};
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);  // zero residual on zero-variance data
}

TEST(Affine, DegenerateXThrows) {
  const std::vector<double> xs{2, 2};
  const std::vector<double> ys{1, 3};
  EXPECT_THROW((void)fit_affine(xs, ys), std::logic_error);
}

TEST(Power, RecoversExponent) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(5.0 * std::pow(i, 1.7));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.7, 1e-9);
  EXPECT_NEAR(fit.coefficient, 5.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Power, RejectsNonPositiveData) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 0};
  EXPECT_THROW((void)fit_power(xs, ys), std::logic_error);
}

TEST(MeanRatio, GeometricGrowthRecovered) {
  const std::vector<double> ys{1, 2, 4, 8, 16};
  EXPECT_NEAR(mean_consecutive_ratio(ys), 2.0, 1e-12);
}

TEST(MeanRatio, DecayRecovered) {
  const std::vector<double> ys{100, 50, 25, 12.5};
  EXPECT_NEAR(mean_consecutive_ratio(ys), 0.5, 1e-12);
}

TEST(MeanRatio, SkipsZeroes) {
  const std::vector<double> ys{1, 0, 4, 8};
  // Only the (4, 8) pair is usable.
  EXPECT_NEAR(mean_consecutive_ratio(ys), 2.0, 1e-12);
}

TEST(MeanRatio, EmptyOrSingletonIsZero) {
  EXPECT_DOUBLE_EQ(mean_consecutive_ratio(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean_consecutive_ratio(std::vector<double>{5.0}), 0.0);
}

}  // namespace
}  // namespace rrb
