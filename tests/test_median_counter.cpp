#include "rrb/protocols/median_counter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"

namespace rrb {
namespace {

MedianCounterConfig config_for(std::uint64_t n) {
  MedianCounterConfig cfg;
  cfg.n_estimate = n;
  return cfg;
}

RunResult run_mc(const Graph& g, std::uint64_t seed,
                 MedianCounterConfig cfg) {
  MedianCounterProtocol proto(cfg);
  GraphTopology topo(g);
  Rng rng(seed);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  return engine.run(proto, NodeId{0}, RunLimits{});
}

TEST(MedianCounter, ParametersScaleWithN) {
  MedianCounterProtocol small(config_for(1 << 10));
  MedianCounterProtocol large(config_for(1 << 20));
  EXPECT_GE(large.ctr_max(), small.ctr_max());
  EXPECT_GT(large.max_age(), small.max_age());
  EXPECT_GE(small.ctr_max(), 3);
}

TEST(MedianCounter, RejectsTinyEstimate) {
  MedianCounterConfig cfg;
  cfg.n_estimate = 1;
  EXPECT_THROW(MedianCounterProtocol{cfg}, std::logic_error);
}

TEST(MedianCounter, SelfTerminatesOnCompleteGraph) {
  const Graph g = complete(1024);
  const RunResult r = run_mc(g, 1, config_for(1024));
  EXPECT_TRUE(r.all_informed);
  // Terminates on its own well before the engine's default cap.
  EXPECT_LT(r.rounds, 200);
}

TEST(MedianCounter, RoundsAreLogScaleOnCompleteGraph) {
  // Karp et al.: log3 n + O(log log n) rounds to inform everyone.
  const NodeId n = 4096;
  const Graph g = complete(n);
  const RunResult r = run_mc(g, 2, config_for(n));
  ASSERT_TRUE(r.all_informed);
  const double expected = std::log(n) / std::log(3.0);
  EXPECT_GT(static_cast<double>(r.completion_round), 0.6 * expected);
  EXPECT_LT(static_cast<double>(r.completion_round), 3.0 * expected);
}

// Mean per-node transmissions over a few seeds (complete graph, n nodes).
double mean_tx_per_node(NodeId n, std::initializer_list<std::uint64_t> seeds) {
  const Graph g = complete(n);
  double total = 0.0;
  for (const std::uint64_t seed : seeds) {
    const RunResult r = run_mc(g, seed, config_for(n));
    EXPECT_TRUE(r.all_informed);
    total += r.tx_per_node();
  }
  return total / static_cast<double>(seeds.size());
}

TEST(MedianCounter, TransmissionsAreNLogLogScaleOnCompleteGraph) {
  // The whole point of the counter: O(n log log n) transmissions. At
  // laptop scale the honest check is twofold: (a) per-node transmissions
  // stay within a small multiple of log log n, and (b) they grow far more
  // slowly than log n when n is scaled 16x. Seeds are averaged so the
  // ratio bound is not hostage to one unlucky run.
  const double small = mean_tx_per_node(1 << 8, {3, 5, 7});
  const double large = mean_tx_per_node(1 << 12, {4, 6, 8});
  const double lglg_large = std::log2(12.0);
  EXPECT_LT(large, 8.0 * lglg_large);       // small multiple of log log n
  EXPECT_LT(large / small, 1.35);           // log n ratio would be 1.5,
                                            // log log n ratio ~1.2
  EXPECT_GT(large, 1.0);
}

TEST(MedianCounterSlow, TransmissionsScaleTo16k) {
  // The original 64x spread (2^8 -> 2^14): a materialised K_{16384} costs
  // ~1 GB of adjacency and >10 s, so this stronger form of the scaling
  // check lives under the `slow` CTest label (run it via
  // `ctest --preset release-all` or plain `ctest`).
  const double small = mean_tx_per_node(1 << 8, {3});
  const double large = mean_tx_per_node(1 << 14, {4});
  const double lglg_large = std::log2(14.0);
  EXPECT_LT(large, 8.0 * lglg_large);
  EXPECT_LT(large / small, 1.4);            // log n ratio would be 1.75
  EXPECT_GT(large, 1.0);
}

TEST(MedianCounter, StopsEvenIfIsolated) {
  // A graph where the broadcast cannot spread (single node): protocol must
  // still terminate via quiescence/deadline.
  const std::vector<Edge> no_edges;
  const Graph g = Graph::from_edges(1, no_edges);
  MedianCounterProtocol proto(config_for(16));
  GraphTopology topo(g);
  Rng rng(4);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.max_rounds = 10000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_LT(r.rounds, 10000);  // did not hit the cap
}

TEST(MedianCounter, WorksOnRandomRegular) {
  Rng grng(5);
  const NodeId n = 2048;
  const Graph g = random_regular_simple(n, 16, grng);
  const RunResult r = run_mc(g, 6, config_for(n));
  EXPECT_TRUE(r.all_informed);
}

TEST(MedianCounter, UsesBothDirections) {
  const Graph g = complete(256);
  const RunResult r = run_mc(g, 7, config_for(256));
  EXPECT_GT(r.push_tx, 0U);
  EXPECT_GT(r.pull_tx, 0U);
}

TEST(MedianCounter, DeadlineBoundsRunLength) {
  // Even on a hostile topology (long path: pull/push crawl), the protocol
  // stops within max_age + final_rounds of the last activation.
  const Graph g = path(64);
  MedianCounterProtocol proto(config_for(64));
  GraphTopology topo(g);
  Rng rng(8);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.max_rounds = 100000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  // Path broadcast advances >= 1 hop per ~constant rounds; the deadline
  // guarantees every node stops at most max_age + final_rounds after its
  // own activation, so the whole run is O(n + max_age).
  EXPECT_LT(r.rounds, 64 * 8 + proto.max_age() + proto.final_rounds() + 4);
}

TEST(MedianCounter, StampCarriesCounter) {
  MedianCounterProtocol proto(config_for(256));
  proto.reset(4);
  MessageMeta meta;
  meta.counter = 5;
  proto.on_receive(2, meta, 1, /*first_time=*/true);
  // A freshly informed node has ctr = 1 and stamps it.
  EXPECT_EQ(proto.stamp(2, 2).counter, 1);
  // An uninformed node stamps 0 (it never transmits anyway).
  EXPECT_EQ(proto.stamp(3, 2).counter, 0);
}

TEST(MedianCounter, MedianRuleAdvancesCounter) {
  MedianCounterProtocol proto(config_for(256));
  proto.reset(2);
  MessageMeta first;
  first.counter = 1;
  proto.on_receive(0, first, 1, /*first_time=*/true);  // ctr[0] = 1
  // Deliver three copies with counters {2, 2, 3}: median 2 >= 1 -> ctr 2.
  for (const int c : {2, 2, 3}) {
    MessageMeta m;
    m.counter = c;
    proto.on_receive(0, m, 2, /*first_time=*/false);
  }
  proto.on_round_start(3);
  EXPECT_EQ(proto.stamp(0, 3).counter, 2);
}

TEST(MedianCounter, LowMediansDoNotAdvanceCounter) {
  MedianCounterProtocol proto(config_for(256));
  proto.reset(2);
  MessageMeta first;
  first.counter = 1;
  proto.on_receive(0, first, 1, /*first_time=*/true);
  proto.on_round_start(2);  // no samples: unchanged
  EXPECT_EQ(proto.stamp(0, 2).counter, 1);
  // ctr reaches 2 first.
  for (const int c : {5, 5, 5}) {
    MessageMeta m;
    m.counter = c;
    proto.on_receive(0, m, 2, /*first_time=*/false);
  }
  proto.on_round_start(3);
  ASSERT_EQ(proto.stamp(0, 3).counter, 2);
  // Now deliver counters below 2: median 0 < 2, no advance.
  for (const int c : {0, 0, 1}) {
    MessageMeta m;
    m.counter = c;
    proto.on_receive(0, m, 3, /*first_time=*/false);
  }
  proto.on_round_start(4);
  EXPECT_EQ(proto.stamp(0, 4).counter, 2);
}

}  // namespace
}  // namespace rrb
