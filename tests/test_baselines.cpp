#include "rrb/protocols/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/common/math.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"

namespace rrb {
namespace {

template <ProtocolImpl ProtocolT>
RunResult run_protocol(ProtocolT& proto, const Graph& g,
                       std::uint64_t seed, int choices = 1,
                       Round max_rounds = 1 << 16) {
  GraphTopology topo(g);
  Rng rng(seed);
  ChannelConfig cfg;
  cfg.num_choices = choices;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  RunLimits limits;
  limits.max_rounds = max_rounds;
  return engine.run(proto, NodeId{0}, limits);
}

TEST(Push, CompletesOnCompleteGraph) {
  PushProtocol push;
  const Graph g = complete(256);
  const RunResult r = run_protocol(push, g, 1);
  EXPECT_TRUE(r.all_informed);
  // log2(256) + ln(256) ≈ 13.5 expected; generous bracket.
  EXPECT_GE(r.rounds, 8);
  EXPECT_LE(r.rounds, 30);
}

TEST(Push, CompletesOnRandomRegular) {
  Rng grng(2);
  const Graph g = random_regular_simple(1024, 8, grng);
  PushProtocol push;
  const RunResult r = run_protocol(push, g, 3);
  EXPECT_TRUE(r.all_informed);
  EXPECT_LE(r.rounds, 60);
}

TEST(Push, TransmissionsAreThetaNLogN) {
  // Push keeps all informed nodes talking, so total transmissions are
  // ~ n * (tail length) = Θ(n log n). Check the per-node count is well
  // above log log n and in the log n ballpark.
  Rng grng(3);
  const NodeId n = 4096;
  const Graph g = random_regular_simple(n, 8, grng);
  PushProtocol push;
  const RunResult r = run_protocol(push, g, 4);
  ASSERT_TRUE(r.all_informed);
  const double per_node = r.tx_per_node();
  const double lg_n = std::log2(static_cast<double>(n));
  EXPECT_GT(per_node, 0.5 * lg_n);
  EXPECT_LT(per_node, 6.0 * lg_n);
}

TEST(Push, RoundsTrackFountoulakisPanagiotouConstant) {
  // Rounds/ln n should approach C_d (within simulation slack at n = 2^13).
  Rng grng(4);
  const NodeId n = 8192;
  const int d = 8;
  const Graph g = random_regular_simple(n, static_cast<NodeId>(d), grng);
  PushProtocol push;
  double total_rounds = 0.0;
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i)
    total_rounds +=
        static_cast<double>(run_protocol(push, g, 100 + i).rounds);
  const double measured = total_rounds / kReps / std::log(n);
  const double cd = push_constant_cd(d);
  EXPECT_GT(measured, 0.7 * cd);
  EXPECT_LT(measured, 1.5 * cd);
}

TEST(Pull, CompletesOnCompleteGraph) {
  PullProtocol pull;
  const Graph g = complete(256);
  const RunResult r = run_protocol(pull, g, 5);
  EXPECT_TRUE(r.all_informed);
  EXPECT_LE(r.rounds, 40);
}

TEST(Pull, DoublingPhaseThenSuperExponentialTail) {
  // Pull's hallmark: once half the nodes are informed the uninformed count
  // squares away each round (h -> h^2/n on the complete graph), so the
  // tail after n/2 is O(log log n) rounds.
  PullProtocol pull;
  const Graph g = complete(1024);
  GraphTopology topo(g);
  Rng rng(6);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.record_rounds = true;
  const RunResult r = engine.run(pull, NodeId{0}, limits);
  ASSERT_TRUE(r.all_informed);
  Round half_round = 0;
  for (const RoundStats& round : r.per_round)
    if (round.informed >= 512) {
      half_round = round.t;
      break;
    }
  const Round tail = r.completion_round - half_round;
  EXPECT_LE(tail, 6);  // log log 1024 ≈ 3.3
}

TEST(PushPull, CompletesFasterThanPushAlone) {
  Rng grng(7);
  const Graph g = random_regular_simple(2048, 8, grng);
  PushProtocol push;
  PushPullProtocol pp;
  double push_rounds = 0.0;
  double pp_rounds = 0.0;
  constexpr int kReps = 3;
  for (int i = 0; i < kReps; ++i) {
    push_rounds += static_cast<double>(run_protocol(push, g, 10 + i).rounds);
    pp_rounds += static_cast<double>(run_protocol(pp, g, 20 + i).rounds);
  }
  EXPECT_LT(pp_rounds, push_rounds);
}

TEST(PushPull, CompletesOnSparseRandomRegular) {
  Rng grng(8);
  const Graph g = random_regular_simple(1024, 4, grng);
  PushPullProtocol pp;
  const RunResult r = run_protocol(pp, g, 9);
  EXPECT_TRUE(r.all_informed);
  EXPECT_LE(r.rounds, 50);
}

TEST(Baselines, OracleTerminationStopsAtCompletion) {
  const Graph g = complete(64);
  PushProtocol push;
  const RunResult r = run_protocol(push, g, 10);
  EXPECT_EQ(r.rounds, r.completion_round);
}

TEST(Baselines, NamesAreStable) {
  PushProtocol push;
  PullProtocol pull;
  PushPullProtocol pp;
  EXPECT_STREQ(push.name(), "push");
  EXPECT_STREQ(pull.name(), "pull");
  EXPECT_STREQ(pp.name(), "push-pull");
}

TEST(Baselines, PushNeverPulls) {
  Rng grng(11);
  const Graph g = random_regular_simple(512, 6, grng);
  PushProtocol push;
  const RunResult r = run_protocol(push, g, 12);
  EXPECT_EQ(r.pull_tx, 0U);
  EXPECT_GT(r.push_tx, 0U);
}

TEST(Baselines, PullNeverPushes) {
  Rng grng(13);
  const Graph g = random_regular_simple(512, 6, grng);
  PullProtocol pull;
  const RunResult r = run_protocol(pull, g, 14);
  EXPECT_EQ(r.push_tx, 0U);
  EXPECT_GT(r.pull_tx, 0U);
}

TEST(Baselines, PushPullUsesBothDirections) {
  Rng grng(15);
  const Graph g = random_regular_simple(512, 6, grng);
  PushPullProtocol pp;
  const RunResult r = run_protocol(pp, g, 16);
  EXPECT_GT(r.push_tx, 0U);
  EXPECT_GT(r.pull_tx, 0U);
}

/// Property sweep: all baselines complete on random regular graphs across a
/// parameter grid (protocol x n x d).
class BaselineCompletionParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BaselineCompletionParam, AllInformed) {
  const auto [proto_id, n, d] = GetParam();
  Rng grng(static_cast<std::uint64_t>(n * 31 + d));
  const Graph g = random_regular_simple(static_cast<NodeId>(n),
                                        static_cast<NodeId>(d), grng);
  // Runtime protocol selection goes through the thin virtual adapter —
  // exactly the type-erased path ProtocolAdapter exists for.
  ProtocolAdapter<PushProtocol> push;
  ProtocolAdapter<PullProtocol> pull;
  ProtocolAdapter<PushPullProtocol> pp;
  BroadcastProtocol* protos[3] = {&push, &pull, &pp};
  const RunResult r = run_protocol(*protos[proto_id], g,
                                   static_cast<std::uint64_t>(n + d), 1, 2000);
  EXPECT_TRUE(r.all_informed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BaselineCompletionParam,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(128, 512),
                       ::testing::Values(4, 8, 16)));

}  // namespace
}  // namespace rrb
