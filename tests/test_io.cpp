#include "rrb/graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "rrb/graph/generators.hpp"

namespace rrb {
namespace {

TEST(GraphIo, RoundTripSimpleGraph) {
  Rng rng(1);
  const Graph g = random_regular_simple(64, 4, rng);
  const Graph back = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, RoundTripMultigraphWithLoops) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {2, 2}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const Graph back = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(back.edge_multiplicity(0, 1), 2U);
  EXPECT_EQ(back.edge_multiplicity(2, 2), 1U);
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

TEST(GraphIo, RoundTripEmptyAndEdgeless) {
  const Graph g(5);
  const Graph back = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(back.num_nodes(), 5U);
  EXPECT_EQ(back.num_edges(), 0U);
}

TEST(GraphIo, CanonicalOutputIsDeterministic) {
  Rng r1(2);
  Rng r2(2);
  const Graph a = configuration_model(32, 4, r1);
  const Graph b = configuration_model(32, 4, r2);
  EXPECT_EQ(to_edge_list_string(a), to_edge_list_string(b));
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "n 3\n"
      "0 1  # trailing comment\n"
      "\n"
      "1 2\n";
  const Graph g = from_edge_list_string(text);
  EXPECT_EQ(g.num_nodes(), 3U);
  EXPECT_EQ(g.num_edges(), 2U);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, RejectsMissingHeader) {
  EXPECT_THROW((void)from_edge_list_string("0 1\n"), std::runtime_error);
  EXPECT_THROW((void)from_edge_list_string(""), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW((void)from_edge_list_string("n 2\n0 2\n"),
               std::runtime_error);
}

TEST(GraphIo, RejectsMalformedEdges) {
  EXPECT_THROW((void)from_edge_list_string("n 2\n0\n"), std::runtime_error);
  EXPECT_THROW((void)from_edge_list_string("n 2\n0 1 junk\n"),
               std::runtime_error);
  EXPECT_THROW((void)from_edge_list_string("n 2 junk\n"),
               std::runtime_error);
}

TEST(GraphIo, StreamInterfaceMatchesStringInterface) {
  Rng rng(3);
  const Graph g = gnp(40, 0.1, rng);
  std::ostringstream os;
  write_edge_list(os, g);
  std::istringstream is(os.str());
  const Graph back = read_edge_list(is);
  EXPECT_EQ(back.edge_list(), g.edge_list());
}

}  // namespace
}  // namespace rrb
