#include "rrb/bigtopo/bigtopo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "rrb/core/broadcast.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/rng/rng.hpp"

namespace rrb::bigtopo {
namespace {

/// FNV-1a over the full CSR (node count, then each node's degree and
/// sorted neighbour list). Two graphs with equal digests here are
/// byte-identical for every consumer in the library — Graph exposes no
/// state beyond what this walks.
std::uint64_t graph_digest(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    mix(g.degree(v));
    for (const NodeId w : g.neighbors(v)) mix(w);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Canonical chunk grid
// ---------------------------------------------------------------------------

TEST(BigtopoChunks, CanonicalGridCoversNodeRange) {
  EXPECT_EQ(num_canonical_chunks(2), 1U);
  EXPECT_EQ(num_canonical_chunks(kChunkNodes), 1U);
  EXPECT_EQ(num_canonical_chunks(kChunkNodes + 1), 2U);
  EXPECT_EQ(num_canonical_chunks(3 * kChunkNodes), 3U);

  const NodeId n = 2 * kChunkNodes + 123;
  ASSERT_EQ(num_canonical_chunks(n), 3U);
  NodeId covered = 0;
  for (NodeId c = 0; c < 3; ++c) {
    const ChunkRange range = canonical_chunk_range(n, c);
    EXPECT_EQ(range.begin, covered);
    EXPECT_LE(range.end, n);
    covered = range.end;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(canonical_chunk_range(n, 2).end - canonical_chunk_range(n, 2).begin,
            123U);
  EXPECT_THROW((void)canonical_chunk_range(n, 3), std::logic_error);
}

// Chunk-seed goldens, test_rng.cpp style: the chunk contract is
// chunk_seed == derive_seed, and the literal values are pinned so a silent
// change to derive_seed (which would invalidate every chunked graph) fails
// loudly here rather than only in downstream digests.
TEST(BigtopoChunks, ChunkSeedGoldenValues) {
  EXPECT_EQ(chunk_seed(0x5eed, 0), 0xbfd2167601e91816ULL);
  EXPECT_EQ(chunk_seed(0x5eed, 1), 0x61e8b5651d7d8438ULL);
  EXPECT_EQ(chunk_seed(0x5eed, 2), 0x634daa10c43a7c34ULL);
  EXPECT_EQ(chunk_seed(0x5eed, 17), 0x63ed03ebb89139c1ULL);
  EXPECT_EQ(chunk_seed(0, 0), 0x68bcc37221b020bbULL);

  for (std::uint64_t c : {0ULL, 1ULL, 5ULL, 1000ULL})
    EXPECT_EQ(chunk_seed(0xabcdef, c), derive_seed(0xabcdef, c));
}

// ---------------------------------------------------------------------------
// StubPermutation
// ---------------------------------------------------------------------------

TEST(BigtopoPermutation, BijectiveOnAssortedDomains) {
  for (const std::uint64_t domain :
       {2ULL, 3ULL, 10ULL, 97ULL, 1024ULL, 1000ULL, 16389ULL}) {
    for (const std::uint64_t seed : {0ULL, 1ULL, 0x5eedULL}) {
      const StubPermutation perm(seed, domain);
      EXPECT_EQ(perm.domain(), domain);
      std::set<std::uint64_t> images;
      for (std::uint64_t x = 0; x < domain; ++x) {
        const std::uint64_t y = perm.forward(x);
        ASSERT_LT(y, domain);
        images.insert(y);
        ASSERT_EQ(perm.inverse(y), x);
      }
      EXPECT_EQ(images.size(), domain);  // injective + total = bijective
    }
  }
}

TEST(BigtopoPermutation, SeedChangesThePermutation) {
  const StubPermutation a(1, 4096);
  const StubPermutation b(2, 4096);
  int differing = 0;
  for (std::uint64_t x = 0; x < 4096; ++x)
    if (a.forward(x) != b.forward(x)) ++differing;
  EXPECT_GT(differing, 4096 / 2);
}

TEST(BigtopoPermutation, RejectsOutOfDomainAndTrivialDomains) {
  EXPECT_THROW(StubPermutation(7, 0), std::logic_error);
  EXPECT_THROW(StubPermutation(7, 1), std::logic_error);
  const StubPermutation perm(7, 100);
  EXPECT_THROW((void)perm.forward(100), std::logic_error);
  EXPECT_THROW((void)perm.inverse(100), std::logic_error);
}

// ---------------------------------------------------------------------------
// chunked_configuration_model
// ---------------------------------------------------------------------------

TEST(BigtopoConfigModel, ExactRegularMultigraphSemantics) {
  const Graph g = chunked_configuration_model({.n = 2048, .d = 4, .seed = 9});
  EXPECT_EQ(g.num_nodes(), 2048U);
  ASSERT_TRUE(g.regular_degree().has_value());
  EXPECT_EQ(*g.regular_degree(), 4U);
  EXPECT_EQ(g.num_edges(), 2048U * 4 / 2);
}

TEST(BigtopoConfigModel, ByteIdenticalForEveryChunkCount) {
  // Spans three canonical chunks so batching genuinely regroups work.
  ChunkedParams params{.n = 2 * kChunkNodes + 778, .d = 4, .seed = 0xb16};
  const std::uint64_t reference = graph_digest(chunked_configuration_model(params));
  for (const int chunks : {1, 4, 17}) {
    params.chunks = chunks;
    EXPECT_EQ(graph_digest(chunked_configuration_model(params)), reference)
        << "chunks=" << chunks;
  }
}

TEST(BigtopoConfigModel, ByteIdenticalForEveryChunkOrder) {
  const ChunkedParams params{.n = 3 * kChunkNodes, .d = 3, .seed = 0xb16};
  const std::uint64_t reference =
      graph_digest(chunked_configuration_model(params));

  std::vector<NodeId> order(num_canonical_chunks(params.n));
  std::iota(order.begin(), order.end(), NodeId{0});
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(graph_digest(chunked_configuration_model(params, order)),
            reference);

  // A deterministic shuffle (Rng, not std::shuffle — platform-pinned).
  Rng rng(42);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_u64(i)]);
  EXPECT_EQ(graph_digest(chunked_configuration_model(params, order)),
            reference);
}

// The compact slot-addressed build must equal the reference edge-list path:
// pair the stubs with the same PRP, round-trip through from_edges, and
// compare bytes. This chains the chunked generator to the library's
// canonical CSR construction.
TEST(BigtopoConfigModel, MatchesEdgeListPairingReference) {
  const ChunkedParams params{.n = 64, .d = 3, .seed = 0x5eed};
  const std::uint64_t stubs =
      static_cast<std::uint64_t>(params.n) * params.d;
  const StubPermutation perm(
      derive_seed(params.seed, hash_string("bigtopo/pairing")), stubs);

  std::vector<Edge> edges;
  for (std::uint64_t s = 0; s < stubs; ++s) {
    const std::uint64_t partner = perm.inverse(perm.forward(s) ^ 1);
    if (s < partner)
      edges.push_back({static_cast<NodeId>(s / params.d),
                       static_cast<NodeId>(partner / params.d)});
  }
  ASSERT_EQ(edges.size(), stubs / 2);

  const Graph reference = Graph::from_edges(params.n, edges);
  const Graph chunked = chunked_configuration_model(params);
  EXPECT_EQ(graph_digest(chunked), graph_digest(reference));
  EXPECT_EQ(chunked.num_self_loops(), reference.num_self_loops());
  EXPECT_EQ(chunked.num_parallel_extra(), reference.num_parallel_extra());
}

// Golden digest: the full CSR of a fixed (n, d, seed) is pinned. Any change
// to the PRP, the chunk grid, or the pairing rule shows up here.
TEST(BigtopoConfigModel, GoldenDigest) {
  const Graph g = chunked_configuration_model({.n = 4096, .d = 6, .seed = 0xb16});
  EXPECT_EQ(graph_digest(g), 0x98a5bd1ec21e18c5ULL);
}

TEST(BigtopoConfigModel, RejectsInvalidParameters) {
  EXPECT_THROW((void)chunked_configuration_model({.n = 0, .d = 2, .seed = 1}),
               std::logic_error);
  EXPECT_THROW((void)chunked_configuration_model({.n = 1, .d = 2, .seed = 1}),
               std::logic_error);
  EXPECT_THROW((void)chunked_configuration_model({.n = 16, .d = 0, .seed = 1}),
               std::logic_error);
  // n*d odd: no perfect matching on the stubs.
  EXPECT_THROW((void)chunked_configuration_model({.n = 15, .d = 3, .seed = 1}),
               std::logic_error);
  // Bad execution orders.
  const ChunkedParams params{.n = 3 * kChunkNodes, .d = 2, .seed = 1};
  const std::vector<NodeId> short_order = {0, 1};
  EXPECT_THROW((void)chunked_configuration_model(params, short_order),
               std::logic_error);
  const std::vector<NodeId> dup_order = {0, 1, 1};
  EXPECT_THROW((void)chunked_configuration_model(params, dup_order),
               std::logic_error);
  const std::vector<NodeId> oob_order = {0, 1, 3};
  EXPECT_THROW((void)chunked_configuration_model(params, oob_order),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// chunked_random_out
// ---------------------------------------------------------------------------

TEST(BigtopoRandomOut, DegreeAndLoopInvariants) {
  const Graph g = chunked_random_out({.n = 2048, .d = 3, .seed = 11});
  EXPECT_EQ(g.num_nodes(), 2048U);
  EXPECT_EQ(g.num_self_loops(), 0U);   // partner draw excludes self
  EXPECT_GE(g.min_degree(), 3U);       // d out-links + in-degree
  EXPECT_EQ(g.num_edges(), 2048U * 3); // one edge per out-link
}

TEST(BigtopoRandomOut, ByteIdenticalForEveryChunkCountAndOrder) {
  ChunkedParams params{.n = 2 * kChunkNodes + 123, .d = 3, .seed = 0xb17};
  const std::uint64_t reference = graph_digest(chunked_random_out(params));
  for (const int chunks : {1, 4, 17}) {
    params.chunks = chunks;
    EXPECT_EQ(graph_digest(chunked_random_out(params)), reference)
        << "chunks=" << chunks;
  }
  params.chunks = 0;
  std::vector<NodeId> order(num_canonical_chunks(params.n));
  std::iota(order.begin(), order.end(), NodeId{0});
  std::reverse(order.begin(), order.end());
  EXPECT_EQ(graph_digest(chunked_random_out(params, order)), reference);
}

// Chain the two-pass in-place build to the reference edge-list path: replay
// the same per-chunk Rng streams into from_edges and compare bytes.
TEST(BigtopoRandomOut, MatchesChunkStreamReference) {
  const ChunkedParams params{.n = kChunkNodes + 100, .d = 2, .seed = 0x77};
  std::vector<Edge> edges;
  for (NodeId c = 0; c < num_canonical_chunks(params.n); ++c) {
    const ChunkRange range = canonical_chunk_range(params.n, c);
    Rng rng(chunk_seed(params.seed, c));
    for (NodeId v = range.begin; v < range.end; ++v)
      for (NodeId j = 0; j < params.d; ++j) {
        auto t = static_cast<NodeId>(rng.uniform_u64(params.n - 1));
        if (t >= v) ++t;
        edges.push_back({v, t});
      }
  }
  const Graph reference = Graph::from_edges(params.n, edges);
  EXPECT_EQ(graph_digest(chunked_random_out(params)),
            graph_digest(reference));
}

TEST(BigtopoRandomOut, GoldenDigest) {
  const Graph g = chunked_random_out({.n = 4096, .d = 5, .seed = 0xb17});
  EXPECT_EQ(graph_digest(g), 0x6d50e6b9b2497932ULL);
}

TEST(BigtopoRandomOut, RejectsInvalidParameters) {
  EXPECT_THROW((void)chunked_random_out({.n = 16, .d = 16, .seed = 1}),
               std::logic_error);
  EXPECT_THROW((void)chunked_random_out({.n = 0, .d = 1, .seed = 1}),
               std::logic_error);
  EXPECT_THROW((void)chunked_random_out({.n = 16, .d = 0, .seed = 1}),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Memory estimates and budget enforcement
// ---------------------------------------------------------------------------

TEST(BigtopoBudget, EstimatesAreTheCsrFootprint) {
  // offsets: 8*(n+1) bytes; adjacency: 4 bytes per entry.
  EXPECT_EQ(estimate_configuration_model_bytes(1000, 4),
            8 * 1001ULL + 4 * 4000ULL);
  EXPECT_EQ(estimate_random_out_bytes(1000, 4), 8 * 1001ULL + 4 * 8000ULL);
}

TEST(BigtopoBudget, GuardsNodeIdRangeAtLargeN) {
  // 2^31 nodes is the supported ceiling (NodeId addressing); one past it
  // must be refused before any allocation happens.
  const auto too_many = static_cast<NodeId>((std::uint64_t{1} << 31) + 1);
  EXPECT_THROW((void)estimate_configuration_model_bytes(too_many, 3),
               std::logic_error);
  EXPECT_THROW((void)estimate_random_out_bytes(too_many, 3),
               std::logic_error);
  EXPECT_NO_THROW(
      (void)estimate_configuration_model_bytes(1 << 20, 8));
}

TEST(BigtopoBudget, RefusesGenerationOverBudget) {
  ChunkedParams params{.n = 4096, .d = 8, .seed = 3};
  params.memory_budget_bytes = 1;  // nothing fits in one byte
  EXPECT_THROW((void)chunked_configuration_model(params), std::logic_error);
  EXPECT_THROW((void)chunked_random_out(params), std::logic_error);

  params.memory_budget_bytes =
      estimate_random_out_bytes(params.n, params.d);
  EXPECT_NO_THROW((void)chunked_random_out(params));
  params.memory_budget_bytes = 0;  // 0 disables the check
  EXPECT_NO_THROW((void)chunked_configuration_model(params));
}

// ---------------------------------------------------------------------------
// End-to-end: chunked graphs are plain Graphs for every broadcast scheme
// ---------------------------------------------------------------------------

TEST(BigtopoBroadcast, AllSchemesCompleteOnChunkedGraph) {
  const Graph g =
      chunked_configuration_model({.n = 1024, .d = 8, .seed = 0xabc});
  for (const BroadcastScheme scheme : kAllSchemes) {
    BroadcastOptions options;
    options.scheme = scheme;
    options.seed = 0x5eed;
    const RunResult result = broadcast(g, 0, options);
    EXPECT_EQ(result.final_informed, g.num_nodes())
        << scheme_name(scheme);
    EXPECT_GT(result.rounds, 0U) << scheme_name(scheme);
  }
}

// ---------------------------------------------------------------------------
// Million-node invariants (slow label)
// ---------------------------------------------------------------------------

TEST(BigtopoSlow, MillionNodeConfigurationModelInvariants) {
  const NodeId n = 1'000'000;
  const Graph g = chunked_configuration_model({.n = n, .d = 8, .seed = 0xe18});
  ASSERT_TRUE(g.regular_degree().has_value());
  EXPECT_EQ(*g.regular_degree(), 8U);
  EXPECT_EQ(g.num_edges(), static_cast<Count>(n) * 8 / 2);
  // The configuration model keeps self-loops and parallel edges, but at
  // n = 10^6 they are O(d^2) in expectation — a vanishing fraction.
  EXPECT_LT(g.num_self_loops(), 1000U);
  EXPECT_LT(g.num_parallel_extra(), 1000U);
}

TEST(BigtopoSlow, MillionNodeRandomOutInvariants) {
  const NodeId n = 1'000'000;
  const Graph g = chunked_random_out({.n = n, .d = 3, .seed = 0xe18});
  EXPECT_EQ(g.num_self_loops(), 0U);
  EXPECT_GE(g.min_degree(), 3U);
  EXPECT_EQ(g.num_edges(), static_cast<Count>(n) * 3);
}

}  // namespace
}  // namespace rrb::bigtopo
