#include "rrb/analysis/histogram.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rrb {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.9);   // bin 4
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 1U);
  EXPECT_EQ(h.count(4), 1U);
  EXPECT_EQ(h.count(2), 0U);
  EXPECT_EQ(h.total(), 3U);
}

TEST(Histogram, ClampsOutOfRangeToEndBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.count(0), 1U);
  EXPECT_EQ(h.count(1), 1U);
}

TEST(Histogram, BoundaryValueGoesToUpperBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);  // exactly on the bin-0/bin-1 edge -> bin 1
  EXPECT_EQ(h.count(1), 1U);
}

TEST(Histogram, TopOfRangeStaysInLastBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);
  EXPECT_EQ(h.count(4), 1U);
}

TEST(Histogram, BinBoundsPartitionRange) {
  Histogram h(2.0, 12.0, 4);
  double prev_hi = 2.0;
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    const auto [lo, hi] = h.bin_bounds(b);
    EXPECT_DOUBLE_EQ(lo, prev_hi);
    EXPECT_GT(hi, lo);
    prev_hi = hi;
  }
  EXPECT_DOUBLE_EQ(prev_hi, 12.0);
}

TEST(Histogram, AddAllAndRendering) {
  Histogram h(0.0, 4.0, 4);
  const std::vector<double> values{0.5, 1.5, 1.6, 2.5};
  h.add_all(values);
  EXPECT_EQ(h.total(), 4U);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(2), std::logic_error);
  EXPECT_THROW((void)h.bin_bounds(5), std::logic_error);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> v{3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, SingletonAndValidation) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.3), 7.0);
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), std::logic_error);
  EXPECT_THROW((void)quantile(one, 1.5), std::logic_error);
}

TEST(Confidence, HalfWidthShrinksWithSampleSize) {
  const double w10 = confidence95_halfwidth(2.0, 10);
  const double w1000 = confidence95_halfwidth(2.0, 1000);
  EXPECT_GT(w10, w1000);
  EXPECT_NEAR(w10 / w1000, 10.0, 1e-9);  // sqrt(1000/10)
}

TEST(Confidence, KnownValue) {
  EXPECT_NEAR(confidence95_halfwidth(1.0, 4), 1.96 / 2.0, 1e-12);
  EXPECT_THROW((void)confidence95_halfwidth(1.0, 0), std::logic_error);
}

}  // namespace
}  // namespace rrb
