#include "rrb/p2p/replicated_db.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/graph/generators.hpp"

namespace rrb {
namespace {

Graph small_overlay(NodeId n, NodeId d, std::uint64_t seed) {
  Rng rng(seed);
  return random_regular_simple(n, d, rng);
}

TEST(ReplicatedDb, SingleUpdateConverges) {
  const Graph g = small_overlay(512, 8, 1);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  const UpdateId u = db.put(0, "motd", "hello");
  EXPECT_TRUE(db.run_to_convergence(500));
  EXPECT_TRUE(db.delivered_everywhere(u));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::string* val = db.get(v, "motd");
    ASSERT_NE(val, nullptr);
    EXPECT_EQ(*val, "hello");
  }
}

TEST(ReplicatedDb, GetMissingKeyIsNull) {
  const Graph g = small_overlay(64, 6, 2);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  EXPECT_EQ(db.get(0, "absent"), nullptr);
}

TEST(ReplicatedDb, OriginHasValueImmediately) {
  const Graph g = small_overlay(64, 6, 3);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  db.put(5, "k", "v");
  const std::string* val = db.get(5, "k");
  ASSERT_NE(val, nullptr);
  EXPECT_EQ(*val, "v");
  EXPECT_EQ(db.replicas(0), 1U);
}

TEST(ReplicatedDb, MultipleKeysConvergeTogether) {
  const Graph g = small_overlay(256, 8, 4);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  db.put(0, "a", "1");
  db.put(10, "b", "2");
  db.put(20, "c", "3");
  EXPECT_TRUE(db.run_to_convergence(500));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(*db.get(v, "a"), "1");
    EXPECT_EQ(*db.get(v, "b"), "2");
    EXPECT_EQ(*db.get(v, "c"), "3");
  }
}

TEST(ReplicatedDb, LaterWriteWinsEverywhere) {
  const Graph g = small_overlay(256, 8, 5);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  db.put(0, "config", "old");
  // Let the first update spread a bit, then overwrite from elsewhere.
  for (int i = 0; i < 5; ++i) db.step();
  db.put(99, "config", "new");
  EXPECT_TRUE(db.run_to_convergence(500));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(*db.get(v, "config"), "new");
}

TEST(ReplicatedDb, ConcurrentWritesResolveDeterministically) {
  // Two writes to the same key in the same round: ties break by update id,
  // so the later put() wins on every replica.
  const Graph g = small_overlay(256, 8, 6);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  db.put(0, "k", "first");
  db.put(128, "k", "second");
  EXPECT_TRUE(db.run_to_convergence(500));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_EQ(*db.get(v, "k"), "second");
}

TEST(ReplicatedDb, ReplicaCountIsMonotone) {
  const Graph g = small_overlay(128, 6, 7);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  const UpdateId u = db.put(0, "k", "v");
  Count last = db.replicas(u);
  for (int i = 0; i < 40; ++i) {
    db.step();
    const Count now = db.replicas(u);
    EXPECT_GE(now, last);
    last = now;
  }
}

TEST(ReplicatedDb, CombiningReducesChannelMessages) {
  // With many concurrent updates, combined channel messages must be far
  // fewer than entry transmissions (that is what combining buys).
  const Graph g = small_overlay(256, 8, 8);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  for (int i = 0; i < 16; ++i)
    db.put(static_cast<NodeId>(i * 7), "k" + std::to_string(i), "v");
  EXPECT_TRUE(db.run_to_convergence(500));
  EXPECT_GT(db.entry_transmissions(), db.channel_messages());
}

TEST(ReplicatedDb, EntryTransmissionsScaleGentlyPerUpdate) {
  // Each update follows Algorithm 1, so it costs O(n log log n) entry
  // transmissions: a per-update, per-node cost of a small multiple of
  // log log n (about 4 + 6*alpha*loglog n ≈ 30 at alpha = 1.5), far from
  // the Θ(n log n) a push-till-done scheme would pay.
  const NodeId n = 512;
  const Graph g = small_overlay(n, 8, 9);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  constexpr int kUpdates = 8;
  for (int i = 0; i < kUpdates; ++i)
    db.put(static_cast<NodeId>(i * 11), "key" + std::to_string(i), "v");
  ASSERT_TRUE(db.run_to_convergence(500));
  const double per_update_per_node =
      static_cast<double>(db.entry_transmissions()) / kUpdates / n;
  const double lglg = std::log2(std::log2(static_cast<double>(n)));
  EXPECT_LT(per_update_per_node, 12.0 * lglg);
  EXPECT_GT(per_update_per_node, 1.0);
}

TEST(ReplicatedDb, StaggeredInjectionsConverge) {
  const Graph g = small_overlay(256, 8, 10);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  for (int i = 0; i < 10; ++i) {
    db.put(static_cast<NodeId>(i * 20), "s" + std::to_string(i), "v");
    db.step();
    db.step();
  }
  EXPECT_TRUE(db.run_to_convergence(500));
}

TEST(ReplicatedDb, ValidatesArguments) {
  const Graph g = small_overlay(64, 6, 11);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  EXPECT_THROW((void)db.put(64, "k", "v"), std::logic_error);
  EXPECT_THROW((void)db.replicas(0), std::logic_error);
  EXPECT_THROW((void)db.get(100, "k"), std::logic_error);
}

TEST(ReplicatedDb, NoUpdatesMeansTrivialConvergence) {
  const Graph g = small_overlay(64, 6, 12);
  ReplicatedDb db(g, ReplicatedDbConfig{});
  EXPECT_TRUE(db.converged());
  EXPECT_TRUE(db.run_to_convergence(10));
  EXPECT_EQ(db.entry_transmissions(), 0U);
}

}  // namespace
}  // namespace rrb
