/// Cross-module integration tests: each one checks a claim of the paper
/// end-to-end at a small scale (graph generation -> engine -> protocol ->
/// measurement), mirroring the full-size experiments in bench/.

#include <gtest/gtest.h>

#include <cmath>

#include "rrb/analysis/fit.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/p2p/churn.hpp"
#include "rrb/p2p/replicated_db.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"
#include "rrb/sim/trace.hpp"
#include "rrb/sim/trial.hpp"

namespace rrb {
namespace {

TEST(Integration, FourChoiceTxGrowsSlowerThanPushTx) {
  // Theorem 2 vs the push baseline: between n = 2^10 and 2^15, push's
  // per-node transmissions grow by ~ the log n ratio (1.5x) while the
  // four-choice algorithm's grow by ~ the log log n ratio (~1.16x).
  auto measure = [](NodeId n, bool four_choice, std::uint64_t seed) {
    TrialConfig cfg;
    cfg.trials = 2;
    cfg.seed = seed;
    cfg.channel.num_choices = four_choice ? 4 : 1;
    const TrialOutcome out = run_trials(
        [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
        [n, four_choice](const Graph&) -> std::unique_ptr<BroadcastProtocol> {
          if (four_choice) {
            FourChoiceConfig fc;
            fc.n_estimate = n;
            return make_protocol<FourChoiceBroadcast>(fc);
          }
          return make_protocol<PushProtocol>();
        },
        cfg);
    EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
    return out.tx_per_node.mean;
  };
  const double push_growth =
      measure(1 << 15, false, 11) / measure(1 << 10, false, 12);
  const double fc_growth =
      measure(1 << 15, true, 13) / measure(1 << 10, true, 14);
  EXPECT_LT(fc_growth, push_growth);
  EXPECT_LT(fc_growth, 1.35);
  EXPECT_GT(push_growth, 1.25);
}

TEST(Integration, SingleChoiceTransmissionsDropWithDegree) {
  // Theorem 1's shape: the Ω(n log n / log d) bound predicts that, at a
  // fixed O(log n) horizon, completing with the classical one-choice
  // push&pull gets cheaper as d grows.
  auto tx_at_degree = [](NodeId d, std::uint64_t seed) {
    const NodeId n = 4096;
    TrialConfig cfg;
    cfg.trials = 3;
    cfg.seed = seed;
    const TrialOutcome out = run_trials(
        [n, d](Rng& rng) { return random_regular_simple(n, d, rng); },
        [](const Graph&) { return make_protocol<PushPullProtocol>(); },
        cfg);
    EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
    return out.total_tx.mean;
  };
  const double tx_sparse = tx_at_degree(4, 21);
  const double tx_dense = tx_at_degree(64, 22);
  EXPECT_GT(tx_sparse, tx_dense);
}

TEST(Integration, Phase1NewlyInformedGrowsGeometrically) {
  // Lemmas 1–2: |I+(t+1)| >= c|I+(t)| with c ~ 2-3 early in phase 1.
  const NodeId n = 1 << 14;
  TraceConfig cfg;
  cfg.trials = 3;
  cfg.seed = 31;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
      [n](const Graph&) {
        FourChoiceConfig fc;
        fc.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  // Rounds 2..6 are deep inside the doubling regime at this size.
  std::vector<double> newly;
  for (int t = 1; t <= 5 && t < static_cast<int>(trace.size()); ++t)
    newly.push_back(trace[static_cast<std::size_t>(t)].newly_informed);
  const double growth = mean_consecutive_ratio(newly);
  EXPECT_GT(growth, 1.8);
  EXPECT_LT(growth, 4.01);  // can never exceed the 4 channels per node
}

TEST(Integration, Phase2UninformedDecaysByConstantFactor) {
  // Lemma 3: h(t+1) <= h(t)/c during phase 2.
  const NodeId n = 1 << 14;
  FourChoiceConfig fc;
  fc.n_estimate = n;
  const PhaseSchedule sched = make_schedule_small_d(fc);
  TraceConfig cfg;
  cfg.trials = 3;
  cfg.seed = 32;
  cfg.channel.num_choices = 4;
  cfg.track_h_sets = false;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
      [&fc](const Graph&) {
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  std::vector<double> h;
  for (Round t = sched.phase1_end; t <= sched.phase2_end; ++t) {
    const auto idx = static_cast<std::size_t>(t - 1);
    if (idx < trace.size()) h.push_back(trace[idx].uninformed);
  }
  ASSERT_GE(h.size(), 3U);
  const double decay = mean_consecutive_ratio(h);
  EXPECT_LT(decay, 0.8);
}

TEST(Integration, PullRoundLeavesOnlyH4Nodes) {
  // §4.3.2: after the single pull round of Phase 3, every node with fewer
  // than four uninformed neighbours is informed — H(t+1) ⊆ H4(t), exactly.
  const NodeId n = 1 << 13;
  Rng grng(33);
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceConfig fc;
  fc.n_estimate = n;
  FourChoiceBroadcast alg(fc);
  const Round pull_round = alg.schedule().phase3_end;

  // A snapshot observer: capture informed_at around the pull round.
  struct PhaseSnapshots {
    Round before_round, after_round;
    std::vector<Round> before;  // informed_at after phase 2
    std::vector<Round> after;   // informed_at after phase 3
    [[nodiscard]] const char* name() const { return "phase-snapshots"; }
    void on_round_end(const RoundStats& stats,
                      std::span<const Round> informed) {
      if (stats.t == before_round)
        before.assign(informed.begin(), informed.end());
      if (stats.t == after_round)
        after.assign(informed.begin(), informed.end());
    }
  };
  GraphTopology topo(g);
  Rng rng(34);
  ChannelConfig chan;
  chan.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
  PhaseSnapshots snaps{pull_round - 1, pull_round, {}, {}};
  (void)engine.run(alg, NodeId{0}, RunLimits{}, snaps);
  std::vector<Round>& before = snaps.before;
  std::vector<Round>& after = snaps.after;
  ASSERT_EQ(before.size(), n);
  ASSERT_EQ(after.size(), n);

  for (NodeId v = 0; v < n; ++v) {
    if (after[v] != kNever) continue;  // informed
    ASSERT_EQ(before[v], kNever);      // monotone
    NodeId uninformed_neighbours = 0;
    for (const NodeId w : g.neighbors(v))
      if (before[w] == kNever) ++uninformed_neighbours;
    EXPECT_GE(uninformed_neighbours, 4U)
        << "node " << v << " should have been pulled";
  }
}

TEST(Integration, MedianCounterMatchesFourChoiceTxScale) {
  // Both O(n log log n) mechanisms (Karp's counter on K_n, the four-choice
  // algorithm on G(n,d)) land within a small constant factor of each other
  // in per-node transmissions.
  const NodeId n = 4096;
  MedianCounterConfig mc;
  mc.n_estimate = n;
  MedianCounterProtocol karp(mc);
  const Graph kn = complete(n);
  GraphTopology ktopo(kn);
  Rng krng(35);
  PhoneCallEngine<GraphTopology> kengine(ktopo, ChannelConfig{}, krng);
  const RunResult karp_run = kengine.run(karp, NodeId{0}, RunLimits{});
  ASSERT_TRUE(karp_run.all_informed);

  Rng grng(36);
  const Graph g = random_regular_simple(n, 8, grng);
  FourChoiceConfig fc;
  fc.n_estimate = n;
  FourChoiceBroadcast alg(fc);
  GraphTopology gtopo(g);
  Rng rng(37);
  ChannelConfig chan;
  chan.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(gtopo, chan, rng);
  const RunResult fc_run = engine.run(alg, NodeId{0}, RunLimits{});
  ASSERT_TRUE(fc_run.all_informed);

  const double ratio = fc_run.tx_per_node() / karp_run.tx_per_node();
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 8.0);
}

TEST(Integration, FourChoiceCompletesOnProductGraph) {
  // §5's counterexample G(n,d) x K5 concerns transmission *optimality*;
  // completion still holds (the product is still an expander).
  Rng grng(38);
  const Graph g = random_regular_simple(512, 6, grng);
  const Graph prod = cartesian_product(g, complete(5));
  FourChoiceConfig fc;
  fc.n_estimate = prod.num_nodes();
  fc.alpha = 2.0;
  FourChoiceBroadcast alg(fc);
  GraphTopology topo(prod);
  Rng rng(39);
  ChannelConfig chan;
  chan.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, chan, rng);
  const RunResult r = engine.run(alg, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
}

TEST(Integration, OverlaySnapshotFeedsReplicatedDb) {
  // P2P pipeline: churned overlay -> snapshot -> replicated database
  // convergence over the snapshot.
  Rng rng(40);
  DynamicOverlay overlay(600, 512, 8, rng);
  ChurnConfig ccfg;
  ccfg.joins_per_round = 1.0;
  ccfg.leaves_per_round = 1.0;
  ChurnDriver driver(overlay, ccfg, rng);
  for (Round t = 1; t <= 50; ++t) driver.apply(t);

  // Compact the alive nodes into a dense graph for the DB layer.
  const Graph snap = overlay.snapshot();
  std::vector<NodeId> dense_id(snap.num_nodes(), kNoNode);
  NodeId next = 0;
  for (NodeId v = 0; v < snap.num_nodes(); ++v)
    if (overlay.is_alive(v)) dense_id[v] = next++;
  GraphBuilder builder(next);
  for (const Edge& e : snap.edge_list())
    builder.add_edge(dense_id[e.u], dense_id[e.v]);
  const Graph db_graph = builder.build();

  ReplicatedDb db(db_graph, ReplicatedDbConfig{});
  db.put(0, "epoch", "42");
  EXPECT_TRUE(db.run_to_convergence(400));
}

TEST(Integration, RoundsScaleLogarithmicallyAcrossSizes) {
  // Theorem 2: O(log n) rounds. The protocol horizon is by construction
  // Θ(log n); verify completion happens within it across sizes and that
  // completion rounds fit a * log n with a decent R².
  std::vector<double> log_ns;
  std::vector<double> rounds;
  for (const NodeId n : {1024U, 4096U, 16384U}) {
    TrialConfig cfg;
    cfg.trials = 2;
    cfg.seed = 41 + n;
    cfg.channel.num_choices = 4;
    const TrialOutcome out = run_trials(
        [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
        [n](const Graph&) {
          FourChoiceConfig fc;
          fc.n_estimate = n;
          return make_protocol<FourChoiceBroadcast>(fc);
        },
        cfg);
    EXPECT_DOUBLE_EQ(out.completion_rate, 1.0);
    log_ns.push_back(std::log2(static_cast<double>(n)));
    rounds.push_back(out.completion_round.mean);
  }
  const ProportionalFit fit = fit_proportional(log_ns, rounds);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_GT(fit.slope, 0.5);
  EXPECT_LT(fit.slope, 4.0);
}

}  // namespace
}  // namespace rrb
