#include "rrb/sim/trace.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"

namespace rrb {
namespace {

TraceConfig quick_config() {
  TraceConfig cfg;
  cfg.trials = 2;
  cfg.seed = 7;
  return cfg;
}

TEST(Trace, InformedIsMonotoneAndPartitionsN) {
  const NodeId n = 512;
  TraceConfig cfg = quick_config();
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 6, rng); },
      [](const Graph&) { return make_protocol<PushProtocol>(); }, cfg);
  ASSERT_FALSE(trace.empty());
  double last = 0.0;
  for (const SetTracePoint& p : trace) {
    EXPECT_GE(p.informed, last);
    EXPECT_NEAR(p.informed + p.uninformed, static_cast<double>(n), 1e-9);
    last = p.informed;
  }
  EXPECT_NEAR(trace.back().informed, static_cast<double>(n), 1e-9);
}

TEST(Trace, NewlyInformedSumsToInformedMinusSource) {
  const NodeId n = 256;
  TraceConfig cfg = quick_config();
  cfg.trials = 1;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 6, rng); },
      [](const Graph&) { return make_protocol<PushProtocol>(); }, cfg);
  double sum = 0.0;
  for (const SetTracePoint& p : trace) sum += p.newly_informed;
  EXPECT_NEAR(sum, static_cast<double>(n - 1), 1e-9);
}

TEST(Trace, HSetsAreNestedAndBelowUninformed) {
  const NodeId n = 1024;
  TraceConfig cfg = quick_config();
  cfg.trials = 1;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 8, rng); },
      [n](const Graph&) {
        FourChoiceConfig fc;
        fc.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  for (const SetTracePoint& p : trace) {
    EXPECT_LE(p.h5, p.h4);
    EXPECT_LE(p.h4, p.h1);
    EXPECT_LE(p.h1, p.uninformed);
  }
}

TEST(Trace, RoundIndicesAreSequential) {
  const auto trace = trace_set_sizes(
      [](Rng& rng) { return random_regular_simple(128, 4, rng); },
      [](const Graph&) { return make_protocol<PushProtocol>(); },
      quick_config());
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].t, static_cast<Round>(i + 1));
}

TEST(Trace, EdgeUsageCountIsMonotoneDecreasing) {
  // |U(t)| (nodes with an unused incident edge) can only shrink over time.
  TraceConfig cfg = quick_config();
  cfg.trials = 1;
  cfg.track_edge_usage = true;
  const NodeId n = 512;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 6, rng); },
      [n](const Graph&) {
        FourChoiceConfig fc;
        fc.n_estimate = n;
        return make_protocol<FourChoiceBroadcast>(fc);
      },
      cfg);
  double last = static_cast<double>(n);
  for (const SetTracePoint& p : trace) {
    EXPECT_LE(p.unused_edge_nodes, last + 1e-9);
    last = p.unused_edge_nodes;
  }
  // Something must have been used by the end.
  EXPECT_LT(trace.back().unused_edge_nodes, static_cast<double>(n));
}

TEST(Trace, HSetsSkippedWhenDisabled) {
  TraceConfig cfg = quick_config();
  cfg.track_h_sets = false;
  const auto trace = trace_set_sizes(
      [](Rng& rng) { return random_regular_simple(128, 4, rng); },
      [](const Graph&) { return make_protocol<PushProtocol>(); }, cfg);
  for (const SetTracePoint& p : trace) {
    EXPECT_DOUBLE_EQ(p.h1, 0.0);
    EXPECT_DOUBLE_EQ(p.h4, 0.0);
  }
}

TEST(Trace, AveragesOverTrialsAreFractional) {
  // With 3 trials the averaged informed counts are generally non-integral;
  // sanity check the averaging machinery ran (values within [0, n]).
  const NodeId n = 256;
  TraceConfig cfg = quick_config();
  cfg.trials = 3;
  const auto trace = trace_set_sizes(
      [n](Rng& rng) { return random_regular_simple(n, 6, rng); },
      [](const Graph&) { return make_protocol<PushProtocol>(); }, cfg);
  for (const SetTracePoint& p : trace) {
    EXPECT_GE(p.informed, 0.0);
    EXPECT_LE(p.informed, static_cast<double>(n));
  }
}

TEST(Trace, RejectsZeroTrials) {
  TraceConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(
      (void)trace_set_sizes(
          [](Rng& rng) { return random_regular_simple(64, 4, rng); },
          [](const Graph&) { return make_protocol<PushProtocol>(); },
          cfg),
      std::logic_error);
}

}  // namespace
}  // namespace rrb
