#include "rrb/phonecall/engine.hpp"

#include <gtest/gtest.h>

#include "rrb/graph/generators.hpp"
#include "rrb/metrics/observers.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/protocols/baselines.hpp"

namespace rrb {
namespace {

/// A protocol that never transmits and never finishes; exposes engine
/// behaviour at the limits.
class SilentProtocol final : public BroadcastProtocol {
 public:
  Action action(NodeId, const NodeLocalState&, Round) override {
    return Action::kNone;
  }
  bool finished(Round, Count, Count) const override { return false; }
  const char* name() const override { return "silent"; }
};

TEST(Engine, ConfigValidation) {
  const Graph g = complete(4);
  GraphTopology topo(g);
  Rng rng(1);
  ChannelConfig bad;
  bad.num_choices = 0;
  EXPECT_THROW((PhoneCallEngine<GraphTopology>(topo, bad, rng)),
               std::logic_error);
  bad.num_choices = 65;
  EXPECT_THROW((PhoneCallEngine<GraphTopology>(topo, bad, rng)),
               std::logic_error);
  bad.num_choices = 1;
  bad.failure_prob = 1.5;
  EXPECT_THROW((PhoneCallEngine<GraphTopology>(topo, bad, rng)),
               std::logic_error);
  bad.failure_prob = 0.0;
  bad.memory = 2;
  bad.quasirandom = true;
  EXPECT_THROW((PhoneCallEngine<GraphTopology>(topo, bad, rng)),
               std::logic_error);
}

TEST(Engine, PushOnK2TakesOneRoundOneTransmission) {
  const Graph g = complete(2);
  GraphTopology topo(g);
  Rng rng(2);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.completion_round, 1);
  EXPECT_EQ(r.push_tx, 1U);
  EXPECT_EQ(r.pull_tx, 0U);
  EXPECT_EQ(r.final_informed, 2U);
}

TEST(Engine, PullOnK2TakesOneRoundOneTransmission) {
  const Graph g = complete(2);
  GraphTopology topo(g);
  Rng rng(3);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PullProtocol pull;
  const RunResult r = engine.run(pull, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.push_tx, 0U);
  EXPECT_EQ(r.pull_tx, 1U);
}

TEST(Engine, SynchronousSemanticsNoSameRoundForwarding) {
  // On the path 0-1-2 a push broadcast from 0 cannot reach 2 in round 1:
  // messages received in round t are forwardable only from round t+1.
  const Graph g = path(3);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
    PushProtocol push;
    RunLimits limits;
    limits.record_rounds = true;
    const RunResult r = engine.run(push, NodeId{0}, limits);
    ASSERT_TRUE(r.all_informed);
    ASSERT_GE(r.per_round.size(), 2U);
    EXPECT_EQ(r.per_round[0].informed, 2U);  // only node 1 can be new
    EXPECT_GE(r.completion_round, 2);
  }
}

TEST(Engine, ChannelsOpenedCountsChoicesPerNode) {
  const Graph g = complete(5);  // degree 4
  GraphTopology topo(g);
  Rng rng(4);
  ChannelConfig cfg;
  cfg.num_choices = 2;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  SilentProtocol silent;
  RunLimits limits;
  limits.max_rounds = 7;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  EXPECT_EQ(r.rounds, 7);
  EXPECT_EQ(r.channels_opened, 5U * 2U * 7U);
  EXPECT_EQ(r.total_tx(), 0U);
  EXPECT_FALSE(r.all_informed);
}

TEST(Engine, ChoicesCappedByDegree) {
  const Graph g = cycle(6);  // degree 2
  GraphTopology topo(g);
  Rng rng(5);
  ChannelConfig cfg;
  cfg.num_choices = 4;  // more than the degree
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  SilentProtocol silent;
  RunLimits limits;
  limits.max_rounds = 3;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  EXPECT_EQ(r.channels_opened, 6U * 2U * 3U);
}

TEST(Engine, FourDistinctChoicesInformAllNeighboursImmediately) {
  // Star K_{1,4}: the centre has degree 4; with num_choices = 4 it calls
  // every leaf in round 1, so a push from the centre always completes in
  // one round.
  const Graph g = star(5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig cfg;
    cfg.num_choices = 4;
    PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
    PushProtocol push;
    const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
    EXPECT_TRUE(r.all_informed);
    EXPECT_EQ(r.rounds, 1);
    EXPECT_EQ(r.push_tx, 4U);
  }
}

TEST(Engine, MemoryThreeMakesSingleChoiceRoundRobin) {
  // Star K_{1,4}, push from the centre, one choice per round, memory 3:
  // four consecutive calls must hit four distinct leaves, so the broadcast
  // always completes in exactly 4 rounds. Without memory the success
  // probability within 4 rounds is 4!/4^4 ≈ 9%.
  const Graph g = star(5);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig cfg;
    cfg.num_choices = 1;
    cfg.memory = 3;
    PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
    PushProtocol push;
    RunLimits limits;
    limits.stop_when_all_informed = true;
    const RunResult r = engine.run(push, NodeId{0}, limits);
    EXPECT_TRUE(r.all_informed) << "seed " << seed;
    EXPECT_EQ(r.completion_round, 4) << "seed " << seed;
  }
}

TEST(Engine, MemoryFallsBackWhenDegreeTooSmall) {
  // K2 with memory 3: the only neighbour was always recently called; the
  // constraint must relax rather than deadlock.
  const Graph g = complete(2);
  GraphTopology topo(g);
  Rng rng(6);
  ChannelConfig cfg;
  cfg.num_choices = 1;
  cfg.memory = 3;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushProtocol push;
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed);
  EXPECT_EQ(r.rounds, 1);
}

TEST(MemoryRing, FailedChannelsAreRemembered) {
  // Deliberate semantics, pinned (see the engine's Phase B comment): a
  // failed channel still enters the memory ring, because the call was
  // *placed* even though no message crossed it — the sequentialised
  // model's memory constraint is about whom you dialled, not whom you
  // reached. K2 with failure_prob = 1: both nodes call their only
  // neighbour, every channel fails, yet both rings record the partner.
  const Graph g = complete(2);
  GraphTopology topo(g);
  Rng rng(12);
  ChannelConfig cfg;
  cfg.num_choices = 1;
  cfg.memory = 3;
  cfg.failure_prob = 1.0;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushProtocol push;
  RunLimits limits;
  limits.max_rounds = 1;
  const RunResult r = engine.run(push, NodeId{0}, limits);
  EXPECT_EQ(r.channels_failed, r.channels_opened);
  EXPECT_EQ(r.final_informed, 1U);  // nothing was delivered
  EXPECT_EQ(engine.sampler().memory_ring(0)[0], NodeId{1});
  EXPECT_EQ(engine.sampler().memory_ring(1)[0], NodeId{0});
  EXPECT_TRUE(engine.sampler().recently_called(0, 1));
  EXPECT_TRUE(engine.sampler().recently_called(1, 0));
}

TEST(Engine, QuasirandomCoversNeighboursInDRounds) {
  // Quasirandom single choice on the star centre: the cursor walks the
  // whole neighbour list, so 4 rounds always suffice.
  const Graph g = star(5);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig cfg;
    cfg.num_choices = 1;
    cfg.quasirandom = true;
    PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
    PushProtocol push;
    RunLimits limits;
    limits.stop_when_all_informed = true;
    const RunResult r = engine.run(push, NodeId{0}, limits);
    EXPECT_TRUE(r.all_informed);
    EXPECT_LE(r.completion_round, 4);
  }
}

TEST(Engine, TotalFailureBlocksEverything) {
  const Graph g = complete(8);
  GraphTopology topo(g);
  Rng rng(7);
  ChannelConfig cfg;
  cfg.failure_prob = 1.0;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushProtocol push;
  RunLimits limits;
  limits.max_rounds = 20;
  const RunResult r = engine.run(push, NodeId{0}, limits);
  EXPECT_FALSE(r.all_informed);
  EXPECT_EQ(r.final_informed, 1U);
  EXPECT_EQ(r.total_tx(), 0U);
  EXPECT_EQ(r.channels_failed, r.channels_opened);
}

TEST(Engine, FailureRateMatchesConfiguredProbability) {
  const Graph g = complete(50);
  GraphTopology topo(g);
  Rng rng(8);
  ChannelConfig cfg;
  cfg.failure_prob = 0.3;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  SilentProtocol silent;
  RunLimits limits;
  limits.max_rounds = 100;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  const double rate = static_cast<double>(r.channels_failed) /
                      static_cast<double>(r.channels_opened);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Engine, DeterministicGivenSeed) {
  Rng graph_rng(9);
  const Graph g = random_regular_simple(128, 6, graph_rng);
  auto run_once = [&](std::uint64_t seed) {
    GraphTopology topo(g);
    Rng rng(seed);
    ChannelConfig cfg;
    cfg.num_choices = 4;
    PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
    PushProtocol push;
    return engine.run(push, NodeId{0}, RunLimits{});
  };
  const RunResult a = run_once(42);
  const RunResult b = run_once(42);
  const RunResult c = run_once(43);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.push_tx, b.push_tx);
  EXPECT_EQ(a.channels_opened, b.channels_opened);
  // A different seed should (overwhelmingly) differ somewhere.
  EXPECT_TRUE(a.push_tx != c.push_tx || a.rounds != c.rounds);
}

TEST(Engine, MultipleSourcesAllStartInformed) {
  const Graph g = cycle(12);
  GraphTopology topo(g);
  Rng rng(10);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  const std::vector<NodeId> sources{0, 6};
  RunLimits limits;
  limits.record_rounds = true;
  const RunResult r = engine.run(
      push, std::span<const NodeId>(sources.data(), sources.size()), limits);
  EXPECT_TRUE(r.all_informed);
  // Two fronts cover the 12-cycle in at most ~4 rounds of deterministic
  // bidirectional growth; strictly fewer rounds than one source needs.
  EXPECT_LE(r.completion_round, 8);
  ASSERT_FALSE(r.per_round.empty());
  EXPECT_GE(r.per_round[0].informed, 3U);  // 2 sources + at least one new
}

TEST(Engine, DuplicateSourcesAreIdempotent) {
  const Graph g = complete(4);
  GraphTopology topo(g);
  Rng rng(11);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  const std::vector<NodeId> sources{2, 2, 2};
  const RunResult r = engine.run(
      push, std::span<const NodeId>(sources.data(), sources.size()),
      RunLimits{});
  EXPECT_TRUE(r.all_informed);
}

TEST(Engine, PerRoundStatsSumToTotals) {
  Rng graph_rng(12);
  const Graph g = random_regular_simple(200, 8, graph_rng);
  GraphTopology topo(g);
  Rng rng(13);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  PushPullProtocol pp;
  RunLimits limits;
  limits.record_rounds = true;
  const RunResult r = engine.run(pp, NodeId{0}, limits);
  Count push_sum = 0, pull_sum = 0, ch_sum = 0;
  Count last_informed = 0;
  for (const RoundStats& round : r.per_round) {
    push_sum += round.push_tx;
    pull_sum += round.pull_tx;
    ch_sum += round.channels_opened;
    EXPECT_GE(round.informed, last_informed);  // informed set is monotone
    last_informed = round.informed;
  }
  EXPECT_EQ(push_sum, r.push_tx);
  EXPECT_EQ(pull_sum, r.pull_tx);
  EXPECT_EQ(ch_sum, r.channels_opened);
  EXPECT_EQ(last_informed, r.final_informed);
}

TEST(Engine, MaxRoundsCapIsHonoured) {
  const Graph g = complete(16);
  GraphTopology topo(g);
  Rng rng(14);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  SilentProtocol silent;
  RunLimits limits;
  limits.max_rounds = 5;
  const RunResult r = engine.run(silent, NodeId{0}, limits);
  EXPECT_EQ(r.rounds, 5);
}

/// Minimal hand-written observer, exercising the raw hook interface the
/// way rrb/metrics observers do (the library observers have their own
/// suite in tests/test_metrics.cpp).
struct RoundWatcher {
  [[nodiscard]] const char* name() const { return "round-watcher"; }
  int calls = 0;
  Count last_count = 0;
  void on_round_end(const RoundStats& stats,
                    std::span<const Round> informed_at) {
    ++calls;
    EXPECT_EQ(stats.t, calls);
    Count informed = 0;
    for (const Round r : informed_at)
      if (r != kNever) ++informed;
    EXPECT_GE(informed, last_count);
    last_count = informed;
  }
};

TEST(Engine, ObserverSeesEveryRound) {
  const Graph g = complete(8);
  GraphTopology topo(g);
  Rng rng(15);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  RoundWatcher watcher;
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{}, watcher);
  EXPECT_EQ(watcher.calls, r.rounds);
  EXPECT_EQ(watcher.last_count, r.final_informed);
}

TEST(Engine, EdgeUsageObserverMarksUsedEdges) {
  const Graph g = path(3);
  const EdgeIdMap map = build_edge_id_map(g);
  GraphTopology topo(g);
  Rng rng(16);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  EdgeUsageObserver usage(&g, &map);
  PushProtocol push;
  const RunResult r = engine.run(push, NodeId{0}, RunLimits{}, usage);
  ASSERT_TRUE(r.all_informed);
  // Both edges carried the message.
  EXPECT_EQ(usage.used().size(), 2U);
  EXPECT_EQ(usage.used()[0], 1);
  EXPECT_EQ(usage.used()[1], 1);
}

TEST(Engine, EdgeUsageObserverNotMarkedWithoutTransmission) {
  const Graph g = complete(4);
  const EdgeIdMap map = build_edge_id_map(g);
  GraphTopology topo(g);
  Rng rng(17);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  EdgeUsageObserver usage(&g, &map);
  SilentProtocol silent;
  RunLimits limits;
  limits.max_rounds = 10;
  (void)engine.run(silent, NodeId{0}, limits, usage);
  for (const auto used : usage.used()) EXPECT_EQ(used, 0);
}

TEST(Engine, SelfLoopTransmissionIsCountedButInformsNobody) {
  // One node with one self-loop (degree 2): pushing over a loop stub wastes
  // a transmission on itself, faithfully to stub semantics.
  const std::vector<Edge> edges{{0, 0}};
  const Graph g = Graph::from_edges(1, edges);
  GraphTopology topo(g);
  Rng rng(18);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  RunLimits limits;
  limits.max_rounds = 3;
  const RunResult r = engine.run(push, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed);  // the only node is the source
  EXPECT_EQ(r.final_informed, 1U);
  EXPECT_EQ(r.push_tx, 1U);  // one loop transmission before oracle stop
}

TEST(Engine, SourceValidation) {
  const Graph g = complete(3);
  GraphTopology topo(g);
  Rng rng(19);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  EXPECT_THROW((void)engine.run(push, NodeId{3}, RunLimits{}),
               std::logic_error);
  EXPECT_THROW(
      (void)engine.run(push, std::span<const NodeId>{}, RunLimits{}),
      std::logic_error);
}

TEST(Engine, InformedAtExposesReceiptRounds) {
  const Graph g = path(3);
  GraphTopology topo(g);
  Rng rng(20);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  PushProtocol push;
  (void)engine.run(push, NodeId{0}, RunLimits{});
  const auto informed = engine.informed_at();
  ASSERT_EQ(informed.size(), 3U);
  EXPECT_EQ(informed[0], 0);  // source at time 0
  EXPECT_EQ(informed[1], 1);  // node 0 has only one neighbour: round 1
  // Node 1 pushes to a *random* neighbour each round, so node 2's receipt
  // round is >= 2 but not deterministic.
  EXPECT_GE(informed[2], 2);
}

TEST(GraphTopologyAdapter, ForwardsGraphAccessors) {
  const Graph g = cycle(5);
  GraphTopology topo(g);
  EXPECT_EQ(topo.num_slots(), 5U);
  EXPECT_EQ(topo.num_alive(), 5U);
  EXPECT_TRUE(topo.is_alive(3));
  EXPECT_EQ(topo.degree(0), 2U);
  EXPECT_EQ(topo.neighbor(0, 0), g.neighbor(0, 0));
}

}  // namespace
}  // namespace rrb
