#include "rrb/phonecall/edge_ids.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rrb/graph/generators.hpp"

namespace rrb {
namespace {

TEST(EdgeIds, TriangleHasThreeIds) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, 3U);
  std::set<Count> ids;
  for (NodeId v = 0; v < 3; ++v)
    for (NodeId i = 0; i < g.degree(v); ++i) ids.insert(map.edge_of(v, i));
  EXPECT_EQ(ids.size(), 3U);
}

TEST(EdgeIds, BothEndpointsSeeTheSameId) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges);
  const EdgeIdMap map = build_edge_id_map(g);
  // Find the slot of 1 in 0's list and of 0 in 1's list.
  auto slot_of = [&](NodeId v, NodeId target) -> NodeId {
    for (NodeId i = 0; i < g.degree(v); ++i)
      if (g.neighbor(v, i) == target) return i;
    ADD_FAILURE() << "missing neighbour";
    return 0;
  };
  EXPECT_EQ(map.edge_of(0, slot_of(0, 1)), map.edge_of(1, slot_of(1, 0)));
  EXPECT_EQ(map.edge_of(1, slot_of(1, 2)), map.edge_of(2, slot_of(2, 1)));
}

TEST(EdgeIds, ParallelEdgesGetDistinctIds) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, 2U);
  EXPECT_NE(map.edge_of(0, 0), map.edge_of(0, 1));
  // The multiset of ids matches on both sides.
  std::multiset<Count> a{map.edge_of(0, 0), map.edge_of(0, 1)};
  std::multiset<Count> b{map.edge_of(1, 0), map.edge_of(1, 1)};
  EXPECT_EQ(a, b);
}

TEST(EdgeIds, SelfLoopSlotsShareOneId) {
  const std::vector<Edge> edges{{0, 0}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, 2U);
  ASSERT_EQ(g.degree(0), 3U);
  // The two loop slots (neighbour == 0) share an id.
  std::vector<Count> loop_ids;
  for (NodeId i = 0; i < 3; ++i)
    if (g.neighbor(0, i) == 0) loop_ids.push_back(map.edge_of(0, i));
  ASSERT_EQ(loop_ids.size(), 2U);
  EXPECT_EQ(loop_ids[0], loop_ids[1]);
}

TEST(EdgeIds, DoubleSelfLoopGetsTwoIds) {
  const std::vector<Edge> edges{{0, 0}, {0, 0}};
  const Graph g = Graph::from_edges(1, edges);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, 2U);
  std::multiset<Count> ids;
  for (NodeId i = 0; i < 4; ++i) ids.insert(map.edge_of(0, i));
  // Two ids, each appearing exactly twice.
  EXPECT_EQ(ids.size(), 4U);
  std::set<Count> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 2U);
  for (const Count id : unique) EXPECT_EQ(ids.count(id), 2U);
}

TEST(EdgeIds, ConfigurationModelFullCoverage) {
  Rng rng(1);
  const Graph g = configuration_model(100, 6, rng);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, g.num_edges());
  // Every id in range, every id used exactly twice across all slots.
  std::vector<int> uses(map.num_edges, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId i = 0; i < g.degree(v); ++i) {
      const Count id = map.edge_of(v, i);
      ASSERT_LT(id, map.num_edges);
      ++uses[id];
    }
  for (const int u : uses) EXPECT_EQ(u, 2);
}

TEST(EdgeIds, IdsAreDense) {
  Rng rng(2);
  const Graph g = random_regular_simple(64, 4, rng);
  const EdgeIdMap map = build_edge_id_map(g);
  std::set<Count> ids;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    for (NodeId i = 0; i < g.degree(v); ++i) ids.insert(map.edge_of(v, i));
  EXPECT_EQ(ids.size(), map.num_edges);
  EXPECT_EQ(*ids.begin(), 0U);
  EXPECT_EQ(*ids.rbegin(), map.num_edges - 1);
}

TEST(EdgeIds, EmptyGraph) {
  const Graph g(3);
  const EdgeIdMap map = build_edge_id_map(g);
  EXPECT_EQ(map.num_edges, 0U);
}

}  // namespace
}  // namespace rrb
