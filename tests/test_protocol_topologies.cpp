/// Protocol x topology property matrix: the broadcast protocols must
/// complete (within generous round caps) on every connected topology the
/// generator suite produces — not just random regular graphs. This guards
/// against hidden assumptions (regularity, girth, degree) creeping into the
/// engine or the protocols.

#include <gtest/gtest.h>

#include "rrb/graph/algorithms.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/protocols/baselines.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/protocols/median_counter.hpp"

namespace rrb {
namespace {

enum class Topo {
  kHypercube,
  kTorus,
  kCompleteBipartite,
  kPreferentialAttachment,
  kGnp,
  kProductK5,
  kCycle,
};

Graph make_topology(Topo topo, Rng& rng) {
  switch (topo) {
    case Topo::kHypercube:
      return hypercube(10);  // 1024 nodes
    case Topo::kTorus:
      return torus(24, 24);
    case Topo::kCompleteBipartite:
      return complete_bipartite(200, 200);
    case Topo::kPreferentialAttachment:
      return preferential_attachment(1024, 4, rng);
    case Topo::kGnp: {
      for (int attempt = 0; attempt < 64; ++attempt) {
        Graph g = gnp(768, 16.0 / 768.0, rng);
        if (is_connected(g)) return g;
      }
      throw std::runtime_error("gnp stayed disconnected");
    }
    case Topo::kProductK5: {
      const Graph g = random_regular_simple(200, 4, rng);
      return cartesian_product(g, complete(5));
    }
    case Topo::kCycle:
      return cycle(64);
  }
  throw std::logic_error("unknown topology");
}

const char* topo_name(Topo topo) {
  switch (topo) {
    case Topo::kHypercube: return "hypercube";
    case Topo::kTorus: return "torus";
    case Topo::kCompleteBipartite: return "bipartite";
    case Topo::kPreferentialAttachment: return "pa";
    case Topo::kGnp: return "gnp";
    case Topo::kProductK5: return "productK5";
    case Topo::kCycle: return "cycle";
  }
  return "?";
}

class TopologyMatrix : public ::testing::TestWithParam<Topo> {};

TEST_P(TopologyMatrix, PushPullCompletes) {
  Rng rng(101);
  const Graph g = make_topology(GetParam(), rng);
  ASSERT_TRUE(is_connected(g)) << topo_name(GetParam());
  PushPullProtocol proto;
  GraphTopology topo(g);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.max_rounds = 5000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed) << topo_name(GetParam());
}

TEST_P(TopologyMatrix, FourChoiceChannelsComplete) {
  // The four-choice *channel layer* with push&pull (protocol-agnostic
  // robustness: Algorithm 1's fixed schedule is tuned for expanders, so on
  // the cycle we check the channel mechanics rather than its horizon).
  Rng rng(103);
  const Graph g = make_topology(GetParam(), rng);
  PushPullProtocol proto;
  GraphTopology topo(g);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  RunLimits limits;
  limits.max_rounds = 5000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  EXPECT_TRUE(r.all_informed) << topo_name(GetParam());
}

TEST_P(TopologyMatrix, MedianCounterTerminatesEverywhere) {
  Rng rng(105);
  const Graph g = make_topology(GetParam(), rng);
  MedianCounterConfig cfg;
  cfg.n_estimate = g.num_nodes();
  MedianCounterProtocol proto(cfg);
  GraphTopology topo(g);
  PhoneCallEngine<GraphTopology> engine(topo, ChannelConfig{}, rng);
  RunLimits limits;
  limits.max_rounds = 200000;
  const RunResult r = engine.run(proto, NodeId{0}, limits);
  // Termination, not completion, is the universal guarantee (deadline +
  // quiescence); completion additionally holds off the cycle.
  EXPECT_LT(r.rounds, 200000) << topo_name(GetParam());
  if (GetParam() != Topo::kCycle) {
    EXPECT_TRUE(r.all_informed) << topo_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, TopologyMatrix,
    ::testing::Values(Topo::kHypercube, Topo::kTorus,
                      Topo::kCompleteBipartite,
                      Topo::kPreferentialAttachment, Topo::kGnp,
                      Topo::kProductK5, Topo::kCycle),
    // Parameter deliberately not named `info`: the INSTANTIATE macro wraps
    // this lambda in a function whose own parameter is `info`, and gtest
    // 1.11 trips -Wshadow on the collision.
    [](const ::testing::TestParamInfo<Topo>& param_info) {
      return topo_name(param_info.param);
    });

/// Algorithm 1 completes on every *expander-like* topology (the paper's
/// regime); the cycle is excluded — its diameter alone exceeds the
/// O(log n) horizon, which is exactly what the theory predicts.
class ExpanderMatrix : public ::testing::TestWithParam<Topo> {};

TEST_P(ExpanderMatrix, FourChoiceAlgorithmCompletes) {
  Rng rng(107);
  const Graph g = make_topology(GetParam(), rng);
  FourChoiceConfig fc;
  fc.n_estimate = g.num_nodes();
  fc.alpha = 2.0;
  FourChoiceBroadcast proto(fc);
  GraphTopology topo(g);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  const RunResult r = engine.run(proto, NodeId{0}, RunLimits{});
  EXPECT_TRUE(r.all_informed) << topo_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ExpanderMatrix,
    ::testing::Values(Topo::kHypercube, Topo::kCompleteBipartite,
                      Topo::kPreferentialAttachment, Topo::kGnp,
                      Topo::kProductK5),
    [](const ::testing::TestParamInfo<Topo>& param_info) {
      return topo_name(param_info.param);
    });

TEST(TopologyNegative, FourChoiceHorizonTooShortForTheCycle) {
  // Complement of ExpanderMatrix: on C_n the O(log n) schedule cannot cover
  // the Θ(n) diameter, so Algorithm 1 must *fail* to complete — evidence
  // that completion results above are meaningful rather than vacuous.
  Rng rng(109);
  const Graph g = cycle(4096);
  FourChoiceConfig fc;
  fc.n_estimate = g.num_nodes();
  FourChoiceBroadcast proto(fc);
  GraphTopology topo(g);
  ChannelConfig cfg;
  cfg.num_choices = 4;
  PhoneCallEngine<GraphTopology> engine(topo, cfg, rng);
  const RunResult r = engine.run(proto, NodeId{0}, RunLimits{});
  EXPECT_FALSE(r.all_informed);
}

}  // namespace
}  // namespace rrb
