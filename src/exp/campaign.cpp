#include "rrb/exp/campaign.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "rrb/bigtopo/bigtopo.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/exp/journal.hpp"
#include "rrb/graph/generators.hpp"
#include "rrb/metrics/registry.hpp"
#include "rrb/p2p/churn.hpp"
#include "rrb/p2p/overlay.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/aggregate.hpp"
#include "rrb/sim/runner.hpp"
#include "rrb/sim/trial.hpp"
#include "rrb/telemetry/telemetry.hpp"

namespace rrb::exp {

namespace {

[[nodiscard]] std::string to_hex(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

/// The facade options a cell translates to. The per-run seed fields are
/// irrelevant here: trial randomness comes from Rng(cell.seed).fork(trial).
[[nodiscard]] BroadcastOptions options_for(const CampaignSpec& spec,
                                           const CampaignCell& cell) {
  BroadcastOptions options;
  options.scheme = cell.scheme;
  options.n_estimate = cell.n;
  options.alpha = cell.alpha;
  options.failure_prob = cell.failure;
  options.quasirandom = cell.quasirandom;
  options.num_choices = cell.choices;  // 0 = scheme canonical
  options.memory = cell.memory;        // -1 = scheme canonical
  options.max_rounds = spec.max_rounds;
  return options;
}

// Cells reaching the runner come from expand_cells, which has already
// normalised cell.d to the family's effective degree (hypercube dim,
// complete n-1) — so cell.d IS the degree the topology will have, and
// there is exactly one place that derives it (spec.cpp).

[[nodiscard]] SchemeShape shape_for(const CampaignCell& cell) {
  SchemeShape shape;
  shape.n = cell.n;
  shape.degree = cell.d;
  shape.mean_degree = static_cast<double>(cell.d);
  return shape;
}

[[nodiscard]] GraphFactory graph_factory_for(const CampaignSpec& spec,
                                             const CampaignCell& cell) {
  const NodeId n = cell.n;
  const NodeId d = cell.d;
  switch (cell.graph) {
    case GraphFamily::kRegular:
      return [n, d](Rng& rng) { return random_regular_simple(n, d, rng); };
    case GraphFamily::kConfigModel:
      return [n, d](Rng& rng) { return configuration_model(n, d, rng); };
    case GraphFamily::kGnp: {
      const double p =
          std::min(1.0, static_cast<double>(d) / static_cast<double>(n - 1));
      return [n, p](Rng& rng) { return gnp(n, p, rng); };
    }
    case GraphFamily::kHypercube: {
      const NodeId dim = cell.d;  // normalised by expand_cells
      return [dim](Rng&) { return hypercube(static_cast<int>(dim)); };
    }
    case GraphFamily::kComplete:
      return [n](Rng&) { return complete(n); };
    case GraphFamily::kChunked: {
      // The chunked generator is seeded from the trial stream (one draw),
      // so its per-trial identity follows the same (cell_seed, trial)
      // contract as every stateful generator. `chunks` only batches
      // execution and changes no graph byte.
      const int chunks = spec.chunks;
      return [n, d, chunks](Rng& rng) {
        bigtopo::ChunkedParams params;
        params.n = n;
        params.d = d;
        params.seed = rng.next_u64();
        params.chunks = chunks;
        return bigtopo::chunked_configuration_model(params);
      };
    }
    case GraphFamily::kProductK5:
      // The E10 construction: a random (d-4)-regular base on n/5 nodes,
      // each node blown up into a K_5 (cartesian product), giving a
      // d-regular product graph (expand_cells validated divisibility).
      return [n, d](Rng& rng) {
        return cartesian_product(random_regular_simple(n / 5, d - 4, rng),
                                 complete(5));
      };
  }
  throw std::runtime_error("unknown graph family");
}

/// Axis echo shared by every record, so each JSONL line is self-describing
/// and the CSV carries the full grid coordinates.
void set_axis_fields(JsonObject& record, const CampaignSpec& spec,
                     const CampaignCell& cell) {
  record.set("key", cell.key)
      .set("scheme", scheme_name(cell.scheme))
      .set("quasirandom", cell.quasirandom)
      .set("graph", graph_family_name(cell.graph))
      .set("n", static_cast<std::uint64_t>(cell.n))
      .set("d", static_cast<std::uint64_t>(cell.d))
      .set("alpha", cell.alpha)
      .set("failure", cell.failure)
      .set("churn", cell.churn)
      .set("overlay", cell.overlay)
      .set("trials", spec.trials)
      .set("cell_seed", to_hex(cell.seed));
}

/// Registry-metric columns: the digest means over trials via the shared
/// metric_summary_mean reduction (trial order, so the columns are
/// byte-identical for any schedule). Only the *selected* metrics emit
/// columns (the stack collects all of them in one engine pass; unselected
/// digests are simply not rendered).
void set_metric_columns(JsonObject& record, const CampaignSpec& spec,
                        const std::vector<MetricStack>& per_trial) {
  for (const MetricKind kind : spec.metrics) {
    const QuantileSummary mean = metric_summary_mean(per_trial, kind);
    const std::string prefix = metric_column_prefix(kind);
    record.set(prefix + "_p50_mean", mean.p50)
        .set(prefix + "_p90_mean", mean.p90)
        .set(prefix + "_p99_mean", mean.p99)
        .set(prefix + "_max_mean", mean.max);
  }
}

void set_static_columns(JsonObject& record, const TrialOutcome& out) {
  record.set("rounds_mean", out.rounds.mean)
      .set("rounds_min", out.rounds.min)
      .set("rounds_max", out.rounds.max)
      .set("completion_mean", out.completion_round.mean)
      .set("completion_rate", out.completion_rate)
      .set("coverage_mean", out.coverage.mean)
      .set("tx_per_node_mean", out.tx_per_node.mean)
      .set("tx_per_node_max", out.tx_per_node.max)
      .set("total_tx_mean", out.total_tx.mean)
      .set("push_tx_mean", out.push_tx.mean)
      .set("pull_tx_mean", out.pull_tx.mean);
}

/// Static-graph cell: the same run_trials path the bench harness has
/// always used — graph regenerated per trial, protocol from the canonical
/// scheme pairing, trials reduced in trial order. With metrics selected,
/// the observed overload runs instead: observers are read-only, so every
/// base column keeps its exact metric-less value and the digests land in
/// appended columns (pinned in tests/test_campaign.cpp).
void run_static_cell(const CampaignSpec& spec, const CampaignCell& cell,
                     const RunnerConfig& trial_runner, JsonObject& record) {
  const BroadcastOptions options = options_for(spec, cell);

  TrialConfig config;
  config.trials = spec.trials;
  config.seed = cell.seed;
  config.channel = with_scheme(
      shape_for(cell), options,
      [](auto, const ChannelConfig& channel) { return channel; });
  config.limits.max_rounds = spec.max_rounds;
  config.random_source = spec.random_source;
  config.runner = trial_runner;

  const GraphFactory graph_factory = graph_factory_for(spec, cell);
  const ProtocolFactory protocol_factory = [options](const Graph& graph) {
    return make_scheme(graph, options).protocol;
  };

  if (spec.metrics.empty()) {
    set_static_columns(record, run_trials(graph_factory, protocol_factory,
                                          config));
    return;
  }
  const ObservedOutcome<MetricStack> observed = run_trials(
      graph_factory, protocol_factory, config,
      [](const Graph&) { return MetricStack{}; });
  set_static_columns(record, observed.outcome);
  set_metric_columns(record, spec, observed.observers);
}

/// Churn cell: the broadcast runs on a DynamicOverlay while a ChurnDriver
/// joins/leaves/switches between rounds (the E13 setting, generalised to
/// every scheme). Per-trial measurements land in trial-indexed slots and
/// are reduced in trial order, so the record honours the determinism
/// contract for any RunnerConfig.
void run_churn_cell(const CampaignSpec& spec, const CampaignCell& cell,
                    const RunnerConfig& trial_runner, JsonObject& record) {
  struct Measurement {
    double rounds = 0.0;
    double coverage = 0.0;
    double joins = 0.0;
    double leaves = 0.0;
    double alive = 0.0;
    double tx_per_alive = 0.0;
    bool all_informed = false;
  };
  std::vector<Measurement> slots(static_cast<std::size_t>(spec.trials));

  const BroadcastOptions options = options_for(spec, cell);
  const SchemeShape shape = shape_for(cell);
  const NodeId capacity =
      cell.n + static_cast<NodeId>(std::ceil(
                   static_cast<double>(cell.n) * spec.churn_headroom));

  // Per-trial metric stacks, reduced in trial order below — the same slot
  // discipline as Measurement, so metric columns obey the determinism
  // contract too. Observers draw nothing: the branch below attaches the
  // stack without touching the trial's draw sequence.
  const bool want_metrics = !spec.metrics.empty();
  std::vector<MetricStack> stacks(
      want_metrics ? static_cast<std::size_t>(spec.trials) : 0);

  ParallelRunner runner(trial_runner);
  runner.for_each_trial(spec.trials, [&](int trial) {
    Rng rng = Rng(cell.seed).fork(static_cast<std::uint64_t>(trial));
    DynamicOverlay overlay(capacity, cell.n, cell.d, rng);
    ChurnConfig churn;
    churn.joins_per_round = cell.churn;
    churn.leaves_per_round = cell.churn;
    churn.switches_per_round = spec.churn_switches;
    ChurnDriver driver(overlay, churn, rng);

    MetricStack stack;
    const RunResult result = with_scheme(
        shape, options, [&](auto proto, const ChannelConfig& channel) {
          PhoneCallEngine<DynamicOverlay> engine(overlay, channel, rng);
          attach_churn(engine, driver);
          RunLimits limits;
          limits.max_rounds = spec.max_rounds;
          const NodeId source =
              spec.random_source ? overlay.random_alive(rng) : 0;
          if (want_metrics) return engine.run(proto, source, limits, stack);
          return engine.run(proto, source, limits);
        });
    if (want_metrics) stacks[static_cast<std::size_t>(trial)] = std::move(stack);

    Measurement& m = slots[static_cast<std::size_t>(trial)];
    const auto alive = static_cast<double>(result.alive_at_end);
    m.rounds = static_cast<double>(result.rounds);
    m.coverage =
        alive > 0.0 ? static_cast<double>(result.final_informed) / alive : 0.0;
    m.joins = static_cast<double>(driver.total_joins());
    m.leaves = static_cast<double>(driver.total_leaves());
    m.alive = alive;
    m.tx_per_alive =
        alive > 0.0 ? static_cast<double>(result.total_tx()) / alive : 0.0;
    m.all_informed = result.all_informed;
  });

  SummaryAccumulator rounds, coverage, joins, leaves, alive, tx;
  int completed = 0;
  for (const Measurement& m : slots) {
    rounds.add(m.rounds);
    coverage.add(m.coverage);
    joins.add(m.joins);
    leaves.add(m.leaves);
    alive.add(m.alive);
    tx.add(m.tx_per_alive);
    if (m.all_informed) ++completed;
  }
  const Summary coverage_summary = coverage.finish();
  record.set("rounds_mean", rounds.finish().mean)
      .set("coverage_mean", coverage_summary.mean)
      .set("coverage_min", coverage_summary.min)
      .set("completion_rate", static_cast<double>(completed) /
                                  static_cast<double>(spec.trials))
      .set("joins_mean", joins.finish().mean)
      .set("leaves_mean", leaves.finish().mean)
      .set("alive_mean", alive.finish().mean)
      .set("tx_per_alive_mean", tx.finish().mean);
  if (want_metrics) set_metric_columns(record, spec, stacks);
}

}  // namespace

JsonObject CampaignRunner::run_cell(const CampaignSpec& spec,
                                    const CampaignCell& cell,
                                    const RunnerConfig& trial_runner) {
  // Wall-clock only: the span never touches the record, so cell output is
  // bit-identical with telemetry on or off (tests/test_telemetry.cpp).
  telemetry::Span cell_span("campaign", cell.key);
  if (cell_span.active())
    cell_span.set_args("{\"trials\":" + std::to_string(spec.trials) + "}");

  JsonObject record;
  set_axis_fields(record, spec, cell);
  if (cell.overlay)
    run_churn_cell(spec, cell, trial_runner, record);
  else
    run_static_cell(spec, cell, trial_runner, record);
  return record;
}

CampaignRunner::CampaignRunner(CampaignSpec spec, CampaignConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {
  if (config_.shard_count < 1)
    throw std::runtime_error("shard count must be >= 1");
  if (config_.shard_index < 0 || config_.shard_index >= config_.shard_count)
    throw std::runtime_error("shard index out of range");
  cells_ = expand_cells(spec_);
}

CampaignOutcome CampaignRunner::run(const CellProgress& progress) {
  namespace fs = std::filesystem;

  CampaignOutcome outcome;
  outcome.total_cells = cells_.size();

  std::vector<const CampaignCell*> mine;
  for (const CampaignCell& cell : cells_)
    if (static_cast<int>(cell.index % static_cast<std::size_t>(
                             config_.shard_count)) == config_.shard_index)
      mine.push_back(&cell);

  const bool persist = !config_.out_dir.empty();
  const std::string fingerprint = to_hex(spec_fingerprint(spec_));

  // ---- Load the journal: completed cells from earlier (possibly
  // interrupted, possibly sharded) runs of this same spec. The loader
  // skips a truncated final line (a run killed mid-write) and the writer
  // cuts that partial tail before appending — that cell just recomputes,
  // bit-identically.
  std::map<std::string, JsonObject> journal;
  std::optional<JournalWriter> journal_out;
  if (persist) {
    fs::create_directories(config_.out_dir);
    outcome.manifest_path = config_.out_dir + "/manifest.jsonl";
    Journal loaded = load_journal(outcome.manifest_path, fingerprint);
    journal_out.emplace(outcome.manifest_path, loaded, spec_.name,
                        fingerprint, cells_.size());
    journal = std::move(loaded.records);
  }

  // Timing side channel (see campaign.hpp): wall time per freshly computed
  // cell, appended in completion order. Deliberately kept out of the
  // manifest/results so the deterministic artifacts stay byte-identical
  // whatever the hardware did; a failed open just disables the channel.
  std::ofstream timing_out;
  if (persist) {
    outcome.timing_path = config_.out_dir + "/timing.jsonl";
    timing_out.open(outcome.timing_path, std::ios::app);
  }
  // Wall-clock reads go through telemetry::now_us — the audited side-channel
  // entry point (ROADMAP telemetry invariant): the value feeds only the
  // timing.jsonl line below, never the deterministic records.
  const auto timing_now = [] { return telemetry::now_us(); };
  const auto elapsed_ms = [](std::int64_t start_us, std::int64_t end_us) {
    return static_cast<double>(end_us - start_us) / 1000.0;
  };
  std::vector<double> wall_ms(mine.size(), 0.0);
  auto record_timing = [&](std::size_t i) {
    if (!timing_out || outcome.cells[i].reused) return;
    const double ms = wall_ms[i];
    JsonObject line;
    line.set("key", outcome.cells[i].cell.key)
        .set("wall_ms", ms)
        .set("trials", spec_.trials)
        .set("trials_per_s",
             ms > 0.0 ? static_cast<double>(spec_.trials) / (ms / 1000.0)
                      : 0.0)
        .set("peak_rss_bytes", telemetry::peak_rss_bytes());
    timing_out << line.to_line() << "\n" << std::flush;
  };

  // ---- Fill slots: reuse journal records, collect the cells still to run.
  outcome.cells.resize(mine.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < mine.size(); ++i) {
    CellResult& slot = outcome.cells[i];
    slot.cell = *mine[i];
    const auto found = journal.find(mine[i]->key);
    if (found != journal.end()) {
      slot.record = found->second;
      slot.reused = true;
    } else {
      missing.push_back(i);
    }
  }

  // Stream one journal line per freshly completed cell; flushed before the
  // progress callback runs, so however the run dies afterwards the cell is
  // already resumable.
  auto complete = [&](std::size_t i) {
    if (persist && !outcome.cells[i].reused)
      journal_out->append(outcome.cells[i].record);
    record_timing(i);
    if (progress) progress(outcome.cells[i]);
  };

  if (!config_.parallel_cells) {
    // Cells in cell order; each cell's trials fan out on the pool.
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (!outcome.cells[i].reused) {
        const std::int64_t start = timing_now();
        outcome.cells[i].record = run_cell(spec_, *mine[i], config_.runner);
        wall_ms[i] = elapsed_ms(start, timing_now());
      }
      complete(i);
    }
  } else {
    // Cells fan out on the pool; each cell's trials run sequentially.
    // Identical output either way — records are pure in (spec, cell) and
    // the slots below are reduced in cell order.
    for (std::size_t i = 0; i < mine.size(); ++i)
      if (outcome.cells[i].reused) complete(i);
    RunnerConfig inner;
    inner.threads = 1;
    std::mutex mutex;
    ParallelRunner pool(config_.runner);
    pool.for_each_trial(static_cast<int>(missing.size()), [&](int j) {
      const std::size_t i = missing[static_cast<std::size_t>(j)];
      const std::int64_t start = timing_now();
      JsonObject record = run_cell(spec_, *mine[i], inner);
      const double ms = elapsed_ms(start, timing_now());
      const std::lock_guard<std::mutex> lock(mutex);
      outcome.cells[i].record = std::move(record);
      wall_ms[i] = ms;
      complete(i);
    });
  }
  outcome.computed = missing.size();
  outcome.reused = mine.size() - missing.size();

  // ---- Final artifacts, rewritten in cell order. Byte-identical for any
  // thread count, shard replay, or interrupt/resume history. The stream
  // covers every cell of the grid with a record available — this shard's
  // slots plus other shards' journal lines — so a sharded re-run over a
  // directory that already holds the full campaign never truncates the
  // results to its own subset; cells no shard has produced yet are simply
  // absent until a run computes them.
  if (persist) {
    journal_out->close();

    std::vector<const JsonObject*> final_records;
    final_records.reserve(cells_.size());
    {
      std::size_t slot = 0;
      for (const CampaignCell& cell : cells_) {
        if (slot < outcome.cells.size() &&
            outcome.cells[slot].cell.index == cell.index) {
          final_records.push_back(&outcome.cells[slot].record);
          ++slot;
        } else if (const auto found = journal.find(cell.key);
                   found != journal.end()) {
          final_records.push_back(&found->second);
        }
      }
    }

    outcome.results_json_path = config_.out_dir + "/results.jsonl";
    std::ofstream json_out(outcome.results_json_path);
    if (!json_out)
      throw std::runtime_error("cannot write " + outcome.results_json_path);
    for (const JsonObject* record : final_records)
      json_out << record->to_line() << "\n";
    json_out.close();

    std::vector<std::string> columns;
    for (const JsonObject* record : final_records)
      for (const JsonObject::Field& field : record->fields()) {
        bool seen = false;
        for (const std::string& column : columns)
          if (column == field.key) {
            seen = true;
            break;
          }
        if (!seen) columns.push_back(field.key);
      }
    outcome.results_csv_path = config_.out_dir + "/results.csv";
    std::ofstream csv_out(outcome.results_csv_path);
    if (!csv_out)
      throw std::runtime_error("cannot write " + outcome.results_csv_path);
    const CsvWriter csv(columns);
    csv.write_header(csv_out);
    for (const JsonObject* record : final_records)
      csv.write_row(csv_out, *record);
    csv_out.close();

    JsonObject meta;
    // Identity only — no shard split, timings or completion counts — so
    // the file is byte-identical however the campaign was executed.
    meta.set("campaign", spec_.name)
        .set("seed", to_hex(spec_.seed))
        .set("fingerprint", fingerprint)
        .set("cells", static_cast<std::uint64_t>(cells_.size()))
        .set("spec", describe(spec_));
    outcome.meta_path = config_.out_dir + "/campaign.json";
    std::ofstream meta_out(outcome.meta_path);
    if (!meta_out)
      throw std::runtime_error("cannot write " + outcome.meta_path);
    meta.write(meta_out, 0);
    meta_out << "\n";
  }

  return outcome;
}

}  // namespace rrb::exp
