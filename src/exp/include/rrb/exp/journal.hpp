#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "rrb/exp/artifact.hpp"

/// \file journal.hpp
/// The manifest-journal file format shared by campaign resume, shard
/// merging and the distributed executor's workers: an append-only JSONL
/// file holding one header line (naming the campaign and its spec
/// fingerprint) followed by one flushed line per completed cell.
///
/// Loading is crash-tolerant by construction. A process killed mid-write
/// leaves a truncated final line; such a line fails to parse as flat JSON
/// and is skipped, so the cell it would have recorded simply recomputes on
/// resume — bit-identically, because cell records are pure in
/// (spec, cell). The loader additionally reports the byte size of the
/// clean prefix so writers can cut the partial tail before appending;
/// without that repair an append would concatenate a fresh record onto the
/// partial line and lose both records.

namespace rrb::exp {

/// A loaded manifest journal.
struct Journal {
  /// Completed cells by cell key. Later lines win, so a journal holding a
  /// cell twice (e.g. merged from two worker journals that both computed
  /// it around a crash) stays consistent — the records are identical
  /// anyway, being pure in (spec, cell).
  std::map<std::string, JsonObject> records;

  bool saw_header = false;   ///< a fingerprint header line was present
  bool has_content = false;  ///< any non-blank line at all

  /// Byte size of the clean prefix: everything up to and including the
  /// newline of the last complete line. Smaller than the file size exactly
  /// when the file ends in a truncated partial record (killed writer);
  /// JournalWriter cuts the file back to this size before appending.
  std::uintmax_t clean_size = 0;

  std::size_t skipped = 0;  ///< damaged/truncated lines skipped
};

/// Load the journal at `path` (a missing file is an empty journal). Lines
/// that do not parse as flat JSON, or that parse without a `key` field, are
/// skipped and counted in `skipped`. Throws std::runtime_error when the
/// journal carries a header with a fingerprint other than `fingerprint`
/// (resuming across spec changes would silently mix incompatible cells) or
/// cell records with no header at all (records that cannot be attributed
/// to a spec must not be reused).
[[nodiscard]] Journal load_journal(const std::string& path,
                                   const std::string& fingerprint);

/// Append journal lines to `path`, repairing a truncated tail first: when
/// `journal.clean_size` is short of the file's size, the partial final
/// line is cut off (the loader already skipped it, so no information is
/// lost). Writes the `{campaign, fingerprint, cells}` header when the
/// journal has none. Throws std::runtime_error when the file cannot be
/// opened for writing.
class JournalWriter {
 public:
  JournalWriter(const std::string& path, const Journal& journal,
                const std::string& campaign_name,
                const std::string& fingerprint, std::size_t total_cells);

  /// Append one record line and flush it, so the cell survives however the
  /// process dies afterwards.
  void append(const JsonObject& record);

  void close() { out_.close(); }

 private:
  std::ofstream out_;
};

}  // namespace rrb::exp
