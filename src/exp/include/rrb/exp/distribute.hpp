#pragma once

#include <cstddef>
#include <string>

#include "rrb/common/runner_config.hpp"
#include "rrb/exp/spec.hpp"

/// \file distribute.hpp
/// Process-level campaign executor: `rrb_campaign --distribute K`.
///
/// The driver forks K worker processes (the same binary in a hidden
/// `--worker I` mode) over one campaign directory. Workers claim cells
/// *dynamically* through an atomic claim protocol — one O_CREAT|O_EXCL
/// file per cell under `<out>/claims/` — so there is no static shard
/// split and stragglers never serialise the run: a worker that finishes
/// early keeps claiming whatever is left. Each worker journals completed
/// cells into its own `<out>/workers/w<I>.jsonl` exactly as `--shard`
/// runs do, and the driver supervises:
///
///  * a worker that exits abnormally (crash, SIGKILL, OOM) has its
///    unfinished claims released — cells its journal already holds stay
///    done — and is respawned up to a retry budget, resuming from its own
///    journal;
///  * worker journals are merged (fingerprint-validated, deduplicated)
///    into `<out>/manifest.jsonl` before spawning (so a restarted driver
///    reuses earlier work) and after all workers finish;
///  * the caller then runs the ordinary CampaignRunner over the merged
///    manifest, which reuses every journal line, computes any cells a
///    permanently-failed worker left behind, and writes the final
///    artifacts.
///
/// Distribution is scheduling, never semantics: cell randomness is keyed
/// on (campaign_seed, cell_key, trial) — see spec.hpp — so
/// `results.jsonl`, `results.csv` and `campaign.json` are byte-identical
/// to a single-process run for any K, any claim interleaving, and any
/// crash/respawn history. Only wall-clock time changes.

namespace rrb::exp {

/// Atomic cell-claim directory: claim i exists as `<dir>/cell_<i>.claim`
/// holding the owner's name. Creation uses O_CREAT|O_EXCL, so exactly one
/// contender wins a cell however many workers race for it. Claims only
/// coordinate live workers within one driver run — completed work is
/// protected by journals, so the driver clears stale claims at startup.
class CellClaims {
 public:
  /// Creates `dir` if missing.
  explicit CellClaims(std::string dir);

  /// Atomically claim cell `index` for `owner`. True exactly when this
  /// call created the claim; false when any owner already holds it.
  [[nodiscard]] bool try_claim(std::size_t index,
                               const std::string& owner) const;

  /// The owner recorded in cell `index`'s claim file, or "" if unclaimed.
  [[nodiscard]] std::string owner_of(std::size_t index) const;

  /// Drop cell `index`'s claim (crash recovery: the driver releases a dead
  /// worker's claims for cells its journal does not hold).
  void release(std::size_t index) const;

  /// Remove every claim file (fresh driver run).
  void clear() const;

  [[nodiscard]] std::string path_of(std::size_t index) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

/// Campaign-directory layout shared by the driver and its workers.
[[nodiscard]] std::string claims_dir(const std::string& out_dir);
[[nodiscard]] std::string worker_journal_path(const std::string& out_dir,
                                              int worker_id);
[[nodiscard]] std::string resolved_spec_path(const std::string& out_dir);

/// Telemetry side-channel files (ROADMAP telemetry invariant: these never
/// feed a deterministic artifact, are never merged into journals, and may
/// be deleted at any time).
///
/// Heartbeat: `<out>/workers/w<I>.heartbeat`, truncate-rewritten after each
/// completed cell as "<own journal cells> <monotonic µs>". The driver polls
/// them for the live progress line and straggler detection. The `.heartbeat`
/// extension keeps them out of the journal merge's `.jsonl` glob.
[[nodiscard]] std::string worker_heartbeat_path(const std::string& out_dir,
                                                int worker_id);
/// Worker trace events: `<out>/trace/w<I>.events.jsonl` (the telemetry
/// events-JSONL shuttle format), appended after each cell when the driver
/// runs with `--trace`; the driver merges them into one Chrome trace. A
/// separate `trace/` directory keeps them away from the journal glob too.
[[nodiscard]] std::string worker_events_path(const std::string& out_dir,
                                             int worker_id);

/// One worker process's identity and knobs (the hidden `--worker I` mode).
struct WorkerConfig {
  int worker_id = 0;
  std::string out_dir;  ///< the campaign directory, shared with the driver
  RunnerConfig runner;  ///< trial scheduling inside this worker
  bool quiet = false;

  /// Flush this worker's telemetry events to worker_events_path() after
  /// each completed cell (the hidden `--worker-events` flag, set by a
  /// `--trace` driver). Per-cell flushing is what makes the trace
  /// crash-tolerant: a SIGKILLed worker loses at most one cell's events.
  bool record_events = false;

  /// Test hook for the crash-recovery fixtures: SIGKILL this worker after
  /// it computes this many cells (0 = at startup, before claiming
  /// anything). One-shot — a marker file next to the worker journal arms
  /// it only once, so the respawned worker finishes the campaign. < 0
  /// disables the hook.
  int crash_after = -1;
};

/// Worker body: skip cells already journaled (in the campaign manifest or
/// this worker's own journal from a previous life), claim the rest one by
/// one, compute each claimed cell via CampaignRunner::run_cell and journal
/// it. Returns the number of cells computed in this life.
std::size_t run_worker(const CampaignSpec& spec, const WorkerConfig& config);

/// Driver knobs for `--distribute K`.
struct DistributeConfig {
  int workers = 2;

  /// Total respawns across all workers before the driver stops reviving a
  /// dying fleet; cells left behind fall to the caller's final
  /// CampaignRunner pass. < 0 = 2 * workers.
  int respawn_budget = -1;

  RunnerConfig runner;  ///< forwarded to every worker (--threads/--chunk/
                        ///< --batch composition)
  std::string out_dir;
  bool quiet = false;

  /// Driver half of `--trace`: forward `--worker-events` to every worker so
  /// their spans land in <out>/trace/, to be merged by the caller.
  bool trace = false;

  /// Supervision cadence. A worker whose heartbeat is older than
  /// `straggler_after_s` (while still alive) is flagged once per life on
  /// stderr and in the trace. Progress lines are printed at most every
  /// `progress_interval_ms` unless the cell count changed.
  double straggler_after_s = 30.0;
  int progress_interval_ms = 2000;

  int crash_worker0_after = -1;  ///< test hook, forwarded to worker 0
};

/// What the supervisor did. Deterministic artifacts never depend on any of
/// this — it feeds progress output only.
struct DistributeReport {
  std::size_t cells = 0;             ///< full grid size
  std::size_t merged_before = 0;     ///< records reused from prior runs
  std::size_t merged_after = 0;      ///< fresh worker records merged
  int respawns = 0;
  int failed_workers = 0;  ///< workers abandoned with the budget spent
  std::size_t stragglers_flagged = 0;  ///< heartbeat timeouts observed
};

/// Spawn `config.workers` processes of `exe_path` in `--worker` mode over
/// `config.out_dir`, supervise them (reclaim + respawn on abnormal exit),
/// and merge their journals into the campaign manifest. The final
/// artifact pass stays with the caller: run CampaignRunner over the same
/// directory afterwards — it reuses every merged cell and writes
/// results/CSV/meta byte-identically to a single-process run.
///
/// Throws std::runtime_error on invalid configuration, spawn failure, or
/// an unwritable campaign directory. Only implemented on POSIX; elsewhere
/// it throws.
DistributeReport distribute_campaign(const CampaignSpec& spec,
                                     const DistributeConfig& config,
                                     const std::string& exe_path);

}  // namespace rrb::exp
