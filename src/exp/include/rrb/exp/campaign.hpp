#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rrb/common/runner_config.hpp"
#include "rrb/exp/artifact.hpp"
#include "rrb/exp/spec.hpp"

/// \file campaign.hpp
/// Deterministic, resumable execution of an experiment campaign.
///
/// A campaign is the expanded cell grid of a CampaignSpec. The runner
/// executes every cell's trials under the library's seeding contract
/// (trial i of a cell runs on Rng(cell.seed).fork(i), reduced in trial
/// order), so a cell's record is a pure function of (spec, cell) — never of
/// the thread count, the chunk size, the shard split, or which cells ran
/// before it. That purity is what the artifact layer leans on:
///
///  * `manifest.jsonl` — an append-only journal, one flushed line per
///    completed cell (plus a header naming the spec fingerprint). A
///    re-run reuses journal lines verbatim and computes only missing
///    cells, so an interrupted campaign resumes bit-identically; deleting
///    journal lines merely re-runs those cells.
///  * `results.jsonl` / `results.csv` — the full record stream in cell
///    order, rewritten at the end of every run.
///  * `campaign.json` — the spec echo + fingerprint. Contains no
///    timings or completion counts, so it is byte-identical however the
///    campaign was executed.
///  * `timing.jsonl` — a SIDE CHANNEL, never part of the deterministic
///    record set: one appended line per freshly computed cell with its
///    wall time and trial throughput, so campaign runs feed the perf
///    trajectory the way bench_micro_engine's BENCH_*.json does.
///    Determinism diffs (CI, tests) must never include this file.
///
/// Sharding: `shard_index/shard_count` restricts a run to cells with
/// `index % shard_count == shard_index`. Shards write to separate
/// directories; concatenating their manifests into one directory and
/// re-running unsharded reuses every line and emits the full artifacts
/// without recomputing anything — the plug-in point for distributed cells.

namespace rrb::exp {

/// Execution knobs. None of these affect the recorded numbers.
struct CampaignConfig {
  /// Worker pool for each cell's trials (and for the cell loop when
  /// parallel_cells is set). Defaults resolve via $RRB_THREADS.
  RunnerConfig runner;

  /// Fan the *cells* out across the pool (each cell's trials then run
  /// sequentially) instead of running cells in order with parallel trials.
  /// Better for grids of many small cells; output is identical either way.
  bool parallel_cells = false;

  int shard_index = 0;
  int shard_count = 1;

  /// Artifact directory (created if missing). Empty = in-memory run: no
  /// files are read or written.
  std::string out_dir;
};

/// A completed cell with its record.
struct CellResult {
  CampaignCell cell;
  JsonObject record;
  bool reused = false;  ///< satisfied from the manifest, not recomputed
};

/// Everything a run produced, in cell order (this shard's cells only).
struct CampaignOutcome {
  std::vector<CellResult> cells;
  std::size_t total_cells = 0;  ///< full grid size, across all shards
  std::size_t computed = 0;
  std::size_t reused = 0;
  std::string manifest_path;      ///< empty for in-memory runs
  std::string results_json_path;  ///< empty for in-memory runs
  std::string results_csv_path;   ///< empty for in-memory runs
  std::string meta_path;          ///< empty for in-memory runs
  std::string timing_path;        ///< wall-time side channel; empty for
                                  ///< in-memory runs (see timing.jsonl above)
};

/// Streamed per-cell completion callback. Invoked in completion order
/// (== cell order unless parallel_cells), after the cell's journal line
/// has been flushed. Throwing aborts the run; completed cells stay in the
/// journal, so a later run resumes where this one stopped.
using CellProgress = std::function<void(const CellResult&)>;

class CampaignRunner {
 public:
  /// Expands the spec (throws std::runtime_error on invalid specs or
  /// config, e.g. a bad shard split).
  explicit CampaignRunner(CampaignSpec spec, CampaignConfig config = {});

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<CampaignCell>& cells() const {
    return cells_;
  }

  /// Execute (or resume) the campaign and write the artifacts.
  CampaignOutcome run(const CellProgress& progress = {});

  /// Execute one cell: `trials` runs under the seeding contract, reduced in
  /// trial order into a deterministic record. Pure in (spec, cell);
  /// `trial_runner` only schedules.
  [[nodiscard]] static JsonObject run_cell(const CampaignSpec& spec,
                                           const CampaignCell& cell,
                                           const RunnerConfig& trial_runner);

 private:
  CampaignSpec spec_;
  CampaignConfig config_;
  std::vector<CampaignCell> cells_;
};

}  // namespace rrb::exp
