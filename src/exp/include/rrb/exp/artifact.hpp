#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file artifact.hpp
/// Machine-readable experiment artifacts: the one JSON/CSV serialisation
/// layer shared by the bench harness (BENCH_*.json trajectory files), the
/// campaign subsystem (manifest/results streams) and simulate_cli --json.
/// Everything here is deterministic — a record's bytes are a pure function
/// of the values put into it — because campaign resume and the
/// thread-count-independence guarantee both diff these files byte-for-byte.

namespace rrb::exp {

/// Escape `text` for use inside a JSON string literal (RFC 8259): quote,
/// backslash and all control characters below 0x20; other bytes (including
/// UTF-8 multibyte sequences) pass through unchanged.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Deterministic decimal rendering of a double: 17 significant digits
/// (enough to round-trip exactly), no locale dependence. Non-finite values
/// render as "null" — JSON has no inf/nan literals, and a null field is
/// more honest in a data file than a quietly invalid token.
[[nodiscard]] std::string format_double(double value);

/// One flat JSON object: an ordered list of string/number/bool fields.
/// Field order is insertion order and is part of the serialised bytes.
class JsonObject {
 public:
  /// A rendered field: `json` is the serialised value token (quoted and
  /// escaped for strings), `plain` the unquoted text used for CSV cells.
  struct Field {
    std::string key;
    std::string json;
    std::string plain;
  };

  JsonObject& set(const std::string& key, const std::string& value) {
    fields_.push_back({key, "\"" + json_escape(value) + "\"", value});
    return *this;
  }
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonObject& set(const std::string& key, double value) {
    std::string text = format_double(value);
    fields_.push_back({key, text, std::move(text)});
    return *this;
  }
  JsonObject& set(const std::string& key, std::uint64_t value) {
    std::string text = std::to_string(value);
    fields_.push_back({key, text, std::move(text)});
    return *this;
  }
  JsonObject& set(const std::string& key, int value) {
    std::string text = std::to_string(value);
    fields_.push_back({key, text, std::move(text)});
    return *this;
  }
  JsonObject& set(const std::string& key, bool value) {
    std::string text = value ? "true" : "false";
    fields_.push_back({key, text, std::move(text)});
    return *this;
  }

  /// Append a pre-rendered field (used when round-tripping records parsed
  /// back from a manifest: the original value token is preserved verbatim
  /// so re-serialisation is byte-identical).
  JsonObject& set_raw(Field field) {
    fields_.push_back(std::move(field));
    return *this;
  }

  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }
  [[nodiscard]] bool empty() const { return fields_.empty(); }

  /// The plain text of field `key`, or nullopt if absent.
  [[nodiscard]] std::optional<std::string_view> find_plain(
      std::string_view key) const;

  /// The numeric value of field `key`, or nullopt if absent or not a
  /// number.
  [[nodiscard]] std::optional<double> find_number(std::string_view key) const;

  /// Pretty multi-line rendering, `indent` spaces deep (the layout of the
  /// BENCH_*.json trajectory files).
  void write(std::ostream& os, int indent) const;

  /// Compact single-line rendering (the JSONL layout of campaign
  /// manifests/results). No trailing newline.
  void write_line(std::ostream& os) const;

  /// write_line into a fresh string.
  [[nodiscard]] std::string to_line() const;

 private:
  std::vector<Field> fields_;
};

/// Parse one flat JSON object (the output of JsonObject::write_line or
/// write) back into a JsonObject. Value tokens are preserved verbatim, so
/// to_line() on the result reproduces the canonical line byte-for-byte.
/// Returns nullopt on malformed input or nested containers — campaign
/// resume treats such manifest lines as lost and recomputes the cell.
[[nodiscard]] std::optional<JsonObject> parse_flat_json(std::string_view text);

/// Escape a CSV cell per RFC 4180: wrap in quotes (doubling embedded
/// quotes) when the value contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(std::string_view text);

/// CSV emission with a fixed column set: one header plus one row per
/// record; a record missing a column yields an empty cell, extra fields
/// are ignored.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  void write_header(std::ostream& os) const;
  void write_row(std::ostream& os, const JsonObject& record) const;

  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }

 private:
  std::vector<std::string> columns_;
};

/// The shared {meta, top, rows} report layout used by the BENCH_*.json
/// trajectory files and simulate_cli --json.
void write_report(std::ostream& os, const JsonObject& meta,
                  const JsonObject& top, const std::vector<JsonObject>& rows);

/// Accumulates a harness binary's machine-readable results and writes them
/// as a {meta, top, rows} report. Standard meta fields (name, git
/// revision, thread count, wall time) are filled automatically so
/// trajectory files from different PRs are comparable. The bench harness
/// wraps this with its baked-in git revision (rrb::bench::BenchReport);
/// simulate_cli uses it directly with write_to().
class BenchReport {
 public:
  BenchReport(std::string name, std::string git_revision, int threads);

  /// Add a top-level scalar (e.g. a fitted slope).
  template <typename T>
  BenchReport& set(const std::string& key, T value) {
    top_.set(key, value);
    return *this;
  }

  /// Append a per-case row; fill in the returned object.
  JsonObject& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Write the report to `path` (creating/truncating the file) and report
  /// the path on stdout. Returns the path.
  std::string write_to(const std::string& path);

  /// Write BENCH_<name>.json into $RRB_BENCH_JSON_DIR (default the working
  /// directory). Returns the path written.
  std::string write();

 private:
  std::string name_;
  std::string git_;
  int threads_;
  double start_ms_;  ///< steady-clock origin for the wall_ms meta field
  JsonObject top_;
  std::vector<JsonObject> rows_;
};

}  // namespace rrb::exp
