#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/metrics/registry.hpp"

/// \file spec.hpp
/// Declarative experiment campaigns: a CampaignSpec names the axes of an
/// experiment grid (scheme, graph family, n, d, alpha, failure, churn, ...)
/// and expands into a deterministic, ordered list of cells. Each cell's
/// randomness is keyed purely on (campaign_seed, cell_key):
///
///   cell.seed = derive_seed(campaign_seed, hash_string(cell.key))
///   trial i of the cell runs on Rng(cell.seed).fork(i)
///
/// — the campaign extension of the library's (seed, trial) contract. Cell
/// keys are canonical strings built from the axis values alone, so a cell
/// keeps its seed (and therefore its exact results) when the grid around it
/// grows, shrinks or is re-ordered, when cells are sharded across
/// processes, and when an interrupted campaign resumes.

namespace rrb::exp {

/// Graph families a campaign can draw per-trial topologies from.
enum class GraphFamily {
  kRegular,      ///< random_regular_simple(n, d)
  kConfigModel,  ///< configuration_model(n, d) — multigraph, the paper's model
  kGnp,          ///< Erdős–Rényi G(n, p) with p = d/(n-1)
  kHypercube,    ///< hypercube on n = 2^dim nodes (d ignored)
  kComplete,     ///< complete graph K_n (d ignored)
  kChunked,      ///< bigtopo::chunked_configuration_model(n, d) — the compact
                 ///< CSR path for n in the 10^6–10^8 regime
  kProductK5,    ///< cartesian product random_regular_simple(n/5, d-4) × K_5
                 ///< (the E10 product-graph construction)
};

/// How one value of the degree axis is computed from a cell's n. Literal
/// values reproduce the plain `d = 3, 8` axis; the derived rules express
/// the density sweeps of the FHP "density does not matter" prediction
/// (d = log n, 2 log n, √n) without pinning one n.
enum class DegreeRule {
  kLiteral,   ///< the stored value itself
  kLog2N,     ///< ceil(log2 n)         — spec spelling `log2n`
  kTwoLog2N,  ///< 2 * ceil(log2 n)     — spec spelling `2log2n`
  kSqrtN,     ///< floor(sqrt(n))       — spec spelling `sqrtn`
};

/// One entry of a rule-based degree axis: a rule plus its literal value
/// (meaningful only for kLiteral).
struct DegreeSpec {
  DegreeRule rule = DegreeRule::kLiteral;
  NodeId value = 0;

  friend bool operator==(const DegreeSpec&, const DegreeSpec&) = default;
};

/// Stable family name, used in cell keys and spec files.
[[nodiscard]] const char* graph_family_name(GraphFamily family);

/// Inverse of graph_family_name; nullopt if unknown.
[[nodiscard]] std::optional<GraphFamily> parse_graph_family(
    std::string_view name);

/// The declarative description of one experiment campaign. Everything here
/// is cell *identity*: two specs with the same values produce byte-identical
/// artifacts on any machine, thread count, or shard split.
struct CampaignSpec {
  std::string name = "campaign";

  /// Master seed; every cell seed derives from (seed, cell_key).
  std::uint64_t seed = 0xca3b416e;

  /// Independent trials per cell (trial i streams from fork(i)).
  int trials = 5;

  /// Draw a fresh uniform source per trial (true) or broadcast from node 0.
  bool random_source = true;

  /// Safety cap on rounds per run.
  Round max_rounds = 1 << 20;

  GraphFamily graph = GraphFamily::kRegular;

  // ---- Axes. The grid is the cartesian product, expanded outer-to-inner
  // in the order the fields are declared; within an axis, cells follow the
  // listed value order.
  std::vector<BroadcastScheme> schemes{BroadcastScheme::kFourChoice};
  std::vector<bool> quasirandom{false};
  std::vector<NodeId> n_values{1U << 10};
  std::vector<NodeId> d_values{8};
  std::vector<double> alphas{1.5};
  std::vector<double> failures{0.0};
  std::vector<double> churn_rates{0.0};

  /// Channels-per-round override axis (the k-choice ablation, E9): value k
  /// > 0 overrides the scheme's canonical ChannelConfig::num_choices; 0 —
  /// the default — keeps it, adds no key part and changes no fingerprint.
  std::vector<int> choices{0};

  /// Memory-window override axis (the E15 sequentialised comparison): value
  /// m >= 0 overrides the scheme's canonical BroadcastOptions::memory (0 =
  /// memoryless); -1 — the default — keeps the scheme canonical, adds no
  /// key part and changes no fingerprint. Spec key `memory`.
  std::vector<int> memory_values{-1};

  /// Rule-based degree axis (spec line `d = 3, log2n, 2log2n, sqrtn`):
  /// when non-empty it supersedes d_values, resolving each rule against
  /// the cell's n at expansion. Empty (the default) keeps the literal
  /// d_values axis and existing fingerprints.
  std::vector<DegreeSpec> d_rules;

  /// Derive each cell's degree from its n as d = 2·ceil(log2 n) (the E2 /
  /// Theorem 3 large-degree regime) instead of taking the d axis. Spec
  /// syntax: `d = 2log2n`. Default off, so plain specs keep their
  /// fingerprints.
  bool derived_d = false;

  // ---- Overlay parameters. Cells with churn > 0 always run on a
  // DynamicOverlay (`joins = leaves = churn` expected events per round);
  // `overlay = true` forces the overlay path for churn-0 cells too, so a
  // churn sweep's baseline row is measured on the same substrate.
  bool overlay = false;         ///< run every cell on the dynamic overlay
  int churn_switches = 2;       ///< maintenance 2-switches per round
  double churn_headroom = 0.5;  ///< overlay slot capacity = n * (1 + this)

  /// Execution batches for the chunked family (bigtopo::ChunkedParams::
  /// chunks; 0 = one batch per canonical chunk). Scheduling, never
  /// semantics: not part of cell keys, describe() or the fingerprint —
  /// the generated graphs are byte-identical for every value.
  int chunks = 0;

  // ---- Metrics. Registry metrics (rrb/metrics/registry.hpp) collected
  // per trial via the observer pipeline and emitted as extra
  // `<prefix>_*_mean` columns in every cell record (spec line
  // `metrics = tx-histogram, latency`; `metrics = none` clears).
  //
  // Metrics are NOT a grid axis: observers are read-only and draw no
  // randomness, so enabling them changes no cell key, no cell seed and no
  // existing column — records just grow columns. They DO enter the spec
  // fingerprint (a metric-less manifest lacks the columns, so resuming
  // across a metrics change is refused); see also the record-schema
  // version folded into spec_fingerprint(), which guards column changes
  // that are not spec-visible at all.
  std::vector<MetricKind> metrics;
};

/// One expanded grid point.
struct CampaignCell {
  std::size_t index = 0;  ///< position in expansion order, 0-based
  BroadcastScheme scheme = BroadcastScheme::kFourChoice;
  bool quasirandom = false;
  GraphFamily graph = GraphFamily::kRegular;
  NodeId n = 0;
  NodeId d = 0;
  double alpha = 1.5;
  double failure = 0.0;
  double churn = 0.0;
  int choices = 0;         ///< num_choices override; 0 = scheme canonical
  int memory = -1;         ///< memory override; -1 = scheme canonical
  bool overlay = false;    ///< runs on the dynamic overlay (churn > 0 or
                           ///< spec.overlay)
  std::string key;         ///< canonical cell key (see cell_key)
  std::uint64_t seed = 0;  ///< derive_seed(campaign_seed, hash_string(key))
};

/// Canonical cell key: `scheme=<s>;qr=<0|1>;graph=<g>;n=<n>;d=<d>;
/// alpha=<a>;failure=<f>;churn=<c>`, with
/// `;overlay=1;switches=<k>;headroom=<h>` appended for overlay cells,
/// `;choices=<k>` appended when the cell overrides num_choices and
/// `;memory=<m>` when it overrides the memory window — optional
/// parts only appear when non-default, so existing keys (and their seeds)
/// never move when the spec grammar grows.
/// Doubles render via format_double, so the key is platform-independent.
/// Golden-pinned in tests/test_campaign.cpp.
[[nodiscard]] std::string cell_key(const CampaignCell& cell,
                                   const CampaignSpec& spec);

/// The seed for a cell key under `campaign_seed` — the campaign extension
/// of the seeding contract. Golden-pinned in tests/test_campaign.cpp.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t campaign_seed,
                                      std::string_view key);

/// Expand the spec's grid into cells, in deterministic order, with keys and
/// seeds filled in. Throws std::runtime_error on invalid specs (empty axes,
/// trials < 1, churn on a non-regular family, hypercube n not a power of
/// two, ...).
[[nodiscard]] std::vector<CampaignCell> expand_cells(const CampaignSpec& spec);

/// Canonical `key = value` listing of every spec field (the format
/// parse_spec reads). Feeds campaign.json and the fingerprint.
[[nodiscard]] std::string describe(const CampaignSpec& spec);

/// Stable hash of the spec's identity (hash_string over describe()). The
/// campaign manifest records it so a resume against a *different* spec is
/// refused instead of silently mixing incompatible cells.
[[nodiscard]] std::uint64_t spec_fingerprint(const CampaignSpec& spec);

/// Apply one `key = value` setting (also the --set flag of rrb_campaign).
/// List-valued keys take comma-separated values; integers accept 0x-hex
/// and a 2^k power shorthand. Throws std::runtime_error on unknown keys or
/// unparsable values.
void apply_setting(CampaignSpec& spec, std::string_view key,
                   std::string_view value);

/// Parse a spec file: `key = value` lines, '#' comments, blank lines
/// ignored. Throws std::runtime_error with a line number on bad input.
[[nodiscard]] CampaignSpec parse_spec(std::istream& in);

/// Load and parse a spec file from disk; throws std::runtime_error if the
/// file cannot be read.
[[nodiscard]] CampaignSpec load_spec(const std::string& path);

}  // namespace rrb::exp
