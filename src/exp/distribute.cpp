#include "rrb/exp/distribute.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rrb/exp/campaign.hpp"
#include "rrb/exp/journal.hpp"
#include "rrb/telemetry/telemetry.hpp"

#ifndef _WIN32
#include <csignal>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace rrb::exp {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] std::string to_hex(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

[[nodiscard]] std::string owner_name(int worker_id) {
  return "w" + std::to_string(worker_id);
}

/// Truncate-rewrite a worker heartbeat: "<own journal cells> <monotonic µs>".
/// Pure side channel (see distribute.hpp) — wall clock via the audited
/// telemetry::now_us entry point, consumed only by the driver's progress
/// line and straggler check, never by a deterministic artifact.
void write_heartbeat(const std::string& path, std::size_t journal_cells) {
  std::ofstream out(path, std::ios::trunc);
  if (out) out << journal_cells << ' ' << telemetry::now_us() << '\n';
}

/// Parse a heartbeat file. False when missing/partial (a worker may be
/// mid-rewrite — the next poll catches up).
[[nodiscard]] bool read_heartbeat(const std::string& path,
                                  std::size_t& journal_cells,
                                  std::int64_t& ts_us) {
  std::ifstream in(path);
  if (!in) return false;
  long long cells = -1, ts = -1;
  in >> cells >> ts;
  if (!in || cells < 0 || ts < 0) return false;
  journal_cells = static_cast<std::size_t>(cells);
  ts_us = ts;
  return true;
}

/// Merge every record of every `<out>/workers/w*.jsonl` journal that the
/// campaign manifest does not already hold into the manifest (validating
/// each journal's fingerprint header on load). Worker journals are visited
/// in sorted path order and each journal's records in key order, so the
/// appended lines are deterministic given the same set of journals; the
/// final artifacts never depend on manifest line order anyway.
std::size_t merge_worker_journals(const CampaignSpec& spec,
                                  const std::string& out_dir,
                                  const std::string& fingerprint,
                                  std::size_t total_cells) {
  std::vector<std::string> journal_paths;
  const std::string workers = out_dir + "/workers";
  if (fs::exists(workers))
    for (const fs::directory_entry& entry : fs::directory_iterator(workers))
      if (entry.path().extension() == ".jsonl")
        journal_paths.push_back(entry.path().string());
  std::sort(journal_paths.begin(), journal_paths.end());
  if (journal_paths.empty()) return 0;

  const std::string manifest_path = out_dir + "/manifest.jsonl";
  Journal manifest = load_journal(manifest_path, fingerprint);
  JournalWriter writer(manifest_path, manifest, spec.name, fingerprint,
                       total_cells);
  std::size_t merged = 0;
  for (const std::string& path : journal_paths) {
    const Journal journal = load_journal(path, fingerprint);
    for (const auto& [key, record] : journal.records) {
      if (manifest.records.count(key) != 0) continue;  // duplicate cell:
      // identical bytes by purity, so keeping the first is arbitrary-safe
      writer.append(record);
      manifest.records.emplace(key, record);
      ++merged;
    }
  }
  return merged;
}

}  // namespace

CellClaims::CellClaims(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

std::string CellClaims::path_of(std::size_t index) const {
  return dir_ + "/cell_" + std::to_string(index) + ".claim";
}

bool CellClaims::try_claim(std::size_t index, const std::string& owner) const {
#ifndef _WIN32
  // O_CREAT|O_EXCL is atomic on POSIX filesystems: exactly one of N racing
  // contenders sees a fresh fd, everyone else gets EEXIST.
  const int fd = ::open(path_of(index).c_str(),
                        O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const std::string body = owner + "\n";
  // A short or failed write leaves an empty/partial claim file, which still
  // blocks other contenders — the claim itself was already won by open().
  (void)!::write(fd, body.data(), body.size());
  ::close(fd);
  return true;
#else
  (void)index;
  (void)owner;
  throw std::runtime_error("cell claims require POSIX");
#endif
}

std::string CellClaims::owner_of(std::size_t index) const {
  std::ifstream in(path_of(index));
  if (!in) return "";
  std::string owner;
  std::getline(in, owner);
  return owner;
}

void CellClaims::release(std::size_t index) const {
  std::error_code ec;
  fs::remove(path_of(index), ec);
}

void CellClaims::clear() const {
  if (!fs::exists(dir_)) return;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    std::error_code ec;
    fs::remove(entry.path(), ec);
  }
}

std::string claims_dir(const std::string& out_dir) {
  return out_dir + "/claims";
}

std::string worker_journal_path(const std::string& out_dir, int worker_id) {
  return out_dir + "/workers/" + owner_name(worker_id) + ".jsonl";
}

std::string resolved_spec_path(const std::string& out_dir) {
  return out_dir + "/spec.resolved.campaign";
}

std::string worker_heartbeat_path(const std::string& out_dir, int worker_id) {
  return out_dir + "/workers/" + owner_name(worker_id) + ".heartbeat";
}

std::string worker_events_path(const std::string& out_dir, int worker_id) {
  return out_dir + "/trace/" + owner_name(worker_id) + ".events.jsonl";
}

std::size_t run_worker(const CampaignSpec& spec, const WorkerConfig& config) {
  if (config.out_dir.empty())
    throw std::runtime_error("worker mode needs a campaign directory");
  const std::vector<CampaignCell> cells = expand_cells(spec);
  const std::string fingerprint = to_hex(spec_fingerprint(spec));
  const std::string owner = owner_name(config.worker_id);

  // Done-set snapshot: cells the campaign manifest or this worker's own
  // journal (from a previous life of the same worker id) already hold.
  // Cells other *live* workers complete after this snapshot are skipped via
  // their claims instead.
  const std::string journal_path =
      worker_journal_path(config.out_dir, config.worker_id);
  fs::create_directories(config.out_dir + "/workers");
  Journal own = load_journal(journal_path, fingerprint);
  std::set<std::string> done;
  for (const auto& [key, record] : own.records) done.insert(key);
  {
    const Journal manifest =
        load_journal(config.out_dir + "/manifest.jsonl", fingerprint);
    for (const auto& [key, record] : manifest.records) done.insert(key);
  }

  // Crash-recovery test hook, one-shot: the marker file survives this
  // worker's death, so the respawned life runs the campaign to completion
  // instead of crash-looping.
  const std::string crash_marker = journal_path + ".crashed";
  const bool armed = config.crash_after >= 0 && !fs::exists(crash_marker);
  if (armed) std::ofstream(crash_marker) << "armed\n";
#ifndef _WIN32
  if (armed && config.crash_after == 0) ::raise(SIGKILL);
#endif

  JournalWriter writer(journal_path, own, spec.name, fingerprint,
                       cells.size());
  const CellClaims claims(claims_dir(config.out_dir));

  // Side channels: heartbeat from birth (so the driver sees an idle worker
  // as alive, not stale) and, under --trace, per-cell event flushes.
  const std::string heartbeat_path =
      worker_heartbeat_path(config.out_dir, config.worker_id);
  const std::string events_path =
      worker_events_path(config.out_dir, config.worker_id);
  if (config.record_events)
    fs::create_directories(config.out_dir + "/trace");
  std::size_t journaled = own.records.size();
  write_heartbeat(heartbeat_path, journaled);

  // Work stealing: scan the grid in cell order, claiming whatever is left.
  // Repeat until a full pass computes nothing — a later pass picks up
  // claims the driver released after a crashed worker passed this worker's
  // scan position. Cells still claimed by someone else at exit are either
  // being computed by a live worker or fall to the driver's final
  // CampaignRunner pass.
  std::size_t computed = 0;
  for (bool progressed = true; progressed;) {
    progressed = false;
    for (const CampaignCell& cell : cells) {
      if (done.count(cell.key) != 0) continue;
      if (!claims.try_claim(cell.index, owner)) continue;
      const JsonObject record =
          CampaignRunner::run_cell(spec, cell, config.runner);
      writer.append(record);
      done.insert(cell.key);
      ++computed;
      ++journaled;
      progressed = true;
      write_heartbeat(heartbeat_path, journaled);
      if (config.record_events) telemetry::append_events_jsonl(events_path);
      if (!config.quiet)
        std::printf("[%s] computed %s\n", owner.c_str(), cell.key.c_str());
#ifndef _WIN32
      if (armed && computed >= static_cast<std::size_t>(config.crash_after))
        ::raise(SIGKILL);
#endif
    }
  }
  writer.close();
  write_heartbeat(heartbeat_path, journaled);
  if (config.record_events) telemetry::append_events_jsonl(events_path);
  return computed;
}

#ifndef _WIN32

namespace {

/// argv for one worker process. Every scheduling knob is forwarded; none of
/// them can change the artifacts (RunnerConfig is pure scheduling).
[[nodiscard]] std::vector<std::string> worker_args(
    const std::string& exe_path, int worker_id,
    const DistributeConfig& config) {
  std::vector<std::string> args = {exe_path,
                                   "--worker",
                                   std::to_string(worker_id),
                                   "--out",
                                   config.out_dir,
                                   "--threads",
                                   std::to_string(config.runner.threads),
                                   "--chunk",
                                   std::to_string(config.runner.chunk),
                                   "--batch",
                                   std::to_string(config.runner.batch)};
  if (config.quiet) args.push_back("--quiet");
  if (config.trace) args.push_back("--worker-events");
  if (worker_id == 0 && config.crash_worker0_after >= 0) {
    args.push_back("--worker-crash-after");
    args.push_back(std::to_string(config.crash_worker0_after));
  }
  return args;
}

[[nodiscard]] pid_t spawn_worker(const std::string& exe_path, int worker_id,
                                 const DistributeConfig& config) {
  const std::vector<std::string> args =
      worker_args(exe_path, worker_id, config);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    ::execv(exe_path.c_str(), argv.data());
    std::perror("execv");  // only reached when exec itself failed
    ::_exit(127);
  }
  return pid;
}

}  // namespace

DistributeReport distribute_campaign(const CampaignSpec& spec,
                                     const DistributeConfig& config,
                                     const std::string& exe_path) {
  if (config.workers < 1)
    throw std::runtime_error("--distribute needs at least one worker");
  if (config.out_dir.empty())
    throw std::runtime_error("--distribute needs --out");

  DistributeReport report;
  const std::vector<CampaignCell> cells = expand_cells(spec);
  report.cells = cells.size();
  const std::string fingerprint = to_hex(spec_fingerprint(spec));

  fs::create_directories(config.out_dir + "/workers");

  // The resolved spec shuttles the campaign to the workers: describe()
  // round-trips through parse_spec, and the fingerprint check in every
  // journal load would catch any drift.
  {
    const std::string path = resolved_spec_path(config.out_dir);
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write " + path);
    out << describe(spec);
  }

  // Stale side-channel files would pollute this run's progress/trace:
  // heartbeats are per-run liveness, and a --trace merge must not pick up a
  // previous run's events. Journals are never touched here.
  for (int id = 0; id < config.workers; ++id) {
    std::error_code ec;
    fs::remove(worker_heartbeat_path(config.out_dir, id), ec);
  }
  if (fs::exists(config.out_dir + "/trace"))
    for (const fs::directory_entry& entry :
         fs::directory_iterator(config.out_dir + "/trace")) {
      std::error_code ec;
      fs::remove(entry.path(), ec);
    }

  // Reuse earlier work before spawning anything: worker journals from an
  // interrupted driver run hold completed cells the manifest may lack.
  std::size_t done_at_start = 0;
  {
    const telemetry::Span merge_span("distribute", "merge:before");
    report.merged_before = merge_worker_journals(spec, config.out_dir,
                                                 fingerprint, cells.size());
    done_at_start =
        load_journal(config.out_dir + "/manifest.jsonl", fingerprint)
            .records.size();
  }

  // Claims only coordinate the workers of one driver run; completed work is
  // protected by journals. Stale claims from a dead run would deadlock the
  // grid, so start clean.
  const CellClaims claims(claims_dir(config.out_dir));
  claims.clear();

  const int budget =
      config.respawn_budget >= 0 ? config.respawn_budget : 2 * config.workers;

  std::map<pid_t, int> alive;  // pid -> worker id
  {
    const telemetry::Span spawn_span("distribute", "spawn_workers");
    for (int id = 0; id < config.workers; ++id) {
      const pid_t pid = spawn_worker(exe_path, id, config);
      alive.emplace(pid, id);
      if (!config.quiet)
        std::printf("[distribute] worker %d spawned (pid %d)\n", id,
                    static_cast<int>(pid));
    }
  }

  // ---- Supervision state (pure side channel: progress line, straggler
  // flags, ETA — none of it can reach an artifact). Heartbeats report each
  // worker's own-journal size; claims make journals disjoint, so total
  // progress is the manifest baseline plus each worker's increment over the
  // first value it ever reported (a respawn's journal carries over, so the
  // baseline survives worker lives).
  struct WorkerWatch {
    bool seen = false;
    std::size_t first_cells = 0;  ///< baseline at first heartbeat
    std::size_t cells = 0;        ///< latest own-journal size
    std::int64_t last_ts_us = 0;  ///< latest heartbeat timestamp
    bool flagged = false;         ///< straggler warning issued this life
  };
  std::map<int, WorkerWatch> watch;
  const std::int64_t supervise_start_us = telemetry::now_us();
  std::int64_t last_print_us = supervise_start_us;
  std::size_t last_done = static_cast<std::size_t>(-1);

  const auto poll_side_channels = [&]() {
    const std::int64_t now = telemetry::now_us();
    std::set<int> alive_ids;
    for (const auto& [pid, id] : alive) {
      (void)pid;
      alive_ids.insert(id);
    }
    std::size_t increments = 0;
    for (int id = 0; id < config.workers; ++id) {
      WorkerWatch& w = watch[id];
      std::size_t hb_cells = 0;
      std::int64_t hb_ts = 0;
      if (!read_heartbeat(worker_heartbeat_path(config.out_dir, id), hb_cells,
                          hb_ts))
        continue;
      if (!w.seen) {
        w.seen = true;
        w.first_cells = hb_cells;
      }
      if (hb_cells > w.cells) w.flagged = false;  // progressed: new grace
      w.cells = std::max(w.cells, hb_cells);
      w.last_ts_us = std::max(w.last_ts_us, hb_ts);

      if (alive_ids.count(id) != 0 && !w.flagged &&
          config.straggler_after_s > 0 &&
          static_cast<double>(now - w.last_ts_us) >
              config.straggler_after_s * 1e6) {
        w.flagged = true;
        ++report.stragglers_flagged;
        std::fprintf(stderr,
                     "[distribute] worker %d may be straggling: no "
                     "heartbeat for %.1fs\n",
                     id, static_cast<double>(now - w.last_ts_us) / 1e6);
        telemetry::instant("distribute", "straggler w" + std::to_string(id));
      }
    }
    for (const auto& [id, w] : watch)
      if (w.seen) increments += w.cells - w.first_cells;

    const std::size_t done =
        std::min(cells.size(), done_at_start + increments);
    const bool due = (now - last_print_us) >=
                     static_cast<std::int64_t>(config.progress_interval_ms) *
                         1000;
    if (!config.quiet && (done != last_done || due)) {
      const double elapsed_s =
          static_cast<double>(now - supervise_start_us) / 1e6;
      const double rate =
          elapsed_s > 0.0 ? static_cast<double>(increments) / elapsed_s : 0.0;
      const std::size_t remaining = cells.size() - done;
      if (rate > 0.0)
        std::printf("[progress] %zu/%zu cells, %.2f cells/s, ETA %.1fs\n",
                    done, cells.size(), rate,
                    static_cast<double>(remaining) / rate);
      else
        std::printf("[progress] %zu/%zu cells, 0.00 cells/s, ETA --\n", done,
                    cells.size());
      std::fflush(stdout);
      last_print_us = now;
      last_done = done;
    }
  };

  std::optional<telemetry::Span> supervise_span;
  supervise_span.emplace("distribute", "supervise");
  while (!alive.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid < 0) throw std::runtime_error("waitpid failed");
    if (pid == 0) {
      // Nobody exited: poll the side channels, then yield. 50ms keeps the
      // progress line live without measurable supervision overhead.
      poll_side_channels();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    const auto it = alive.find(pid);
    if (it == alive.end()) continue;  // not ours (e.g. inherited child)
    const int id = it->second;
    alive.erase(it);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      if (!config.quiet) std::printf("[distribute] worker %d finished\n", id);
      continue;
    }

    // Crash path: the worker died mid-campaign (SIGKILL, abort, OOM...).
    // Its journal keeps every cell it completed; release only the claims it
    // abandoned, so the other workers — or its own respawn — can steal
    // them.
    const Journal journal = load_journal(
        worker_journal_path(config.out_dir, id), fingerprint);
    const std::string owner = owner_name(id);
    std::size_t released = 0;
    for (const CampaignCell& cell : cells) {
      if (journal.records.count(cell.key) != 0) continue;
      if (claims.owner_of(cell.index) != owner) continue;
      claims.release(cell.index);
      ++released;
    }

    if (report.respawns < budget) {
      ++report.respawns;
      const pid_t fresh = spawn_worker(exe_path, id, config);
      alive.emplace(fresh, id);
      watch[id].flagged = false;  // the fresh life gets a fresh grace period
      telemetry::instant("distribute", "respawn w" + std::to_string(id));
      if (!config.quiet)
        std::printf(
            "[distribute] worker %d died (status 0x%x); released %zu "
            "claims, respawning (%d/%d)\n",
            id, static_cast<unsigned>(status), released, report.respawns,
            budget);
    } else {
      ++report.failed_workers;
      telemetry::instant("distribute", "abandon w" + std::to_string(id));
      if (!config.quiet)
        std::printf(
            "[distribute] worker %d died (status 0x%x); released %zu "
            "claims, respawn budget spent — leaving its cells to the "
            "final pass\n",
            id, static_cast<unsigned>(status), released);
    }
  }

  supervise_span.reset();

  // Final poll so the last progress line reflects the finished fleet.
  last_done = static_cast<std::size_t>(-1);
  poll_side_channels();
  {
    const telemetry::Span merge_span("distribute", "merge:after");
    report.merged_after = merge_worker_journals(spec, config.out_dir,
                                                fingerprint, cells.size());
  }
  return report;
}

#else  // !_WIN32

DistributeReport distribute_campaign(const CampaignSpec&,
                                     const DistributeConfig&,
                                     const std::string&) {
  throw std::runtime_error("--distribute requires POSIX (fork/exec)");
}

#endif

}  // namespace rrb::exp
