#include "rrb/exp/journal.hpp"

#include <filesystem>
#include <stdexcept>
#include <string_view>

namespace rrb::exp {

namespace {

[[nodiscard]] bool blank(std::string_view line) {
  return line.find_first_not_of(" \t\r") == std::string_view::npos;
}

}  // namespace

Journal load_journal(const std::string& path, const std::string& fingerprint) {
  Journal journal;
  std::ifstream in(path, std::ios::binary);
  if (!in) return journal;  // no journal yet: nothing completed

  std::string line;
  std::uintmax_t consumed = 0;
  while (std::getline(in, line)) {
    // getline strips the delimiter; a final line without one is exactly the
    // truncated tail a killed writer leaves. Only complete lines advance
    // clean_size, so the writer's tail repair cuts the partial line off.
    const bool complete = !in.eof();
    consumed += static_cast<std::uintmax_t>(line.size()) + (complete ? 1 : 0);
    if (complete) journal.clean_size = consumed;

    if (blank(line)) continue;
    journal.has_content = true;
    auto parsed = parse_flat_json(line);
    if (!parsed) {
      ++journal.skipped;  // damaged or truncated: the cell just recomputes
      continue;
    }
    if (const auto fp = parsed->find_plain("fingerprint")) {
      if (*fp != fingerprint)
        throw std::runtime_error(
            path + " was written by a different campaign spec (fingerprint " +
            std::string(*fp) + ", this spec is " + fingerprint +
            ") — refusing to resume into it");
      journal.saw_header = true;
      continue;
    }
    const auto key = parsed->find_plain("key");
    if (!key) {
      ++journal.skipped;
      continue;
    }
    // A complete, parseable final line without a newline is still a good
    // record (e.g. an editor stripped the trailing newline) — keep it and
    // let the writer terminate it instead of cutting it off.
    if (!complete) journal.clean_size = consumed + 1;
    journal.records.insert_or_assign(std::string(*key), std::move(*parsed));
  }
  in.close();

  // Records without any fingerprint header cannot be attributed to a spec —
  // reusing them could silently mix incompatible results (e.g. a different
  // trial count, which the cell key does not encode).
  if (!journal.saw_header && !journal.records.empty())
    throw std::runtime_error(
        path +
        " holds cell records but no campaign header line — cannot verify "
        "they belong to this spec; restore the header or delete the "
        "manifest to recompute");
  return journal;
}

JournalWriter::JournalWriter(const std::string& path, const Journal& journal,
                             const std::string& campaign_name,
                             const std::string& fingerprint,
                             std::size_t total_cells) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const std::uintmax_t on_disk = fs::file_size(path, ec);
  if (!ec && on_disk > journal.clean_size) {
    // Truncated tail (killed writer): cut the partial line so the next
    // append starts on a fresh line instead of corrupting two records. The
    // kept-but-unterminated final record case sets clean_size one past the
    // file size; resize_file pads that with '\0' — worse than a newline —
    // so it is handled by the stream below instead.
    fs::resize_file(path, journal.clean_size, ec);
    if (ec)
      throw std::runtime_error("cannot repair journal tail of " + path +
                               ": " + ec.message());
  }
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) throw std::runtime_error("cannot write " + path);
  if (!ec && journal.clean_size > on_disk) out_ << "\n";  // terminate kept tail
  if (!journal.saw_header) {
    JsonObject header;
    header.set("campaign", campaign_name)
        .set("fingerprint", fingerprint)
        .set("cells", static_cast<std::uint64_t>(total_cells));
    out_ << header.to_line() << "\n" << std::flush;
  }
}

void JournalWriter::append(const JsonObject& record) {
  out_ << record.to_line() << "\n" << std::flush;
}

}  // namespace rrb::exp
