#include "rrb/exp/artifact.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

namespace rrb::exp {

namespace {

const char* const kHexDigits = "0123456789abcdef";

double steady_now_ms() {
  // rrb-lint: allow-next-line(no-nondeterminism-sources) — feeds only the
  // timing.jsonl wall-clock side channel, which is never part of the
  // deterministic artifacts and never diffed (see PR 5 notes in CHANGES.md).
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(since_epoch).count();
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          out += "\\u00";
          out += kHexDigits[byte >> 4];
          out += kHexDigits[byte & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(17);
  os << value;
  return os.str();
}

std::optional<std::string_view> JsonObject::find_plain(
    std::string_view key) const {
  for (const Field& field : fields_)
    if (field.key == key) return std::string_view(field.plain);
  return std::nullopt;
}

std::optional<double> JsonObject::find_number(std::string_view key) const {
  for (const Field& field : fields_) {
    if (field.key != key) continue;
    // std::from_chars, not strtod: value parsing must match the classic-
    // locale discipline format_double applies when writing, even inside a
    // host process that set a comma-decimal LC_NUMERIC.
    const std::string& text = field.plain;
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size())
      return std::nullopt;
    return value;
  }
  return std::nullopt;
}

void JsonObject::write(std::ostream& os, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n" << pad << "  \"" << json_escape(fields_[i].key)
       << "\": " << fields_[i].json;
  }
  os << "\n" << pad << "}";
}

void JsonObject::write_line(std::ostream& os) const {
  os << "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << json_escape(fields_[i].key) << "\": " << fields_[i].json;
  }
  os << "}";
}

std::string JsonObject::to_line() const {
  std::ostringstream os;
  write_line(os);
  return os.str();
}

namespace {

/// Minimal scanner for the flat objects this library writes. Values are
/// strings, numbers, booleans or null — no nested containers.
class FlatScanner {
 public:
  explicit FlatScanner(std::string_view text) : text_(text) {}

  std::optional<JsonObject> parse() {
    skip_ws();
    if (!eat('{')) return std::nullopt;
    JsonObject object;
    skip_ws();
    if (eat('}')) return finish(object);
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      skip_ws();
      JsonObject::Field field;
      field.key = std::move(key);
      if (!parse_value(field)) return std::nullopt;
      object.set_raw(std::move(field));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return finish(object);
      return std::nullopt;
    }
  }

 private:
  std::optional<JsonObject> finish(JsonObject& object) {
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return std::move(object);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  /// Parse a JSON string literal at pos_, appending the *unescaped* text to
  /// `out`. \uXXXX escapes are only produced by this library for control
  /// bytes below 0x20, so code points above 0xff are rejected rather than
  /// UTF-8 encoded.
  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            const int digit = hex_value(text_[pos_ + static_cast<std::size_t>(i)]);
            if (digit < 0) return false;
            code = code * 16 + digit;
          }
          pos_ += 4;
          if (code > 0xff) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_value(JsonObject::Field& field) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '"') {
      std::string plain;
      if (!parse_string(plain)) return false;
      field.json = std::string(text_.substr(start, pos_ - start));
      field.plain = std::move(plain);
      return true;
    }
    // Bare token: number / true / false / null. Consume up to a
    // delimiter and validate the spelling loosely (numbers keep their
    // original token verbatim, which is what resume's byte-identity needs).
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ' ' && text_[pos_] != '\t' && text_[pos_] != '\n' &&
           text_[pos_] != '\r')
      ++pos_;
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty()) return false;
    if (token != "true" && token != "false" && token != "null") {
      double parsed = 0.0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), parsed);
      if (ec != std::errc{} || ptr != token.data() + token.size())
        return false;
    }
    field.json = token;
    field.plain = token;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonObject> parse_flat_json(std::string_view text) {
  return FlatScanner(text).parse();
}

std::string csv_escape(std::string_view text) {
  if (text.find_first_of(",\"\n\r") == std::string_view::npos)
    return std::string(text);
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void CsvWriter::write_header(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) os << ",";
    os << csv_escape(columns_[i]);
  }
  os << "\n";
}

void CsvWriter::write_row(std::ostream& os, const JsonObject& record) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) os << ",";
    if (const auto plain = record.find_plain(columns_[i]))
      os << csv_escape(*plain);
  }
  os << "\n";
}

void write_report(std::ostream& os, const JsonObject& meta,
                  const JsonObject& top, const std::vector<JsonObject>& rows) {
  os << "{\n  \"meta\": ";
  meta.write(os, 2);
  os << ",\n  \"top\": ";
  top.write(os, 2);
  os << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n    ";
    rows[i].write(os, 4);
  }
  os << (rows.empty() ? "]" : "\n  ]") << "\n}\n";
}

BenchReport::BenchReport(std::string name, std::string git_revision,
                         int threads)
    : name_(std::move(name)),
      git_(std::move(git_revision)),
      threads_(threads),
      start_ms_(steady_now_ms()) {}

std::string BenchReport::write_to(const std::string& path) {
  const double wall_ms = steady_now_ms() - start_ms_;

  JsonObject meta;
  meta.set("bench", name_)
      .set("git", git_)
      .set("threads", threads_)
      .set("wall_ms", wall_ms);

  std::ofstream os(path);
  if (!os) {
    std::cerr << "warning: cannot write " << path << "\n";
    return path;
  }
  write_report(os, meta, top_, rows_);
  std::cout << "bench json: " << path << "\n";
  return path;
}

std::string BenchReport::write() {
  std::string dir = ".";
  // rrb-lint: allow-next-line(no-nondeterminism-sources) — chooses where the
  // bench report lands on disk, not what it contains.
  if (const char* env = std::getenv("RRB_BENCH_JSON_DIR");
      env != nullptr && *env != '\0')
    dir = env;
  return write_to(dir + "/BENCH_" + name_ + ".json");
}

}  // namespace rrb::exp
