#include "rrb/exp/spec.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "rrb/exp/artifact.hpp"
#include "rrb/rng/rng.hpp"

namespace rrb::exp {

namespace {

constexpr std::array<GraphFamily, 7> kAllFamilies = {
    GraphFamily::kRegular,   GraphFamily::kConfigModel,
    GraphFamily::kGnp,       GraphFamily::kHypercube,
    GraphFamily::kComplete,  GraphFamily::kChunked,
    GraphFamily::kProductK5};

[[nodiscard]] std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
    text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r'))
    text.remove_suffix(1);
  return text;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

[[nodiscard]] std::vector<std::string_view> split_list(std::string_view text) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t comma = text.find(',');
    if (comma == std::string_view::npos) {
      out.push_back(trim(text));
      break;
    }
    out.push_back(trim(text.substr(0, comma)));
    text.remove_prefix(comma + 1);
  }
  return out;
}

/// Unsigned integer with 0x-hex and 2^k shorthand.
[[nodiscard]] std::uint64_t parse_u64(std::string_view text) {
  text = trim(text);
  if (text.empty()) fail("empty integer value");
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  } else if (text.size() > 2 && text.substr(0, 2) == "2^") {
    const std::uint64_t exponent = parse_u64(text.substr(2));
    if (exponent > 63) fail("2^" + std::string(text.substr(2)) + " overflows");
    return std::uint64_t{1} << exponent;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    fail("cannot parse integer '" + std::string(text) + "'");
  return value;
}

[[nodiscard]] double parse_double(std::string_view text) {
  text = trim(text);
  // std::from_chars: locale-independent, matching format_double's output.
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || ec != std::errc{} || ptr != text.data() + text.size())
    fail("cannot parse number '" + std::string(text) + "'");
  return value;
}

[[nodiscard]] bool parse_bool(std::string_view text) {
  text = trim(text);
  if (text == "true" || text == "1" || text == "yes" || text == "on")
    return true;
  if (text == "false" || text == "0" || text == "no" || text == "off")
    return false;
  fail("cannot parse boolean '" + std::string(text) + "'");
}

template <typename T, typename Parse>
[[nodiscard]] std::vector<T> parse_axis(std::string_view text,
                                        const Parse& parse) {
  std::vector<T> out;
  for (const std::string_view item : split_list(text)) out.push_back(parse(item));
  if (out.empty()) fail("axis needs at least one value");
  return out;
}

void append_axis_u32(std::string& out, const std::vector<NodeId>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
}

void append_axis_double(std::string& out, const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += format_double(values[i]);
  }
}

}  // namespace

const char* graph_family_name(GraphFamily family) {
  switch (family) {
    case GraphFamily::kRegular: return "regular";
    case GraphFamily::kConfigModel: return "config";
    case GraphFamily::kGnp: return "gnp";
    case GraphFamily::kHypercube: return "hypercube";
    case GraphFamily::kComplete: return "complete";
    case GraphFamily::kChunked: return "chunked";
    case GraphFamily::kProductK5: return "regular-x-k5";
  }
  fail("unknown GraphFamily value " +
       std::to_string(static_cast<int>(family)));
}

std::optional<GraphFamily> parse_graph_family(std::string_view name) {
  for (const GraphFamily family : kAllFamilies)
    if (name == graph_family_name(family)) return family;
  return std::nullopt;
}

std::string cell_key(const CampaignCell& cell, const CampaignSpec& spec) {
  std::string key;
  key += "scheme=";
  key += scheme_name(cell.scheme);
  key += ";qr=";
  key += cell.quasirandom ? "1" : "0";
  key += ";graph=";
  key += graph_family_name(cell.graph);
  key += ";n=" + std::to_string(cell.n);
  key += ";d=" + std::to_string(cell.d);
  key += ";alpha=" + format_double(cell.alpha);
  key += ";failure=" + format_double(cell.failure);
  key += ";churn=" + format_double(cell.churn);
  if (cell.overlay) {
    key += ";overlay=1";
    key += ";switches=" + std::to_string(spec.churn_switches);
    key += ";headroom=" + format_double(spec.churn_headroom);
  }
  if (cell.choices > 0) key += ";choices=" + std::to_string(cell.choices);
  if (cell.memory >= 0) key += ";memory=" + std::to_string(cell.memory);
  return key;
}

std::uint64_t cell_seed(std::uint64_t campaign_seed, std::string_view key) {
  return derive_seed(campaign_seed, hash_string(key));
}

namespace {

/// Families whose topology ignores the d axis derive an effective degree
/// from n; their cells are normalised to it so two spec'd d values cannot
/// silently duplicate the same experiment under different keys/seeds.
[[nodiscard]] bool family_ignores_d(GraphFamily family) {
  return family == GraphFamily::kHypercube ||
         family == GraphFamily::kComplete;
}

[[nodiscard]] NodeId ceil_log2(NodeId n) {
  NodeId dim = 0;
  while ((NodeId{1} << dim) < n) ++dim;
  return dim;
}

[[nodiscard]] NodeId derived_degree(GraphFamily family, NodeId n) {
  if (family == GraphFamily::kComplete) return n - 1;
  return ceil_log2(n);  // hypercube
}

[[nodiscard]] NodeId floor_isqrt(NodeId n) {
  NodeId r = 0;
  while ((static_cast<std::uint64_t>(r) + 1) * (r + 1) <= n) ++r;
  return r;
}

/// Canonical spec spelling of one degree-axis entry (describe() emits it,
/// apply_setting parses it back — byte round-trip).
[[nodiscard]] std::string degree_rule_spelling(const DegreeSpec& entry) {
  switch (entry.rule) {
    case DegreeRule::kLiteral: return std::to_string(entry.value);
    case DegreeRule::kLog2N: return "log2n";
    case DegreeRule::kTwoLog2N: return "2log2n";
    case DegreeRule::kSqrtN: return "sqrtn";
  }
  fail("unknown DegreeRule value");
}

[[nodiscard]] NodeId resolve_degree(const DegreeSpec& entry, NodeId n) {
  switch (entry.rule) {
    case DegreeRule::kLiteral: return entry.value;
    case DegreeRule::kLog2N: return ceil_log2(n);
    case DegreeRule::kTwoLog2N: return 2 * ceil_log2(n);
    case DegreeRule::kSqrtN: return floor_isqrt(n);
  }
  fail("unknown DegreeRule value");
}

/// The effective degree axis for one n: the resolved d_rules when present,
/// the literal d_values otherwise. Two rules resolving to the same d at
/// some n would duplicate a cell under one key — refused.
[[nodiscard]] std::vector<NodeId> effective_degrees(const CampaignSpec& spec,
                                                    NodeId n) {
  if (spec.d_rules.empty()) return spec.d_values;
  std::vector<NodeId> out;
  out.reserve(spec.d_rules.size());
  for (const DegreeSpec& entry : spec.d_rules) {
    const NodeId d = resolve_degree(entry, n);
    if (d < 1)
      fail("degree rule '" + degree_rule_spelling(entry) +
           "' resolves to d < 1 at n = " + std::to_string(n));
    for (const NodeId prev : out)
      if (prev == d)
        fail("degree rules resolve to duplicate d = " + std::to_string(d) +
             " at n = " + std::to_string(n) +
             " — the cells would collide under one key");
    out.push_back(d);
  }
  return out;
}

}  // namespace

std::vector<CampaignCell> expand_cells(const CampaignSpec& spec) {
  if (spec.trials < 1) fail("campaign needs trials >= 1");
  if (spec.schemes.empty() || spec.quasirandom.empty() ||
      spec.n_values.empty() || spec.d_values.empty() || spec.alphas.empty() ||
      spec.failures.empty() || spec.churn_rates.empty() ||
      spec.choices.empty() || spec.memory_values.empty())
    fail("campaign axes must be non-empty");
  if (family_ignores_d(spec.graph) && spec.d_values.size() > 1)
    fail(std::string(graph_family_name(spec.graph)) +
         " derives the degree from n — a d axis with multiple values "
         "would duplicate identical cells; give a single d");
  if (spec.derived_d && family_ignores_d(spec.graph))
    fail(std::string(graph_family_name(spec.graph)) +
         " already derives the degree from n — 'd = 2log2n' is redundant "
         "and would shadow the family's rule");
  if (spec.derived_d && spec.d_values.size() > 1)
    fail("'d = 2log2n' derives the degree from n — a d axis with multiple "
         "values would duplicate identical cells");
  if (!spec.d_rules.empty() && spec.derived_d)
    fail("rule-based d axis and 'd = 2log2n' cannot combine");
  if (!spec.d_rules.empty() && family_ignores_d(spec.graph))
    fail(std::string(graph_family_name(spec.graph)) +
         " derives the degree from n — a rule-based d axis would shadow "
         "the family's rule");
  if (spec.chunks < 0) fail("chunks must be >= 0");

  std::vector<CampaignCell> cells;
  for (const BroadcastScheme scheme : spec.schemes)
    for (const bool qr : spec.quasirandom)
      for (const NodeId n : spec.n_values)
        for (const NodeId d : effective_degrees(spec, n))
          for (const double alpha : spec.alphas)
            for (const double failure : spec.failures)
              for (const double churn : spec.churn_rates)
                for (const int choices : spec.choices)
                  for (const int memory : spec.memory_values) {
                    CampaignCell cell;
                    cell.index = cells.size();
                    cell.scheme = scheme;
                    cell.quasirandom = qr;
                    cell.graph = spec.graph;
                    cell.n = n;
                    cell.d = spec.derived_d ? 2 * ceil_log2(n) : d;
                    cell.alpha = alpha;
                    cell.failure = failure;
                    cell.churn = churn;
                    cell.choices = choices;
                    cell.memory = memory;
                    cell.overlay = spec.overlay || churn > 0.0;
                    if (cell.n < 2)
                      fail("cell n must be >= 2");
                    if (choices < 0 || choices > (1 << 10))
                      fail("choices out of range");
                    if (memory < -1 || memory > (1 << 20))
                      fail("memory out of range");
                    // Negated comparisons so NaN axis values fail validation
                    // instead of slipping through as a bogus grid point.
                    if (!std::isfinite(alpha)) fail("alpha must be finite");
                    if (!(churn >= 0.0) || !std::isfinite(churn))
                      fail("churn rate must be finite and >= 0");
                    if (!(failure >= 0.0 && failure <= 1.0))
                      fail("failure probability must be in [0, 1]");
                    // Mirrors the canonical channel pairing: the
                    // sequentialised scheme's memory window is mutually
                    // exclusive with quasirandom selection, so fail at
                    // expansion instead of mid-campaign at engine
                    // construction.
                    if (qr && scheme == BroadcastScheme::kSequentialised)
                      fail("quasirandom cannot combine with the "
                           "sequentialised scheme's memory window");
                    if (family_ignores_d(spec.graph))
                      cell.d = derived_degree(spec.graph, cell.n);
                    if (cell.overlay && spec.graph != GraphFamily::kRegular)
                      fail("overlay (churn) cells run on the dynamic overlay "
                           "and need graph = regular");
                    if (spec.graph == GraphFamily::kHypercube &&
                        (cell.n & (cell.n - 1)) != 0)
                      fail("hypercube cells need n to be a power of two");
                    if (spec.graph == GraphFamily::kChunked &&
                        (static_cast<std::uint64_t>(cell.n) * cell.d) % 2 != 0)
                      fail("chunked cells need n*d even (configuration "
                           "model pairs stubs)");
                    if (spec.graph == GraphFamily::kProductK5) {
                      if (cell.n % 5 != 0)
                        fail("regular-x-k5 cells need n divisible by 5");
                      if (cell.d < 5)
                        fail("regular-x-k5 cells need d >= 5 (K_5 "
                             "contributes degree 4)");
                      const NodeId base_n = cell.n / 5;
                      const NodeId base_d = cell.d - 4;
                      if (base_n < base_d + 1 ||
                          (static_cast<std::uint64_t>(base_n) * base_d) % 2 !=
                              0)
                        fail("regular-x-k5 base factor needs n/5 >= d-3 and "
                             "(n/5)*(d-4) even");
                    }
                    cell.key = cell_key(cell, spec);
                    cell.seed = cell_seed(spec.seed, cell.key);
                    cells.push_back(std::move(cell));
                  }
  return cells;
}

std::string describe(const CampaignSpec& spec) {
  std::string out;
  out += "name = " + spec.name + "\n";
  {
    std::ostringstream seed;
    seed << "0x" << std::hex << spec.seed;
    out += "seed = " + seed.str() + "\n";
  }
  out += "trials = " + std::to_string(spec.trials) + "\n";
  out += std::string("source = ") +
         (spec.random_source ? "random" : "fixed") + "\n";
  out += "max_rounds = " + std::to_string(spec.max_rounds) + "\n";
  out += std::string("graph = ") + graph_family_name(spec.graph) + "\n";
  out += "scheme = ";
  for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
    if (i != 0) out += ", ";
    out += scheme_name(spec.schemes[i]);
  }
  out += "\n";
  out += "quasirandom = ";
  for (std::size_t i = 0; i < spec.quasirandom.size(); ++i) {
    if (i != 0) out += ", ";
    out += spec.quasirandom[i] ? "true" : "false";
  }
  out += "\n";
  out += "n = ";
  append_axis_u32(out, spec.n_values);
  out += "\nd = ";
  if (spec.derived_d) {
    out += "2log2n";
  } else if (!spec.d_rules.empty()) {
    for (std::size_t i = 0; i < spec.d_rules.size(); ++i) {
      if (i != 0) out += ", ";
      out += degree_rule_spelling(spec.d_rules[i]);
    }
  } else {
    append_axis_u32(out, spec.d_values);
  }
  out += "\nalpha = ";
  append_axis_double(out, spec.alphas);
  out += "\nfailure = ";
  append_axis_double(out, spec.failures);
  out += "\nchurn = ";
  append_axis_double(out, spec.churn_rates);
  out += std::string("\noverlay = ") + (spec.overlay ? "true" : "false") +
         "\n";
  out += "churn_switches = " + std::to_string(spec.churn_switches) + "\n";
  out += "churn_headroom = " + format_double(spec.churn_headroom) + "\n";
  // Like metrics below: the choices axis is emitted only when it deviates
  // from the canonical {0}, so pre-existing specs keep their describe()
  // bytes and therefore their fingerprints.
  if (spec.choices.size() != 1 || spec.choices[0] != 0) {
    out += "choices = ";
    for (std::size_t i = 0; i < spec.choices.size(); ++i) {
      if (i != 0) out += ", ";
      out += std::to_string(spec.choices[i]);
    }
    out += "\n";
  }
  // Same emit-only-when-non-default rule as choices: a spec without a
  // memory axis keeps its describe() bytes and fingerprint.
  if (spec.memory_values.size() != 1 || spec.memory_values[0] != -1) {
    out += "memory = ";
    for (std::size_t i = 0; i < spec.memory_values.size(); ++i) {
      if (i != 0) out += ", ";
      // -1 spells "default" so the emitted line parses back.
      out += spec.memory_values[i] < 0
                 ? std::string("default")
                 : std::to_string(spec.memory_values[i]);
    }
    out += "\n";
  }
  // `chunks` is deliberately absent: execution batching is scheduling,
  // never semantics, so it must not move the fingerprint (a resume under
  // a different chunk count reuses every journal line).
  // Emitted only when non-empty so a metric-less spec's describe() (and
  // campaign.json echo) is byte-stable regardless of metrics support.
  if (!spec.metrics.empty()) {
    out += "metrics = ";
    for (std::size_t i = 0; i < spec.metrics.size(); ++i) {
      if (i != 0) out += ", ";
      out += metric_name(spec.metrics[i]);
    }
    out += "\n";
  }
  return out;
}

std::uint64_t spec_fingerprint(const CampaignSpec& spec) {
  // The record *schema* is part of the identity the fingerprint guards,
  // not just the grid: reusing a journal line means reusing its exact
  // columns, so a manifest written by a binary with a different column
  // set must be refused, or resume/merge would mix record schemas in one
  // results stream. Bump kRecordSchema whenever cell records gain, lose
  // or rename columns (v2: static records grew coverage_mean).
  constexpr std::string_view kRecordSchema = "record_schema = v2\n";
  return hash_string(describe(spec) + std::string(kRecordSchema));
}

void apply_setting(CampaignSpec& spec, std::string_view key,
                   std::string_view value) {
  key = trim(key);
  value = trim(value);
  if (key == "name") {
    if (value.empty()) fail("name must be non-empty");
    spec.name = std::string(value);
  } else if (key == "seed") {
    spec.seed = parse_u64(value);
  } else if (key == "trials") {
    const std::uint64_t trials = parse_u64(value);
    if (trials < 1 || trials > (1U << 20)) fail("trials out of range");
    spec.trials = static_cast<int>(trials);
  } else if (key == "source") {
    if (value == "random") spec.random_source = true;
    else if (value == "fixed") spec.random_source = false;
    else fail("source must be 'random' or 'fixed'");
  } else if (key == "max_rounds") {
    const std::uint64_t rounds = parse_u64(value);
    if (rounds < 1 || rounds > (1U << 30)) fail("max_rounds out of range");
    spec.max_rounds = static_cast<Round>(rounds);
  } else if (key == "graph") {
    const auto family = parse_graph_family(value);
    if (!family) fail("unknown graph family '" + std::string(value) + "'");
    spec.graph = *family;
  } else if (key == "scheme") {
    spec.schemes = parse_axis<BroadcastScheme>(value, [](std::string_view v) {
      const auto scheme = parse_scheme(v);
      if (!scheme) fail("unknown scheme '" + std::string(v) + "'");
      return *scheme;
    });
  } else if (key == "quasirandom") {
    spec.quasirandom = parse_axis<bool>(value, parse_bool);
  } else if (key == "n") {
    spec.n_values = parse_axis<NodeId>(value, [](std::string_view v) {
      const std::uint64_t n = parse_u64(v);
      if (n < 2 || n > (1ULL << 31)) fail("n out of range");
      return static_cast<NodeId>(n);
    });
  } else if (key == "d") {
    spec.derived_d = false;
    spec.d_rules.clear();
    bool has_rule = false;
    for (const std::string_view item : split_list(value))
      if (item == "log2n" || item == "2log2n" || item == "sqrtn")
        has_rule = true;
    if (value == "2log2n") {
      // Single bare "2log2n" keeps the legacy derived-d spelling (and its
      // describe()/fingerprint bytes) rather than becoming a 1-rule axis.
      spec.derived_d = true;
      spec.d_values = {1};  // placeholder; expand_cells derives per cell
    } else if (has_rule) {
      spec.d_rules = parse_axis<DegreeSpec>(value, [](std::string_view v) {
        DegreeSpec entry;
        if (v == "log2n") {
          entry.rule = DegreeRule::kLog2N;
        } else if (v == "2log2n") {
          entry.rule = DegreeRule::kTwoLog2N;
        } else if (v == "sqrtn") {
          entry.rule = DegreeRule::kSqrtN;
        } else {
          const std::uint64_t d = parse_u64(v);
          if (d < 1 || d > (1ULL << 20)) fail("d out of range");
          entry.rule = DegreeRule::kLiteral;
          entry.value = static_cast<NodeId>(d);
        }
        return entry;
      });
      spec.d_values = {1};  // placeholder; superseded by d_rules
    } else {
      spec.d_values = parse_axis<NodeId>(value, [](std::string_view v) {
        const std::uint64_t d = parse_u64(v);
        if (d < 1 || d > (1ULL << 20)) fail("d out of range");
        return static_cast<NodeId>(d);
      });
    }
  } else if (key == "alpha") {
    spec.alphas = parse_axis<double>(value, parse_double);
  } else if (key == "failure") {
    spec.failures = parse_axis<double>(value, parse_double);
  } else if (key == "churn") {
    spec.churn_rates = parse_axis<double>(value, parse_double);
  } else if (key == "choices") {
    spec.choices = parse_axis<int>(value, [](std::string_view v) {
      const std::uint64_t k = parse_u64(v);
      if (k > (1U << 10)) fail("choices out of range");
      return static_cast<int>(k);
    });
  } else if (key == "memory") {
    spec.memory_values = parse_axis<int>(value, [](std::string_view v) {
      if (v == "default" || v == "-1") return -1;
      const std::uint64_t m = parse_u64(v);
      if (m > (1U << 20)) fail("memory out of range");
      return static_cast<int>(m);
    });
  } else if (key == "chunks") {
    const std::uint64_t chunks = parse_u64(value);
    if (chunks > (1U << 20)) fail("chunks out of range");
    spec.chunks = static_cast<int>(chunks);
  } else if (key == "overlay") {
    spec.overlay = parse_bool(value);
  } else if (key == "churn_switches") {
    const std::uint64_t switches = parse_u64(value);
    if (switches > (1U << 20)) fail("churn_switches out of range");
    spec.churn_switches = static_cast<int>(switches);
  } else if (key == "churn_headroom") {
    const double headroom = parse_double(value);
    if (!(headroom >= 0.0) || !std::isfinite(headroom))
      fail("churn_headroom must be finite and >= 0");
    spec.churn_headroom = headroom;
  } else if (key == "metrics") {
    if (trim(value) == "none") {
      spec.metrics.clear();
    } else {
      spec.metrics = parse_axis<MetricKind>(value, [](std::string_view v) {
        const auto kind = parse_metric(v);
        if (!kind)
          fail("unknown metric '" + std::string(v) + "' (known: " +
               known_metric_names() + ")");
        return *kind;
      });
      // Duplicates would emit the same columns twice, breaking the CSV.
      for (std::size_t i = 0; i < spec.metrics.size(); ++i)
        for (std::size_t j = i + 1; j < spec.metrics.size(); ++j)
          if (spec.metrics[i] == spec.metrics[j])
            fail("duplicate metric '" +
                 std::string(metric_name(spec.metrics[i])) + "'");
    }
  } else {
    fail("unknown spec key '" + std::string(key) + "'");
  }
}

CampaignSpec parse_spec(std::istream& in) {
  CampaignSpec spec;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = line;
    const std::size_t hash = text.find('#');
    if (hash != std::string_view::npos) text = text.substr(0, hash);
    text = trim(text);
    if (text.empty()) continue;
    const std::size_t eq = text.find('=');
    if (eq == std::string_view::npos)
      fail("spec line " + std::to_string(line_number) +
           ": expected 'key = value'");
    try {
      apply_setting(spec, text.substr(0, eq), text.substr(eq + 1));
    } catch (const std::runtime_error& e) {
      fail("spec line " + std::to_string(line_number) + ": " + e.what());
    }
  }
  return spec;
}

CampaignSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open campaign spec " + path);
  try {
    return parse_spec(in);
  } catch (const std::runtime_error& e) {
    fail(path + ": " + e.what());
  }
}

}  // namespace rrb::exp
