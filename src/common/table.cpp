#include "rrb/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "rrb/common/check.hpp"

namespace rrb {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RRB_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_title(std::string title) { title_ = std::move(title); }

void Table::begin_row() { rows_.emplace_back(); }

void Table::add(std::string cell) {
  RRB_REQUIRE(!rows_.empty(), "begin_row() before add()");
  RRB_REQUIRE(rows_.back().size() < headers_.size(),
              "row has more cells than headers");
  rows_.back().push_back(std::move(cell));
}

void Table::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  add(os.str());
}

void Table::add(std::uint64_t value) { add(std::to_string(value)); }
void Table::add(std::int64_t value) { add(std::to_string(value)); }
void Table::add(int value) { add(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 2 * headers_.size();
  for (auto w : widths) total += w;
  os << "  " << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << escape(row[c]);
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace rrb
