#pragma once

/// \file runner_config.hpp
/// Scheduling knobs for the parallel trial runner (rrb/sim/runner.hpp).
///
/// The struct lives in common — below every other module — so that option
/// structs anywhere in the stack (TrialConfig, TraceConfig,
/// BroadcastOptions) can embed it without depending on sim, where the
/// worker pool itself is implemented.

namespace rrb {

/// How repeated trials are scheduled across worker threads.
///
/// Whatever values are chosen, results are bit-identical to the
/// sequential path: trial i's randomness depends only on (seed, i) — see
/// Rng::fork — and per-trial results are reduced in trial order. Threads
/// and chunking only change wall-clock time, never output.
struct RunnerConfig {
  /// Worker threads. 0 = automatic: $RRB_THREADS when set to a positive
  /// integer, otherwise one per hardware core. 1 = run inline on the
  /// calling thread (no pool is spawned).
  int threads = 0;

  /// Consecutive trials claimed per scheduling task. 0 = automatic
  /// (currently 1, i.e. fully dynamic load balancing). Larger chunks
  /// amortise scheduling overhead when trials are tiny.
  int chunk = 0;
};

}  // namespace rrb
