#pragma once

/// \file runner_config.hpp
/// Scheduling knobs for the parallel trial runner (rrb/sim/runner.hpp).
///
/// The struct lives in common — below every other module — so that option
/// structs anywhere in the stack (TrialConfig, TraceConfig,
/// BroadcastOptions) can embed it without depending on sim, where the
/// worker pool itself is implemented.

namespace rrb {

/// How repeated trials are scheduled across worker threads.
///
/// Whatever values are chosen, results are bit-identical to the
/// sequential path: trial i's randomness depends only on (seed, i) — see
/// Rng::fork — and per-trial results are reduced in trial order. Threads
/// and chunking only change wall-clock time, never output.
struct RunnerConfig {
  /// Worker threads. 0 = automatic: $RRB_THREADS when set to a positive
  /// integer, otherwise one per hardware core. 1 = run inline on the
  /// calling thread (no pool is spawned).
  int threads = 0;

  /// Consecutive trials claimed per scheduling task. 0 = automatic: a
  /// bounded default of ceil(trials / (4 · workers)), i.e. about four
  /// chunks per worker — enough slack for dynamic load balancing while
  /// keeping the number of chunk-indexed result slots O(threads) instead
  /// of O(trials) (a million-trial sweep must not allocate a million
  /// partial-reduction slots). Larger explicit chunks amortise scheduling
  /// overhead further when trials are tiny.
  int chunk = 0;

  /// Trials advanced in lockstep per BatchedPhoneCallEngine call on
  /// execution paths that support batching — fixed-topology trial sweeps
  /// (broadcast_trials and the fixed-graph run_trials overload). 0 =
  /// sequential engine, one run per trial. Batching is pure scheduling:
  /// each lane keeps its own Rng(seed).fork(i) stream and draw order, so
  /// any batch value produces bit-identical output (pinned by
  /// tests/test_batched_engine.cpp). Paths that rebuild the topology per
  /// trial (factory-based run_trials, churn campaigns) ignore it.
  int batch = 0;
};

}  // namespace rrb
