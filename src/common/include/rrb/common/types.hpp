#pragma once

#include <cstdint>

/// \file types.hpp
/// Fundamental value types shared by every rrbcast module.

namespace rrb {

/// Index of a vertex in a graph or overlay. 32 bits is enough for the
/// laptop-scale instances this library targets (n <= 2^31).
using NodeId = std::uint32_t;

/// A synchronous round of the phone call model. Rounds start at 1 to match
/// the paper's convention that the message is created at time step 0.
using Round = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Sentinel round for "never happened / not yet".
inline constexpr Round kNever = -1;

/// Count of events (transmissions, channels, ...).
using Count = std::uint64_t;

}  // namespace rrb
