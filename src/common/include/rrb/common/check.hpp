#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file check.hpp
/// Precondition / invariant checking macros.
///
/// Following the Core Guidelines (I.6, E.12), violated preconditions raise
/// exceptions carrying enough context to debug; they are always on, because
/// this library's correctness claims (exact transmission accounting) depend
/// on them even in release builds.

namespace rrb::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace rrb::detail

/// Check a caller-supplied precondition; throws std::logic_error on failure.
#define RRB_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rrb::detail::check_failed("Precondition", #cond, __FILE__,          \
                                  __LINE__, (msg));                         \
  } while (false)

/// Check an internal invariant; throws std::logic_error on failure.
#define RRB_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::rrb::detail::check_failed("Invariant", #cond, __FILE__, __LINE__,   \
                                  (msg));                                   \
  } while (false)
