#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Plain-text table rendering for benchmark harness output. Every bench
/// binary prints one or more of these tables, mirroring the rows the paper's
/// claims predict (see EXPERIMENTS.md).

namespace rrb {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible precision. Rendering right-aligns numeric-looking cells.
class Table {
 public:
  /// Construct with column headers.
  explicit Table(std::vector<std::string> headers);

  /// Title printed above the table (optional).
  void set_title(std::string title);

  /// Start a new row; subsequent add_* calls fill it left to right.
  void begin_row();

  /// Append a string cell to the current row.
  void add(std::string cell);

  /// Append a formatted double (fixed, `precision` decimals).
  void add(double value, int precision = 3);

  /// Append an integer cell.
  void add(std::uint64_t value);
  void add(std::int64_t value);
  void add(int value);

  /// Number of completed + in-progress rows.
  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned plain-text table.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header row + data rows).
  [[nodiscard]] std::string to_csv() const;

  /// Convenience: stream the plain-text rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rrb
