#pragma once

#include <cmath>
#include <cstdint>

#include "rrb/common/check.hpp"

/// \file math.hpp
/// Small numeric helpers used throughout the protocols and the analysis
/// layer. The protocol phase lengths in the paper are expressed in terms of
/// log n and log log n; these helpers pin down the exact conventions used
/// by every module (natural base for continuous fits, base-2 ceilings for
/// round counts).

namespace rrb {

/// Natural logarithm of n, clamped so that log_n(1) is well-defined (> 0).
[[nodiscard]] inline double log_n(std::uint64_t n) {
  RRB_REQUIRE(n >= 1, "log_n requires n >= 1");
  return std::log(static_cast<double>(n < 2 ? 2 : n));
}

/// log log n with the same clamping; always >= log log 4 > 0.
[[nodiscard]] inline double log_log_n(std::uint64_t n) {
  const double ln = log_n(n < 4 ? 4 : n);
  return std::log(ln);
}

/// Ceiling of log2(n) for n >= 1.
[[nodiscard]] inline int ceil_log2(std::uint64_t n) {
  RRB_REQUIRE(n >= 1, "ceil_log2 requires n >= 1");
  int k = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1U;
    ++k;
  }
  return k;
}

/// Floor of log2(n) for n >= 1.
[[nodiscard]] inline int floor_log2(std::uint64_t n) {
  RRB_REQUIRE(n >= 1, "floor_log2 requires n >= 1");
  int k = -1;
  while (n != 0) {
    n >>= 1U;
    ++k;
  }
  return k;
}

/// True iff n is a power of two (n >= 1).
[[nodiscard]] inline bool is_power_of_two(std::uint64_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Integer ceiling division.
[[nodiscard]] inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  RRB_REQUIRE(b != 0, "ceil_div by zero");
  return (a + b - 1) / b;
}

/// The Fountoulakis–Panagiotou constant C_d: the push protocol on a random
/// d-regular graph completes in (1 + o(1)) * C_d * ln n rounds, where
///   C_d = 1/ln(2(1 - 1/d)) - 1/(d ln(1 - 1/d)).
[[nodiscard]] inline double push_constant_cd(int d) {
  RRB_REQUIRE(d >= 3, "push_constant_cd requires d >= 3");
  const double dd = d;
  return 1.0 / std::log(2.0 * (1.0 - 1.0 / dd)) -
         1.0 / (dd * std::log(1.0 - 1.0 / dd));
}

}  // namespace rrb
