#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"

/// \file bigtopo.hpp
/// Chunked million-node topology generation with a compact CSR build.
///
/// Every generator in rrb/graph/generators.hpp materialises an intermediate
/// `std::vector<Edge>` (12+ bytes per edge plus builder overhead) before the
/// CSR is assembled, which caps experiments around n ≈ 10^5–10^6. This
/// module targets the n = 10^7–10^8 regime of the "density does not matter"
/// prediction (Fountoulakis–Huber–Panagiotou, arXiv:0904.4851) by emitting
/// adjacency entries straight into their final CSR slots: peak memory is
/// one CSR (8(n+1) bytes of offsets + 4 bytes per adjacency entry) plus
/// O(1) scratch.
///
/// Chunking contract
/// -----------------
/// The node range is partitioned into *canonical* chunks of kChunkNodes
/// nodes each — a fixed grid that is part of the output's identity, NOT a
/// tuning knob. Chunk `c`'s randomness derives as
///
///     Rng(chunk_seed(seed, c))     with  chunk_seed = derive_seed
///
/// — the same discipline as the trial contract (trial i runs on
/// Rng(seed).fork(i)), golden-pinned in tests/test_bigtopo.cpp. The
/// user-facing `ChunkedParams::chunks` only groups canonical chunks into
/// execution batches; like thread counts and shard splits everywhere else
/// in this repo, chunking is scheduling, never semantics: the produced
/// graph is byte-identical for every chunk count and every chunk execution
/// order (pinned in tests/test_bigtopo.cpp).
///
/// Two generators are provided:
///  - chunked_configuration_model: the paper's §1.2 pairing model, exact
///    d-regular multigraph semantics (self-loops and parallel edges kept).
///    A sequential per-chunk RNG stream cannot produce a *global* uniform
///    stub pairing without a global shuffle (which is exactly the O(n·d)
///    scratch this module exists to avoid), so the pairing is realised as a
///    seed-keyed pseudorandom permutation over stub indices
///    (StubPermutation): stub s is matched with the stub occupying the
///    adjacent position in the permuted order. Each adjacency slot is then
///    a pure function of (seed, slot) — trivially chunk-count- and
///    order-independent, with zero scratch.
///  - chunked_random_out: each node draws d out-partners from its canonical
///    chunk's Rng(chunk_seed(seed, c)) stream; the undirected union has
///    irregular degrees, so the CSR is assembled by the classical two-pass
///    build (count-degrees pass, then in-place bucket fill over the offset
///    array used as cursors) with no edge list and no cursor array.
///
/// Telemetry: both generators wrap their phases in rrb::telemetry spans
/// (category "bigtopo") and sample current/peak RSS into the span args.
/// Side channel only — the produced graph bytes never depend on telemetry
/// (ROADMAP telemetry invariant).

namespace rrb::bigtopo {

/// Canonical chunk width in nodes. Fixed: the chunk grid is part of the
/// generated graph's identity (chunk c covers nodes [c*kChunkNodes,
/// (c+1)*kChunkNodes) ∩ [0, n)), so outputs never depend on how many
/// execution batches the caller asked for.
inline constexpr NodeId kChunkNodes = NodeId{1} << 14;

/// Seed of canonical chunk `chunk_id` under `seed`: derive_seed(seed,
/// chunk_id) — the chunk-level twin of the trial contract. Golden-pinned
/// in tests/test_bigtopo.cpp; changing it invalidates every chunked graph.
[[nodiscard]] std::uint64_t chunk_seed(std::uint64_t seed,
                                       std::uint64_t chunk_id);

/// Number of canonical chunks covering [0, n): ceil(n / kChunkNodes).
[[nodiscard]] NodeId num_canonical_chunks(NodeId n);

/// Half-open node range of canonical chunk `chunk_id`.
struct ChunkRange {
  NodeId begin = 0;
  NodeId end = 0;
};
[[nodiscard]] ChunkRange canonical_chunk_range(NodeId n, NodeId chunk_id);

/// Seed-keyed pseudorandom permutation of [0, domain): a balanced Feistel
/// network over the enclosing power-of-two domain with cycle-walking back
/// into [0, domain). Stateless and O(1) per evaluation in both directions —
/// the primitive that lets the configuration-model pairing be computed
/// slot-by-slot instead of via a global shuffle. Deterministic and
/// platform-independent (pure 64-bit integer mixing).
class StubPermutation {
 public:
  /// domain must be >= 2.
  StubPermutation(std::uint64_t seed, std::uint64_t domain);

  [[nodiscard]] std::uint64_t domain() const { return domain_; }

  /// The image of x (x < domain()).
  [[nodiscard]] std::uint64_t forward(std::uint64_t x) const;

  /// The preimage of y (y < domain()): inverse(forward(x)) == x.
  [[nodiscard]] std::uint64_t inverse(std::uint64_t y) const;

 private:
  [[nodiscard]] std::uint64_t encrypt_once(std::uint64_t x) const;
  [[nodiscard]] std::uint64_t decrypt_once(std::uint64_t y) const;

  static constexpr int kRounds = 8;
  std::uint64_t domain_ = 0;
  int half_bits_ = 0;            ///< width of each Feistel half
  std::uint64_t half_mask_ = 0;  ///< (1 << half_bits_) - 1
  std::array<std::uint64_t, kRounds> keys_{};
};

/// Parameters of a chunked generation run. `n`, `d` and `seed` are the
/// output's identity; `chunks` and `memory_budget_bytes` are execution
/// policy and change no byte of the result.
struct ChunkedParams {
  NodeId n = 0;  ///< nodes
  NodeId d = 0;  ///< configuration-model degree / out-links per node
  std::uint64_t seed = 0;

  /// Execution batches the canonical chunks are grouped into; 0 = one batch
  /// per canonical chunk. Scheduling only — never semantics.
  int chunks = 0;

  /// Refuse (RRB_REQUIRE) to generate when the estimated peak exceeds this
  /// many bytes; 0 disables the check.
  std::uint64_t memory_budget_bytes = 0;
};

/// Estimated peak bytes of chunked_configuration_model(n, d): one CSR of
/// n·d adjacency entries. Guards 64-bit products (throws on NodeId-range
/// overflow).
[[nodiscard]] std::uint64_t estimate_configuration_model_bytes(NodeId n,
                                                               NodeId d);

/// Estimated peak bytes of chunked_random_out(n, d): one CSR of 2·n·d
/// adjacency entries.
[[nodiscard]] std::uint64_t estimate_random_out_bytes(NodeId n, NodeId d);

/// Random d-regular multigraph from the configuration model (§1.2 of the
/// paper): the n·d stubs are paired by a seed-keyed pseudorandom
/// permutation (adjacent positions in the permuted order are partners).
/// Exactly the multigraph semantics of configuration_model() — self-loops
/// and parallel edges kept, degree(v) == d for every v — with a different
/// (stateless) randomness source. Requires n >= 2, d >= 1, n·d even.
/// Output is a plain rrb::Graph: GraphTopology, with_scheme() and every
/// broadcast scheme run on it unchanged.
[[nodiscard]] Graph chunked_configuration_model(const ChunkedParams& params);

/// As above, processing the canonical chunks in the given execution order
/// (a permutation of [0, num_canonical_chunks(n))). Output is byte-
/// identical for every order — exposed so tests can pin that.
[[nodiscard]] Graph chunked_configuration_model(
    const ChunkedParams& params, std::span<const NodeId> chunk_order);

/// Random "d-out" overlay graph: every node draws d out-partners (uniform
/// over the other n-1 nodes; repeats allowed, self excluded) from its
/// canonical chunk's Rng(chunk_seed(seed, c)) stream, and the undirected
/// union of all out-links is returned (degree(v) = d + in-degree(v)).
/// This is the generator that genuinely exercises the two-pass CSR build:
/// degrees are irregular, so a count pass over the chunk streams sizes the
/// buckets and a replay pass fills them in place. Requires n >= 2, d >= 1,
/// d < n.
[[nodiscard]] Graph chunked_random_out(const ChunkedParams& params);

/// As above with an explicit canonical-chunk execution order; byte-
/// identical output for every order.
[[nodiscard]] Graph chunked_random_out(const ChunkedParams& params,
                                       std::span<const NodeId> chunk_order);

}  // namespace rrb::bigtopo
