#include "rrb/bigtopo/bigtopo.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/telemetry/telemetry.hpp"

namespace rrb::bigtopo {

namespace {

/// Node-id ceiling shared with the campaign spec parser (n <= 2^31,
/// types.hpp).
constexpr std::uint64_t kMaxNodes = std::uint64_t{1} << 31;

/// splitmix64 finalising mix — the diffusion step of the Feistel round
/// function. Matches the mixer inside derive_seed, so the permutation's
/// quality rests on the same primitive as the seeding contract.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// Stub count n·d as a guarded 64-bit product (the satellite overflow
/// rule: degree/offset arithmetic at large n always runs in 64 bits, with
/// explicit RRB_REQUIRE guards where a product could leave the supported
/// range).
[[nodiscard]] std::uint64_t stub_count(NodeId n, NodeId d) {
  RRB_REQUIRE(n >= 2, "bigtopo: n must be >= 2");
  RRB_REQUIRE(d >= 1, "bigtopo: d must be >= 1");
  RRB_REQUIRE(static_cast<std::uint64_t>(n) <= kMaxNodes,
              "bigtopo: n exceeds the NodeId range");
  const std::uint64_t stubs =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(d);
  RRB_REQUIRE(stubs / d == n, "bigtopo: n*d overflows 64 bits");
  return stubs;
}

/// One CSR: 8-byte offsets (n+1) plus 4-byte adjacency entries.
[[nodiscard]] std::uint64_t csr_bytes(NodeId n, std::uint64_t entries) {
  return (static_cast<std::uint64_t>(n) + 1) * sizeof(Count) +
         entries * sizeof(NodeId);
}

void enforce_budget(const ChunkedParams& params, std::uint64_t estimate,
                    const char* generator) {
  if (params.memory_budget_bytes == 0) return;
  RRB_REQUIRE(estimate <= params.memory_budget_bytes,
              std::string(generator) + ": estimated peak " +
                  std::to_string(estimate) + " bytes exceeds memory budget " +
                  std::to_string(params.memory_budget_bytes) + " bytes");
}

/// Identity execution order over the canonical chunks.
[[nodiscard]] std::vector<NodeId> identity_order(NodeId n) {
  std::vector<NodeId> order(num_canonical_chunks(n));
  for (NodeId c = 0; c < order.size(); ++c) order[c] = c;
  return order;
}

void validate_order(NodeId n, std::span<const NodeId> order) {
  const NodeId chunks = num_canonical_chunks(n);
  RRB_REQUIRE(order.size() == chunks,
              "bigtopo: chunk order must cover every canonical chunk");
  std::vector<bool> seen(chunks, false);
  for (const NodeId c : order) {
    RRB_REQUIRE(c < chunks, "bigtopo: chunk order index out of range");
    RRB_REQUIRE(!seen[c], "bigtopo: duplicate chunk in execution order");
    seen[c] = true;
  }
}

/// Execution batches: `chunks` groups of consecutive entries of `order`
/// (0 = one batch per canonical chunk). Pure scheduling — the per-chunk
/// work is identical whatever the grouping.
[[nodiscard]] std::size_t num_batches(std::size_t total, int chunks) {
  RRB_REQUIRE(chunks >= 0, "bigtopo: chunks must be >= 0");
  if (chunks == 0 || static_cast<std::size_t>(chunks) >= total) return total;
  return static_cast<std::size_t>(chunks);
}

/// RSS sample attached to a span's args — telemetry side channel only.
void sample_rss(telemetry::Span& span) {
  if (!span.active()) return;
  span.set_args(
      "{\"current_rss_bytes\":" +
      std::to_string(telemetry::current_rss_bytes()) +
      ",\"peak_rss_bytes\":" + std::to_string(telemetry::peak_rss_bytes()) +
      "}");
}

}  // namespace

std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t chunk_id) {
  return derive_seed(seed, chunk_id);
}

NodeId num_canonical_chunks(NodeId n) {
  return static_cast<NodeId>(
      (static_cast<std::uint64_t>(n) + kChunkNodes - 1) / kChunkNodes);
}

ChunkRange canonical_chunk_range(NodeId n, NodeId chunk_id) {
  RRB_REQUIRE(chunk_id < num_canonical_chunks(n),
              "canonical_chunk_range: chunk out of range");
  const std::uint64_t begin =
      static_cast<std::uint64_t>(chunk_id) * kChunkNodes;
  const std::uint64_t end =
      std::min<std::uint64_t>(begin + kChunkNodes, n);
  return ChunkRange{static_cast<NodeId>(begin), static_cast<NodeId>(end)};
}

StubPermutation::StubPermutation(std::uint64_t seed, std::uint64_t domain)
    : domain_(domain) {
  RRB_REQUIRE(domain >= 2, "StubPermutation: domain must be >= 2");
  // Enclosing power-of-two domain 2^(2*half_bits_): the Feistel network
  // permutes it exactly; cycle-walking projects back into [0, domain).
  int bits = 1;
  while (bits < 64 && (std::uint64_t{1} << bits) < domain) ++bits;
  half_bits_ = (bits + 1) / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  // Round keys from the named-sub-stream discipline, so two permutations
  // with different seeds (or one seed in different roles) never share a
  // key schedule.
  const std::uint64_t base =
      derive_seed(seed, hash_string("bigtopo/stub-permutation"));
  for (int r = 0; r < kRounds; ++r)
    keys_[static_cast<std::size_t>(r)] =
        derive_seed(base, static_cast<std::uint64_t>(r));
}

std::uint64_t StubPermutation::encrypt_once(std::uint64_t x) const {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint64_t f =
        mix64(right + keys_[static_cast<std::size_t>(r)]) & half_mask_;
    const std::uint64_t next_right = left ^ f;
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t StubPermutation::decrypt_once(std::uint64_t y) const {
  std::uint64_t left = y >> half_bits_;
  std::uint64_t right = y & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    const std::uint64_t f =
        mix64(left + keys_[static_cast<std::size_t>(r)]) & half_mask_;
    const std::uint64_t prev_left = right ^ f;
    right = left;
    left = prev_left;
  }
  return (left << half_bits_) | right;
}

std::uint64_t StubPermutation::forward(std::uint64_t x) const {
  RRB_REQUIRE(x < domain_, "StubPermutation::forward: out of domain");
  std::uint64_t y = encrypt_once(x);
  while (y >= domain_) y = encrypt_once(y);  // cycle-walk back into range
  return y;
}

std::uint64_t StubPermutation::inverse(std::uint64_t y) const {
  RRB_REQUIRE(y < domain_, "StubPermutation::inverse: out of domain");
  std::uint64_t x = decrypt_once(y);
  while (x >= domain_) x = decrypt_once(x);
  return x;
}

std::uint64_t estimate_configuration_model_bytes(NodeId n, NodeId d) {
  return csr_bytes(n, stub_count(n, d));
}

std::uint64_t estimate_random_out_bytes(NodeId n, NodeId d) {
  return csr_bytes(n, 2 * stub_count(n, d));
}

Graph chunked_configuration_model(const ChunkedParams& params) {
  const std::vector<NodeId> order = identity_order(params.n);
  return chunked_configuration_model(params, order);
}

Graph chunked_configuration_model(const ChunkedParams& params,
                                  std::span<const NodeId> chunk_order) {
  const NodeId n = params.n;
  const NodeId d = params.d;
  const std::uint64_t stubs = stub_count(n, d);
  RRB_REQUIRE(stubs % 2 == 0, "chunked_configuration_model: n*d must be even");
  validate_order(n, chunk_order);
  enforce_budget(params, estimate_configuration_model_bytes(n, d),
                 "chunked_configuration_model");

  telemetry::Span total_span("bigtopo", "config-model");

  // The pairing: stub s partners with the stub at the XOR-1 position of
  // the permuted order. Each adjacency slot is slot-addressed (stub s of
  // node v = offset v*d + j lands at CSR index v*d + j), so the fill below
  // is a pure function of (seed, slot) — chunk grouping and execution
  // order cannot change a byte.
  const StubPermutation perm(
      derive_seed(params.seed, hash_string("bigtopo/pairing")), stubs);

  std::vector<Count> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[v] + static_cast<Count>(d);
  std::vector<NodeId> adjacency(stubs);

  {
    telemetry::Span fill_span("bigtopo", "config-model/fill");
    const std::size_t batches = num_batches(chunk_order.size(), params.chunks);
    std::size_t next = 0;
    for (std::size_t b = 0; b < batches; ++b) {
      // Batch b takes its contiguous share of the execution order.
      const std::size_t end =
          ((b + 1) * chunk_order.size()) / batches;
      for (; next < end; ++next) {
        const ChunkRange range = canonical_chunk_range(n, chunk_order[next]);
        for (NodeId v = range.begin; v < range.end; ++v) {
          const std::uint64_t first = static_cast<std::uint64_t>(v) * d;
          for (NodeId j = 0; j < d; ++j) {
            const std::uint64_t partner =
                perm.inverse(perm.forward(first + j) ^ 1);
            adjacency[first + j] = static_cast<NodeId>(partner / d);
          }
        }
      }
    }
    sample_rss(fill_span);
  }

  {
    // Canonical per-node order: Graph guarantees sorted adjacency lists.
    telemetry::Span sort_span("bigtopo", "config-model/sort");
    for (NodeId v = 0; v < n; ++v)
      std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                adjacency.begin() +
                    static_cast<std::ptrdiff_t>(offsets[v + 1]));
    sample_rss(sort_span);
  }

  Graph graph = Graph::from_csr(std::move(offsets), std::move(adjacency));
  sample_rss(total_span);
  return graph;
}

Graph chunked_random_out(const ChunkedParams& params) {
  const std::vector<NodeId> order = identity_order(params.n);
  return chunked_random_out(params, order);
}

Graph chunked_random_out(const ChunkedParams& params,
                         std::span<const NodeId> chunk_order) {
  const NodeId n = params.n;
  const NodeId d = params.d;
  const std::uint64_t stubs = stub_count(n, d);
  RRB_REQUIRE(d < n, "chunked_random_out: need d < n");
  validate_order(n, chunk_order);
  enforce_budget(params, estimate_random_out_bytes(n, d),
                 "chunked_random_out");

  telemetry::Span total_span("bigtopo", "random-out");

  // One uniform partner in [0, n) \ {v}, drawn from the chunk stream. The
  // count pass and the fill pass replay the same stream, so both see the
  // same draws without ever storing an edge.
  const auto draw_partner = [n](Rng& rng, NodeId v) {
    auto t = static_cast<NodeId>(rng.uniform_u64(n - 1));
    return t >= v ? t + 1 : t;
  };

  // Pass 1 — count degrees into offsets[v+1]. Increments commute, so the
  // counts are independent of chunk execution order.
  std::vector<Count> offsets(static_cast<std::size_t>(n) + 1, 0);
  {
    telemetry::Span count_span("bigtopo", "random-out/count");
    for (const NodeId c : chunk_order) {
      const ChunkRange range = canonical_chunk_range(n, c);
      Rng rng(chunk_seed(params.seed, c));
      for (NodeId v = range.begin; v < range.end; ++v)
        for (NodeId j = 0; j < d; ++j) {
          const NodeId t = draw_partner(rng, v);
          ++offsets[static_cast<std::size_t>(v) + 1];
          ++offsets[static_cast<std::size_t>(t) + 1];
        }
    }
    for (NodeId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    RRB_ASSERT(offsets[n] == 2 * stubs, "random-out: stub conservation");
    sample_rss(count_span);
  }

  // Pass 2 — in-place bucket fill: offsets[v] doubles as v's write cursor
  // (no separate cursor array). After the pass offsets[v] has advanced to
  // the old offsets[v+1], so one right-shift restores the offset array.
  std::vector<NodeId> adjacency(2 * stubs);
  {
    telemetry::Span fill_span("bigtopo", "random-out/fill");
    for (const NodeId c : chunk_order) {
      const ChunkRange range = canonical_chunk_range(n, c);
      Rng rng(chunk_seed(params.seed, c));
      for (NodeId v = range.begin; v < range.end; ++v)
        for (NodeId j = 0; j < d; ++j) {
          const NodeId t = draw_partner(rng, v);
          adjacency[offsets[v]++] = t;
          adjacency[offsets[t]++] = v;
        }
    }
    for (NodeId v = n; v > 0; --v) offsets[v] = offsets[v - 1];
    offsets[0] = 0;
    sample_rss(fill_span);
  }

  {
    // Bucket order depends on the chunk execution order; sorting each
    // bucket canonicalises the bytes (and satisfies Graph's sorted-list
    // invariant), making the output order-independent.
    telemetry::Span sort_span("bigtopo", "random-out/sort");
    for (NodeId v = 0; v < n; ++v)
      std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                adjacency.begin() +
                    static_cast<std::ptrdiff_t>(offsets[v + 1]));
    sample_rss(sort_span);
  }

  Graph graph = Graph::from_csr(std::move(offsets), std::move(adjacency));
  sample_rss(total_span);
  return graph;
}

}  // namespace rrb::bigtopo
