#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <utility>

#include "rrb/common/types.hpp"

/// \file protocol.hpp
/// The address-oblivious protocol interface of the random phone call model.
///
/// A protocol decides, per informed node and per round, whether to transmit
/// over outgoing channels (push), incoming channels (pull), both, or stay
/// quiet. Address-obliviousness (§1.2) is enforced *structurally*: the
/// engine exposes no partner identities to any callback, only the node's
/// own local state (when it was informed, the current round, and whatever
/// per-node counters the protocol maintains from received message
/// metadata). The paper's "strictly oblivious" model — decisions depend
/// only on the time the node received the message — corresponds to
/// implementing action() as a pure function of (informed_at, t).
///
/// Dispatch comes in two layers:
///  - the ProtocolImpl *concept*: any class with the non-virtual interface
///    below. The engine's run() is a template over it, so concrete
///    protocols (PushProtocol, FourChoiceBroadcast, ...) are dispatched at
///    compile time and their per-node action() calls inline into the round
///    loop — the hot path pays no virtual calls;
///  - the BroadcastProtocol *virtual base* plus ProtocolAdapter<P>: the
///    type-erased layer for factories, containers and run-time protocol
///    selection (ProtocolFactory, SchemeParts). BroadcastProtocol itself
///    satisfies ProtocolImpl, so the same engine template serves both.

namespace rrb {

/// What an informed node does with its channels this round.
enum class Action : std::uint8_t {
  kNone = 0,      ///< open channels but stay silent
  kPush = 1,      ///< transmit over all outgoing channels
  kPull = 2,      ///< transmit over all incoming channels
  kPushPull = 3,  ///< both directions
};

[[nodiscard]] constexpr bool does_push(Action a) {
  return a == Action::kPush || a == Action::kPushPull;
}
[[nodiscard]] constexpr bool does_pull(Action a) {
  return a == Action::kPull || a == Action::kPushPull;
}

/// Metadata attached to each transmitted copy of the message. `hops` mirrors
/// the message age bookkeeping of Karp et al.; `counter` carries the
/// median-counter state of that termination mechanism. Both are visible to
/// the receiving node only — never the sender identity.
struct MessageMeta {
  std::int32_t hops = 0;
  std::int32_t counter = 0;
};

/// Local, address-oblivious view of one node.
struct NodeLocalState {
  Round informed_at = kNever;  ///< round the node first received M (0 = source)
  bool is_source = false;
};

/// The statically-dispatched protocol interface the engine's round loop is
/// templated over. Mandatory: action(), finished(), name(). Optional hooks
/// — reset(n), on_round_start(t), stamp(v, t), on_receive(v, meta, t,
/// first) — are detected per protocol with `requires` and cost nothing when
/// absent.
template <typename P>
concept ProtocolImpl =
    requires(P& p, const P& cp, NodeId v, const NodeLocalState& s, Round t,
             Count c) {
      { p.action(v, s, t) } -> std::same_as<Action>;
      { cp.finished(t, c, c) } -> std::convertible_to<bool>;
      { cp.name() } -> std::convertible_to<const char*>;
    };

/// Base class for broadcast protocols driven by PhoneCallEngine.
///
/// Lifecycle per run: reset(n) once, then for each round t = 1, 2, ...:
/// on_round_start(t); action(v, ...) for every informed alive node;
/// stamp(v, t) whenever v transmits; on_receive(w, ...) for every delivered
/// copy; finished(...) once at the end of the round.
class BroadcastProtocol {
 public:
  virtual ~BroadcastProtocol();

  BroadcastProtocol() = default;
  BroadcastProtocol(const BroadcastProtocol&) = delete;
  BroadcastProtocol& operator=(const BroadcastProtocol&) = delete;

  /// Prepare per-node state for a run over n node slots.
  virtual void reset(NodeId n);

  /// Called once at the beginning of each round.
  virtual void on_round_start(Round t);

  /// Decide what node v does this round. Called only for informed, alive
  /// nodes. Must not depend on anything but v's local state.
  [[nodiscard]] virtual Action action(NodeId v, const NodeLocalState& state,
                                      Round t) = 0;

  /// Metadata the sender attaches to each copy it transmits this round.
  [[nodiscard]] virtual MessageMeta stamp(NodeId v, Round t);

  /// Called for every copy delivered to node v (duplicates included).
  /// first_time is true for the first copy an uninformed node receives.
  virtual void on_receive(NodeId v, const MessageMeta& meta, Round t,
                          bool first_time);

  /// Whether the protocol's own termination condition has triggered. The
  /// engine stops after the first round for which this returns true.
  [[nodiscard]] virtual bool finished(Round t, Count informed,
                                      Count alive) const = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Thin virtual adapter: presents a statically-dispatched protocol P as a
/// BroadcastProtocol for type-erased users (factories, SchemeParts). The
/// cost is one virtual hop per callback — exactly what the engine's
/// templated run() avoids when handed the concrete P directly.
template <ProtocolImpl P>
class ProtocolAdapter final : public BroadcastProtocol {
 public:
  template <typename... Args>
    requires std::constructible_from<P, Args...>
  explicit ProtocolAdapter(Args&&... args)
      : inner_(std::forward<Args>(args)...) {}

  void reset(NodeId n) override {
    if constexpr (requires { inner_.reset(n); }) inner_.reset(n);
  }
  void on_round_start(Round t) override {
    if constexpr (requires { inner_.on_round_start(t); })
      inner_.on_round_start(t);
  }
  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state,
                              Round t) override {
    return inner_.action(v, state, t);
  }
  [[nodiscard]] MessageMeta stamp(NodeId v, Round t) override {
    if constexpr (requires { inner_.stamp(v, t); })
      return inner_.stamp(v, t);
    else
      return MessageMeta{};
  }
  void on_receive(NodeId v, const MessageMeta& meta, Round t,
                  bool first_time) override {
    if constexpr (requires { inner_.on_receive(v, meta, t, first_time); })
      inner_.on_receive(v, meta, t, first_time);
  }
  [[nodiscard]] bool finished(Round t, Count informed,
                              Count alive) const override {
    return inner_.finished(t, informed, alive);
  }
  [[nodiscard]] const char* name() const override { return inner_.name(); }

  [[nodiscard]] P& inner() { return inner_; }
  [[nodiscard]] const P& inner() const { return inner_; }

 private:
  P inner_;
};

/// Build an adapted protocol as a type-erased handle:
/// `make_protocol<PushProtocol>()`, `make_protocol<FourChoiceBroadcast>(cfg)`.
template <typename P, typename... Args>
[[nodiscard]] std::unique_ptr<BroadcastProtocol> make_protocol(
    Args&&... args) {
  return std::make_unique<ProtocolAdapter<P>>(std::forward<Args>(args)...);
}

}  // namespace rrb
