#pragma once

#include <cstdint>

#include "rrb/common/types.hpp"

/// \file protocol.hpp
/// The address-oblivious protocol interface of the random phone call model.
///
/// A protocol decides, per informed node and per round, whether to transmit
/// over outgoing channels (push), incoming channels (pull), both, or stay
/// quiet. Address-obliviousness (§1.2) is enforced *structurally*: the
/// engine exposes no partner identities to any callback, only the node's
/// own local state (when it was informed, the current round, and whatever
/// per-node counters the protocol maintains from received message
/// metadata). The paper's "strictly oblivious" model — decisions depend
/// only on the time the node received the message — corresponds to
/// implementing action() as a pure function of (informed_at, t).

namespace rrb {

/// What an informed node does with its channels this round.
enum class Action : std::uint8_t {
  kNone = 0,      ///< open channels but stay silent
  kPush = 1,      ///< transmit over all outgoing channels
  kPull = 2,      ///< transmit over all incoming channels
  kPushPull = 3,  ///< both directions
};

[[nodiscard]] constexpr bool does_push(Action a) {
  return a == Action::kPush || a == Action::kPushPull;
}
[[nodiscard]] constexpr bool does_pull(Action a) {
  return a == Action::kPull || a == Action::kPushPull;
}

/// Metadata attached to each transmitted copy of the message. `hops` mirrors
/// the message age bookkeeping of Karp et al.; `counter` carries the
/// median-counter state of that termination mechanism. Both are visible to
/// the receiving node only — never the sender identity.
struct MessageMeta {
  std::int32_t hops = 0;
  std::int32_t counter = 0;
};

/// Local, address-oblivious view of one node.
struct NodeLocalState {
  Round informed_at = kNever;  ///< round the node first received M (0 = source)
  bool is_source = false;
};

/// Base class for broadcast protocols driven by PhoneCallEngine.
///
/// Lifecycle per run: reset(n) once, then for each round t = 1, 2, ...:
/// on_round_start(t); action(v, ...) for every informed alive node;
/// stamp(v, t) whenever v transmits; on_receive(w, ...) for every delivered
/// copy; finished(...) once at the end of the round.
class BroadcastProtocol {
 public:
  virtual ~BroadcastProtocol();

  BroadcastProtocol() = default;
  BroadcastProtocol(const BroadcastProtocol&) = delete;
  BroadcastProtocol& operator=(const BroadcastProtocol&) = delete;

  /// Prepare per-node state for a run over n node slots.
  virtual void reset(NodeId n);

  /// Called once at the beginning of each round.
  virtual void on_round_start(Round t);

  /// Decide what node v does this round. Called only for informed, alive
  /// nodes. Must not depend on anything but v's local state.
  [[nodiscard]] virtual Action action(NodeId v, const NodeLocalState& state,
                                      Round t) = 0;

  /// Metadata the sender attaches to each copy it transmits this round.
  [[nodiscard]] virtual MessageMeta stamp(NodeId v, Round t);

  /// Called for every copy delivered to node v (duplicates included).
  /// first_time is true for the first copy an uninformed node receives.
  virtual void on_receive(NodeId v, const MessageMeta& meta, Round t,
                          bool first_time);

  /// Whether the protocol's own termination condition has triggered. The
  /// engine stops after the first round for which this returns true.
  [[nodiscard]] virtual bool finished(Round t, Count informed,
                                      Count alive) const = 0;

  /// Human-readable protocol name for reports.
  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace rrb
