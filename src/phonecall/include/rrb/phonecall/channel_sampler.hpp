#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/rng/rng.hpp"

/// \file channel_sampler.hpp
/// Per-node channel selection for the phone call engine: the uniform
/// `num_choices`-distinct-edges draw, the quasirandom cyclic neighbour walk
/// (Doerr–Friedrich–Sauerwald), and the memory ring of the sequentialised
/// model (§1.2 footnote 2). Extracted from the engine's round loop so the
/// sampling rules are unit-testable in isolation; the draw order is part of
/// the library's determinism contract (ROADMAP.md) and must never change.

namespace rrb {

/// How channels are established each round.
struct ChannelConfig {
  /// Distinct incident edges each node calls per round. 1 = classical
  /// random phone call model; 4 = the paper's modification.
  int num_choices = 1;

  /// If > 0, avoid partners called during the last `memory` rounds (the
  /// sequentialised model of §1.2 footnote 2 uses num_choices = 1,
  /// memory = 3). Best-effort: if a node's degree leaves no admissible
  /// partner, the constraint is relaxed for that call.
  int memory = 0;

  /// Probability that an opened channel fails (no communication in either
  /// direction). Models the paper's "limited communication failures".
  double failure_prob = 0.0;

  /// Quasirandom model (Doerr–Friedrich–Sauerwald): each node walks its
  /// neighbour list cyclically from a random start, calling the next
  /// num_choices entries per round, instead of sampling.
  bool quasirandom = false;
};

namespace detail {

/// Topology access used inside the round loop: prefer the unchecked CSR
/// fast path when the topology provides one. The engine validates its
/// inputs once at run start (every node id iterated is < num_slots(), every
/// edge index produced is < degree(v)), so the per-access bounds checks of
/// the checked accessors are redundant there.
template <typename TopologyT>
[[nodiscard]] inline NodeId topo_degree(const TopologyT& topo, NodeId v) {
  if constexpr (requires { topo.degree_unchecked(v); })
    return topo.degree_unchecked(v);
  else
    return topo.degree(v);
}

template <typename TopologyT>
[[nodiscard]] inline NodeId topo_neighbor(const TopologyT& topo, NodeId v,
                                          NodeId i) {
  if constexpr (requires { topo.neighbor_unchecked(v, i); })
    return topo.neighbor_unchecked(v, i);
  else
    return topo.neighbor(v, i);
}

}  // namespace detail

/// Chooses the neighbour *edge indices* a node calls each round, and keeps
/// the per-node state those rules need (quasirandom cursors, memory rings).
/// The engine owns one instance; tests drive it directly.
///
/// The config must already be validated (PhoneCallEngine's constructor
/// enforces the invariants); prepare() only sizes the buffers.
class ChannelSampler {
 public:
  /// Reset per-node state for a run over n node slots.
  void prepare(const ChannelConfig& config, NodeId n) {
    config_ = config;
    if (config_.memory > 0)
      memory_.assign(static_cast<std::size_t>(n) * config_.memory, kNoNode);
    if (config_.quasirandom) cursor_.assign(n, kNoNode);
  }

  /// Choose the partners node v calls this round; writes neighbour *edge
  /// indices* into `out` and returns how many were chosen
  /// (min(num_choices, degree)). Draw order is pinned by golden tests.
  template <typename TopologyT>
  std::size_t choose(const TopologyT& topo, Rng& rng, NodeId v,
                     std::span<NodeId> out) {
    const NodeId d = detail::topo_degree(topo, v);
    if (d == 0) return 0;
    const auto k = static_cast<std::size_t>(config_.num_choices);
    const std::size_t take = std::min<std::size_t>(k, d);

    if (config_.quasirandom) {
      // Walk the neighbour list cyclically from the node's cursor.
      if (cursor_[v] == kNoNode)
        cursor_[v] = static_cast<NodeId>(rng.uniform_u64(d));
      for (std::size_t i = 0; i < take; ++i)
        out[i] = static_cast<NodeId>((cursor_[v] + i) % d);
      cursor_[v] = static_cast<NodeId>((cursor_[v] + take) % d);
      return take;
    }

    if (config_.memory == 0 || d <= take) {
      return rng.sample_distinct_small(d, take, out);
    }

    // Memory constraint: rejection-sample distinct edge indices whose
    // endpoints were not called in the last `memory` rounds. Best effort —
    // after kMaxTries we accept whatever distinct indices we drew.
    constexpr int kMaxTries = 48;
    std::size_t filled = 0;
    int tries = 0;
    while (filled < take && tries < kMaxTries) {
      ++tries;
      const auto idx = static_cast<NodeId>(rng.uniform_u64(d));
      bool duplicate = false;
      for (std::size_t j = 0; j < filled; ++j)
        if (out[j] == idx) duplicate = true;
      if (duplicate) continue;
      if (recently_called(v, detail::topo_neighbor(topo, v, idx))) continue;
      out[filled++] = idx;
    }
    while (filled < take) {
      const auto idx = static_cast<NodeId>(rng.uniform_u64(d));
      bool duplicate = false;
      for (std::size_t j = 0; j < filled; ++j)
        if (out[j] == idx) duplicate = true;
      if (!duplicate) out[filled++] = idx;
    }
    return take;
  }

  /// Record v's partners for the memory constraint (no-op when memory = 0).
  void remember_partners(NodeId v, std::span<const NodeId> partners) {
    const auto m = static_cast<std::size_t>(config_.memory);
    if (m == 0) return;
    const std::size_t base = static_cast<std::size_t>(v) * m;
    // Shift the ring (memory is tiny — 3 in the paper's variant).
    for (std::size_t j = m; j-- > partners.size();)
      memory_[base + j] = memory_[base + j - partners.size()];
    for (std::size_t j = 0; j < std::min(partners.size(), m); ++j)
      memory_[base + j] = partners[j];
  }

  /// Whether v called `partner` within the last `memory` rounds.
  [[nodiscard]] bool recently_called(NodeId v, NodeId partner) const {
    const auto m = static_cast<std::size_t>(config_.memory);
    const std::size_t base = static_cast<std::size_t>(v) * m;
    for (std::size_t j = 0; j < m; ++j)
      if (memory_[base + j] == partner) return true;
    return false;
  }

  /// v's memory ring, most recent partner first (kNoNode = empty slot).
  [[nodiscard]] std::span<const NodeId> memory_ring(NodeId v) const {
    const auto m = static_cast<std::size_t>(config_.memory);
    return {memory_.data() + static_cast<std::size_t>(v) * m, m};
  }

  /// v's quasirandom cursor (kNoNode until the first choose() draws it).
  [[nodiscard]] NodeId cursor(NodeId v) const { return cursor_[v]; }

 private:
  ChannelConfig config_;

  // Memory rings: memory_[v * memory + j] = partner called `j+1` rounds ago
  // (unordered ring). kNoNode = empty.
  std::vector<NodeId> memory_;

  // Quasirandom list cursors.
  std::vector<NodeId> cursor_;
};

}  // namespace rrb
