#pragma once

#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"

/// \file edge_ids.hpp
/// Assignment of undirected edge identifiers to adjacency slots, used by
/// the engine's edge-usage tracker (Lemma 4 reproduces |U(t)|, the number
/// of nodes incident to at least one edge never yet used for a
/// transmission).

namespace rrb {

/// Maps every adjacency slot of `g` to an undirected edge id in
/// [0, g.num_edges()). Parallel edges get distinct ids; the two slots of a
/// self-loop share one id. slot index = offset(v) + i for neighbour i of v.
struct EdgeIdMap {
  std::vector<Count> slot_offsets;  ///< size n+1, mirrors CSR offsets
  std::vector<Count> slot_to_edge;  ///< size = total slots
  Count num_edges = 0;

  [[nodiscard]] Count edge_of(NodeId v, NodeId i) const {
    return slot_to_edge[slot_offsets[v] + i];
  }
};

/// Build the slot -> edge id map for a graph.
[[nodiscard]] EdgeIdMap build_edge_id_map(const Graph& g);

}  // namespace rrb
