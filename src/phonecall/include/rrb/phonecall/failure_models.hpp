#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/rng/rng.hpp"

/// \file failure_models.hpp
/// Structured communication-failure models beyond the engine's built-in
/// i.i.d. channel failure probability. The paper (§1) claims the algorithm
/// "efficiently handles limited communication failures"; Karp et al.
/// additionally analyse non-uniform connection behaviour. These canned
/// models plug into PhoneCallEngine::set_failure_model and compose with
/// ChannelConfig::failure_prob (a channel fails if either mechanism says
/// so).
///
/// The predicate sees the environment's view (round, caller, callee) — the
/// *protocol* remains address-oblivious; failures are part of the world,
/// not of the algorithm.

namespace rrb {

/// Returns true iff the channel (caller -> callee) fails in round t.
using FailurePredicate =
    std::function<bool(Round t, NodeId caller, NodeId callee)>;

/// A fixed set of crash-faulty nodes: every channel touching one fails
/// (the node neither initiates nor answers). Models fail-stop peers that
/// are still listed in their neighbours' tables.
[[nodiscard]] FailurePredicate faulty_nodes(std::vector<NodeId> faulty);

/// Periodic network-wide outages: all channels fail during `burst_len`
/// consecutive rounds out of every `period` (rounds 1-based; the burst
/// occupies the first burst_len rounds of each period).
[[nodiscard]] FailurePredicate bursty_outage(Round period, Round burst_len);

/// An adversarially chosen set of blocked node pairs (undirected): channels
/// between them always fail. Models persistent link faults / firewalls.
[[nodiscard]] FailurePredicate blocked_pairs(
    std::vector<std::pair<NodeId, NodeId>> pairs);

/// Per-channel i.i.d. failure driven by a dedicated Rng — equivalent to
/// ChannelConfig::failure_prob but owned by the caller (useful for
/// composing with the models above via any_of).
[[nodiscard]] FailurePredicate random_failures(double probability, Rng& rng);

/// Compose: fails if any constituent model fails.
[[nodiscard]] FailurePredicate any_of(std::vector<FailurePredicate> models);

}  // namespace rrb
