#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/common/types.hpp"
#include "rrb/phonecall/channel_sampler.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/telemetry/telemetry.hpp"

/// \file batched_engine.hpp
/// Trial-batched execution: advance B independent trials ("lanes") in
/// lockstep over ONE shared, immutable topology.
///
/// PhoneCallEngine walks the topology's CSR once per trial; a trial sweep
/// over a fixed graph therefore re-streams the same adjacency arrays from
/// memory once per trial and is latency-bound. BatchedPhoneCallEngine
/// restructures the sweep as structure-of-arrays lockstep: per round, one
/// sequential scan over the nodes serves every lane — the degree and
/// neighbour lookups for node v are fetched once and stay cache-hot across
/// all B lanes, and the per-lane round state (informed stamps, actions) is
/// laid out node-major so the lane loop for a node touches adjacent memory.
/// The scan prefetches like any linear walk, which is what makes large
/// trial counts memory-bandwidth-bound instead of latency-bound.
///
/// Determinism: batching is scheduling, never semantics. Lane i runs on its
/// own Rng — the caller derives it as Rng(seed).fork(i) per the seeding
/// contract — and the lockstep loop makes exactly the draws the sequential
/// engine makes, in the same per-lane order (rounds ascending, nodes
/// ascending within a round, channels in choice order within a node).
/// Because no lane ever observes another lane's stream, interleaving the
/// lanes is invisible: every RunResult and every observer is bit-identical
/// to a PhoneCallEngine run of the same trial (ROADMAP.md draw-order
/// invariant; pinned for all eight schemes by tests/test_batched_engine.cpp).
///
/// Scope: the topology must not change during a run — there is no round
/// hook and no churn path here (lanes advance through different logical
/// "times" of their own trials, so a shared mutating topology cannot be
/// meaningful). Structured failure models are likewise out of scope; the
/// i.i.d. ChannelConfig::failure_prob channel failures are supported and
/// drawn per lane exactly as the sequential engine draws them. Anything
/// needing hooks or failure models runs on PhoneCallEngine.
///
/// Protocols are passed as a span of per-lane instances of one static type
/// (the scheme dispatch hands every lane the same concrete protocol), and
/// observers as a span of per-lane observers; both hook vocabularies are
/// `requires`-detected exactly as in PhoneCallEngine::run(), so a bare
/// batched run compiles to the same inner-loop work as a bare sequential
/// run, just lane-interleaved.

namespace rrb {

namespace detail {

/// True when the protocol type implements none of the optional per-round /
/// per-delivery hooks (on_round_start, stamp, on_receive). Such protocols
/// interact with the engine only through action() and finished(), which is
/// what lets the lockstep kernel below keep per-lane state as bitmasks
/// instead of firing per-event callbacks. Mirrors the `requires` checks in
/// PhoneCallEngine::run — a hook the sequential engine would not call is
/// also one the kernel may skip.
template <typename P>
inline constexpr bool kLaneHookFreeProtocol =
    !requires(P& p, Round t) { p.on_round_start(t); } &&
    !requires(P& p, NodeId v, Round t) { p.stamp(v, t); } &&
    !requires(P& p, NodeId v, const MessageMeta& m, Round t) {
      p.on_receive(v, m, t, true);
    };

/// True when the protocol *declares* (via a `static constexpr bool
/// kActionIgnoresState = true;` member) that action(v, state, t) depends
/// only on the round number — never on the node id or its local state.
/// All four classical baselines qualify: push/pull/push&pull answer a
/// constant, fixed-horizon push answers a function of t. For such
/// protocols the lockstep kernel asks action() once per lane per round and
/// broadcasts the answer with two AND masks instead of walking every
/// (node, lane) pair — the declaration is a contract, and a protocol that
/// declares it untruthfully fails the batched-vs-sequential bit-identity
/// suite.
template <typename P>
inline constexpr bool kStateObliviousAction = requires {
  requires P::kActionIgnoresState;
};

/// True when the observer type implements none of the observer hooks the
/// engines fire (the bare NoMetrics observer, notably). With nothing to
/// notify, the lockstep kernel never needs to materialise a per-lane
/// node-order view of the informed stamps.
template <typename O>
inline constexpr bool kLaneHookFreeObserver =
    !requires(O& o, NodeId n, std::span<const NodeId> s) {
      o.on_run_begin(n, s);
    } && !requires(O& o, Round t) { o.on_round_begin(t); } &&
    !requires(O& o, const TransmissionEvent& e) { o.on_transmission(e); } &&
    !requires(O& o, NodeId v, Round t) { o.on_node_informed(v, t); } &&
    !requires(O& o, const RoundStats& r, std::span<const Round> ia) {
      o.on_round_end(r, ia);
    } && !requires(O& o, const RunResult& r, std::span<const Round> ia) {
      o.on_run_end(r, ia);
    };

}  // namespace detail

template <Topology TopologyT>
class BatchedPhoneCallEngine {
 public:
  /// The topology is shared by every lane and must stay immutable for the
  /// lifetime of each run(). The config applies to all lanes (a batch is a
  /// sweep of one experiment cell, which fixes the channel model).
  BatchedPhoneCallEngine(const TopologyT& topo, ChannelConfig config)
      : topo_(&topo), config_(config) {
    RRB_REQUIRE(config_.num_choices >= 1, "need at least one choice");
    RRB_REQUIRE(config_.num_choices <= 64, "choices capped at 64");
    RRB_REQUIRE(config_.memory >= 0, "memory must be >= 0");
    RRB_REQUIRE(config_.failure_prob >= 0.0 && config_.failure_prob <= 1.0,
                "failure_prob out of [0,1]");
    RRB_REQUIRE(!(config_.quasirandom && config_.memory > 0),
                "quasirandom and memory are mutually exclusive");
  }

  /// Run lane b = 0..B-1 from sources[b] with *protocols[b] on rngs[b],
  /// all lanes in lockstep, until every lane has terminated (per-lane
  /// protocol termination / oracle completion) or limits.max_rounds
  /// elapse. Returns the per-lane RunResults in lane order.
  template <ProtocolImpl ProtocolT>
  std::vector<RunResult> run(std::span<ProtocolT* const> protocols,
                             std::span<const NodeId> sources,
                             std::span<Rng> rngs, const RunLimits& limits) {
    std::vector<detail::NoMetrics> none(protocols.size());
    return run(protocols, sources, rngs, limits,
               std::span<detail::NoMetrics>(none));
  }

  /// Instrumented lanes: observers[b] receives lane b's hooks with the
  /// exact arguments the sequential engine would fire for that trial.
  template <ProtocolImpl ProtocolT, typename ObserverT>
  std::vector<RunResult> run(std::span<ProtocolT* const> protocols,
                             std::span<const NodeId> sources,
                             std::span<Rng> rngs, const RunLimits& limits,
                             std::span<ObserverT> observers);

 private:
  /// Per-node lane masks, bit b = lane b. The pull/informed pair is what a
  /// partner lookup reads (and the informed bit is what a delivery writes):
  /// packed as one 16-byte, 16-byte-aligned pair it can never straddle a
  /// cache line, so the per-channel cost of "is w pulling / is w already
  /// informed in lane b" is a single line fetch for *all* lanes — the
  /// sequential engine pays two scattered loads per channel per trial for
  /// the same questions. The push word lives in its own densely-streamed
  /// array (push_words_): the delivery sweep reads it for every node, not
  /// just call targets.
  struct alignas(16) PullInformed {
    std::uint64_t pull = 0;
    std::uint64_t informed = 0;
  };
  static_assert(sizeof(PullInformed) == 16);

  /// The lockstep fast path: hook-free protocol/observer lanes, uniform
  /// sampling (no quasirandom cursors, no memory rings), <= 64 lanes, and a
  /// fully-alive topology. Draw-for-draw identical to the general path —
  /// the per-node sample loop is ChannelSampler::choose's
  /// sample_distinct_small branch inlined verbatim (any drift breaks the
  /// batched-vs-sequential bit-identity suite) — it only replaces per-lane
  /// control flow with the PullInformed/push-word bit algebra above.
  template <ProtocolImpl ProtocolT>
  std::vector<RunResult> run_lockstep_uniform(
      std::span<ProtocolT* const> protocols, std::span<const NodeId> sources,
      std::span<Rng> rngs, const RunLimits& limits);

  /// The classical-scheme kernel: state-oblivious protocols (push / pull /
  /// push&pull / fixed-horizon) with one reliable call per round. Lane
  /// state is a transposed bitmap — lane b's informed set is W = ceil(n/64)
  /// words, bit v = node v — so the per-delivery "is the partner informed"
  /// test and update touch a 2KB L1-resident strip instead of a node-major
  /// array scaled by the batch width, a push-only round walks exactly the
  /// informed nodes by word-skipping, and there is no per-node action scan
  /// at all (one action() call per lane fixes the round). Draw-for-draw
  /// identical to the sequential engine, like run_lockstep_uniform.
  template <ProtocolImpl ProtocolT>
  std::vector<RunResult> run_lockstep_classic(
      std::span<ProtocolT* const> protocols, std::span<const NodeId> sources,
      std::span<Rng> rngs, const RunLimits& limits);

  /// Lane b's informed stamps gathered into node order (the layout the
  /// observer span contract promises). Only materialised when an observer
  /// actually implements on_round_end/on_run_end.
  void gather_lane(std::size_t lanes, std::size_t b, NodeId n) {
    lane_view_.resize(n);
    for (NodeId v = 0; v < n; ++v)
      lane_view_[v] = stamp_[static_cast<std::size_t>(v) * lanes + b];
  }

  const TopologyT* topo_;
  ChannelConfig config_;

  // SoA round state, node-major: stamp_[v * B + b] is lane b's informed
  // round for node v (kNever = uninformed), likewise action_. Node-major
  // keeps the lane loop for one node on adjacent memory and lets the random
  // partner access (index w) land every lane's entry on the same cache
  // line(s).
  std::vector<Round> stamp_;
  std::vector<Action> action_;

  std::vector<std::uint64_t> push_words_;  // lockstep kernel only
  std::vector<PullInformed> pi_;           // lockstep kernel only

  // Classic kernel only: concatenated per-lane informed bitmaps
  // (live_bits_[b * W + v/64] bit v%64) and the round-start snapshot of the
  // lane currently being advanced.
  std::vector<std::uint64_t> live_bits_;
  std::vector<std::uint64_t> start_bits_;

  std::vector<ChannelSampler> samplers_;  // per lane (cursors, memory rings)
  std::vector<Count> informed_alive_;     // per lane, incremental
  std::vector<Count> informed_;           // per lane, total ever informed
  std::vector<Count> newly_count_;        // per lane, reset each round
  std::vector<std::size_t> active_;       // lanes still running, ascending

  // Scratch reused across rounds/lanes (same shape as the sequential
  // engine's flat buffers).
  std::vector<NodeId> choice_buf_;
  std::vector<NodeId> partner_buf_;
  std::vector<Round> lane_view_;
};

template <Topology TopologyT>
template <ProtocolImpl ProtocolT, typename ObserverT>
std::vector<RunResult> BatchedPhoneCallEngine<TopologyT>::run(
    std::span<ProtocolT* const> protocols, std::span<const NodeId> sources,
    std::span<Rng> rngs, const RunLimits& limits,
    std::span<ObserverT> observers) {
  const NodeId n = topo_->num_slots();
  const std::size_t lanes = protocols.size();
  RRB_REQUIRE(n >= 1, "empty topology");
  RRB_REQUIRE(lanes >= 1, "need at least one lane");
  RRB_REQUIRE(sources.size() == lanes && rngs.size() == lanes &&
                  observers.size() == lanes,
              "per-lane spans must all have one entry per lane");

  // Hook-free lanes over a fully-alive topology with the plain uniform
  // sampler run on the lockstep kernel (same draws, bitmask state). The
  // conditions are exactly the features the kernel does not model: hooks,
  // quasirandom cursors, memory rings, dead nodes, and more lanes than a
  // mask word holds.
  if constexpr (detail::kLaneHookFreeProtocol<ProtocolT> &&
                detail::kLaneHookFreeObserver<ObserverT>) {
    if (!config_.quasirandom && config_.memory == 0 && lanes <= 64 &&
        topo_->num_alive() == n)
      return run_lockstep_uniform(protocols, sources, rngs, limits);
  }

  // Kernel-ladder telemetry: one span per kernel body (general / bitmask /
  // classic), so a trace shows which rung actually ran and how many lanes
  // were active. Wall-clock only — never affects draws or outputs.
  telemetry::Span kernel_span("batched", "batched:general");
  if (kernel_span.active())
    kernel_span.set_args("{\"lanes\":" + std::to_string(lanes) +
                         ",\"n\":" + std::to_string(n) + "}");

  stamp_.assign(static_cast<std::size_t>(n) * lanes, kNever);
  action_.assign(static_cast<std::size_t>(n) * lanes, Action::kNone);
  samplers_.assign(lanes, ChannelSampler{});
  informed_.assign(lanes, 0);
  informed_alive_.assign(lanes, 0);
  newly_count_.assign(lanes, 0);
  active_.resize(lanes);

  std::vector<RunResult> results(lanes);
  std::vector<RoundStats> round_stats(lanes);

  for (std::size_t b = 0; b < lanes; ++b) {
    active_[b] = b;
    samplers_[b].prepare(config_, n);
    RRB_REQUIRE(protocols[b] != nullptr, "null protocol lane");
    ProtocolT& proto = *protocols[b];
    if constexpr (requires { proto.reset(n); }) proto.reset(n);
    const NodeId s = sources[b];
    RRB_REQUIRE(s < n, "source out of range");
    RRB_REQUIRE(topo_->is_alive(s), "source must be alive");
    stamp_[static_cast<std::size_t>(s) * lanes + b] = 0;
    informed_[b] = 1;
    informed_alive_[b] = 1;
    results[b].n = n;
    if constexpr (requires { observers[b].on_run_begin(n, sources); })
      observers[b].on_run_begin(n, sources.subspan(b, 1));
  }

  choice_buf_.assign(static_cast<std::size_t>(config_.num_choices), 0);
  partner_buf_.assign(static_cast<std::size_t>(config_.num_choices), 0);
  const std::span<NodeId> edge_choice(choice_buf_);
  const std::span<NodeId> partners(partner_buf_);

  const bool has_failure_prob = config_.failure_prob > 0.0;
  const bool has_memory = config_.memory > 0;

  // Populated on deactivation; alive_at_end etc. are loop-invariant on an
  // immutable topology, so "when the lane stopped" and "when run() returns"
  // see the same values the sequential engine records.
  const auto finalize = [&](std::size_t b, Round rounds) {
    RunResult& result = results[b];
    result.rounds = rounds;
    result.alive_at_end = topo_->num_alive();
    Count final_informed = 0;
    for (NodeId v = 0; v < n; ++v)
      if (topo_->is_alive(v) &&
          stamp_[static_cast<std::size_t>(v) * lanes + b] != kNever)
        ++final_informed;
    result.final_informed = final_informed;
    result.all_informed =
        result.alive_at_end > 0 && final_informed >= result.alive_at_end;
    if constexpr (requires(std::span<const Round> ia) {
                    observers[b].on_run_end(results[b], ia);
                  }) {
      gather_lane(lanes, b, n);
      observers[b].on_run_end(
          result, std::span<const Round>(lane_view_.data(), n));
    }
  };

  Round t = 0;
  while (!active_.empty() && t < limits.max_rounds) {
    ++t;
    for (const std::size_t b : active_) {
      ProtocolT& proto = *protocols[b];
      if constexpr (requires { proto.on_round_start(t); })
        proto.on_round_start(t);
      if constexpr (requires { observers[b].on_round_begin(t); })
        observers[b].on_round_begin(t);
      round_stats[b] = RoundStats{};
      round_stats[b].t = t;
      newly_count_[b] = 0;
    }

    // Phase A: per-lane actions for nodes informed before this round. One
    // node scan serves every lane; the stamp/action entries for node v sit
    // on the same cache line(s) across lanes.
    for (NodeId v = 0; v < n; ++v) {
      const bool alive = topo_->is_alive(v);
      const std::size_t base = static_cast<std::size_t>(v) * lanes;
      for (const std::size_t b : active_) {
        const Round at = stamp_[base + b];
        if (!alive || at == kNever) {
          action_[base + b] = Action::kNone;
          continue;
        }
        NodeLocalState state;
        state.informed_at = at;
        state.is_source = at == 0;
        action_[base + b] = protocols[b]->action(v, state, t);
        if (action_[base + b] != Action::kNone)
          ++round_stats[b].transmitting_nodes;
      }
    }

    // Phase B: every alive node opens channels, once per lane, drawing from
    // that lane's Rng only — per lane this is exactly the sequential
    // engine's draw sequence for the node.
    for (NodeId v = 0; v < n; ++v) {
      if (!topo_->is_alive(v)) continue;
      const std::size_t vbase = static_cast<std::size_t>(v) * lanes;
      for (const std::size_t b : active_) {
        Rng& rng = rngs[b];
        RoundStats& round = round_stats[b];
        const std::size_t k =
            samplers_[b].choose(*topo_, rng, v, edge_choice);
        for (std::size_t i = 0; i < k; ++i) {
          const NodeId edge_idx = edge_choice[i];
          const NodeId w = detail::topo_neighbor(*topo_, v, edge_idx);
          // Recorded before the failure check — failed channels enter the
          // memory ring, matching PhoneCallEngine (see the note there).
          partners[i] = w;
          ++round.channels_opened;
          if (has_failure_prob && rng.bernoulli(config_.failure_prob)) {
            ++round.channels_failed;
            continue;
          }
          if (!topo_->is_alive(w)) {
            ++round.channels_failed;  // stale link
            continue;
          }
          const bool push_here = does_push(action_[vbase + b]);
          const bool pull_here =
              does_pull(action_[static_cast<std::size_t>(w) * lanes + b]);
          if (!push_here && !pull_here) continue;

          auto deliver = [&](NodeId to, NodeId from, bool is_push) {
            ProtocolT& proto = *protocols[b];
            MessageMeta meta;
            if constexpr (requires { proto.stamp(from, t); })
              meta = proto.stamp(from, t);
            if (is_push)
              ++round.push_tx;
            else
              ++round.pull_tx;
            const std::size_t slot =
                static_cast<std::size_t>(to) * lanes + b;
            const bool first = stamp_[slot] == kNever;
            if constexpr (requires { proto.on_receive(to, meta, t, first); })
              proto.on_receive(to, meta, t, first);
            if (first) {
              stamp_[slot] = t;
              ++informed_alive_[b];
              ++newly_count_[b];
            }
            if constexpr (requires(const TransmissionEvent& event) {
                            observers[b].on_transmission(event);
                          })
              observers[b].on_transmission(TransmissionEvent{
                  .t = t,
                  .caller = v,
                  .edge_index = edge_idx,
                  .from = from,
                  .to = to,
                  .is_push = is_push,
                  .first_time = first,
              });
            if (first)
              if constexpr (requires {
                              observers[b].on_node_informed(to, t);
                            })
                observers[b].on_node_informed(to, t);
          };
          if (push_here) deliver(w, v, /*is_push=*/true);
          if (pull_here) deliver(v, w, /*is_push=*/false);
        }
        if (has_memory)
          samplers_[b].remember_partners(
              v, std::span<const NodeId>(partners.data(), k));
      }
    }

    // Round end: per-lane bookkeeping and termination, compacting the
    // active list in place (ascending lane order is preserved).
    std::size_t keep = 0;
    for (std::size_t bi = 0; bi < active_.size(); ++bi) {
      const std::size_t b = active_[bi];
      RoundStats& round = round_stats[b];
      RunResult& result = results[b];
      informed_[b] += newly_count_[b];
      round.newly_informed = newly_count_[b];
      round.informed = informed_[b];
      result.push_tx += round.push_tx;
      result.pull_tx += round.pull_tx;
      result.channels_opened += round.channels_opened;
      result.channels_failed += round.channels_failed;
      if (limits.record_rounds) result.per_round.push_back(round);

      if constexpr (requires(std::span<const Round> ia) {
                      observers[b].on_round_end(round, ia);
                    }) {
        gather_lane(lanes, b, n);
        observers[b].on_round_end(
            round, std::span<const Round>(lane_view_.data(), n));
      }

      const Count alive = topo_->num_alive();
      const Count informed_alive = informed_alive_[b];
      if (result.completion_round == kNever && alive > 0 &&
          informed_alive >= alive)
        result.completion_round = t;

      const bool proto_done = protocols[b]->finished(t, informed_alive, alive);
      const bool oracle_done =
          limits.stop_when_all_informed && informed_alive >= alive;
      if (proto_done || oracle_done)
        finalize(b, t);
      else
        active_[keep++] = b;
    }
    active_.resize(keep);
  }

  // Lanes still running when max_rounds elapsed stop exactly like the
  // sequential engine: rounds = max_rounds, completion wherever it got.
  for (const std::size_t b : active_) finalize(b, t);
  active_.clear();

  return results;
}

template <Topology TopologyT>
template <ProtocolImpl ProtocolT>
std::vector<RunResult> BatchedPhoneCallEngine<TopologyT>::run_lockstep_uniform(
    std::span<ProtocolT* const> protocols, std::span<const NodeId> sources,
    std::span<Rng> rngs, const RunLimits& limits) {
  if constexpr (detail::kStateObliviousAction<ProtocolT>) {
    if (config_.num_choices == 1 && !(config_.failure_prob > 0.0))
      return run_lockstep_classic(protocols, sources, rngs, limits);
  }

  const NodeId n = topo_->num_slots();
  const std::size_t lanes = protocols.size();

  telemetry::Span kernel_span("batched", "batched:bitmask");
  if (kernel_span.active())
    kernel_span.set_args("{\"lanes\":" + std::to_string(lanes) +
                         ",\"n\":" + std::to_string(n) + "}");

  // With a state-oblivious protocol (and the kernel's hook-free observers)
  // nothing ever reads a per-(node, lane) informed stamp: Phase A never
  // consults node state and there is no observer view to gather. Eliding
  // the stamps drops the kernel's one superlinear array — n*lanes rounds
  // (megabytes at B=64, past L2) that would otherwise be cleared per batch
  // and take a scattered far write on every first delivery.
  constexpr bool kKeepStamps = !detail::kStateObliviousAction<ProtocolT>;
  if constexpr (kKeepStamps)
    stamp_.assign(static_cast<std::size_t>(n) * lanes, kNever);
  push_words_.assign(n, 0);
  pi_.assign(n, PullInformed{});
  informed_.assign(lanes, 0);
  informed_alive_.assign(lanes, 0);
  newly_count_.assign(lanes, 0);

  std::vector<RunResult> results(lanes);
  std::vector<RoundStats> round_stats(lanes);

  // Lanes still running, as a bitmask (eligibility capped lanes at 64).
  std::uint64_t live =
      lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;

  for (std::size_t b = 0; b < lanes; ++b) {
    RRB_REQUIRE(protocols[b] != nullptr, "null protocol lane");
    ProtocolT& proto = *protocols[b];
    if constexpr (requires { proto.reset(n); }) proto.reset(n);
    const NodeId s = sources[b];
    RRB_REQUIRE(s < n, "source out of range");
    RRB_REQUIRE(topo_->is_alive(s), "source must be alive");
    if constexpr (kKeepStamps)
      stamp_[static_cast<std::size_t>(s) * lanes + b] = 0;
    pi_[s].informed |= std::uint64_t{1} << b;
    informed_[b] = 1;
    informed_alive_[b] = 1;
    results[b].n = n;
  }

  const auto k = static_cast<std::size_t>(config_.num_choices);
  const bool has_failure = config_.failure_prob > 0.0;
  const double fp = config_.failure_prob;
  const Count alive = topo_->num_alive();  // == n; immutable during the run

  // Every alive node opens min(k, degree) channels every round, so the
  // per-round channels_opened count is a run constant on an immutable
  // topology — computing it once removes a counter update from the hot
  // loop. (channels_failed still counts per draw.)
  Count channels_per_round = 0;
  for (NodeId v = 0; v < n; ++v)
    channels_per_round += static_cast<Count>(
        std::min<std::size_t>(k, detail::topo_degree(*topo_, v)));

  // The live lanes as a compact ascending index list (mirrors the general
  // path's active_): the draw loop walks it without the serial ctz chain a
  // bitmask iteration would cost per lane.
  active_.resize(lanes);
  for (std::size_t b = 0; b < lanes; ++b) active_[b] = b;

  // informed_alive_[b] is maintained on exactly the increments the general
  // path makes, and with every node alive it equals the stamp scan the
  // general finalize performs — so the result fields come out identical.
  const auto finalize = [&](std::size_t b, Round rounds) {
    RunResult& result = results[b];
    result.rounds = rounds;
    result.alive_at_end = alive;
    result.final_informed = informed_alive_[b];
    result.all_informed = alive > 0 && result.final_informed >= alive;
  };

  NodeId choices[64];  // num_choices is capped at 64 by the constructor

  // Nonzero while any pi_[v].pull word may hold stale bits from an earlier
  // round; lets pure-push rounds skip the pull-word writes entirely.
  std::uint64_t pull_words_dirty = 0;

  Round t = 0;
  while (live != 0 && t < limits.max_rounds) {
    ++t;
    for (std::uint64_t rem = live; rem != 0; rem &= rem - 1) {
      const auto b = static_cast<std::size_t>(std::countr_zero(rem));
      round_stats[b] = RoundStats{};
      round_stats[b].t = t;
      newly_count_[b] = 0;
    }

    // Phase A: per-lane actions, folded into per-node push/pull masks. Only
    // lanes in which v is informed can act, so a single word test skips the
    // (initially vast) uninformed majority outright.
    std::uint64_t any_pull = 0;
    if constexpr (detail::kStateObliviousAction<ProtocolT>) {
      // Declared contract: action() reads only the round number, so one
      // call per lane fixes the whole round. Every informed node transmits
      // iff its lane's action is not kNone, which turns Phase A into two
      // AND masks over a linear scan (vectorizable, no per-bit work) and
      // makes transmitting_nodes the lane's informed count at round start.
      std::uint64_t push_mask = 0;
      std::uint64_t pull_mask = 0;
      for (const std::size_t b : active_) {
        NodeLocalState state;  // ignored by contract; t=0 stamp is arbitrary
        state.informed_at = 0;
        state.is_source = true;
        const Action a = protocols[b]->action(NodeId{0}, state, t);
        if (a != Action::kNone)
          round_stats[b].transmitting_nodes = informed_alive_[b];
        const std::uint64_t bit = std::uint64_t{1} << b;
        if (does_push(a)) push_mask |= bit;
        if (does_pull(a)) pull_mask |= bit;
      }
      // The source is informed from round 0, so a pulling lane always has
      // at least one pulling node: any_pull == pull_mask exactly.
      any_pull = pull_mask;
      if ((pull_mask | pull_words_dirty) == 0) {
        for (NodeId v = 0; v < n; ++v)
          push_words_[v] = pi_[v].informed & push_mask;
      } else {
        for (NodeId v = 0; v < n; ++v) {
          const std::uint64_t im = pi_[v].informed;
          push_words_[v] = im & push_mask;
          pi_[v].pull = im & pull_mask;
        }
        pull_words_dirty = pull_mask;
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        const std::uint64_t im = pi_[v].informed & live;
        std::uint64_t push_bits = 0;
        std::uint64_t pull_bits = 0;
        if (im != 0) {
          const std::size_t base = static_cast<std::size_t>(v) * lanes;
          for (std::uint64_t rem = im; rem != 0; rem &= rem - 1) {
            const auto b = static_cast<std::size_t>(std::countr_zero(rem));
            NodeLocalState state;
            state.informed_at = stamp_[base + b];
            state.is_source = state.informed_at == 0;
            const Action a = protocols[b]->action(v, state, t);
            if (a != Action::kNone) ++round_stats[b].transmitting_nodes;
            if (does_push(a)) push_bits |= std::uint64_t{1} << b;
            if (does_pull(a)) pull_bits |= std::uint64_t{1} << b;
          }
        }
        push_words_[v] = push_bits;
        pi_[v].pull = pull_bits;
        any_pull |= pull_bits;
      }
    }

    // Phase B: per lane, the exact per-node draw sequence of
    // ChannelSampler::choose's uniform branch (sample_distinct_small), then
    // the per-channel failure draw and delivery. A lane that neither pushes
    // from v nor pulls anywhere this round still makes all its draws — the
    // stream must advance — but skips the partner lookup entirely.
    //
    // Delivery for one channel of lane b, caller v, partner w. Mirrors the
    // sequential deliver() pair: push v->w first, then w's pull answer.
    const auto deliver = [&](NodeId v, NodeId w, std::size_t b,
                             std::uint64_t bit, bool push_here,
                             RoundStats& round) {
      PullInformed& mw = pi_[w];
      if (push_here) {
        ++round.push_tx;
        if ((mw.informed & bit) == 0) {
          mw.informed |= bit;
          if constexpr (kKeepStamps)
            stamp_[static_cast<std::size_t>(w) * lanes + b] = t;
          ++informed_alive_[b];
          ++newly_count_[b];
        }
      }
      if ((mw.pull & bit) != 0) {
        ++round.pull_tx;
        PullInformed& mv = pi_[v];
        if ((mv.informed & bit) == 0) {
          mv.informed |= bit;
          if constexpr (kKeepStamps)
            stamp_[static_cast<std::size_t>(v) * lanes + b] = t;
          ++informed_alive_[b];
          ++newly_count_[b];
        }
      }
    };

    if (k == 1 && !has_failure) {
      // The classical single-call round with reliable channels (push, pull,
      // push&pull, fixed-horizon). Phase B draws depend only on the lane's
      // Rng stream and the (immutable) degrees — never on who is informed —
      // so each lane's round splits into a draw sweep with the generator
      // state entirely in registers, then a delivery sweep over the same
      // nodes in the same ascending order. Within the lane that is exactly
      // the sequential interleaving; across lanes nothing is shared.
      choice_buf_.resize(n);
      for (const std::size_t b : active_) {
        Rng& rng = rngs[b];
        for (NodeId v = 0; v < n; ++v) {
          const NodeId d = detail::topo_degree(*topo_, v);
          if (d == 0) continue;  // choose() draws nothing for isolated nodes
          choice_buf_[v] = static_cast<NodeId>(rng.uniform_u64(d));
        }
        const std::uint64_t bit = std::uint64_t{1} << b;
        const bool lane_pulls = (any_pull & bit) != 0;
        RoundStats& round = round_stats[b];
        for (NodeId v = 0; v < n; ++v) {
          const bool push_here = (push_words_[v] & bit) != 0;
          if (!push_here && !lane_pulls) continue;
          const NodeId d = detail::topo_degree(*topo_, v);
          if (d == 0) continue;  // opened no channel
          const NodeId w = detail::topo_neighbor(*topo_, v, choice_buf_[v]);
          deliver(v, w, b, bit, push_here, round);
        }
      }
    } else {
      for (NodeId v = 0; v < n; ++v) {
        const NodeId d = detail::topo_degree(*topo_, v);
        if (d == 0) continue;  // choose() draws nothing for isolated nodes
        const std::size_t take = std::min<std::size_t>(k, d);
        const std::uint64_t push_v = push_words_[v];
        for (const std::size_t b : active_) {
          const std::uint64_t bit = std::uint64_t{1} << b;
          Rng& rng = rngs[b];
          // Inlined Rng::sample_distinct_small(d, take): rejection against
          // the already-chosen prefix, in draw order.
          for (std::size_t i = 0; i < take; ++i) {
            NodeId candidate;
            bool fresh;
            do {
              candidate = static_cast<NodeId>(rng.uniform_u64(d));
              fresh = true;
              for (std::size_t j = 0; j < i; ++j) {
                if (choices[j] == candidate) {
                  fresh = false;
                  break;
                }
              }
            } while (!fresh);
            choices[i] = candidate;
          }
          RoundStats& round = round_stats[b];
          const bool push_here = (push_v & bit) != 0;
          const bool lane_pulls = (any_pull & bit) != 0;
          if (!has_failure && !push_here && !lane_pulls)
            continue;  // no failure draws to make, nothing to deliver
          for (std::size_t i = 0; i < take; ++i) {
            if (has_failure && rng.bernoulli(fp)) {
              ++round.channels_failed;
              continue;
            }
            if (!push_here && !lane_pulls) continue;
            const NodeId w = detail::topo_neighbor(*topo_, v, choices[i]);
            deliver(v, w, b, bit, push_here, round);
          }
        }
      }
    }

    // Round end: identical bookkeeping and termination to the general path,
    // with the active list kept as mask + index list in tandem.
    std::uint64_t next_live = live;
    std::size_t keep = 0;
    for (std::size_t bi = 0; bi < active_.size(); ++bi) {
      const std::size_t b = active_[bi];
      RoundStats& round = round_stats[b];
      RunResult& result = results[b];
      round.channels_opened = channels_per_round;
      informed_[b] += newly_count_[b];
      round.newly_informed = newly_count_[b];
      round.informed = informed_[b];
      result.push_tx += round.push_tx;
      result.pull_tx += round.pull_tx;
      result.channels_opened += round.channels_opened;
      result.channels_failed += round.channels_failed;
      if (limits.record_rounds) result.per_round.push_back(round);

      const Count informed_alive = informed_alive_[b];
      if (result.completion_round == kNever && alive > 0 &&
          informed_alive >= alive)
        result.completion_round = t;

      const bool proto_done = protocols[b]->finished(t, informed_alive, alive);
      const bool oracle_done =
          limits.stop_when_all_informed && informed_alive >= alive;
      if (proto_done || oracle_done) {
        finalize(b, t);
        next_live &= ~(std::uint64_t{1} << b);
      } else {
        active_[keep++] = b;
      }
    }
    active_.resize(keep);
    live = next_live;
  }

  for (const std::size_t b : active_) finalize(b, t);
  active_.clear();

  return results;
}

template <Topology TopologyT>
template <ProtocolImpl ProtocolT>
std::vector<RunResult> BatchedPhoneCallEngine<TopologyT>::run_lockstep_classic(
    std::span<ProtocolT* const> protocols, std::span<const NodeId> sources,
    std::span<Rng> rngs, const RunLimits& limits) {
  static_assert(detail::kStateObliviousAction<ProtocolT>);

  const NodeId n = topo_->num_slots();
  const std::size_t lanes = protocols.size();
  const std::size_t W = (static_cast<std::size_t>(n) + 63) / 64;

  telemetry::Span kernel_span("batched", "batched:classic");
  if (kernel_span.active())
    kernel_span.set_args("{\"lanes\":" + std::to_string(lanes) +
                         ",\"n\":" + std::to_string(n) + "}");

  live_bits_.assign(lanes * W, 0);
  start_bits_.assign(W, 0);
  informed_.assign(lanes, 0);
  informed_alive_.assign(lanes, 0);
  newly_count_.assign(lanes, 0);

  std::vector<RunResult> results(lanes);
  std::vector<RoundStats> round_stats(lanes);

  std::uint64_t live =
      lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;

  for (std::size_t b = 0; b < lanes; ++b) {
    RRB_REQUIRE(protocols[b] != nullptr, "null protocol lane");
    ProtocolT& proto = *protocols[b];
    if constexpr (requires { proto.reset(n); }) proto.reset(n);
    const NodeId s = sources[b];
    RRB_REQUIRE(s < n, "source out of range");
    RRB_REQUIRE(topo_->is_alive(s), "source must be alive");
    live_bits_[b * W + (s >> 6)] |= std::uint64_t{1} << (s & 63);
    informed_[b] = 1;
    informed_alive_[b] = 1;
    results[b].n = n;
  }

  const Count alive = topo_->num_alive();  // == n; immutable during the run

  // One reliable call per alive node per round (k == 1 here), so the
  // channels_opened count is the number of non-isolated nodes — a run
  // constant on an immutable topology.
  Count channels_per_round = 0;
  for (NodeId v = 0; v < n; ++v)
    if (detail::topo_degree(*topo_, v) != 0) ++channels_per_round;

  active_.resize(lanes);
  for (std::size_t b = 0; b < lanes; ++b) active_[b] = b;

  const auto finalize = [&](std::size_t b, Round rounds) {
    RunResult& result = results[b];
    result.rounds = rounds;
    result.alive_at_end = alive;
    result.final_informed = informed_alive_[b];
    result.all_informed = alive > 0 && result.final_informed >= alive;
  };

  choice_buf_.resize(n);

  Round t = 0;
  while (live != 0 && t < limits.max_rounds) {
    ++t;
    for (const std::size_t b : active_) {
      round_stats[b] = RoundStats{};
      round_stats[b].t = t;
      newly_count_[b] = 0;
    }

    for (const std::size_t b : active_) {
      // One action() call fixes the whole round (declared contract); every
      // informed node transmits iff it is not kNone.
      NodeLocalState state;  // ignored by contract
      state.informed_at = 0;
      state.is_source = true;
      const Action a = protocols[b]->action(NodeId{0}, state, t);
      if (a != Action::kNone)
        round_stats[b].transmitting_nodes = informed_alive_[b];
      const bool pushes = does_push(a);
      const bool pulls = does_pull(a);

      // Draw sweep: every node with a neighbour draws its callee exactly as
      // ChannelSampler::choose would, whether or not anything is delivered
      // this round — the stream must advance identically.
      Rng& rng = rngs[b];
      for (NodeId v = 0; v < n; ++v) {
        const NodeId d = detail::topo_degree(*topo_, v);
        if (d == 0) continue;  // choose() draws nothing for isolated nodes
        choice_buf_[v] = static_cast<NodeId>(rng.uniform_u64(d));
      }
      if (!pushes && !pulls) continue;  // e.g. fixed-horizon past its horizon

      std::uint64_t* const lane_bits = live_bits_.data() + b * W;
      // Transmissions read the round-start informed set: a node informed
      // mid-round neither pushes nor answers pulls until the next round.
      std::copy(lane_bits, lane_bits + W, start_bits_.begin());
      RoundStats& round = round_stats[b];

      const auto inform = [&](NodeId u) {
        std::uint64_t& word = lane_bits[u >> 6];
        const std::uint64_t ubit = std::uint64_t{1} << (u & 63);
        if ((word & ubit) == 0) {
          word |= ubit;
          ++informed_alive_[b];
          ++newly_count_[b];
        }
      };

      if (pushes && !pulls) {
        // Deliveries originate only at informed nodes: walk the set bits of
        // the snapshot (node-ascending), skipping empty 64-node words —
        // early rounds touch a handful of nodes instead of all n.
        for (std::size_t wi = 0; wi < W; ++wi) {
          for (std::uint64_t rem = start_bits_[wi]; rem != 0;
               rem &= rem - 1) {
            const auto v = static_cast<NodeId>(
                (wi << 6) + static_cast<std::size_t>(std::countr_zero(rem)));
            const NodeId d = detail::topo_degree(*topo_, v);
            if (d == 0) continue;  // opened no channel
            const NodeId w = detail::topo_neighbor(*topo_, v, choice_buf_[v]);
            ++round.push_tx;
            inform(w);
          }
        }
      } else {
        // A pulling lane delivers on every opened channel whose partner is
        // informed, so every non-isolated node's call matters.
        for (NodeId v = 0; v < n; ++v) {
          const NodeId d = detail::topo_degree(*topo_, v);
          if (d == 0) continue;  // opened no channel
          const NodeId w = detail::topo_neighbor(*topo_, v, choice_buf_[v]);
          if (pushes &&
              (start_bits_[v >> 6] >> (v & 63) & std::uint64_t{1}) != 0) {
            ++round.push_tx;
            inform(w);
          }
          if ((start_bits_[w >> 6] >> (w & 63) & std::uint64_t{1}) != 0) {
            ++round.pull_tx;
            inform(v);
          }
        }
      }
    }

    // Round end: identical bookkeeping and termination to the other paths.
    std::uint64_t next_live = live;
    std::size_t keep = 0;
    for (std::size_t bi = 0; bi < active_.size(); ++bi) {
      const std::size_t b = active_[bi];
      RoundStats& round = round_stats[b];
      RunResult& result = results[b];
      round.channels_opened = channels_per_round;
      informed_[b] += newly_count_[b];
      round.newly_informed = newly_count_[b];
      round.informed = informed_[b];
      result.push_tx += round.push_tx;
      result.pull_tx += round.pull_tx;
      result.channels_opened += round.channels_opened;
      result.channels_failed += round.channels_failed;
      if (limits.record_rounds) result.per_round.push_back(round);

      const Count informed_alive = informed_alive_[b];
      if (result.completion_round == kNever && alive > 0 &&
          informed_alive >= alive)
        result.completion_round = t;

      const bool proto_done = protocols[b]->finished(t, informed_alive, alive);
      const bool oracle_done =
          limits.stop_when_all_informed && informed_alive >= alive;
      if (proto_done || oracle_done) {
        finalize(b, t);
        next_live &= ~(std::uint64_t{1} << b);
      } else {
        active_[keep++] = b;
      }
    }
    active_.resize(keep);
    live = next_live;
  }

  for (const std::size_t b : active_) finalize(b, t);
  active_.clear();

  return results;
}

}  // namespace rrb
