#pragma once

#include <vector>

#include "rrb/common/types.hpp"

/// \file result.hpp
/// Run statistics reported by the phone call engine. Transmission counting
/// follows the paper's convention exactly: every copy of the message sent
/// over a channel is one transmission; opening channels is free (their cost
/// amortises over frequent broadcasts, §1), but we count them anyway for
/// diagnostics.

namespace rrb {

/// One delivered copy of the message, as reported to metric observers
/// (rrb/metrics/observer.hpp). `caller`/`edge_index` name the channel the
/// copy travelled on — (caller, edge_index) addresses an adjacency slot, so
/// EdgeIdMap::edge_of resolves it to an undirected edge id — while
/// `from`/`to` give the transfer direction: from == caller for a push,
/// from == callee for a pull. Observers see identities because they are
/// measurement, not protocol: the address-oblivious restriction (§1.2)
/// structurally binds protocol callbacks only.
struct TransmissionEvent {
  Round t = 0;
  NodeId caller = kNoNode;      ///< node that opened the channel
  NodeId edge_index = 0;        ///< index of the channel in caller's adjacency
  NodeId from = kNoNode;        ///< sender of this copy
  NodeId to = kNoNode;          ///< receiver of this copy
  bool is_push = false;         ///< caller -> callee (else callee -> caller)
  bool first_time = false;      ///< `to` had never held the message before
};

/// Per-round counters.
struct RoundStats {
  Round t = 0;
  Count informed = 0;         ///< |I(t)| after this round
  Count newly_informed = 0;   ///< |I+(t)|
  Count push_tx = 0;          ///< copies sent caller -> callee this round
  Count pull_tx = 0;          ///< copies sent callee -> caller this round
  Count channels_opened = 0;
  Count channels_failed = 0;
  Count transmitting_nodes = 0;  ///< nodes whose action was not kNone
};

/// Whole-run summary.
struct RunResult {
  NodeId n = 0;                 ///< node slots
  Count alive_at_end = 0;       ///< alive nodes when the run stopped
  bool all_informed = false;    ///< every alive node informed at the end
  Round rounds = 0;             ///< rounds executed
  Round completion_round = kNever;  ///< first round after which all alive
                                    ///< nodes were informed
  Count push_tx = 0;
  Count pull_tx = 0;
  Count channels_opened = 0;
  Count channels_failed = 0;
  Count final_informed = 0;
  std::vector<RoundStats> per_round;  ///< filled iff limits.record_rounds

  [[nodiscard]] Count total_tx() const { return push_tx + pull_tx; }

  /// Transmissions per node slot — the paper's headline metric
  /// (O(log log n) per node for the four-choice algorithm vs Theta(log n)
  /// for push). On static graphs slots == nodes; on a churned overlay
  /// divide total_tx() by alive_at_end instead.
  [[nodiscard]] double tx_per_node() const {
    return n == 0 ? 0.0
                  : static_cast<double>(total_tx()) / static_cast<double>(n);
  }
};

/// Engine stopping rules.
struct RunLimits {
  Round max_rounds = 1 << 20;          ///< hard safety cap
  bool stop_when_all_informed = false; ///< oracle termination (baselines)
  bool record_rounds = false;          ///< keep per-round stats
};

}  // namespace rrb
