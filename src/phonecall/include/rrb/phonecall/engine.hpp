#pragma once

#include <concepts>
#include <functional>
#include <span>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/phonecall/channel_sampler.hpp"
#include "rrb/phonecall/failure_models.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/telemetry/telemetry.hpp"

/// \file engine.hpp
/// The synchronous phone call engine.
///
/// Per round, every alive node opens channels to `num_choices` distinct
/// incident edges chosen uniformly at random (num_choices = 1 is the
/// classical model of Karp et al.; 4 is the paper's modification). Channels
/// are bidirectional: a transmission over channel (v -> w) is a *push* when
/// initiated by the caller v and a *pull* when initiated by the callee w.
/// Messages delivered in round t only become forwardable in round t + 1,
/// matching the paper's "received for the first time in the previous step"
/// phrasing.
///
/// The engine is a template over a Topology, so the same round loop drives
/// static graphs (Graph) and the dynamic churn overlay (p2p), and run() is
/// additionally a template over the protocol (see ProtocolImpl in
/// protocol.hpp) and over an optional metric observer — concrete protocols
/// and observers dispatch at compile time, so the per-node inner loop pays
/// no virtual calls, no std::function calls, and no per-access bounds
/// checks (see the unchecked topology views below).
///
/// Measurement is NOT hardwired here: beyond the RunResult counters that
/// are part of the library's recorded-output contract, every quantity an
/// experiment tracks (set sizes, h_i(t), edge usage, per-node
/// distributions) lives in a metric observer (rrb/metrics/observer.hpp).
/// run() detects each observer hook with `requires`, the same mechanism
/// used for optional protocol hooks, so a run without observers compiles
/// to the identical loop and an attached observer adds only the hooks it
/// defines. Observers are read-only and draw no randomness — attaching any
/// stack leaves the run's draw sequence and RunResult bit-identical
/// (ROADMAP.md observer invariant; pinned by tests/test_metrics.cpp).
///
/// Determinism: the order of RNG draws inside run() is part of the
/// library's output contract (ROADMAP.md "seeding contract";
/// tests/test_golden_results.cpp pins it). Any engine change must preserve
/// the draw order exactly or every recorded experiment changes.

namespace rrb {

/// Requirements on a topology the engine can run on. The checked accessors
/// are the interface; a topology may additionally provide
/// degree_unchecked/neighbor_unchecked fast paths (GraphTopology and
/// DynamicOverlay do), which the round loop uses after validating its
/// inputs once at run start — every node id it touches is < num_slots()
/// and every edge index is < degree(v) by construction.
template <typename T>
concept Topology = requires(const T& t, NodeId v, NodeId i) {
  { t.num_slots() } -> std::convertible_to<NodeId>;
  { t.num_alive() } -> std::convertible_to<Count>;
  { t.is_alive(v) } -> std::convertible_to<bool>;
  { t.degree(v) } -> std::convertible_to<NodeId>;
  { t.neighbor(v, i) } -> std::convertible_to<NodeId>;
};

/// Adapter presenting an immutable Graph as a Topology. Exposes the
/// unchecked CSR views; the Graph's CSR invariants hold by construction,
/// so per-access bounds checks in the round loop would be redundant.
class GraphTopology {
 public:
  explicit GraphTopology(const Graph& g) : g_(&g) {}
  [[nodiscard]] NodeId num_slots() const { return g_->num_nodes(); }
  [[nodiscard]] Count num_alive() const { return g_->num_nodes(); }
  [[nodiscard]] bool is_alive(NodeId) const { return true; }
  [[nodiscard]] NodeId degree(NodeId v) const { return g_->degree(v); }
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const {
    return g_->neighbor(v, i);
  }
  [[nodiscard]] NodeId degree_unchecked(NodeId v) const {
    return g_->degree_unchecked(v);
  }
  [[nodiscard]] NodeId neighbor_unchecked(NodeId v, NodeId i) const {
    return g_->neighbor_unchecked(v, i);
  }
  [[nodiscard]] const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
};

/// Hook invoked between rounds; may mutate a dynamic topology (churn).
/// This is the one intentionally *mutating* hook — everything read-only
/// belongs in a metric observer instead.
using RoundHook = std::function<void(Round t)>;

namespace detail {

/// The default observer: no hooks, so every observer call site in run()
/// compiles away and the loop is byte-for-byte the pre-observer engine.
struct NoMetrics {
  [[nodiscard]] const char* name() const { return "none"; }
};

}  // namespace detail

template <Topology TopologyT>
class PhoneCallEngine {
 public:
  PhoneCallEngine(TopologyT& topo, ChannelConfig config, Rng& rng)
      : topo_(&topo), config_(config), rng_(&rng) {
    RRB_REQUIRE(config_.num_choices >= 1, "need at least one choice");
    RRB_REQUIRE(config_.num_choices <= 64, "choices capped at 64");
    RRB_REQUIRE(config_.memory >= 0, "memory must be >= 0");
    RRB_REQUIRE(config_.failure_prob >= 0.0 && config_.failure_prob <= 1.0,
                "failure_prob out of [0,1]");
    RRB_REQUIRE(!(config_.quasirandom && config_.memory > 0),
                "quasirandom and memory are mutually exclusive");
  }

  /// Mutate the topology between rounds (churn). Newly joined nodes start
  /// uninformed; dead nodes stop participating and no longer count towards
  /// completion.
  ///
  /// Completion under churn is tracked *incrementally*: a hook that removes
  /// alive nodes must report each departure once via notify_node_died(),
  /// and each reused slot via reset_node() (attach_churn() in
  /// rrb/p2p/churn.hpp wires both automatically). The engine never rescans
  /// the informed array during the run.
  void set_round_hook(RoundHook hook) { hook_ = std::move(hook); }

  /// Install a structured failure model (see failure_models.hpp). A channel
  /// fails if either this predicate or ChannelConfig::failure_prob fires.
  void set_failure_model(FailurePredicate model) {
    failure_model_ = std::move(model);
  }

  /// Informed rounds per node after run() (kNever = never informed).
  [[nodiscard]] std::span<const Round> informed_at() const {
    return informed_at_;
  }

  /// Read-only view of the channel sampler's per-node state (memory rings,
  /// quasirandom cursors) — for tests pinning the sampling semantics;
  /// mutating channel state mid-run would break the draw-order contract.
  [[nodiscard]] const ChannelSampler& sampler() const { return sampler_; }

  /// Forget a node's informed status. Needed by churn drivers when a slot
  /// freed by a departed peer is reused by a fresh joiner — the newcomer
  /// must not inherit its predecessor's copy of the message. Only call from
  /// a round hook.
  void reset_node(NodeId v) {
    RRB_REQUIRE(v < informed_at_.size(), "reset_node: out of range");
    if (informed_at_[v] == kNever) return;
    informed_at_[v] = kNever;
    if (topo_->is_alive(v)) --informed_alive_;
  }

  /// Report that a previously-alive node left the topology. The departed
  /// peer forgets the message (its informed_at slot is cleared), keeping
  /// the engine's incremental informed-alive count exact without an O(n)
  /// rescan per round. Call exactly once per departure, from a round hook,
  /// after the topology has marked the node dead.
  void notify_node_died(NodeId v) {
    RRB_REQUIRE(v < informed_at_.size(), "notify_node_died: out of range");
    if (informed_at_[v] == kNever) return;
    informed_at_[v] = kNever;
    --informed_alive_;
  }

  /// Run `protocol` from `source` until the protocol reports finished, all
  /// alive nodes are informed (if limits.stop_when_all_informed), or
  /// limits.max_rounds elapse.
  template <ProtocolImpl ProtocolT>
  RunResult run(ProtocolT& protocol, NodeId source, const RunLimits& limits) {
    return run(protocol, std::span<const NodeId>(&source, 1), limits);
  }

  template <ProtocolImpl ProtocolT>
  RunResult run(ProtocolT& protocol, std::span<const NodeId> sources,
                const RunLimits& limits) {
    detail::NoMetrics none;
    return run(protocol, sources, limits, none);
  }

  /// Instrumented runs: `observers` is any metric observer (typically an
  /// ObserverSet composing several; see rrb/metrics/observer.hpp for the
  /// hook vocabulary and the read-only contract). Hooks are detected per
  /// observer type with `requires` and inlined into the round loop.
  template <ProtocolImpl ProtocolT, typename ObserverT>
  RunResult run(ProtocolT& protocol, NodeId source, const RunLimits& limits,
                ObserverT& observers) {
    return run(protocol, std::span<const NodeId>(&source, 1), limits,
               observers);
  }

  template <ProtocolImpl ProtocolT, typename ObserverT>
  RunResult run(ProtocolT& protocol, std::span<const NodeId> sources,
                const RunLimits& limits, ObserverT& observers);

 private:
  [[nodiscard]] NodeId neighbor_of(NodeId v, NodeId i) const {
    return detail::topo_neighbor(*topo_, v, i);
  }

  TopologyT* topo_;
  ChannelConfig config_;
  Rng* rng_;
  RoundHook hook_;
  FailurePredicate failure_model_;

  std::vector<Round> informed_at_;
  std::vector<Action> action_;  // kNone for uninformed/silent nodes

  /// |{v : alive(v) && informed(v)}|, maintained incrementally: +1 per
  /// first-time delivery (recipients are alive by construction), -1 in
  /// notify_node_died()/reset_node(). Exact at every completion check
  /// provided churn hooks report departures (see set_round_hook).
  Count informed_alive_ = 0;

  ChannelSampler sampler_;

  // Flat per-run scratch buffers, reused across rounds and runs.
  std::vector<NodeId> choice_buf_;
  std::vector<NodeId> partner_buf_;
  std::vector<NodeId> newly_;
};

template <Topology TopologyT>
template <ProtocolImpl ProtocolT, typename ObserverT>
RunResult PhoneCallEngine<TopologyT>::run(ProtocolT& protocol,
                                          std::span<const NodeId> sources,
                                          const RunLimits& limits,
                                          ObserverT& observers) {
  const NodeId n = topo_->num_slots();
  RRB_REQUIRE(n >= 1, "empty topology");
  RRB_REQUIRE(!sources.empty(), "need at least one source");

  // Telemetry spans record wall-clock only: they draw no randomness and
  // touch no engine state, so draws and outputs are bit-identical with
  // recording on or off (pinned by tests/test_telemetry.cpp).
  telemetry::Span run_span("engine", "run");
  if (run_span.active())
    run_span.set_args("{\"n\":" + std::to_string(n) + "}");

  informed_at_.assign(n, kNever);
  action_.assign(n, Action::kNone);
  sampler_.prepare(config_, n);

  if constexpr (requires { protocol.reset(n); }) protocol.reset(n);
  Count informed = 0;
  for (const NodeId s : sources) {
    RRB_REQUIRE(s < n, "source out of range");
    RRB_REQUIRE(topo_->is_alive(s), "source must be alive");
    if (informed_at_[s] == kNever) {
      informed_at_[s] = 0;  // message created at time step 0
      ++informed;
    }
  }
  informed_alive_ = informed;

  if constexpr (requires { observers.on_run_begin(n, sources); })
    observers.on_run_begin(n, sources);

  RunResult result;
  result.n = n;

  choice_buf_.assign(static_cast<std::size_t>(config_.num_choices), 0);
  partner_buf_.assign(static_cast<std::size_t>(config_.num_choices), 0);
  const std::span<NodeId> edge_choice(choice_buf_);
  const std::span<NodeId> partners(partner_buf_);

  // Hoisted once per run: none of these can change mid-run, and testing a
  // bool beats re-testing a std::function (or re-reading config) per node
  // or per channel in the inner loop.
  const bool has_failure_prob = config_.failure_prob > 0.0;
  const bool has_failure_model = static_cast<bool>(failure_model_);
  const bool has_hook = static_cast<bool>(hook_);
  const bool has_memory = config_.memory > 0;

  Round t = 0;
  while (t < limits.max_rounds) {
    ++t;
    if constexpr (requires { protocol.on_round_start(t); })
      protocol.on_round_start(t);
    if constexpr (requires { observers.on_round_begin(t); })
      observers.on_round_begin(t);
    RoundStats round{};
    round.t = t;

    // Phase A: compute actions for nodes informed before this round.
    for (NodeId v = 0; v < n; ++v) {
      if (!topo_->is_alive(v) || informed_at_[v] == kNever) {
        action_[v] = Action::kNone;
        continue;
      }
      NodeLocalState state;
      state.informed_at = informed_at_[v];
      state.is_source = informed_at_[v] == 0;
      action_[v] = protocol.action(v, state, t);
      if (action_[v] != Action::kNone) ++round.transmitting_nodes;
    }

    // Phase B: every alive node opens channels; transmissions happen on
    // the channel according to the caller's push action and the callee's
    // pull action.
    newly_.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (!topo_->is_alive(v)) continue;
      const std::size_t k = sampler_.choose(*topo_, *rng_, v, edge_choice);
      for (std::size_t i = 0; i < k; ++i) {
        const NodeId edge_idx = edge_choice[i];
        const NodeId w = neighbor_of(v, edge_idx);
        // Deliberate: the partner is recorded for the memory ring *before*
        // the failure checks below, so a failed or stale channel still
        // counts as "recently called" — the call was placed even if no
        // message crossed it, which is what the sequentialised model's
        // memory constraint is about. Pinned by
        // tests/test_engine.cpp (MemoryRing.FailedChannelsAreRemembered);
        // changing it would alter the rejection-sampling draw sequence of
        // every memory-scheme experiment.
        partners[i] = w;
        ++round.channels_opened;
        if ((has_failure_prob && rng_->bernoulli(config_.failure_prob)) ||
            (has_failure_model && failure_model_(t, v, w))) {
          ++round.channels_failed;
          continue;
        }
        if (!topo_->is_alive(w)) {
          ++round.channels_failed;  // stale link during churn
          continue;
        }
        const bool push_here = does_push(action_[v]);
        const bool pull_here = does_pull(action_[w]);
        if (!push_here && !pull_here) continue;

        auto deliver = [&](NodeId to, NodeId from, bool is_push) {
          MessageMeta meta;
          if constexpr (requires { protocol.stamp(from, t); })
            meta = protocol.stamp(from, t);
          if (is_push)
            ++round.push_tx;
          else
            ++round.pull_tx;
          const bool first = informed_at_[to] == kNever;
          if constexpr (requires {
                          protocol.on_receive(to, meta, t, first);
                        })
            protocol.on_receive(to, meta, t, first);
          if (first) {
            informed_at_[to] = t;
            ++informed_alive_;
            newly_.push_back(to);
          }
          if constexpr (requires(const TransmissionEvent& event) {
                          observers.on_transmission(event);
                        })
            observers.on_transmission(TransmissionEvent{
                .t = t,
                .caller = v,
                .edge_index = edge_idx,
                .from = from,
                .to = to,
                .is_push = is_push,
                .first_time = first,
            });
          if (first)
            if constexpr (requires { observers.on_node_informed(to, t); })
              observers.on_node_informed(to, t);
        };
        if (push_here) deliver(w, v, /*is_push=*/true);
        if (pull_here) deliver(v, w, /*is_push=*/false);
      }
      if (has_memory)
        sampler_.remember_partners(
            v, std::span<const NodeId>(partners.data(), k));
    }

    informed += newly_.size();
    round.newly_informed = newly_.size();
    round.informed = informed;

    result.push_tx += round.push_tx;
    result.pull_tx += round.pull_tx;
    result.channels_opened += round.channels_opened;
    result.channels_failed += round.channels_failed;
    if (limits.record_rounds) result.per_round.push_back(round);

    if constexpr (requires(std::span<const Round> ia) {
                    observers.on_round_end(round, ia);
                  })
      observers.on_round_end(
          round, std::span<const Round>(informed_at_.data(), n));

    const Count alive = topo_->num_alive();
    // Completion: every alive node informed. informed_alive_ is maintained
    // incrementally — churn hooks report departures via notify_node_died()
    // and slot reuse via reset_node(), so no O(n) rescan is needed here.
    // alive > 0 guards the vacuous case: a churn burst that kills every
    // node must not count as completion (the set may repopulate via joins
    // and the run would then carry a bogus completion_round).
    const Count informed_alive = informed_alive_;
    if (result.completion_round == kNever && alive > 0 &&
        informed_alive >= alive)
      result.completion_round = t;

    const bool proto_done = protocol.finished(t, informed_alive, alive);
    const bool oracle_done =
        limits.stop_when_all_informed && informed_alive >= alive;
    if (proto_done || oracle_done) break;

    if (has_hook) {
      hook_(t);
      const NodeId new_n = topo_->num_slots();
      RRB_REQUIRE(new_n == n, "topology slots may not change during a run");
    }
  }

  result.rounds = t;
  result.alive_at_end = topo_->num_alive();
  Count final_informed = 0;
  for (NodeId v = 0; v < n; ++v)
    if (topo_->is_alive(v) && informed_at_[v] != kNever) ++final_informed;
  result.final_informed = final_informed;
  // "All informed" requires someone to be informed: when churn killed every
  // node (alive_at_end == 0) the broadcast failed, even though the empty
  // set of alive nodes is vacuously covered. Without the alive_at_end > 0
  // guard such runs would report completion with zero informed nodes and
  // pollute completion_rate/completion_round statistics.
  result.all_informed =
      result.alive_at_end > 0 && final_informed >= result.alive_at_end;

  if constexpr (requires(std::span<const Round> ia) {
                  observers.on_run_end(result, ia);
                })
    observers.on_run_end(result,
                         std::span<const Round>(informed_at_.data(), n));
  return result;
}

}  // namespace rrb
