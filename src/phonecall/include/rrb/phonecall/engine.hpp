#pragma once

#include <concepts>
#include <functional>
#include <span>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/phonecall/failure_models.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"

/// \file engine.hpp
/// The synchronous phone call engine.
///
/// Per round, every alive node opens channels to `num_choices` distinct
/// incident edges chosen uniformly at random (num_choices = 1 is the
/// classical model of Karp et al.; 4 is the paper's modification). Channels
/// are bidirectional: a transmission over channel (v -> w) is a *push* when
/// initiated by the caller v and a *pull* when initiated by the callee w.
/// Messages delivered in round t only become forwardable in round t + 1,
/// matching the paper's "received for the first time in the previous step"
/// phrasing.
///
/// The engine is a template over a Topology so that the same round loop
/// drives static graphs (Graph) and the dynamic churn overlay (p2p).

namespace rrb {

/// Requirements on a topology the engine can run on.
template <typename T>
concept Topology = requires(const T& t, NodeId v, NodeId i) {
  { t.num_slots() } -> std::convertible_to<NodeId>;
  { t.num_alive() } -> std::convertible_to<Count>;
  { t.is_alive(v) } -> std::convertible_to<bool>;
  { t.degree(v) } -> std::convertible_to<NodeId>;
  { t.neighbor(v, i) } -> std::convertible_to<NodeId>;
};

/// Adapter presenting an immutable Graph as a Topology.
class GraphTopology {
 public:
  explicit GraphTopology(const Graph& g) : g_(&g) {}
  [[nodiscard]] NodeId num_slots() const { return g_->num_nodes(); }
  [[nodiscard]] Count num_alive() const { return g_->num_nodes(); }
  [[nodiscard]] bool is_alive(NodeId) const { return true; }
  [[nodiscard]] NodeId degree(NodeId v) const { return g_->degree(v); }
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const {
    return g_->neighbor(v, i);
  }
  [[nodiscard]] const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
};

/// How channels are established each round.
struct ChannelConfig {
  /// Distinct incident edges each node calls per round. 1 = classical
  /// random phone call model; 4 = the paper's modification.
  int num_choices = 1;

  /// If > 0, avoid partners called during the last `memory` rounds (the
  /// sequentialised model of §1.2 footnote 2 uses num_choices = 1,
  /// memory = 3). Best-effort: if a node's degree leaves no admissible
  /// partner, the constraint is relaxed for that call.
  int memory = 0;

  /// Probability that an opened channel fails (no communication in either
  /// direction). Models the paper's "limited communication failures".
  double failure_prob = 0.0;

  /// Quasirandom model (Doerr–Friedrich–Sauerwald): each node walks its
  /// neighbour list cyclically from a random start, calling the next
  /// num_choices entries per round, instead of sampling.
  bool quasirandom = false;
};

/// Observer invoked at the end of every round with the informed_at array
/// (kNever = still uninformed). Used by the experiment harness to measure
/// set sizes (|I+(t)|, h_i(t), U(t), ...) without touching engine internals.
using RoundObserver =
    std::function<void(Round t, std::span<const Round> informed_at)>;

/// Hook invoked between rounds; may mutate a dynamic topology (churn).
using RoundHook = std::function<void(Round t)>;

template <Topology TopologyT>
class PhoneCallEngine {
 public:
  PhoneCallEngine(TopologyT& topo, ChannelConfig config, Rng& rng)
      : topo_(&topo), config_(config), rng_(&rng) {
    RRB_REQUIRE(config_.num_choices >= 1, "need at least one choice");
    RRB_REQUIRE(config_.num_choices <= 64, "choices capped at 64");
    RRB_REQUIRE(config_.memory >= 0, "memory must be >= 0");
    RRB_REQUIRE(config_.failure_prob >= 0.0 && config_.failure_prob <= 1.0,
                "failure_prob out of [0,1]");
    RRB_REQUIRE(!(config_.quasirandom && config_.memory > 0),
                "quasirandom and memory are mutually exclusive");
  }

  /// Observe informed sets after each round.
  void set_round_observer(RoundObserver observer) {
    observer_ = std::move(observer);
  }

  /// Mutate the topology between rounds (churn). Newly joined nodes start
  /// uninformed; dead nodes stop participating and no longer count towards
  /// completion.
  void set_round_hook(RoundHook hook) { hook_ = std::move(hook); }

  /// Install a structured failure model (see failure_models.hpp). A channel
  /// fails if either this predicate or ChannelConfig::failure_prob fires.
  void set_failure_model(FailurePredicate model) {
    failure_model_ = std::move(model);
  }

  /// Track which undirected edges have carried at least one transmission
  /// (for the Lemma 4 experiment). Graph topologies only; the map must
  /// match the engine's topology.
  void enable_edge_usage_tracking(const EdgeIdMap& map) {
    edge_ids_ = &map;
    edge_used_.assign(map.num_edges, 0);
  }

  /// Edge usage bitmap (valid after run() when tracking is enabled).
  [[nodiscard]] const std::vector<std::uint8_t>& edge_used() const {
    return edge_used_;
  }

  /// Informed rounds per node after run() (kNever = never informed).
  [[nodiscard]] std::span<const Round> informed_at() const {
    return informed_at_;
  }

  /// Forget a node's informed status. Needed by churn drivers when a slot
  /// freed by a departed peer is reused by a fresh joiner — the newcomer
  /// must not inherit its predecessor's copy of the message. Only call from
  /// a round hook.
  void reset_node(NodeId v) {
    RRB_REQUIRE(v < informed_at_.size(), "reset_node: out of range");
    informed_at_[v] = kNever;
  }

  /// Run `protocol` from `source` until the protocol reports finished, all
  /// alive nodes are informed (if limits.stop_when_all_informed), or
  /// limits.max_rounds elapse.
  RunResult run(BroadcastProtocol& protocol, NodeId source,
                const RunLimits& limits) {
    return run(protocol, std::span<const NodeId>(&source, 1), limits);
  }

  RunResult run(BroadcastProtocol& protocol, std::span<const NodeId> sources,
                const RunLimits& limits);

 private:
  /// Choose the partners node v calls this round; writes neighbour *edge
  /// indices* into choice_buf_ and returns how many were chosen.
  std::size_t choose_edges(NodeId v, std::span<NodeId> out);

  /// Record v's partners for the memory constraint.
  void remember_partners(NodeId v, std::span<const NodeId> partners);

  [[nodiscard]] bool recently_called(NodeId v, NodeId partner) const;

  TopologyT* topo_;
  ChannelConfig config_;
  Rng* rng_;
  RoundObserver observer_;
  RoundHook hook_;
  FailurePredicate failure_model_;

  std::vector<Round> informed_at_;
  std::vector<Action> action_;  // kNone for uninformed/silent nodes

  // Memory rings: memory_[v * memory + j] = partner called `j+1` rounds ago
  // (unordered ring). kNoNode = empty.
  std::vector<NodeId> memory_;

  // Quasirandom list cursors.
  std::vector<NodeId> cursor_;

  const EdgeIdMap* edge_ids_ = nullptr;
  std::vector<std::uint8_t> edge_used_;
};

template <Topology TopologyT>
std::size_t PhoneCallEngine<TopologyT>::choose_edges(NodeId v,
                                                     std::span<NodeId> out) {
  const NodeId d = topo_->degree(v);
  if (d == 0) return 0;
  const auto k = static_cast<std::size_t>(config_.num_choices);
  const std::size_t take = std::min<std::size_t>(k, d);

  if (config_.quasirandom) {
    // Walk the neighbour list cyclically from the node's cursor.
    if (cursor_[v] == kNoNode)
      cursor_[v] = static_cast<NodeId>(rng_->uniform_u64(d));
    for (std::size_t i = 0; i < take; ++i)
      out[i] = static_cast<NodeId>((cursor_[v] + i) % d);
    cursor_[v] = static_cast<NodeId>((cursor_[v] + take) % d);
    return take;
  }

  if (config_.memory == 0 || d <= take) {
    return rng_->sample_distinct_small(d, take, out);
  }

  // Memory constraint: rejection-sample distinct edge indices whose
  // endpoints were not called in the last `memory` rounds. Best effort —
  // after kMaxTries we accept whatever distinct indices we drew.
  constexpr int kMaxTries = 48;
  std::size_t filled = 0;
  int tries = 0;
  while (filled < take && tries < kMaxTries) {
    ++tries;
    const auto idx = static_cast<NodeId>(rng_->uniform_u64(d));
    bool duplicate = false;
    for (std::size_t j = 0; j < filled; ++j)
      if (out[j] == idx) duplicate = true;
    if (duplicate) continue;
    if (recently_called(v, topo_->neighbor(v, idx))) continue;
    out[filled++] = idx;
  }
  while (filled < take) {
    const auto idx = static_cast<NodeId>(rng_->uniform_u64(d));
    bool duplicate = false;
    for (std::size_t j = 0; j < filled; ++j)
      if (out[j] == idx) duplicate = true;
    if (!duplicate) out[filled++] = idx;
  }
  return take;
}

template <Topology TopologyT>
bool PhoneCallEngine<TopologyT>::recently_called(NodeId v,
                                                 NodeId partner) const {
  const auto m = static_cast<std::size_t>(config_.memory);
  const std::size_t base = static_cast<std::size_t>(v) * m;
  for (std::size_t j = 0; j < m; ++j)
    if (memory_[base + j] == partner) return true;
  return false;
}

template <Topology TopologyT>
void PhoneCallEngine<TopologyT>::remember_partners(
    NodeId v, std::span<const NodeId> partners) {
  const auto m = static_cast<std::size_t>(config_.memory);
  if (m == 0) return;
  const std::size_t base = static_cast<std::size_t>(v) * m;
  // Shift the ring (memory is tiny — 3 in the paper's variant).
  for (std::size_t j = m; j-- > partners.size();)
    memory_[base + j] = memory_[base + j - partners.size()];
  for (std::size_t j = 0; j < std::min(partners.size(), m); ++j)
    memory_[base + j] = partners[j];
}

template <Topology TopologyT>
RunResult PhoneCallEngine<TopologyT>::run(BroadcastProtocol& protocol,
                                          std::span<const NodeId> sources,
                                          const RunLimits& limits) {
  const NodeId n = topo_->num_slots();
  RRB_REQUIRE(n >= 1, "empty topology");
  RRB_REQUIRE(!sources.empty(), "need at least one source");

  informed_at_.assign(n, kNever);
  action_.assign(n, Action::kNone);
  if (config_.memory > 0)
    memory_.assign(static_cast<std::size_t>(n) * config_.memory, kNoNode);
  if (config_.quasirandom) cursor_.assign(n, kNoNode);
  if (edge_ids_ != nullptr) {
    RRB_REQUIRE(edge_ids_->slot_offsets.size() == n + 1U,
                "edge id map does not match topology");
    edge_used_.assign(edge_ids_->num_edges, 0);
  }

  protocol.reset(n);
  Count informed = 0;
  for (const NodeId s : sources) {
    RRB_REQUIRE(s < n, "source out of range");
    RRB_REQUIRE(topo_->is_alive(s), "source must be alive");
    if (informed_at_[s] == kNever) {
      informed_at_[s] = 0;  // message created at time step 0
      ++informed;
    }
  }

  RunResult result;
  result.n = n;

  std::vector<NodeId> edge_choice(static_cast<std::size_t>(config_.num_choices));
  std::vector<NodeId> partners(static_cast<std::size_t>(config_.num_choices));
  std::vector<NodeId> newly;

  Round t = 0;
  while (t < limits.max_rounds) {
    ++t;
    protocol.on_round_start(t);
    RoundStats round{};
    round.t = t;

    // Phase A: compute actions for nodes informed before this round.
    for (NodeId v = 0; v < n; ++v) {
      if (!topo_->is_alive(v) || informed_at_[v] == kNever) {
        action_[v] = Action::kNone;
        continue;
      }
      NodeLocalState state;
      state.informed_at = informed_at_[v];
      state.is_source = informed_at_[v] == 0;
      action_[v] = protocol.action(v, state, t);
      if (action_[v] != Action::kNone) ++round.transmitting_nodes;
    }

    // Phase B: every alive node opens channels; transmissions happen on
    // the channel according to the caller's push action and the callee's
    // pull action.
    newly.clear();
    for (NodeId v = 0; v < n; ++v) {
      if (!topo_->is_alive(v)) continue;
      const std::size_t k =
          choose_edges(v, std::span<NodeId>(edge_choice.data(),
                                            edge_choice.size()));
      for (std::size_t i = 0; i < k; ++i) partners[i] = kNoNode;
      for (std::size_t i = 0; i < k; ++i) {
        const NodeId edge_idx = edge_choice[i];
        const NodeId w = topo_->neighbor(v, edge_idx);
        partners[i] = w;
        ++round.channels_opened;
        if ((config_.failure_prob > 0.0 &&
             rng_->bernoulli(config_.failure_prob)) ||
            (failure_model_ && failure_model_(t, v, w))) {
          ++round.channels_failed;
          continue;
        }
        if (!topo_->is_alive(w)) {
          ++round.channels_failed;  // stale link during churn
          continue;
        }
        const bool push_here = does_push(action_[v]);
        const bool pull_here = does_pull(action_[w]);
        if (!push_here && !pull_here) continue;

        if (edge_ids_ != nullptr)
          edge_used_[edge_ids_->edge_of(v, edge_idx)] = 1;

        auto deliver = [&](NodeId to, NodeId from, bool is_push) {
          const MessageMeta meta = protocol.stamp(from, t);
          if (is_push)
            ++round.push_tx;
          else
            ++round.pull_tx;
          const bool first = informed_at_[to] == kNever;
          protocol.on_receive(to, meta, t, first);
          if (first) {
            informed_at_[to] = t;
            newly.push_back(to);
          }
        };
        if (push_here) deliver(w, v, /*is_push=*/true);
        if (pull_here) deliver(v, w, /*is_push=*/false);
      }
      if (config_.memory > 0)
        remember_partners(v, std::span<const NodeId>(partners.data(), k));
    }

    informed += newly.size();
    round.newly_informed = newly.size();
    round.informed = informed;

    result.push_tx += round.push_tx;
    result.pull_tx += round.pull_tx;
    result.channels_opened += round.channels_opened;
    result.channels_failed += round.channels_failed;
    if (limits.record_rounds) result.per_round.push_back(round);

    if (observer_)
      observer_(t, std::span<const Round>(informed_at_.data(), n));

    const Count alive = topo_->num_alive();
    // Completion: every alive node informed. (During churn, `informed`
    // counts informed-and-alive lazily; recompute only when plausible.)
    Count informed_alive = informed;
    if (hook_) {
      informed_alive = 0;
      for (NodeId v = 0; v < n; ++v)
        if (topo_->is_alive(v) && informed_at_[v] != kNever) ++informed_alive;
    }
    if (result.completion_round == kNever && informed_alive >= alive)
      result.completion_round = t;

    const bool proto_done = protocol.finished(t, informed_alive, alive);
    const bool oracle_done =
        limits.stop_when_all_informed && informed_alive >= alive;
    if (proto_done || oracle_done) break;

    if (hook_) {
      hook_(t);
      const NodeId new_n = topo_->num_slots();
      RRB_REQUIRE(new_n == n, "topology slots may not change during a run");
    }
  }

  result.rounds = t;
  result.alive_at_end = topo_->num_alive();
  Count informed_alive = 0;
  for (NodeId v = 0; v < n; ++v)
    if (topo_->is_alive(v) && informed_at_[v] != kNever) ++informed_alive;
  result.final_informed = informed_alive;
  result.all_informed = informed_alive >= result.alive_at_end;
  return result;
}

}  // namespace rrb
