#include "rrb/phonecall/edge_ids.hpp"

#include <algorithm>

#include "rrb/common/check.hpp"

namespace rrb {

EdgeIdMap build_edge_id_map(const Graph& g) {
  const NodeId n = g.num_nodes();
  EdgeIdMap map;
  map.slot_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v)
    map.slot_offsets[v + 1] = map.slot_offsets[v] + g.degree(v);
  map.slot_to_edge.assign(map.slot_offsets[n], static_cast<Count>(-1));

  Count next_edge = 0;
  // Adjacency lists are sorted, so equal neighbours form runs. For a pair
  // (v, w) with v < w the run lengths in both lists are equal and we assign
  // matching ids positionally; for a self-loop each edge occupies two
  // consecutive slots of the same run.
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = g.neighbors(v);
    std::size_t i = 0;
    while (i < adj.size()) {
      std::size_t j = i;
      while (j < adj.size() && adj[j] == adj[i]) ++j;
      const NodeId w = adj[i];
      const std::size_t run = j - i;
      if (w == v) {
        RRB_ASSERT(run % 2 == 0, "self-loop slots must come in pairs");
        for (std::size_t r = 0; r < run; r += 2) {
          const Count id = next_edge++;
          map.slot_to_edge[map.slot_offsets[v] + i + r] = id;
          map.slot_to_edge[map.slot_offsets[v] + i + r + 1] = id;
        }
      } else if (w > v) {
        // Locate the matching run of v inside w's list.
        const auto wadj = g.neighbors(w);
        const auto first =
            std::lower_bound(wadj.begin(), wadj.end(), v) - wadj.begin();
        for (std::size_t r = 0; r < run; ++r) {
          const Count id = next_edge++;
          map.slot_to_edge[map.slot_offsets[v] + i + r] = id;
          map.slot_to_edge[map.slot_offsets[w] + static_cast<Count>(first) +
                           r] = id;
        }
      }
      i = j;
    }
  }
  map.num_edges = next_edge;
  RRB_ASSERT(next_edge == g.num_edges(), "edge id count mismatch");
  for (const Count id : map.slot_to_edge)
    RRB_ASSERT(id != static_cast<Count>(-1), "unassigned slot");
  return map;
}

}  // namespace rrb
