#include "rrb/phonecall/protocol.hpp"

namespace rrb {

BroadcastProtocol::~BroadcastProtocol() = default;

void BroadcastProtocol::reset(NodeId /*n*/) {}

void BroadcastProtocol::on_round_start(Round /*t*/) {}

MessageMeta BroadcastProtocol::stamp(NodeId /*v*/, Round /*t*/) { return {}; }

void BroadcastProtocol::on_receive(NodeId /*v*/, const MessageMeta& /*meta*/,
                                   Round /*t*/, bool /*first_time*/) {}

}  // namespace rrb
