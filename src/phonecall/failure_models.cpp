#include "rrb/phonecall/failure_models.hpp"

#include <algorithm>
#include <memory>

#include "rrb/common/check.hpp"

namespace rrb {

FailurePredicate faulty_nodes(std::vector<NodeId> faulty) {
  auto set = std::make_shared<std::unordered_set<NodeId>>(faulty.begin(),
                                                          faulty.end());
  return [set](Round /*t*/, NodeId caller, NodeId callee) {
    return set->count(caller) != 0 || set->count(callee) != 0;
  };
}

FailurePredicate bursty_outage(Round period, Round burst_len) {
  RRB_REQUIRE(period >= 1, "bursty_outage: period >= 1");
  RRB_REQUIRE(burst_len >= 0 && burst_len <= period,
              "bursty_outage: 0 <= burst_len <= period");
  return [period, burst_len](Round t, NodeId /*caller*/, NodeId /*callee*/) {
    return (t - 1) % period < burst_len;
  };
}

FailurePredicate blocked_pairs(
    std::vector<std::pair<NodeId, NodeId>> pairs) {
  auto keys = std::make_shared<std::unordered_set<std::uint64_t>>();
  for (const auto& [a, b] : pairs) {
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    keys->insert((static_cast<std::uint64_t>(lo) << 32) | hi);
  }
  return [keys](Round /*t*/, NodeId caller, NodeId callee) {
    const NodeId lo = std::min(caller, callee);
    const NodeId hi = std::max(caller, callee);
    return keys->count((static_cast<std::uint64_t>(lo) << 32) | hi) != 0;
  };
}

FailurePredicate random_failures(double probability, Rng& rng) {
  RRB_REQUIRE(probability >= 0.0 && probability <= 1.0,
              "random_failures: probability out of [0,1]");
  return [probability, &rng](Round, NodeId, NodeId) {
    return rng.bernoulli(probability);
  };
}

FailurePredicate any_of(std::vector<FailurePredicate> models) {
  auto shared =
      std::make_shared<std::vector<FailurePredicate>>(std::move(models));
  return [shared](Round t, NodeId caller, NodeId callee) {
    return std::any_of(shared->begin(), shared->end(),
                       [&](const FailurePredicate& m) {
                         return m && m(t, caller, callee);
                       });
  };
}

}  // namespace rrb
