#pragma once

#include <optional>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/rng/rng.hpp"

/// \file overlay.hpp
/// A mutable peer-to-peer overlay that stays close to a random d-regular
/// graph under membership churn — the substrate the paper's introduction
/// motivates ("random topologies with small degree naturally arise in P2P
/// systems, in which overlays are generated according to a Markov
/// process"). Degrees are allowed to drift within a constant factor of d,
/// matching the paper's generalisation ("the degree of every node is
/// between d and c·d").
///
/// Satisfies the engine's Topology concept, so broadcasts run over it
/// directly while churn mutates it between rounds.

namespace rrb {

class DynamicOverlay {
 public:
  /// Build with `capacity` node slots, of which `initial_n` start alive and
  /// wired as a configuration-model random d-regular multigraph.
  DynamicOverlay(NodeId capacity, NodeId initial_n, NodeId d, Rng& rng);

  // ---- Topology concept -------------------------------------------------
  [[nodiscard]] NodeId num_slots() const {
    return static_cast<NodeId>(adj_.size());
  }
  [[nodiscard]] Count num_alive() const { return alive_list_.size(); }
  [[nodiscard]] bool is_alive(NodeId v) const { return alive_[v] != 0; }
  [[nodiscard]] NodeId degree(NodeId v) const {
    return static_cast<NodeId>(adj_[v].size());
  }
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const {
    return adj_[v][i];
  }
  /// Unchecked fast-path views used by the engine's round loop (the churn
  /// overlay's adjacency is ragged, so these match the checked accessors —
  /// provided for symmetry with Graph's CSR views).
  [[nodiscard]] NodeId degree_unchecked(NodeId v) const noexcept {
    return static_cast<NodeId>(adj_[v].size());
  }
  [[nodiscard]] NodeId neighbor_unchecked(NodeId v, NodeId i) const noexcept {
    return adj_[v][i];
  }

  // ---- Dynamics ----------------------------------------------------------
  /// A new peer joins: takes a free slot and connects to `target_degree()`
  /// distinct random alive peers. Returns the node id, or nullopt when the
  /// overlay is at capacity.
  std::optional<NodeId> join(Rng& rng);

  /// Peer v departs. Its neighbours' freed stubs are re-paired with each
  /// other at random (loops discarded, so neighbour degrees can drop by
  /// one; subsequent maintenance switches smooth this out). Returns false
  /// if v was not alive.
  bool leave(NodeId v, Rng& rng);

  /// One random 2-switch on two uniformly chosen edges (the maintenance
  /// Markov chain, cf. Cooper–Dyer–Greenhill / Mahlmann–Schindelhauer):
  /// keeps the degree sequence fixed while re-randomising the wiring.
  /// No-op when a switch would create a loop or duplicate edge.
  void switch_step(Rng& rng);

  /// Uniformly random alive node. Requires at least one alive node.
  [[nodiscard]] NodeId random_alive(Rng& rng) const;

  [[nodiscard]] NodeId target_degree() const { return d_; }

  /// Total number of undirected edges currently in the overlay.
  [[nodiscard]] Count num_edges() const;

  /// Immutable snapshot of the alive subgraph *preserving node ids* (dead
  /// slots become isolated vertices). For structural analysis in tests.
  [[nodiscard]] Graph snapshot() const;

  /// Internal consistency check (symmetry of adjacency, alive bookkeeping);
  /// used by tests and cheap enough for periodic assertions.
  void check_invariants() const;

 private:
  void make_alive(NodeId v);
  void make_dead(NodeId v);
  /// Remove one occurrence of `value` from adj_[v]; returns false if absent.
  bool remove_adjacency(NodeId v, NodeId value);
  void add_edge(NodeId u, NodeId v);
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  std::vector<std::vector<NodeId>> adj_;
  std::vector<std::uint8_t> alive_;
  std::vector<NodeId> alive_list_;  // compact list of alive ids
  std::vector<NodeId> alive_pos_;   // index of v in alive_list_, or kNoNode
  std::vector<NodeId> free_slots_;
  NodeId d_;
};

}  // namespace rrb
