#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/protocols/four_choice.hpp"
#include "rrb/rng/rng.hpp"

/// \file replicated_db.hpp
/// The application from the paper's first paragraph: maintenance of a
/// replicated database, where updates made at individual nodes must reach
/// every replica. Each update is broadcast with Algorithm 1's schedule
/// (independently, keyed by its own age), and per §3 "the node combines to
/// a single message all messages which should be transmitted via push
/// (pull), and forwards this combined message over all open outgoing
/// (incoming) channels" — so one channel send can carry many updates, and
/// we count both entry transmissions (the paper's metric, per message) and
/// combined channel messages (what actually crosses the wire).

namespace rrb {

using UpdateId = std::uint32_t;

struct ReplicatedDbConfig {
  double alpha = 1.5;    ///< Algorithm 1 constant
  int num_choices = 4;   ///< channels per node per round
  std::uint64_t seed = 0xdb5eed;
};

class ReplicatedDb {
 public:
  ReplicatedDb(const Graph& graph, ReplicatedDbConfig config);

  /// Write (key, value) at `origin`; the update starts gossiping next
  /// round. Returns the update's id.
  UpdateId put(NodeId origin, std::string key, std::string value);

  /// Execute one synchronous gossip round for all in-flight updates.
  void step();

  /// Rounds executed so far.
  [[nodiscard]] Round round() const { return round_; }

  /// True iff update `u` has reached every node.
  [[nodiscard]] bool delivered_everywhere(UpdateId u) const;

  /// True iff every injected update has reached every node.
  [[nodiscard]] bool converged() const;

  /// Run step() until converged and every update's schedule has elapsed, or
  /// `max_rounds` elapse. Returns true on convergence.
  bool run_to_convergence(Round max_rounds);

  /// The value of `key` at node v (nullptr if absent). Conflicting writes
  /// resolve last-writer-wins by (injection round, update id).
  [[nodiscard]] const std::string* get(NodeId v, const std::string& key) const;

  /// Number of replicas currently holding update u.
  [[nodiscard]] Count replicas(UpdateId u) const;

  // Accounting.
  [[nodiscard]] Count entry_transmissions() const { return entry_tx_; }
  [[nodiscard]] Count channel_messages() const { return channel_msgs_; }
  [[nodiscard]] Count channels_opened() const { return channels_; }
  [[nodiscard]] std::size_t num_updates() const { return updates_.size(); }

 private:
  struct Update {
    NodeId origin = 0;
    Round injected_at = 0;        ///< round the update was created
    std::string key;
    std::string value;
    PhaseSchedule schedule;       ///< Algorithm 1 schedule, ages relative
                                  ///< to injected_at
    std::vector<Round> informed_at;  ///< per node, kNever = missing
    Count replica_count = 0;
  };

  struct VersionedValue {
    Round version_round = kNever;
    UpdateId version_id = 0;
    std::string value;
  };

  /// Algorithm 1 action of node v for update u at engine round t.
  [[nodiscard]] Action update_action(const Update& u, NodeId v,
                                     Round t) const;

  /// Whether update u is still inside its gossip horizon at round t.
  [[nodiscard]] bool in_flight(const Update& u, Round t) const;

  void deliver(Update& u, UpdateId id, NodeId to, Round t);

  const Graph* graph_;
  ReplicatedDbConfig config_;
  Rng rng_;
  Round round_ = 0;
  std::vector<Update> updates_;
  std::vector<std::unordered_map<std::string, VersionedValue>> stores_;
  Count entry_tx_ = 0;
  Count channel_msgs_ = 0;
  Count channels_ = 0;
};

}  // namespace rrb
