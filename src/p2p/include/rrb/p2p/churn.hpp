#pragma once

#include <functional>

#include "rrb/common/types.hpp"
#include "rrb/p2p/overlay.hpp"
#include "rrb/rng/rng.hpp"

/// \file churn.hpp
/// Membership churn driver: applied between broadcast rounds (as the
/// engine's RoundHook) it performs an expected number of joins and leaves
/// per round plus a few maintenance switches, reproducing the paper's
/// "robust against limited changes in the size of the network" setting.

namespace rrb {

struct ChurnConfig {
  double joins_per_round = 0.0;   ///< expected arrivals per round
  double leaves_per_round = 0.0;  ///< expected departures per round
  int switches_per_round = 0;     ///< maintenance 2-switches per round
  Count min_alive = 8;            ///< never shrink below this
};

class ChurnDriver {
 public:
  /// Invoked with the slot id of every successful join. Wire this to
  /// PhoneCallEngine::reset_node so that a newcomer reusing a departed
  /// peer's slot does not inherit its informed status.
  using JoinCallback = std::function<void(NodeId)>;

  ChurnDriver(DynamicOverlay& overlay, ChurnConfig config, Rng& rng)
      : overlay_(&overlay), config_(config), rng_(&rng) {}

  void set_join_callback(JoinCallback callback) {
    on_join_ = std::move(callback);
  }

  /// Perform one round's worth of churn. Usable directly as a RoundHook:
  /// `engine.set_round_hook([&](Round t) { driver.apply(t); });`
  void apply(Round t);

  [[nodiscard]] Count total_joins() const { return joins_; }
  [[nodiscard]] Count total_leaves() const { return leaves_; }

 private:
  /// Number of events this round for an expected rate r: floor(r) plus a
  /// Bernoulli on the fractional part.
  [[nodiscard]] int events_for_rate(double rate);

  DynamicOverlay* overlay_;
  ChurnConfig config_;
  Rng* rng_;
  JoinCallback on_join_;
  Count joins_ = 0;
  Count leaves_ = 0;
};

}  // namespace rrb
