#pragma once

#include <functional>

#include "rrb/common/types.hpp"
#include "rrb/p2p/overlay.hpp"
#include "rrb/rng/rng.hpp"

/// \file churn.hpp
/// Membership churn driver: applied between broadcast rounds (as the
/// engine's RoundHook) it performs an expected number of joins and leaves
/// per round plus a few maintenance switches, reproducing the paper's
/// "robust against limited changes in the size of the network" setting.

namespace rrb {

struct ChurnConfig {
  double joins_per_round = 0.0;   ///< expected arrivals per round
  double leaves_per_round = 0.0;  ///< expected departures per round
  int switches_per_round = 0;     ///< maintenance 2-switches per round
  Count min_alive = 8;            ///< never shrink below this
};

class ChurnDriver {
 public:
  /// Invoked with the slot id of every successful join. Wire this to
  /// PhoneCallEngine::reset_node so that a newcomer reusing a departed
  /// peer's slot does not inherit its informed status.
  using JoinCallback = std::function<void(NodeId)>;

  /// Invoked with the slot id of every successful departure, after the
  /// overlay has marked the node dead. Wire this to
  /// PhoneCallEngine::notify_node_died so the engine's incremental
  /// informed-alive count stays exact without an O(n) rescan per round.
  using LeaveCallback = std::function<void(NodeId)>;

  ChurnDriver(DynamicOverlay& overlay, ChurnConfig config, Rng& rng)
      : overlay_(&overlay), config_(config), rng_(&rng) {}

  void set_join_callback(JoinCallback callback) {
    on_join_ = std::move(callback);
  }

  void set_leave_callback(LeaveCallback callback) {
    on_leave_ = std::move(callback);
  }

  /// Perform one round's worth of churn. When driving a PhoneCallEngine,
  /// wire with attach_churn() below: besides installing this as the round
  /// hook it connects BOTH callbacks, which the engine's incremental
  /// informed-alive accounting requires — a hook wired without the leave
  /// callback lets departed informed peers keep counting towards
  /// completion. Call apply() directly only outside an engine run (e.g.
  /// warming an overlay before a broadcast).
  void apply(Round t);

  [[nodiscard]] Count total_joins() const { return joins_; }
  [[nodiscard]] Count total_leaves() const { return leaves_; }

 private:
  /// Number of events this round for an expected rate r: floor(r) plus a
  /// Bernoulli on the fractional part.
  [[nodiscard]] int events_for_rate(double rate);

  DynamicOverlay* overlay_;
  ChurnConfig config_;
  Rng* rng_;
  JoinCallback on_join_;
  LeaveCallback on_leave_;
  Count joins_ = 0;
  Count leaves_ = 0;
};

/// Wire a churn driver into an engine: the driver runs as the engine's
/// round hook, every join resets the reused slot, and every departure is
/// reported so the engine's incremental informed-alive bookkeeping stays
/// exact. This is the canonical churn setup; compose the pieces by hand
/// only when an experiment needs extra work inside the hook.
template <typename EngineT>
void attach_churn(EngineT& engine, ChurnDriver& driver) {
  driver.set_join_callback([&engine](NodeId v) { engine.reset_node(v); });
  driver.set_leave_callback(
      [&engine](NodeId v) { engine.notify_node_died(v); });
  engine.set_round_hook([&driver](Round t) { driver.apply(t); });
}

}  // namespace rrb
