#include "rrb/p2p/churn.hpp"

#include <cmath>

namespace rrb {

int ChurnDriver::events_for_rate(double rate) {
  const double whole = std::floor(rate);
  const double frac = rate - whole;
  int events = static_cast<int>(whole);
  if (frac > 0.0 && rng_->bernoulli(frac)) ++events;
  return events;
}

void ChurnDriver::apply(Round /*t*/) {
  const int joins = events_for_rate(config_.joins_per_round);
  for (int i = 0; i < joins; ++i) {
    const auto id = overlay_->join(*rng_);
    if (id.has_value()) {
      ++joins_;
      if (on_join_) on_join_(*id);
    }
  }

  const int leaves = events_for_rate(config_.leaves_per_round);
  for (int i = 0; i < leaves; ++i) {
    if (overlay_->num_alive() <= config_.min_alive) break;
    const NodeId victim = overlay_->random_alive(*rng_);
    if (overlay_->leave(victim, *rng_)) {
      ++leaves_;
      if (on_leave_) on_leave_(victim);
    }
  }

  for (int i = 0; i < config_.switches_per_round; ++i)
    overlay_->switch_step(*rng_);
}

}  // namespace rrb
