#include "rrb/p2p/overlay.hpp"

#include <algorithm>

#include "rrb/common/check.hpp"
#include "rrb/graph/generators.hpp"

namespace rrb {

DynamicOverlay::DynamicOverlay(NodeId capacity, NodeId initial_n, NodeId d,
                               Rng& rng)
    : adj_(capacity),
      alive_(capacity, 0),
      alive_pos_(capacity, kNoNode),
      d_(d) {
  RRB_REQUIRE(initial_n <= capacity, "initial_n exceeds capacity");
  RRB_REQUIRE(initial_n >= d + 1, "need initial_n >= d+1");
  RRB_REQUIRE(d >= 2, "overlay degree must be >= 2");

  // Free slots are the tail ones; hand them out in increasing order.
  for (NodeId v = capacity; v-- > initial_n;) free_slots_.push_back(v);
  for (NodeId v = 0; v < initial_n; ++v) make_alive(v);

  // Wire the initial membership as a configuration-model d-regular graph
  // (loops dropped — they carry no connectivity value in an overlay).
  const NodeId dd = (static_cast<std::uint64_t>(initial_n) * d) % 2 == 0
                        ? d
                        : d + 1;
  const Graph g = configuration_model(initial_n, dd, rng);
  for (const Edge& e : g.edge_list())
    if (e.u != e.v) add_edge(e.u, e.v);
}

void DynamicOverlay::make_alive(NodeId v) {
  RRB_ASSERT(alive_[v] == 0, "make_alive on alive node");
  alive_[v] = 1;
  alive_pos_[v] = static_cast<NodeId>(alive_list_.size());
  alive_list_.push_back(v);
}

void DynamicOverlay::make_dead(NodeId v) {
  RRB_ASSERT(alive_[v] == 1, "make_dead on dead node");
  alive_[v] = 0;
  const NodeId pos = alive_pos_[v];
  const NodeId last = alive_list_.back();
  alive_list_[pos] = last;
  alive_pos_[last] = pos;
  alive_list_.pop_back();
  alive_pos_[v] = kNoNode;
}

bool DynamicOverlay::remove_adjacency(NodeId v, NodeId value) {
  auto& list = adj_[v];
  const auto it = std::find(list.begin(), list.end(), value);
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}

void DynamicOverlay::add_edge(NodeId u, NodeId v) {
  adj_[u].push_back(v);
  adj_[v].push_back(u);
}

bool DynamicOverlay::has_edge(NodeId u, NodeId v) const {
  const auto& list = adj_[u];
  return std::find(list.begin(), list.end(), v) != list.end();
}

std::optional<NodeId> DynamicOverlay::join(Rng& rng) {
  if (free_slots_.empty()) return std::nullopt;
  const NodeId v = free_slots_.back();
  free_slots_.pop_back();
  make_alive(v);

  // Connect to d distinct random alive peers (fewer if the overlay is
  // tiny). Rejection sampling over the alive list.
  const Count peers = num_alive() - 1;
  const NodeId want = static_cast<NodeId>(
      std::min<Count>(d_, peers));
  int guard = 0;
  NodeId made = 0;
  while (made < want && guard < 50 * static_cast<int>(want) + 100) {
    ++guard;
    const NodeId u = random_alive(rng);
    if (u == v || has_edge(v, u)) continue;
    add_edge(v, u);
    ++made;
  }
  return v;
}

bool DynamicOverlay::leave(NodeId v, Rng& rng) {
  if (!is_alive(v)) return false;

  // Detach v, collecting the endpoints whose stubs are freed.
  std::vector<NodeId> orphans;
  orphans.reserve(adj_[v].size());
  for (const NodeId w : adj_[v]) {
    if (w == v) continue;  // loop stubs vanish with the node
    const bool removed = remove_adjacency(w, v);
    RRB_ASSERT(removed, "asymmetric adjacency");
    orphans.push_back(w);
  }
  adj_[v].clear();
  make_dead(v);
  free_slots_.push_back(v);

  // Re-pair freed stubs at random; skip pairs that would form loops or
  // duplicate edges (slight degree drift, smoothed by switch_step).
  rng.shuffle(std::span<NodeId>(orphans));
  for (std::size_t i = 0; i + 1 < orphans.size(); i += 2) {
    const NodeId a = orphans[i];
    const NodeId b = orphans[i + 1];
    if (a == b || has_edge(a, b)) continue;
    add_edge(a, b);
  }
  return true;
}

void DynamicOverlay::switch_step(Rng& rng) {
  if (alive_list_.size() < 4) return;
  // Pick two random half-edges by (alive node, slot); accept only when the
  // 2-switch keeps the multigraph simple.
  const NodeId u = random_alive(rng);
  const NodeId x = random_alive(rng);
  if (u == x || adj_[u].empty() || adj_[x].empty()) return;
  const NodeId w =
      adj_[u][static_cast<std::size_t>(rng.uniform_u64(adj_[u].size()))];
  const NodeId y =
      adj_[x][static_cast<std::size_t>(rng.uniform_u64(adj_[x].size()))];
  // Proposed: (u,w),(x,y) -> (u,y),(x,w).
  if (u == y || x == w || w == y) return;
  if (has_edge(u, y) || has_edge(x, w)) return;
  // The four endpoints are pairwise compatible; adjacency symmetry makes
  // all four removals succeed together.
  RRB_ASSERT(remove_adjacency(u, w) && remove_adjacency(w, u) &&
                 remove_adjacency(x, y) && remove_adjacency(y, x),
             "asymmetric adjacency in switch_step");
  add_edge(u, y);
  add_edge(x, w);
}

NodeId DynamicOverlay::random_alive(Rng& rng) const {
  RRB_REQUIRE(!alive_list_.empty(), "no alive nodes");
  return alive_list_[static_cast<std::size_t>(
      rng.uniform_u64(alive_list_.size()))];
}

Count DynamicOverlay::num_edges() const {
  Count stubs = 0;
  for (const NodeId v : alive_list_) stubs += adj_[v].size();
  return stubs / 2;
}

Graph DynamicOverlay::snapshot() const {
  GraphBuilder builder(num_slots());
  for (const NodeId v : alive_list_)
    for (const NodeId w : adj_[v])
      if (v < w || (v == w)) builder.add_edge(v, w);
  return builder.build();
}

void DynamicOverlay::check_invariants() const {
  const NodeId n = num_slots();
  Count listed = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (alive_[v]) {
      ++listed;
      RRB_ASSERT(alive_pos_[v] != kNoNode && alive_list_[alive_pos_[v]] == v,
                 "alive index broken");
      for (const NodeId w : adj_[v]) {
        RRB_ASSERT(alive_[w] != 0, "edge to dead node");
        const auto& back = adj_[w];
        RRB_ASSERT(std::count(back.begin(), back.end(), v) >=
                       std::count(adj_[v].begin(), adj_[v].end(), w) &&
                   std::count(back.begin(), back.end(), v) ==
                       std::count(adj_[v].begin(), adj_[v].end(), w),
                   "asymmetric adjacency");
      }
    } else {
      RRB_ASSERT(adj_[v].empty(), "dead node with edges");
      RRB_ASSERT(alive_pos_[v] == kNoNode, "dead node in alive index");
    }
  }
  RRB_ASSERT(listed == alive_list_.size(), "alive count mismatch");
}

}  // namespace rrb
