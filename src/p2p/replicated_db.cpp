#include "rrb/p2p/replicated_db.hpp"

#include <algorithm>
#include <array>

#include "rrb/common/check.hpp"

namespace rrb {

ReplicatedDb::ReplicatedDb(const Graph& graph, ReplicatedDbConfig config)
    : graph_(&graph),
      config_(config),
      rng_(config.seed),
      stores_(graph.num_nodes()) {
  RRB_REQUIRE(graph.num_nodes() >= 2, "replicated db needs >= 2 nodes");
  RRB_REQUIRE(config_.num_choices >= 1, "num_choices >= 1");
}

UpdateId ReplicatedDb::put(NodeId origin, std::string key, std::string value) {
  RRB_REQUIRE(origin < graph_->num_nodes(), "origin out of range");
  Update u;
  u.origin = origin;
  u.injected_at = round_;
  u.key = std::move(key);
  u.value = std::move(value);
  FourChoiceConfig fc;
  fc.alpha = config_.alpha;
  fc.n_estimate = graph_->num_nodes();
  u.schedule = make_schedule_small_d(fc);
  u.informed_at.assign(graph_->num_nodes(), kNever);
  u.informed_at[origin] = round_;  // local age 0 at the origin
  u.replica_count = 1;

  const auto id = static_cast<UpdateId>(updates_.size());
  updates_.push_back(std::move(u));
  // Apply the write locally.
  auto& entry = stores_[origin][updates_.back().key];
  if (entry.version_round < round_ ||
      (entry.version_round == round_ && entry.version_id <= id)) {
    entry.version_round = round_;
    entry.version_id = id;
    entry.value = updates_.back().value;
  }
  return id;
}

Action ReplicatedDb::update_action(const Update& u, NodeId v, Round t) const {
  const Round informed = u.informed_at[v];
  if (informed == kNever) return Action::kNone;
  const Round age = t - u.injected_at;          // update age this round
  const Round informed_age = informed - u.injected_at;
  if (informed >= t) return Action::kNone;      // learned this very round
  const PhaseSchedule& s = u.schedule;
  if (age <= s.phase1_end)
    return informed_age == age - 1 ? Action::kPush : Action::kNone;
  if (age <= s.phase2_end) return Action::kPush;
  if (age <= s.phase3_end) return Action::kPull;
  if (age <= s.phase4_end)
    return informed_age > s.phase2_end ? Action::kPush : Action::kNone;
  return Action::kNone;
}

bool ReplicatedDb::in_flight(const Update& u, Round t) const {
  return t - u.injected_at <= u.schedule.phase4_end;
}

void ReplicatedDb::deliver(Update& u, UpdateId id, NodeId to, Round t) {
  ++entry_tx_;
  if (u.informed_at[to] != kNever) return;  // duplicate copy
  u.informed_at[to] = t;
  ++u.replica_count;
  auto& entry = stores_[to][u.key];
  if (entry.version_round < u.injected_at ||
      (entry.version_round == u.injected_at && entry.version_id <= id)) {
    entry.version_round = u.injected_at;
    entry.version_id = id;
    entry.value = u.value;
  }
}

void ReplicatedDb::step() {
  const Round t = ++round_;
  const NodeId n = graph_->num_nodes();

  // In-flight update ids (all others are silent this round).
  std::vector<UpdateId> flying;
  for (UpdateId id = 0; id < updates_.size(); ++id)
    if (in_flight(updates_[id], t)) flying.push_back(id);
  if (flying.empty()) return;

  std::array<std::uint32_t, 64> choice_buf{};
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = graph_->degree(v);
    if (d == 0) continue;
    const auto k = static_cast<std::size_t>(
        std::min<NodeId>(static_cast<NodeId>(config_.num_choices), d));
    rng_.sample_distinct_small(d, k,
                               std::span<std::uint32_t>(choice_buf.data(), k));
    for (std::size_t i = 0; i < k; ++i) {
      const NodeId w = graph_->neighbor(v, choice_buf[i]);
      ++channels_;
      if (w == v) continue;  // self-loop stub: nothing to exchange
      // Combine pushes of v and pulls of w over this channel.
      bool pushed_any = false;
      bool pulled_any = false;
      for (const UpdateId id : flying) {
        Update& u = updates_[id];
        const Action av = update_action(u, v, t);
        if (does_push(av)) {
          deliver(u, id, w, t);
          pushed_any = true;
        }
        const Action aw = update_action(u, w, t);
        if (does_pull(aw)) {
          deliver(u, id, v, t);
          pulled_any = true;
        }
      }
      if (pushed_any) ++channel_msgs_;
      if (pulled_any) ++channel_msgs_;
    }
  }
}

bool ReplicatedDb::delivered_everywhere(UpdateId u) const {
  RRB_REQUIRE(u < updates_.size(), "bad update id");
  return updates_[u].replica_count == graph_->num_nodes();
}

bool ReplicatedDb::converged() const {
  return std::all_of(updates_.begin(), updates_.end(), [&](const Update& u) {
    return u.replica_count == graph_->num_nodes();
  });
}

bool ReplicatedDb::run_to_convergence(Round max_rounds) {
  const Round limit = round_ + max_rounds;
  while (round_ < limit && !converged()) step();
  // Let remaining schedules play out so transmission accounting matches
  // what the fixed-horizon algorithm actually costs.
  while (round_ < limit) {
    bool any_flying = false;
    for (const Update& u : updates_)
      if (in_flight(u, round_ + 1)) {
        any_flying = true;
        break;
      }
    if (!any_flying) break;
    step();
  }
  return converged();
}

const std::string* ReplicatedDb::get(NodeId v, const std::string& key) const {
  RRB_REQUIRE(v < stores_.size(), "node out of range");
  const auto it = stores_[v].find(key);
  return it == stores_[v].end() ? nullptr : &it->second.value;
}

Count ReplicatedDb::replicas(UpdateId u) const {
  RRB_REQUIRE(u < updates_.size(), "bad update id");
  return updates_[u].replica_count;
}

}  // namespace rrb
