#include "rrb/protocols/sequentialised.hpp"

namespace rrb {

SequentialisedFourChoice::SequentialisedFourChoice(
    const FourChoiceConfig& cfg)
    : schedule_(make_schedule_small_d(cfg)) {}

Action SequentialisedFourChoice::action(NodeId /*v*/,
                                        const NodeLocalState& state,
                                        Round t) {
  const Round p = parallel_round(t);
  // Parallel round in which this node was informed (0 for the source, which
  // is informed at sequential step 0).
  const Round q =
      state.informed_at == 0 ? 0 : parallel_round(state.informed_at);

  if (p <= schedule_.phase1_end)
    return q == p - 1 ? Action::kPush : Action::kNone;
  if (p <= schedule_.phase2_end) return Action::kPush;
  if (p <= schedule_.phase3_end) return Action::kPull;
  if (p <= schedule_.phase4_end)
    return q > schedule_.phase2_end ? Action::kPush : Action::kNone;
  return Action::kNone;
}

bool SequentialisedFourChoice::finished(Round t, Count /*informed*/,
                                        Count /*alive*/) const {
  return t >= 4 * schedule_.phase4_end;
}

}  // namespace rrb
