#include "rrb/protocols/baselines.hpp"

#include <cmath>

#include "rrb/common/check.hpp"
#include "rrb/common/math.hpp"

namespace rrb {

FixedHorizonPush::FixedHorizonPush(Round horizon) : horizon_(horizon) {
  RRB_REQUIRE(horizon >= 1, "horizon must be >= 1");
}

Round make_push_horizon(std::uint64_t n_estimate, int degree, double safety) {
  RRB_REQUIRE(n_estimate >= 2, "n_estimate must be >= 2");
  RRB_REQUIRE(safety > 0.0, "safety must be positive");
  return static_cast<Round>(
      std::ceil(safety * push_constant_cd(degree) * log_n(n_estimate)));
}

}  // namespace rrb
