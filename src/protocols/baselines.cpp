#include "rrb/protocols/baselines.hpp"

#include <cmath>

#include "rrb/common/check.hpp"
#include "rrb/common/math.hpp"

namespace rrb {

Action PushProtocol::action(NodeId /*v*/, const NodeLocalState& /*state*/,
                            Round /*t*/) {
  return Action::kPush;
}

bool PushProtocol::finished(Round /*t*/, Count informed, Count alive) const {
  return informed >= alive;
}

Action PullProtocol::action(NodeId /*v*/, const NodeLocalState& /*state*/,
                            Round /*t*/) {
  return Action::kPull;
}

bool PullProtocol::finished(Round /*t*/, Count informed, Count alive) const {
  return informed >= alive;
}

Action PushPullProtocol::action(NodeId /*v*/, const NodeLocalState& /*state*/,
                                Round /*t*/) {
  return Action::kPushPull;
}

bool PushPullProtocol::finished(Round /*t*/, Count informed,
                                Count alive) const {
  return informed >= alive;
}

FixedHorizonPush::FixedHorizonPush(Round horizon) : horizon_(horizon) {
  RRB_REQUIRE(horizon >= 1, "horizon must be >= 1");
}

Action FixedHorizonPush::action(NodeId /*v*/, const NodeLocalState& /*state*/,
                                Round t) {
  return t <= horizon_ ? Action::kPush : Action::kNone;
}

bool FixedHorizonPush::finished(Round t, Count /*informed*/,
                                Count /*alive*/) const {
  return t >= horizon_;
}

Round make_push_horizon(std::uint64_t n_estimate, int degree, double safety) {
  RRB_REQUIRE(n_estimate >= 2, "n_estimate must be >= 2");
  RRB_REQUIRE(safety > 0.0, "safety must be positive");
  return static_cast<Round>(
      std::ceil(safety * push_constant_cd(degree) * log_n(n_estimate)));
}

}  // namespace rrb
