#include "rrb/protocols/four_choice.hpp"

#include <cmath>

#include "rrb/common/check.hpp"
#include "rrb/common/math.hpp"

namespace rrb {

namespace {

/// log2 with the same clamping convention as common/math (n̂ >= 2, and the
/// inner log is taken of max(log2 n̂, 2) so that log log never vanishes).
[[nodiscard]] double lg(std::uint64_t n) {
  return std::log2(static_cast<double>(n < 2 ? 2 : n));
}

[[nodiscard]] double lglg(std::uint64_t n) {
  const double l = lg(n);
  return std::log2(l < 2.0 ? 2.0 : l);
}

}  // namespace

PhaseSchedule make_schedule_small_d(const FourChoiceConfig& cfg) {
  RRB_REQUIRE(cfg.n_estimate >= 2, "n_estimate must be >= 2");
  RRB_REQUIRE(cfg.alpha > 0.0, "alpha must be positive");
  const double a = cfg.alpha;
  const double l = lg(cfg.n_estimate);
  const double ll = lglg(cfg.n_estimate);
  PhaseSchedule s;
  s.phase1_end = static_cast<Round>(std::ceil(a * l));
  s.phase2_end = static_cast<Round>(std::ceil(a * (l + ll)));
  s.phase3_end = s.phase2_end + 1;
  s.phase4_end = static_cast<Round>(2 * std::ceil(a * l) + std::ceil(a * ll));
  // The schedule must be monotone even for tiny n̂ where the ceilings bite.
  if (s.phase2_end <= s.phase1_end) s.phase2_end = s.phase1_end + 1;
  if (s.phase3_end <= s.phase2_end) s.phase3_end = s.phase2_end + 1;
  if (s.phase4_end <= s.phase3_end) s.phase4_end = s.phase3_end + 1;
  return s;
}

PhaseSchedule make_schedule_large_d(const FourChoiceConfig& cfg) {
  RRB_REQUIRE(cfg.n_estimate >= 2, "n_estimate must be >= 2");
  RRB_REQUIRE(cfg.alpha > 0.0, "alpha must be positive");
  const double a = cfg.alpha;
  const double l = lg(cfg.n_estimate);
  const double ll = lglg(cfg.n_estimate);
  PhaseSchedule s;
  s.phase1_end = static_cast<Round>(std::ceil(a * l));
  s.phase2_end = static_cast<Round>(std::ceil(a * (l + ll)));
  s.phase3_end = static_cast<Round>(std::ceil(a * l + 2.0 * a * ll));
  if (s.phase2_end <= s.phase1_end) s.phase2_end = s.phase1_end + 1;
  if (s.phase3_end <= s.phase2_end) s.phase3_end = s.phase2_end + 1;
  s.phase4_end = s.phase3_end;
  return s;
}

FourChoiceBroadcast::FourChoiceBroadcast(const FourChoiceConfig& cfg)
    : schedule_(make_schedule_small_d(cfg)) {}

int FourChoiceBroadcast::phase_of(Round t) const {
  if (t <= schedule_.phase1_end) return 1;
  if (t <= schedule_.phase2_end) return 2;
  if (t <= schedule_.phase3_end) return 3;
  if (t <= schedule_.phase4_end) return 4;
  return 0;
}

Action FourChoiceBroadcast::action(NodeId /*v*/, const NodeLocalState& state,
                                   Round t) {
  switch (phase_of(t)) {
    case 1:
      // "if the message is created or received for the first time in the
      // previous step then push" — the source (informed_at == 0) pushes in
      // round 1; everyone else pushes exactly once, right after receipt.
      return state.informed_at == t - 1 ? Action::kPush : Action::kNone;
    case 2:
      return Action::kPush;
    case 3:
      return Action::kPull;
    case 4:
      // Nodes first informed in phase 3 or 4 are `active` from the round
      // after receipt; active nodes push for the rest of the phase.
      return state.informed_at > schedule_.phase2_end ? Action::kPush
                                                      : Action::kNone;
    default:
      return Action::kNone;
  }
}

bool FourChoiceBroadcast::finished(Round t, Count /*informed*/,
                                   Count /*alive*/) const {
  return t >= schedule_.phase4_end;
}

FourChoiceLargeDegree::FourChoiceLargeDegree(const FourChoiceConfig& cfg)
    : schedule_(make_schedule_large_d(cfg)) {}

int FourChoiceLargeDegree::phase_of(Round t) const {
  if (t <= schedule_.phase1_end) return 1;
  if (t <= schedule_.phase2_end) return 2;
  if (t <= schedule_.phase3_end) return 3;
  return 0;
}

Action FourChoiceLargeDegree::action(NodeId /*v*/,
                                     const NodeLocalState& state, Round t) {
  switch (phase_of(t)) {
    case 1:
      return state.informed_at == t - 1 ? Action::kPush : Action::kNone;
    case 2:
      return Action::kPush;
    case 3:
      return Action::kPull;
    default:
      return Action::kNone;
  }
}

bool FourChoiceLargeDegree::finished(Round t, Count /*informed*/,
                                     Count /*alive*/) const {
  return t >= schedule_.phase3_end;
}

bool four_choice_uses_large_degree(const FourChoiceConfig& cfg,
                                   NodeId degree) {
  const double lg_n = std::log2(static_cast<double>(
      cfg.n_estimate < 4 ? 4 : cfg.n_estimate));
  const double lglg_n = std::log2(lg_n < 2.0 ? 2.0 : lg_n);
  return static_cast<double>(degree) >= cfg.delta * lglg_n;
}

std::unique_ptr<BroadcastProtocol> make_four_choice_protocol(
    const FourChoiceConfig& cfg, NodeId degree) {
  if (four_choice_uses_large_degree(cfg, degree))
    return make_protocol<FourChoiceLargeDegree>(cfg);
  return make_protocol<FourChoiceBroadcast>(cfg);
}

}  // namespace rrb
