#include "rrb/protocols/throttled.hpp"

#include <cmath>

#include "rrb/common/check.hpp"

namespace rrb {

ThrottledPushPull::ThrottledPushPull(const ThrottledConfig& cfg) {
  RRB_REQUIRE(cfg.n_estimate >= 2, "n_estimate must be >= 2");
  RRB_REQUIRE(cfg.degree >= 2, "degree must be >= 2");
  RRB_REQUIRE(cfg.c1 > 0.0 && cfg.c2 >= 0.0, "bad multipliers");
  const double lg_n =
      std::log2(static_cast<double>(cfg.n_estimate < 4 ? 4 : cfg.n_estimate));
  const double lg_d = std::log2(static_cast<double>(cfg.degree));
  const double lglg_n = std::log2(lg_n < 2.0 ? 2.0 : lg_n);
  tau_ = static_cast<Round>(std::ceil(cfg.c1 * lg_n / lg_d) +
                            std::ceil(cfg.c2 * lglg_n));
  RRB_ASSERT(tau_ >= 1, "degenerate throttle window");
}

void ThrottledPushPull::on_round_start(Round /*t*/) {
  active_this_round_ = 0;
}

Action ThrottledPushPull::action(NodeId /*v*/, const NodeLocalState& state,
                                 Round t) {
  if (t - state.informed_at > tau_) return Action::kNone;
  ++active_this_round_;
  return Action::kPushPull;
}

bool ThrottledPushPull::finished(Round /*t*/, Count informed,
                                 Count /*alive*/) const {
  // Quiescence: once every informed node has aged past tau, nothing can
  // ever be transmitted again.
  return informed > 0 && active_this_round_ == 0;
}

}  // namespace rrb
