#pragma once

#include <cstdint>

#include "rrb/phonecall/protocol.hpp"

/// \file throttled.hpp
/// Age-throttled push&pull in the *classical* (single-choice) phone call
/// model, in the spirit of Elsässer (SPAA'06, the paper's reference [11]):
/// a node transmits only while its copy of the message is younger than
///   tau = ceil(c1 · log n̂ / log d) + ceil(c2 · log log n̂)
/// rounds. Total transmissions are therefore at most ~ 2 n tau =
/// O(n (log n / log d + log log n)) — the upper-bound counterpart of the
/// Theorem 1 lower bound Ω(n log n / log d), reproduced in bench E3.
///
/// Strictly oblivious: the action depends only on (informed_at, t).

namespace rrb {

struct ThrottledConfig {
  std::uint64_t n_estimate = 0;  ///< n̂ (>= 2)
  std::uint32_t degree = 0;      ///< d, known to all nodes (>= 2)
  double c1 = 2.0;               ///< multiplier on log n / log d
  double c2 = 2.0;               ///< multiplier on log log n
};

class ThrottledPushPull {
 public:
  explicit ThrottledPushPull(const ThrottledConfig& cfg);

  void on_round_start(Round t);
  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state, Round t);
  [[nodiscard]] bool finished(Round t, Count informed, Count alive) const;
  [[nodiscard]] const char* name() const { return "throttled-push-pull"; }

  /// The per-node transmission window in rounds.
  [[nodiscard]] Round tau() const { return tau_; }

 private:
  Round tau_ = 0;
  Count active_this_round_ = 0;
};

}  // namespace rrb
