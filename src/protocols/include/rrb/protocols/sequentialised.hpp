#pragma once

#include "rrb/phonecall/protocol.hpp"
#include "rrb/protocols/four_choice.hpp"

/// \file sequentialised.hpp
/// The sequentialised model of §1.2, footnote 2: instead of opening four
/// channels at once, each node opens ONE channel per step, choosing i.u.r.
/// among neighbours not chosen during the last 3 steps (ChannelConfig
/// {num_choices = 1, memory = 3}). "Four steps of this sequentialised model
/// can be viewed as one step in the [four-choice] model" — so this protocol
/// maps engine step t to parallel round p = ceil(t/4) and replays Algorithm
/// 1's action for round p in each of its four sub-steps. A node informed at
/// sequential step s acts as if informed in parallel round ceil(s/4).

namespace rrb {

class SequentialisedFourChoice {
 public:
  /// cfg is interpreted exactly as for FourChoiceBroadcast; the horizon in
  /// engine steps is 4x the parallel schedule. Run with ChannelConfig
  /// {num_choices = 1, memory = 3}.
  explicit SequentialisedFourChoice(const FourChoiceConfig& cfg);

  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state, Round t);
  [[nodiscard]] bool finished(Round t, Count informed, Count alive) const;
  [[nodiscard]] const char* name() const {
    return "four-choice/sequentialised";
  }

  [[nodiscard]] const PhaseSchedule& parallel_schedule() const {
    return schedule_;
  }

  /// The parallel round a sequential step belongs to (1-based).
  [[nodiscard]] static Round parallel_round(Round t) {
    return (t + 3) / 4;
  }

 private:
  PhaseSchedule schedule_;
};

}  // namespace rrb
