#pragma once

#include <cstdint>
#include <vector>

#include "rrb/phonecall/protocol.hpp"

/// \file median_counter.hpp
/// The termination mechanism of Karp, Schindelhauer, Shenker & Vöcking
/// (FOCS'00), which the paper cites as the O(n log log n)-transmission
/// push&pull scheme for *complete* graphs. Reproduced here as the E16
/// baseline and as a general-purpose counter-based terminator.
///
/// Rules (age/median-counter scheme, simplified to its standard practical
/// form):
///  - an uninformed node that first receives the message enters state B
///    with counter ctr = 1;
///  - in state B a node push&pulls every round; at the start of each round
///    it compares its counter with the counters received in the previous
///    round: if the median of received counters is >= its own, it
///    increments ctr;
///  - when ctr reaches ctr_max (Θ(log log n)) the node enters state C and
///    push&pulls for final_rounds more rounds, then goes quiet (state D);
///  - a hard deadline of max_age rounds after a node's first receipt
///    bounds the running time (the Monte Carlo guarantee).

namespace rrb {

struct MedianCounterConfig {
  std::uint64_t n_estimate = 0;  ///< n̂ used to size the counters
  double ctr_multiplier = 1.0;   ///< ctr_max = ceil(mult*log2 log2 n̂) + 2
  double final_multiplier = 1.0; ///< final_rounds = ceil(mult*log2 log2 n̂)+1
  double max_age_multiplier = 6.0;  ///< deadline = ceil(mult * log2 n̂)
};

class MedianCounterProtocol {
 public:
  explicit MedianCounterProtocol(const MedianCounterConfig& cfg);

  void reset(NodeId n);
  void on_round_start(Round t);
  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state, Round t);
  [[nodiscard]] MessageMeta stamp(NodeId v, Round t);
  void on_receive(NodeId v, const MessageMeta& meta, Round t,
                  bool first_time);
  [[nodiscard]] bool finished(Round t, Count informed, Count alive) const;
  [[nodiscard]] const char* name() const { return "median-counter"; }

  [[nodiscard]] int ctr_max() const { return ctr_max_; }
  [[nodiscard]] int final_rounds() const { return final_rounds_; }
  [[nodiscard]] int max_age() const { return max_age_; }

 private:
  // Per node: counter value, round state C was entered (kNever while in B),
  // and the counters received during the current round (bounded buffer —
  // the median over the first kMaxSamples received is statistically
  // indistinguishable from the full median for the fan-ins we simulate).
  static constexpr std::size_t kMaxSamples = 32;

  int ctr_max_ = 0;
  int final_rounds_ = 0;
  int max_age_ = 0;

  std::vector<std::int32_t> ctr_;
  std::vector<Round> c_entered_;
  std::vector<std::uint8_t> sample_count_;
  std::vector<std::int32_t> samples_;  // n * kMaxSamples, flat
  std::vector<NodeId> touched_;        // nodes with samples this round
  Count active_this_round_ = 0;        // nodes whose action was not kNone
};

}  // namespace rrb
