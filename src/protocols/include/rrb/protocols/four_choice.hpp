#pragma once

#include <cstdint>
#include <memory>

#include "rrb/phonecall/protocol.hpp"

/// \file four_choice.hpp
/// The paper's contribution: Algorithms 1 and 2 (§3).
///
/// Both algorithms assume the channel layer opens `num_choices = 4`
/// channels per node per round (ChannelConfig), know the degree d, and hold
/// an estimate n̂ of n accurate to within a constant factor. The action
/// depends only on the current round and the round the node was informed —
/// they are *strictly oblivious* in the paper's sense, which is what makes
/// the comparison against the Theorem 1 lower bound meaningful.

namespace rrb {

/// Phase boundary schedule shared by Algorithms 1 and 2, derived from the
/// size estimate n̂ and the constant alpha. Logs are base 2; alpha plays
/// the role of the paper's "sufficiently large constant" and 1.5 suffices
/// empirically for the n range this library targets (tests pin this down).
struct PhaseSchedule {
  Round phase1_end = 0;  ///< ⌈alpha·log n̂⌉: newly informed push once
  Round phase2_end = 0;  ///< ⌈alpha·(log n̂ + log log n̂)⌉: informed push
  Round phase3_end = 0;  ///< Alg 1: phase2_end + 1 (single pull round);
                         ///< Alg 2: ⌈alpha·log n̂ + 2·alpha·log log n̂⌉ (pulls)
  Round phase4_end = 0;  ///< Alg 1: 2⌈alpha·log n̂⌉ + ⌈alpha·log log n̂⌉
                         ///< (active push); Alg 2: == phase3_end

  [[nodiscard]] Round total_rounds() const { return phase4_end; }
};

/// Tuning for the four-choice algorithms.
struct FourChoiceConfig {
  double alpha = 1.5;          ///< the paper's constant alpha
  std::uint64_t n_estimate = 0;  ///< n̂; must be >= 2

  /// Degree threshold selecting Algorithm 1 vs Algorithm 2: the paper uses
  /// delta·log log n with "sufficiently large" delta.
  double delta = 3.0;
};

/// Compute the Algorithm 1 schedule for a size estimate.
[[nodiscard]] PhaseSchedule make_schedule_small_d(const FourChoiceConfig& cfg);

/// Compute the Algorithm 2 schedule for a size estimate.
[[nodiscard]] PhaseSchedule make_schedule_large_d(const FourChoiceConfig& cfg);

/// Algorithm 1 (δ <= d <= δ·log log n):
///   Phase 1: push once, in the round right after first receipt.
///   Phase 2: every informed node pushes.
///   Phase 3: one round in which every informed node pulls (answers
///            incoming channels).
///   Phase 4: nodes informed during phase 3/4 become `active` and push.
/// Terminates at a fixed horizon — no oracle; transmissions are counted to
/// the very end, exactly as the paper charges them.
class FourChoiceBroadcast {
 public:
  explicit FourChoiceBroadcast(const FourChoiceConfig& cfg);

  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state, Round t);
  [[nodiscard]] bool finished(Round t, Count informed, Count alive) const;
  [[nodiscard]] const char* name() const { return "four-choice/alg1"; }

  [[nodiscard]] const PhaseSchedule& schedule() const { return schedule_; }

  /// Which phase a given round falls into (1..4); 0 after the horizon.
  [[nodiscard]] int phase_of(Round t) const;

 private:
  PhaseSchedule schedule_;
};

/// Algorithm 2 (δ·log log n <= d <= δ·log n): phases 1–2 as Algorithm 1,
/// then α·log log n rounds in which every informed node pulls.
class FourChoiceLargeDegree {
 public:
  explicit FourChoiceLargeDegree(const FourChoiceConfig& cfg);

  [[nodiscard]] Action action(NodeId v, const NodeLocalState& state, Round t);
  [[nodiscard]] bool finished(Round t, Count informed, Count alive) const;
  [[nodiscard]] const char* name() const { return "four-choice/alg2"; }

  [[nodiscard]] const PhaseSchedule& schedule() const { return schedule_; }
  [[nodiscard]] int phase_of(Round t) const;

 private:
  PhaseSchedule schedule_;
};

/// Whether the paper's degree rule selects Algorithm 2 (large degree):
/// d >= delta * log log n̂. Exposed so compile-time dispatchers (the
/// scheme dispatch table in rrb/core) can branch to the concrete type.
[[nodiscard]] bool four_choice_uses_large_degree(const FourChoiceConfig& cfg,
                                                 NodeId degree);

/// Select Algorithm 1 or 2 by degree, as the paper prescribes (nodes know
/// d): Algorithm 2 iff d >= delta * log log n̂. Returns a type-erased
/// adapter; dispatchers that want the static type use
/// four_choice_uses_large_degree() and construct the protocol themselves.
[[nodiscard]] std::unique_ptr<BroadcastProtocol> make_four_choice_protocol(
    const FourChoiceConfig& cfg, NodeId degree);

}  // namespace rrb
