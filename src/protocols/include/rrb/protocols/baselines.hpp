#pragma once

#include "rrb/phonecall/protocol.hpp"

/// \file baselines.hpp
/// The classical phone call protocols the paper compares against:
/// push (Frieze–Grimmett, Pittel, Feige et al.), pull (Demers et al.), and
/// the combined push&pull (Karp et al. without the counter-based
/// termination — these baselines terminate by oracle, i.e. the simulation
/// stops when every node is informed, which only *under*-counts their
/// transmissions and therefore makes the comparison conservative).
///
/// All protocols here are plain classes satisfying the ProtocolImpl
/// concept — the engine dispatches them statically. Wrap one in
/// ProtocolAdapter (or build it with make_protocol<...>) where a
/// type-erased BroadcastProtocol handle is needed.

namespace rrb {

/// Informed nodes push over every outgoing channel, every round.
///
/// The baseline action()/finished() bodies are defined inline: the engines
/// call them once per informed node per round (actions) and once per round
/// (termination), and for these one-liners the call itself would dominate —
/// inline, the optimiser folds the constant action into the round loop.
class PushProtocol {
 public:
  /// action() ignores the node and its state (see batched_engine.hpp's
  /// kStateObliviousAction): the batched kernel may ask once per round and
  /// broadcast the answer across nodes.
  static constexpr bool kActionIgnoresState = true;

  [[nodiscard]] Action action(NodeId /*v*/, const NodeLocalState& /*state*/,
                              Round /*t*/) {
    return Action::kPush;
  }
  [[nodiscard]] bool finished(Round /*t*/, Count informed, Count alive) const {
    return informed >= alive;
  }
  [[nodiscard]] const char* name() const { return "push"; }
};

/// Informed nodes answer every incoming channel, every round. Uninformed
/// nodes still open channels (that is what makes pull work).
class PullProtocol {
 public:
  static constexpr bool kActionIgnoresState = true;

  [[nodiscard]] Action action(NodeId /*v*/, const NodeLocalState& /*state*/,
                              Round /*t*/) {
    return Action::kPull;
  }
  [[nodiscard]] bool finished(Round /*t*/, Count informed, Count alive) const {
    return informed >= alive;
  }
  [[nodiscard]] const char* name() const { return "pull"; }
};

/// Informed nodes transmit in both directions, every round.
class PushPullProtocol {
 public:
  static constexpr bool kActionIgnoresState = true;

  [[nodiscard]] Action action(NodeId /*v*/, const NodeLocalState& /*state*/,
                              Round /*t*/) {
    return Action::kPushPull;
  }
  [[nodiscard]] bool finished(Round /*t*/, Count informed, Count alive) const {
    return informed >= alive;
  }
  [[nodiscard]] const char* name() const { return "push-pull"; }
};

/// The *implementable* (oracle-free) Monte Carlo push: informed nodes push
/// until a fixed global horizon, then everyone stops. This is the standard
/// self-terminating form of the push protocol the Theorem 1 proof reasons
/// about — its cost is Θ(n log n) because every node keeps pushing for the
/// Θ(log n) tail of the horizon. `make_push_horizon` returns the
/// empirically safe default 2·C_d·ln n̂ (twice the Fountoulakis–Panagiotou
/// completion time).
class FixedHorizonPush {
 public:
  /// Depends on the round only, never on the node or its state.
  static constexpr bool kActionIgnoresState = true;

  explicit FixedHorizonPush(Round horizon);

  [[nodiscard]] Action action(NodeId /*v*/, const NodeLocalState& /*state*/,
                              Round t) {
    return t <= horizon_ ? Action::kPush : Action::kNone;
  }
  [[nodiscard]] bool finished(Round t, Count /*informed*/,
                              Count /*alive*/) const {
    return t >= horizon_;
  }
  [[nodiscard]] const char* name() const { return "push/fixed-horizon"; }
  [[nodiscard]] Round horizon() const { return horizon_; }

 private:
  Round horizon_;
};

/// Safe push horizon for G(n,d): ceil(safety · C_d · ln n̂).
[[nodiscard]] Round make_push_horizon(std::uint64_t n_estimate, int degree,
                                      double safety = 2.0);

}  // namespace rrb
