#include "rrb/protocols/median_counter.hpp"

#include <algorithm>
#include <cmath>

#include "rrb/common/check.hpp"

namespace rrb {

namespace {

[[nodiscard]] int ceil_of(double x) {
  return static_cast<int>(std::ceil(x));
}

}  // namespace

MedianCounterProtocol::MedianCounterProtocol(const MedianCounterConfig& cfg) {
  RRB_REQUIRE(cfg.n_estimate >= 2, "n_estimate must be >= 2");
  const double lg_n =
      std::log2(static_cast<double>(cfg.n_estimate < 4 ? 4 : cfg.n_estimate));
  const double lglg_n = std::log2(lg_n < 2.0 ? 2.0 : lg_n);
  ctr_max_ = ceil_of(cfg.ctr_multiplier * lglg_n) + 2;
  final_rounds_ = ceil_of(cfg.final_multiplier * lglg_n) + 1;
  max_age_ = ceil_of(cfg.max_age_multiplier * lg_n);
  RRB_ASSERT(ctr_max_ >= 1 && final_rounds_ >= 1 && max_age_ >= 1,
             "degenerate median-counter parameters");
}

void MedianCounterProtocol::reset(NodeId n) {
  ctr_.assign(n, 0);
  c_entered_.assign(n, kNever);
  sample_count_.assign(n, 0);
  samples_.assign(static_cast<std::size_t>(n) * kMaxSamples, 0);
  touched_.clear();
  active_this_round_ = 0;
}

void MedianCounterProtocol::on_round_start(Round /*t*/) {
  active_this_round_ = 0;
  // Apply the median rule using the samples gathered last round, then clear.
  for (const NodeId v : touched_) {
    const std::size_t cnt = sample_count_[v];
    if (cnt == 0 || ctr_[v] == 0) {
      sample_count_[v] = 0;
      continue;
    }
    auto* first = samples_.data() + static_cast<std::size_t>(v) * kMaxSamples;
    auto* last = first + cnt;
    auto* mid = first + cnt / 2;
    std::nth_element(first, mid, last);
    if (*mid >= ctr_[v]) ++ctr_[v];
    sample_count_[v] = 0;
  }
  touched_.clear();
}

Action MedianCounterProtocol::action(NodeId v, const NodeLocalState& state,
                                     Round t) {
  // Hard deadline: stop max_age rounds after first receipt.
  if (t - state.informed_at > max_age_) return Action::kNone;
  if (c_entered_[v] != kNever) {
    // State C for final_rounds rounds, then quiet (state D).
    if (t - c_entered_[v] >= final_rounds_) return Action::kNone;
    ++active_this_round_;
    return Action::kPushPull;
  }
  if (ctr_[v] >= ctr_max_) c_entered_[v] = t;
  ++active_this_round_;
  return Action::kPushPull;  // state B, or first round of C
}

MessageMeta MedianCounterProtocol::stamp(NodeId v, Round /*t*/) {
  MessageMeta meta;
  meta.counter = ctr_[v];
  return meta;
}

void MedianCounterProtocol::on_receive(NodeId v, const MessageMeta& meta,
                                       Round /*t*/, bool first_time) {
  if (first_time) {
    ctr_[v] = 1;
    return;
  }
  if (ctr_[v] == 0) return;  // duplicate delivery within the joining round
  const std::size_t cnt = sample_count_[v];
  if (cnt < kMaxSamples) {
    if (cnt == 0) touched_.push_back(v);
    samples_[static_cast<std::size_t>(v) * kMaxSamples + cnt] = meta.counter;
    ++sample_count_[v];
  }
}

bool MedianCounterProtocol::finished(Round /*t*/, Count informed,
                                     Count /*alive*/) const {
  if (informed == 0) return true;
  // Exact quiescence: no informed node transmitted this round. Uninformed
  // nodes can only become active through a transmission, so once the active
  // set is empty the execution is over for good.
  return active_this_round_ == 0;
}

}  // namespace rrb
