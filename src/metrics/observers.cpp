#include "rrb/metrics/observers.hpp"

#include <algorithm>

#include "rrb/analysis/histogram.hpp"
#include "rrb/common/check.hpp"

namespace rrb {

QuantileSummary summarise_values(std::vector<double>&& values) {
  QuantileSummary digest;
  digest.count = values.size();
  if (values.empty()) return digest;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  digest.mean = sum / static_cast<double>(values.size());
  digest.p50 = quantile(values, 0.50);
  digest.p90 = quantile(values, 0.90);
  digest.p99 = quantile(values, 0.99);
  digest.max = values.back();
  return digest;
}

// ---- RunSummaryObserver ----------------------------------------------------

void RunSummaryObserver::on_run_begin(NodeId n,
                                      std::span<const NodeId> sources) {
  (void)sources;
  result_ = RunResult{};
  result_.n = n;
  result_.alive_at_end = n;  // static-topology semantics, see header
}

void RunSummaryObserver::on_round_end(const RoundStats& stats,
                                      std::span<const Round> informed_at) {
  (void)informed_at;
  result_.rounds = stats.t;
  result_.push_tx += stats.push_tx;
  result_.pull_tx += stats.pull_tx;
  result_.channels_opened += stats.channels_opened;
  result_.channels_failed += stats.channels_failed;
  if (result_.completion_round == kNever &&
      stats.informed >= static_cast<Count>(result_.n))
    result_.completion_round = stats.t;
}

void RunSummaryObserver::on_run_end(const RunResult& result,
                                    std::span<const Round> informed_at) {
  // Deliberately ignores `result` — everything below is re-derived from
  // the hook stream so tests can cross-check the plumbing against it.
  (void)result;
  Count informed = 0;
  for (const Round at : informed_at)
    if (at != kNever) ++informed;
  result_.final_informed = informed;
  result_.all_informed = informed >= result_.alive_at_end;
}

// ---- RoundStatsObserver ----------------------------------------------------

void RoundStatsObserver::on_run_begin(NodeId n,
                                      std::span<const NodeId> sources) {
  (void)n;
  (void)sources;
  rounds_.clear();
}

void RoundStatsObserver::on_round_end(const RoundStats& stats,
                                      std::span<const Round> informed_at) {
  (void)informed_at;
  rounds_.push_back(stats);
}

// ---- SetSizeObserver -------------------------------------------------------

void SetSizeObserver::on_run_begin(NodeId n, std::span<const NodeId> sources) {
  n_ = n;
  points_.clear();
  // Sources are informed before round 1; duplicates in the span seed one
  // node each, so count the distinct ones.
  std::vector<NodeId> distinct(sources.begin(), sources.end());
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  last_informed_ = distinct.size();
}

void SetSizeObserver::on_round_end(const RoundStats& stats,
                                   std::span<const Round> informed_at) {
  Count informed = 0;
  for (const Round at : informed_at)
    if (at != kNever) ++informed;
  Point point;
  point.t = stats.t;
  point.informed = informed;
  point.newly_informed = informed - last_informed_;
  point.uninformed = static_cast<Count>(n_) - informed;
  last_informed_ = informed;
  points_.push_back(point);
}

// ---- HSetObserver ----------------------------------------------------------

void HSetObserver::on_run_begin(NodeId n, std::span<const NodeId> sources) {
  (void)sources;
  points_.clear();
  if (graph_ == nullptr) return;
  RRB_REQUIRE(graph_->num_nodes() == n,
              "HSetObserver graph does not match the engine's topology");
}

void HSetObserver::on_round_end(const RoundStats& stats,
                                std::span<const Round> informed_at) {
  if (graph_ == nullptr) return;
  const Graph& g = *graph_;
  const NodeId n = g.num_nodes();
  Point point;
  point.t = stats.t;
  for (NodeId v = 0; v < n; ++v) {
    if (informed_at[v] != kNever) continue;
    NodeId inside = 0;
    for (const NodeId w : g.neighbors(v))
      if (informed_at[w] == kNever) ++inside;
    if (inside >= 1) ++point.h1;
    if (inside >= 4) ++point.h4;
    if (inside >= 5) ++point.h5;
  }
  points_.push_back(point);
}

// ---- EdgeUsageObserver -----------------------------------------------------

void EdgeUsageObserver::on_run_begin(NodeId n,
                                     std::span<const NodeId> sources) {
  (void)sources;
  used_.clear();
  unused_per_round_.clear();
  if (edge_ids_ == nullptr) return;
  RRB_REQUIRE(edge_ids_->slot_offsets.size() == n + 1U,
              "EdgeUsageObserver edge id map does not match the topology");
  used_.assign(edge_ids_->num_edges, 0);
}

void EdgeUsageObserver::on_transmission(const TransmissionEvent& event) {
  if (edge_ids_ == nullptr) return;
  used_[edge_ids_->edge_of(event.caller, event.edge_index)] = 1;
}

void EdgeUsageObserver::on_round_end(const RoundStats& stats,
                                     std::span<const Round> informed_at) {
  (void)stats;
  (void)informed_at;
  if (edge_ids_ == nullptr || !record_per_round_) return;
  RRB_REQUIRE(graph_ != nullptr,
              "per-round |U(t)| needs the graph the edge map was built from");
  const Graph& g = *graph_;
  const NodeId n = g.num_nodes();
  Count unused_nodes = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = g.degree(v);
    bool has_unused = false;
    for (NodeId i = 0; i < d && !has_unused; ++i)
      if (!used_[edge_ids_->edge_of(v, i)]) has_unused = true;
    if (has_unused) ++unused_nodes;
  }
  unused_per_round_.push_back(unused_nodes);
}

// ---- TxHistogramObserver ---------------------------------------------------

void TxHistogramObserver::on_run_begin(NodeId n,
                                       std::span<const NodeId> sources) {
  (void)sources;
  sends_.assign(n, 0);
  informed_.clear();
}

void TxHistogramObserver::on_transmission(const TransmissionEvent& event) {
  ++sends_[event.from];
}

void TxHistogramObserver::on_run_end(const RunResult& result,
                                     std::span<const Round> informed_at) {
  (void)result;
  informed_.assign(informed_at.size(), 0);
  for (std::size_t v = 0; v < informed_at.size(); ++v)
    informed_[v] = informed_at[v] != kNever ? 1 : 0;
}

QuantileSummary TxHistogramObserver::summarise() const {
  // Digest over message-holding slots only (class comment): before
  // on_run_end (no mask yet) fall back to all slots.
  std::vector<double> values;
  values.reserve(sends_.size());
  for (std::size_t v = 0; v < sends_.size(); ++v)
    if (informed_.empty() || informed_[v])
      values.push_back(static_cast<double>(sends_[v]));
  return summarise_values(std::move(values));
}

// ---- InformedLatencyObserver -----------------------------------------------

void InformedLatencyObserver::on_run_end(const RunResult& result,
                                         std::span<const Round> informed_at) {
  (void)result;
  latencies_.clear();
  latencies_.reserve(informed_at.size());
  for (const Round at : informed_at)
    if (at != kNever) latencies_.push_back(static_cast<double>(at));
  std::sort(latencies_.begin(), latencies_.end());
  informed_fraction_ =
      informed_at.empty()
          ? 0.0
          : static_cast<double>(latencies_.size()) /
                static_cast<double>(informed_at.size());
}

QuantileSummary InformedLatencyObserver::summarise() const {
  std::vector<double> copy = latencies_;
  return summarise_values(std::move(copy));
}

}  // namespace rrb
