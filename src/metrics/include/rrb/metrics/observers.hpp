#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rrb/common/types.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/metrics/observer.hpp"
#include "rrb/phonecall/edge_ids.hpp"
#include "rrb/phonecall/result.hpp"

/// \file observers.hpp
/// The library's standard metric observers — every measurement the
/// experiment harness used to hardwire into a different layer (fixed
/// engine counters, the trace_set_sizes() special path, ad-hoc bench
/// aggregation), re-expressed as composable observers:
///
///   RunSummaryObserver       re-derives RunResult from the hook stream
///   RoundStatsObserver       the per-round stats record_rounds collects
///   SetSizeObserver          |I(t)|, |I+(t)|, h(t)      (Lemmas 1-3)
///   HSetObserver             h1/h4/h5                   (Lemma 8, §4.3)
///   EdgeUsageObserver        used-edge bitmap and |U(t)| (Lemma 4)
///   TxHistogramObserver      per-node transmission counts (the paper's
///                            O(log log n) headline, as a distribution)
///   InformedLatencyObserver  per-node informed-round distribution
///
/// All observers are read-only and draw no randomness (the ROADMAP
/// observer invariant), so attaching any combination leaves a run's draw
/// sequence and RunResult bit-identical. Several observers accept null
/// topology pointers and construct disabled — callers with runtime
/// measurement flags (TraceConfig) can always build the same ObserverSet
/// type and flip individual members off without re-instantiating the
/// engine template per flag combination.

namespace rrb {

/// Mean/quantile digest of a per-node sample (send counts, latencies).
/// Quantiles interpolate over the sorted sample (rrb::quantile semantics);
/// an empty sample digests to all zeros.
struct QuantileSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Digest `values` (consumed: sorted in place). Deterministic — the digest
/// is a pure function of the multiset of values.
[[nodiscard]] QuantileSummary summarise_values(std::vector<double>&& values);

/// Re-derives the whole-run summary from the hook stream alone — it
/// deliberately ignores the RunResult handed to on_run_end, so comparing
/// its result() with the engine's return value cross-checks the hook
/// plumbing end to end (tests/test_metrics.cpp does, for every scheme).
///
/// Static-topology semantics: completion_round is the first round after
/// which every node slot is informed, which matches the engine exactly when
/// nothing dies mid-run; alive_at_end is likewise reported as n.
class RunSummaryObserver {
 public:
  [[nodiscard]] const char* name() const { return "run-summary"; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at);
  void on_run_end(const RunResult& result, std::span<const Round> informed_at);

  [[nodiscard]] const RunResult& result() const { return result_; }

 private:
  RunResult result_;
};

/// Collects every round's RoundStats — what RunLimits::record_rounds fills
/// into RunResult::per_round, available without touching the limits (and
/// therefore without changing the RunResult bytes of a recorded run).
class RoundStatsObserver {
 public:
  [[nodiscard]] const char* name() const { return "round-stats"; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at);

  [[nodiscard]] const std::vector<RoundStats>& rounds() const {
    return rounds_;
  }

 private:
  std::vector<RoundStats> rounds_;
};

/// Per-round set sizes: |I(t)| (informed), |I+(t)| (newly informed this
/// round) and h(t) = |H(t)| (uninformed), counted by scanning the
/// informed_at array exactly as the retired trace_set_sizes() engine path
/// did — the per-round values are bit-identical to the pre-observer ones.
class SetSizeObserver {
 public:
  struct Point {
    Round t = 0;
    Count informed = 0;
    Count newly_informed = 0;
    Count uninformed = 0;
  };

  [[nodiscard]] const char* name() const { return "set-sizes"; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at);

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  NodeId n_ = 0;
  Count last_informed_ = 0;
  std::vector<Point> points_;
};

/// Per-round h_i(t) = |{v in H(t) : v has >= i neighbours in H(t)}| for
/// i = 1, 4, 5 — the quantities driving the paper's Phase 2/3 analysis.
/// O(m) per round; construct with nullptr to disable (all hooks no-op).
class HSetObserver {
 public:
  struct Point {
    Round t = 0;
    Count h1 = 0;
    Count h4 = 0;
    Count h5 = 0;
  };

  HSetObserver() = default;
  explicit HSetObserver(const Graph* graph) : graph_(graph) {}

  [[nodiscard]] const char* name() const { return "h-sets"; }
  [[nodiscard]] bool enabled() const { return graph_ != nullptr; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at);

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

 private:
  const Graph* graph_ = nullptr;
  std::vector<Point> points_;
};

/// Tracks which undirected edges have carried at least one transmission,
/// replacing the engine's retired enable_edge_usage_tracking() hardwiring.
/// Optionally (record_per_round) also counts |U(t)| — the number of nodes
/// with at least one incident never-used edge (Lemma 4) — after each round.
/// Construct with nullptrs to disable.
class EdgeUsageObserver {
 public:
  EdgeUsageObserver() = default;
  EdgeUsageObserver(const Graph* graph, const EdgeIdMap* edge_ids,
                    bool record_per_round = false)
      : graph_(graph), edge_ids_(edge_ids), record_per_round_(record_per_round) {}

  [[nodiscard]] const char* name() const { return "edge-usage"; }
  [[nodiscard]] bool enabled() const { return edge_ids_ != nullptr; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_transmission(const TransmissionEvent& event);
  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at);

  /// Bitmap over undirected edge ids: 1 = carried >= 1 transmission.
  [[nodiscard]] const std::vector<std::uint8_t>& used() const { return used_; }
  /// |U(t)| per round (empty unless record_per_round).
  [[nodiscard]] const std::vector<Count>& unused_edge_nodes_per_round() const {
    return unused_per_round_;
  }

 private:
  const Graph* graph_ = nullptr;
  const EdgeIdMap* edge_ids_ = nullptr;
  bool record_per_round_ = false;
  std::vector<std::uint8_t> used_;
  std::vector<Count> unused_per_round_;
};

/// Per-node transmission counts — how many copies each node *sent* over the
/// run. The digest is the distributional form of the paper's headline
/// metric (tx_per_node is its mean): Theta(log n) per node for push,
/// O(log log n) for the four-choice algorithm.
///
/// The digest covers the slots holding the message when the run ended
/// (informed_at != kNever at on_run_end) — on a static graph that
/// completed, all n nodes. The restriction is what keeps the digest honest
/// on a churned overlay, where num_slots() includes never-occupied
/// headroom slots and the slots of departed peers (both cleared to
/// kNever): counting those as 0-send nodes would dilute every quantile.
/// Caveat kept deliberately: a slot vacated and re-joined aggregates both
/// occupants' sends — per-peer attribution would need peer identities the
/// engine does not track.
class TxHistogramObserver {
 public:
  [[nodiscard]] const char* name() const { return "tx-histogram"; }

  void on_run_begin(NodeId n, std::span<const NodeId> sources);
  void on_transmission(const TransmissionEvent& event);
  void on_run_end(const RunResult& result, std::span<const Round> informed_at);

  /// Copies sent by each node slot.
  [[nodiscard]] const std::vector<Count>& sends() const { return sends_; }
  /// Digest over the slots informed at run end (see class comment).
  [[nodiscard]] QuantileSummary summarise() const;

 private:
  std::vector<Count> sends_;
  std::vector<std::uint8_t> informed_;  ///< filled at on_run_end
};

/// Distribution of informed latencies: the round each node first received
/// the message (sources at 0). Never-informed nodes are excluded from the
/// digest; informed_fraction() reports how many made it.
class InformedLatencyObserver {
 public:
  [[nodiscard]] const char* name() const { return "latency"; }

  void on_run_end(const RunResult& result, std::span<const Round> informed_at);

  /// Informed rounds of every informed node, ascending.
  [[nodiscard]] const std::vector<double>& latencies() const {
    return latencies_;
  }
  [[nodiscard]] QuantileSummary summarise() const;
  /// Informed nodes / node slots (0 before on_run_end).
  [[nodiscard]] double informed_fraction() const { return informed_fraction_; }

 private:
  std::vector<double> latencies_;
  double informed_fraction_ = 0.0;
};

// Every standard observer honours the compile-time read-only hook contract
// (a hook name with a signature the engine cannot invoke read-only would be
// silently skipped — see ObserverHooksReadOnly in observer.hpp).
static_assert(ObserverHooksReadOnly<RunSummaryObserver>);
static_assert(ObserverHooksReadOnly<RoundStatsObserver>);
static_assert(ObserverHooksReadOnly<SetSizeObserver>);
static_assert(ObserverHooksReadOnly<HSetObserver>);
static_assert(ObserverHooksReadOnly<EdgeUsageObserver>);
static_assert(ObserverHooksReadOnly<TxHistogramObserver>);
static_assert(ObserverHooksReadOnly<InformedLatencyObserver>);

}  // namespace rrb
