#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rrb/metrics/observers.hpp"

/// \file registry.hpp
/// The named-metric registry: the single source of truth for which
/// distribution metrics a harness can switch on by name. The campaign spec
/// axis (`metrics = tx-histogram, latency`), simulate_cli --metrics and any
/// future front end all parse through here, so adding a metric means adding
/// it to MetricKind/kAllMetrics/metric_name (and a column block in the
/// emitters) — never another ad-hoc flag.
///
/// Selected metrics only choose which *columns are emitted*; the full
/// MetricStack is collected whenever any metric is enabled (the stack is a
/// single pass over hooks the engine fires anyway, and keeping the
/// instantiation single means one engine template, not 2^k of them).

namespace rrb {

/// Distribution metrics selectable by name.
enum class MetricKind {
  kTxHistogram,      ///< per-node transmission-count digest
  kInformedLatency,  ///< per-node informed-round digest
};

/// Every registry metric, in enum order.
inline constexpr std::array<MetricKind, 2> kAllMetrics = {
    MetricKind::kTxHistogram,
    MetricKind::kInformedLatency,
};

/// Stable metric name, used in spec files, CLI flags and column prefixes.
[[nodiscard]] const char* metric_name(MetricKind kind);

/// Inverse of metric_name; nullopt if unknown.
[[nodiscard]] std::optional<MetricKind> parse_metric(std::string_view name);

/// Comma-separated listing of every registry metric name, for error
/// messages ("tx-histogram, latency") — derived from kAllMetrics so a new
/// metric shows up in every front end's diagnostics automatically.
[[nodiscard]] std::string known_metric_names();

/// The full observer stack behind the registry: one engine pass collecting
/// every registry metric. Default-constructed and sized at on_run_begin.
using MetricStack = ObserverSet<TxHistogramObserver, InformedLatencyObserver>;

/// The per-run digest of one registry metric from a collected stack.
[[nodiscard]] QuantileSummary metric_summary(const MetricStack& stack,
                                             MetricKind kind);

/// Field-wise mean of the per-trial digests, accumulated in trial order —
/// the one reduction behind the campaign's `<prefix>_*_mean` columns and
/// simulate_cli's digest table, so the two emitters cannot drift apart.
/// `count` reports the number of trials. Empty input digests to zeros.
[[nodiscard]] QuantileSummary metric_summary_mean(
    std::span<const MetricStack> stacks, MetricKind kind);

/// Column prefix a metric's digest is emitted under ("tx_node", "latency").
[[nodiscard]] const char* metric_column_prefix(MetricKind kind);

}  // namespace rrb
