#pragma once

#include <concepts>
#include <span>
#include <tuple>
#include <utility>

#include "rrb/common/types.hpp"
#include "rrb/phonecall/result.hpp"

/// \file observer.hpp
/// The measurement side of the engine's static-dispatch design: metric
/// observers.
///
/// PR 3 made *protocols* plain classes behind the ProtocolImpl concept so
/// the round loop inlines their callbacks; this module does the same for
/// *measurements*. A metric observer is any class exposing a subset of the
/// hooks below; PhoneCallEngine::run() detects each hook with `requires`
/// (exactly as it detects optional protocol hooks) and compiles the call
/// into the round loop — an absent hook costs nothing, and a run with no
/// observer compiles to the same loop as before observers existed.
///
/// Hooks, in firing order:
///
///   on_run_begin(n, sources)          once, after sources are seeded
///   on_round_begin(t)                 once per round, before phase A
///   on_transmission(event)            per delivered copy of the message
///   on_node_informed(v, t)            per first-time delivery
///   on_round_end(stats, informed_at)  once per round, after bookkeeping
///   on_run_end(result, informed_at)   once, before run() returns
///
/// Observers are READ-ONLY: they draw no randomness and mutate no engine or
/// topology state (ROADMAP.md records this as a persistent invariant). That
/// is what makes instrumented runs bit-identical to bare runs — the engine's
/// draw sequence is part of the library's output contract, and a hook that
/// consumed a draw or changed the informed set would invalidate every
/// recorded experiment. tests/test_metrics.cpp pins the equivalence for all
/// eight schemes at worker threads 1 and 4.

namespace rrb {

namespace detail {

template <typename O>
concept HasOnRunBegin = requires(O& o, NodeId n, std::span<const NodeId> s) {
  o.on_run_begin(n, s);
};
template <typename O>
concept HasOnRoundBegin = requires(O& o, Round t) { o.on_round_begin(t); };
template <typename O>
concept HasOnTransmission = requires(O& o, const TransmissionEvent& e) {
  o.on_transmission(e);
};
template <typename O>
concept HasOnNodeInformed = requires(O& o, NodeId v, Round t) {
  o.on_node_informed(v, t);
};
template <typename O>
concept HasOnRoundEnd =
    requires(O& o, const RoundStats& s, std::span<const Round> ia) {
      o.on_round_end(s, ia);
    };
template <typename O>
concept HasOnRunEnd =
    requires(O& o, const RunResult& r, std::span<const Round> ia) {
      o.on_run_end(r, ia);
    };

// A member with the hook's *name* exists, whatever its signature. Address-of
// is enough: it fails only for overload sets and member templates, which no
// observer hook should be (each hook has exactly one documented signature).
template <typename O>
concept NamesOnRunBegin = requires { &O::on_run_begin; };
template <typename O>
concept NamesOnRoundBegin = requires { &O::on_round_begin; };
template <typename O>
concept NamesOnTransmission = requires { &O::on_transmission; };
template <typename O>
concept NamesOnNodeInformed = requires { &O::on_node_informed; };
template <typename O>
concept NamesOnRoundEnd = requires { &O::on_round_end; };
template <typename O>
concept NamesOnRunEnd = requires { &O::on_run_end; };

}  // namespace detail

/// Compile-time half of the observer read-only contract: every hook an
/// observer *names* must be invocable with the documented read-only
/// parameter types (const references, spans of const, values).
///
/// The engine detects hooks with `requires`, so a hook whose signature
/// demands mutable access — `RoundStats&` instead of `const RoundStats&`,
/// `std::span<Round>` instead of `std::span<const Round>` — would not match
/// the detection and be *silently skipped*: the observer compiles, runs,
/// and never fires. That silent skip is either a mutability bug (the hook
/// wants write access it must never have) or a signature typo; both should
/// be hard errors. ObserverSet static_asserts this for every member, and
/// tests/compile_fail/ keeps the assertion honest with a
/// must-not-compile fixture (registered in tests/CMakeLists.txt).
template <typename O>
concept ObserverHooksReadOnly =
    (!detail::NamesOnRunBegin<O> || detail::HasOnRunBegin<O>) &&
    (!detail::NamesOnRoundBegin<O> || detail::HasOnRoundBegin<O>) &&
    (!detail::NamesOnTransmission<O> || detail::HasOnTransmission<O>) &&
    (!detail::NamesOnNodeInformed<O> || detail::HasOnNodeInformed<O>) &&
    (!detail::NamesOnRoundEnd<O> || detail::HasOnRoundEnd<O>) &&
    (!detail::NamesOnRunEnd<O> || detail::HasOnRunEnd<O>);

/// A metric observer: movable (the trial runners park one per trial and
/// reduce them in trial order), named (the registry and reports key on it),
/// with every hook optional. The concept deliberately does not require any
/// hook — an observer measuring only at run end is as valid as one watching
/// every transmission.
template <typename O>
concept MetricObserver = std::move_constructible<O> && requires(const O& o) {
  { o.name() } -> std::convertible_to<const char*>;
};

/// Zero-overhead composition of observers. The set exposes exactly the
/// union of its members' hooks — a hook no member implements is not
/// declared (its requires-clause fails), so the engine's detection skips it
/// and composition never widens the instrumented surface. Hooks fan out to
/// members in construction order; observers are read-only, so the order is
/// unobservable (tests pin this).
template <MetricObserver... Obs>
class ObserverSet {
  static_assert(
      (ObserverHooksReadOnly<Obs> && ...),
      "ObserverSet member names an engine hook whose signature is not "
      "invocable with the documented read-only parameter types (e.g. "
      "'RoundStats&' instead of 'const RoundStats&'). The engine would "
      "silently skip such a hook; observers are read-only — see "
      "rrb/metrics/observer.hpp and the ROADMAP observer contract.");

 public:
  ObserverSet() = default;
  explicit ObserverSet(Obs... obs)
    requires(sizeof...(Obs) > 0)
      : obs_(std::move(obs)...) {}

  [[nodiscard]] const char* name() const { return "observer-set"; }

  /// The I-th member, in declaration order.
  template <std::size_t I>
  [[nodiscard]] auto& get() {
    return std::get<I>(obs_);
  }
  template <std::size_t I>
  [[nodiscard]] const auto& get() const {
    return std::get<I>(obs_);
  }
  /// The unique member of type O (ill-formed if O appears twice).
  template <typename O>
  [[nodiscard]] O& get() {
    return std::get<O>(obs_);
  }
  template <typename O>
  [[nodiscard]] const O& get() const {
    return std::get<O>(obs_);
  }

  void on_run_begin(NodeId n, std::span<const NodeId> sources)
    requires(detail::HasOnRunBegin<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnRunBegin<std::decay_t<decltype(o)>>)
        o.on_run_begin(n, sources);
    });
  }

  void on_round_begin(Round t)
    requires(detail::HasOnRoundBegin<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnRoundBegin<std::decay_t<decltype(o)>>)
        o.on_round_begin(t);
    });
  }

  void on_transmission(const TransmissionEvent& event)
    requires(detail::HasOnTransmission<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnTransmission<std::decay_t<decltype(o)>>)
        o.on_transmission(event);
    });
  }

  void on_node_informed(NodeId v, Round t)
    requires(detail::HasOnNodeInformed<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnNodeInformed<std::decay_t<decltype(o)>>)
        o.on_node_informed(v, t);
    });
  }

  void on_round_end(const RoundStats& stats, std::span<const Round> informed_at)
    requires(detail::HasOnRoundEnd<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnRoundEnd<std::decay_t<decltype(o)>>)
        o.on_round_end(stats, informed_at);
    });
  }

  void on_run_end(const RunResult& result, std::span<const Round> informed_at)
    requires(detail::HasOnRunEnd<Obs> || ...)
  {
    for_each([&](auto& o) {
      if constexpr (detail::HasOnRunEnd<std::decay_t<decltype(o)>>)
        o.on_run_end(result, informed_at);
    });
  }

 private:
  template <typename F>
  void for_each(const F& f) {
    std::apply([&](auto&... o) { (f(o), ...); }, obs_);
  }

  std::tuple<Obs...> obs_;
};

}  // namespace rrb
