#include "rrb/metrics/registry.hpp"

#include "rrb/common/check.hpp"

namespace rrb {

const char* metric_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kTxHistogram: return "tx-histogram";
    case MetricKind::kInformedLatency: return "latency";
  }
  detail::check_failed("Precondition", "kind is a known MetricKind", __FILE__,
                       __LINE__,
                       "unknown metric value " +
                           std::to_string(static_cast<int>(kind)));
}

std::optional<MetricKind> parse_metric(std::string_view name) {
  for (const MetricKind kind : kAllMetrics)
    if (name == metric_name(kind)) return kind;
  return std::nullopt;
}

std::string known_metric_names() {
  std::string names;
  for (const MetricKind kind : kAllMetrics) {
    if (!names.empty()) names += ", ";
    names += metric_name(kind);
  }
  return names;
}

QuantileSummary metric_summary(const MetricStack& stack, MetricKind kind) {
  switch (kind) {
    case MetricKind::kTxHistogram:
      return stack.get<TxHistogramObserver>().summarise();
    case MetricKind::kInformedLatency:
      return stack.get<InformedLatencyObserver>().summarise();
  }
  detail::check_failed("Precondition", "kind is a known MetricKind", __FILE__,
                       __LINE__,
                       "unknown metric value " +
                           std::to_string(static_cast<int>(kind)));
}

QuantileSummary metric_summary_mean(std::span<const MetricStack> stacks,
                                    MetricKind kind) {
  QuantileSummary mean;
  mean.count = stacks.size();
  if (stacks.empty()) return mean;
  for (const MetricStack& stack : stacks) {  // trial order
    const QuantileSummary digest = metric_summary(stack, kind);
    mean.mean += digest.mean;
    mean.p50 += digest.p50;
    mean.p90 += digest.p90;
    mean.p99 += digest.p99;
    mean.max += digest.max;
  }
  const double scale = 1.0 / static_cast<double>(stacks.size());
  mean.mean *= scale;
  mean.p50 *= scale;
  mean.p90 *= scale;
  mean.p99 *= scale;
  mean.max *= scale;
  return mean;
}

const char* metric_column_prefix(MetricKind kind) {
  switch (kind) {
    case MetricKind::kTxHistogram: return "tx_node";
    case MetricKind::kInformedLatency: return "latency";
  }
  detail::check_failed("Precondition", "kind is a known MetricKind", __FILE__,
                       __LINE__,
                       "unknown metric value " +
                           std::to_string(static_cast<int>(kind)));
}

}  // namespace rrb
