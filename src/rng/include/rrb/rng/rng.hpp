#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "rrb/common/check.hpp"

/// \file rng.hpp
/// Deterministic, seedable randomness for every simulation component.
///
/// All stochastic behaviour in the library flows through Rng so that a run
/// is exactly reproducible from (seed, parameters). The engine is
/// xoshiro256** (Blackman & Vigna), seeded through splitmix64 as its authors
/// recommend; both are implemented here from the public-domain reference
/// algorithms so the library has no external dependencies.

namespace rrb {

/// splitmix64 step: advances `state` and returns the next output. Used for
/// seeding and for cheap stateless hashing of seed material.
[[nodiscard]] std::uint64_t splitmix64_next(std::uint64_t& state);

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator, so it
/// can be plugged into <random> distributions where convenient, though the
/// Rng helpers below are preferred (they are portable across standard
/// library implementations, which <random> distributions are not).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seed via splitmix64 so that any 64-bit seed (including 0) yields a
  /// well-mixed, non-degenerate state.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0xdeadbeefcafef00dULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return ~static_cast<result_type>(0);
  }

  // Defined inline below: this is the leaf of every random draw in the
  // library, and the simulation hot loops are draw-bound.
  result_type operator()();

  /// Jump ahead 2^128 steps; used to derive independent parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Derive a stable 64-bit seed for a named sub-stream, e.g.
/// `derive_seed(base, trial_index)`. A stateless double splitmix64 mix of
/// (base, stream): deterministic, order-free, and platform-independent —
/// the primitive behind Rng::fork and the persistent seeding contract
/// "trial i's stream depends only on (seed, i)".
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t stream);

/// Stable 64-bit hash of a byte string: FNV-1a folded through a splitmix64
/// finalising mix. Deterministic and platform-independent, so a *named*
/// sub-stream can be derived as `derive_seed(base, hash_string(name))` —
/// the experiment-campaign subsystem keys every cell's randomness on
/// (campaign_seed, cell_key) this way. Golden-pinned in tests/test_rng.cpp;
/// changing it invalidates every recorded campaign.
[[nodiscard]] std::uint64_t hash_string(std::string_view text);

/// High-level random source. One instance per simulation trial.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL)
      : engine_(seed), seed_(seed) {}

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [0, bound) via Lemire's unbiased multiply-shift
  /// rejection method. bound must be >= 1. Inline (below): one draw per
  /// node per round in the phone call engines.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform_double();

  /// Bernoulli trial with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Fisher–Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct values uniformly from [0, n), k <= n.
  ///
  /// Uses Floyd's algorithm: O(k) expected work independent of n, no
  /// allocation beyond the output. Order of the output is the insertion
  /// order of Floyd's algorithm (a uniformly random k-subset, though not a
  /// uniformly random *sequence*; callers that need a random order should
  /// shuffle).
  void sample_distinct(std::uint64_t n, std::size_t k,
                       std::vector<std::uint64_t>& out);

  /// Sample k distinct indices from [0, n) into a small fixed buffer,
  /// returning the number written (== k). Optimised for the phone call
  /// model's k <= 8 choices out of a node's d neighbours: for tiny k it uses
  /// rejection against the already-chosen prefix, which beats any set
  /// structure.
  std::size_t sample_distinct_small(std::uint32_t n, std::size_t k,
                                    std::span<std::uint32_t> out);

  /// A fresh Rng whose stream is independent of this one (derived by
  /// hashing a drawn value; suitable for seeding per-trial generators).
  ///
  /// Note: split() advances this generator, so the child depends on how
  /// many draws preceded it. For parallel work use fork(), whose streams
  /// are a pure function of (seed, stream_id).
  [[nodiscard]] Rng split();

  /// The RNG for sub-stream `stream_id`: a SplitMix-style derivation keyed
  /// on (construction seed, stream_id) only. It does not consume or
  /// observe this generator's state, so the result is independent of any
  /// draws or other forks made before it — the property that makes
  /// parallel trial execution bit-identical to sequential execution.
  /// This is the library's seeding contract: trial i always runs on
  /// Rng(seed).fork(i), whoever schedules it.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(derive_seed(seed_, stream_id));
  }

  /// The seed this Rng was constructed with (forks derive from it).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Access the raw engine (for <random> interop in tests).
  [[nodiscard]] Xoshiro256StarStar& engine() { return engine_; }

 private:
  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
};

// ---------------------------------------------------------------------------
// Inline hot-path definitions. These are the leaves of every draw the round
// loops make (one xoshiro step + one Lemire reduction per channel choice);
// keeping them in the header lets them inline into the engines instead of
// costing two cross-TU calls per draw. The algorithms are bit-for-bit the
// ones golden-pinned in tests/test_rng.cpp — only their linkage is inline.
// ---------------------------------------------------------------------------

inline Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() {
  const auto rotl = [](std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  };
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

inline std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  RRB_REQUIRE(bound >= 1, "uniform_u64 bound must be >= 1");
  // Lemire's method with rejection to remove bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - b) mod b
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

inline double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

inline bool Rng::bernoulli(double p) {
  RRB_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]");
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

}  // namespace rrb
