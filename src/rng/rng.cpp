#include "rrb/rng/rng.hpp"

#include <algorithm>

namespace rrb {

std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

void Xoshiro256StarStar::jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if ((word & (1ULL << b)) != 0)
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      (void)(*this)();
    }
  }
  s_ = acc;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RRB_REQUIRE(lo <= hi, "uniform_int needs lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

void Rng::sample_distinct(std::uint64_t n, std::size_t k,
                          std::vector<std::uint64_t>& out) {
  RRB_REQUIRE(k <= n, "sample_distinct needs k <= n");
  out.clear();
  out.reserve(k);
  // Floyd's algorithm: for j = n-k..n-1, draw t in [0, j]; insert t if not
  // present, otherwise insert j. Linear scan of `out` is optimal for the
  // small k this library uses (k <= 8 in the protocols; tests use k <= 64).
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_u64(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end())
      out.push_back(t);
    else
      out.push_back(j);
  }
}

std::size_t Rng::sample_distinct_small(std::uint32_t n, std::size_t k,
                                       std::span<std::uint32_t> out) {
  RRB_REQUIRE(k <= n, "sample_distinct_small needs k <= n");
  RRB_REQUIRE(out.size() >= k, "output buffer too small");
  for (std::size_t i = 0; i < k; ++i) {
    std::uint32_t candidate;
    bool fresh;
    do {
      candidate = static_cast<std::uint32_t>(uniform_u64(n));
      fresh = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (out[j] == candidate) {
          fresh = false;
          break;
        }
      }
    } while (!fresh);
    out[i] = candidate;
  }
  return k;
}

Rng Rng::split() {
  std::uint64_t material = next_u64();
  const std::uint64_t seed = splitmix64_next(material);
  return Rng(seed);
}

std::uint64_t hash_string(std::string_view text) {
  // FNV-1a over the bytes, then one splitmix64 round keyed on the length so
  // that short strings still diffuse into all 64 bits and "" != hash(0).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = h + 0x9e3779b97f4a7c15ULL * (text.size() + 1);
  return splitmix64_next(s);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL + stream);
  std::uint64_t a = splitmix64_next(s);
  s ^= stream * 0xff51afd7ed558ccdULL;
  return a ^ splitmix64_next(s);
}

}  // namespace rrb
