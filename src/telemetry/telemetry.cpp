#include "rrb/telemetry/telemetry.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

namespace rrb::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<std::int32_t> g_pid{0};

/// Per-thread event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so events recorded by a thread survive its
/// exit until the next drain(). The mutex only contends with drain().
struct Buffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::int32_t tid = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Buffer>> buffers;
  std::int32_t next_tid = 0;
};

Registry& registry() {
  // Deliberately leaked: thread_local destructors may run after function-local
  // statics are destroyed, and a Buffer must be able to outlive its thread.
  static Registry* r = new Registry;
  return *r;
}

Buffer& local_buffer() {
  thread_local std::shared_ptr<Buffer> buffer = [] {
    auto b = std::make_shared<Buffer>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void push_event(Event event) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (event.tid < 0) event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// One event as a self-contained JSON object (shared by the jsonl shuttle
/// format and the Chrome trace exporter).
std::string event_json(const Event& event) {
  std::string out = "{\"ph\":\"";
  out += event.phase;
  out += "\",\"cat\":";
  append_json_string(out, event.category);
  out += ",\"name\":";
  append_json_string(out, event.name);
  out += ",\"ts\":" + std::to_string(event.ts_us);
  if (event.phase == 'X') out += ",\"dur\":" + std::to_string(event.dur_us);
  out += ",\"pid\":" + std::to_string(event.pid);
  out += ",\"tid\":" + std::to_string(event.tid);
  if (event.phase == 'i') out += ",\"s\":\"p\"";
  if (!event.args_json.empty()) out += ",\"args\":" + event.args_json;
  out += '}';
  return out;
}

// ---- minimal JSON reader for the events jsonl shuttle format ----
//
// exp has a flat-JSON parser, but telemetry may depend on common only (the
// layering DAG makes exp a *consumer* of telemetry), so the shuttle format
// gets its own reader. It accepts exactly what event_json emits: one object
// per line, string/integer values, plus one raw nested object under "args".

struct Cursor {
  std::string_view text;
  std::size_t i = 0;

  bool done() const { return i >= text.size(); }
  char peek() const { return text[i]; }
  void skip_ws() {
    while (!done() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  }
  bool eat(char c) {
    skip_ws();
    if (done() || text[i] != c) return false;
    ++i;
    return true;
  }
};

bool parse_json_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = c.text[c.i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.done()) return false;
    const char esc = c.text[c.i++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (c.i + 4 > c.text.size()) return false;
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.text[c.i++];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F')
            value |= static_cast<unsigned>(h - 'A' + 10);
          else
            return false;
        }
        // We only ever emit \u00XX control escapes; anything wider is kept
        // as a replacement byte rather than rejected.
        out += value < 0x80 ? static_cast<char>(value) : '?';
        break;
      }
      default: return false;
    }
  }
  return false;
}

bool parse_json_int(Cursor& c, std::int64_t& out) {
  c.skip_ws();
  const std::size_t start = c.i;
  if (!c.done() && (c.peek() == '-' || c.peek() == '+')) ++c.i;
  while (!c.done() && std::isdigit(static_cast<unsigned char>(c.peek()))) ++c.i;
  if (c.i == start) return false;
  out = 0;
  bool negative = false;
  for (std::size_t k = start; k < c.i; ++k) {
    const char ch = c.text[k];
    if (ch == '-') negative = true;
    else if (ch != '+')
      out = out * 10 + (ch - '0');
  }
  if (negative) out = -out;
  return true;
}

/// Capture a balanced JSON object verbatim (string-aware), for "args".
bool parse_raw_object(Cursor& c, std::string& out) {
  c.skip_ws();
  if (c.done() || c.peek() != '{') return false;
  const std::size_t start = c.i;
  int depth = 0;
  bool in_string = false;
  while (!c.done()) {
    const char ch = c.text[c.i++];
    if (in_string) {
      if (ch == '\\' && !c.done()) ++c.i;
      else if (ch == '"')
        in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{')
      ++depth;
    else if (ch == '}' && --depth == 0) {
      out.assign(c.text.substr(start, c.i - start));
      return true;
    }
  }
  return false;
}

bool parse_event_line(std::string_view line, Event& event) {
  Cursor c{line};
  if (!c.eat('{')) return false;
  event = Event{};
  event.tid = 0;
  bool first = true;
  while (true) {
    if (c.eat('}')) return !first;
    if (!first && !c.eat(',')) return false;
    first = false;
    std::string key;
    if (!parse_json_string(c, key) || !c.eat(':')) return false;
    if (key == "args") {
      if (!parse_raw_object(c, event.args_json)) return false;
    } else if (key == "ph" || key == "cat" || key == "name" || key == "s") {
      std::string value;
      if (!parse_json_string(c, value)) return false;
      if (key == "ph") event.phase = value.empty() ? 'X' : value[0];
      else if (key == "cat")
        event.category = std::move(value);
      else if (key == "name")
        event.name = std::move(value);
    } else {
      std::int64_t value = 0;
      if (!parse_json_int(c, value)) return false;
      if (key == "ts") event.ts_us = value;
      else if (key == "dur")
        event.dur_us = value;
      else if (key == "pid")
        event.pid = static_cast<std::int32_t>(value);
      else if (key == "tid")
        event.tid = static_cast<std::int32_t>(value);
    }
  }
}

std::uint64_t status_kb(const char* field) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::string line;
  const std::size_t field_len = std::strlen(field);
  while (std::getline(in, line)) {
    if (line.compare(0, field_len, field) != 0) continue;
    std::uint64_t kb = 0;
    for (std::size_t i = field_len; i < line.size(); ++i) {
      const char ch = line[i];
      if (ch >= '0' && ch <= '9') kb = kb * 10 + static_cast<std::uint64_t>(ch - '0');
      else if (kb != 0)
        break;
    }
    return kb;
  }
  return 0;
}

}  // namespace

namespace detail {

void emit_complete(const char* category, std::string name, std::int64_t ts_us,
                   std::int64_t dur_us, std::string args_json) {
  Event event;
  event.phase = 'X';
  event.name = std::move(name);
  event.category = category == nullptr ? "" : category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.pid = g_pid.load(std::memory_order_relaxed);
  event.tid = -1;  // filled from the buffer
  event.args_json = std::move(args_json);
  push_event(std::move(event));
}

void emit_instant(const char* category, std::string name,
                  std::string args_json) {
  Event event;
  event.phase = 'i';
  event.name = std::move(name);
  event.category = category == nullptr ? "" : category;
  event.ts_us = now_us();
  event.pid = g_pid.load(std::memory_order_relaxed);
  event.tid = -1;
  event.args_json = std::move(args_json);
  push_event(std::move(event));
}

void add_count(std::string_view name, std::int64_t delta) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  const auto it = buffer.counters.find(name);
  if (it == buffer.counters.end()) buffer.counters.emplace(name, delta);
  else
    it->second += delta;
}

}  // namespace detail

std::int64_t now_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

void enable(bool on) {
  if constexpr (kCompiledIn)
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_process_id(std::int32_t pid) {
  g_pid.store(pid, std::memory_order_relaxed);
}

void set_process_label(std::string label) {
  if (!enabled()) return;
  Event event;
  event.phase = 'M';
  event.name = "process_name";
  event.category = "__metadata";
  event.ts_us = now_us();
  event.pid = g_pid.load(std::memory_order_relaxed);
  event.tid = -1;
  std::string args = "{\"name\":";
  append_json_string(args, label);
  args += '}';
  event.args_json = std::move(args);
  push_event(std::move(event));
}

std::uint64_t peak_rss_bytes() { return status_kb("VmHWM:") * 1024; }
std::uint64_t current_rss_bytes() { return status_kb("VmRSS:") * 1024; }

void Span::begin(const char* category, std::string_view name) {
  active_ = true;
  category_ = category;
  name_.assign(name);
  begin_us_ = now_us();
}

void Span::end() {
  active_ = false;
  // Record even if recording was switched off mid-span: a started span is
  // cheaper to keep than to make the hot path re-check the flag coherently.
  detail::emit_complete(category_, std::move(name_), begin_us_,
                        now_us() - begin_us_, std::move(args_));
}

std::vector<Event> drain() {
  std::vector<Event> out;
  std::map<std::string, std::int64_t> totals;
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    buffers = r.buffers;
  }
  for (const std::shared_ptr<Buffer>& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    for (Event& event : buffer->events) {
      if (event.tid < 0) event.tid = buffer->tid;
      out.push_back(std::move(event));
    }
    buffer->events.clear();
    for (const auto& [name, total] : buffer->counters) totals[name] += total;
    buffer->counters.clear();
  }
  const std::int64_t ts = now_us();
  const std::int32_t pid = g_pid.load(std::memory_order_relaxed);
  for (const auto& [name, total] : totals) {
    Event event;
    event.phase = 'C';
    event.name = name;
    event.category = "counter";
    event.ts_us = ts;
    event.pid = pid;
    event.tid = 0;
    event.args_json = "{\"value\":" + std::to_string(total) + "}";
    out.push_back(std::move(event));
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<Event>& events) {
  std::int64_t base = 0;
  bool have_base = false;
  for (const Event& event : events) {
    if (event.phase == 'M') continue;
    if (!have_base || event.ts_us < base) {
      base = event.ts_us;
      have_base = true;
    }
  }

  std::vector<const Event*> ordered;
  ordered.reserve(events.size());
  for (const Event& event : events) ordered.push_back(&event);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     // Metadata first so viewers name processes before rows
                     // appear; then timestamp order.
                     if ((a->phase == 'M') != (b->phase == 'M'))
                       return a->phase == 'M';
                     return a->ts_us < b->ts_us;
                   });

  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event* event : ordered) {
    Event rebased = *event;
    rebased.ts_us = std::max<std::int64_t>(0, rebased.ts_us - base);
    os << (first ? "\n" : ",\n") << event_json(rebased);
    first = false;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::int64_t write_chrome_trace_file(const std::string& path) {
  const std::vector<Event> events = drain();
  std::ofstream out(path);
  if (!out) return -1;
  write_chrome_trace(out, events);
  return static_cast<std::int64_t>(events.size());
}

std::int64_t append_events_jsonl(const std::string& path) {
  const std::vector<Event> events = drain();
  std::ofstream out(path, std::ios::app);
  if (!out) return -1;
  for (const Event& event : events) out << event_json(event) << '\n';
  return static_cast<std::int64_t>(events.size());
}

std::vector<Event> load_events_jsonl(const std::string& path) {
  std::vector<Event> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    Event event;
    if (parse_event_line(line, event)) out.push_back(std::move(event));
  }
  return out;
}

}  // namespace rrb::telemetry
