/// rrb::telemetry — the wall-clock side channel of the simulator.
///
/// This module is the observability twin of the read-only rrb::metrics
/// observer pipeline: where metrics derive *deterministic* numbers from the
/// engine's hook stream, telemetry records *non-deterministic* facts about a
/// run — wall-clock spans, monotonic counters, peak RSS — and exports them as
/// Chrome trace-event JSON (chrome://tracing / Perfetto) or JSONL.
///
/// Contract (ROADMAP "telemetry side channel" invariant, lint-enforced by the
/// telemetry-side-channel rule): nothing recorded here may ever reach a
/// deterministic artifact. Telemetry headers are banned from the
/// artifact/record-writing TUs; the only sanctioned consumers are side
/// channels (timing.jsonl, BENCH_*.json, trace files, progress lines).
/// Conversely, telemetry must never perturb a run: recording draws no
/// randomness and mutates no engine state, and `tests/test_telemetry.cpp`
/// pins bit-identity of all golden outputs with telemetry enabled.
///
/// Design for near-zero overhead when disabled:
///  - recording is gated on one relaxed atomic load (`enabled()`); the
///    default is OFF, so instrumented hot loops pay one predictable branch;
///  - events land in thread-local buffers (registered once per thread) —
///    no lock on the hot path, no cross-thread contention;
///  - the whole API compiles out when RRB_TELEMETRY_ENABLED=0 (CMake option
///    `RRB_TELEMETRY`), leaving empty inline stubs.
///
/// Timestamps are steady_clock microseconds (CLOCK_MONOTONIC on Linux) —
/// comparable across the processes of one machine, which is what lets the
/// distribute driver merge worker event files into a single aligned trace.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#ifndef RRB_TELEMETRY_ENABLED
#define RRB_TELEMETRY_ENABLED 1
#endif

namespace rrb::telemetry {

/// True when the API is compiled in (RRB_TELEMETRY_ENABLED != 0). When
/// false every call below is an empty inline stub.
inline constexpr bool kCompiledIn = RRB_TELEMETRY_ENABLED != 0;

namespace detail {
extern std::atomic<bool> g_enabled;

void emit_complete(const char* category, std::string name, std::int64_t ts_us,
                   std::int64_t dur_us, std::string args_json);
void emit_instant(const char* category, std::string name,
                  std::string args_json);
void add_count(std::string_view name, std::int64_t delta);
}  // namespace detail

/// One trace event. `phase` follows the Chrome trace-event vocabulary:
/// 'X' complete (ts + dur), 'i' instant, 'C' counter, 'M' metadata.
struct Event {
  char phase = 'X';
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  std::string args_json;  ///< "" or a complete JSON object, e.g. {"lanes":4}
};

/// Monotonic now in microseconds (steady_clock). This is the module's single
/// wall-clock entry point; deterministic modules that need a side-channel
/// timestamp (timing.jsonl, heartbeats, progress ETA) call this instead of
/// reading a clock themselves, keeping the clock read inside the audited
/// side channel.
std::int64_t now_us();

/// Global recording switch (default off). `enable(true)` is process-wide and
/// not meant to be toggled mid-run; `enabled()` is the hot-path gate.
void enable(bool on = true);
inline bool enabled() {
  if constexpr (!kCompiledIn) return false;
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Chrome-trace process identity for every event recorded after the call.
/// The distribute driver is pid 1; worker i labels itself pid 2 + i.
void set_process_id(std::int32_t pid);
void set_process_label(std::string label);  ///< emits a process_name 'M' event

/// Peak / current resident set size in bytes from /proc/self/status
/// (VmHWM / VmRSS). Returns 0 when the pseudo-file is unavailable.
std::uint64_t peak_rss_bytes();
std::uint64_t current_rss_bytes();

/// RAII scoped timer: records one complete ('X') event from construction to
/// destruction when telemetry is enabled. `category` must be a string
/// literal (stored by pointer). Construction when disabled costs one
/// relaxed atomic load.
class Span {
 public:
  Span(const char* category, std::string_view name) {
    if (enabled()) begin(category, name);
  }
  Span(const char* category, std::string_view name, std::string args_json) {
    if (enabled()) {
      begin(category, name);
      args_ = std::move(args_json);
    }
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/replace the event's args object ("{...}") before destruction.
  void set_args(std::string args_json) {
    if (active_) args_ = std::move(args_json);
  }
  bool active() const { return active_; }

 private:
  void begin(const char* category, std::string_view name);
  void end();

  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  std::string args_;
  std::int64_t begin_us_ = 0;
};

/// Record an instant ('i') event, e.g. "worker 3 respawned".
inline void instant(const char* category, std::string name,
                    std::string args_json = {}) {
  if (enabled())
    detail::emit_instant(category, std::move(name), std::move(args_json));
}

/// Bump a named monotonic counter. Aggregated per thread and materialised as
/// one 'C' event per counter at drain() time.
inline void count(std::string_view name, std::int64_t delta = 1) {
  if (enabled()) detail::add_count(name, delta);
}

/// Move all buffered events (every thread, including exited threads) out of
/// the registry, appending materialised counter totals. Order is unspecified;
/// exporters sort by timestamp.
std::vector<Event> drain();

/// Write events as a Chrome trace-event JSON document ({"traceEvents":[...]}).
/// Timestamps are rebased to the earliest event so traces start near t=0.
void write_chrome_trace(std::ostream& os, const std::vector<Event>& events);

/// drain() + write_chrome_trace to `path`. Returns the number of events
/// written, or -1 when the file could not be opened.
std::int64_t write_chrome_trace_file(const std::string& path);

/// Append drained events to `path` as one JSON object per line — the shuttle
/// format distribute workers use to hand their events to the driver. Returns
/// events appended, or -1 on open failure. Crash-tolerant by construction:
/// each line is self-contained and load_events_jsonl skips partial tails.
std::int64_t append_events_jsonl(const std::string& path);

/// Parse an events JSONL file written by append_events_jsonl. Malformed or
/// truncated lines are skipped (a SIGKILLed worker may leave one).
std::vector<Event> load_events_jsonl(const std::string& path);

}  // namespace rrb::telemetry
