#include "rrb/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace rrb {

namespace {

/// Pack an unordered node pair into a 64-bit key (canonical order).
[[nodiscard]] std::uint64_t pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Node counts combine in 64-bit and must land back in the NodeId range
/// (n <= 2^31, types.hpp) before a GraphBuilder is sized with them.
[[nodiscard]] NodeId checked_node_count(std::uint64_t n, const char* what) {
  RRB_REQUIRE(n <= (std::uint64_t{1} << 31),
              std::string(what) + ": node count exceeds NodeId range");
  return static_cast<NodeId>(n);
}

}  // namespace

Graph configuration_model(NodeId n, NodeId d, Rng& rng) {
  RRB_REQUIRE(n >= 2, "configuration_model: n >= 2");
  RRB_REQUIRE(d >= 1, "configuration_model: d >= 1");
  RRB_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0,
              "configuration_model: n*d must be even");

  const std::uint64_t num_stubs = static_cast<std::uint64_t>(n) * d;
  std::vector<NodeId> stubs(num_stubs);
  for (std::uint64_t s = 0; s < num_stubs; ++s)
    stubs[s] = static_cast<NodeId>(s / d);
  rng.shuffle(std::span<NodeId>(stubs));

  std::vector<Edge> edges;
  edges.reserve(num_stubs / 2);
  for (std::uint64_t s = 0; s + 1 < num_stubs; s += 2)
    edges.push_back(Edge{stubs[s], stubs[s + 1]});
  return Graph::from_edges(n, edges);
}

Graph random_regular_simple(NodeId n, NodeId d, Rng& rng) {
  RRB_REQUIRE(n >= d + 1, "random_regular_simple: need n >= d+1");
  RRB_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0,
              "random_regular_simple: n*d must be even");

  constexpr int kMaxRestarts = 64;
  for (int restart = 0; restart < kMaxRestarts; ++restart) {
    // Draw a configuration-model multigraph, then repair defects by random
    // edge switches.
    const std::uint64_t num_stubs = static_cast<std::uint64_t>(n) * d;
    std::vector<NodeId> stubs(num_stubs);
    for (std::uint64_t s = 0; s < num_stubs; ++s)
      stubs[s] = static_cast<NodeId>(s / d);
    rng.shuffle(std::span<NodeId>(stubs));

    std::vector<Edge> edges(num_stubs / 2);
    std::unordered_map<std::uint64_t, NodeId> multiplicity;
    multiplicity.reserve(edges.size() * 2);
    for (std::uint64_t s = 0; s + 1 < num_stubs; s += 2) {
      edges[s / 2] = Edge{stubs[s], stubs[s + 1]};
      ++multiplicity[pair_key(stubs[s], stubs[s + 1])];
    }

    auto is_defective = [&](const Edge& e) {
      return e.u == e.v || multiplicity[pair_key(e.u, e.v)] > 1;
    };

    // Iterate until defect-free. Each pass scans for defective edges and
    // attempts random switches; the expected number of defects is O(d^2),
    // so this terminates almost immediately for all practical parameters.
    const std::uint64_t max_switch_attempts = 200 * (num_stubs + 64);
    std::uint64_t attempts = 0;
    bool clean = false;
    while (attempts < max_switch_attempts) {
      std::vector<std::size_t> defects;
      for (std::size_t i = 0; i < edges.size(); ++i)
        if (is_defective(edges[i])) defects.push_back(i);
      if (defects.empty()) {
        clean = true;
        break;
      }
      for (const std::size_t i : defects) {
        if (!is_defective(edges[i])) continue;  // fixed by an earlier switch
        bool fixed = false;
        for (int tries = 0; tries < 64 && !fixed; ++tries) {
          ++attempts;
          const std::size_t j =
              static_cast<std::size_t>(rng.uniform_u64(edges.size()));
          if (j == i) continue;
          Edge a = edges[i];
          Edge b = edges[j];
          // Random orientation of the 2-switch.
          if (rng.bernoulli(0.5)) std::swap(b.u, b.v);
          const Edge na{a.u, b.u};
          const Edge nb{a.v, b.v};
          if (na.u == na.v || nb.u == nb.v) continue;
          const auto key_na = pair_key(na.u, na.v);
          const auto key_nb = pair_key(nb.u, nb.v);
          if (multiplicity[key_na] > 0 || multiplicity[key_nb] > 0) continue;
          if (key_na == key_nb) continue;  // would create a parallel pair
          // Commit the switch.
          auto drop = [&](const Edge& e) {
            auto it = multiplicity.find(pair_key(e.u, e.v));
            RRB_ASSERT(it != multiplicity.end() && it->second > 0,
                       "switch bookkeeping");
            --it->second;
          };
          drop(edges[i]);
          drop(edges[j]);
          ++multiplicity[key_na];
          ++multiplicity[key_nb];
          edges[i] = na;
          edges[j] = nb;
          fixed = true;
        }
        if (!fixed) break;  // rescan and retry from a fresh defect list
      }
    }
    if (clean) {
      Graph g = Graph::from_edges(n, edges);
      RRB_ASSERT(g.is_simple(), "repair left a non-simple graph");
      RRB_ASSERT(g.regular_degree() == d, "repair broke regularity");
      return g;
    }
  }
  throw std::runtime_error(
      "random_regular_simple: switching repair failed; parameters too tight");
}

Graph gnp(NodeId n, double p, Rng& rng) {
  RRB_REQUIRE(p >= 0.0 && p <= 1.0, "gnp: p out of [0,1]");
  GraphBuilder builder(n);
  if (p <= 0.0 || n < 2) return builder.build();
  if (p >= 1.0) return complete(n);

  // Geometric skipping over the n*(n-1)/2 potential edges in row-major
  // order of pairs (u < v).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  auto pair_of = [n](std::uint64_t k) {
    // Invert k = u*n - u*(u+1)/2 + (v - u - 1). Linear scan per row is too
    // slow; use the closed form via quadratic formula.
    const double nn = static_cast<double>(n);
    double uf = std::floor(
        ((2.0 * nn - 1.0) -
         std::sqrt((2.0 * nn - 1.0) * (2.0 * nn - 1.0) - 8.0 * static_cast<double>(k))) /
        2.0);
    auto u = static_cast<std::uint64_t>(uf);
    // Guard against floating point edge error.
    auto row_start = [n](std::uint64_t r) {
      return r * n - r * (r + 1) / 2;
    };
    while (u > 0 && row_start(u) > k) --u;
    while (row_start(u + 1) <= k) ++u;
    const std::uint64_t v = u + 1 + (k - row_start(u));
    return Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)};
  };
  while (true) {
    // Geometric(p) skip: floor(log(1-r)/log(1-p)) potential edges are absent
    // before the next present one.
    const double r = rng.uniform_double();
    const double s = std::floor(std::log(1.0 - r) / log1mp);
    idx += static_cast<std::uint64_t>(s);
    if (idx >= total) break;
    const Edge e = pair_of(idx);
    builder.add_edge(e.u, e.v);
    ++idx;
  }
  return builder.build();
}

Graph complete(NodeId n) {
  GraphBuilder builder(n);
  builder.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) builder.add_edge(u, v);
  return builder.build();
}

Graph complete_bipartite(NodeId a, NodeId b) {
  GraphBuilder builder(checked_node_count(
      static_cast<std::uint64_t>(a) + b, "complete_bipartite"));
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) builder.add_edge(u, a + v);
  return builder.build();
}

Graph cycle(NodeId n) {
  RRB_REQUIRE(n >= 3, "cycle: n >= 3");
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.add_edge(v, (v + 1) % n);
  return builder.build();
}

Graph path(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.add_edge(v, v + 1);
  return builder.build();
}

Graph star(NodeId n) {
  RRB_REQUIRE(n >= 1, "star: n >= 1");
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.add_edge(0, v);
  return builder.build();
}

Graph hypercube(int dim) {
  RRB_REQUIRE(dim >= 0 && dim < 31, "hypercube: 0 <= dim < 31");
  const NodeId n = static_cast<NodeId>(1) << dim;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v)
    for (int b = 0; b < dim; ++b) {
      const NodeId w = v ^ (static_cast<NodeId>(1) << b);
      if (v < w) builder.add_edge(v, w);
    }
  return builder.build();
}

Graph torus(NodeId rows, NodeId cols) {
  RRB_REQUIRE(rows >= 3 && cols >= 3, "torus: dims >= 3");
  GraphBuilder builder(checked_node_count(
      static_cast<std::uint64_t>(rows) * cols, "torus"));
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  return builder.build();
}

Graph cartesian_product(const Graph& g, const Graph& h) {
  const NodeId gn = g.num_nodes();
  const NodeId hn = h.num_nodes();
  RRB_REQUIRE(gn > 0 && hn > 0, "cartesian_product: empty factor");
  GraphBuilder builder(checked_node_count(
      static_cast<std::uint64_t>(gn) * hn, "cartesian_product"));
  auto id = [hn](NodeId u, NodeId i) { return u * hn + i; };
  for (const Edge& e : g.edge_list())
    for (NodeId i = 0; i < hn; ++i) builder.add_edge(id(e.u, i), id(e.v, i));
  for (const Edge& e : h.edge_list())
    for (NodeId u = 0; u < gn; ++u) builder.add_edge(id(u, e.u), id(u, e.v));
  return builder.build();
}

Graph disjoint_union(const Graph& g, const Graph& h) {
  const NodeId gn = g.num_nodes();
  GraphBuilder builder(checked_node_count(
      static_cast<std::uint64_t>(gn) + h.num_nodes(), "disjoint_union"));
  for (const Edge& e : g.edge_list()) builder.add_edge(e.u, e.v);
  for (const Edge& e : h.edge_list()) builder.add_edge(gn + e.u, gn + e.v);
  return builder.build();
}

Graph preferential_attachment(NodeId n, NodeId m, Rng& rng) {
  RRB_REQUIRE(m >= 1, "preferential_attachment: m >= 1");
  RRB_REQUIRE(n >= m + 1, "preferential_attachment: n >= m+1");

  // Flat endpoint list: every edge contributes both endpoints, so sampling
  // a uniform entry is degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * (static_cast<std::size_t>(n) * m));
  GraphBuilder builder(n);

  // Seed clique on m+1 nodes.
  for (NodeId u = 0; u <= m; ++u)
    for (NodeId v = u + 1; v <= m; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }

  std::vector<NodeId> targets;
  targets.reserve(m);
  for (NodeId v = m + 1; v < n; ++v) {
    // Choose m distinct degree-proportional targets by rejection.
    targets.clear();
    int guard = 0;
    while (targets.size() < m && guard < 200) {
      ++guard;
      const NodeId pick = endpoints[static_cast<std::size_t>(
          rng.uniform_u64(endpoints.size()))];
      bool duplicate = false;
      for (const NodeId t : targets)
        if (t == pick) duplicate = true;
      if (!duplicate) targets.push_back(pick);
    }
    // Pathological duplication (possible only for tiny graphs): fall back
    // to uniform distinct targets.
    while (targets.size() < m) {
      const auto pick = static_cast<NodeId>(rng.uniform_u64(v));
      bool duplicate = false;
      for (const NodeId t : targets)
        if (t == pick) duplicate = true;
      if (!duplicate) targets.push_back(pick);
    }
    for (const NodeId t : targets) {
      builder.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return builder.build();
}

}  // namespace rrb
