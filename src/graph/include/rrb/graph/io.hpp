#pragma once

#include <iosfwd>
#include <string>

#include "rrb/graph/graph.hpp"

/// \file io.hpp
/// Plain-text edge-list serialisation, so experiment topologies can be
/// saved, diffed and re-loaded (e.g. to replay a broadcast on the exact
/// graph a failure was observed on).
///
/// Format:
///   # comments and blank lines are ignored
///   n <num_nodes>
///   <u> <v>          one edge per line; duplicates = parallel edges,
///                    u == v = self-loop
/// Node count must precede edges; endpoints must be < n.

namespace rrb {

/// Serialise a graph to the stream. Writes a canonical edge list
/// (u <= v, sorted), so equal graphs serialise identically.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parse a graph from the stream. Throws std::runtime_error on malformed
/// input (missing header, out-of-range endpoints, trailing garbage).
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Convenience round-trips through std::string.
[[nodiscard]] std::string to_edge_list_string(const Graph& g);
[[nodiscard]] Graph from_edge_list_string(const std::string& text);

}  // namespace rrb
