#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rrb/graph/graph.hpp"
#include "rrb/rng/rng.hpp"

/// \file algorithms.hpp
/// Structural graph algorithms used by the analysis: connectivity and
/// distance (for sanity checks and diameters), spectral estimates (the
/// Expander-Mixing Lemma argument of Theorem 1 depends on lambda_2), edge
/// boundaries between informed/uninformed sets, and matchings (the lower
/// bound pairs up uninformed nodes via a matching in S).

namespace rrb {

/// BFS distances from src; kUnreachable for nodes in other components.
inline constexpr std::int32_t kUnreachable = -1;
[[nodiscard]] std::vector<std::int32_t> bfs_distances(const Graph& g,
                                                      NodeId src);

/// True iff the graph is connected (n == 0 or 1 counts as connected).
[[nodiscard]] bool is_connected(const Graph& g);

/// Component id per node (ids dense from 0) and the number of components.
struct Components {
  std::vector<NodeId> label;
  NodeId count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

/// Eccentricity of src (max BFS distance); throws if disconnected from src.
[[nodiscard]] std::int32_t eccentricity(const Graph& g, NodeId src);

/// Exact diameter by all-pairs BFS. O(n * m); intended for n <= ~4096.
/// Throws if the graph is disconnected.
[[nodiscard]] std::int32_t diameter_exact(const Graph& g);

/// Double-sweep lower bound on the diameter (often tight on random graphs);
/// O(m). Throws if the graph is disconnected.
[[nodiscard]] std::int32_t diameter_double_sweep(const Graph& g, Rng& rng);

/// Estimate |lambda_2| of the adjacency matrix of a *regular* graph by
/// power iteration on the subspace orthogonal to the all-ones vector (the
/// top eigenvector of a d-regular graph). Random regular graphs satisfy
/// |lambda_2| <= 2 sqrt(d-1) (1 + o(1)) (Friedman), which Theorem 1 uses via
/// the Expander-Mixing Lemma.
[[nodiscard]] double second_eigenvalue_regular(const Graph& g, int iterations,
                                               Rng& rng);

/// Number of edges with exactly one endpoint in the set (multiplicity
/// counted). `in_set` must have size n.
[[nodiscard]] Count edge_boundary(const Graph& g,
                                  const std::vector<std::uint8_t>& in_set);

/// Number of edges with both endpoints in the set (self-loops inside count
/// once, multiplicity counted).
[[nodiscard]] Count internal_edges(const Graph& g,
                                   const std::vector<std::uint8_t>& in_set);

/// Check the Expander-Mixing bound |e(S, S̄) - d|S||S̄|/n| <= lambda *
/// sqrt(|S||S̄|) for a d-regular graph, returning the left-hand side's
/// deviation and the right-hand side for the caller to compare.
struct MixingCheck {
  double deviation = 0.0;  // |e(S,S̄) - d|S||S̄|/n|
  double bound = 0.0;      // lambda * sqrt(|S| |S̄|)
};
[[nodiscard]] MixingCheck expander_mixing_check(
    const Graph& g, const std::vector<std::uint8_t>& in_set, double lambda);

/// Greedy maximal matching; returns matched pairs. Deterministic order.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> greedy_matching(
    const Graph& g);

/// Greedy maximal matching restricted to nodes with in_set[v] != 0.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> greedy_matching_in_set(
    const Graph& g, const std::vector<std::uint8_t>& in_set);

/// Summary degree statistics.
struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Global clustering coefficient (3 * triangles / wedges); simple graphs
/// only. O(sum_v deg(v)^2) — fine at library scale.
[[nodiscard]] double global_clustering_coefficient(const Graph& g);

}  // namespace rrb
