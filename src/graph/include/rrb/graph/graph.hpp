#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "rrb/common/check.hpp"
#include "rrb/common/types.hpp"

/// \file graph.hpp
/// Immutable undirected (multi)graph in compressed sparse row form.
///
/// The configuration model of §1.2 of the paper can produce self-loops and
/// parallel edges, and the analysis explicitly keeps them ("it is sufficient
/// to analyse the algorithm for graphs generated with this process even if
/// the resulting graph is not simple"). Graph therefore represents
/// multigraphs faithfully:
///  - a parallel edge appears once per multiplicity in both endpoint lists;
///  - a self-loop consumes two stubs of its node and appears twice in that
///    node's adjacency list, so that degree(v) always equals the number of
///    stubs of v, matching the pairing process exactly.

namespace rrb {

/// An undirected edge; stored with u <= v for canonical form.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// How much of the CSR contract Graph::from_csr verifies.
///  - kBasic: O(entries) — offsets well-formed (0-anchored, monotone,
///    matching adjacency size, even total), every entry in range, every
///    per-node list sorted, every degree within NodeId range.
///  - kFull: kBasic plus undirected symmetry (every (v,w) run is mirrored
///    by an equal-multiplicity (w,v) run and self-loop runs are even) —
///    O(entries · log d); meant for tests, not the large-n hot path.
enum class CsrValidation { kBasic, kFull };

class Graph {
 public:
  /// Empty graph on n nodes.
  explicit Graph(NodeId n = 0);

  /// Build from an explicit edge list (endpoints may be in any order;
  /// duplicates are kept as parallel edges, u == v kept as self-loops).
  [[nodiscard]] static Graph from_edges(NodeId n, std::span<const Edge> edges);

  /// Adopt an already-assembled CSR without re-materialising an edge list:
  /// offsets has size n+1, adjacency holds each node's sorted stub list
  /// (parallel edges once per multiplicity; a self-loop twice at its node).
  /// This is the compact path used by rrb::bigtopo — peak memory is the
  /// CSR itself. Validation per CsrValidation; edge/loop/parallel counts
  /// are derived in one scan of the sorted lists.
  [[nodiscard]] static Graph from_csr(
      std::vector<Count> offsets, std::vector<NodeId> adjacency,
      CsrValidation validation = CsrValidation::kBasic);

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges, counting multiplicity; a self-loop counts
  /// as one edge.
  [[nodiscard]] Count num_edges() const { return num_edges_; }

  /// Degree of v in the stub sense: parallel edges count once each, a
  /// self-loop counts twice.
  [[nodiscard]] NodeId degree(NodeId v) const {
    RRB_REQUIRE(v < num_nodes(), "degree: node out of range");
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted adjacency list of v (multiplicity preserved; self-loop appears
  /// twice).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    RRB_REQUIRE(v < num_nodes(), "neighbors: node out of range");
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The i-th neighbour of v, 0 <= i < degree(v).
  [[nodiscard]] NodeId neighbor(NodeId v, NodeId i) const {
    RRB_REQUIRE(v < num_nodes(), "neighbor: node out of range");
    RRB_REQUIRE(offsets_[v] + i < offsets_[v + 1], "neighbor index");
    return adjacency_[offsets_[v] + i];
  }

  // ---- Unchecked CSR fast-path views --------------------------------------
  // For callers that have already validated their indices (the phone call
  // engine checks its inputs once at run start and then only produces
  // v < num_nodes() and i < degree(v) inside the round loop). These skip
  // the two RRB_REQUIRE branches per access that the checked accessors pay.

  /// degree(v) without bounds checks; v must be < num_nodes().
  [[nodiscard]] NodeId degree_unchecked(NodeId v) const noexcept {
    return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
  }

  /// neighbor(v, i) without bounds checks; requires v < num_nodes() and
  /// i < degree(v).
  [[nodiscard]] NodeId neighbor_unchecked(NodeId v, NodeId i) const noexcept {
    return adjacency_[offsets_[v] + i];
  }

  /// neighbors(v) without bounds checks; v must be < num_nodes().
  [[nodiscard]] std::span<const NodeId> neighbors_unchecked(
      NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// True iff at least one (u,v) edge exists. O(log degree).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Multiplicity of the (u,v) edge (0 if absent; for u == v, the number of
  /// self-loops at u).
  [[nodiscard]] NodeId edge_multiplicity(NodeId u, NodeId v) const;

  /// Number of self-loop edges in the whole graph.
  [[nodiscard]] Count num_self_loops() const { return num_self_loops_; }

  /// Number of edges beyond the first between each node pair (a triple edge
  /// contributes 2).
  [[nodiscard]] Count num_parallel_extra() const { return num_parallel_; }

  /// True iff no self-loops and no parallel edges.
  [[nodiscard]] bool is_simple() const {
    return num_self_loops_ == 0 && num_parallel_ == 0;
  }

  /// If every node has the same degree, that degree.
  [[nodiscard]] std::optional<NodeId> regular_degree() const;

  [[nodiscard]] NodeId min_degree() const;
  [[nodiscard]] NodeId max_degree() const;

  /// Canonical edge list (u <= v), multiplicity preserved, sorted.
  [[nodiscard]] std::vector<Edge> edge_list() const;

 private:
  std::vector<Count> offsets_;    // size n+1
  std::vector<NodeId> adjacency_; // size = sum of degrees
  Count num_edges_ = 0;
  Count num_self_loops_ = 0;
  Count num_parallel_ = 0;
};

/// Incremental builder. add_edge is O(1); build() sorts adjacency once.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  /// Append an undirected edge. Self-loops and duplicates allowed.
  void add_edge(NodeId u, NodeId v) {
    RRB_REQUIRE(u < n_ && v < n_, "add_edge: node out of range");
    edges_.push_back(Edge{u, v});
  }

  void reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Finalise into an immutable Graph.
  [[nodiscard]] Graph build() const {
    return Graph::from_edges(n_, edges_);
  }

 private:
  NodeId n_;
  std::vector<Edge> edges_;
};

}  // namespace rrb
