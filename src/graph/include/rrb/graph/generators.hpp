#pragma once

#include <cstdint>

#include "rrb/graph/graph.hpp"
#include "rrb/rng/rng.hpp"

/// \file generators.hpp
/// Graph generators. The central one for the paper is the configuration
/// (pairing) model of §1.2; the rest supply baselines, test fixtures and
/// the §5 counterexample topology (Cartesian product with K5).

namespace rrb {

/// Random d-regular multigraph from the configuration model (§1.2): each of
/// the n nodes gets d stubs; stubs are paired uniformly at random. May
/// contain self-loops and parallel edges — exactly the process the paper
/// analyses. Requires n*d even and d >= 1.
[[nodiscard]] Graph configuration_model(NodeId n, NodeId d, Rng& rng);

/// Random *simple* d-regular graph: configuration model followed by defect
/// repair via uniformly random edge switches (swap a defective edge with a
/// random partner edge when the swap removes the defect without creating a
/// new one). For d = o(sqrt n) this produces graphs negligibly far from the
/// uniform distribution in practice and is the standard practical sampler.
/// Throws std::runtime_error if repair fails repeatedly (never observed for
/// n > 2d^2; a safety valve, not an expected path).
[[nodiscard]] Graph random_regular_simple(NodeId n, NodeId d, Rng& rng);

/// Erdős–Rényi G(n, p) via geometric edge skipping; simple by construction.
[[nodiscard]] Graph gnp(NodeId n, double p, Rng& rng);

/// Complete graph K_n.
[[nodiscard]] Graph complete(NodeId n);

/// Complete bipartite graph K_{a,b}.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph cycle(NodeId n);

/// Path P_n on n nodes.
[[nodiscard]] Graph path(NodeId n);

/// Star on n nodes (node 0 is the hub).
[[nodiscard]] Graph star(NodeId n);

/// Hypercube Q_dim on 2^dim nodes.
[[nodiscard]] Graph hypercube(int dim);

/// Torus grid (rows x cols), 4-regular when both dims >= 3.
[[nodiscard]] Graph torus(NodeId rows, NodeId cols);

/// Cartesian product G □ H: vertex (u,i) mapped to u*|H|+i; (u,i)~(v,i) for
/// every G-edge (u,v), (u,i)~(u,j) for every H-edge (i,j). Regular if both
/// factors are regular, with degree deg_G + deg_H. This is the §5
/// counterexample shape: G(n,d) □ K5 has expansion similar to a random
/// regular graph but multi-choice gossip gains nothing inside the K5 fibres.
[[nodiscard]] Graph cartesian_product(const Graph& g, const Graph& h);

/// Disjoint union of two graphs (handy for negative tests: disconnected).
[[nodiscard]] Graph disjoint_union(const Graph& g, const Graph& h);

/// Barabási–Albert preferential attachment graph: starts from a clique on
/// m+1 nodes; each subsequent node attaches m edges to existing nodes with
/// probability proportional to their current degree (implemented with the
/// standard repeated-endpoint trick: sample a uniform endpoint of a
/// uniform existing edge). Context: the paper's related work [8] (Doerr,
/// Fouz, Friedrich) shows memory-assisted push is sub-logarithmic on these
/// graphs; see bench_x1.
[[nodiscard]] Graph preferential_attachment(NodeId n, NodeId m, Rng& rng);

}  // namespace rrb
