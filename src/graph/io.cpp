#include "rrb/graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "rrb/common/check.hpp"

namespace rrb {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << "# rrbcast edge list\n";
  os << "n " << g.num_nodes() << "\n";
  for (const Edge& e : g.edge_list()) os << e.u << ' ' << e.v << "\n";
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  bool have_header = false;
  NodeId n = 0;
  std::vector<Edge> edges;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) continue;  // blank

    if (!have_header) {
      if (first != "n")
        throw std::runtime_error("edge list: expected 'n <count>' header at "
                                 "line " + std::to_string(line_no));
      std::uint64_t count = 0;
      if (!(ls >> count))
        throw std::runtime_error("edge list: malformed node count");
      n = static_cast<NodeId>(count);
      have_header = true;
      std::string rest;
      if (ls >> rest)
        throw std::runtime_error("edge list: trailing tokens after header");
      continue;
    }

    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::istringstream es(line);
    if (!(es >> u >> v))
      throw std::runtime_error("edge list: malformed edge at line " +
                               std::to_string(line_no));
    std::string rest;
    if (es >> rest)
      throw std::runtime_error("edge list: trailing tokens at line " +
                               std::to_string(line_no));
    if (u >= n || v >= n)
      throw std::runtime_error("edge list: endpoint out of range at line " +
                               std::to_string(line_no));
    edges.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  if (!have_header)
    throw std::runtime_error("edge list: missing 'n <count>' header");
  return Graph::from_edges(n, edges);
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream os;
  write_edge_list(os, g);
  return os.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream is(text);
  return read_edge_list(is);
}

}  // namespace rrb
