#include "rrb/graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace rrb {

std::vector<std::int32_t> bfs_distances(const Graph& g, NodeId src) {
  RRB_REQUIRE(src < g.num_nodes(), "bfs: src out of range");
  std::vector<std::int32_t> dist(g.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::vector<NodeId> next;
  std::int32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId v : frontier)
      for (const NodeId w : g.neighbors(v))
        if (dist[w] == kUnreachable) {
          dist[w] = level;
          next.push_back(w);
        }
    frontier.swap(next);
  }
  return dist;
}

bool is_connected(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d == kUnreachable; });
}

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components result;
  result.label.assign(n, kNoNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (result.label[s] != kNoNode) continue;
    const NodeId id = result.count++;
    stack.push_back(s);
    result.label[s] = id;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v))
        if (result.label[w] == kNoNode) {
          result.label[w] = id;
          stack.push_back(w);
        }
    }
  }
  return result;
}

std::int32_t eccentricity(const Graph& g, NodeId src) {
  const auto dist = bfs_distances(g, src);
  std::int32_t ecc = 0;
  for (const std::int32_t d : dist) {
    if (d == kUnreachable)
      throw std::runtime_error("eccentricity: graph is disconnected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t diameter_exact(const Graph& g) {
  const NodeId n = g.num_nodes();
  RRB_REQUIRE(n >= 1, "diameter of empty graph");
  std::int32_t diam = 0;
  for (NodeId v = 0; v < n; ++v) diam = std::max(diam, eccentricity(g, v));
  return diam;
}

std::int32_t diameter_double_sweep(const Graph& g, Rng& rng) {
  const NodeId n = g.num_nodes();
  RRB_REQUIRE(n >= 1, "diameter of empty graph");
  const auto start = static_cast<NodeId>(rng.uniform_u64(n));
  const auto d1 = bfs_distances(g, start);
  NodeId far = start;
  std::int32_t best = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (d1[v] == kUnreachable)
      throw std::runtime_error("diameter_double_sweep: disconnected");
    if (d1[v] > best) {
      best = d1[v];
      far = v;
    }
  }
  return eccentricity(g, far);
}

double second_eigenvalue_regular(const Graph& g, int iterations, Rng& rng) {
  const NodeId n = g.num_nodes();
  RRB_REQUIRE(n >= 2, "second_eigenvalue_regular: n >= 2");
  RRB_REQUIRE(g.regular_degree().has_value(),
              "second_eigenvalue_regular requires a regular graph");
  RRB_REQUIRE(iterations >= 1, "need >= 1 iteration");

  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform_double() - 0.5;

  auto deflate = [&](std::vector<double>& vec) {
    // Remove the all-ones component (top eigenvector of a regular graph).
    const double mean =
        std::accumulate(vec.begin(), vec.end(), 0.0) / static_cast<double>(n);
    for (auto& v : vec) v -= mean;
  };
  auto norm = [&](const std::vector<double>& vec) {
    double s = 0.0;
    for (const double v : vec) s += v * v;
    return std::sqrt(s);
  };

  deflate(x);
  double nx = norm(x);
  RRB_ASSERT(nx > 0.0, "degenerate start vector");
  for (auto& v : x) v /= nx;

  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    std::fill(y.begin(), y.end(), 0.0);
    for (NodeId v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const NodeId w : g.neighbors(v)) acc += x[w];
      y[v] = acc;
    }
    deflate(y);
    lambda = norm(y);
    if (lambda == 0.0) return 0.0;
    for (NodeId v = 0; v < n; ++v) x[v] = y[v] / lambda;
  }
  return lambda;
}

Count edge_boundary(const Graph& g, const std::vector<std::uint8_t>& in_set) {
  RRB_REQUIRE(in_set.size() == g.num_nodes(), "in_set size mismatch");
  Count boundary = 0;
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (!in_set[v]) continue;
    for (const NodeId w : g.neighbors(v))
      if (!in_set[w]) ++boundary;
  }
  return boundary;
}

Count internal_edges(const Graph& g,
                     const std::vector<std::uint8_t>& in_set) {
  RRB_REQUIRE(in_set.size() == g.num_nodes(), "in_set size mismatch");
  Count twice = 0;
  const NodeId n = g.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (!in_set[v]) continue;
    for (const NodeId w : g.neighbors(v))
      if (in_set[w]) ++twice;  // self-loops appear twice in neighbors(v)
  }
  return twice / 2;
}

MixingCheck expander_mixing_check(const Graph& g,
                                  const std::vector<std::uint8_t>& in_set,
                                  double lambda) {
  const auto d_opt = g.regular_degree();
  RRB_REQUIRE(d_opt.has_value(), "expander_mixing_check: regular graph only");
  const double d = static_cast<double>(*d_opt);
  const double n = static_cast<double>(g.num_nodes());
  double s = 0.0;
  for (const auto flag : in_set) s += flag ? 1.0 : 0.0;
  const double sbar = n - s;
  const double e = static_cast<double>(edge_boundary(g, in_set));
  MixingCheck check;
  check.deviation = std::abs(e - d * s * sbar / n);
  check.bound = lambda * std::sqrt(s * sbar);
  return check;
}

std::vector<std::pair<NodeId, NodeId>> greedy_matching(const Graph& g) {
  std::vector<std::uint8_t> all(g.num_nodes(), 1);
  return greedy_matching_in_set(g, all);
}

std::vector<std::pair<NodeId, NodeId>> greedy_matching_in_set(
    const Graph& g, const std::vector<std::uint8_t>& in_set) {
  RRB_REQUIRE(in_set.size() == g.num_nodes(), "in_set size mismatch");
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> matched(n, 0);
  std::vector<std::pair<NodeId, NodeId>> result;
  for (NodeId v = 0; v < n; ++v) {
    if (!in_set[v] || matched[v]) continue;
    for (const NodeId w : g.neighbors(v)) {
      if (w == v || !in_set[w] || matched[w]) continue;
      matched[v] = matched[w] = 1;
      result.emplace_back(v, w);
      break;
    }
  }
  return result;
}

DegreeStats degree_stats(const Graph& g) {
  const NodeId n = g.num_nodes();
  RRB_REQUIRE(n > 0, "degree_stats of empty graph");
  DegreeStats stats;
  stats.min = g.degree(0);
  stats.max = g.degree(0);
  Count total = 0;
  for (NodeId v = 0; v < n; ++v) {
    const NodeId d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += d;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

double global_clustering_coefficient(const Graph& g) {
  RRB_REQUIRE(g.is_simple(), "clustering coefficient needs a simple graph");
  const NodeId n = g.num_nodes();
  Count triangles_times_3 = 0;  // each triangle counted once per corner
  Count wedges = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = g.neighbors(v);
    const Count d = adj.size();
    if (d >= 2) wedges += d * (d - 1) / 2;
    // Count edges among neighbours via sorted-set intersection.
    for (std::size_t i = 0; i < adj.size(); ++i)
      for (std::size_t j = i + 1; j < adj.size(); ++j)
        if (g.has_edge(adj[i], adj[j])) ++triangles_times_3;
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(triangles_times_3) /
         static_cast<double>(wedges);
}

}  // namespace rrb
