#include "rrb/graph/graph.hpp"

#include <algorithm>
#include <limits>

namespace rrb {

namespace {

struct CsrCounts {
  Count edges = 0;
  Count self_loops = 0;
  Count parallel_extra = 0;
};

/// One scan over sorted per-node lists deriving the multigraph summary:
/// num_edges = entries/2; a run of k equal entries w at node v contributes
/// k-1 parallel extras when w > v, and k/2 self-loops (k/2 - 1 extras)
/// when w == v. Shared by from_edges and from_csr so both construction
/// paths agree byte-for-byte on the derived counts.
[[nodiscard]] CsrCounts scan_sorted_csr(const std::vector<Count>& offsets,
                                        const std::vector<NodeId>& adjacency) {
  CsrCounts counts;
  counts.edges = adjacency.size() / 2;
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t begin = offsets[v];
    const std::size_t end = offsets[v + 1];
    std::size_t i = begin;
    while (i < end) {
      std::size_t j = i;
      while (j < end && adjacency[j] == adjacency[i]) ++j;
      const NodeId w = adjacency[i];
      const std::size_t run = j - i;
      if (w > v) {
        counts.parallel_extra += run - 1;
      } else if (w == v) {
        counts.self_loops += run / 2;
        counts.parallel_extra += run / 2 - (run >= 2 ? 1 : 0);
      }
      i = j;
    }
  }
  return counts;
}

}  // namespace

Graph::Graph(NodeId n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(NodeId n, std::span<const Edge> edges) {
  Graph g(n);

  // Count stub degrees: each endpoint once, self-loops twice. All degree
  // and offset arithmetic runs in 64-bit Count — 2 * edges.size() stubs
  // cannot overflow, but a single node's stub count must still fit the
  // NodeId returned by degree().
  std::vector<Count> degree(n, 0);
  for (const Edge& e : edges) {
    RRB_REQUIRE(e.u < n && e.v < n, "from_edges: endpoint out of range");
    ++degree[e.u];
    ++degree[e.v];
  }
  for (NodeId v = 0; v < n; ++v)
    RRB_REQUIRE(degree[v] <= std::numeric_limits<NodeId>::max(),
                "from_edges: node degree exceeds NodeId range");

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adjacency_.resize(g.offsets_[n]);

  std::vector<Count> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;  // self-loop: second entry at u
  }

  for (NodeId v = 0; v < n; ++v) {
    auto* first = g.adjacency_.data() + g.offsets_[v];
    auto* last = g.adjacency_.data() + g.offsets_[v + 1];
    std::sort(first, last);
  }

  const CsrCounts counts = scan_sorted_csr(g.offsets_, g.adjacency_);
  g.num_edges_ = counts.edges;
  g.num_self_loops_ = counts.self_loops;
  g.num_parallel_ = counts.parallel_extra;
  return g;
}

Graph Graph::from_csr(std::vector<Count> offsets,
                      std::vector<NodeId> adjacency,
                      CsrValidation validation) {
  RRB_REQUIRE(!offsets.empty(), "from_csr: offsets must have size n+1");
  RRB_REQUIRE(offsets.front() == 0, "from_csr: offsets[0] must be 0");
  RRB_REQUIRE(offsets.back() == adjacency.size(),
              "from_csr: offsets[n] must equal adjacency size");
  RRB_REQUIRE(adjacency.size() % 2 == 0,
              "from_csr: total stub count must be even");
  const auto n = static_cast<NodeId>(offsets.size() - 1);
  for (NodeId v = 0; v < n; ++v) {
    RRB_REQUIRE(offsets[v] <= offsets[v + 1],
                "from_csr: offsets must be non-decreasing");
    RRB_REQUIRE(offsets[v + 1] - offsets[v] <=
                    std::numeric_limits<NodeId>::max(),
                "from_csr: node degree exceeds NodeId range");
    const std::size_t begin = offsets[v];
    const std::size_t end = offsets[v + 1];
    for (std::size_t i = begin; i < end; ++i) {
      RRB_REQUIRE(adjacency[i] < n, "from_csr: adjacency entry out of range");
      RRB_REQUIRE(i == begin || adjacency[i - 1] <= adjacency[i],
                  "from_csr: adjacency lists must be sorted per node");
    }
  }

  if (validation == CsrValidation::kFull) {
    // Undirected symmetry: every (v,w) run must be mirrored with equal
    // multiplicity at w, and self-loop entries must pair up.
    for (NodeId v = 0; v < n; ++v) {
      std::size_t i = offsets[v];
      const std::size_t end = offsets[v + 1];
      while (i < end) {
        std::size_t j = i;
        while (j < end && adjacency[j] == adjacency[i]) ++j;
        const NodeId w = adjacency[i];
        const std::size_t run = j - i;
        if (w == v) {
          RRB_REQUIRE(run % 2 == 0,
                      "from_csr: self-loop entries must come in pairs");
        } else {
          const auto* wb = adjacency.data() + offsets[w];
          const auto* we = adjacency.data() + offsets[w + 1];
          const auto [lo, hi] = std::equal_range(wb, we, v);
          RRB_REQUIRE(static_cast<std::size_t>(hi - lo) == run,
                      "from_csr: asymmetric edge multiplicity");
        }
        i = j;
      }
    }
  }

  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  const CsrCounts counts = scan_sorted_csr(g.offsets_, g.adjacency_);
  g.num_edges_ = counts.edges;
  g.num_self_loops_ = counts.self_loops;
  g.num_parallel_ = counts.parallel_extra;
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

NodeId Graph::edge_multiplicity(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  const auto [first, last] = std::equal_range(adj.begin(), adj.end(), v);
  const auto entries = static_cast<NodeId>(last - first);
  return u == v ? entries / 2 : entries;
}

std::optional<NodeId> Graph::regular_degree() const {
  const NodeId n = num_nodes();
  if (n == 0) return std::nullopt;
  const NodeId d = degree(0);
  for (NodeId v = 1; v < n; ++v)
    if (degree(v) != d) return std::nullopt;
  return d;
}

NodeId Graph::min_degree() const {
  const NodeId n = num_nodes();
  RRB_REQUIRE(n > 0, "min_degree of empty graph");
  NodeId best = degree(0);
  for (NodeId v = 1; v < n; ++v) best = std::min(best, degree(v));
  return best;
}

NodeId Graph::max_degree() const {
  const NodeId n = num_nodes();
  RRB_REQUIRE(n > 0, "max_degree of empty graph");
  NodeId best = degree(0);
  for (NodeId v = 1; v < n; ++v) best = std::max(best, degree(v));
  return best;
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    std::size_t i = 0;
    while (i < adj.size()) {
      std::size_t j = i;
      while (j < adj.size() && adj[j] == adj[i]) ++j;
      const NodeId w = adj[i];
      const std::size_t run = j - i;
      if (w > v) {
        for (std::size_t r = 0; r < run; ++r) out.push_back(Edge{v, w});
      } else if (w == v) {
        for (std::size_t r = 0; r < run / 2; ++r) out.push_back(Edge{v, v});
      }
      i = j;
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

}  // namespace rrb
