#include "rrb/graph/graph.hpp"

#include <algorithm>

namespace rrb {

Graph::Graph(NodeId n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

Graph Graph::from_edges(NodeId n, std::span<const Edge> edges) {
  Graph g(n);
  g.num_edges_ = edges.size();

  // Count stub degrees: each endpoint once, self-loops twice.
  std::vector<Count> degree(n, 0);
  for (const Edge& e : edges) {
    RRB_REQUIRE(e.u < n && e.v < n, "from_edges: endpoint out of range");
    ++degree[e.u];
    ++degree[e.v];
    if (e.u == e.v) ++g.num_self_loops_;
  }

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  g.adjacency_.resize(g.offsets_[n]);

  std::vector<Count> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;  // self-loop: second entry at u
  }

  for (NodeId v = 0; v < n; ++v) {
    auto* first = g.adjacency_.data() + g.offsets_[v];
    auto* last = g.adjacency_.data() + g.offsets_[v + 1];
    std::sort(first, last);
  }

  // Parallel-extra count: for each unordered pair {u,v}, multiplicity - 1
  // summed. Count from the sorted adjacency of the smaller endpoint; loops
  // are handled separately (multiplicity m of a loop contributes m - 1).
  Count parallel = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = g.neighbors(v);
    std::size_t i = 0;
    while (i < adj.size()) {
      std::size_t j = i;
      while (j < adj.size() && adj[j] == adj[i]) ++j;
      const NodeId w = adj[i];
      const std::size_t run = j - i;
      if (w > v) {
        parallel += run - 1;
      } else if (w == v) {
        // Each loop contributes two entries; run/2 loops at v.
        parallel += run / 2 - (run >= 2 ? 1 : 0);
      }
      i = j;
    }
  }
  g.num_parallel_ = parallel;
  return g;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

NodeId Graph::edge_multiplicity(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  const auto [first, last] = std::equal_range(adj.begin(), adj.end(), v);
  const auto entries = static_cast<NodeId>(last - first);
  return u == v ? entries / 2 : entries;
}

std::optional<NodeId> Graph::regular_degree() const {
  const NodeId n = num_nodes();
  if (n == 0) return std::nullopt;
  const NodeId d = degree(0);
  for (NodeId v = 1; v < n; ++v)
    if (degree(v) != d) return std::nullopt;
  return d;
}

NodeId Graph::min_degree() const {
  const NodeId n = num_nodes();
  RRB_REQUIRE(n > 0, "min_degree of empty graph");
  NodeId best = degree(0);
  for (NodeId v = 1; v < n; ++v) best = std::min(best, degree(v));
  return best;
}

NodeId Graph::max_degree() const {
  const NodeId n = num_nodes();
  RRB_REQUIRE(n > 0, "max_degree of empty graph");
  NodeId best = degree(0);
  for (NodeId v = 1; v < n; ++v) best = std::max(best, degree(v));
  return best;
}

std::vector<Edge> Graph::edge_list() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  const NodeId n = num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const auto adj = neighbors(v);
    std::size_t i = 0;
    while (i < adj.size()) {
      std::size_t j = i;
      while (j < adj.size() && adj[j] == adj[i]) ++j;
      const NodeId w = adj[i];
      const std::size_t run = j - i;
      if (w > v) {
        for (std::size_t r = 0; r < run; ++r) out.push_back(Edge{v, w});
      } else if (w == v) {
        for (std::size_t r = 0; r < run / 2; ++r) out.push_back(Edge{v, v});
      }
      i = j;
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return out;
}

}  // namespace rrb
