#include "rrb/sim/trial.hpp"

#include <algorithm>

#include "rrb/common/check.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/sim/runner.hpp"

namespace rrb {

namespace {

/// One trial, a pure function of (config, trial index): all randomness
/// comes from Rng(seed).fork(trial), per the seeding contract.
RunResult run_one_trial(const GraphFactory& graph_factory,
                        const ProtocolFactory& protocol_factory,
                        const TrialConfig& config, int trial) {
  Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
  const Graph graph = graph_factory(rng);
  RRB_REQUIRE(graph.num_nodes() >= 2, "trial graph too small");

  auto protocol = protocol_factory(graph);
  RRB_REQUIRE(protocol != nullptr, "protocol factory returned null");

  GraphTopology topo(graph);
  PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);
  const NodeId source =
      config.random_source
          ? static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()))
          : 0;
  return engine.run(*protocol, source, config.limits);
}

/// Per-chunk partial reduction. Workers fill one Partials each (trials in
/// ascending order within the chunk); merging the chunks in chunk order
/// then replays the exact sequential sample order, so the resulting
/// Summaries are byte-identical whatever the schedule was.
struct Partials {
  std::vector<RunResult> runs;
  SummaryAccumulator rounds;
  SummaryAccumulator completion;
  SummaryAccumulator total_tx;
  SummaryAccumulator tx_per_node;
  SummaryAccumulator push_tx;
  SummaryAccumulator pull_tx;
  SummaryAccumulator coverage;
  int completed = 0;

  void add(RunResult&& run) {
    rounds.add(static_cast<double>(run.rounds));
    total_tx.add(static_cast<double>(run.total_tx()));
    tx_per_node.add(run.tx_per_node());
    push_tx.add(static_cast<double>(run.push_tx));
    pull_tx.add(static_cast<double>(run.pull_tx));
    coverage.add(run.n == 0 ? 0.0
                            : static_cast<double>(run.final_informed) /
                                  static_cast<double>(run.n));
    if (run.all_informed) {
      ++completed;
      completion.add(static_cast<double>(run.completion_round));
    }
    runs.push_back(std::move(run));
  }

  void merge(Partials&& other) {
    runs.insert(runs.end(), std::make_move_iterator(other.runs.begin()),
                std::make_move_iterator(other.runs.end()));
    rounds.merge(other.rounds);
    completion.merge(other.completion);
    total_tx.merge(other.total_tx);
    tx_per_node.merge(other.tx_per_node);
    push_tx.merge(other.push_tx);
    pull_tx.merge(other.pull_tx);
    coverage.merge(other.coverage);
    completed += other.completed;
  }

  [[nodiscard]] TrialOutcome finish(int trials) && {
    TrialOutcome outcome;
    outcome.runs = std::move(runs);
    outcome.rounds = rounds.finish();
    outcome.completion_round = completion.finish();
    outcome.total_tx = total_tx.finish();
    outcome.tx_per_node = tx_per_node.finish();
    outcome.push_tx = push_tx.finish();
    outcome.pull_tx = pull_tx.finish();
    outcome.coverage = coverage.finish();
    outcome.completion_rate =
        static_cast<double>(completed) / static_cast<double>(trials);
    return outcome;
  }
};

/// Shared driver: run `trial_body(trial)` for every trial on the pool and
/// reduce in trial order.
template <typename TrialBody>
TrialOutcome reduce_trials(int trials, const RunnerConfig& runner_config,
                           const TrialBody& trial_body) {
  ParallelRunner runner(runner_config);
  std::vector<Partials> partials(
      static_cast<std::size_t>(runner.num_chunks(trials)));
  runner.for_each_chunk(trials, [&](int index, int begin, int end) {
    Partials& chunk = partials[static_cast<std::size_t>(index)];
    for (int trial = begin; trial < end; ++trial)
      chunk.add(trial_body(trial));
  });

  Partials all;
  for (Partials& chunk : partials) all.merge(std::move(chunk));
  return std::move(all).finish(trials);
}

}  // namespace

namespace detail {

TrialOutcome reduce_runs(std::vector<RunResult>&& runs) {
  Partials all;
  const int trials = static_cast<int>(runs.size());
  for (RunResult& run : runs) all.add(std::move(run));
  return std::move(all).finish(trials);
}

}  // namespace detail

TrialOutcome run_trials(const GraphFactory& graph_factory,
                        const ProtocolFactory& protocol_factory,
                        const TrialConfig& config) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");
  return reduce_trials(config.trials, config.runner, [&](int trial) {
    return run_one_trial(graph_factory, protocol_factory, config, trial);
  });
}

TrialOutcome run_trials(const Graph& graph,
                        const ProtocolFactory& protocol_factory,
                        const TrialConfig& config) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");
  RRB_REQUIRE(graph.num_nodes() >= 2, "trial graph too small");
  const NodeId fixed_source = config.random_source ? kNoNode : 0;

  if (const int batch = config.runner.batch; batch >= 1) {
    // Batched: advance `batch` trials in lockstep per engine call. Lane
    // streams and draw order match the sequential branch below exactly,
    // so the outcome is bit-identical (tests/test_batched_engine.cpp).
    const int trials = config.trials;
    const int groups = (trials + batch - 1) / batch;
    std::vector<RunResult> runs(static_cast<std::size_t>(trials));
    ParallelRunner runner(config.runner);
    runner.for_each_trial(groups, [&](int group) {
      const int begin = group * batch;
      const int end = std::min(trials, begin + batch);
      const auto lanes = static_cast<std::size_t>(end - begin);
      std::vector<std::unique_ptr<BroadcastProtocol>> protos(lanes);
      std::vector<BroadcastProtocol*> proto_ptrs(lanes);
      for (std::size_t b = 0; b < lanes; ++b) {
        protos[b] = protocol_factory(graph);
        RRB_REQUIRE(protos[b] != nullptr, "protocol factory returned null");
        proto_ptrs[b] = protos[b].get();
      }
      std::vector<detail::NoMetrics> none(lanes);
      detail::run_batched_lanes(
          graph, config.channel, config.limits,
          std::span<BroadcastProtocol* const>(proto_ptrs), config.seed,
          begin, fixed_source, std::span<detail::NoMetrics>(none),
          std::span<RunResult>(runs).subspan(
              static_cast<std::size_t>(begin), lanes));
    });
    return detail::reduce_runs(std::move(runs));
  }

  return reduce_trials(config.trials, config.runner, [&](int trial) {
    Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
    auto protocol = protocol_factory(graph);
    RRB_REQUIRE(protocol != nullptr, "protocol factory returned null");
    GraphTopology topo(graph);
    PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);
    const NodeId source =
        fixed_source != kNoNode
            ? fixed_source
            : static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
    return engine.run(*protocol, source, config.limits);
  });
}

TrialOutcome broadcast_trials(const Graph& graph,
                              const BroadcastOptions& options, NodeId source) {
  RRB_REQUIRE(options.trials >= 1, "need at least one trial");
  RRB_REQUIRE(source == kNoNode || source < graph.num_nodes(),
              "source out of range");
  RunLimits limits;
  limits.max_rounds = options.max_rounds;
  limits.record_rounds = options.record_rounds;

  if (const int batch = options.runner.batch; batch >= 1) {
    // Batched: lockstep lanes over the shared graph, one engine call per
    // group of `batch` trials. Streams and draw order match the
    // sequential branch below, so the outcome is bit-identical.
    const int trials = options.trials;
    const int groups = (trials + batch - 1) / batch;
    std::vector<RunResult> runs(static_cast<std::size_t>(trials));
    ParallelRunner runner(options.runner);
    runner.for_each_trial(groups, [&](int group) {
      const int begin = group * batch;
      const int end = std::min(trials, begin + batch);
      const auto lanes = static_cast<std::size_t>(end - begin);
      with_scheme(
          graph, options, [&](auto proto, const ChannelConfig& channel) {
            using Proto = decltype(proto);
            std::vector<Proto> protos(lanes, proto);
            std::vector<Proto*> proto_ptrs(lanes);
            for (std::size_t b = 0; b < lanes; ++b)
              proto_ptrs[b] = &protos[b];
            std::vector<detail::NoMetrics> none(lanes);
            detail::run_batched_lanes(
                graph, channel, limits,
                std::span<Proto* const>(proto_ptrs), options.seed, begin,
                source, std::span<detail::NoMetrics>(none),
                std::span<RunResult>(runs).subspan(
                    static_cast<std::size_t>(begin), lanes));
          });
    });
    return detail::reduce_runs(std::move(runs));
  }

  return reduce_trials(options.trials, options.runner, [&](int trial) {
    Rng rng = Rng(options.seed).fork(static_cast<std::uint64_t>(trial));
    // Statically dispatched per scheme: each worker drives the engine with
    // the concrete protocol type, not through the virtual adapter.
    return with_scheme(
        graph, options, [&](auto proto, const ChannelConfig& channel) {
          GraphTopology topo(graph);
          PhoneCallEngine<GraphTopology> engine(topo, channel, rng);
          const NodeId from =
              source != kNoNode
                  ? source
                  : static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
          return engine.run(proto, from, limits);
        });
  });
}

}  // namespace rrb
