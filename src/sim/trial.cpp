#include "rrb/sim/trial.hpp"

#include "rrb/common/check.hpp"

namespace rrb {

TrialOutcome run_trials(const GraphFactory& graph_factory,
                        const ProtocolFactory& protocol_factory,
                        const TrialConfig& config) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");

  TrialOutcome outcome;
  SummaryAccumulator rounds;
  SummaryAccumulator completion;
  SummaryAccumulator total_tx;
  SummaryAccumulator tx_per_node;
  SummaryAccumulator push_tx;
  SummaryAccumulator pull_tx;
  int completed = 0;

  for (int trial = 0; trial < config.trials; ++trial) {
    Rng rng(derive_seed(config.seed, static_cast<std::uint64_t>(trial)));
    const Graph graph = graph_factory(rng);
    RRB_REQUIRE(graph.num_nodes() >= 2, "trial graph too small");

    auto protocol = protocol_factory(graph);
    RRB_REQUIRE(protocol != nullptr, "protocol factory returned null");

    GraphTopology topo(graph);
    PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);
    const NodeId source =
        config.random_source
            ? static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()))
            : 0;
    const RunResult run = engine.run(*protocol, source, config.limits);

    rounds.add(static_cast<double>(run.rounds));
    total_tx.add(static_cast<double>(run.total_tx()));
    tx_per_node.add(run.tx_per_node());
    push_tx.add(static_cast<double>(run.push_tx));
    pull_tx.add(static_cast<double>(run.pull_tx));
    if (run.all_informed) {
      ++completed;
      completion.add(static_cast<double>(run.completion_round));
    }
    outcome.runs.push_back(run);
  }

  outcome.rounds = rounds.finish();
  outcome.completion_round = completion.finish();
  outcome.total_tx = total_tx.finish();
  outcome.tx_per_node = tx_per_node.finish();
  outcome.push_tx = push_tx.finish();
  outcome.pull_tx = pull_tx.finish();
  outcome.completion_rate =
      static_cast<double>(completed) / static_cast<double>(config.trials);
  return outcome;
}

}  // namespace rrb
