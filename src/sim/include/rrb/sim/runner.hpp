#pragma once

#include <functional>
#include <utility>

#include "rrb/common/runner_config.hpp"

/// \file runner.hpp
/// Deterministic parallel trial runner.
///
/// Executes trial bodies across a worker pool with dynamic (work-stealing
/// counter) scheduling. The runner guarantees nothing about *execution*
/// order; callers obtain thread-count-independent results by following the
/// seeding contract:
///
///   1. all randomness of trial i is drawn from Rng(seed).fork(i), so no
///      trial observes any other trial's draws;
///   2. each trial writes only into its own slot (indexed by trial or by
///      chunk), and the slots are reduced sequentially in trial order
///      after the pool has drained.
///
/// Under those two rules the output is bit-identical for every
/// RunnerConfig — threads = 1 vs 8, chunked vs unchunked — which is what
/// the determinism regression suite (tests/test_runner.cpp) pins down.

namespace rrb {

class ParallelRunner {
 public:
  /// Throws std::logic_error on negative threads/chunk.
  explicit ParallelRunner(RunnerConfig config = {});

  /// Worker threads a pool built from `config` would use, before capping
  /// by the number of tasks: config.threads when positive, else
  /// $RRB_THREADS when set to a positive integer, else one per hardware
  /// core (minimum 1).
  [[nodiscard]] static int resolve_threads(const RunnerConfig& config);

  /// Trials claimed per scheduling task: config.chunk when positive, else
  /// a bounded default of ceil(trials / (4 · resolve_threads())) — about
  /// four chunks per worker, so chunk-indexed partial-reduction slots stay
  /// O(threads) however many trials there are.
  [[nodiscard]] int resolved_chunk(int trials) const;

  /// Number of contiguous chunks [begin, end) that cover [0, trials).
  /// Depends on (trials, chunk) and — only when chunk is defaulted — on
  /// the resolved worker count. Either way the chunking contract applies:
  /// chunks are contiguous ascending trial ranges reduced in chunk order,
  /// so results are byte-identical for every chunking (pinned by
  /// tests/test_runner.cpp).
  [[nodiscard]] int num_chunks(int trials) const;

  /// Half-open trial range of chunk `index`.
  [[nodiscard]] std::pair<int, int> chunk_bounds(int index, int trials) const;

  /// Invoke fn(chunk_index, begin, end) once per chunk, concurrently on up
  /// to resolve_threads() workers (inline on the calling thread when one
  /// worker suffices). fn runs on multiple threads at once and must only
  /// touch chunk-local state. If chunks throw, the remaining chunks are
  /// abandoned, the pool drains, and the exception of the lowest-indexed
  /// chunk that ran and threw is rethrown. Note *which* chunks run before
  /// the abort flag is observed is schedule-dependent, so with several
  /// concurrent failures the rethrown exception can differ between runs;
  /// with threads = 1 it is always the first failing chunk.
  void for_each_chunk(int trials,
                      const std::function<void(int, int, int)>& fn) const;

  /// Convenience wrapper: fn(trial) for every trial in [0, trials).
  void for_each_trial(int trials, const std::function<void(int)>& fn) const;

 private:
  RunnerConfig config_;
};

}  // namespace rrb
