#pragma once

#include <vector>

#include "rrb/common/types.hpp"

/// \file aggregate.hpp
/// Summary statistics over repeated trials.

namespace rrb {

/// Five-number-ish summary of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

/// Compute a Summary; empty input yields a zero summary with count 0.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// Online accumulator for building summaries incrementally.
class SummaryAccumulator {
 public:
  void add(double value) { values_.push_back(value); }
  [[nodiscard]] Summary finish() const { return summarize(values_); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace rrb
