#pragma once

#include <vector>

#include "rrb/common/types.hpp"

/// \file aggregate.hpp
/// Summary statistics over repeated trials.

namespace rrb {

/// Five-number-ish summary of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

/// Compute a Summary; empty input yields a zero summary with count 0.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

/// Online accumulator for building summaries incrementally.
///
/// Not thread-safe: concurrent add() calls race on the backing vector, and
/// even a locked vector would record samples in scheduling order, making
/// the Summary depend on thread timing. Parallel reductions instead keep
/// one accumulator per worker chunk and combine them with merge() in chunk
/// order once the pool has drained.
class SummaryAccumulator {
 public:
  void add(double value) { values_.push_back(value); }

  /// Append another accumulator's samples after this one's, preserving
  /// both insertion orders. Pure concatenation — no intermediate
  /// arithmetic — so the combine is associative and merging ordered
  /// per-chunk accumulators reproduces the sequential sample order (and
  /// therefore a byte-identical Summary) exactly.
  void merge(const SummaryAccumulator& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  [[nodiscard]] Summary finish() const { return summarize(values_); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace rrb
