#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "rrb/common/runner_config.hpp"
#include "rrb/core/broadcast.hpp"
#include "rrb/core/scheme_dispatch.hpp"
#include "rrb/graph/graph.hpp"
#include "rrb/metrics/observer.hpp"
#include "rrb/phonecall/batched_engine.hpp"
#include "rrb/phonecall/engine.hpp"
#include "rrb/phonecall/protocol.hpp"
#include "rrb/phonecall/result.hpp"
#include "rrb/rng/rng.hpp"
#include "rrb/sim/aggregate.hpp"
#include "rrb/sim/runner.hpp"

/// \file trial.hpp
/// Repeated-trial experiment driver: regenerates the random graph per trial
/// (matching the paper's "random graph, random algorithm" probability
/// space), runs a protocol from a random source, and aggregates.
///
/// Trials execute on the deterministic parallel runner (rrb/sim/runner.hpp):
/// trial i draws every random bit from Rng(seed).fork(i) and results are
/// reduced in trial order, so the outcome is bit-identical for any
/// RunnerConfig — the sequential path is just threads = 1.
///
/// Every driver has an observer-aware overload: pass a factory building a
/// fresh MetricObserver per trial (rrb/metrics/observer.hpp) and get the
/// observers back *in trial order* next to the usual TrialOutcome.
/// Observers are read-only and draw nothing, so the instrumented overloads
/// return byte-identical TrialOutcomes to the bare ones — the observers are
/// pure extra columns (pinned in tests/test_metrics.cpp).

namespace rrb {

/// Builds a fresh graph for each trial. Receives the per-trial Rng.
/// Invoked concurrently from worker threads, one call per trial: the
/// callable must be reentrant (capture by value or reference state it only
/// reads), which every pure generator factory already is.
using GraphFactory = std::function<Graph(Rng&)>;

/// Builds a fresh protocol instance per trial (protocols are stateful).
/// Same reentrancy requirement as GraphFactory.
using ProtocolFactory =
    std::function<std::unique_ptr<BroadcastProtocol>(const Graph&)>;

struct TrialConfig {
  int trials = 5;
  std::uint64_t seed = 0x5eed;
  ChannelConfig channel;
  RunLimits limits;
  bool random_source = true;  ///< random source per trial; node 0 otherwise
  RunnerConfig runner;        ///< worker pool; never changes the output
};

/// Everything measured across the trials of one experiment cell.
struct TrialOutcome {
  std::vector<RunResult> runs;  ///< indexed by trial
  Summary rounds;            ///< rounds until the protocol stopped
  Summary completion_round;  ///< rounds until all nodes informed (only
                             ///< completed runs contribute)
  Summary total_tx;
  Summary tx_per_node;
  Summary push_tx;
  Summary pull_tx;
  Summary coverage;          ///< final_informed / n per run (< 1 when a
                             ///< self-terminating scheme leaves stragglers,
                             ///< e.g. under channel failures)
  double completion_rate = 0.0;  ///< fraction of runs informing everyone
};

/// Run `config.trials` independent trials, regenerating the random graph
/// per trial. Rebuilding the topology every trial is what the paper's
/// probability space asks for, and it is also why this overload ignores
/// config.runner.batch — lockstep lanes need one shared topology.
[[nodiscard]] TrialOutcome run_trials(const GraphFactory& graph_factory,
                                      const ProtocolFactory& protocol_factory,
                                      const TrialConfig& config);

/// Fixed-graph trial sweep: every trial runs a fresh protocol instance on
/// the same immutable graph ("random algorithm" randomness only). Trial i
/// draws from Rng(config.seed).fork(i): its source first (uniform when
/// config.random_source, else node 0), then the engine's round draws.
/// This is the overload config.runner.batch accelerates — batch >= 1
/// advances that many trials in lockstep on BatchedPhoneCallEngine,
/// bit-identically to batch = 0 (pinned by tests/test_batched_engine.cpp).
[[nodiscard]] TrialOutcome run_trials(const Graph& graph,
                                      const ProtocolFactory& protocol_factory,
                                      const TrialConfig& config);

/// Repeat a broadcast() scheme options.trials times on a fixed graph,
/// scheduled by options.runner. Trial i runs a fresh protocol instance
/// seeded from (options.seed, i); `source` fixes the originator, or pass
/// kNoNode to draw a fresh uniform source per trial.
[[nodiscard]] TrialOutcome broadcast_trials(const Graph& graph,
                                            const BroadcastOptions& options,
                                            NodeId source = kNoNode);

/// An instrumented trial sweep: the usual TrialOutcome (byte-identical to
/// the bare overload's) plus one observer per trial, in trial order — the
/// shape the seeding contract demands for any reduction over them.
template <MetricObserver Obs>
struct ObservedOutcome {
  TrialOutcome outcome;
  std::vector<Obs> observers;  ///< indexed by trial
};

namespace detail {

/// Reduce per-trial RunResults, already in trial order, into a
/// TrialOutcome. The same reduction the bare drivers apply chunk-wise —
/// samples enter each Summary in ascending trial order either way, so both
/// paths produce byte-identical outcomes.
[[nodiscard]] TrialOutcome reduce_runs(std::vector<RunResult>&& runs);

/// Advance trials [first_trial, first_trial + lanes) of a fixed-graph
/// sweep in lockstep on BatchedPhoneCallEngine. Lane b is trial
/// first_trial + b: it seeds Rng(seed).fork(trial) and makes the exact
/// draws the sequential drivers make on that stream — the source first
/// (when fixed_source == kNoNode; a fixed source draws nothing), then the
/// round loop — so out[b] is bit-identical to the sequential trial.
/// protocols/observers/out carry one entry per lane; protocol instances
/// must be freshly built for this group.
template <ProtocolImpl ProtocolT, typename ObserverT>
void run_batched_lanes(const Graph& graph, const ChannelConfig& channel,
                       const RunLimits& limits,
                       std::span<ProtocolT* const> protocols,
                       std::uint64_t seed, int first_trial,
                       NodeId fixed_source, std::span<ObserverT> observers,
                       std::span<RunResult> out) {
  const std::size_t lanes = protocols.size();
  RRB_REQUIRE(out.size() == lanes, "one result slot per lane");
  std::vector<Rng> rngs;
  rngs.reserve(lanes);
  std::vector<NodeId> sources(lanes);
  for (std::size_t b = 0; b < lanes; ++b) {
    rngs.push_back(
        Rng(seed).fork(static_cast<std::uint64_t>(first_trial) + b));
    sources[b] =
        fixed_source != kNoNode
            ? fixed_source
            : static_cast<NodeId>(rngs.back().uniform_u64(graph.num_nodes()));
  }
  GraphTopology topo(graph);
  BatchedPhoneCallEngine<GraphTopology> engine(topo, channel);
  std::vector<RunResult> results =
      engine.run(protocols, std::span<const NodeId>(sources),
                 std::span<Rng>(rngs), limits, observers);
  for (std::size_t b = 0; b < lanes; ++b) out[b] = std::move(results[b]);
}

}  // namespace detail

/// Observer-aware run_trials: `make_observer(graph)` builds the trial's
/// observer before the run; the engine fires its hooks from inside the
/// round loop. Randomness is untouched — trial i still draws exactly
/// Rng(config.seed).fork(i) in the bare overload's order.
template <typename MakeObserver,
          MetricObserver Obs =
              std::invoke_result_t<const MakeObserver&, const Graph&>>
[[nodiscard]] ObservedOutcome<Obs> run_trials(
    const GraphFactory& graph_factory,
    const ProtocolFactory& protocol_factory, const TrialConfig& config,
    const MakeObserver& make_observer) {
  RRB_REQUIRE(config.trials >= 1, "need at least one trial");
  const auto trials = static_cast<std::size_t>(config.trials);
  std::vector<RunResult> runs(trials);
  std::vector<std::optional<Obs>> slots(trials);

  ParallelRunner runner(config.runner);
  runner.for_each_trial(config.trials, [&](int trial) {
    Rng rng = Rng(config.seed).fork(static_cast<std::uint64_t>(trial));
    const Graph graph = graph_factory(rng);
    RRB_REQUIRE(graph.num_nodes() >= 2, "trial graph too small");
    auto protocol = protocol_factory(graph);
    RRB_REQUIRE(protocol != nullptr, "protocol factory returned null");
    Obs observers = make_observer(graph);

    GraphTopology topo(graph);
    PhoneCallEngine<GraphTopology> engine(topo, config.channel, rng);
    const NodeId source =
        config.random_source
            ? static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()))
            : 0;
    runs[static_cast<std::size_t>(trial)] =
        engine.run(*protocol, source, config.limits, observers);
    slots[static_cast<std::size_t>(trial)] = std::move(observers);
  });

  ObservedOutcome<Obs> observed;
  observed.outcome = detail::reduce_runs(std::move(runs));
  observed.observers.reserve(trials);
  for (std::optional<Obs>& slot : slots)
    observed.observers.push_back(std::move(*slot));
  return observed;
}

/// Observer-aware broadcast_trials: the facade sweep with a per-trial
/// observer. Same draw order as the bare overload; the scheme's protocol
/// is statically dispatched per trial exactly as there.
template <typename MakeObserver,
          MetricObserver Obs =
              std::invoke_result_t<const MakeObserver&, const Graph&>>
[[nodiscard]] ObservedOutcome<Obs> broadcast_trials(
    const Graph& graph, const BroadcastOptions& options,
    const MakeObserver& make_observer, NodeId source = kNoNode) {
  RRB_REQUIRE(options.trials >= 1, "need at least one trial");
  RRB_REQUIRE(source == kNoNode || source < graph.num_nodes(),
              "source out of range");
  RunLimits limits;
  limits.max_rounds = options.max_rounds;
  limits.record_rounds = options.record_rounds;

  const auto trials = static_cast<std::size_t>(options.trials);
  std::vector<RunResult> runs(trials);
  std::vector<std::optional<Obs>> slots(trials);

  ParallelRunner runner(options.runner);
  if (const int batch = options.runner.batch; batch >= 1) {
    // Batched: groups of `batch` trials advance in lockstep over the
    // shared graph. Same per-trial streams and draw order as below, so
    // runs and observers come out bit-identical (per-trial slots keep the
    // reduction in trial order either way).
    const int groups = (options.trials + batch - 1) / batch;
    runner.for_each_trial(groups, [&](int group) {
      const int begin = group * batch;
      const int end = std::min(options.trials, begin + batch);
      const auto lanes = static_cast<std::size_t>(end - begin);
      with_scheme(
          graph, options, [&](auto proto, const ChannelConfig& channel) {
            using Proto = decltype(proto);
            std::vector<Proto> protos(lanes, proto);
            std::vector<Proto*> proto_ptrs(lanes);
            std::vector<Obs> lane_obs;
            lane_obs.reserve(lanes);
            for (std::size_t b = 0; b < lanes; ++b) {
              proto_ptrs[b] = &protos[b];
              lane_obs.push_back(make_observer(graph));
            }
            std::vector<RunResult> lane_runs(lanes);
            detail::run_batched_lanes(
                graph, channel, limits,
                std::span<Proto* const>(proto_ptrs), options.seed, begin,
                source, std::span<Obs>(lane_obs),
                std::span<RunResult>(lane_runs));
            for (std::size_t b = 0; b < lanes; ++b) {
              runs[static_cast<std::size_t>(begin) + b] =
                  std::move(lane_runs[b]);
              slots[static_cast<std::size_t>(begin) + b] =
                  std::move(lane_obs[b]);
            }
          });
    });
  } else {
    runner.for_each_trial(options.trials, [&](int trial) {
      Rng rng = Rng(options.seed).fork(static_cast<std::uint64_t>(trial));
      Obs observers = make_observer(graph);
      runs[static_cast<std::size_t>(trial)] = with_scheme(
          graph, options, [&](auto proto, const ChannelConfig& channel) {
            GraphTopology topo(graph);
            PhoneCallEngine<GraphTopology> engine(topo, channel, rng);
            const NodeId from =
                source != kNoNode
                    ? source
                    : static_cast<NodeId>(rng.uniform_u64(graph.num_nodes()));
            return engine.run(proto, from, limits, observers);
          });
      slots[static_cast<std::size_t>(trial)] = std::move(observers);
    });
  }

  ObservedOutcome<Obs> observed;
  observed.outcome = detail::reduce_runs(std::move(runs));
  observed.observers.reserve(trials);
  for (std::optional<Obs>& slot : slots)
    observed.observers.push_back(std::move(*slot));
  return observed;
}

}  // namespace rrb
